package pastri_test

// One benchmark per table/figure of the paper's evaluation (see
// DESIGN.md's experiment index), plus codec micro-benchmarks and
// ablations. Figure-level benchmarks execute the corresponding
// experiments harness and report the headline quantities via
// b.ReportMetric; cmd/experiments renders the same results as tables.
//
// Datasets are generated on first use and cached under the system temp
// directory; the first `go test -bench` run pays ERI-generation time.

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"testing"

	pastri "repro"
	"repro/internal/bitio"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/experiments"
	"repro/internal/sz"
	"repro/internal/zfp"
)

// benchBlocks is the per-dataset block count for benchmarks: large
// enough for stable statistics, small enough to keep -bench runs in
// minutes.
const benchBlocks = 300

func getDataset(b *testing.B, mol string, l int) *struct {
	data          []float64
	numSB, sbSize int
	rawBytes      int64
} {
	b.Helper()
	ds, err := dataset.Get(dataset.Spec{Molecule: mol, L: l, MaxBlocks: benchBlocks})
	if err != nil {
		b.Fatal(err)
	}
	return &struct {
		data          []float64
		numSB, sbSize int
		rawBytes      int64
	}{ds.Data, ds.NumSB, ds.SBSize, int64(ds.SizeBytes())}
}

// ------------------------------------------------------------------
// Figure-level benchmarks.

func BenchmarkFig3PatternDemo(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig3(benchBlocks)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.MaxDeviation/r.BlockAmp, "rel-deviation")
	}
}

func BenchmarkFig4ScalingMetrics(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig4(benchBlocks)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(r.Ratio, "ratio-"+r.Metric.String())
		}
	}
}

func BenchmarkFig6ECQDistribution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		stats, err := experiments.Fig6(benchBlocks)
		if err != nil {
			b.Fatal(err)
		}
		total := float64(stats.Blocks)
		b.ReportMetric(100*float64(stats.TypeCount[0]+stats.TypeCount[1])/total, "pct-type01")
	}
}

func BenchmarkFig7EncodingTrees(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig7(benchBlocks)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(r.Ratio, "ratio-"+r.Method.String())
		}
	}
}

func BenchmarkFig9aCompressionRatio(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig9(benchBlocks)
		if err != nil {
			b.Fatal(err)
		}
		avg := experiments.AverageRatio(rows, 1e-10)
		for codec, ratio := range avg {
			b.ReportMetric(ratio, "ratio-"+codec)
		}
	}
}

func BenchmarkFig9bRateDistortion(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := experiments.Fig9b(benchBlocks)
		if err != nil {
			b.Fatal(err)
		}
		// Headline: PSNR advantage of PaSTRI over SZ at matched EB 1e-10.
		var pastriBR, szBR float64
		for _, p := range pts {
			if p.EB == 1e-10 {
				switch p.Codec {
				case "PaSTRI":
					pastriBR = p.BitRate
				case "SZ":
					szBR = p.BitRate
				}
			}
		}
		b.ReportMetric(szBR/pastriBR, "bitrate-advantage-vs-SZ")
	}
}

func BenchmarkFig10ParallelIO(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig10(benchBlocks)
		if err != nil {
			b.Fatal(err)
		}
		// Headline: dump speedup of PaSTRI over SZ at 2048 cores.
		var p, s float64
		for _, r := range rows {
			if r.Cores == 2048 {
				switch r.Codec {
				case "PaSTRI":
					p = r.Dump.Total().Seconds()
				case "SZ":
					s = r.Dump.Total().Seconds()
				}
			}
		}
		b.ReportMetric(s/p, "dump-speedup-vs-SZ")
	}
}

func BenchmarkFig11ReuseSpeedup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig11(benchBlocks)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.EB == 1e-10 {
				b.ReportMetric(r.Speedup, "speedup-"+r.Config)
			}
		}
	}
}

func BenchmarkOutputBreakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ps, ecq, book, err := experiments.Breakdown(benchBlocks)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(ps*100, "pct-pq-sq")
		b.ReportMetric(ecq*100, "pct-ecq")
		b.ReportMetric(book*100, "pct-bookkeeping")
	}
}

// ------------------------------------------------------------------
// Codec micro-benchmarks (Fig. 9c/9d measured the testing.B way):
// bytes/op throughput per codec on the alanine (dd|dd) dataset.

func BenchmarkFig9cCompressRate(b *testing.B) {
	ds := getDataset(b, "alanine", 2)
	const eb = 1e-10
	b.Run("SZ", func(b *testing.B) {
		b.SetBytes(ds.rawBytes)
		for i := 0; i < b.N; i++ {
			if _, err := sz.Compress(ds.data, eb); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("ZFP", func(b *testing.B) {
		b.SetBytes(ds.rawBytes)
		for i := 0; i < b.N; i++ {
			if _, err := zfp.Compress(ds.data, eb); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("PaSTRI", func(b *testing.B) {
		opts := pastri.NewOptions(ds.numSB, ds.sbSize, eb)
		opts.Workers = 1
		b.SetBytes(ds.rawBytes)
		for i := 0; i < b.N; i++ {
			if _, err := pastri.Compress(ds.data, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkFig9dDecompressRate(b *testing.B) {
	ds := getDataset(b, "alanine", 2)
	const eb = 1e-10
	szComp, err := sz.Compress(ds.data, eb)
	if err != nil {
		b.Fatal(err)
	}
	zfpComp, err := zfp.Compress(ds.data, eb)
	if err != nil {
		b.Fatal(err)
	}
	opts := pastri.NewOptions(ds.numSB, ds.sbSize, eb)
	opts.Workers = 1
	pComp, err := pastri.Compress(ds.data, opts)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("SZ", func(b *testing.B) {
		b.SetBytes(ds.rawBytes)
		for i := 0; i < b.N; i++ {
			if _, err := sz.Decompress(szComp); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("ZFP", func(b *testing.B) {
		b.SetBytes(ds.rawBytes)
		for i := 0; i < b.N; i++ {
			if _, err := zfp.Decompress(zfpComp); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("PaSTRI", func(b *testing.B) {
		b.SetBytes(ds.rawBytes)
		for i := 0; i < b.N; i++ {
			if _, err := pastri.DecompressWorkers(pComp, 1); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ------------------------------------------------------------------
// Ablations called out in DESIGN.md.

// BenchmarkHybridConfigurations measures the paper's hybrid d/f
// workload through the multi-section container.
func BenchmarkHybridConfigurations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Hybrid(benchBlocks)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Ratio, "ratio-hybrid")
		b.ReportMetric(r.PureDDFF, "ratio-pure-mean")
	}
}

// BenchmarkAblationGeometry quantifies Sec. III-B: the compression
// ratio collapses when the block period doesn't match the BF
// configuration.
func BenchmarkAblationGeometry(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.GeometryAblation(benchBlocks)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(r.Ratio, "ratio-"+fmt.Sprintf("%dx%d", r.NumSB, r.SBSize))
		}
	}
}

// BenchmarkAblationHuffman quantifies Sec. IV-C's argument for fixed
// trees over Huffman on the ECQ streams.
func BenchmarkAblationHuffman(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.HuffmanComparison(benchBlocks)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.HuffmanPerBlock)/float64(r.Tree5Bits), "huffman-overhead-x")
	}
}

// BenchmarkAblationSparse measures the sparse/dense adaptive choice's
// contribution to the compression ratio.
func BenchmarkAblationSparse(b *testing.B) {
	ds := getDataset(b, "alanine", 2)
	for _, disable := range []bool{false, true} {
		name := "adaptive"
		if disable {
			name = "dense-only"
		}
		b.Run(name, func(b *testing.B) {
			opts := pastri.NewOptions(ds.numSB, ds.sbSize, 1e-10)
			opts.DisableSparse = disable
			b.SetBytes(ds.rawBytes)
			for i := 0; i < b.N; i++ {
				comp, err := pastri.Compress(ds.data, opts)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(ds.rawBytes)/float64(len(comp)), "ratio")
			}
		})
	}
}

// BenchmarkAblationSZPredictor compares SZ's prediction models on ERI
// data (Lorenzo wins; the curve-fitting orders amplify noise).
func BenchmarkAblationSZPredictor(b *testing.B) {
	ds := getDataset(b, "alanine", 2)
	defer sz.SetPredictorOrder(1)
	for order := 1; order <= 3; order++ {
		b.Run(fmt.Sprintf("order%d", order), func(b *testing.B) {
			sz.SetPredictorOrder(order)
			b.SetBytes(ds.rawBytes)
			for i := 0; i < b.N; i++ {
				comp, err := sz.Compress(ds.data, 1e-10)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(ds.rawBytes)/float64(len(comp)), "ratio")
			}
		})
	}
}

// BenchmarkParallelScaling measures PaSTRI's block-parallel throughput
// at increasing worker counts (Sec. IV-C: "highly parallelizable").
func BenchmarkParallelScaling(b *testing.B) {
	ds := getDataset(b, "alanine", 2)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers%d", workers), func(b *testing.B) {
			opts := pastri.NewOptions(ds.numSB, ds.sbSize, 1e-10)
			opts.Workers = workers
			b.SetBytes(ds.rawBytes)
			for i := 0; i < b.N; i++ {
				if _, err := pastri.Compress(ds.data, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// benchCompressOptions builds the Options the compress kernel
// benchmarks run under. Setting PASTRI_BENCH_STAGED (any non-empty
// value) disables the fused single-pass path so the same benchmark
// names can be measured on the staged reference pipeline — that is how
// BENCH_PR9.json's baseline_staged section is produced (`make
// bench-baseline`), which `make bench-gate` holds the fused "current"
// section against with a minimum-speedup record check.
func benchCompressOptions(numSB, sbSize int, eb float64) pastri.Options {
	opts := pastri.NewOptions(numSB, sbSize, eb)
	opts.DisableFused = os.Getenv("PASTRI_BENCH_STAGED") != ""
	return opts
}

// BenchmarkCompressWorkers compares the serial path against
// CompressWorkers at 2/4/8 workers on ERI-shaped blocks. Output bytes
// are identical at every worker count (asserted once up front), so this
// measures pure scheduling overhead/speedup. Speedup tracks physical
// cores; on a single-core machine the curve is flat.
func BenchmarkCompressWorkers(b *testing.B) {
	ds := getDataset(b, "alanine", 2)
	opts := benchCompressOptions(ds.numSB, ds.sbSize, 1e-10)
	serial, err := pastri.CompressWorkers(ds.data, opts, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("serial", func(b *testing.B) {
		b.SetBytes(ds.rawBytes)
		for i := 0; i < b.N; i++ {
			if _, err := pastri.CompressWorkers(ds.data, opts, 1); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, workers := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("workers%d", workers), func(b *testing.B) {
			comp, err := pastri.CompressWorkers(ds.data, opts, workers)
			if err != nil {
				b.Fatal(err)
			}
			if !bytes.Equal(comp, serial) {
				b.Fatalf("workers=%d output differs from serial", workers)
			}
			b.SetBytes(ds.rawBytes)
			for i := 0; i < b.N; i++ {
				if _, err := pastri.CompressWorkers(ds.data, opts, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCompressWorkersFF runs the same worker sweep on the
// (ff|ff) configuration — 100×100-point blocks, the paper's
// heavyweight shape — and is the acceptance gate for kernel-level
// optimisations (see BENCH_PR9.json for the tracked trajectory).
func BenchmarkCompressWorkersFF(b *testing.B) {
	ds := getDataset(b, "alanine", 3)
	opts := benchCompressOptions(ds.numSB, ds.sbSize, 1e-10)
	serial, err := pastri.CompressWorkers(ds.data, opts, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("serial", func(b *testing.B) {
		b.SetBytes(ds.rawBytes)
		for i := 0; i < b.N; i++ {
			if _, err := pastri.CompressWorkers(ds.data, opts, 1); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, workers := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("workers%d", workers), func(b *testing.B) {
			comp, err := pastri.CompressWorkers(ds.data, opts, workers)
			if err != nil {
				b.Fatal(err)
			}
			if !bytes.Equal(comp, serial) {
				b.Fatalf("workers=%d output differs from serial", workers)
			}
			b.SetBytes(ds.rawBytes)
			for i := 0; i < b.N; i++ {
				if _, err := pastri.CompressWorkers(ds.data, opts, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDecompressCollect measures whole-stream decompression (the
// decode-side counterpart of BenchmarkCompressWorkers), with and
// without a live collector, at 1 and 4 workers.
func BenchmarkDecompressCollect(b *testing.B) {
	ds := getDataset(b, "alanine", 2)
	opts := pastri.NewOptions(ds.numSB, ds.sbSize, 1e-10)
	comp, err := pastri.Compress(ds.data, opts)
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers%d", workers), func(b *testing.B) {
			b.SetBytes(ds.rawBytes)
			for i := 0; i < b.N; i++ {
				if _, err := pastri.DecompressWorkers(comp, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	b.Run("collector", func(b *testing.B) {
		col := pastri.NewCollector()
		b.SetBytes(ds.rawBytes)
		for i := 0; i < b.N; i++ {
			if _, err := pastri.DecompressCollect(comp, 1, col); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkParallelStreamWriter measures the incremental parallel path:
// blocks submitted one at a time, payloads sequenced in order.
func BenchmarkParallelStreamWriter(b *testing.B) {
	ds := getDataset(b, "alanine", 2)
	opts := pastri.NewOptions(ds.numSB, ds.sbSize, 1e-10)
	bs := opts.BlockSize()
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers%d", workers), func(b *testing.B) {
			b.SetBytes(ds.rawBytes)
			for i := 0; i < b.N; i++ {
				w, err := pastri.NewParallelStreamWriter(io.Discard, opts, workers)
				if err != nil {
					b.Fatal(err)
				}
				for blk := 0; blk*bs < len(ds.data); blk++ {
					if err := w.WriteBlock(ds.data[blk*bs : (blk+1)*bs]); err != nil {
						b.Fatal(err)
					}
				}
				if err := w.Close(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTelemetryOverhead compares compression with no collector
// (the default: every telemetry call is a nil-receiver early return,
// no clock reads) against a live collector with the trace ring on.
// The disabled sub-benchmark is the acceptance gate: it must stay
// within 2% of a build that predates the telemetry layer, which in
// practice means within noise of the enabled=false path since the
// instrumentation compiles to an untaken branch. Run both serial, so
// scheduling variance doesn't mask the per-block cost.
func BenchmarkTelemetryOverhead(b *testing.B) {
	ds := getDataset(b, "alanine", 2)
	b.Run("disabled", func(b *testing.B) {
		opts := pastri.NewOptions(ds.numSB, ds.sbSize, 1e-10)
		opts.Workers = 1
		b.SetBytes(ds.rawBytes)
		for i := 0; i < b.N; i++ {
			if _, err := pastri.Compress(ds.data, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("enabled", func(b *testing.B) {
		opts := pastri.NewOptions(ds.numSB, ds.sbSize, 1e-10)
		opts.Workers = 1
		opts.Collector = pastri.NewCollector()
		b.SetBytes(ds.rawBytes)
		for i := 0; i < b.N; i++ {
			if _, err := pastri.Compress(ds.data, opts); err != nil {
				b.Fatal(err)
			}
		}
		if snap := opts.Collector.Snapshot(); snap.Blocks == 0 {
			b.Fatal("collector recorded nothing")
		}
	})
}

// BenchmarkBlockCodec isolates the per-block encode/decode hot path
// (one (dd|dd) block, no stream framing).
func BenchmarkBlockCodec(b *testing.B) {
	ds := getDataset(b, "alanine", 2)
	cfg := core.Defaults(ds.numSB, ds.sbSize, 1e-10)
	block := ds.data[:cfg.BlockSize()]
	b.Run("encode", func(b *testing.B) {
		enc, err := core.NewBlockEncoder(cfg)
		if err != nil {
			b.Fatal(err)
		}
		w := bitio.NewWriter(4096)
		b.SetBytes(int64(len(block) * 8))
		for i := 0; i < b.N; i++ {
			w.Reset()
			if err := enc.EncodeBlock(w, block); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkDecodeBlock isolates the per-block decode hot path on (dd|dd)
// and (ff|ff) shaped blocks: one reused decoder, one reused reader, a
// preallocated destination — the steady state of DecompressCollect's
// inner loop, and the subject of TestDecodeBlockAllocs.
func BenchmarkDecodeBlock(b *testing.B) {
	for _, shape := range []struct {
		name string
		l    int
	}{{"dd", 2}, {"ff", 3}} {
		b.Run(shape.name, func(b *testing.B) {
			ds := getDataset(b, "alanine", shape.l)
			cfg := core.Defaults(ds.numSB, ds.sbSize, 1e-10)
			block := ds.data[:cfg.BlockSize()]
			enc, err := core.NewBlockEncoder(cfg)
			if err != nil {
				b.Fatal(err)
			}
			w := bitio.NewWriter(4096)
			if err := enc.EncodeBlock(w, block); err != nil {
				b.Fatal(err)
			}
			payload := append([]byte(nil), w.Bytes()...)
			dec, err := core.NewBlockDecoder(cfg)
			if err != nil {
				b.Fatal(err)
			}
			dst := make([]float64, cfg.BlockSize())
			r := bitio.NewReader(nil)
			b.SetBytes(int64(len(block) * 8))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r.Reset(payload)
				if err := dec.DecodeBlock(r, dst); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
