package pastri

import (
	"os"
	"path/filepath"
	"testing"
)

// Error-path battery at the public API: Inspect, MaxError and
// NewBlockReader on bit-flipped and prefix-cut streams derived from the
// golden fixtures must return errors (or a self-consistent success for
// benign payload flips) — never panic or read out of bounds.

func goldenStreams(t *testing.T) map[string][]byte {
	t.Helper()
	dir := filepath.Join("internal", "core", "testdata", "golden")
	matches, err := filepath.Glob(filepath.Join(dir, "*.pstr"))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no golden fixtures under %s (err=%v)", dir, err)
	}
	out := map[string][]byte{}
	for _, p := range matches {
		b, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		out[filepath.Base(p)] = b
	}
	return out
}

func TestInspectMaxErrorOnCorruptStreams(t *testing.T) {
	for name, stream := range goldenStreams(t) {
		want, err := Inspect(stream)
		if err != nil {
			t.Fatalf("%s: pristine stream rejected: %v", name, err)
		}
		for pos := range stream {
			for _, bit := range []byte{0x01, 0x10, 0x80} {
				m := append([]byte(nil), stream...)
				m[pos] ^= bit
				// Must not panic; success is allowed only with sane fields.
				if si, err := Inspect(m); err == nil {
					if si.Options.Validate() != nil {
						t.Fatalf("%s flip @%d: Inspect returned invalid options %+v",
							name, pos, si.Options)
					}
				}
				if me, err := MaxError(m); err == nil {
					if !(me > 0) {
						t.Fatalf("%s flip @%d: MaxError returned non-positive bound %g",
							name, pos, me)
					}
				}
				br, err := NewBlockReader(m)
				if err != nil {
					continue
				}
				dst := make([]float64, br.BlockSize())
				for b := 0; b < br.NumBlocks(); b++ {
					_ = br.ReadBlock(b, dst) // errors fine, panics are not
				}
			}
		}
		_ = want
	}
}

func TestInspectMaxErrorOnTruncatedStreams(t *testing.T) {
	for name, stream := range goldenStreams(t) {
		for cut := 0; cut < len(stream); cut++ {
			prefix := stream[:cut]
			if _, err := NewBlockReader(prefix); err == nil {
				t.Fatalf("%s: NewBlockReader accepted %d/%d-byte prefix", name, cut, len(stream))
			}
			if _, err := Inspect(prefix); err == nil {
				t.Fatalf("%s: Inspect accepted %d/%d-byte prefix", name, cut, len(stream))
			}
			if _, err := MaxError(prefix); err == nil {
				t.Fatalf("%s: MaxError accepted %d/%d-byte prefix", name, cut, len(stream))
			}
		}
	}
}

func TestBlockReaderOutOfRange(t *testing.T) {
	for _, stream := range goldenStreams(t) {
		br, err := NewBlockReader(stream)
		if err != nil {
			t.Fatal(err)
		}
		dst := make([]float64, br.BlockSize())
		if err := br.ReadBlock(-1, dst); err == nil {
			t.Fatal("negative block index accepted")
		}
		if err := br.ReadBlock(br.NumBlocks(), dst); err == nil {
			t.Fatal("past-the-end block index accepted")
		}
		if err := br.ReadBlock(0, dst[:len(dst)-1]); err == nil {
			t.Fatal("short destination accepted")
		}
		break
	}
}
