// Package pastri is an error-bounded lossy compressor for two-electron
// repulsion integrals (ERIs) and other block-patterned floating-point
// data, reproducing the PaSTRI algorithm (Gok et al., IEEE CLUSTER
// 2018).
//
// # Background
//
// Quantum chemistry codes spend most of their time computing ERIs, whose
// count scales as O(N⁴) with system size; iterative solvers need them
// 10–30 times over. PaSTRI makes storing them practical: each
// shell-quartet block of integrals consists of sub-blocks that repeat a
// single latent pattern up to one scaling coefficient, so a block of
// Na·Nb·Nc·Nd doubles compresses to one quantized pattern (Nc·Nd
// points), Na·Nb quantized scaling coefficients, and compact
// error-correction codes that make the result exact to a user-chosen
// absolute error bound.
//
// # Usage
//
//	opts := pastri.NewOptions(36, 36, 1e-10) // (dd|dd) blocks, EB 1e-10
//	comp, err := pastri.Compress(data, opts)
//	...
//	orig, err := pastri.Decompress(comp)
//
// Every block is compressed and decompressed independently, so both
// directions parallelize across blocks (Options.Workers).
//
// The repository also contains everything needed to regenerate the
// paper's evaluation: a from-scratch Gaussian-integral engine standing
// in for GAMESS (internal/eri), SZ- and ZFP-style baseline compressors,
// a restricted Hartree–Fock solver, and benchmark harnesses for every
// figure — see DESIGN.md and EXPERIMENTS.md.
package pastri
