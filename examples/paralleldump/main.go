// Parallel dump/load example (paper Fig. 10): compress a real ERI
// dataset with each codec, measure the achieved ratio and rates, and
// model dumping/loading a production-scale stream to a GPFS-class
// parallel file system at 256–2048 cores, file-per-process.
package main

import (
	"fmt"
	"log"
	"time"

	pastri "repro"
	"repro/internal/basis"
	"repro/internal/eri"
	"repro/internal/iosim"
	"repro/internal/sz"
	"repro/internal/zfp"
)

func main() {
	mol := basis.ClusterXYZ(basis.Benzene(), 2, 2, 5, 7.2, 6.6, 3.5)
	ds, err := eri.GeneratePure(mol, 2, eri.GenerateOptions{MaxBlocks: 400})
	if err != nil {
		log.Fatal(err)
	}
	raw := float64(ds.SizeBytes())
	const eb = 1e-10

	// Measure each codec once, single core.
	profiles := []iosim.CodecProfile{
		measure("SZ", raw,
			func() ([]byte, error) { return sz.Compress(ds.Data, eb) },
			func(c []byte) error { _, e := sz.Decompress(c); return e }),
		measure("ZFP", raw,
			func() ([]byte, error) { return zfp.Compress(ds.Data, eb) },
			func(c []byte) error { _, e := zfp.Decompress(c); return e }),
		measure("PaSTRI", raw,
			func() ([]byte, error) {
				o := pastri.NewOptions(ds.NumSB, ds.SBSize, eb)
				o.Workers = 1
				return pastri.Compress(ds.Data, o)
			},
			func(c []byte) error { _, e := pastri.DecompressWorkers(c, 1); return e }),
	}

	fmt.Println("measured profiles (single core):")
	for _, p := range profiles {
		fmt.Printf("  %-7s ratio %6.2f  compress %4.0f MB/s  decompress %4.0f MB/s\n",
			p.Name, p.Ratio, p.CompressBps/1e6, p.DecompressBps/1e6)
	}

	// Model a 4 TB production stream on GPFS.
	const totalBytes = 4e12
	cfg := iosim.GPFSDefaults()
	fmt.Printf("\nmodeled dump (D) and load (L) of %.0f TB, file-per-process on GPFS:\n", totalBytes/1e12)
	fmt.Println("cores   codec     D total      L total")
	for _, cores := range []int{256, 512, 1024, 2048} {
		for _, p := range profiles {
			d, err := iosim.Dump(cfg, p, totalBytes, cores)
			if err != nil {
				log.Fatal(err)
			}
			l, err := iosim.Load(cfg, p, totalBytes, cores)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%5d   %-7s  %9.1fs   %9.1fs\n",
				cores, p.Name, d.Total().Seconds(), l.Total().Seconds())
		}
	}
	fmt.Println("\nPaSTRI dumps and loads ≥2x faster: the paper's Fig. 10 shape.")
}

func measure(name string, raw float64, comp func() ([]byte, error), dec func([]byte) error) iosim.CodecProfile {
	t0 := time.Now()
	c, err := comp()
	if err != nil {
		log.Fatal(err)
	}
	ct := time.Since(t0).Seconds()
	t0 = time.Now()
	if err := dec(c); err != nil {
		log.Fatal(err)
	}
	dt := time.Since(t0).Seconds()
	return iosim.CodecProfile{
		Name:          name,
		Ratio:         raw / float64(len(c)),
		CompressBps:   raw / ct,
		DecompressBps: raw / dt,
	}
}
