// Random access and streaming: write an ERI block stream incrementally
// to disk (never holding the raw dataset in memory), then fetch
// individual shell-quartet blocks on demand — the access pattern of a
// direct-SCF code pulling just the quartets one Fock tile needs.
// Both are consequences of PaSTRI's per-block independence (paper
// Sec. IV-C).
package main

import (
	"fmt"
	"log"
	"math"
	"os"
	"path/filepath"

	pastri "repro"
	"repro/internal/basis"
	"repro/internal/eri"
)

func main() {
	// Stream blocks to a file as they are generated.
	mol := basis.Cluster(basis.Benzene(), 2, 2, 1, 7.0)
	ds, err := eri.GeneratePure(mol, 2, eri.GenerateOptions{MaxBlocks: 120})
	if err != nil {
		log.Fatal(err)
	}
	path := filepath.Join(os.TempDir(), "pastri-randomaccess-demo.pstr")
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := os.Remove(path); err != nil {
			log.Printf("cleanup: %v", err)
		}
	}()

	opts := pastri.NewOptions(ds.NumSB, ds.SBSize, 1e-10)
	sw, err := pastri.NewStreamWriter(f, opts)
	if err != nil {
		log.Fatal(err)
	}
	for b := 0; b < ds.Blocks; b++ {
		if err := sw.WriteBlock(ds.Block(b)); err != nil {
			log.Fatal(err)
		}
	}
	if err := sw.Close(); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("streamed %d blocks to %s: %.1f MB raw -> %.2f MB (ratio %.2f)\n",
		ds.Blocks, path, float64(ds.SizeBytes())/1e6, float64(fi.Size())/1e6,
		float64(ds.SizeBytes())/float64(fi.Size()))

	// Random access: decompress only the blocks we ask for.
	comp, err := os.ReadFile(path)
	if err != nil {
		log.Fatal(err)
	}
	br, err := pastri.NewBlockReader(comp)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed %d blocks without decompressing anything\n", br.NumBlocks())

	dst := make([]float64, br.BlockSize())
	for _, b := range []int{7, 113, 42} {
		if err := br.ReadBlock(b, dst); err != nil {
			log.Fatal(err)
		}
		maxErr, maxVal := 0.0, 0.0
		orig := ds.Block(b)
		for i := range dst {
			if e := math.Abs(dst[i] - orig[i]); e > maxErr {
				maxErr = e
			}
			if a := math.Abs(orig[i]); a > maxVal {
				maxVal = a
			}
		}
		fmt.Printf("  block %3d: %5d compressed bytes, amplitude %.2e, max error %.2e\n",
			b, br.CompressedBlockBytes(b), maxVal, maxErr)
	}
	fmt.Println("every fetched block honors the 1e-10 bound independently")
}
