// Hartree–Fock example: the end-to-end use case that motivates PaSTRI
// (paper Fig. 11). An SCF calculation needs the two-electron integrals
// at every iteration; this example runs restricted Hartree–Fock on
// water with three ERI strategies and compares energies and the time
// spent obtaining integrals:
//
//   - direct:   recompute all ERIs every iteration (GAMESS "Original")
//   - memory:   compute once, keep raw in memory
//   - pastri:   compute once, store PaSTRI-compressed, decompress per
//     iteration — the paper's "PaSTRI infrastructure"
package main

import (
	"fmt"
	"log"

	"repro/internal/basis"
	"repro/internal/hf"
)

func main() {
	mol := basis.Water()
	bs, err := basis.STO3G(mol)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("RHF/STO-3G on %s: %d basis functions, %d electrons\n\n",
		mol.Name, bs.NBF(), mol.NElectrons())

	comp, err := hf.NewCompressedSource(bs, 1e-10)
	if err != nil {
		log.Fatal(err)
	}
	sources := []hf.ERISource{
		&hf.DirectSource{BS: bs},
		&hf.MemorySource{BS: bs},
		comp,
	}
	for _, src := range sources {
		res, err := hf.SCF(bs, 0, src, hf.Options{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-18s E = %.8f Eh  (%d iterations, converged=%v, ERI time %v)\n",
			src.Name(), res.Energy, res.Iterations, res.Converged, res.ERITime)
	}
	fmt.Printf("\ncompressed ERI store: %d -> %d bytes (ratio %.2f)\n",
		comp.RawBytes, comp.CompressedBytes,
		float64(comp.RawBytes)/float64(comp.CompressedBytes))

	// Production shape: never materialize the n⁴ tensor — stream
	// compressed shell-quartet blocks into the Fock build directly.
	store, err := hf.NewBlockedStore(bs, 1e-10)
	if err != nil {
		log.Fatal(err)
	}
	blocked, err := hf.SCFBlocked(bs, 0, store, hf.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-18s E = %.8f Eh  (%d quartet blocks, %d -> %d bytes)\n",
		"blocked-store", blocked.Energy, store.Blocks(), store.RawBytes, store.CompressedBytes)

	// Properties from the converged density.
	res, err := hf.SCF(bs, 0, comp, hf.Options{})
	if err != nil {
		log.Fatal(err)
	}
	mu, err := hf.DipoleMoment(bs, res.Density)
	if err != nil {
		log.Fatal(err)
	}
	q, err := hf.MullikenCharges(bs, res.Density, res.Overlap)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndipole moment: %.4f a.u. (%.3f D); Mulliken charges: O %+.3f, H %+.3f, H %+.3f\n",
		mu.Norm(), mu.Norm()*hf.AtomicUnitsToDebye, q[0], q[1], q[2])
	fmt.Println("\nAll strategies agree to well below chemical accuracy;")
	fmt.Println("with EB = 1e-10 per integral the energy shift is ≈ 1e-8 Eh.")
}
