// Generic-pattern example: PaSTRI "can be used for compressing any data
// with pattern features" (paper Sec. VI). This example compresses a
// non-chemistry dataset — a bank of sensor channels that all observe
// scaled copies of one transient waveform with small per-channel noise
// — and compares PaSTRI against a DEFLATE baseline.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	pastri "repro"
	"repro/internal/lossless"
)

func main() {
	const (
		channels   = 64   // sub-blocks per block: one per sensor channel
		samples    = 256  // points per sub-block: samples per frame
		frames     = 200  // blocks: repeated acquisition frames
		noiseLevel = 1e-9 // per-sample sensor noise
		eb         = 1e-8 // absolute error bound we ask for
	)
	rng := rand.New(rand.NewSource(42))
	data := make([]float64, 0, frames*channels*samples)
	for f := 0; f < frames; f++ {
		// Each frame observes one transient: a damped oscillation with
		// random phase and width.
		phase := rng.Float64() * 2 * math.Pi
		width := 30 + rng.Float64()*20
		wave := make([]float64, samples)
		for i := range wave {
			t := float64(i)
			wave[i] = math.Exp(-t/width) * math.Sin(t*0.3+phase) * 1e-4
		}
		for c := 0; c < channels; c++ {
			gain := (rng.Float64()*2 - 1) // per-channel gain in [-1, 1]
			for i := 0; i < samples; i++ {
				data = append(data, gain*wave[i]+noiseLevel*rng.NormFloat64())
			}
		}
	}

	opts := pastri.NewOptions(channels, samples, eb)
	comp, stats, err := pastri.CompressWithStats(data, opts)
	if err != nil {
		log.Fatal(err)
	}
	gz, err := lossless.Compress(data)
	if err != nil {
		log.Fatal(err)
	}
	recon, err := pastri.Decompress(comp)
	if err != nil {
		log.Fatal(err)
	}
	maxErr := 0.0
	for i := range recon {
		if e := math.Abs(recon[i] - data[i]); e > maxErr {
			maxErr = e
		}
	}

	raw := len(data) * 8
	fmt.Printf("sensor bank: %d frames x %d channels x %d samples (%.1f MB)\n",
		frames, channels, samples, float64(raw)/1e6)
	fmt.Printf("PaSTRI : %d bytes (ratio %6.2f), max error %.2e <= %.0e\n",
		len(comp), float64(raw)/float64(len(comp)), maxErr, eb)
	fmt.Printf("DEFLATE: %d bytes (ratio %6.2f), lossless\n",
		len(gz), float64(raw)/float64(len(gz)))
	fmt.Printf("block types: %v (most frames are Type 0/1: the pattern explains them)\n",
		stats.TypeCount)
}
