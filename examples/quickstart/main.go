// Quickstart: generate a small (dd|dd) ERI block stream with the
// built-in integral engine, compress it with PaSTRI at EB = 1e-10,
// decompress, and verify the error bound.
package main

import (
	"fmt"
	"log"
	"math"

	pastri "repro"
	"repro/internal/basis"
	"repro/internal/eri"
)

func main() {
	// 1. Generate ERI data: (dd|dd) shell-quartet blocks over a benzene
	// cluster — each block is a 6×6×6×6 tensor of 1296 integrals.
	mol := basis.Cluster(basis.Benzene(), 2, 1, 1, 7.0)
	ds, err := eri.GeneratePure(mol, 2, eri.GenerateOptions{MaxBlocks: 50})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %s, %d blocks, %.1f MB raw\n",
		ds.Name, ds.Blocks, float64(ds.SizeBytes())/1e6)

	// 2. Compress. For an ERI stream the block geometry is
	// (Na·Nb) sub-blocks of (Nc·Nd) points.
	opts := pastri.NewOptions(ds.NumSB, ds.SBSize, 1e-10)
	comp, stats, err := pastri.CompressWithStats(ds.Data, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compressed: %d -> %d bytes (ratio %.2f)\n",
		ds.SizeBytes(), len(comp), float64(ds.SizeBytes())/float64(len(comp)))
	fmt.Printf("block types (0: pattern-perfect ... 3: wide residuals): %v\n",
		stats.TypeCount)

	// 3. Decompress and verify the absolute error bound.
	recon, err := pastri.Decompress(comp)
	if err != nil {
		log.Fatal(err)
	}
	maxErr := 0.0
	for i := range recon {
		if e := math.Abs(recon[i] - ds.Data[i]); e > maxErr {
			maxErr = e
		}
	}
	fmt.Printf("max |error| = %.3e (bound %.0e)\n", maxErr, opts.ErrorBound)
	if maxErr > opts.ErrorBound {
		log.Fatal("error bound violated!")
	}
	fmt.Println("round trip OK")
}
