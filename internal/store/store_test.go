package store

import (
	"bytes"
	"errors"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
)

// testRNG is a self-contained xorshift64* generator, mirroring the
// golden-fixture generator so store tests never depend on math/rand.
type testRNG uint64

func (r *testRNG) next() float64 {
	x := uint64(*r)
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	*r = testRNG(x)
	return float64(x*0x2545F4914F6CDD1D>>11) / float64(1<<53)
}

// testBlocks builds nblocks deterministic ERI-shaped blocks for cfg.
func testBlocks(cfg core.Config, nblocks int, seed uint64) []float64 {
	rng := testRNG(seed)
	data := make([]float64, nblocks*cfg.BlockSize())
	for b := 0; b < nblocks; b++ {
		for s := 0; s < cfg.NumSB; s++ {
			scale := 1e-6 / (1 + 0.5*float64(s))
			base := b*cfg.BlockSize() + s*cfg.SBSize
			for i := 0; i < cfg.SBSize; i++ {
				x := float64(i+1) / float64(cfg.SBSize)
				data[base+i] = scale*x/(0.25+x*x) + (rng.next()-0.5)*cfg.ErrorBound*20
			}
		}
	}
	return data
}

func testCfg() core.Config { return core.Defaults(4, 9, 1e-10) }

// mustCompress produces a one-shot stream (exact block count header).
func mustCompress(t testing.TB, cfg core.Config, data []float64) []byte {
	t.Helper()
	comp, err := core.Compress(data, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	return comp
}

// putStream writes a compressed stream into the store.
func putStream(t testing.TB, st *Store, tenant, id string, comp []byte) {
	t.Helper()
	w, err := st.Create(tenant, id)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write(comp); err != nil {
		t.Fatal(err)
	}
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
}

func openStore(t testing.TB, cfg Config) *Store {
	t.Helper()
	if cfg.Dir == "" {
		cfg.Dir = t.TempDir()
	}
	st, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

func TestStoreRoundTrip(t *testing.T) {
	cfg := testCfg()
	data := testBlocks(cfg, 6, 1)
	comp := mustCompress(t, cfg, data)
	want, err := core.Decompress(comp, 1)
	if err != nil {
		t.Fatal(err)
	}

	st := openStore(t, Config{Shards: 4})
	putStream(t, st, "alice", "s1", comp)

	seg, err := st.Get("alice", "s1")
	if err != nil {
		t.Fatal(err)
	}
	if seg.NumBlocks() != 6 {
		t.Fatalf("NumBlocks = %d, want 6", seg.NumBlocks())
	}
	if seg.BlockSize() != cfg.BlockSize() {
		t.Fatalf("BlockSize = %d, want %d", seg.BlockSize(), cfg.BlockSize())
	}
	dst := make([]float64, cfg.BlockSize())
	for b := 0; b < seg.NumBlocks(); b++ {
		if err := seg.ReadBlock(b, dst); err != nil {
			t.Fatalf("block %d: %v", b, err)
		}
		for i, v := range dst {
			if math.Float64bits(v) != math.Float64bits(want[b*cfg.BlockSize()+i]) {
				t.Fatalf("block %d value %d: stored decode differs from serial decode", b, i)
			}
		}
	}
	// Cached handle: the same pointer comes back.
	again, err := st.Get("alice", "s1")
	if err != nil {
		t.Fatal(err)
	}
	if again != seg {
		t.Fatal("Get did not return the cached segment handle")
	}
}

// Streams produced incrementally (streaming sentinel in the header)
// must store and serve identically.
func TestStoreStreamedSegment(t *testing.T) {
	cfg := testCfg()
	data := testBlocks(cfg, 5, 2)
	var buf bytes.Buffer
	sw, err := core.NewStreamWriter(&buf, cfg)
	if err != nil {
		t.Fatal(err)
	}
	bs := cfg.BlockSize()
	for b := 0; b < 5; b++ {
		if err := sw.WriteBlock(data[b*bs : (b+1)*bs]); err != nil {
			t.Fatal(err)
		}
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	want, err := core.Decompress(buf.Bytes(), 1)
	if err != nil {
		t.Fatal(err)
	}

	st := openStore(t, Config{})
	putStream(t, st, "bob", "streamed", buf.Bytes())
	seg, err := st.Get("bob", "streamed")
	if err != nil {
		t.Fatal(err)
	}
	if seg.NumBlocks() != 5 {
		t.Fatalf("NumBlocks = %d, want 5", seg.NumBlocks())
	}
	dst := make([]float64, bs)
	for b := 0; b < 5; b++ {
		if err := seg.ReadBlock(b, dst); err != nil {
			t.Fatal(err)
		}
		for i, v := range dst {
			if math.Float64bits(v) != math.Float64bits(want[b*bs+i]) {
				t.Fatalf("block %d value %d differs", b, i)
			}
		}
	}
}

func TestStoreErrors(t *testing.T) {
	cfg := testCfg()
	comp := mustCompress(t, cfg, testBlocks(cfg, 2, 3))
	st := openStore(t, Config{})
	putStream(t, st, "alice", "s1", comp)

	if _, err := st.Get("alice", "nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing stream: got %v, want ErrNotFound", err)
	}
	if _, err := st.Get("alice", "../evil"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("path-traversal id: got %v, want ErrNotFound", err)
	}
	if _, err := st.Create("alice", "s1"); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate create: got %v, want ErrExists", err)
	}
	seg, err := st.Get("alice", "s1")
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]float64, cfg.BlockSize())
	if err := seg.ReadBlock(-1, dst); !errors.Is(err, ErrNotFound) {
		t.Fatalf("negative block: got %v, want ErrNotFound", err)
	}
	if err := seg.ReadBlock(2, dst); !errors.Is(err, ErrNotFound) {
		t.Fatalf("past-the-end block: got %v, want ErrNotFound", err)
	}
	if err := seg.ReadBlock(0, dst[:1]); err == nil {
		t.Fatal("short destination accepted")
	}

	// Garbage bytes must fail at Commit with ErrCorrupt, and leave
	// nothing behind.
	w, err := st.Create("alice", "garbage")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte("this is not a pastri stream")); err != nil {
		t.Fatal(err)
	}
	if err := w.Commit(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("garbage commit: got %v, want ErrCorrupt", err)
	}
	if _, err := st.Get("alice", "garbage"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("garbage stream visible after failed commit: %v", err)
	}

	if err := st.Delete("alice", "s1"); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Get("alice", "s1"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("deleted stream still served: %v", err)
	}
	if err := st.Delete("alice", "s1"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double delete: got %v, want ErrNotFound", err)
	}
	if st.Usage("alice") != 0 {
		t.Fatalf("usage after delete = %d, want 0", st.Usage("alice"))
	}

	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Get("alice", "s1"); !errors.Is(err, ErrClosed) {
		t.Fatalf("closed store: got %v, want ErrClosed", err)
	}
	if _, err := st.Create("alice", "s2"); !errors.Is(err, ErrClosed) {
		t.Fatalf("closed store create: got %v, want ErrClosed", err)
	}
}

func TestStoreQuota(t *testing.T) {
	cfg := testCfg()
	comp := mustCompress(t, cfg, testBlocks(cfg, 4, 4))
	need := int64(len(comp)) + 256 // segment + a small index

	st := openStore(t, Config{Quotas: map[string]int64{"tiny": need, "rich": 10 * need}})
	putStream(t, st, "tiny", "s1", comp)
	if st.Usage("tiny") <= int64(len(comp)) {
		t.Fatalf("usage %d should include the index", st.Usage("tiny"))
	}

	// A second stream of the same size cannot fit: the rejection may
	// come at Create (already at quota), mid-Write, or at Commit — but
	// it must come, and it must be ErrQuota.
	w, err := st.Create("tiny", "s2")
	switch {
	case errors.Is(err, ErrQuota):
		// Rejected up front.
	case err != nil:
		t.Fatal(err)
	default:
		_, werr := w.Write(comp)
		cerr := error(nil)
		if werr == nil {
			cerr = w.Commit()
		} else {
			w.Abort()
		}
		if !errors.Is(werr, ErrQuota) && !errors.Is(cerr, ErrQuota) {
			t.Fatalf("over-quota upload succeeded (write=%v commit=%v)", werr, cerr)
		}
	}
	// The other tenant is unaffected.
	putStream(t, st, "rich", "s1", comp)

	// Deleting frees the quota for a new upload.
	if err := st.Delete("tiny", "s1"); err != nil {
		t.Fatal(err)
	}
	putStream(t, st, "tiny", "s3", comp)
}

// Usage accounting and debris sweeping must survive a reopen.
func TestStoreReopen(t *testing.T) {
	cfg := testCfg()
	comp := mustCompress(t, cfg, testBlocks(cfg, 3, 5))
	dir := t.TempDir()

	st := openStore(t, Config{Dir: dir, Shards: 4})
	putStream(t, st, "alice", "s1", comp)
	putStream(t, st, "bob", "s2", comp)
	usedAlice, usedBob := st.Usage("alice"), st.Usage("bob")
	// Leave a torn temp file and an orphan segment behind.
	if err := os.WriteFile(filepath.Join(dir, "shard-00", "x.y.seg.tmp"), []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "shard-01", "ghost.s9.seg"), comp, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2 := openStore(t, Config{Dir: dir, Shards: 4})
	if got := st2.Usage("alice"); got != usedAlice {
		t.Fatalf("alice usage after reopen = %d, want %d", got, usedAlice)
	}
	if got := st2.Usage("bob"); got != usedBob {
		t.Fatalf("bob usage after reopen = %d, want %d", got, usedBob)
	}
	if got := st2.Usage("ghost"); got != 0 {
		t.Fatalf("orphan segment counted: %d", got)
	}
	if _, err := os.Stat(filepath.Join(dir, "shard-00", "x.y.seg.tmp")); !os.IsNotExist(err) {
		t.Fatal("temp debris survived reopen")
	}
	if _, err := os.Stat(filepath.Join(dir, "shard-01", "ghost.s9.seg")); !os.IsNotExist(err) {
		t.Fatal("orphan segment survived reopen")
	}
	seg, err := st2.Get("alice", "s1")
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]float64, cfg.BlockSize())
	if err := seg.ReadBlock(0, dst); err != nil {
		t.Fatal(err)
	}
}

func TestStoreListAndSharding(t *testing.T) {
	cfg := testCfg()
	comp := mustCompress(t, cfg, testBlocks(cfg, 1, 6))
	dir := t.TempDir()
	st := openStore(t, Config{Dir: dir, Shards: 4})
	ids := []string{"a1", "b2", "c3", "d4", "e5", "f6", "g7", "h8"}
	for _, id := range ids {
		putStream(t, st, "alice", id, comp)
	}
	putStream(t, st, "bob", "z9", comp)

	list, err := st.List("alice")
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != len(ids) {
		t.Fatalf("List returned %d streams, want %d", len(list), len(ids))
	}
	for i, s := range list {
		if s.ID != ids[i] {
			t.Fatalf("List not sorted: got %q at %d", s.ID, i)
		}
		if s.SegmentBytes != int64(len(comp)) {
			t.Fatalf("SegmentBytes = %d, want %d", s.SegmentBytes, len(comp))
		}
	}

	// Files must actually spread over more than one shard directory.
	shardsUsed := 0
	for i := 0; i < 4; i++ {
		entries, err := os.ReadDir(filepath.Join(dir, shardDirName(i)))
		if err != nil {
			t.Fatal(err)
		}
		if len(entries) > 0 {
			shardsUsed++
		}
	}
	if shardsUsed < 2 {
		t.Fatalf("9 streams landed in %d shard(s); hashing is not spreading", shardsUsed)
	}
}

func shardDirName(i int) string {
	return "shard-" + string("0123456789abcdef"[i>>4]) + string("0123456789abcdef"[i&0xf])
}

func TestStoreConcurrentReaders(t *testing.T) {
	cfg := testCfg()
	data := testBlocks(cfg, 8, 7)
	comp := mustCompress(t, cfg, data)
	want, err := core.Decompress(comp, 1)
	if err != nil {
		t.Fatal(err)
	}
	st := openStore(t, Config{})
	putStream(t, st, "alice", "s1", comp)
	seg, err := st.Get("alice", "s1")
	if err != nil {
		t.Fatal(err)
	}
	bs := cfg.BlockSize()
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		g := g
		go func() {
			dst := make([]float64, bs)
			for rep := 0; rep < 50; rep++ {
				b := (g + rep) % seg.NumBlocks()
				if err := seg.ReadBlock(b, dst); err != nil {
					done <- err
					return
				}
				for i, v := range dst {
					if math.Float64bits(v) != math.Float64bits(want[b*bs+i]) {
						done <- errors.New("concurrent read returned wrong data")
						return
					}
				}
			}
			done <- nil
		}()
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func TestValidName(t *testing.T) {
	for _, ok := range []string{"alice", "A-1_b", "0", strings.Repeat("x", 128)} {
		if !validName(ok) {
			t.Errorf("validName(%q) = false", ok)
		}
	}
	for _, bad := range []string{"", ".", "a.b", "a/b", "a b", "é", strings.Repeat("x", 129), "..", "a\x00b"} {
		if validName(bad) {
			t.Errorf("validName(%q) = true", bad)
		}
	}
}
