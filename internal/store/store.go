// Package store is pastrid's sharded on-disk block store. Each stored
// stream is one *segment* — the exact PaSTRI stream bytes the
// compression pipeline produced — paired with a *block index* that
// records where every block payload lives, its length and its CRC, so
// a single block can be served with one ReadAt and decoded without
// touching the rest of the segment (the random-access property the
// paper highlights in Sec. IV-C, taken to disk).
//
// Layout under the store root:
//
//	shard-00/ … shard-NN/         (FNV-1a hash of "tenant/id" mod shards)
//	    <tenant>.<id>.seg         segment: the compressed stream bytes
//	    <tenant>.<id>.idx         block index (see index.go)
//
// Durability and integrity:
//
//   - Writes are atomic: segment and index are built under temp names,
//     fsynced, and renamed into place index-first-removed/segment-last
//     ordering on delete, segment-then-index on commit — a crash never
//     leaves a readable-but-wrong pair, only a missing index (treated
//     as not-found debris and cleaned on open).
//   - The index carries a CRC of itself, a CRC of the whole segment,
//     and a CRC per block payload. Open verifies the index and segment
//     checksums; every block read re-verifies the payload checksum, so
//     bit rot after open is caught before bytes are served.
//   - All corruption paths return errors wrapping ErrCorrupt — never a
//     panic, never silently wrong data.
//
// Multi-tenancy: streams are namespaced by tenant, and the store
// enforces per-tenant byte quotas (segment + index sizes) at create,
// during writes, and again atomically at commit.
package store

import (
	"errors"
	"fmt"
	"hash/fnv"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/telemetry/trace"
)

// Typed error classes. Callers dispatch with errors.Is; every error the
// store returns wraps exactly one of these (or is an annotated OS
// error from the underlying filesystem).
var (
	// ErrNotFound reports a tenant/id pair with no committed stream.
	ErrNotFound = errors.New("store: stream not found")
	// ErrExists reports a create for a tenant/id that is already stored.
	ErrExists = errors.New("store: stream already exists")
	// ErrCorrupt reports an unreadable segment or index: bad magic,
	// checksum mismatch, truncation, or impossible geometry. Corrupt
	// streams are never partially served.
	ErrCorrupt = errors.New("store: corrupt stream")
	// ErrQuota reports a write that would push a tenant over its byte
	// quota.
	ErrQuota = errors.New("store: tenant quota exceeded")
	// ErrClosed reports use of a closed store.
	ErrClosed = errors.New("store: closed")
)

// Config parameterizes a store.
type Config struct {
	// Dir is the store root; it is created if missing.
	Dir string
	// Shards is the number of shard directories (default 8, max 4096).
	Shards int
	// Quotas caps each tenant's total stored bytes (segments + indexes).
	// Absent or non-positive entries mean unlimited.
	Quotas map[string]int64
}

// DefaultShards is the shard-directory count used when Config.Shards
// is zero.
const DefaultShards = 8

// Store is a sharded, checksummed, quota-enforcing collection of
// compressed streams. All methods are safe for concurrent use.
type Store struct {
	dir    string
	shards int

	mu     sync.Mutex
	quotas map[string]int64
	used   map[string]int64    // committed bytes per tenant
	open   map[string]*Segment // key → open segment handle
	closed bool
}

// Open opens (creating if necessary) a store rooted at cfg.Dir, scans
// the shard directories to rebuild per-tenant usage accounting, and
// removes leftover temp files from interrupted writes.
func Open(cfg Config) (*Store, error) {
	shards := cfg.Shards
	if shards <= 0 {
		shards = DefaultShards
	}
	if shards > 4096 {
		return nil, fmt.Errorf("store: shard count %d exceeds 4096", shards)
	}
	s := &Store{
		dir:    cfg.Dir,
		shards: shards,
		quotas: make(map[string]int64, len(cfg.Quotas)),
		used:   make(map[string]int64),
		open:   make(map[string]*Segment),
	}
	for t, q := range cfg.Quotas {
		s.quotas[t] = q
	}
	for i := 0; i < shards; i++ {
		if err := os.MkdirAll(s.shardDir(i), 0o755); err != nil {
			return nil, fmt.Errorf("store: creating shard dir: %w", err)
		}
	}
	if err := s.scan(); err != nil {
		return nil, err
	}
	return s, nil
}

// scan walks the shard directories rebuilding tenant usage and
// sweeping temp debris from interrupted writes. Orphan segments (no
// index — a crash between the two renames) are removed: they were
// never committed.
func (s *Store) scan() error {
	for i := 0; i < s.shards; i++ {
		dir := s.shardDir(i)
		entries, err := os.ReadDir(dir)
		if err != nil {
			return fmt.Errorf("store: scanning %s: %w", dir, err)
		}
		// First pass: collect names so orphan detection sees the full set.
		names := make(map[string]bool, len(entries))
		for _, e := range entries {
			names[e.Name()] = true
		}
		for _, e := range entries {
			name := e.Name()
			switch {
			case strings.HasSuffix(name, ".tmp"):
				if err := os.Remove(filepath.Join(dir, name)); err != nil {
					return fmt.Errorf("store: sweeping temp file: %w", err)
				}
			case strings.HasSuffix(name, segSuffix):
				base := strings.TrimSuffix(name, segSuffix)
				if !names[base+idxSuffix] {
					// Committed segments always have an index; this one's
					// write was interrupted before the index rename.
					if err := os.Remove(filepath.Join(dir, name)); err != nil {
						return fmt.Errorf("store: sweeping orphan segment: %w", err)
					}
					continue
				}
				tenant, _, ok := splitBase(base)
				if !ok {
					continue
				}
				info, err := e.Info()
				if err != nil {
					return fmt.Errorf("store: stat %s: %w", name, err)
				}
				s.used[tenant] += info.Size()
			case strings.HasSuffix(name, idxSuffix):
				base := strings.TrimSuffix(name, idxSuffix)
				tenant, _, ok := splitBase(base)
				if !ok || !names[base+segSuffix] {
					continue
				}
				info, err := e.Info()
				if err != nil {
					return fmt.Errorf("store: stat %s: %w", name, err)
				}
				s.used[tenant] += info.Size()
			}
		}
	}
	return nil
}

const (
	segSuffix = ".seg"
	idxSuffix = ".idx"
)

// ValidName reports whether s is usable as a tenant or stream id —
// the server validates request names up front with it so syntactically
// bad ids become 400s instead of store-level not-founds.
func ValidName(s string) bool { return validName(s) }

// validName reports whether a tenant or stream id is safe to embed in
// a filename: nonempty ASCII letters, digits, '-' and '_' only.
func validName(s string) bool {
	if s == "" || len(s) > 128 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_':
		default:
			return false
		}
	}
	return true
}

func key(tenant, id string) string { return tenant + "/" + id }

// splitBase recovers (tenant, id) from a "<tenant>.<id>" file base.
func splitBase(base string) (tenant, id string, ok bool) {
	tenant, id, ok = strings.Cut(base, ".")
	if !ok || !validName(tenant) || !validName(id) {
		return "", "", false
	}
	return tenant, id, true
}

func (s *Store) shardDir(i int) string {
	return filepath.Join(s.dir, fmt.Sprintf("shard-%02x", i))
}

// shardOf maps a stream key onto its shard directory index.
func (s *Store) shardOf(k string) int {
	h := fnv.New32a()
	h.Write([]byte(k)) //lint:errdrop-ok hash.Hash.Write never fails
	return int(h.Sum32() % uint32(s.shards))
}

// paths returns the committed segment and index paths for a stream.
func (s *Store) paths(tenant, id string) (seg, idx string) {
	base := filepath.Join(s.shardDir(s.shardOf(key(tenant, id))), tenant+"."+id)
	return base + segSuffix, base + idxSuffix
}

func checkNames(tenant, id string) error {
	if !validName(tenant) {
		return fmt.Errorf("store: invalid tenant name %q: %w", tenant, ErrNotFound)
	}
	if !validName(id) {
		return fmt.Errorf("store: invalid stream id %q: %w", id, ErrNotFound)
	}
	return nil
}

// quota returns the byte quota for a tenant (0 = unlimited).
func (s *Store) quota(tenant string) int64 {
	q := s.quotas[tenant]
	if q < 0 {
		q = 0
	}
	return q
}

// Usage returns a tenant's committed bytes.
func (s *Store) Usage(tenant string) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.used[tenant]
}

// Quota returns a tenant's configured byte quota (0 = unlimited) —
// readiness probes compare it against Usage for headroom checks.
func (s *Store) Quota(tenant string) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.quota(tenant)
}

// Closed reports whether Close has been called.
func (s *Store) Closed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// Create starts writing a new stream for tenant under id. The returned
// SegmentWriter is an io.Writer for the compressed stream bytes; the
// stream becomes visible only after Commit. A tenant already at or
// over quota is rejected up front.
func (s *Store) Create(tenant, id string) (*SegmentWriter, error) {
	if err := checkNames(tenant, id); err != nil {
		return nil, err
	}
	segPath, idxPath := s.paths(tenant, id)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	if q := s.quota(tenant); q > 0 && s.used[tenant] >= q {
		return nil, fmt.Errorf("store: tenant %q at %d of %d bytes: %w", tenant, s.used[tenant], q, ErrQuota)
	}
	if _, err := os.Stat(idxPath); err == nil {
		return nil, fmt.Errorf("store: %s/%s: %w", tenant, id, ErrExists)
	}
	f, err := os.OpenFile(segPath+".tmp", os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		if errors.Is(err, fs.ErrExist) {
			return nil, fmt.Errorf("store: %s/%s is being written: %w", tenant, id, ErrExists)
		}
		return nil, fmt.Errorf("store: creating segment: %w", err)
	}
	return &SegmentWriter{
		st:      s,
		tenant:  tenant,
		id:      id,
		f:       f,
		segPath: segPath,
		idxPath: idxPath,
	}, nil
}

// Get returns an open handle for a committed stream. Handles are
// cached: concurrent readers share one *Segment (its reads are
// concurrency-safe), and the handle stays valid until Delete or Close.
func (s *Store) Get(tenant, id string) (*Segment, error) {
	if err := checkNames(tenant, id); err != nil {
		return nil, err
	}
	k := key(tenant, id)
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	if seg := s.open[k]; seg != nil {
		s.mu.Unlock()
		return seg, nil
	}
	s.mu.Unlock()

	segPath, idxPath := s.paths(tenant, id)
	seg, err := openSegment(segPath, idxPath)
	if err != nil {
		return nil, err
	}
	seg.tenant, seg.id = tenant, id

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		seg.close() //lint:errdrop-ok store already closed; the handle never escaped
		return nil, ErrClosed
	}
	if prior := s.open[k]; prior != nil {
		// Another goroutine won the open race; keep its handle.
		seg.close() //lint:errdrop-ok duplicate handle from a lost open race
		return prior, nil
	}
	s.open[k] = seg
	return seg, nil
}

// Delete removes a committed stream and releases its quota bytes. The
// index is removed first so a crash mid-delete leaves an orphan
// segment (swept on next Open), never an index pointing at nothing.
func (s *Store) Delete(tenant, id string) error {
	if err := checkNames(tenant, id); err != nil {
		return err
	}
	segPath, idxPath := s.paths(tenant, id)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	idxInfo, err := os.Stat(idxPath)
	if err != nil {
		return fmt.Errorf("store: %s/%s: %w", tenant, id, ErrNotFound)
	}
	segInfo, err := os.Stat(segPath)
	if err != nil {
		return fmt.Errorf("store: %s/%s: %w", tenant, id, ErrNotFound)
	}
	if seg := s.open[key(tenant, id)]; seg != nil {
		delete(s.open, key(tenant, id))
		seg.close() //lint:errdrop-ok the files are unlinked below regardless
	}
	if err := os.Remove(idxPath); err != nil {
		return fmt.Errorf("store: removing index: %w", err)
	}
	if err := os.Remove(segPath); err != nil {
		return fmt.Errorf("store: removing segment: %w", err)
	}
	s.used[tenant] -= idxInfo.Size() + segInfo.Size()
	if s.used[tenant] < 0 {
		s.used[tenant] = 0
	}
	return nil
}

// StreamStat describes one committed stream.
type StreamStat struct {
	Tenant string
	ID     string
	// SegmentBytes is the compressed stream size on disk.
	SegmentBytes int64
	// IndexBytes is the block index size on disk.
	IndexBytes int64
}

// List returns the committed streams for one tenant, sorted by id.
func (s *Store) List(tenant string) ([]StreamStat, error) {
	if !validName(tenant) {
		return nil, nil
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	s.mu.Unlock()
	var out []StreamStat
	prefix := tenant + "."
	for i := 0; i < s.shards; i++ {
		entries, err := os.ReadDir(s.shardDir(i))
		if err != nil {
			return nil, fmt.Errorf("store: listing: %w", err)
		}
		for _, e := range entries {
			name := e.Name()
			if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, idxSuffix) {
				continue
			}
			base := strings.TrimSuffix(name, idxSuffix)
			_, id, ok := splitBase(base)
			if !ok {
				continue
			}
			idxInfo, err := e.Info()
			if err != nil {
				continue
			}
			segInfo, err := os.Stat(filepath.Join(s.shardDir(i), base+segSuffix))
			if err != nil {
				continue
			}
			out = append(out, StreamStat{
				Tenant:       tenant,
				ID:           id,
				SegmentBytes: segInfo.Size(),
				IndexBytes:   idxInfo.Size(),
			})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}

// Close closes all open segment handles. Further calls on the store
// return ErrClosed.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	var firstErr error
	for k, seg := range s.open {
		if err := seg.close(); err != nil && firstErr == nil {
			firstErr = err
		}
		delete(s.open, k)
	}
	return firstErr
}

// commit finalizes a segment writer's files under the store lock:
// re-checks the quota against the final sizes, renames segment then
// index into place, and updates accounting.
func (s *Store) commit(w *SegmentWriter, idxBytes []byte) error {
	segSize := w.n
	idxSize := int64(len(idxBytes))
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if q := s.quota(w.tenant); q > 0 && s.used[w.tenant]+segSize+idxSize > q {
		return fmt.Errorf("store: tenant %q would use %d of %d bytes: %w",
			w.tenant, s.used[w.tenant]+segSize+idxSize, q, ErrQuota)
	}
	if err := writeFileSync(w.idxPath+".tmp", idxBytes); err != nil {
		return fmt.Errorf("store: writing index: %w", err)
	}
	if err := os.Rename(w.segPath+".tmp", w.segPath); err != nil {
		return fmt.Errorf("store: committing segment: %w", err)
	}
	if err := os.Rename(w.idxPath+".tmp", w.idxPath); err != nil {
		// Roll the segment back out so no index-less segment is served.
		os.Remove(w.segPath) //lint:errdrop-ok best-effort rollback; open sweeps orphans anyway
		return fmt.Errorf("store: committing index: %w", err)
	}
	s.used[w.tenant] += segSize + idxSize
	return nil
}

// writeFileSync writes data to path and fsyncs it before closing.
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close() //lint:errdrop-ok write already failed; the close error is secondary
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close() //lint:errdrop-ok sync already failed; the close error is secondary
		return err
	}
	return f.Close()
}

// SegmentWriter accumulates one stream's compressed bytes. Write it,
// then Commit to make the stream visible, or Abort to discard. It
// enforces the tenant quota incrementally so an over-quota upload
// fails while streaming, not after.
type SegmentWriter struct {
	st      *Store
	tenant  string
	id      string
	f       *os.File
	segPath string
	idxPath string
	n       int64
	err     error
	done    bool
	sp      *trace.Span // request span for Commit's child spans; may be nil
}

// SetTrace attaches the request span under which Commit records its
// store.commit / store.fsync / store.build_index child spans. Call it
// before Commit; a nil span (the default) disables the spans.
func (w *SegmentWriter) SetTrace(sp *trace.Span) { w.sp = sp }

// Write appends compressed stream bytes to the pending segment.
func (w *SegmentWriter) Write(p []byte) (int, error) {
	if w.err != nil {
		return 0, w.err
	}
	if w.done {
		return 0, fmt.Errorf("store: write after commit/abort")
	}
	if q := w.st.quota(w.tenant); q > 0 {
		w.st.mu.Lock()
		used := w.st.used[w.tenant]
		w.st.mu.Unlock()
		if used+w.n+int64(len(p)) > q {
			w.err = fmt.Errorf("store: tenant %q upload exceeds %d-byte quota: %w", w.tenant, q, ErrQuota)
			return 0, w.err
		}
	}
	n, err := w.f.Write(p)
	w.n += int64(n)
	if err != nil {
		w.err = fmt.Errorf("store: writing segment: %w", err)
		return n, w.err
	}
	return n, nil
}

// Commit validates the written stream, builds its block index, and
// atomically publishes both files. On any failure the temp files are
// removed and the stream is not visible.
func (w *SegmentWriter) Commit() (err error) {
	if w.done {
		return fmt.Errorf("store: double commit")
	}
	csp := w.sp.StartChild("store.commit")
	defer func() {
		if err != nil {
			csp.SetError(err)
			w.Abort()
		}
		csp.End()
	}()
	if w.err != nil {
		return w.err
	}
	w.done = true
	fsp := csp.StartChild("store.fsync")
	err = w.f.Sync()
	fsp.End()
	if err != nil {
		w.done = false
		return fmt.Errorf("store: syncing segment: %w", err)
	}
	if err := w.f.Close(); err != nil {
		w.done = false
		return fmt.Errorf("store: closing segment: %w", err)
	}
	// Re-read what landed on disk: the index must describe the durable
	// bytes, not the bytes we think we wrote.
	segBytes, err := os.ReadFile(w.segPath + ".tmp")
	if err != nil {
		w.done = false
		return fmt.Errorf("store: rereading segment: %w", err)
	}
	bsp := csp.StartChild("store.build_index")
	idxBytes, err := buildIndex(segBytes)
	bsp.End()
	if err != nil {
		w.done = false
		return err
	}
	if err := w.st.commit(w, idxBytes); err != nil {
		w.done = false
		return err
	}
	return nil
}

// Blocks parses the pending segment and returns its block count; it is
// only meaningful after all stream bytes have been written.
func (w *SegmentWriter) Blocks() (int, error) {
	if w.err != nil {
		return 0, w.err
	}
	segBytes, err := os.ReadFile(w.segPath + ".tmp")
	if err != nil {
		return 0, fmt.Errorf("store: rereading segment: %w", err)
	}
	br, err := core.NewBlockReader(segBytes)
	if err != nil {
		return 0, fmt.Errorf("store: %v: %w", err, ErrCorrupt)
	}
	return br.NumBlocks(), nil
}

// Bytes returns the number of segment bytes written so far.
func (w *SegmentWriter) Bytes() int64 { return w.n }

// Abort discards the pending stream. Safe to call after a failed
// Commit; idempotent.
func (w *SegmentWriter) Abort() {
	if w.done {
		return
	}
	w.done = true
	w.f.Close()                   //lint:errdrop-ok the file is being discarded
	os.Remove(w.segPath + ".tmp") //lint:errdrop-ok best effort: open sweeps leftover temps
	os.Remove(w.idxPath + ".tmp") //lint:errdrop-ok best effort: open sweeps leftover temps
}
