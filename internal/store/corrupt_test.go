package store

import (
	"errors"
	"math"
	"os"
	"testing"

	"repro/internal/core"
)

// Fault-injection battery: torn/short writes, bit-flipped segment
// bytes and truncated or mutated indexes must surface as typed errors
// (ErrCorrupt / ErrNotFound) — never a panic, and never wrong block
// data. The mutation style mirrors the public-API corrupt_test.go
// battery: exhaustive truncations plus per-byte bit flips.

// corruptFixture builds a committed stream and returns the store, the
// on-disk paths and the expected serial decode.
func corruptFixture(t *testing.T) (st *Store, segPath, idxPath string, cfg core.Config, want []float64) {
	t.Helper()
	cfg = testCfg()
	data := testBlocks(cfg, 4, 11)
	comp := mustCompress(t, cfg, data)
	want, err := core.Decompress(comp, 1)
	if err != nil {
		t.Fatal(err)
	}
	st = openStore(t, Config{Shards: 2})
	putStream(t, st, "qa", "victim", comp)
	segPath, idxPath = st.paths("qa", "victim")
	return st, segPath, idxPath, cfg, want
}

// readAllBlocks opens the pair directly and reads every block,
// comparing against want. It reports whether open succeeded, and fails
// the test on any panic (implicit) or wrong data.
func readAllBlocks(t *testing.T, segPath, idxPath string, want []float64) (opened bool, err error) {
	t.Helper()
	seg, err := openSegment(segPath, idxPath)
	if err != nil {
		if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrNotFound) {
			t.Fatalf("open returned untyped error: %v", err)
		}
		return false, err
	}
	defer seg.close()
	dst := make([]float64, seg.BlockSize())
	for b := 0; b < seg.NumBlocks(); b++ {
		if rerr := seg.ReadBlock(b, dst); rerr != nil {
			if !errors.Is(rerr, ErrCorrupt) && !errors.Is(rerr, ErrNotFound) {
				t.Fatalf("ReadBlock returned untyped error: %v", rerr)
			}
			continue
		}
		if want != nil {
			bs := seg.BlockSize()
			for i, v := range dst {
				if math.Float64bits(v) != math.Float64bits(want[b*bs+i]) {
					t.Fatalf("block %d value %d: corrupted store served WRONG data", b, i)
				}
			}
		}
	}
	return true, nil
}

func mutateFile(t *testing.T, path string, mutate func([]byte) []byte) (restore func()) {
	t.Helper()
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, mutate(append([]byte(nil), orig...)), 0o644); err != nil {
		t.Fatal(err)
	}
	return func() {
		if err := os.WriteFile(path, orig, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// Every single-bit flip anywhere in the segment must be caught: by the
// open-time whole-segment CRC when opening fresh, and the flipped
// block can never decode to wrong bytes.
func TestStoreBitFlippedSegment(t *testing.T) {
	_, segPath, idxPath, _, want := corruptFixture(t)
	segBytes, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}
	step := 1
	if len(segBytes) > 512 {
		step = len(segBytes) / 512
	}
	for pos := 0; pos < len(segBytes); pos += step {
		for _, bit := range []byte{0x01, 0x80} {
			pos, bit := pos, bit
			restore := mutateFile(t, segPath, func(b []byte) []byte {
				b[pos] ^= bit
				return b
			})
			opened, err := readAllBlocks(t, segPath, idxPath, want)
			if opened {
				t.Fatalf("flip @%d/%#x: open succeeded on a segment whose CRC cannot match", pos, bit)
			}
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("flip @%d/%#x: got %v, want ErrCorrupt", pos, bit, err)
			}
			restore()
		}
	}
}

// A block read must re-verify the payload checksum even when the
// segment was pristine at open time (bit rot after open).
func TestStoreBitFlipAfterOpen(t *testing.T) {
	_, segPath, idxPath, cfg, want := corruptFixture(t)
	seg, err := openSegment(segPath, idxPath)
	if err != nil {
		t.Fatal(err)
	}
	defer seg.close()

	// Flip one bit inside block 2's payload on disk, behind the open
	// handle's back.
	off, n := seg.blocks[2].off, seg.blocks[2].n
	restore := mutateFile(t, segPath, func(b []byte) []byte {
		b[off+uint64(n)/2] ^= 0x40
		return b
	})
	defer restore()

	dst := make([]float64, cfg.BlockSize())
	if err := seg.ReadBlock(2, dst); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("post-open flip: got %v, want ErrCorrupt", err)
	}
	// Unaffected blocks still serve correct bytes.
	if err := seg.ReadBlock(0, dst); err != nil {
		t.Fatal(err)
	}
	for i, v := range dst {
		if math.Float64bits(v) != math.Float64bits(want[i]) {
			t.Fatalf("value %d of untouched block changed", i)
		}
	}
}

// Every prefix truncation of the segment (a torn write) must fail
// open with a typed error.
func TestStoreTruncatedSegment(t *testing.T) {
	_, segPath, idxPath, _, want := corruptFixture(t)
	segBytes, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}
	step := 1
	if len(segBytes) > 256 {
		step = len(segBytes) / 256
	}
	for cut := 0; cut < len(segBytes); cut += step {
		cut := cut
		restore := mutateFile(t, segPath, func(b []byte) []byte { return b[:cut] })
		opened, err := readAllBlocks(t, segPath, idxPath, want)
		if opened {
			t.Fatalf("cut @%d: truncated segment opened", cut)
		}
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("cut @%d: got %v, want ErrCorrupt", cut, err)
		}
		restore()
	}
}

// Every prefix truncation and bit flip of the index must fail open
// with a typed error, never a panic or a bad allocation.
func TestStoreCorruptIndex(t *testing.T) {
	_, segPath, idxPath, _, want := corruptFixture(t)
	idxBytes, err := os.ReadFile(idxPath)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(idxBytes); cut++ {
		cut := cut
		restore := mutateFile(t, idxPath, func(b []byte) []byte { return b[:cut] })
		if opened, err := readAllBlocks(t, segPath, idxPath, want); opened {
			t.Fatalf("idx cut @%d: truncated index opened", cut)
		} else if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("idx cut @%d: got %v, want ErrCorrupt", cut, err)
		}
		restore()
	}
	for pos := 0; pos < len(idxBytes); pos++ {
		for _, bit := range []byte{0x01, 0x80} {
			pos, bit := pos, bit
			restore := mutateFile(t, idxPath, func(b []byte) []byte {
				b[pos] ^= bit
				return b
			})
			if opened, err := readAllBlocks(t, segPath, idxPath, want); opened {
				t.Fatalf("idx flip @%d/%#x: corrupt index opened", pos, bit)
			} else if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("idx flip @%d/%#x: got %v, want ErrCorrupt", pos, bit, err)
			}
			restore()
		}
	}
}

// A missing index (crash between the commit renames) reads as
// not-found, and Open's sweep removes the orphan segment.
func TestStoreMissingIndex(t *testing.T) {
	st, segPath, idxPath, _, _ := corruptFixture(t)
	if err := os.Remove(idxPath); err != nil {
		t.Fatal(err)
	}
	if _, err := openSegment(segPath, idxPath); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing index: got %v, want ErrNotFound", err)
	}
	_ = st
}

// An index whose internal CRC is valid but whose segment CRC or block
// count no longer matches the segment must be rejected: swap in the
// index of a *different* (also valid) stream.
func TestStoreIndexSegmentMismatch(t *testing.T) {
	cfg := testCfg()
	st := openStore(t, Config{Shards: 1})
	putStream(t, st, "qa", "one", mustCompress(t, cfg, testBlocks(cfg, 4, 21)))
	putStream(t, st, "qa", "two", mustCompress(t, cfg, testBlocks(cfg, 2, 22)))
	segOne, _ := st.paths("qa", "one")
	_, idxTwo := st.paths("qa", "two")
	if _, err := openSegment(segOne, idxTwo); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("mismatched pair: got %v, want ErrCorrupt", err)
	}
}

// A short write that never commits must be invisible and leave no
// usage accounting behind.
func TestStoreTornUpload(t *testing.T) {
	cfg := testCfg()
	comp := mustCompress(t, cfg, testBlocks(cfg, 3, 31))
	st := openStore(t, Config{})
	w, err := st.Create("qa", "torn")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write(comp[:len(comp)/2]); err != nil {
		t.Fatal(err)
	}
	if err := w.Commit(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("torn upload committed: %v", err)
	}
	if _, err := st.Get("qa", "torn"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("torn upload visible: %v", err)
	}
	if got := st.Usage("qa"); got != 0 {
		t.Fatalf("torn upload charged %d bytes", got)
	}
	// Abandoned writer (no Commit, no Abort): Abort path.
	w2, err := st.Create("qa", "abandoned")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w2.Write(comp[:8]); err != nil {
		t.Fatal(err)
	}
	w2.Abort()
	w2.Abort() // idempotent
	if _, err := st.Get("qa", "abandoned"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("aborted upload visible: %v", err)
	}
}
