package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"os"
	"sync"

	"repro/internal/bitio"
	"repro/internal/core"
	"repro/internal/telemetry/trace"
)

// Block index format (".idx", all little-endian):
//
//	magic    [4]byte  "PIDX"
//	version  uint8    1
//	reserved [3]byte  0
//	segLen   uint64   committed segment size in bytes
//	segCRC   uint32   CRC-32 (IEEE) of the whole segment
//	nblocks  uint64
//	nblocks × {
//	    off  uint64   payload offset within the segment
//	    len  uint32   payload length (varint prefix excluded)
//	    crc  uint32   CRC-32 (IEEE) of the payload bytes
//	}
//	idxCRC   uint32   CRC-32 (IEEE) of every preceding index byte
//
// The index is pure derived data — rebuildable from the segment — but
// it is what makes one-ReadAt block serving possible, and its triple
// checksum layering (index CRC, segment CRC, per-block CRC) is what
// lets the store promise "typed error or correct bytes, never wrong
// data".

var idxMagic = [4]byte{'P', 'I', 'D', 'X'}

const (
	idxVersion    = 1
	idxHeaderSize = 4 + 1 + 3 + 8 + 4 + 8
	idxEntrySize  = 8 + 4 + 4
)

// maxIndexBlocks bounds how many block entries an index may declare,
// so a corrupt count cannot drive a giant allocation before the CRC
// check gets a chance to reject the file.
const maxIndexBlocks = 1 << 28

// blockLoc is one decoded index entry.
type blockLoc struct {
	off uint64
	n   uint32
	crc uint32
}

// buildIndex scans a committed segment and serializes its block index.
// The segment must parse as a complete PaSTRI stream; anything else is
// reported as ErrCorrupt (the upload was torn or the encoder lied).
func buildIndex(seg []byte) ([]byte, error) {
	br, err := core.NewBlockReader(seg)
	if err != nil {
		return nil, fmt.Errorf("store: segment does not parse: %v: %w", err, ErrCorrupt)
	}
	n := br.NumBlocks()
	out := make([]byte, 0, idxHeaderSize+n*idxEntrySize+4)
	out = append(out, idxMagic[:]...)
	out = append(out, idxVersion, 0, 0, 0)
	out = binary.LittleEndian.AppendUint64(out, uint64(len(seg)))
	out = binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(seg))
	out = binary.LittleEndian.AppendUint64(out, uint64(n))
	for b := 0; b < n; b++ {
		off, length, err := br.BlockSpan(b)
		if err != nil {
			return nil, fmt.Errorf("store: indexing block %d: %v: %w", b, err, ErrCorrupt)
		}
		out = binary.LittleEndian.AppendUint64(out, uint64(off))
		out = binary.LittleEndian.AppendUint32(out, uint32(length))
		out = binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(seg[off:off+length]))
	}
	out = binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(out))
	return out, nil
}

// parseIndex validates an index file and returns the segment length,
// segment CRC and block locations.
func parseIndex(idx []byte) (segLen uint64, segCRC uint32, blocks []blockLoc, err error) {
	if len(idx) < idxHeaderSize+4 {
		return 0, 0, nil, fmt.Errorf("store: index truncated to %d bytes: %w", len(idx), ErrCorrupt)
	}
	if [4]byte(idx[:4]) != idxMagic {
		return 0, 0, nil, fmt.Errorf("store: bad index magic %q: %w", idx[:4], ErrCorrupt)
	}
	if idx[4] != idxVersion {
		return 0, 0, nil, fmt.Errorf("store: unsupported index version %d: %w", idx[4], ErrCorrupt)
	}
	segLen = binary.LittleEndian.Uint64(idx[8:16])
	segCRC = binary.LittleEndian.Uint32(idx[16:20])
	nblocks := binary.LittleEndian.Uint64(idx[20:28])
	if nblocks > maxIndexBlocks {
		return 0, 0, nil, fmt.Errorf("store: implausible index block count %d: %w", nblocks, ErrCorrupt)
	}
	want := idxHeaderSize + int(nblocks)*idxEntrySize + 4
	if len(idx) != want {
		return 0, 0, nil, fmt.Errorf("store: index is %d bytes, %d blocks need %d: %w",
			len(idx), nblocks, want, ErrCorrupt)
	}
	body := idx[:len(idx)-4]
	if got, rec := crc32.ChecksumIEEE(body), binary.LittleEndian.Uint32(idx[len(idx)-4:]); got != rec {
		return 0, 0, nil, fmt.Errorf("store: index checksum mismatch (got %08x, recorded %08x): %w",
			got, rec, ErrCorrupt)
	}
	blocks = make([]blockLoc, nblocks)
	for b := range blocks {
		e := idx[idxHeaderSize+b*idxEntrySize:]
		blocks[b] = blockLoc{
			off: binary.LittleEndian.Uint64(e[0:8]),
			n:   binary.LittleEndian.Uint32(e[8:12]),
			crc: binary.LittleEndian.Uint32(e[12:16]),
		}
		end := blocks[b].off + uint64(blocks[b].n)
		if end < blocks[b].off || end > segLen {
			return 0, 0, nil, fmt.Errorf("store: block %d span [%d,%d) outside %d-byte segment: %w",
				b, blocks[b].off, end, segLen, ErrCorrupt)
		}
	}
	return segLen, segCRC, blocks, nil
}

// Segment is an open, validated stream: an os.File served by ReadAt
// plus the decoded block index. All methods are safe for concurrent
// use; decoders and payload buffers are pooled per segment.
type Segment struct {
	tenant, id string
	f          *os.File
	cfg        core.Config
	size       int64
	blocks     []blockLoc

	decs sync.Pool // *segDecoder
	bufs sync.Pool // *[]byte payload scratch
}

// segDecoder bundles a block decoder with its bit reader so one pool
// Get yields a ready decode context.
type segDecoder struct {
	dec *core.BlockDecoder
	r   *bitio.Reader
}

// openSegment validates the (segment, index) pair: index checksum and
// bounds, segment size and whole-file CRC, and a parseable stream
// header whose geometry the decoder accepts. An open segment can then
// serve blocks with one ReadAt each.
func openSegment(segPath, idxPath string) (*Segment, error) {
	idxBytes, err := os.ReadFile(idxPath)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("store: %s: %w", idxPath, ErrNotFound)
		}
		return nil, fmt.Errorf("store: reading index: %w", err)
	}
	segLen, segCRC, blocks, err := parseIndex(idxBytes)
	if err != nil {
		return nil, err
	}
	segBytes, err := os.ReadFile(segPath)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("store: %s: %w", segPath, ErrNotFound)
		}
		return nil, fmt.Errorf("store: reading segment: %w", err)
	}
	if uint64(len(segBytes)) != segLen {
		return nil, fmt.Errorf("store: segment is %d bytes, index recorded %d: %w",
			len(segBytes), segLen, ErrCorrupt)
	}
	if got := crc32.ChecksumIEEE(segBytes); got != segCRC {
		return nil, fmt.Errorf("store: segment checksum mismatch (got %08x, recorded %08x): %w",
			got, segCRC, ErrCorrupt)
	}
	cfg, _, _, err := core.ParseHeader(segBytes)
	if err != nil {
		return nil, fmt.Errorf("store: segment header: %v: %w", err, ErrCorrupt)
	}
	if len(blocks) > 0 {
		// The index and the stream must agree on where blocks live.
		br, err := core.NewBlockReader(segBytes)
		if err != nil {
			return nil, fmt.Errorf("store: segment blocks: %v: %w", err, ErrCorrupt)
		}
		if br.NumBlocks() != len(blocks) {
			return nil, fmt.Errorf("store: stream has %d blocks, index %d: %w",
				br.NumBlocks(), len(blocks), ErrCorrupt)
		}
	}
	f, err := os.Open(segPath)
	if err != nil {
		return nil, fmt.Errorf("store: opening segment: %w", err)
	}
	return &Segment{
		f:      f,
		cfg:    cfg,
		size:   int64(segLen),
		blocks: blocks,
	}, nil
}

// Tenant returns the owning tenant.
func (g *Segment) Tenant() string { return g.tenant }

// ID returns the stream id.
func (g *Segment) ID() string { return g.id }

// Config returns the stream's compression configuration.
func (g *Segment) Config() core.Config { return g.cfg }

// NumBlocks returns the number of stored blocks.
func (g *Segment) NumBlocks() int { return len(g.blocks) }

// BlockSize returns the number of float64 values per block.
func (g *Segment) BlockSize() int { return g.cfg.BlockSize() }

// SegmentBytes returns the on-disk compressed stream size.
func (g *Segment) SegmentBytes() int64 { return g.size }

// CompressedBlockBytes returns the stored payload size of block b, or
// 0 when b is out of range.
func (g *Segment) CompressedBlockBytes(b int) int {
	if b < 0 || b >= len(g.blocks) {
		return 0
	}
	return int(g.blocks[b].n)
}

// ReadBlock fetches block b with one ReadAt, re-verifies its payload
// checksum, and decodes it into dst (BlockSize() values). Safe for
// concurrent use.
func (g *Segment) ReadBlock(b int, dst []float64) error {
	return g.ReadBlockTraced(b, dst, nil)
}

// ReadBlockTraced is ReadBlock recording store.read_at and
// store.decode child spans under parent (typically the request's
// cache.fill span). A nil parent disables the spans at the cost of
// one branch each.
func (g *Segment) ReadBlockTraced(b int, dst []float64, parent *trace.Span) error {
	if b < 0 || b >= len(g.blocks) {
		return fmt.Errorf("store: block %d out of range [0, %d): %w", b, len(g.blocks), ErrNotFound)
	}
	if len(dst) != g.cfg.BlockSize() {
		return fmt.Errorf("store: destination has %d values, block has %d", len(dst), g.cfg.BlockSize())
	}
	loc := g.blocks[b]
	bufp, _ := g.bufs.Get().(*[]byte)
	if bufp == nil || cap(*bufp) < int(loc.n) {
		buf := make([]byte, loc.n)
		bufp = &buf
	}
	defer g.bufs.Put(bufp)
	buf := (*bufp)[:loc.n]
	rsp := parent.StartChild("store.read_at")
	_, err := g.f.ReadAt(buf, int64(loc.off))
	rsp.End()
	if err != nil {
		return fmt.Errorf("store: reading block %d: %v: %w", b, err, ErrCorrupt)
	}
	if got := crc32.ChecksumIEEE(buf); got != loc.crc {
		return fmt.Errorf("store: block %d checksum mismatch (got %08x, recorded %08x): %w",
			b, got, loc.crc, ErrCorrupt)
	}
	sd, _ := g.decs.Get().(*segDecoder)
	if sd == nil {
		dec, err := core.NewBlockDecoder(g.cfg)
		if err != nil {
			return fmt.Errorf("store: block decoder: %v: %w", err, ErrCorrupt)
		}
		sd = &segDecoder{dec: dec, r: bitio.NewReader(nil)}
	}
	defer g.decs.Put(sd)
	sd.r.Reset(buf)
	dsp := parent.StartChild("store.decode")
	err = sd.dec.DecodeBlock(sd.r, dst)
	dsp.End()
	if err != nil {
		return fmt.Errorf("store: decoding block %d: %v: %w", b, err, ErrCorrupt)
	}
	return nil
}

// close releases the underlying file handle.
func (g *Segment) close() error { return g.f.Close() }
