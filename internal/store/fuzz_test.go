package store

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
)

// FuzzStoreOpen throws arbitrary (segment, index) byte pairs at
// openSegment. The invariants under fuzzing:
//
//   - no panic, no runtime fault, no unbounded allocation;
//   - a successful open only ever happens for a pair whose checksums
//     genuinely match, and every block it then serves decodes without
//     fault (errors are fine, crashes are not);
//   - all failures are typed (ErrCorrupt or ErrNotFound).
//
// Seeds: a pristine committed pair plus structured mutations of it
// (truncations, bit flips, swapped files), so the fuzzer starts deep
// inside the parser instead of at the magic check.
func FuzzStoreOpen(f *testing.F) {
	cfg := core.Defaults(4, 9, 1e-10)
	data := testBlocks(cfg, 3, 99)
	comp, err := core.Compress(data, cfg, nil)
	if err != nil {
		f.Fatal(err)
	}
	idx, err := buildIndex(comp)
	if err != nil {
		f.Fatal(err)
	}

	f.Add(comp, idx)
	f.Add(comp[:len(comp)/2], idx)
	f.Add(comp, idx[:len(idx)/2])
	f.Add(idx, comp) // swapped
	f.Add([]byte{}, []byte{})
	mut := append([]byte(nil), comp...)
	mut[len(mut)/3] ^= 0x10
	f.Add(mut, idx)
	mutIdx := append([]byte(nil), idx...)
	mutIdx[idxHeaderSize/2] ^= 0x80
	f.Add(comp, mutIdx)
	// An index claiming a huge block count must be bounded-rejected.
	big := append([]byte(nil), idx[:idxHeaderSize]...)
	for i := 20; i < 28; i++ {
		big[i] = 0xff
	}
	f.Add(comp, big)

	f.Fuzz(func(t *testing.T, seg, idx []byte) {
		dir := t.TempDir()
		segPath := filepath.Join(dir, "f.seg")
		idxPath := filepath.Join(dir, "f.idx")
		if err := os.WriteFile(segPath, seg, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(idxPath, idx, 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := openSegment(segPath, idxPath)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrNotFound) {
				t.Fatalf("untyped open error: %v", err)
			}
			return
		}
		defer s.close()
		dst := make([]float64, s.BlockSize())
		for b := 0; b < s.NumBlocks(); b++ {
			if rerr := s.ReadBlock(b, dst); rerr != nil &&
				!errors.Is(rerr, ErrCorrupt) && !errors.Is(rerr, ErrNotFound) {
				t.Fatalf("untyped read error: %v", rerr)
			}
		}
	})
}
