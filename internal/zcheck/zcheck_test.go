package zcheck

import (
	"math"
	"strings"
	"testing"
)

func TestAssessBasics(t *testing.T) {
	orig := []float64{0, 1, 2, 3}
	recon := []float64{0, 1.001, 2, 2.999}
	r, err := Assess(orig, recon, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Elements != 4 || r.RawBytes != 32 || r.CompBytes != 8 {
		t.Fatalf("sizes: %+v", r)
	}
	if r.Ratio != 4 || r.BitRate != 16 {
		t.Fatalf("ratio %g bitrate %g", r.Ratio, r.BitRate)
	}
	if math.Abs(r.MaxAbsErr-0.001) > 1e-12 {
		t.Fatalf("maxerr %g", r.MaxAbsErr)
	}
	if r.ValueRange != 3 {
		t.Fatalf("range %g", r.ValueRange)
	}
	wantMSE := (0.001*0.001 + 0.001*0.001) / 4
	if math.Abs(r.MSE-wantMSE) > 1e-15 {
		t.Fatalf("mse %g want %g", r.MSE, wantMSE)
	}
	wantPSNR := 20 * math.Log10(3/math.Sqrt(wantMSE))
	if math.Abs(r.PSNR-wantPSNR) > 1e-9 {
		t.Fatalf("psnr %g want %g", r.PSNR, wantPSNR)
	}
	if !strings.Contains(r.String(), "ratio=4.00") {
		t.Fatalf("String: %s", r.String())
	}
}

func TestAssessBoundCheck(t *testing.T) {
	orig := []float64{0, 1}
	recon := []float64{0, 1.1}
	r, err := Assess(orig, recon, 1, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if !r.BoundViolated {
		t.Fatal("violation not flagged")
	}
	r, err = Assess(orig, recon, 1, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if r.BoundViolated {
		t.Fatal("false violation")
	}
}

func TestAssessLossless(t *testing.T) {
	orig := []float64{1, 2, 3}
	r, err := Assess(orig, orig, 4, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(r.PSNR, 1) {
		t.Fatalf("lossless PSNR = %g, want +Inf", r.PSNR)
	}
	if r.BoundViolated || r.MaxAbsErr != 0 {
		t.Fatalf("%+v", r)
	}
}

func TestAssessErrors(t *testing.T) {
	if _, err := Assess([]float64{1}, []float64{1, 2}, 1, 0); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Assess(nil, nil, 1, 0); err == nil {
		t.Error("empty data accepted")
	}
}
