// Package zcheck assesses lossy-compression quality the way the
// Z-Checker framework (Tao et al., IJHPCA 2017) does for the paper's
// evaluation: compression ratio, bit rate, maximum absolute error,
// MSE and PSNR, plus an error-bound verification helper.
package zcheck

import (
	"fmt"
	"math"
)

// Report summarizes one compression run.
type Report struct {
	Elements      int
	RawBytes      int
	CompBytes     int
	Ratio         float64 // RawBytes / CompBytes
	BitRate       float64 // bits per element = 64 / Ratio
	MaxAbsErr     float64
	MSE           float64
	PSNR          float64 // 20·log10(range / √MSE)
	ValueRange    float64 // max − min of the original data
	BoundViolated bool    // set by Assess when a bound is supplied
}

// Assess compares original and reconstructed data. compBytes is the
// compressed size; bound, if positive, is the absolute error bound to
// verify.
func Assess(original, reconstructed []float64, compBytes int, bound float64) (Report, error) {
	if len(original) != len(reconstructed) {
		return Report{}, fmt.Errorf("zcheck: length mismatch %d vs %d", len(original), len(reconstructed))
	}
	if len(original) == 0 {
		return Report{}, fmt.Errorf("zcheck: empty data")
	}
	r := Report{
		Elements:  len(original),
		RawBytes:  len(original) * 8,
		CompBytes: compBytes,
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	var sumSq float64
	for i, v := range original {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
		e := v - reconstructed[i]
		sumSq += e * e
		if a := math.Abs(e); a > r.MaxAbsErr {
			r.MaxAbsErr = a
		}
	}
	r.ValueRange = hi - lo
	r.MSE = sumSq / float64(len(original))
	if compBytes > 0 {
		r.Ratio = float64(r.RawBytes) / float64(compBytes)
		r.BitRate = 64 / r.Ratio
	}
	if r.MSE > 0 && r.ValueRange > 0 {
		r.PSNR = 20 * math.Log10(r.ValueRange/math.Sqrt(r.MSE))
	} else {
		r.PSNR = math.Inf(1) // lossless reconstruction
	}
	if bound > 0 && r.MaxAbsErr > bound*(1+1e-9) {
		r.BoundViolated = true
	}
	return r, nil
}

// String renders the report in Z-Checker's one-line style.
func (r Report) String() string {
	return fmt.Sprintf("n=%d ratio=%.2f bitrate=%.3f maxerr=%.3e psnr=%.1f",
		r.Elements, r.Ratio, r.BitRate, r.MaxAbsErr, r.PSNR)
}
