// Package lossless wraps stdlib DEFLATE as the Gzip baseline of the
// paper's related-work comparison (Sec. II: lossless compressors reach
// only ≈ 1.1–2× on scientific floating-point data).
package lossless

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Compress DEFLATE-compresses the raw IEEE-754 bytes of data.
func Compress(data []float64) ([]byte, error) {
	raw := make([]byte, 8*len(data))
	for i, v := range data {
		binary.LittleEndian.PutUint64(raw[i*8:], math.Float64bits(v))
	}
	var buf bytes.Buffer
	var hdr [8]byte
	binary.LittleEndian.PutUint64(hdr[:], uint64(len(data)))
	buf.Write(hdr[:])
	w, err := flate.NewWriter(&buf, flate.DefaultCompression)
	if err != nil {
		return nil, err
	}
	if _, err := w.Write(raw); err != nil {
		return nil, err
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Decompress reverses Compress, bit-exactly.
func Decompress(comp []byte) ([]float64, error) {
	if len(comp) < 8 {
		return nil, fmt.Errorf("lossless: stream too short")
	}
	n := binary.LittleEndian.Uint64(comp[:8])
	if n > math.MaxInt64/8 {
		return nil, fmt.Errorf("lossless: implausible element count %d", n)
	}
	r := flate.NewReader(bytes.NewReader(comp[8:]))
	defer r.Close() //lint:errdrop-ok close error is moot: stream validity is checked via the decoded byte count below
	// Decode incrementally so memory tracks the actual decodable
	// content, not a (possibly corrupt) declared count.
	var buf bytes.Buffer
	m, err := io.Copy(&buf, io.LimitReader(r, int64(8*n)+1))
	if err != nil {
		return nil, fmt.Errorf("lossless: %w", err)
	}
	if uint64(m) != 8*n {
		return nil, fmt.Errorf("lossless: declared %d elements, stream holds %d bytes", n, m)
	}
	raw := buf.Bytes()
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[i*8:]))
	}
	return out, nil
}
