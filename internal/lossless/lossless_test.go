package lossless

import (
	"math"
	"math/rand"
	"testing"
)

func TestRoundTripExact(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	data := make([]float64, 3000)
	for i := range data {
		data[i] = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(20)-10))
	}
	data[0] = math.NaN()
	data[1] = math.Inf(1)
	data[2] = -0.0
	comp, err := Compress(data)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decompress(comp)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if math.Float64bits(got[i]) != math.Float64bits(data[i]) {
			t.Fatalf("element %d not bit-exact: %x vs %x", i,
				math.Float64bits(got[i]), math.Float64bits(data[i]))
		}
	}
}

func TestEmpty(t *testing.T) {
	comp, err := Compress(nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decompress(comp)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("got %d elements", len(got))
	}
}

func TestCompressibleData(t *testing.T) {
	data := make([]float64, 10000) // zeros compress very well
	comp, err := Compress(data)
	if err != nil {
		t.Fatal(err)
	}
	if ratio := float64(len(data)*8) / float64(len(comp)); ratio < 50 {
		t.Fatalf("zeros only compressed %.1fx", ratio)
	}
}

// The paper's premise (Sec. II): random scientific doubles barely
// compress losslessly (ratio ≈ 1.1–2).
func TestRandomDoublesBarelyCompress(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	data := make([]float64, 20000)
	for i := range data {
		data[i] = rng.NormFloat64() * 1e-7
	}
	comp, err := Compress(data)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(len(data)*8) / float64(len(comp))
	if ratio > 2.5 {
		t.Fatalf("random doubles compressed %.2fx — not believable", ratio)
	}
}

func TestDecompressErrors(t *testing.T) {
	if _, err := Decompress([]byte{1}); err == nil {
		t.Error("short stream accepted")
	}
	comp, _ := Compress([]float64{1, 2, 3})
	if _, err := Decompress(comp[:10]); err == nil {
		t.Error("truncated stream accepted")
	}
}
