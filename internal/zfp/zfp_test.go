package zfp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func maxAbsErr(a, b []float64) float64 {
	m := 0.0
	for i := range a {
		if e := math.Abs(a[i] - b[i]); e > m {
			m = e
		}
	}
	return m
}

func roundTrip(t *testing.T, data []float64, tol float64) []byte {
	t.Helper()
	comp, err := Compress(data, tol)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decompress(comp)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(data) {
		t.Fatalf("length %d, want %d", len(got), len(data))
	}
	if e := maxAbsErr(data, got); e > tol {
		t.Fatalf("max error %g exceeds tolerance %g", e, tol)
	}
	return comp
}

func TestLiftExactInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 10000; trial++ {
		var p, q [4]int64
		for i := range p {
			p[i] = rng.Int63n(1<<62) - rng.Int63n(1<<62)
		}
		q = p
		fwdLift(&q)
		invLift(&q)
		if q != p {
			t.Fatalf("lift not invertible for %v (got %v)", p, q)
		}
	}
}

func TestNegabinaryBijection(t *testing.T) {
	cases := []int64{0, 1, -1, 2, -2, 1 << 40, -(1 << 40), math.MaxInt64, math.MinInt64}
	for _, v := range cases {
		if got := fromNegabinary(toNegabinary(v)); got != v {
			t.Errorf("negabinary(%d) round-trips to %d", v, got)
		}
	}
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 10000; trial++ {
		v := int64(rng.Uint64())
		if fromNegabinary(toNegabinary(v)) != v {
			t.Fatalf("negabinary bijection fails at %d", v)
		}
	}
}

// Negabinary's point: truncating low bits must keep values close.
func TestNegabinaryTruncationError(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 1000; trial++ {
		v := rng.Int63n(1<<50) - rng.Int63n(1<<50)
		k := uint(rng.Intn(40))
		u := toNegabinary(v) &^ ((1 << k) - 1) // zero the low k planes
		got := fromNegabinary(u)
		if diff := math.Abs(float64(got - v)); diff > float64(uint64(1)<<(k+1)) {
			t.Fatalf("truncating %d planes of %d moved it by %g", k, v, diff)
		}
	}
}

func TestRoundTripBasic(t *testing.T) {
	roundTrip(t, []float64{}, 1e-10)
	roundTrip(t, []float64{1.5}, 1e-10)             // partial block
	roundTrip(t, []float64{1, 2, 3}, 1e-10)         // partial block
	roundTrip(t, []float64{1, -2, 3, -4, 5}, 1e-10) // block + remainder
	roundTrip(t, make([]float64, 1000), 1e-10)      // all zero
	roundTrip(t, []float64{1e-300, 0, -1e-300, 0}, 1e-10)
}

func TestSmoothDataCompresses(t *testing.T) {
	data := make([]float64, 10000)
	for i := range data {
		data[i] = 1e-7 * math.Sin(float64(i)*0.02)
	}
	comp := roundTrip(t, data, 1e-10)
	ratio := float64(len(data)*8) / float64(len(comp))
	if ratio < 3 {
		t.Fatalf("smooth data ratio %.2f < 3", ratio)
	}
}

func TestMostlyNegligibleDataIsCheap(t *testing.T) {
	// Blocks entirely below tol/8 must cost ~1 bit per block.
	data := make([]float64, 4000)
	for i := range data {
		data[i] = 1e-13
	}
	comp := roundTrip(t, data, 1e-9)
	if len(comp) > 21+4000/4/8+8 {
		t.Fatalf("negligible data took %d bytes", len(comp))
	}
}

func TestQuickErrorBound(t *testing.T) {
	f := func(seed int64, tolExp uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		tol := math.Pow(10, -float64(tolExp%9+4))
		n := rng.Intn(500) + 1
		data := make([]float64, n)
		for i := range data {
			switch rng.Intn(3) {
			case 0:
				data[i] = 0
			case 1:
				data[i] = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(16)-12))
			default:
				data[i] = rng.NormFloat64()
			}
		}
		comp, err := Compress(data, tol)
		if err != nil {
			return false
		}
		got, err := Decompress(comp)
		if err != nil {
			return false
		}
		return maxAbsErr(data, got) <= tol
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Regression: opposite-sign values near the block maximum once
// overflowed the S-transform's first difference (b − a ≈ 2^63 at
// 62 fraction bits), flipping reconstruction signs.
func TestOppositeSignOverflow(t *testing.T) {
	data := []float64{
		-1.1786110604726281e-07, 1.1736060432263249e-07,
		-1.6226094591196432e-08, -1.1603664800711715e-09,
	}
	roundTrip(t, data, 1e-7)
	roundTrip(t, []float64{-1, 1, -1, 1}, 1e-3)
	roundTrip(t, []float64{1e300, -1e300, 1e300, -1e300}, 1e290)
}

// Property: blocks of ±maxAbs values (worst-case transform growth)
// honor the bound for any magnitude/tolerance combination.
func TestQuickOppositeSignBlocks(t *testing.T) {
	f := func(seed int64, magExp int8, tolOff uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		mag := math.Pow(10, float64(magExp%120))
		tol := mag * math.Pow(10, -float64(tolOff%12))
		data := make([]float64, 8)
		for i := range data {
			data[i] = mag * float64(1-2*rng.Intn(2))
		}
		comp, err := Compress(data, tol)
		if err != nil {
			return false
		}
		got, err := Decompress(comp)
		if err != nil {
			return false
		}
		return maxAbsErr(data, got) <= tol
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestInvalidInputs(t *testing.T) {
	if _, err := Compress([]float64{1}, 0); err == nil {
		t.Error("zero tolerance accepted")
	}
	if _, err := Decompress([]byte{1, 2}); err == nil {
		t.Error("short stream accepted")
	}
	if _, err := Decompress([]byte("XXXXXXXXXXXXXXXXXXXXXXXXX")); err == nil {
		t.Error("bad magic accepted")
	}
	comp, err := Compress([]float64{1, 2, 3, 4, 5, 6, 7, 8}, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decompress(comp[:len(comp)-1]); err == nil {
		t.Error("truncated stream accepted")
	}
}

func TestToleranceAccessor(t *testing.T) {
	comp, err := Compress([]float64{1}, 1e-8)
	if err != nil {
		t.Fatal(err)
	}
	tol, err := Tolerance(comp)
	if err != nil || tol != 1e-8 {
		t.Fatalf("Tolerance = %g, %v", tol, err)
	}
	if _, err := Tolerance([]byte("bad")); err == nil {
		t.Error("bad stream accepted")
	}
}
