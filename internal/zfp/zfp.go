// Package zfp implements a ZFP-style fixed-accuracy transform compressor
// for 1-D double-precision data, following the structure of Lindstrom's
// ZFP (TVCG 2014) that the paper compares against:
//
//  1. partition the stream into blocks of 4 values,
//  2. block floating point: align all values to the block's largest
//     exponent and convert to 62-bit signed fixed point,
//  3. an exact integer decorrelating transform (two-level S-transform
//     lifting, the reversible integer analogue of ZFP's lifted basis),
//  4. negabinary mapping, so small coefficients have many leading zeros,
//  5. bit-plane coding from the most significant plane down, truncated
//     at the plane where the remaining contribution is below the
//     absolute error tolerance (fixed-accuracy mode).
//
// ZFP is designed for ≥ 2-D meshes; on 1-D streams its per-block
// exponent and plane overheads hurt it, which is exactly the behaviour
// the paper reports (Sec. II: "ZFP ... suffers from the low compression
// ratio for 1D datasets").
package zfp

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/bitio"
)

const blockLen = 4

// fractionBits is the fixed-point precision per value. Two bits of
// headroom below int64 keep the S-transform from overflowing: the
// level-1 difference d = b − a doubles the magnitude and the level-2
// difference doubles it again, so |coefficient| ≤ 2^(fractionBits+2).
const fractionBits = 60

// guardPlanes keeps extra planes beyond the analytic cutoff so the
// inverse-transform error amplification (≤ 4× across two lifting
// levels) stays within the tolerance.
const guardPlanes = 3

var magic = [4]byte{'Z', 'F', 'P', '1'}

// Compress compresses data with absolute error tolerance tol
// (fixed-accuracy mode).
func Compress(data []float64, tol float64) ([]byte, error) {
	if !(tol > 0) || math.IsInf(tol, 0) {
		return nil, fmt.Errorf("zfp: tolerance must be positive and finite, got %g", tol)
	}
	n := len(data)
	w := bitio.NewWriter(n)
	var blk [blockLen]float64
	for i := 0; i < n; i += blockLen {
		m := copy(blk[:], data[i:min(i+blockLen, n)])
		for j := m; j < blockLen; j++ {
			blk[j] = 0 // pad the final partial block
		}
		encodeBlock(w, &blk, tol)
	}
	payload := w.Bytes()
	out := make([]byte, 0, 21+len(payload))
	out = append(out, magic[:]...)
	out = append(out, 1)
	var b8 [8]byte
	binary.LittleEndian.PutUint64(b8[:], math.Float64bits(tol))
	out = append(out, b8[:]...)
	binary.LittleEndian.PutUint64(b8[:], uint64(n))
	out = append(out, b8[:]...)
	out = append(out, payload...)
	return out, nil
}

// Decompress reverses Compress.
func Decompress(comp []byte) ([]float64, error) {
	if len(comp) < 21 {
		return nil, fmt.Errorf("zfp: stream too short")
	}
	if [4]byte(comp[:4]) != magic {
		return nil, fmt.Errorf("zfp: bad magic")
	}
	if comp[4] != 1 {
		return nil, fmt.Errorf("zfp: unsupported version %d", comp[4])
	}
	n := binary.LittleEndian.Uint64(comp[13:21])
	// Every 4-value block consumes at least one bit of payload; a
	// corrupt count must not drive a giant allocation.
	if n > uint64(len(comp)-21)*8*blockLen {
		return nil, fmt.Errorf("zfp: %d elements cannot fit in %d payload bytes", n, len(comp)-21)
	}
	r := bitio.NewReader(comp[21:])
	out := make([]float64, n)
	var blk [blockLen]float64
	for i := 0; i < int(n); i += blockLen {
		if err := decodeBlock(r, &blk); err != nil {
			return nil, err
		}
		copy(out[i:min(i+blockLen, int(n))], blk[:])
	}
	return out, nil
}

// Block bitstream:
//
//	zero     1 bit    1 ⇒ all-zero block (nothing follows)
//	e        12 bits  biased block exponent
//	planes   7 bits   number of bit planes encoded (0..64)
//	payload  planes × 4 bits, MSB plane first
func encodeBlock(w *bitio.Writer, blk *[blockLen]float64, tol float64) {
	// Block exponent.
	maxAbs := 0.0
	for _, v := range blk {
		if a := math.Abs(v); a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs == 0 || maxAbs < tol/8 { //lint:floatcmp-ok all-zero-block flag; the tolerance clause handles near-zero
		// Entirely below tolerance: emit the all-zero flag. (ZFP's
		// accuracy mode likewise spends ~1 bit on negligible blocks.)
		w.WriteBit(1)
		return
	}
	w.WriteBit(0)
	e := math.Ilogb(maxAbs) + 1 // 2^e > maxAbs
	scale := math.Ldexp(1, fractionBits-e)

	var q [blockLen]int64
	for i, v := range blk {
		q[i] = int64(math.Round(v * scale))
	}
	fwdLift(&q)

	// Fixed-accuracy plane cutoff: dropped planes contribute at most
	// 2^(k+1) per coefficient before the inverse transform, amplified by
	// ≤ 2^guardPlanes through lifting; keep planes above that level.
	// tol in fixed-point units:
	tolFixed := tol * scale
	minPlane := 0
	if tolFixed > 1 {
		minPlane = math.Ilogb(tolFixed) - guardPlanes
		if minPlane < 0 {
			minPlane = 0
		}
	}
	planes := fractionBits + 2 - minPlane // +2: transform growth headroom
	if planes > 64 {
		planes = 64
	}
	if planes < 1 {
		planes = 1
	}

	w.WriteBits(uint64(e+2048), 12)
	w.WriteBits(uint64(planes), 7)
	var u [blockLen]uint64
	for i, v := range q {
		u[i] = toNegabinary(v)
	}
	for p := 63; p > 63-planes; p-- {
		var nibble uint64
		for i := 0; i < blockLen; i++ {
			nibble = nibble<<1 | (u[i]>>uint(p))&1
		}
		w.WriteBits(nibble, blockLen)
	}
}

func decodeBlock(r *bitio.Reader, blk *[blockLen]float64) error {
	zero, err := r.ReadBit()
	if err != nil {
		return err
	}
	if zero == 1 {
		for i := range blk {
			blk[i] = 0
		}
		return nil
	}
	eRaw, err := r.ReadBits(12)
	if err != nil {
		return err
	}
	e := int(eRaw) - 2048
	planesRaw, err := r.ReadBits(7)
	if err != nil {
		return err
	}
	planes := int(planesRaw)
	if planes < 1 || planes > 64 {
		return fmt.Errorf("zfp: corrupt plane count %d", planes)
	}
	var u [blockLen]uint64
	for p := 63; p > 63-planes; p-- {
		nibble, err := r.ReadBits(blockLen)
		if err != nil {
			return err
		}
		for i := 0; i < blockLen; i++ {
			u[i] |= (nibble >> uint(blockLen-1-i) & 1) << uint(p)
		}
	}
	var q [blockLen]int64
	for i, v := range u {
		q[i] = fromNegabinary(v)
	}
	invLift(&q)
	scale := math.Ldexp(1, e-fractionBits)
	for i, v := range q {
		blk[i] = float64(v) * scale
	}
	return nil
}

// fwdLift applies a two-level reversible S-transform:
// level 1 pairs (0,1) and (2,3) into (sum, diff); level 2 combines the
// two sums. Output layout: [S, D, d01, d23].
func fwdLift(p *[blockLen]int64) {
	a, b, c, d := p[0], p[1], p[2], p[3]
	d01 := b - a
	s01 := a + (d01 >> 1)
	d23 := d - c
	s23 := c + (d23 >> 1)
	D := s23 - s01
	S := s01 + (D >> 1)
	p[0], p[1], p[2], p[3] = S, D, d01, d23
}

// invLift exactly inverts fwdLift.
func invLift(p *[blockLen]int64) {
	S, D, d01, d23 := p[0], p[1], p[2], p[3]
	s01 := S - (D >> 1)
	s23 := s01 + D
	a := s01 - (d01 >> 1)
	b := a + d01
	c := s23 - (d23 >> 1)
	d := c + d23
	p[0], p[1], p[2], p[3] = a, b, c, d
}

// toNegabinary maps two's complement to negabinary, ZFP's sign-free
// representation in which truncating low bits biases the error toward
// zero symmetrically.
func toNegabinary(v int64) uint64 {
	const mask = 0xaaaaaaaaaaaaaaaa
	return (uint64(v) + mask) ^ mask
}

// fromNegabinary inverts toNegabinary.
func fromNegabinary(u uint64) int64 {
	const mask = 0xaaaaaaaaaaaaaaaa
	return int64((u ^ mask) - mask)
}

// Tolerance extracts the tolerance recorded in a compressed stream.
func Tolerance(comp []byte) (float64, error) {
	if len(comp) < 13 || [4]byte(comp[:4]) != magic {
		return 0, fmt.Errorf("zfp: not a ZFP stream")
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(comp[5:13])), nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
