package zfp

import "testing"

// The ZFP decoder must reject arbitrary and mutated streams with
// errors, never panics.
func FuzzDecompress(f *testing.F) {
	comp, err := Compress([]float64{1e-6, 2e-6, -1e-6, 0, 3.5, -2, 0.25, 1e-300}, 1e-9)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(comp)
	f.Add(comp[:len(comp)-2])
	f.Add([]byte{})
	f.Add([]byte("ZFP1"))
	for _, pos := range []int{4, 6, 14, 21, 25} {
		if pos < len(comp) {
			m := append([]byte(nil), comp...)
			m[pos] ^= 0x20
			f.Add(m)
		}
	}
	f.Fuzz(func(t *testing.T, b []byte) {
		_, _ = Decompress(b)
	})
}
