package opsreport

import (
	"bytes"
	"encoding/json"
	"flag"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"repro/internal/telemetry/profring"
	"repro/internal/telemetry/slo"
	"repro/internal/telemetry/tsdb"
)

var update = flag.Bool("update", false, "rewrite the report golden")

// fixtureDump builds a deterministic dump: a tenant burning its read
// objective, decode dominating the stage window, a cache warming up,
// and one anomaly burst.
func fixtureDump() Dump {
	base := time.Date(2026, 8, 1, 12, 0, 0, 0, time.UTC)
	mk := func(offset time.Duration, hits, misses, anomalies, decodeNS, encodeNS float64) tsdb.Sample {
		s := tsdb.NewSample(base.Add(offset))
		s.Set(tsdb.KeyCacheHitsTotal, hits)
		s.Set(tsdb.KeyCacheMissesTotal, misses)
		s.Set(tsdb.KeyCacheEvictionsTotal, misses/2)
		s.Set(tsdb.KeyCacheBytes, 4096)
		s.Set(tsdb.ForTenant("tiny", tsdb.KeyFlightAnomaliesTotal), anomalies)
		s.Set(tsdb.ForTenant("tiny", tsdb.StageNS("decode")), decodeNS)
		s.Set(tsdb.ForTenant("tiny", tsdb.StageNS("encode")), encodeNS)
		s.Set(tsdb.ForTenant("tiny", tsdb.KeyReadsTotal), hits+misses)
		return s
	}
	hist := tsdb.History{
		Depth: 16,
		Samples: []tsdb.Sample{
			mk(0, 10, 90, 0, 1e6, 4e6),
			mk(15*time.Second, 200, 120, 2, 61e6, 9e6),
			mk(30*time.Second, 700, 130, 2, 121e6, 14e6),
		},
	}
	rep := &slo.Report{
		GeneratedUnixNano: base.Add(30 * time.Second).UnixNano(),
		FastWindowMS:      300000,
		SlowWindowMS:      3600000,
		WorstState:        slo.StateFastBurn,
		Tenants: map[string]slo.TenantReport{
			"tiny": {
				State:   slo.StateFastBurn,
				Latency: slo.Quantiles{ReadP50MS: 0.4, ReadP99MS: 9.5, UploadP50MS: 3, UploadP99MS: 40},
				Objectives: []slo.ObjectiveStatus{
					{Objective: slo.ReadLatency, Target: 0.99, ThresholdMS: 50,
						FastBurn: 100, SlowBurn: 100, FastGood: 0, FastBad: 830,
						LifetimeGood: 0, LifetimeBad: 830, State: slo.StateFastBurn},
					{Objective: slo.ErrorRate, Target: 0.999,
						LifetimeGood: 960, State: slo.StateOK},
				},
			},
		},
	}
	return Dump{
		SLO:     rep,
		History: hist,
		Profiles: []profring.Entry{
			{Seq: 3, Kind: profring.KindCPU, Reason: profring.ReasonSLOBurn, Tenant: "tiny",
				TraceID:  "4bf92f3577b34da6a3ce929d0e0e4736",
				UnixNano: base.Add(20 * time.Second).UnixNano(), SizeBytes: 2048},
			{Seq: 4, Kind: profring.KindHeap, Reason: profring.ReasonPeriodic,
				UnixNano: base.Add(25 * time.Second).UnixNano(), SizeBytes: 512},
		},
	}
}

func TestRenderGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := Render(&buf, fixtureDump()); err != nil {
		t.Fatal(err)
	}
	const path = "testdata/report.golden"
	if *update {
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update): %v", err)
	}
	if !bytes.Equal(want, buf.Bytes()) {
		t.Fatalf("report drifted from golden:\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}

// TestRenderNamesDominantStage pins the headline attribution: decode
// grew 120ms against encode's 10ms, so decode must be named dominant.
func TestRenderNamesDominantStage(t *testing.T) {
	var buf bytes.Buffer
	if err := Render(&buf, fixtureDump()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "dominant stage: decode") {
		t.Fatalf("report does not name decode dominant:\n%s", out)
	}
	if !strings.Contains(out, "tenant tiny: fast_burn") {
		t.Fatalf("report does not show the burning tenant:\n%s", out)
	}
	if !strings.Contains(out, "tenant tiny  +2 (total 2)") {
		t.Fatalf("report missing the anomaly timeline entry:\n%s", out)
	}
}

func TestRenderEmptyDump(t *testing.T) {
	var buf bytes.Buffer
	if err := Render(&buf, Dump{}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"no SLO evaluation", "insufficient history", "no samples", "none in window"} {
		if !strings.Contains(out, want) {
			t.Fatalf("empty-dump report missing %q:\n%s", want, out)
		}
	}
}

func TestDumpRoundTripAndFetch(t *testing.T) {
	d := fixtureDump()
	var buf bytes.Buffer
	if err := d.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.SLO.WorstState != d.SLO.WorstState || len(got.History.Samples) != len(d.History.Samples) ||
		len(got.Profiles) != len(d.Profiles) {
		t.Fatalf("round trip lost data: %+v", got)
	}

	// Fetch against a fake daemon serving the two debug endpoints.
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/slo", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(d.SLO) //lint:errdrop-ok test response write
	})
	mux.HandleFunc("/debug/history", func(w http.ResponseWriter, r *http.Request) {
		d.History.WriteJSON(w) //lint:errdrop-ok test response write
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()
	fetched, err := Fetch(ts.Client(), ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	if fetched.SLO == nil || fetched.SLO.WorstState != slo.StateFastBurn {
		t.Fatalf("fetched SLO = %+v", fetched.SLO)
	}
	if len(fetched.History.Samples) != 3 {
		t.Fatalf("fetched %d history samples, want 3", len(fetched.History.Samples))
	}
}
