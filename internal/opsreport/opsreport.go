// Package opsreport turns pastrid's self-observation surfaces — the
// /debug/slo burn-rate evaluation, the /debug/history metrics ring, and
// the profile ring's attribution sidecars — into a plain-text operator
// report: SLO verdicts per tenant, the pipeline stage dominating the
// burn window, the cache hit trend, and a timeline of flight-recorder
// anomalies. The same renderer runs against a live daemon (pastrid
// report -addr) or a committed dump file (pastrid report -file), so an
// incident review works from artifacts alone.
package opsreport

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"time"

	"repro/internal/telemetry/profring"
	"repro/internal/telemetry/slo"
	"repro/internal/telemetry/tsdb"
)

// Dump is the self-contained ops snapshot: everything Render needs,
// serializable so a bench run or a draining daemon can leave one
// behind.
type Dump struct {
	SLO     *slo.Report  `json:"slo"`
	History tsdb.History `json:"history"`
	// Profiles lists the profile ring's attribution sidecars (what was
	// captured, why, and for which tenant); the profile bytes stay on
	// disk.
	Profiles []profring.Entry `json:"profiles,omitempty"`
}

// Fetch assembles a Dump from a live daemon's debug endpoints.
func Fetch(client *http.Client, baseURL string) (Dump, error) {
	if client == nil {
		client = http.DefaultClient
	}
	var d Dump
	if err := getJSON(client, baseURL+"/debug/slo", &d.SLO); err != nil {
		return Dump{}, err
	}
	if err := getJSON(client, baseURL+"/debug/history", &d.History); err != nil {
		return Dump{}, err
	}
	return d, nil
}

func getJSON(client *http.Client, url string, out any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close() //lint:errdrop-ok response body fully read; close error is unactionable
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("opsreport: GET %s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("opsreport: decoding %s: %w", url, err)
	}
	return nil
}

// Load reads a Dump previously written with WriteJSON.
func Load(r io.Reader) (Dump, error) {
	var d Dump
	if err := json.NewDecoder(r).Decode(&d); err != nil {
		return Dump{}, fmt.Errorf("opsreport: parsing dump: %w", err)
	}
	return d, nil
}

// WriteJSON serializes the dump, indented.
func (d Dump) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

// stamp formats a unix-nano timestamp for the report.
func stamp(unixNano int64) string {
	return time.Unix(0, unixNano).UTC().Format(time.RFC3339)
}

// Render writes the plain-text ops report.
func Render(w io.Writer, d Dump) error {
	var b strings.Builder
	renderHeader(&b, d)
	renderSLO(&b, d.SLO)
	renderStages(&b, d.History)
	renderCache(&b, d.History)
	renderAnomalies(&b, d.History)
	renderProfiles(&b, d.Profiles)
	_, err := io.WriteString(w, b.String())
	return err
}

func renderHeader(b *strings.Builder, d Dump) {
	b.WriteString("pastrid ops report\n")
	switch {
	case d.SLO != nil:
		fmt.Fprintf(b, "generated: %s\n", stamp(d.SLO.GeneratedUnixNano))
	case len(d.History.Samples) > 0:
		fmt.Fprintf(b, "generated: %s\n", stamp(d.History.Samples[len(d.History.Samples)-1].UnixNano))
	}
	n := len(d.History.Samples)
	if n > 1 {
		span := time.Duration(d.History.Samples[n-1].UnixNano - d.History.Samples[0].UnixNano)
		fmt.Fprintf(b, "history: %d samples spanning %s (ring depth %d)\n", n, span, d.History.Depth)
	} else {
		fmt.Fprintf(b, "history: %d samples (ring depth %d)\n", n, d.History.Depth)
	}
}

func renderSLO(b *strings.Builder, rep *slo.Report) {
	b.WriteString("\n== SLO ==\n")
	if rep == nil {
		b.WriteString("no SLO evaluation in dump\n")
		return
	}
	fmt.Fprintf(b, "worst state: %s (windows %s/%s)\n", rep.WorstState,
		time.Duration(rep.FastWindowMS)*time.Millisecond,
		time.Duration(rep.SlowWindowMS)*time.Millisecond)
	for _, t := range rep.TenantNames() {
		tr := rep.Tenants[t]
		fmt.Fprintf(b, "tenant %s: %s  (read p50 %.2fms p99 %.2fms, upload p50 %.2fms p99 %.2fms)\n",
			t, tr.State,
			tr.Latency.ReadP50MS, tr.Latency.ReadP99MS,
			tr.Latency.UploadP50MS, tr.Latency.UploadP99MS)
		for _, os := range tr.Objectives {
			th := ""
			if os.ThresholdMS > 0 {
				th = fmt.Sprintf(" @%gms", os.ThresholdMS)
			}
			fmt.Fprintf(b, "  %-14s target %.5f%s  burn fast %.2f / slow %.2f  events %g good / %g bad  %s\n",
				os.Objective, os.Target, th, os.FastBurn, os.SlowBurn,
				os.LifetimeGood, os.LifetimeBad, os.State)
		}
	}
}

// stageDelta is one pipeline stage's share of the history window.
type stageDelta struct {
	stage string
	ns    float64
}

// stageDeltas aggregates per-tenant stage_ns growth across the history
// window, descending.
func stageDeltas(h tsdb.History) []stageDelta {
	n := len(h.Samples)
	if n < 2 {
		return nil
	}
	oldest, newest := h.Samples[0], h.Samples[n-1]
	byStage := make(map[string]float64)
	for k := range newest.Values {
		_, base, ok := tsdb.SplitTenant(k)
		if !ok {
			continue
		}
		stage, ok := tsdb.SplitStage(base)
		if !ok {
			continue
		}
		byStage[stage] += tsdb.Delta(newest, oldest, k)
	}
	out := make([]stageDelta, 0, len(byStage))
	for s, ns := range byStage {
		out = append(out, stageDelta{s, ns})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].ns != out[j].ns { //lint:floatcmp-ok tie-break branch; exact equality only routes to the name comparison
			return out[i].ns > out[j].ns
		}
		return out[i].stage < out[j].stage
	})
	return out
}

// renderStages names the dominant pipeline stage over the history
// window — the first place to point a profiler when an SLO burns.
func renderStages(b *strings.Builder, h tsdb.History) {
	b.WriteString("\n== Pipeline stages (history window) ==\n")
	deltas := stageDeltas(h)
	if len(deltas) == 0 {
		b.WriteString("insufficient history for stage attribution\n")
		return
	}
	var total float64
	for _, d := range deltas {
		total += d.ns
	}
	if total <= 0 {
		b.WriteString("no stage time recorded in window\n")
		return
	}
	fmt.Fprintf(b, "dominant stage: %s (%.1f%% of %.1fms total stage time)\n",
		deltas[0].stage, 100*deltas[0].ns/total, total/1e6)
	for _, d := range deltas {
		fmt.Fprintf(b, "  %-14s %10.3fms  %5.1f%%\n", d.stage, d.ns/1e6, 100*d.ns/total)
	}
}

func renderCache(b *strings.Builder, h tsdb.History) {
	b.WriteString("\n== Cache ==\n")
	n := len(h.Samples)
	if n == 0 {
		b.WriteString("no samples\n")
		return
	}
	hitRate := func(s tsdb.Sample) (float64, bool) {
		hits, misses := s.Get(tsdb.KeyCacheHitsTotal), s.Get(tsdb.KeyCacheMissesTotal)
		if hits+misses <= 0 {
			return 0, false
		}
		return hits / (hits + misses), true
	}
	newest := h.Samples[n-1]
	if r, ok := hitRate(newest); ok {
		fmt.Fprintf(b, "lifetime hit rate: %.3f (%g bytes resident)\n", r, newest.Get(tsdb.KeyCacheBytes))
	} else {
		b.WriteString("no cache traffic yet\n")
	}
	if n < 2 {
		return
	}
	oldest := h.Samples[0]
	dHits := tsdb.Delta(newest, oldest, tsdb.KeyCacheHitsTotal)
	dMisses := tsdb.Delta(newest, oldest, tsdb.KeyCacheMissesTotal)
	if dHits+dMisses > 0 {
		first, _ := hitRate(oldest)
		last, _ := hitRate(newest)
		fmt.Fprintf(b, "window: %.0f lookups, hit rate %.3f; lifetime trend %.3f → %.3f; %g evictions\n",
			dHits+dMisses, dHits/(dHits+dMisses), first, last,
			tsdb.Delta(newest, oldest, tsdb.KeyCacheEvictionsTotal))
	}
}

// anomalyEvent is one detected flight-recorder anomaly increase.
type anomalyEvent struct {
	unixNano int64
	tenant   string
	delta    float64
	total    float64
}

// anomalyTimeline scans consecutive samples for per-tenant increases of
// the flight anomaly counter.
func anomalyTimeline(h tsdb.History) []anomalyEvent {
	var events []anomalyEvent
	for i := 1; i < len(h.Samples); i++ {
		prev, cur := h.Samples[i-1], h.Samples[i]
		tenants := make(map[string]bool)
		for k := range cur.Values {
			if t, base, ok := tsdb.SplitTenant(k); ok && base == tsdb.KeyFlightAnomaliesTotal {
				tenants[t] = true
			}
		}
		names := make([]string, 0, len(tenants))
		for t := range tenants {
			names = append(names, t)
		}
		sort.Strings(names)
		for _, t := range names {
			k := tsdb.ForTenant(t, tsdb.KeyFlightAnomaliesTotal)
			if d := tsdb.Delta(cur, prev, k); d > 0 {
				events = append(events, anomalyEvent{cur.UnixNano, t, d, cur.Get(k)})
			}
		}
	}
	return events
}

const maxTimelineLines = 20

func renderAnomalies(b *strings.Builder, h tsdb.History) {
	b.WriteString("\n== Flight anomalies ==\n")
	events := anomalyTimeline(h)
	if len(events) == 0 {
		b.WriteString("none in window\n")
		return
	}
	shown := events
	if len(shown) > maxTimelineLines {
		shown = shown[len(shown)-maxTimelineLines:]
	}
	for _, e := range shown {
		fmt.Fprintf(b, "%s  tenant %s  +%g (total %g)\n", stamp(e.unixNano), e.tenant, e.delta, e.total)
	}
	if len(events) > len(shown) {
		fmt.Fprintf(b, "(%d earlier events elided)\n", len(events)-len(shown))
	}
}

func renderProfiles(b *strings.Builder, entries []profring.Entry) {
	if len(entries) == 0 {
		return
	}
	b.WriteString("\n== Profile ring ==\n")
	for _, e := range entries {
		attr := ""
		if e.Tenant != "" {
			attr += "  tenant " + e.Tenant
		}
		if e.TraceID != "" {
			attr += "  trace " + e.TraceID
		}
		fmt.Fprintf(b, "%s  #%d %s/%s  %d bytes%s\n", stamp(e.UnixNano), e.Seq, e.Kind, e.Reason, e.SizeBytes, attr)
	}
}
