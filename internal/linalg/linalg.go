// Package linalg provides the small dense linear-algebra kernel the
// Hartree–Fock substrate needs: row-major matrices, multiplication, and
// a cyclic Jacobi eigensolver for real symmetric matrices (plenty for
// the basis-set sizes the examples run at, and dependency-free).
package linalg

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix allocates a zero Rows×Cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromSlice wraps an existing row-major slice (no copy).
func FromSlice(rows, cols int, data []float64) *Matrix {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("linalg: slice length %d != %d×%d", len(data), rows, cols)) //lint:nopanic-ok programmer error: shape mismatch is a caller bug, not a data condition
	}
	return &Matrix{Rows: rows, Cols: cols, Data: data}
}

// At returns m[i,j].
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns m[i,j] = v.
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Mul returns a·b.
func Mul(a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("linalg: dimension mismatch %dx%d · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols)) //lint:nopanic-ok programmer error: shape mismatch is a caller bug
	}
	out := NewMatrix(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*a.Cols : (i+1)*a.Cols]
		orow := out.Data[i*out.Cols : (i+1)*out.Cols]
		for k, av := range arow {
			if av == 0 { //lint:floatcmp-ok sparsity skip: only exact zeros are skipped, which is always sound
				continue
			}
			brow := b.Data[k*b.Cols : (k+1)*b.Cols]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

// Transpose returns mᵀ.
func (m *Matrix) Transpose() *Matrix {
	out := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Set(j, i, m.At(i, j))
		}
	}
	return out
}

// MaxAbsDiff returns max |a_ij − b_ij|.
func MaxAbsDiff(a, b *Matrix) float64 {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic("linalg: shape mismatch") //lint:nopanic-ok programmer error: shape mismatch is a caller bug
	}
	d := 0.0
	for i := range a.Data {
		if e := math.Abs(a.Data[i] - b.Data[i]); e > d {
			d = e
		}
	}
	return d
}

// EigSym diagonalizes a real symmetric matrix with the cyclic Jacobi
// method, returning eigenvalues in ascending order and the matrix of
// column eigenvectors (A·V = V·diag(w)). The input is not modified.
func EigSym(a *Matrix) (w []float64, V *Matrix, err error) {
	n := a.Rows
	if a.Cols != n {
		return nil, nil, fmt.Errorf("linalg: EigSym needs a square matrix, got %dx%d", a.Rows, a.Cols)
	}
	const maxSweeps = 100
	A := a.Clone()
	V = NewMatrix(n, n)
	for i := 0; i < n; i++ {
		V.Set(i, i, 1)
	}
	// Symmetry check (cheap and catches caller bugs early).
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if math.Abs(A.At(i, j)-A.At(j, i)) > 1e-10*(1+math.Abs(A.At(i, j))) {
				return nil, nil, fmt.Errorf("linalg: matrix not symmetric at (%d,%d): %g vs %g",
					i, j, A.At(i, j), A.At(j, i))
			}
		}
	}

	offDiag := func() float64 {
		s := 0.0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				s += A.At(i, j) * A.At(i, j)
			}
		}
		return s
	}
	scale := 0.0
	for _, v := range A.Data {
		scale += v * v
	}
	tol := 1e-26 * (scale + 1)

	for sweep := 0; sweep < maxSweeps; sweep++ {
		if offDiag() <= tol {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := A.At(p, q)
				if math.Abs(apq) < 1e-300 {
					continue
				}
				app, aqq := A.At(p, p), A.At(q, q)
				theta := (aqq - app) / (2 * apq)
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				c := 1 / math.Sqrt(t*t+1)
				s := t * c

				// A ← JᵀAJ applied to rows/cols p and q.
				for k := 0; k < n; k++ {
					akp, akq := A.At(k, p), A.At(k, q)
					A.Set(k, p, c*akp-s*akq)
					A.Set(k, q, s*akp+c*akq)
				}
				for k := 0; k < n; k++ {
					apk, aqk := A.At(p, k), A.At(q, k)
					A.Set(p, k, c*apk-s*aqk)
					A.Set(q, k, s*apk+c*aqk)
				}
				for k := 0; k < n; k++ {
					vkp, vkq := V.At(k, p), V.At(k, q)
					V.Set(k, p, c*vkp-s*vkq)
					V.Set(k, q, s*vkp+c*vkq)
				}
			}
		}
	}

	w = make([]float64, n)
	for i := 0; i < n; i++ {
		w[i] = A.At(i, i)
	}
	// Sort ascending, permuting eigenvector columns alongside.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	for i := 1; i < n; i++ { // insertion sort: n is small
		for j := i; j > 0 && w[idx[j]] < w[idx[j-1]]; j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
	ws := make([]float64, n)
	Vs := NewMatrix(n, n)
	for col, src := range idx {
		ws[col] = w[src]
		for r := 0; r < n; r++ {
			Vs.Set(r, col, V.At(r, src))
		}
	}
	return ws, Vs, nil
}

// SymOrth returns S^(−1/2), the symmetric (Löwdin) orthogonalization of
// an overlap matrix: X = V·diag(1/√w)·Vᵀ. It errors if S is not
// positive definite (linearly dependent basis).
func SymOrth(S *Matrix) (*Matrix, error) {
	w, V, err := EigSym(S)
	if err != nil {
		return nil, err
	}
	n := S.Rows
	D := NewMatrix(n, n)
	for i, wi := range w {
		if wi <= 1e-10 {
			return nil, fmt.Errorf("linalg: overlap matrix not positive definite (eigenvalue %g)", wi)
		}
		D.Set(i, i, 1/math.Sqrt(wi))
	}
	return Mul(Mul(V, D), V.Transpose()), nil
}

// SolveLinear solves A·x = b by Gaussian elimination with partial
// pivoting. A is modified. Intended for the small systems of the SCF
// DIIS extrapolation.
func SolveLinear(A *Matrix, b []float64) ([]float64, error) {
	n := A.Rows
	if A.Cols != n || len(b) != n {
		return nil, fmt.Errorf("linalg: SolveLinear shape mismatch (%dx%d, b %d)", A.Rows, A.Cols, len(b))
	}
	x := append([]float64(nil), b...)
	for col := 0; col < n; col++ {
		// Partial pivot.
		piv, best := col, math.Abs(A.At(col, col))
		for r := col + 1; r < n; r++ {
			if a := math.Abs(A.At(r, col)); a > best {
				piv, best = r, a
			}
		}
		if best < 1e-14 {
			return nil, fmt.Errorf("linalg: singular system at column %d", col)
		}
		if piv != col {
			for c := 0; c < n; c++ {
				tmp := A.At(col, c)
				A.Set(col, c, A.At(piv, c))
				A.Set(piv, c, tmp)
			}
			x[col], x[piv] = x[piv], x[col]
		}
		inv := 1 / A.At(col, col)
		for r := col + 1; r < n; r++ {
			f := A.At(r, col) * inv
			if f == 0 { //lint:floatcmp-ok elimination skip: an exactly-zero factor leaves the row unchanged
				continue
			}
			for c := col; c < n; c++ {
				A.Set(r, c, A.At(r, c)-f*A.At(col, c))
			}
			x[r] -= f * x[col]
		}
	}
	// Back substitution.
	for r := n - 1; r >= 0; r-- {
		s := x[r]
		for c := r + 1; c < n; c++ {
			s -= A.At(r, c) * x[c]
		}
		x[r] = s / A.At(r, r)
	}
	return x, nil
}

// Trace returns Σ a_ii.
func (m *Matrix) Trace() float64 {
	if m.Rows != m.Cols {
		panic("linalg: trace of non-square matrix") //lint:nopanic-ok programmer error: shape mismatch is a caller bug
	}
	t := 0.0
	for i := 0; i < m.Rows; i++ {
		t += m.At(i, i)
	}
	return t
}
