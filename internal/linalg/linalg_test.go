package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randomSym(rng *rand.Rand, n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := rng.NormFloat64()
			m.Set(i, j, v)
			m.Set(j, i, v)
		}
	}
	return m
}

func TestMul(t *testing.T) {
	a := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b := FromSlice(3, 2, []float64{7, 8, 9, 10, 11, 12})
	c := Mul(a, b)
	want := []float64{58, 64, 139, 154}
	for i, v := range want {
		if c.Data[i] != v {
			t.Fatalf("c[%d] = %g, want %g", i, c.Data[i], v)
		}
	}
}

func TestMulPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Mul(NewMatrix(2, 3), NewMatrix(2, 3))
}

func TestTransposeTrace(t *testing.T) {
	a := FromSlice(2, 2, []float64{1, 2, 3, 4})
	at := a.Transpose()
	if at.At(0, 1) != 3 || at.At(1, 0) != 2 {
		t.Fatalf("transpose wrong: %+v", at.Data)
	}
	if a.Trace() != 5 {
		t.Fatalf("trace = %g", a.Trace())
	}
}

func TestEigSymKnown(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 1 and 3.
	a := FromSlice(2, 2, []float64{2, 1, 1, 2})
	w, V, err := EigSym(a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(w[0]-1) > 1e-12 || math.Abs(w[1]-3) > 1e-12 {
		t.Fatalf("eigenvalues %v", w)
	}
	// Check A·v = w·v.
	for c := 0; c < 2; c++ {
		for r := 0; r < 2; r++ {
			av := a.At(r, 0)*V.At(0, c) + a.At(r, 1)*V.At(1, c)
			if math.Abs(av-w[c]*V.At(r, c)) > 1e-12 {
				t.Fatalf("A·v ≠ w·v at col %d row %d", c, r)
			}
		}
	}
}

// Property: for random symmetric A, V·diag(w)·Vᵀ reconstructs A and V is
// orthogonal.
func TestQuickEigSymReconstruction(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(12) + 2
		A := randomSym(rng, n)
		w, V, err := EigSym(A)
		if err != nil {
			return false
		}
		// Ascending order.
		for i := 1; i < n; i++ {
			if w[i] < w[i-1] {
				return false
			}
		}
		D := NewMatrix(n, n)
		for i, wi := range w {
			D.Set(i, i, wi)
		}
		recon := Mul(Mul(V, D), V.Transpose())
		if MaxAbsDiff(recon, A) > 1e-9 {
			return false
		}
		I := Mul(V.Transpose(), V)
		for i := 0; i < n; i++ {
			I.Set(i, i, I.At(i, i)-1)
		}
		for _, v := range I.Data {
			if math.Abs(v) > 1e-10 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestEigSymRejectsAsymmetric(t *testing.T) {
	a := FromSlice(2, 2, []float64{1, 2, 3, 4})
	if _, _, err := EigSym(a); err == nil {
		t.Fatal("asymmetric matrix accepted")
	}
	if _, _, err := EigSym(NewMatrix(2, 3)); err == nil {
		t.Fatal("non-square matrix accepted")
	}
}

func TestSymOrth(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	// Build an SPD matrix S = MᵀM + I.
	n := 6
	M := NewMatrix(n, n)
	for i := range M.Data {
		M.Data[i] = rng.NormFloat64() * 0.3
	}
	S := Mul(M.Transpose(), M)
	for i := 0; i < n; i++ {
		S.Set(i, i, S.At(i, i)+1)
	}
	X, err := SymOrth(S)
	if err != nil {
		t.Fatal(err)
	}
	// XᵀSX = I.
	I := Mul(Mul(X.Transpose(), S), X)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(I.At(i, j)-want) > 1e-10 {
				t.Fatalf("XᵀSX[%d][%d] = %g", i, j, I.At(i, j))
			}
		}
	}
}

func TestSymOrthRejectsSingular(t *testing.T) {
	S := NewMatrix(2, 2) // zero matrix
	if _, err := SymOrth(S); err == nil {
		t.Fatal("singular overlap accepted")
	}
}

func TestFromSlicePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromSlice(2, 2, []float64{1, 2, 3})
}

func TestClone(t *testing.T) {
	a := FromSlice(1, 2, []float64{1, 2})
	b := a.Clone()
	b.Set(0, 0, 99)
	if a.At(0, 0) != 1 {
		t.Fatal("Clone aliases the original")
	}
}
