package quant

import (
	"math"
	"math/rand"
	"testing"
)

// quantizeRef is the pre-optimization definition: round half away from
// zero via math.Round.
func quantizeRef(x, binSize float64) int64 {
	return int64(math.Round(x / binSize))
}

// TestQuantizeMatchesMathRound pins the fast-round path to math.Round
// on the values where a cheaper rounding scheme would diverge: exact
// halves, the largest double below 0.5, quotients at the 2^52 exactness
// boundary, negatives of all of those, and bulk random input.
func TestQuantizeMatchesMathRound(t *testing.T) {
	boundary := []float64{
		0, math.Copysign(0, -1),
		0.5, -0.5, 1.5, -1.5, 2.5, -2.5,
		0.49999999999999994, -0.49999999999999994, // largest |x| < 0.5
		0.5000000000000001, -0.5000000000000001,
		1<<52 - 1.5, -(1<<52 - 1.5), 1<<52 - 0.5, 1 << 52, -(1 << 52),
		1<<52 + 1, 1 << 53, 1e300, -1e300,
		math.Inf(1), math.Inf(-1), math.NaN(),
		5e-324, -5e-324, 1e-310, math.MaxFloat64,
	}
	for _, r := range boundary {
		// binSize 1 exposes the rounding itself.
		if got, want := Quantize(r, 1), quantizeRef(r, 1); got != want {
			t.Errorf("Quantize(%g, 1) = %d, math.Round path = %d", r, got, want)
		}
	}
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 200000; trial++ {
		x := (rng.Float64() - 0.5) * math.Pow(10, float64(rng.Intn(40)-20))
		bin := math.Pow(10, float64(rng.Intn(28)-14))
		if got, want := Quantize(x, bin), quantizeRef(x, bin); got != want {
			t.Fatalf("Quantize(%g, %g) = %d, math.Round path = %d", x, bin, got, want)
		}
		// Exact half-quotients: x = (k + 0.5) * bin for power-of-two bins
		// divides back to an exact .5 fraction.
		k := float64(rng.Int63n(1 << 40))
		p2 := math.Ldexp(1, rng.Intn(20)-10)
		x = (k + 0.5) * p2
		if got, want := Quantize(x, p2), quantizeRef(x, p2); got != want {
			t.Fatalf("half case: Quantize(%g, %g) = %d, math.Round path = %d", x, p2, got, want)
		}
	}
}

func BenchmarkQuantize(b *testing.B) {
	xs := make([]float64, 4096)
	rng := rand.New(rand.NewSource(5))
	for i := range xs {
		xs[i] = (rng.Float64() - 0.5) * 1e-6
	}
	b.SetBytes(int64(len(xs) * 8))
	var sink int64
	for i := 0; i < b.N; i++ {
		for _, x := range xs {
			sink += Quantize(x, 2e-10)
		}
	}
	_ = sink
}
