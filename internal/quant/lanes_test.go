package quant

import (
	"math"
	"math/rand"
	"testing"
)

func TestQuantizeClampNMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	specials := []float64{0, math.Copysign(0, -1), math.NaN(),
		math.Inf(1), math.Inf(-1), 5e-324, 1e-310, -1e300}
	for trial := 0; trial < 500; trial++ {
		n := rng.Intn(23) // cover empty, tail-only and multi-lane lengths
		xs := make([]float64, n)
		for i := range xs {
			if rng.Intn(5) == 0 {
				xs[i] = specials[rng.Intn(len(specials))]
			} else {
				xs[i] = (rng.Float64() - 0.5) * math.Pow(10, float64(rng.Intn(30)-15))
			}
		}
		binSize := math.Pow(10, float64(rng.Intn(24)-12))
		width := uint(1 + rng.Intn(64))

		want := make([]int64, n)
		for i, x := range xs {
			want[i] = ClampSigned(Quantize(x, binSize), width)
		}
		got := make([]int64, n)
		QuantizeClampN(got, xs, binSize, width)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: element %d: QuantizeClampN = %d, sequential = %d (x=%g bin=%g width=%d)",
					trial, i, got[i], want[i], xs[i], binSize, width)
			}
		}
	}
}

func BenchmarkQuantizeClampN(b *testing.B) {
	xs := make([]float64, 10000)
	rng := rand.New(rand.NewSource(2))
	for i := range xs {
		xs[i] = (rng.Float64() - 0.5) * 1e-4
	}
	dst := make([]int64, len(xs))
	b.SetBytes(int64(len(xs) * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		QuantizeClampN(dst, xs, 2e-10, 30)
	}
}
