package quant

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestQuantizeDequantizeErrorBound(t *testing.T) {
	f := func(x float64, binScale uint8) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e12 {
			return true // skip pathological inputs
		}
		bin := math.Ldexp(1, -int(binScale%40)) // bin sizes 1 .. 2^-39
		q := Quantize(x, bin)
		err := math.Abs(Dequantize(q, bin) - x)
		return err <= bin/2*(1+1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBitsForValue(t *testing.T) {
	cases := []struct {
		v    int64
		want uint
	}{
		{0, 1}, {1, 2}, {-1, 2}, {2, 3}, {3, 3}, {-3, 3}, {4, 4},
		{6, 4}, {7, 4}, {8, 5}, {-8, 5}, {15, 5}, {16, 6},
		{1 << 20, 22}, {(1 << 21) - 1, 22},
	}
	for _, c := range cases {
		if got := BitsForValue(c.v); got != c.want {
			t.Errorf("BitsForValue(%d) = %d, want %d", c.v, got, c.want)
		}
	}
}

// Property: a value always fits in the two's-complement width reported
// for it, and never in one bit fewer (except 0, which needs its 1 bit).
func TestBitsForValueTight(t *testing.T) {
	f := func(v int32) bool {
		b := BitsForValue(int64(v))
		if b > 64 {
			return false
		}
		fits := func(v int64, w uint) bool {
			return v >= -(int64(1)<<(w-1)) && v <= int64(1)<<(w-1)-1
		}
		if !fits(int64(v), b) {
			return false
		}
		if v != 0 && v != -1 && b > 1 && fits(int64(v), b-1) && v > 0 {
			// positive values must NOT fit one bit narrower... except the
			// bin convention makes ±2^(i-2) the smallest member of bin i,
			// so e.g. v=1 has b=2, and 1 does not fit in 1 signed bit. OK.
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPatternBits(t *testing.T) {
	eb := 1e-10
	// Extremum 1e-7 → max quantum = 1e-7/(2e-10) = 500 → needs 10+1 bits?
	// 500 in binary is 111110100 (9 bits) → BitsForValue = 10.
	if got := PatternBits(1e-7, eb); got != 10 {
		t.Errorf("PatternBits(1e-7, 1e-10) = %d, want 10", got)
	}
	if got := PatternBits(0, eb); got != 1 {
		t.Errorf("PatternBits(0) = %d, want 1", got)
	}
	// Paper's example, Sec. IV-B: P range [-1e-7, 1e-7] at EB=1e-10 gives
	// P_b = 10.
	if got := PatternBits(-1e-7, eb); got != 10 {
		t.Errorf("PatternBits(-1e-7) = %d, want 10", got)
	}
}

func TestScaleBinSize(t *testing.T) {
	// sb bits cover range 2 → bin = 2^(1-sb).
	if got := ScaleBinSize(1); got != 1 {
		t.Errorf("ScaleBinSize(1) = %g, want 1", got)
	}
	if got := ScaleBinSize(10); got != math.Ldexp(1, -9) {
		t.Errorf("ScaleBinSize(10) = %g", got)
	}
	// Quantizing S=±1 with that bin and clamping must stay within sb bits
	// and reconstruct within one bin.
	for sb := uint(2); sb <= 40; sb += 7 {
		bin := ScaleBinSize(sb)
		q := ClampSigned(Quantize(1.0, bin), sb)
		if err := math.Abs(Dequantize(q, bin) - 1.0); err > bin {
			t.Errorf("sb=%d: |S-Ŝ| = %g > bin %g", sb, err, bin)
		}
	}
}

func TestClampSigned(t *testing.T) {
	if got := ClampSigned(130, 8); got != 127 {
		t.Errorf("ClampSigned(130,8) = %d", got)
	}
	if got := ClampSigned(-130, 8); got != -128 {
		t.Errorf("ClampSigned(-130,8) = %d", got)
	}
	if got := ClampSigned(5, 8); got != 5 {
		t.Errorf("ClampSigned(5,8) = %d", got)
	}
	if got := ClampSigned(1<<40, 64); got != 1<<40 {
		t.Errorf("ClampSigned width 64 changed value")
	}
}

func TestMaxAbs(t *testing.T) {
	v, i := MaxAbs([]float64{0.1, -3.5, 2.0})
	if v != 3.5 || i != 1 {
		t.Errorf("MaxAbs = %g at %d", v, i)
	}
	v, i = MaxAbs(nil)
	if v != 0 || i != -1 {
		t.Errorf("MaxAbs(nil) = %g at %d", v, i)
	}
	v, i = MaxAbs([]float64{0, 0})
	if v != 0 || i != 0 {
		t.Errorf("MaxAbs(zeros) = %g at %d", v, i)
	}
}

// TestExponentMatchesFrexp pins the bit-extraction exponent against
// math.Frexp across normals, denormals and the special values.
func TestExponentMatchesFrexp(t *testing.T) {
	cases := []float64{
		0, math.Copysign(0, -1), 1, -1, 0.5, 2, 1e-300, -1e300,
		math.SmallestNonzeroFloat64, -math.SmallestNonzeroFloat64,
		math.MaxFloat64, 5e-324 * 12345, // a mid-range denormal
		0x1p-1022, 0x1p-1022 / 2, 0x1.fffffffffffffp-1023,
		math.Inf(1), math.Inf(-1), math.NaN(),
	}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 20000; i++ {
		cases = append(cases, math.Float64frombits(rng.Uint64()))
	}
	for _, v := range cases {
		_, want := math.Frexp(v)
		if got := Exponent(v); got != want {
			t.Fatalf("Exponent(%g / %#x) = %d, want %d", v, math.Float64bits(v), got, want)
		}
	}
}

// TestScaleBinSizeMatchesLdexp pins the direct-bits construction against
// the Ldexp reference for every plausible scale width and beyond.
func TestScaleBinSizeMatchesLdexp(t *testing.T) {
	for sb := uint(0); sb <= 1100; sb++ {
		want := math.Ldexp(1, 1-int(sb))
		if got := ScaleBinSize(sb); got != want {
			t.Fatalf("ScaleBinSize(%d) = %g (%#x), want %g (%#x)",
				sb, got, math.Float64bits(got), want, math.Float64bits(want))
		}
	}
}
