// Package quant implements the quantization arithmetic of PaSTRI
// (Sec. IV-B of the paper): linear-scaling quantization of patterns,
// scaling coefficients and error-correction values, plus the bin/bit-width
// bookkeeping used by the encoder to size its codes.
//
// All quantizers here are mid-tread uniform quantizers
//
//	Q(x) = round(x / binSize),   x̂ = Q(x) · binSize,
//
// whose reconstruction error is bounded by binSize/2. PaSTRI sets the EC
// bin size to 2·EB so the error-correction stage alone guarantees the
// user's absolute error bound regardless of how well the pattern fits.
package quant

import (
	"math"
	"math/bits"
)

// Quantize maps x onto the integer grid with the given bin size:
// round(x/binSize) half away from zero, exactly as math.Round.
//
// The fast path avoids math.Round, which is not an intrinsic on amd64
// and costs a chain of bit manipulations per call. For |r| < 2^52 it is
// bit-exact by construction: q = trunc(r) is exactly representable, the
// subtraction r − q is exact (both are multiples of ulp(r) and the
// difference fits the mantissa), so f is r's true fractional part in
// (−1, 1); f+f doubles it exactly (power-of-two scale), and truncating
// 2f to int64 yields ±1 exactly when |f| ≥ 0.5 — including the |f| =
// 0.5 boundary, which is what makes this round-half-AWAY rather than
// half-even — and 0 otherwise. NaN and |r| ≥ 2^52 (where doubles are
// integral anyway, or conversion saturates) fail the range test and
// take the math.Round path, preserving its behavior everywhere.
// TestQuantizeMatchesMathRound pins the equivalence on the boundary
// values.
func Quantize(x, binSize float64) int64 {
	r := x / binSize
	if r < 1<<52 && r > -(1<<52) {
		q := int64(r)
		f := r - float64(q)
		return q + int64(f+f)
	}
	// |r| >= 2^52, ±Inf or NaN. Every finite double of magnitude >= 2^52
	// is integral, so rounding is the identity there; for ±Inf and NaN
	// math.Round returns its argument unchanged. Either way
	// int64(math.Round(r)) == int64(r) bit for bit, including the
	// implementation-defined saturation of out-of-range conversions,
	// which sees the identical input value on both routes.
	return int64(r)
}

// Dequantize reconstructs the value represented by quantum q.
func Dequantize(q int64, binSize float64) float64 {
	return float64(q) * binSize
}

// BitsForValue returns the minimum number of bits i such that v lies in
// the symmetric range of bin i, following Fig. 6 of the paper:
// bin 1 holds {0}, bin 2 holds {−1, +1}, bin i holds ±[2^(i−2), 2^(i−1)−1].
func BitsForValue(v int64) uint {
	if v == 0 {
		return 1
	}
	if v < 0 {
		v = -v
	}
	return uint(bits.Len64(uint64(v))) + 1
}

// BitsForRange returns the fixed-length symbol width needed for a signed
// quantity whose quanta span [-maxAbs, +maxAbs]: EC_b = ceil(log2(range))
// per eq. (8), with range = 2·maxAbs + 1 values. It always returns at
// least 1.
func BitsForRange(maxAbs int64) uint {
	if maxAbs <= 0 {
		return 1
	}
	// A width of b two's-complement bits covers [-2^(b-1), 2^(b-1)-1];
	// we need maxAbs <= 2^(b-1)-1 ... but the paper's convention (and bin
	// numbering) uses b = BitsForValue(maxAbs), which covers ±maxAbs since
	// -2^(b-1) <= -maxAbs and maxAbs <= 2^(b-1)-1 when maxAbs < 2^(b-1).
	return BitsForValue(maxAbs)
}

// PatternBits computes P_b, the number of bits needed to store quantized
// pattern points whose extremum is pExt, when quantized with bin size
// 2·eb (the paper's practical method, Sec. IV-B): the largest quantum is
// round(|pExt|/(2·eb)) and P_b is the two's-complement width covering it.
func PatternBits(pExt, eb float64) uint {
	if eb <= 0 {
		panic("quant: error bound must be positive") //lint:nopanic-ok programmer error: core.Config validates eb > 0 at the API boundary
	}
	maxQ := int64(math.Round(math.Abs(pExt) / (2 * eb)))
	return BitsForRange(maxQ)
}

// ScaleBinSize returns S_binsize for a scale coefficient stored in sb
// bits. Scale coefficients lie in [-1, 1] (range 2), so the bin size is
// 2 / 2^sb = 2^(1-sb).
func ScaleBinSize(sb uint) float64 {
	if sb >= 1 && sb <= 1023 {
		// 2^(1-sb) with 1-sb in [-1022, 0] is a normal float, so it can
		// be built directly: biased exponent (1-sb)+1023, zero mantissa.
		return math.Float64frombits(uint64(1024-sb) << 52)
	}
	return math.Ldexp(1, 1-int(sb))
}

// Exponent returns the binary exponent exp such that v = frac × 2^exp
// with |frac| ∈ [0.5, 1), exactly as math.Frexp reports it (including
// the exp = 0 convention for ±0, ±Inf and NaN), extracted straight from
// the IEEE-754 bits instead of through Frexp's normalize-and-split.
func Exponent(v float64) int {
	b := math.Float64bits(v) &^ (1 << 63)
	e := int(b >> 52)
	switch {
	case e == 0x7ff || b == 0:
		return 0
	case e != 0:
		return e - 1022
	default:
		// Denormal: v = mantissa × 2^-1074 with mantissa < 2^52.
		return bits.Len64(b) - 1074
	}
}

// ClampSigned limits q to the representable two's-complement range of
// `width` bits. Quantization of values right at the range edge can
// otherwise overflow by one quantum after rounding.
func ClampSigned(q int64, width uint) int64 {
	if width >= 64 {
		return q
	}
	max := int64(1)<<(width-1) - 1
	min := -int64(1) << (width - 1)
	if q > max {
		return max
	}
	if q < min {
		return min
	}
	return q
}

// MaxAbs returns the maximum absolute value in xs and its index. For an
// empty slice it returns (0, -1).
func MaxAbs(xs []float64) (float64, int) {
	best, idx := 0.0, -1
	for i, x := range xs {
		a := math.Abs(x)
		if a > best || idx == -1 {
			best = a
			idx = i
		}
	}
	return best, idx
}
