package quant

// QuantizeClampN fills dst[i] = ClampSigned(Quantize(xs[i], binSize), width)
// for every element. The loop body is element-wise (no cross-element
// arithmetic), so the 4-lane unrolling below is bit-identical to the
// sequential loop — it exists purely to keep several of Quantize's
// divides in flight at once, which is what bounds the pattern/scale
// quantization stage. len(dst) must be >= len(xs).
//
//pastri:hotpath
func QuantizeClampN(dst []int64, xs []float64, binSize float64, width uint) {
	n := len(xs)
	i := 0
	for ; i+4 <= n; i += 4 {
		q0 := Quantize(xs[i], binSize)
		q1 := Quantize(xs[i+1], binSize)
		q2 := Quantize(xs[i+2], binSize)
		q3 := Quantize(xs[i+3], binSize)
		dst[i] = ClampSigned(q0, width)
		dst[i+1] = ClampSigned(q1, width)
		dst[i+2] = ClampSigned(q2, width)
		dst[i+3] = ClampSigned(q3, width)
	}
	for ; i < n; i++ {
		dst[i] = ClampSigned(Quantize(xs[i], binSize), width)
	}
}
