package hf

import (
	"fmt"

	"repro/internal/basis"
	"repro/internal/eri"
	"repro/internal/linalg"
)

// Molecular properties from a converged SCF density — the downstream
// consumers of the (possibly PaSTRI-decompressed) integral supply.

// MullikenCharges performs Mulliken population analysis: the charge on
// atom A is Z_A − Σ_{μ∈A} (D·S)_{μμ}.
func MullikenCharges(bs *basis.BasisSet, density, overlap *linalg.Matrix) ([]float64, error) {
	n := bs.NBF()
	if density == nil || overlap == nil || density.Rows != n || overlap.Rows != n {
		return nil, fmt.Errorf("hf: density/overlap shape mismatch")
	}
	DS := linalg.Mul(density, overlap)
	pop := make([]float64, len(bs.Mol.Atoms))
	for s := 0; s < bs.NShells(); s++ {
		atom := bs.Shells[s].Atom
		if atom < 0 || atom >= len(pop) {
			return nil, fmt.Errorf("hf: shell %d has no atom assignment", s)
		}
		off := bs.Offset(s)
		for k := 0; k < bs.Shells[s].NCart(); k++ {
			pop[atom] += DS.At(off+k, off+k)
		}
	}
	charges := make([]float64, len(pop))
	for a := range charges {
		charges[a] = float64(bs.Mol.Atoms[a].Z) - pop[a]
	}
	return charges, nil
}

// DipoleMoment returns the molecular dipole vector in atomic units:
// μ = Σ_A Z_A·R_A − Σ_{μν} D_{μν}·⟨μ|r|ν⟩.
func DipoleMoment(bs *basis.BasisSet, density *linalg.Matrix) (basis.Vec3, error) {
	n := bs.NBF()
	if density == nil || density.Rows != n {
		return basis.Vec3{}, fmt.Errorf("hf: density shape mismatch")
	}
	dx, dy, dz, _ := eri.DipoleIntegrals(bs)
	var mu basis.Vec3
	for _, at := range bs.Mol.Atoms {
		mu = mu.Add(at.Pos.Scale(float64(at.Z)))
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			d := density.At(i, j)
			mu[0] -= d * dx[i*n+j]
			mu[1] -= d * dy[i*n+j]
			mu[2] -= d * dz[i*n+j]
		}
	}
	return mu, nil
}

// AtomicUnitsToDebye converts a dipole magnitude from e·a0 to Debye.
const AtomicUnitsToDebye = 2.541746473
