// Package hf implements a restricted Hartree–Fock (RHF) self-consistent
// field solver on top of the integral engine — the end-to-end quantum
// chemistry use case that motivates PaSTRI: the two-electron integrals
// are needed again at every SCF iteration, and can be recomputed from
// scratch, held in memory, or decompressed from a PaSTRI stream
// (Fig. 11 of the paper).
package hf

import (
	"fmt"
	"log/slog"
	"time"

	"repro/internal/basis"
	"repro/internal/core"
	"repro/internal/eri"
	"repro/internal/linalg"
)

// ERISource supplies the full (ij|kl) tensor on demand, once per SCF
// iteration. Implementations model the three storage strategies the
// paper compares.
type ERISource interface {
	// ERIs returns the n⁴ chemist-notation tensor. The returned slice
	// must stay valid until the next call.
	ERIs() ([]float64, error)
	// Name labels the strategy in reports.
	Name() string
}

// DirectSource recomputes every integral from scratch on each call —
// the paper's "Original" GAMESS strategy.
type DirectSource struct{ BS *basis.BasisSet }

// ERIs recomputes the full tensor.
func (s *DirectSource) ERIs() ([]float64, error) { return eri.AllERIs(s.BS), nil }

// Name implements ERISource.
func (s *DirectSource) Name() string { return "direct-recompute" }

// MemorySource computes the tensor once and returns it thereafter.
type MemorySource struct {
	BS   *basis.BasisSet
	eris []float64
}

// ERIs returns the cached tensor, computing it on first use.
func (s *MemorySource) ERIs() ([]float64, error) {
	if s.eris == nil {
		s.eris = eri.AllERIs(s.BS)
	}
	return s.eris, nil
}

// Name implements ERISource.
func (s *MemorySource) Name() string { return "in-memory" }

// CompressedSource computes the tensor once, stores it PaSTRI-compressed
// and decompresses on every call — the paper's "PaSTRI infrastructure".
type CompressedSource struct {
	comp []byte
	buf  []float64
	// CompressedBytes and RawBytes record the storage footprint.
	CompressedBytes int
	RawBytes        int
}

// NewCompressedSource builds the compressed ERI store for a basis set.
// The n⁴ tensor is one PaSTRI block with numSB = n², sbSize = n²: the
// (ij| pairs index sub-blocks and |kl) pairs index points, so the
// pattern structure of Sec. III-B applies directly.
func NewCompressedSource(bs *basis.BasisSet, eb float64) (*CompressedSource, error) {
	return NewCompressedSourceLogged(bs, eb, nil)
}

// NewCompressedSourceLogged is NewCompressedSource with a structured
// logger threaded into the compression run. nil disables logging.
func NewCompressedSourceLogged(bs *basis.BasisSet, eb float64, logger *slog.Logger) (*CompressedSource, error) {
	raw := eri.AllERIs(bs)
	n := bs.NBF()
	cfg := core.Defaults(n*n, n*n, eb)
	cfg.Logger = logger
	comp, err := core.Compress(raw, cfg, nil)
	if err != nil {
		return nil, err
	}
	return &CompressedSource{
		comp:            comp,
		CompressedBytes: len(comp),
		RawBytes:        len(raw) * 8,
	}, nil
}

// ERIs decompresses the stored tensor.
func (s *CompressedSource) ERIs() ([]float64, error) {
	out, err := core.Decompress(s.comp, 0)
	if err != nil {
		return nil, err
	}
	s.buf = out
	return out, nil
}

// Name implements ERISource.
func (s *CompressedSource) Name() string { return "pastri-compressed" }

// Options tunes the SCF loop.
type Options struct {
	MaxIterations int     // default 100
	EnergyTol     float64 // default 1e-9 Hartree
	DensityTol    float64 // default 1e-7
	// DisableDIIS turns off Pulay convergence acceleration (used by the
	// convergence comparison test; production runs want it on).
	DisableDIIS bool
	// DIISVectors bounds the extrapolation subspace (default 8).
	DIISVectors int
}

func (o Options) withDefaults() Options {
	if o.MaxIterations <= 0 {
		o.MaxIterations = 100
	}
	if o.EnergyTol <= 0 {
		o.EnergyTol = 1e-9
	}
	if o.DensityTol <= 0 {
		o.DensityTol = 1e-7
	}
	if o.DIISVectors <= 0 {
		o.DIISVectors = 8
	}
	return o
}

// Result reports a converged (or aborted) SCF calculation.
type Result struct {
	Energy          float64 // total energy in Hartree (electronic + nuclear)
	ElectronicE     float64
	NuclearE        float64
	Iterations      int
	Converged       bool
	OrbitalEnergies []float64
	ERITime         time.Duration // cumulative time spent obtaining ERIs
	SCFTime         time.Duration // total SCF wall time
	// Density and Fock are the final AO-basis density and Fock matrices
	// (for property evaluation and diagnostics).
	Density *linalg.Matrix
	Fock    *linalg.Matrix
	// Overlap is the AO overlap matrix.
	Overlap *linalg.Matrix
}

// SCF runs restricted Hartree–Fock for a closed-shell molecule with
// `charge` net charge, drawing two-electron integrals from src.
func SCF(bs *basis.BasisSet, charge int, src ERISource, opt Options) (*Result, error) {
	opt = opt.withDefaults()
	nElec := bs.Mol.NElectrons() - charge
	if nElec <= 0 {
		return nil, fmt.Errorf("hf: %d electrons", nElec)
	}
	if nElec%2 != 0 {
		return nil, fmt.Errorf("hf: RHF needs a closed shell, got %d electrons", nElec)
	}
	nocc := nElec / 2
	n := bs.NBF()
	if nocc > n {
		return nil, fmt.Errorf("hf: %d occupied orbitals exceed %d basis functions", nocc, n)
	}

	start := time.Now()
	Sflat, Tflat, Vflat, _ := eri.OneElectron(bs)
	S := linalg.FromSlice(n, n, Sflat)
	H := linalg.NewMatrix(n, n)
	for i := range H.Data {
		H.Data[i] = Tflat[i] + Vflat[i]
	}
	X, err := linalg.SymOrth(S)
	if err != nil {
		return nil, fmt.Errorf("hf: %w", err)
	}

	res := &Result{NuclearE: bs.Mol.NuclearRepulsion()}
	D := linalg.NewMatrix(n, n)
	F := H.Clone()
	prevE := 0.0
	var acc *diis
	if !opt.DisableDIIS {
		acc = newDIIS(opt.DIISVectors)
	}

	for iter := 1; iter <= opt.MaxIterations; iter++ {
		res.Iterations = iter
		// DIIS: extrapolate the Fock matrix from the recent subspace.
		fEff := F
		if acc != nil && iter > 2 {
			if mixed, err := acc.extrapolate(); err == nil {
				fEff = mixed
			}
		}
		// Diagonalize in the orthogonal basis.
		Fp := linalg.Mul(linalg.Mul(X.Transpose(), fEff), X)
		eps, Cp, err := linalg.EigSym(Fp)
		if err != nil {
			return nil, fmt.Errorf("hf: iteration %d: %w", iter, err)
		}
		C := linalg.Mul(X, Cp)
		res.OrbitalEnergies = eps

		// Closed-shell density: D_mn = 2 Σ_occ C_mi C_ni.
		newD := linalg.NewMatrix(n, n)
		for m := 0; m < n; m++ {
			for nu := 0; nu < n; nu++ {
				s := 0.0
				for i := 0; i < nocc; i++ {
					s += C.At(m, i) * C.At(nu, i)
				}
				newD.Set(m, nu, 2*s)
			}
		}
		dDiff := linalg.MaxAbsDiff(newD, D)
		D = newD

		// Fock build: F = H + G[D].
		t0 := time.Now()
		eris, err := src.ERIs()
		res.ERITime += time.Since(t0)
		if err != nil {
			return nil, fmt.Errorf("hf: iteration %d: %w", iter, err)
		}
		F = fock(H, D, eris, n)
		if acc != nil {
			acc.push(F, diisError(F, D, S, X))
		}

		// E_elec = ½ Σ D (H + F).
		e := 0.0
		for i := range D.Data {
			e += D.Data[i] * (H.Data[i] + F.Data[i])
		}
		e /= 2
		res.ElectronicE = e
		res.Energy = e + res.NuclearE

		if iter > 1 && abs(e-prevE) < opt.EnergyTol && dDiff < opt.DensityTol {
			res.Converged = true
			break
		}
		prevE = e
	}
	res.Density = D
	res.Fock = F
	res.Overlap = S
	res.SCFTime = time.Since(start)
	return res, nil
}

// fock assembles F = H + G with
// G_mn = Σ_ls D_ls [ (mn|ls) − ½·(ml|ns) ].
func fock(H, D *linalg.Matrix, eris []float64, n int) *linalg.Matrix {
	F := H.Clone()
	for m := 0; m < n; m++ {
		for nu := 0; nu < n; nu++ {
			g := 0.0
			for l := 0; l < n; l++ {
				for s := 0; s < n; s++ {
					d := D.At(l, s)
					if d == 0 { //lint:floatcmp-ok sparsity skip: exact-zero density entries contribute nothing
						continue
					}
					coul := eris[((m*n+nu)*n+l)*n+s]
					exch := eris[((m*n+l)*n+nu)*n+s]
					g += d * (coul - 0.5*exch)
				}
			}
			F.Set(m, nu, F.At(m, nu)+g)
		}
	}
	// Symmetrize: a lossy (error-bounded) ERI store perturbs each tensor
	// element independently, so G picks up an O(EB) asymmetry.
	for m := 0; m < n; m++ {
		for nu := m + 1; nu < n; nu++ {
			avg := (F.At(m, nu) + F.At(nu, m)) / 2
			F.Set(m, nu, avg)
			F.Set(nu, m, avg)
		}
	}
	return F
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
