package hf

import (
	"fmt"

	"repro/internal/linalg"
)

// diis implements Pulay's Direct Inversion in the Iterative Subspace:
// the next Fock matrix is the linear combination of recent Fock
// matrices whose combined error vector e = F·D·S − S·D·F (measured in
// the orthonormal basis) has minimal norm, subject to Σc = 1. This is
// the standard SCF convergence accelerator in production quantum
// chemistry codes.
type diis struct {
	maxVecs int
	focks   []*linalg.Matrix
	errs    []*linalg.Matrix
}

func newDIIS(maxVecs int) *diis {
	if maxVecs < 2 {
		maxVecs = 8
	}
	return &diis{maxVecs: maxVecs}
}

// errorVector returns X·(F·D·S − S·D·F)·Xᵀ... the commutator transformed
// to the orthonormal basis, whose Frobenius norm vanishes at SCF
// stationarity.
func diisError(F, D, S, X *linalg.Matrix) *linalg.Matrix {
	fds := linalg.Mul(linalg.Mul(F, D), S)
	sdf := linalg.Mul(linalg.Mul(S, D), F)
	comm := linalg.NewMatrix(F.Rows, F.Cols)
	for i := range comm.Data {
		comm.Data[i] = fds.Data[i] - sdf.Data[i]
	}
	return linalg.Mul(linalg.Mul(X.Transpose(), comm), X)
}

// push records one iterate.
func (d *diis) push(F, err *linalg.Matrix) {
	d.focks = append(d.focks, F.Clone())
	d.errs = append(d.errs, err)
	if len(d.focks) > d.maxVecs {
		d.focks = d.focks[1:]
		d.errs = d.errs[1:]
	}
}

// errNorm returns the max-abs element of the newest error vector.
func (d *diis) errNorm() float64 {
	e := d.errs[len(d.errs)-1]
	m := 0.0
	for _, v := range e.Data {
		if v < 0 {
			v = -v
		}
		if v > m {
			m = v
		}
	}
	return m
}

// extrapolate solves the DIIS equations and returns the mixed Fock
// matrix, or an error when the subspace is degenerate (caller falls
// back to the plain Fock matrix).
func (d *diis) extrapolate() (*linalg.Matrix, error) {
	m := len(d.focks)
	if m < 2 {
		return nil, fmt.Errorf("hf: DIIS subspace too small")
	}
	// B is the Gram matrix of error vectors bordered by the −1 row/col
	// for the Σc = 1 constraint.
	B := linalg.NewMatrix(m+1, m+1)
	for i := 0; i < m; i++ {
		for j := i; j < m; j++ {
			dot := 0.0
			for k := range d.errs[i].Data {
				dot += d.errs[i].Data[k] * d.errs[j].Data[k]
			}
			B.Set(i, j, dot)
			B.Set(j, i, dot)
		}
		B.Set(i, m, -1)
		B.Set(m, i, -1)
	}
	rhs := make([]float64, m+1)
	rhs[m] = -1
	coef, err := linalg.SolveLinear(B, rhs)
	if err != nil {
		return nil, err
	}
	F := linalg.NewMatrix(d.focks[0].Rows, d.focks[0].Cols)
	for i := 0; i < m; i++ {
		c := coef[i]
		for k := range F.Data {
			F.Data[k] += c * d.focks[i].Data[k]
		}
	}
	return F, nil
}
