package hf

import (
	"math"
	"testing"

	"repro/internal/basis"
)

func convergedWater(t *testing.T) (*basis.BasisSet, *Result) {
	t.Helper()
	bs, err := basis.STO3G(basis.Water())
	if err != nil {
		t.Fatal(err)
	}
	res, err := SCF(bs, 0, &MemorySource{BS: bs}, Options{})
	if err != nil || !res.Converged {
		t.Fatalf("SCF: %v (converged=%v)", err, res != nil && res.Converged)
	}
	return bs, res
}

// RHF/STO-3G water dipole: literature ≈ 1.71 D ≈ 0.67 a.u.
func TestWaterDipole(t *testing.T) {
	bs, res := convergedWater(t)
	mu, err := DipoleMoment(bs, res.Density)
	if err != nil {
		t.Fatal(err)
	}
	mag := mu.Norm()
	if mag < 0.5 || mag > 0.85 {
		t.Fatalf("water dipole = %.4f a.u. (%.3f D), want ≈ 0.67 a.u.",
			mag, mag*AtomicUnitsToDebye)
	}
	// The dipole must point along the C2v symmetry axis: the water
	// geometry puts both hydrogens symmetric about the bisector in the
	// xy-plane, so μ_z = 0.
	if math.Abs(mu[2]) > 1e-8 {
		t.Fatalf("out-of-plane dipole component %g", mu[2])
	}
}

func TestWaterMulliken(t *testing.T) {
	bs, res := convergedWater(t)
	q, err := MullikenCharges(bs, res.Density, res.Overlap)
	if err != nil {
		t.Fatal(err)
	}
	if len(q) != 3 {
		t.Fatalf("%d charges", len(q))
	}
	// Oxygen negative, hydrogens positive and symmetric; total zero.
	if q[0] >= 0 {
		t.Errorf("O charge %.4f, want < 0", q[0])
	}
	if q[1] <= 0 || q[2] <= 0 {
		t.Errorf("H charges %.4f, %.4f, want > 0", q[1], q[2])
	}
	if math.Abs(q[1]-q[2]) > 1e-8 {
		t.Errorf("H charges differ: %.6f vs %.6f", q[1], q[2])
	}
	total := q[0] + q[1] + q[2]
	if math.Abs(total) > 1e-8 {
		t.Errorf("charges sum to %g", total)
	}
	// STO-3G Mulliken oxygen charge is ≈ −0.33 e.
	if q[0] < -0.6 || q[0] > -0.15 {
		t.Errorf("O charge %.4f outside the credible STO-3G band", q[0])
	}
}

// A homonuclear diatomic has zero dipole and zero charges by symmetry.
func TestH2Symmetry(t *testing.T) {
	bs, err := basis.STO3G(basis.H2())
	if err != nil {
		t.Fatal(err)
	}
	res, err := SCF(bs, 0, &MemorySource{BS: bs}, Options{})
	if err != nil || !res.Converged {
		t.Fatal("SCF failed")
	}
	mu, err := DipoleMoment(bs, res.Density)
	if err != nil {
		t.Fatal(err)
	}
	if mu.Norm() > 1e-8 {
		t.Errorf("H2 dipole %g", mu.Norm())
	}
	q, err := MullikenCharges(bs, res.Density, res.Overlap)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(q[0]) > 1e-8 || math.Abs(q[1]) > 1e-8 {
		t.Errorf("H2 charges %v", q)
	}
}

func TestPropertiesValidation(t *testing.T) {
	bs, _ := basis.STO3G(basis.Water())
	if _, err := MullikenCharges(bs, nil, nil); err == nil {
		t.Error("nil matrices accepted")
	}
	if _, err := DipoleMoment(bs, nil); err == nil {
		t.Error("nil density accepted")
	}
}
