package hf

import (
	"math"
	"testing"

	"repro/internal/basis"
	"repro/internal/linalg"
)

// The blocked (compressed, symmetry-folded) Fock build must agree with
// the dense-tensor build on an arbitrary symmetric density.
func TestBlockedFockMatchesDense(t *testing.T) {
	bs, err := basis.STO3G(basis.Water())
	if err != nil {
		t.Fatal(err)
	}
	store, err := NewBlockedStore(bs, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if store.Blocks() == 0 {
		t.Fatal("empty store")
	}
	if store.CompressedBytes >= store.RawBytes {
		t.Fatalf("store did not compress: %d vs %d", store.CompressedBytes, store.RawBytes)
	}
	n := bs.NBF()
	// Arbitrary symmetric density.
	D := linalg.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := math.Sin(float64(i*7+j*3)) * 0.3
			D.Set(i, j, v)
			D.Set(j, i, v)
		}
	}
	H := linalg.NewMatrix(n, n) // zero core: isolate G[D]
	blocked, err := store.Fock(H, D)
	if err != nil {
		t.Fatal(err)
	}
	eris, err := (&MemorySource{BS: bs}).ERIs()
	if err != nil {
		t.Fatal(err)
	}
	dense := fock(H, D, eris, n)
	if diff := linalg.MaxAbsDiff(blocked, dense); diff > 1e-9 {
		t.Fatalf("blocked vs dense Fock differ by %g", diff)
	}
}

// End-to-end: SCF on the blocked compressed store converges to the
// same water energy as the dense path.
func TestSCFBlockedWater(t *testing.T) {
	bs, err := basis.STO3G(basis.Water())
	if err != nil {
		t.Fatal(err)
	}
	store, err := NewBlockedStore(bs, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	res, err := SCFBlocked(bs, 0, store, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("blocked SCF did not converge")
	}
	dense, err := SCF(bs, 0, &MemorySource{BS: bs}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Energy-dense.Energy) > 1e-6 {
		t.Fatalf("blocked %.9f vs dense %.9f", res.Energy, dense.Energy)
	}
}

func TestSCFBlockedValidation(t *testing.T) {
	bs, err := basis.STO3G(basis.Water())
	if err != nil {
		t.Fatal(err)
	}
	store, err := NewBlockedStore(bs, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SCFBlocked(bs, 1, store, Options{}); err == nil {
		t.Error("odd electron count accepted")
	}
	if _, err := store.Fock(linalg.NewMatrix(2, 2), linalg.NewMatrix(2, 2)); err == nil {
		t.Error("wrong matrix size accepted")
	}
}
