package hf

import (
	"fmt"
	"time"

	"repro/internal/basis"
	"repro/internal/eri"
	"repro/internal/linalg"
)

// UHF implements unrestricted Hartree–Fock for open-shell systems —
// one of the methods the paper lists as benefiting from compressed ERI
// storage (Sec. I). Spin-up and spin-down electrons get independent
// orbital sets:
//
//	F_α = H + J[D_α + D_β] − K[D_α]
//	F_β = H + J[D_α + D_β] − K[D_β]
//	E   = ½ Σ [ D_total·H + D_α·F_α + D_β·F_β ]

// UHFResult extends Result with spin-resolved quantities.
type UHFResult struct {
	Energy        float64
	ElectronicE   float64
	NuclearE      float64
	Iterations    int
	Converged     bool
	AlphaEnergies []float64
	BetaEnergies  []float64
	S2            float64 // ⟨S²⟩ expectation (spin contamination diagnostic)
	ERITime       time.Duration
	DensityAlpha  *linalg.Matrix
	DensityBeta   *linalg.Matrix
	Overlap       *linalg.Matrix
}

// UHFSCF runs unrestricted Hartree–Fock with nAlpha ≥ nBeta electrons
// of each spin, drawing ERIs from src.
func UHFSCF(bs *basis.BasisSet, charge, multiplicity int, src ERISource, opt Options) (*UHFResult, error) {
	opt = opt.withDefaults()
	nElec := bs.Mol.NElectrons() - charge
	if nElec <= 0 {
		return nil, fmt.Errorf("hf: %d electrons", nElec)
	}
	nOpen := multiplicity - 1 // unpaired electrons
	if nOpen < 0 || (nElec-nOpen)%2 != 0 || nOpen > nElec {
		return nil, fmt.Errorf("hf: multiplicity %d impossible with %d electrons", multiplicity, nElec)
	}
	nBeta := (nElec - nOpen) / 2
	nAlpha := nBeta + nOpen
	n := bs.NBF()
	if nAlpha > n {
		return nil, fmt.Errorf("hf: %d alpha electrons exceed %d basis functions", nAlpha, n)
	}

	Sflat, Tflat, Vflat, _ := eri.OneElectron(bs)
	S := linalg.FromSlice(n, n, Sflat)
	H := linalg.NewMatrix(n, n)
	for i := range H.Data {
		H.Data[i] = Tflat[i] + Vflat[i]
	}
	X, err := linalg.SymOrth(S)
	if err != nil {
		return nil, fmt.Errorf("hf: %w", err)
	}

	res := &UHFResult{NuclearE: bs.Mol.NuclearRepulsion(), Overlap: S}
	Da := linalg.NewMatrix(n, n)
	Db := linalg.NewMatrix(n, n)
	Fa, Fb := H.Clone(), H.Clone()
	var Ca, Cb *linalg.Matrix
	prevE := 0.0

	for iter := 1; iter <= opt.MaxIterations; iter++ {
		res.Iterations = iter
		var err error
		var epsA, epsB []float64
		epsA, Ca, err = diagonalize(Fa, X)
		if err != nil {
			return nil, fmt.Errorf("hf: iteration %d (alpha): %w", iter, err)
		}
		epsB, Cb, err = diagonalize(Fb, X)
		if err != nil {
			return nil, fmt.Errorf("hf: iteration %d (beta): %w", iter, err)
		}
		res.AlphaEnergies, res.BetaEnergies = epsA, epsB

		newDa := densityFrom(Ca, nAlpha, 1)
		newDb := densityFrom(Cb, nBeta, 1)
		dDiff := linalg.MaxAbsDiff(newDa, Da) + linalg.MaxAbsDiff(newDb, Db)
		Da, Db = newDa, newDb

		t0 := time.Now()
		eris, err := src.ERIs()
		res.ERITime += time.Since(t0)
		if err != nil {
			return nil, fmt.Errorf("hf: iteration %d: %w", iter, err)
		}
		Fa = uhfFock(H, Da, Db, eris, n)
		Fb = uhfFock(H, Db, Da, eris, n)

		e := 0.0
		for i := range H.Data {
			dt := Da.Data[i] + Db.Data[i]
			e += dt*H.Data[i] + Da.Data[i]*Fa.Data[i] + Db.Data[i]*Fb.Data[i]
		}
		e /= 2
		res.ElectronicE = e
		res.Energy = e + res.NuclearE

		if iter > 1 && abs(e-prevE) < opt.EnergyTol && dDiff < opt.DensityTol {
			res.Converged = true
			break
		}
		prevE = e
	}

	res.DensityAlpha, res.DensityBeta = Da, Db
	res.S2 = spinExpectation(Ca, Cb, S, nAlpha, nBeta)
	return res, nil
}

// diagonalize solves F'C' = C'ε in the orthonormal basis and
// back-transforms the coefficients.
func diagonalize(F, X *linalg.Matrix) ([]float64, *linalg.Matrix, error) {
	Fp := linalg.Mul(linalg.Mul(X.Transpose(), F), X)
	eps, Cp, err := linalg.EigSym(Fp)
	if err != nil {
		return nil, nil, err
	}
	return eps, linalg.Mul(X, Cp), nil
}

// densityFrom builds D_mn = occScale · Σ_occ C_mi C_ni.
func densityFrom(C *linalg.Matrix, nocc int, occScale float64) *linalg.Matrix {
	n := C.Rows
	D := linalg.NewMatrix(n, n)
	for m := 0; m < n; m++ {
		for nu := 0; nu < n; nu++ {
			s := 0.0
			for i := 0; i < nocc; i++ {
				s += C.At(m, i) * C.At(nu, i)
			}
			D.Set(m, nu, occScale*s)
		}
	}
	return D
}

// uhfFock builds F_σ = H + J[D_σ + D_τ] − K[D_σ].
func uhfFock(H, Dsigma, Dtau *linalg.Matrix, eris []float64, n int) *linalg.Matrix {
	F := H.Clone()
	for m := 0; m < n; m++ {
		for nu := 0; nu < n; nu++ {
			g := 0.0
			for l := 0; l < n; l++ {
				for s := 0; s < n; s++ {
					dTot := Dsigma.At(l, s) + Dtau.At(l, s)
					if dTot != 0 { //lint:floatcmp-ok sparsity skip: exact-zero density entries contribute nothing
						g += dTot * eris[((m*n+nu)*n+l)*n+s]
					}
					if ds := Dsigma.At(l, s); ds != 0 { //lint:floatcmp-ok sparsity skip: exact zeros only
						g -= ds * eris[((m*n+l)*n+nu)*n+s]
					}
				}
			}
			F.Set(m, nu, F.At(m, nu)+g)
		}
	}
	for m := 0; m < n; m++ {
		for nu := m + 1; nu < n; nu++ {
			avg := (F.At(m, nu) + F.At(nu, m)) / 2
			F.Set(m, nu, avg)
			F.Set(nu, m, avg)
		}
	}
	return F
}

// spinExpectation computes ⟨S²⟩ = S²_exact + N_β − Σ_ij |⟨α_i|β_j⟩|²
// over the occupied orbitals.
func spinExpectation(Ca, Cb, S *linalg.Matrix, nAlpha, nBeta int) float64 {
	sz := float64(nAlpha-nBeta) / 2
	exact := sz * (sz + 1)
	if Ca == nil || Cb == nil {
		return exact
	}
	// Overlaps between occupied alpha and beta orbitals: CaᵀS Cb.
	ov := linalg.Mul(linalg.Mul(Ca.Transpose(), S), Cb)
	sum := 0.0
	for i := 0; i < nAlpha; i++ {
		for j := 0; j < nBeta; j++ {
			v := ov.At(i, j)
			sum += v * v
		}
	}
	return exact + float64(nBeta) - sum
}
