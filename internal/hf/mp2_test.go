package hf

import (
	"math"
	"testing"

	"repro/internal/basis"
)

// MP2/STO-3G water: correlation energy ≈ −0.049 Eh (Crawford's
// programming-project reference is −0.04915 at a near-identical
// geometry).
func TestMP2Water(t *testing.T) {
	bs, err := basis.STO3G(basis.Water())
	if err != nil {
		t.Fatal(err)
	}
	res, err := MP2(bs, 0, &MemorySource{BS: bs}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.ECorr >= 0 {
		t.Fatalf("correlation energy %.6f not negative", res.ECorr)
	}
	if res.ECorr < -0.07 || res.ECorr > -0.03 {
		t.Fatalf("E(2) = %.5f, want ≈ -0.049", res.ECorr)
	}
	if math.Abs(res.ETotal-(res.EHF+res.ECorr)) > 1e-12 {
		t.Fatal("total energy inconsistent")
	}
	if res.NOcc != 5 || res.NVirt != 2 {
		t.Fatalf("occ/virt = %d/%d", res.NOcc, res.NVirt)
	}
	// Pair-energy matrix: symmetric, all pairs non-positive.
	for i := 0; i < res.NOcc; i++ {
		for j := 0; j < res.NOcc; j++ {
			if math.Abs(res.PairEnergy[i][j]-res.PairEnergy[j][i]) > 1e-10 {
				t.Fatalf("pair energies asymmetric at %d,%d", i, j)
			}
		}
	}
}

// MP2 for H2: one occupied, one virtual orbital; E(2) must match the
// closed form −|(ia|ia)|²·... i.e. (ov|ov)²·2/denominator with the
// exchange term folded in: pair = (ia|ia)²/(2ε_i − 2ε_a).
func TestMP2H2ClosedForm(t *testing.T) {
	bs, err := basis.STO3G(basis.H2())
	if err != nil {
		t.Fatal(err)
	}
	res, err := MP2(bs, 0, &MemorySource{BS: bs}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.NOcc != 1 || res.NVirt != 1 {
		t.Fatalf("occ/virt = %d/%d", res.NOcc, res.NVirt)
	}
	// H2/STO-3G MP2 correlation ≈ −0.013 Eh (Szabo & Ostlund ballpark
	// at the experimental geometry).
	if res.ECorr > -0.005 || res.ECorr < -0.03 {
		t.Fatalf("H2 E(2) = %.5f", res.ECorr)
	}
}

// MP2 through the compressed ERI store must agree with exact ERIs to
// well within the error-bound-induced perturbation.
func TestMP2CompressedERIs(t *testing.T) {
	bs, err := basis.STO3G(basis.Water())
	if err != nil {
		t.Fatal(err)
	}
	exact, err := MP2(bs, 0, &MemorySource{BS: bs}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	comp, err := NewCompressedSource(bs, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	lossy, err := MP2(bs, 0, comp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(exact.ECorr-lossy.ECorr) > 1e-6 {
		t.Fatalf("compressed MP2 %.8f vs exact %.8f", lossy.ECorr, exact.ECorr)
	}
}

func TestMP2Validation(t *testing.T) {
	// H2 with minimal basis but both electrons removed → no SCF.
	bs, err := basis.STO3G(basis.H2())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := MP2(bs, 2, &MemorySource{BS: bs}, Options{}); err == nil {
		t.Error("zero-electron system accepted")
	}
	// Single H2 atom pair with minimal basis: He has 1 BF and 2
	// electrons → no virtual space.
	he := basis.Molecule{Name: "He", Atoms: []basis.Atom{{Symbol: "He", Z: 2}}}
	bsHe, err := basis.STO3G(he)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := MP2(bsHe, 0, &MemorySource{BS: bsHe}, Options{}); err == nil {
		t.Error("system without virtual orbitals accepted")
	}
}
