package hf

import (
	"fmt"
	"log/slog"

	"repro/internal/basis"
	"repro/internal/container"
	"repro/internal/core"
	"repro/internal/eri"
	"repro/internal/linalg"
)

// BlockedStore is the production-shaped "PaSTRI infrastructure" of the
// paper's Fig. 11: the unique (canonically ordered, Schwarz-screened)
// shell-quartet ERI blocks are computed once, compressed per block into
// a multi-geometry container, and the Fock matrix is assembled directly
// from decompressed blocks using the 8-fold permutational symmetry —
// the full n⁴ tensor never exists in memory.
type BlockedStore struct {
	bs       *basis.BasisSet
	quartets []eri.Quartet
	reader   *container.Reader
	// RawBytes / CompressedBytes record the storage footprint.
	RawBytes        int
	CompressedBytes int
}

// NewBlockedStore computes, compresses and indexes the screened unique
// shell-quartet blocks of a basis set at the given error bound.
func NewBlockedStore(bs *basis.BasisSet, eb float64) (*BlockedStore, error) {
	return NewBlockedStoreLogged(bs, eb, nil)
}

// NewBlockedStoreLogged is NewBlockedStore with a structured logger
// threaded into the container compression (per-section Info records;
// per-block Debug when the handler enables it). nil disables logging.
func NewBlockedStoreLogged(bs *basis.BasisSet, eb float64, logger *slog.Logger) (*BlockedStore, error) {
	prepared := make([]*eri.PreparedShell, bs.NShells())
	maxL := 0
	for i := range prepared {
		prepared[i] = eri.Prepare(bs.Shells[i])
		if bs.Shells[i].L > maxL {
			maxL = bs.Shells[i].L
		}
	}
	// Keep every surviving quartet (no sampling): the Fock build needs
	// all of them. Screening drops only sub-threshold blocks.
	quartets, err := eri.SelectQuartets(prepared, maxL, 1e-14, 0)
	if err != nil {
		return nil, err
	}
	blocks, err := eri.ComputeMixedBlocks(prepared, quartets, 0)
	if err != nil {
		return nil, err
	}
	base := core.Defaults(1, 1, eb)
	base.Logger = logger
	w, err := container.NewWriter(base)
	if err != nil {
		return nil, err
	}
	raw := 0
	for i := range blocks {
		b := &blocks[i]
		g := container.Geometry{NumSB: b.NumSB(), SBSize: b.SBSize()}
		if err := w.WriteBlock(g, b.Data); err != nil {
			return nil, err
		}
		raw += len(b.Data) * 8
	}
	buf, err := w.Bytes()
	if err != nil {
		return nil, err
	}
	reader, err := container.NewReader(buf)
	if err != nil {
		return nil, err
	}
	return &BlockedStore{
		bs:              bs,
		quartets:        quartets,
		reader:          reader,
		RawBytes:        raw,
		CompressedBytes: len(buf),
	}, nil
}

// Blocks returns the number of stored quartet blocks.
func (s *BlockedStore) Blocks() int { return len(s.quartets) }

// Fock assembles F = H + G[D] by streaming the compressed quartet
// blocks, applying each unique integral through its permutational
// images:
//
//	J: F_ij += D_kl (ij|kl)        K: F_ik −= ½ D_jl (ij|kl)   (+ images)
func (s *BlockedStore) Fock(H, D *linalg.Matrix) (*linalg.Matrix, error) {
	n := s.bs.NBF()
	if D.Rows != n || H.Rows != n {
		return nil, fmt.Errorf("hf: matrix size mismatch")
	}
	F := H.Clone()
	s.reader.Reset()
	for _, q := range s.quartets {
		data, _, err := s.reader.Next()
		if err != nil {
			return nil, err
		}
		if data == nil {
			return nil, fmt.Errorf("hf: block store ended early")
		}
		s.scatter(F, D, q, data)
	}
	// Symmetrize (lossy storage perturbs each element independently).
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			avg := (F.At(i, j) + F.At(j, i)) / 2
			F.Set(i, j, avg)
			F.Set(j, i, avg)
		}
	}
	return F, nil
}

// scatter applies one shell-quartet block to the Fock matrix. Each
// stored element (ij|kl) is expanded to the full-tensor contributions
// of its whole permutational orbit, weighted by 1/m where m is the
// number of orbit members that appear in the stored block itself — so
// orbits split across duplicate in-block entries (diagonal shell pairs,
// bra=ket shell pairs) sum to exactly one full application, while
// orbits represented once apply in full.
func (s *BlockedStore) scatter(F, D *linalg.Matrix, q eri.Quartet, data []float64) {
	bs := s.bs
	offA, offB := bs.Offset(q[0]), bs.Offset(q[1])
	offC, offD := bs.Offset(q[2]), bs.Offset(q[3])
	nA := bs.Shells[q[0]].NCart()
	nB := bs.Shells[q[1]].NCart()
	nC := bs.Shells[q[2]].NCart()
	nD := bs.Shells[q[3]].NCart()
	inA := func(x int) bool { return x >= offA && x < offA+nA }
	inB := func(x int) bool { return x >= offB && x < offB+nB }
	inC := func(x int) bool { return x >= offC && x < offC+nC }
	inD := func(x int) bool { return x >= offD && x < offD+nD }

	idx := 0
	for a := 0; a < nA; a++ {
		i := offA + a
		for b := 0; b < nB; b++ {
			j := offB + b
			for c := 0; c < nC; c++ {
				k := offC + c
				for d := 0; d < nD; d++ {
					l := offD + d
					v := data[idx]
					idx++
					if v == 0 { //lint:floatcmp-ok sparsity skip: screened-out integrals are exactly zero
						continue
					}
					type quad struct{ i, j, k, l int }
					images := [8]quad{
						{i, j, k, l}, {j, i, k, l}, {i, j, l, k}, {j, i, l, k},
						{k, l, i, j}, {l, k, i, j}, {k, l, j, i}, {l, k, j, i},
					}
					var distinct [8]quad
					nDist := 0
				outer:
					for _, im := range images {
						for _, sn := range distinct[:nDist] {
							if sn == im {
								continue outer
							}
						}
						distinct[nDist] = im
						nDist++
					}
					// m: orbit members present in this block's layout.
					m := 0
					for _, im := range distinct[:nDist] {
						if inA(im.i) && inB(im.j) && inC(im.k) && inD(im.l) {
							m++
						}
					}
					w := v / float64(m)
					for _, im := range distinct[:nDist] {
						// Coulomb: F_ij += D_kl·w ; Exchange: F_ik −= ½·D_jl·w.
						F.Set(im.i, im.j, F.At(im.i, im.j)+D.At(im.k, im.l)*w)
						F.Set(im.i, im.k, F.At(im.i, im.k)-0.5*D.At(im.j, im.l)*w)
					}
				}
			}
		}
	}
}

// SCFBlocked runs restricted Hartree–Fock drawing its Fock builds from
// a compressed blocked store.
func SCFBlocked(bs *basis.BasisSet, charge int, store *BlockedStore, opt Options) (*Result, error) {
	opt = opt.withDefaults()
	nElec := bs.Mol.NElectrons() - charge
	if nElec <= 0 || nElec%2 != 0 {
		return nil, fmt.Errorf("hf: RHF needs a positive even electron count, got %d", nElec)
	}
	nocc := nElec / 2
	n := bs.NBF()
	if nocc > n {
		return nil, fmt.Errorf("hf: %d occupied orbitals exceed %d basis functions", nocc, n)
	}
	Sflat, Tflat, Vflat, _ := eri.OneElectron(bs)
	S := linalg.FromSlice(n, n, Sflat)
	H := linalg.NewMatrix(n, n)
	for i := range H.Data {
		H.Data[i] = Tflat[i] + Vflat[i]
	}
	X, err := linalg.SymOrth(S)
	if err != nil {
		return nil, err
	}
	res := &Result{NuclearE: bs.Mol.NuclearRepulsion(), Overlap: S}
	D := linalg.NewMatrix(n, n)
	F := H.Clone()
	prevE := 0.0
	for iter := 1; iter <= opt.MaxIterations; iter++ {
		res.Iterations = iter
		eps, Cp, err := linalg.EigSym(linalg.Mul(linalg.Mul(X.Transpose(), F), X))
		if err != nil {
			return nil, err
		}
		C := linalg.Mul(X, Cp)
		res.OrbitalEnergies = eps
		newD := densityFrom(C, nocc, 2)
		dDiff := linalg.MaxAbsDiff(newD, D)
		D = newD
		F, err = store.Fock(H, D)
		if err != nil {
			return nil, err
		}
		e := 0.0
		for i := range D.Data {
			e += D.Data[i] * (H.Data[i] + F.Data[i])
		}
		e /= 2
		res.ElectronicE = e
		res.Energy = e + res.NuclearE
		if iter > 1 && abs(e-prevE) < opt.EnergyTol && dDiff < opt.DensityTol {
			res.Converged = true
			break
		}
		prevE = e
	}
	res.Density = D
	res.Fock = F
	return res, nil
}
