package hf

import (
	"math"
	"testing"

	"repro/internal/basis"
	"repro/internal/linalg"
)

// DIIS must reach the same fixed point as plain SCF, in fewer (or equal)
// iterations.
func TestDIISAcceleratesWater(t *testing.T) {
	bs, err := basis.STO3G(basis.Water())
	if err != nil {
		t.Fatal(err)
	}
	src := &MemorySource{BS: bs}
	plain, err := SCF(bs, 0, src, Options{DisableDIIS: true})
	if err != nil {
		t.Fatal(err)
	}
	diis, err := SCF(bs, 0, src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !plain.Converged || !diis.Converged {
		t.Fatalf("convergence: plain=%v diis=%v", plain.Converged, diis.Converged)
	}
	if math.Abs(plain.Energy-diis.Energy) > 1e-7 {
		t.Fatalf("energies differ: %.10f vs %.10f", plain.Energy, diis.Energy)
	}
	if diis.Iterations > plain.Iterations {
		t.Errorf("DIIS took %d iterations, plain %d", diis.Iterations, plain.Iterations)
	}
	t.Logf("water SCF: plain %d iterations, DIIS %d", plain.Iterations, diis.Iterations)
}

// At SCF stationarity the Fock and density matrices commute through the
// overlap metric: ‖F·D·S − S·D·F‖∞ ≈ 0. This is the condition DIIS
// drives to zero, and a strong whole-pipeline consistency check on the
// integrals, the eigensolver and the Fock build.
func TestDIISErrorVanishesAtConvergence(t *testing.T) {
	bs, err := basis.STO3G(basis.Water())
	if err != nil {
		t.Fatal(err)
	}
	res, err := SCF(bs, 0, &MemorySource{BS: bs}, Options{EnergyTol: 1e-11, DensityTol: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("SCF did not converge")
	}
	fds := linalg.Mul(linalg.Mul(res.Fock, res.Density), res.Overlap)
	sdf := linalg.Mul(linalg.Mul(res.Overlap, res.Density), res.Fock)
	if norm := linalg.MaxAbsDiff(fds, sdf); norm > 1e-6 {
		t.Fatalf("‖FDS − SDF‖∞ = %g at convergence", norm)
	}
	// The density must carry the right electron count: Tr(D·S) = N.
	if n := linalg.Mul(res.Density, res.Overlap).Trace(); math.Abs(n-10) > 1e-8 {
		t.Fatalf("Tr(DS) = %g, want 10", n)
	}
}

func TestDIISSubspaceTooSmall(t *testing.T) {
	d := newDIIS(4)
	if _, err := d.extrapolate(); err == nil {
		t.Fatal("empty subspace extrapolated")
	}
	F := linalg.NewMatrix(2, 2)
	d.push(F, linalg.NewMatrix(2, 2))
	if _, err := d.extrapolate(); err == nil {
		t.Fatal("single-vector subspace extrapolated")
	}
}

func TestDIISSubspaceWindow(t *testing.T) {
	d := newDIIS(3)
	for i := 0; i < 10; i++ {
		F := linalg.NewMatrix(2, 2)
		F.Set(0, 0, float64(i))
		E := linalg.NewMatrix(2, 2)
		E.Set(0, 0, 1/float64(i+1))
		d.push(F, E)
	}
	if len(d.focks) != 3 || len(d.errs) != 3 {
		t.Fatalf("window holds %d/%d, want 3", len(d.focks), len(d.errs))
	}
	if d.focks[0].At(0, 0) != 7 {
		t.Fatalf("oldest retained Fock is %g, want 7", d.focks[0].At(0, 0))
	}
	if d.errNorm() != 0.1 {
		t.Fatalf("errNorm = %g", d.errNorm())
	}
}

func TestSolveLinearKnown(t *testing.T) {
	A := linalg.FromSlice(2, 2, []float64{2, 1, 1, 3})
	x, err := linalg.SolveLinear(A, []float64{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	// 2x + y = 5; x + 3y = 10 → x = 1, y = 3.
	if math.Abs(x[0]-1) > 1e-12 || math.Abs(x[1]-3) > 1e-12 {
		t.Fatalf("x = %v", x)
	}
	if _, err := linalg.SolveLinear(linalg.NewMatrix(2, 2), []float64{1, 2}); err == nil {
		t.Fatal("singular system solved")
	}
	if _, err := linalg.SolveLinear(linalg.NewMatrix(2, 3), []float64{1, 2}); err == nil {
		t.Fatal("non-square accepted")
	}
}
