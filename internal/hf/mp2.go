package hf

import (
	"fmt"

	"repro/internal/basis"
	"repro/internal/linalg"
)

// MP2 implements second-order Møller–Plesset perturbation theory, the
// canonical post-Hartree–Fock method the paper's introduction motivates:
// "post-Hartree-Fock methods need to assemble molecular integrals from
// ERIs. Compressing and storing the latter can lead to considerable
// speedup" (Sec. I). The AO→MO transformation re-reads the full ERI
// supply, so a compressed store pays off again here.

// MP2Result reports the correlation energy.
type MP2Result struct {
	EHF         float64 // converged RHF total energy
	ECorr       float64 // MP2 correlation energy (negative)
	ETotal      float64 // EHF + ECorr
	PairEnergy  [][]float64
	NOcc, NVirt int
}

// MP2 computes the closed-shell MP2 correlation energy on top of a
// converged RHF solution, drawing AO-basis ERIs from src:
//
//	E(2) = Σ_{ijab} (ia|jb)·[2(ia|jb) − (ib|ja)] / (εi + εj − εa − εb)
func MP2(bs *basis.BasisSet, charge int, src ERISource, opt Options) (*MP2Result, error) {
	scf, err := SCF(bs, charge, src, opt)
	if err != nil {
		return nil, err
	}
	if !scf.Converged {
		return nil, fmt.Errorf("hf: SCF did not converge; MP2 undefined")
	}
	n := bs.NBF()
	nocc := (bs.Mol.NElectrons() - charge) / 2
	nvirt := n - nocc
	if nvirt == 0 {
		return nil, fmt.Errorf("hf: no virtual orbitals in this basis")
	}

	// Recover MO coefficients from the converged Fock matrix.
	X, err := linalg.SymOrth(scf.Overlap)
	if err != nil {
		return nil, err
	}
	eps, Cp, err := linalg.EigSym(linalg.Mul(linalg.Mul(X.Transpose(), scf.Fock), X))
	if err != nil {
		return nil, err
	}
	C := linalg.Mul(X, Cp)

	eris, err := src.ERIs()
	if err != nil {
		return nil, err
	}
	mo := transformOVOV(eris, C, n, nocc, nvirt)

	res := &MP2Result{
		EHF:   scf.Energy,
		NOcc:  nocc,
		NVirt: nvirt,
	}
	res.PairEnergy = make([][]float64, nocc)
	at := func(i, a, j, b int) float64 {
		return mo[((i*nvirt+a)*nocc+j)*nvirt+b]
	}
	for i := 0; i < nocc; i++ {
		res.PairEnergy[i] = make([]float64, nocc)
		for j := 0; j < nocc; j++ {
			pair := 0.0
			for a := 0; a < nvirt; a++ {
				for b := 0; b < nvirt; b++ {
					iajb := at(i, a, j, b)
					ibja := at(i, b, j, a)
					denom := eps[i] + eps[j] - eps[nocc+a] - eps[nocc+b]
					pair += iajb * (2*iajb - ibja) / denom
				}
			}
			res.PairEnergy[i][j] = pair
			res.ECorr += pair
		}
	}
	res.ETotal = res.EHF + res.ECorr
	return res, nil
}

// transformOVOV performs the O(n⁵) four-quarter AO→MO transformation,
// keeping only the (occ virt | occ virt) class MP2 needs. Chemist
// notation throughout: result[(i·nv+a)·no·nv + j·nv + b] = (ia|jb).
func transformOVOV(eris []float64, C *linalg.Matrix, n, nocc, nvirt int) []float64 {
	occ := func(m, i int) float64 { return C.At(m, i) }
	virt := func(m, a int) float64 { return C.At(m, nocc+a) }

	// Quarter 1: (μν|λσ) → (iν|λσ).
	t1 := make([]float64, nocc*n*n*n)
	for i := 0; i < nocc; i++ {
		for nu := 0; nu < n; nu++ {
			for la := 0; la < n; la++ {
				for sg := 0; sg < n; sg++ {
					s := 0.0
					for mu := 0; mu < n; mu++ {
						s += occ(mu, i) * eris[((mu*n+nu)*n+la)*n+sg]
					}
					t1[((i*n+nu)*n+la)*n+sg] = s
				}
			}
		}
	}
	// Quarter 2: (iν|λσ) → (ia|λσ).
	t2 := make([]float64, nocc*nvirt*n*n)
	for i := 0; i < nocc; i++ {
		for a := 0; a < nvirt; a++ {
			for la := 0; la < n; la++ {
				for sg := 0; sg < n; sg++ {
					s := 0.0
					for nu := 0; nu < n; nu++ {
						s += virt(nu, a) * t1[((i*n+nu)*n+la)*n+sg]
					}
					t2[((i*nvirt+a)*n+la)*n+sg] = s
				}
			}
		}
	}
	// Quarter 3: (ia|λσ) → (ia|jσ).
	t3 := make([]float64, nocc*nvirt*nocc*n)
	for ia := 0; ia < nocc*nvirt; ia++ {
		for j := 0; j < nocc; j++ {
			for sg := 0; sg < n; sg++ {
				s := 0.0
				for la := 0; la < n; la++ {
					s += occ(la, j) * t2[(ia*n+la)*n+sg]
				}
				t3[(ia*nocc+j)*n+sg] = s
			}
		}
	}
	// Quarter 4: (ia|jσ) → (ia|jb).
	out := make([]float64, nocc*nvirt*nocc*nvirt)
	for iaj := 0; iaj < nocc*nvirt*nocc; iaj++ {
		for b := 0; b < nvirt; b++ {
			s := 0.0
			for sg := 0; sg < n; sg++ {
				s += virt(sg, b) * t3[iaj*n+sg]
			}
			out[iaj*nvirt+b] = s
		}
	}
	return out
}
