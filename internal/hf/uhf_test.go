package hf

import (
	"math"
	"testing"

	"repro/internal/basis"
)

// A hydrogen atom (doublet) in STO-3G: the UHF energy equals the
// one-electron expectation ⟨T⟩+⟨V⟩ of the 1s BF, ≈ −0.46658 Eh (same
// anchor as the integral-engine test).
func TestUHFHydrogenAtom(t *testing.T) {
	mol := basis.Molecule{Name: "H", Atoms: []basis.Atom{{Symbol: "H", Z: 1}}}
	bs, err := basis.STO3G(mol)
	if err != nil {
		t.Fatal(err)
	}
	res, err := UHFSCF(bs, 0, 2, &MemorySource{BS: bs}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("UHF did not converge")
	}
	if math.Abs(res.Energy-(-0.46658)) > 5e-4 {
		t.Fatalf("H atom UHF = %.5f, want ≈ -0.46658", res.Energy)
	}
	// A single electron is a pure doublet: ⟨S²⟩ = 0.75 exactly.
	if math.Abs(res.S2-0.75) > 1e-8 {
		t.Fatalf("⟨S²⟩ = %.6f, want 0.75", res.S2)
	}
}

// For a closed-shell system UHF must reproduce RHF exactly (the
// symmetric solution is a stationary point and our guess preserves it).
func TestUHFMatchesRHFClosedShell(t *testing.T) {
	bs, err := basis.STO3G(basis.Water())
	if err != nil {
		t.Fatal(err)
	}
	src := &MemorySource{BS: bs}
	rhf, err := SCF(bs, 0, src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	uhf, err := UHFSCF(bs, 0, 1, src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !uhf.Converged {
		t.Fatal("UHF did not converge")
	}
	if math.Abs(rhf.Energy-uhf.Energy) > 1e-6 {
		t.Fatalf("UHF %.8f vs RHF %.8f", uhf.Energy, rhf.Energy)
	}
	if math.Abs(uhf.S2) > 1e-6 {
		t.Fatalf("singlet ⟨S²⟩ = %g, want 0", uhf.S2)
	}
}

// Lithium (doublet): UHF/STO-3G total energy ≈ −7.3155 Eh.
func TestUHFLithium(t *testing.T) {
	mol := basis.Molecule{Name: "Li", Atoms: []basis.Atom{{Symbol: "Li", Z: 3}}}
	bs, err := basis.STO3G(mol)
	if err != nil {
		t.Fatal(err)
	}
	res, err := UHFSCF(bs, 0, 2, &MemorySource{BS: bs}, Options{MaxIterations: 200})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("UHF did not converge")
	}
	if res.Energy < -7.5 || res.Energy > -7.2 {
		t.Fatalf("Li UHF = %.5f, want ≈ -7.315", res.Energy)
	}
	// Doublet with minimal spin contamination in a minimal basis.
	if math.Abs(res.S2-0.75) > 0.05 {
		t.Fatalf("Li ⟨S²⟩ = %.4f, want ≈ 0.75", res.S2)
	}
	// Alpha has one more bound orbital occupied than beta.
	if res.AlphaEnergies[1] >= 0 {
		t.Errorf("alpha 2s orbital ε = %g, want < 0", res.AlphaEnergies[1])
	}
}

// UHF through PaSTRI-compressed ERIs: the open-shell path also
// tolerates error-bounded integral storage.
func TestUHFCompressedERIs(t *testing.T) {
	mol := basis.Molecule{Name: "Li", Atoms: []basis.Atom{{Symbol: "Li", Z: 3}}}
	bs, err := basis.STO3G(mol)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := UHFSCF(bs, 0, 2, &MemorySource{BS: bs}, Options{MaxIterations: 200})
	if err != nil || !exact.Converged {
		t.Fatalf("exact UHF: %v", err)
	}
	comp, err := NewCompressedSource(bs, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	lossy, err := UHFSCF(bs, 0, 2, comp, Options{MaxIterations: 200})
	if err != nil || !lossy.Converged {
		t.Fatalf("compressed UHF: %v", err)
	}
	if math.Abs(exact.Energy-lossy.Energy) > 1e-6 {
		t.Fatalf("compressed UHF %.8f vs exact %.8f", lossy.Energy, exact.Energy)
	}
}

func TestUHFValidation(t *testing.T) {
	bs, err := basis.STO3G(basis.Water())
	if err != nil {
		t.Fatal(err)
	}
	src := &MemorySource{BS: bs}
	if _, err := UHFSCF(bs, 0, 2, src, Options{}); err == nil {
		t.Error("impossible multiplicity accepted")
	}
	if _, err := UHFSCF(bs, 0, 0, src, Options{}); err == nil {
		t.Error("multiplicity 0 accepted")
	}
	if _, err := UHFSCF(bs, 20, 1, src, Options{}); err == nil {
		t.Error("no electrons accepted")
	}
}
