package hf

import (
	"math"
	"testing"

	"repro/internal/basis"
)

// Reference: Szabo & Ostlund, "Modern Quantum Chemistry": RHF/STO-3G for
// H2 at R = 1.4 a0 gives E_total ≈ −1.1167 Eh.
func TestH2Energy(t *testing.T) {
	r := 1.4 / basis.AngstromToBohr // bond length in Å for the Z-matrix
	mol, err := basis.ZToCartesian("H2", []basis.ZEntry{
		{Symbol: "H"},
		{Symbol: "H", RefD: 0, Dist: r},
	})
	if err != nil {
		t.Fatal(err)
	}
	bs, err := basis.STO3G(mol)
	if err != nil {
		t.Fatal(err)
	}
	res, err := SCF(bs, 0, &MemorySource{BS: bs}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("SCF did not converge in %d iterations", res.Iterations)
	}
	if math.Abs(res.Energy-(-1.1167)) > 2e-4 {
		t.Fatalf("H2 energy = %.6f, want ≈ -1.1167", res.Energy)
	}
	// Bonding orbital below zero, antibonding above.
	if res.OrbitalEnergies[0] >= 0 || res.OrbitalEnergies[1] <= 0 {
		t.Fatalf("orbital energies %v", res.OrbitalEnergies)
	}
}

// HeH+ at R = 1.4632 a0. (Szabo & Ostlund's worked example uses
// ζ-rescaled STO-3G exponents for He, so we check the standard-STO-3G
// value band rather than their −4.2275 Eh electronic energy.)
func TestHeHPlusEnergy(t *testing.T) {
	r := 1.4632 / basis.AngstromToBohr
	mol, err := basis.ZToCartesian("HeH+", []basis.ZEntry{
		{Symbol: "He"},
		{Symbol: "H", RefD: 0, Dist: r},
	})
	if err != nil {
		t.Fatal(err)
	}
	bs, err := basis.STO3G(mol)
	if err != nil {
		t.Fatal(err)
	}
	res, err := SCF(bs, +1, &MemorySource{BS: bs}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("SCF did not converge")
	}
	if res.ElectronicE < -4.35 || res.ElectronicE > -4.10 {
		t.Fatalf("HeH+ electronic energy = %.5f, want ≈ -4.2", res.ElectronicE)
	}
	if res.Energy < -2.95 || res.Energy > -2.75 {
		t.Fatalf("HeH+ total energy = %.5f, want ≈ -2.84", res.Energy)
	}
}

// Water RHF/STO-3G at the experimental geometry: literature value
// ≈ −74.96 Eh (e.g. −74.9630 with r=0.9572 Å, θ=104.52°).
func TestWaterEnergy(t *testing.T) {
	bs, err := basis.STO3G(basis.Water())
	if err != nil {
		t.Fatal(err)
	}
	res, err := SCF(bs, 0, &MemorySource{BS: bs}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("SCF did not converge")
	}
	if res.Energy < -75.1 || res.Energy > -74.8 {
		t.Fatalf("water energy = %.4f, want in [-75.1, -74.8]", res.Energy)
	}
	// 5 doubly-occupied orbitals must all be bound (ε < 0).
	for i := 0; i < 5; i++ {
		if res.OrbitalEnergies[i] >= 0 {
			t.Fatalf("occupied orbital %d has ε = %g ≥ 0", i, res.OrbitalEnergies[i])
		}
	}
}

// Adding polarization functions must lower the RHF energy (variational
// principle) — an end-to-end check that d shells flow correctly through
// one-electron integrals, ERIs and the SCF.
func TestPolarizedBasisIsVariational(t *testing.T) {
	mol := basis.Water()
	plain, err := basis.STO3G(mol)
	if err != nil {
		t.Fatal(err)
	}
	res0, err := SCF(plain, 0, &MemorySource{BS: plain}, Options{})
	if err != nil || !res0.Converged {
		t.Fatalf("plain SCF: %v", err)
	}
	// STO-3G* style: add a d shell on oxygen.
	shells := append([]basis.Shell(nil), plain.Shells...)
	shells = append(shells, basis.Shell{
		Atom: 0, Center: mol.Atoms[0].Pos, L: 2,
		Exps: []float64{0.8}, Coefs: []float64{1},
	})
	pol, err := basis.NewBasisSet(mol, shells)
	if err != nil {
		t.Fatal(err)
	}
	res1, err := SCF(pol, 0, &MemorySource{BS: pol}, Options{})
	if err != nil || !res1.Converged {
		t.Fatalf("polarized SCF: %v", err)
	}
	if res1.Energy >= res0.Energy {
		t.Fatalf("polarized energy %.6f not below plain %.6f (variational principle violated)",
			res1.Energy, res0.Energy)
	}
	// The improvement should be modest (d functions are a perturbation).
	if res0.Energy-res1.Energy > 0.2 {
		t.Fatalf("polarization lowered the energy by %.4f Eh — implausible",
			res0.Energy-res1.Energy)
	}
}

// All three ERI strategies must give the same energy; the compressed
// source differs only within the error bound's effect.
func TestERISourcesAgree(t *testing.T) {
	bs, err := basis.STO3G(basis.Water())
	if err != nil {
		t.Fatal(err)
	}
	mem, err := SCF(bs, 0, &MemorySource{BS: bs}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	dir, err := SCF(bs, 0, &DirectSource{BS: bs}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	comp, err := NewCompressedSource(bs, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	cmp, err := SCF(bs, 0, comp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mem.Energy-dir.Energy) > 1e-12 {
		t.Fatalf("direct (%.12f) vs memory (%.12f)", dir.Energy, mem.Energy)
	}
	// EB = 1e-10 on every integral perturbs the energy at ≲ 1e-6 level.
	if math.Abs(mem.Energy-cmp.Energy) > 1e-6 {
		t.Fatalf("compressed (%.10f) vs memory (%.10f)", cmp.Energy, mem.Energy)
	}
	if comp.CompressedBytes >= comp.RawBytes {
		t.Fatalf("compressed ERIs (%d B) not smaller than raw (%d B)",
			comp.CompressedBytes, comp.RawBytes)
	}
	for _, s := range []ERISource{&MemorySource{}, &DirectSource{}, comp} {
		if s.Name() == "" {
			t.Error("empty source name")
		}
	}
}

func TestSCFInputValidation(t *testing.T) {
	bs, err := basis.STO3G(basis.Water())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SCF(bs, 1, &MemorySource{BS: bs}, Options{}); err == nil {
		t.Error("odd electron count accepted")
	}
	if _, err := SCF(bs, 10, &MemorySource{BS: bs}, Options{}); err == nil {
		t.Error("negative electron count accepted")
	}
}
