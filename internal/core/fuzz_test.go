package core

import (
	"math"
	"testing"
)

// Fuzz targets: decoders must reject arbitrary or mutated inputs with
// errors, never panics or runaway allocations. `go test` exercises the
// seed corpus; `go test -fuzz=FuzzDecompress` explores further.

func seedStream(t interface{ Fatal(...any) }) []byte {
	cfg := Defaults(4, 9, 1e-9)
	data := make([]float64, 2*cfg.BlockSize())
	for i := range data {
		data[i] = math.Sin(float64(i)) * 1e-6
	}
	comp, err := Compress(data, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	return comp
}

func FuzzDecompress(f *testing.F) {
	comp := seedStream(f)
	f.Add(comp)
	f.Add(comp[:len(comp)/2])
	f.Add([]byte{})
	f.Add([]byte("PSTR"))
	// Bit-flipped variants.
	for _, pos := range []int{4, 8, 17, 25, 33, len(comp) - 1} {
		m := append([]byte(nil), comp...)
		m[pos] ^= 0x40
		f.Add(m)
	}
	// Golden fixtures and mutated variants: every committed stream
	// shape, plus bit flips at header/index/payload offsets and a
	// mid-stream truncation of each.
	for _, g := range goldenStreamFiles(f) {
		f.Add(g)
		f.Add(g[:len(g)/2])
		for _, pos := range []int{5, 16, 31, 33, len(g) / 2, len(g) - 1} {
			if pos < 0 || pos >= len(g) {
				continue
			}
			m := append([]byte(nil), g...)
			m[pos] ^= 0x04
			f.Add(m)
		}
	}
	f.Fuzz(func(t *testing.T, b []byte) {
		out, err := Decompress(b, 1)
		if err == nil {
			// Whatever decoded must be internally consistent.
			cfg, _, _, err2 := ParseHeader(b)
			if err2 != nil {
				t.Fatalf("Decompress succeeded but ParseHeader failed: %v", err2)
			}
			if len(out)%cfg.BlockSize() != 0 {
				t.Fatalf("output %d not a whole number of blocks", len(out))
			}
		}
	})
}

func FuzzBlockReader(f *testing.F) {
	comp := seedStream(f)
	f.Add(comp, 0)
	f.Add(comp, 1)
	f.Add(comp[:20], 0)
	f.Fuzz(func(t *testing.T, b []byte, idx int) {
		br, err := NewBlockReader(b)
		if err != nil {
			return
		}
		dst := make([]float64, br.Config().BlockSize())
		_ = br.ReadBlock(idx%max(br.NumBlocks(), 1), dst)
	})
}
