package core

import (
	"bytes"
	"testing"
)

// Corruption battery derived from the golden fixtures: bit-flipped and
// prefix-cut streams must produce errors (or, for payload-only flips, a
// consistent success) — never a panic, out-of-bounds read or runaway
// allocation. The golden streams are exact-count files, so every strict
// prefix is invalid by construction.

// flipVariants yields one mutated copy per (byte, bit) of interest.
func flipVariants(src []byte) [][]byte {
	var out [][]byte
	for pos := range src {
		for _, bit := range []byte{0x01, 0x10, 0x80} {
			m := append([]byte(nil), src...)
			m[pos] ^= bit
			out = append(out, m)
		}
	}
	return out
}

func TestDecompressBitFlips(t *testing.T) {
	for name, stream := range goldenStreamFiles(t) {
		cfgOrig, _, _, err := ParseHeader(stream)
		if err != nil {
			t.Fatalf("%s: golden stream unparsable: %v", name, err)
		}
		for i, m := range flipVariants(stream) {
			out, err := Decompress(m, 1)
			if err != nil {
				continue
			}
			// A flip that still decodes must at least be self-consistent.
			cfg, _, _, err2 := ParseHeader(m)
			if err2 != nil {
				t.Fatalf("%s flip %d: Decompress ok but ParseHeader failed: %v", name, i, err2)
			}
			if len(out)%cfg.BlockSize() != 0 {
				t.Fatalf("%s flip %d: %d values is not whole blocks of %d",
					name, i, len(out), cfg.BlockSize())
			}
			_ = cfgOrig
		}
	}
}

func TestBlockReaderTruncation(t *testing.T) {
	for name, stream := range goldenStreamFiles(t) {
		for cut := 0; cut < len(stream); cut++ {
			if _, err := NewBlockReader(stream[:cut]); err == nil {
				t.Fatalf("%s: NewBlockReader accepted %d-byte prefix of %d-byte stream",
					name, cut, len(stream))
			}
			if _, err := Decompress(stream[:cut], 1); err == nil {
				t.Fatalf("%s: Decompress accepted %d-byte prefix of %d-byte stream",
					name, cut, len(stream))
			}
		}
	}
}

func TestStreamReaderTruncation(t *testing.T) {
	for name, stream := range goldenStreamFiles(t) {
		br, err := NewBlockReader(stream)
		if err != nil {
			t.Fatal(err)
		}
		dst := make([]float64, br.Config().BlockSize())
		for cut := 0; cut < len(stream); cut++ {
			sr, err := NewStreamReader(bytes.NewReader(stream[:cut]))
			if err != nil {
				continue // header already rejected
			}
			sawErr := false
			for b := 0; b < br.NumBlocks(); b++ {
				if err := sr.ReadBlock(dst); err != nil {
					sawErr = true
					break
				}
			}
			if !sawErr {
				t.Fatalf("%s: StreamReader replayed all %d blocks from a %d/%d-byte prefix",
					name, br.NumBlocks(), cut, len(stream))
			}
		}
	}
}
