package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/bitio"
)

// Streaming interface: compress or decompress block-by-block against an
// io.Writer/io.Reader without materializing the whole dataset. A
// streamed file uses the same format as Compress with the block count
// set to the streamingCount sentinel; the block sequence then runs to
// EOF. Decompress and BlockReader accept both forms.

// streamingCount marks a header whose block count was unknown at write
// time.
const streamingCount = ^uint64(0)

// StreamWriter compresses blocks incrementally to an underlying writer.
// Not safe for concurrent use.
type StreamWriter struct {
	w      *bufio.Writer
	enc    *BlockEncoder
	bw     *bitio.Writer
	blocks uint64
	closed bool
	stats  *Stats
}

// NewStreamWriter writes a stream header to w and returns a writer that
// appends one compressed block per WriteBlock call. The caller must
// Close it to flush buffered output.
func NewStreamWriter(w io.Writer, cfg Config) (*StreamWriter, error) {
	enc, err := NewBlockEncoder(cfg)
	if err != nil {
		return nil, err
	}
	bw := bufio.NewWriter(w)
	hdr := appendHeader(make([]byte, 0, headerSize), cfg, streamingCount)
	if _, err := bw.Write(hdr); err != nil {
		return nil, err
	}
	return &StreamWriter{
		w:   bw,
		enc: enc,
		bw:  bitio.NewWriter(cfg.BlockSize()),
	}, nil
}

// CollectStats attaches a statistics sink.
func (s *StreamWriter) CollectStats(st *Stats) {
	s.stats = st
	s.enc.CollectStats(st)
}

// WriteBlock compresses and appends one block of Config().BlockSize()
// values.
func (s *StreamWriter) WriteBlock(block []float64) error {
	if s.closed {
		return fmt.Errorf("core: write on closed StreamWriter")
	}
	s.bw.Reset()
	if err := s.enc.EncodeBlock(s.bw, block); err != nil {
		return err
	}
	payload := s.bw.Bytes()
	var lenBuf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(lenBuf[:], uint64(len(payload)))
	if _, err := s.w.Write(lenBuf[:n]); err != nil {
		return err
	}
	if _, err := s.w.Write(payload); err != nil {
		return err
	}
	s.blocks++
	return nil
}

// Blocks returns the number of blocks written so far.
func (s *StreamWriter) Blocks() uint64 { return s.blocks }

// Close flushes buffered output. The underlying writer is not closed.
func (s *StreamWriter) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	return s.w.Flush()
}

// StreamReader decompresses blocks incrementally from an underlying
// reader. Not safe for concurrent use.
type StreamReader struct {
	r     *bufio.Reader
	cfg   Config
	dec   *BlockDecoder
	br    *bitio.Reader
	buf   []byte
	total uint64 // expected blocks; streamingCount if unknown
	read  uint64
}

// NewStreamReader parses the stream header from r and prepares
// block-by-block reads.
func NewStreamReader(r io.Reader) (*StreamReader, error) {
	br := bufio.NewReader(r)
	hdr := make([]byte, headerSize)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, fmt.Errorf("core: reading stream header: %w", err)
	}
	cfg, nblocks, _, err := parseHeaderBytes(hdr)
	if err != nil {
		return nil, err
	}
	dec, err := NewBlockDecoder(cfg)
	if err != nil {
		return nil, err
	}
	return &StreamReader{
		r:     br,
		cfg:   cfg,
		dec:   dec,
		br:    bitio.NewReader(nil),
		total: nblocks,
	}, nil
}

// Config returns the stream's compression configuration.
func (s *StreamReader) Config() Config { return s.cfg }

// ReadBlock decompresses the next block into dst (Config().BlockSize()
// values). It returns io.EOF after the last block.
func (s *StreamReader) ReadBlock(dst []float64) error {
	if s.total != streamingCount && s.read >= s.total {
		return io.EOF
	}
	plen, err := binary.ReadUvarint(s.r)
	if err != nil {
		if err == io.EOF && s.total == streamingCount {
			return io.EOF
		}
		return fmt.Errorf("core: reading block length: %w", err)
	}
	if plen > 1<<32 {
		return fmt.Errorf("core: implausible block payload %d bytes", plen)
	}
	if uint64(cap(s.buf)) < plen {
		s.buf = make([]byte, plen)
	}
	buf := s.buf[:plen]
	if _, err := io.ReadFull(s.r, buf); err != nil {
		return fmt.Errorf("core: reading block payload: %w", err)
	}
	s.br.Reset(buf)
	if err := s.dec.DecodeBlock(s.br, dst); err != nil {
		return err
	}
	s.read++
	return nil
}

// BlocksRead returns the number of blocks decoded so far.
func (s *StreamReader) BlocksRead() uint64 { return s.read }
