package core

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/bitio"
)

// blockSpan locates one block's payload inside a compressed stream.
type blockSpan struct{ lo, hi int }

// scanSpansUnknown walks length prefixes until the buffer is exhausted
// (streamed files record no block count).
func scanSpansUnknown(comp []byte, off int) ([]blockSpan, error) {
	var spans []blockSpan
	for off < len(comp) {
		plen, n := binary.Uvarint(comp[off:])
		if n <= 0 {
			return nil, fmt.Errorf("core: corrupt block length at offset %d", off)
		}
		off += n
		if uint64(len(comp)-off) < plen {
			return nil, fmt.Errorf("core: truncated block %d (want %d bytes, have %d)",
				len(spans), plen, len(comp)-off)
		}
		spans = append(spans, blockSpan{off, off + int(plen)})
		off += int(plen)
	}
	return spans, nil
}

// resolveSpans handles both exact-count and streamed (sentinel) files.
func resolveSpans(comp []byte, nblocks uint64, off int) ([]blockSpan, error) {
	if nblocks == streamingCount {
		return scanSpansUnknown(comp, off)
	}
	return scanSpans(comp, nblocks, off)
}

// scanSpans walks the per-block uvarint length prefixes.
func scanSpans(comp []byte, nblocks uint64, off int) ([]blockSpan, error) {
	// Every block needs at least its 1-byte length prefix; a corrupt
	// header must not drive a giant allocation.
	if nblocks > uint64(len(comp)-off) {
		return nil, fmt.Errorf("core: header claims %d blocks but only %d bytes follow",
			nblocks, len(comp)-off)
	}
	spans := make([]blockSpan, nblocks)
	for b := uint64(0); b < nblocks; b++ {
		plen, n := binary.Uvarint(comp[off:])
		if n <= 0 {
			return nil, fmt.Errorf("core: corrupt block length at offset %d", off)
		}
		off += n
		if uint64(len(comp)-off) < plen {
			return nil, fmt.Errorf("core: truncated block %d (want %d bytes, have %d)", b, plen, len(comp)-off)
		}
		spans[b] = blockSpan{off, off + int(plen)}
		off += int(plen)
	}
	return spans, nil
}

// BlockReader provides random access to individual blocks of a
// compressed stream without decompressing the rest — possible because
// every PaSTRI block is self-contained (Sec. IV-C). It is not safe for
// concurrent use; create one per goroutine (they can share the same
// underlying stream bytes).
type BlockReader struct {
	cfg    Config
	spans  []blockSpan
	comp   []byte
	dec    *BlockDecoder
	reader *bitio.Reader
}

// NewBlockReader indexes a compressed stream for random access. The
// stream bytes are retained (not copied).
func NewBlockReader(comp []byte) (*BlockReader, error) {
	cfg, nblocks, off, err := ParseHeader(comp)
	if err != nil {
		return nil, err
	}
	if nblocks != streamingCount && nblocks > uint64(math.MaxInt64)/uint64(cfg.BlockSize()) {
		return nil, fmt.Errorf("core: implausible block count %d", nblocks)
	}
	spans, err := resolveSpans(comp, nblocks, off)
	if err != nil {
		return nil, err
	}
	dec, err := NewBlockDecoder(cfg)
	if err != nil {
		return nil, err
	}
	return &BlockReader{
		cfg:    cfg,
		spans:  spans,
		comp:   comp,
		dec:    dec,
		reader: bitio.NewReader(nil),
	}, nil
}

// Config returns the stream's compression configuration.
func (r *BlockReader) Config() Config { return r.cfg }

// NumBlocks returns the number of blocks in the stream.
func (r *BlockReader) NumBlocks() int { return len(r.spans) }

// ReadBlock decompresses block b into dst, which must have
// Config().BlockSize() elements.
func (r *BlockReader) ReadBlock(b int, dst []float64) error {
	if b < 0 || b >= len(r.spans) {
		return fmt.Errorf("core: block index %d out of range [0, %d)", b, len(r.spans))
	}
	r.reader.Reset(r.comp[r.spans[b].lo:r.spans[b].hi])
	if err := r.dec.DecodeBlock(r.reader, dst); err != nil {
		return fmt.Errorf("core: block %d: %w", b, err)
	}
	return nil
}

// CompressedBlockBytes returns the compressed size of block b, for
// storage accounting.
func (r *BlockReader) CompressedBlockBytes(b int) int {
	return r.spans[b].hi - r.spans[b].lo
}

// BlockSpan returns the byte offset and length of block b's payload
// within the stream — the varint length prefix is excluded. External
// block indexes (internal/store) are built from these spans so a block
// can later be fetched with one ReadAt instead of re-scanning the
// stream.
func (r *BlockReader) BlockSpan(b int) (offset, length int, err error) {
	if b < 0 || b >= len(r.spans) {
		return 0, 0, fmt.Errorf("core: block index %d out of range [0, %d)", b, len(r.spans))
	}
	return r.spans[b].lo, r.spans[b].hi - r.spans[b].lo, nil
}
