package core

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/telemetry"
)

// snapshotFor compresses data with the given worker count under a
// fresh collector and returns the snapshot.
func snapshotFor(t *testing.T, cfg Config, data []float64, workers int) *telemetry.Snapshot {
	t.Helper()
	col := telemetry.New(-1) // no trace ring: records arrive in completion order
	cfg.Collector = col
	if _, err := CompressWorkers(data, cfg, workers, nil); err != nil {
		t.Fatal(err)
	}
	return col.Snapshot()
}

// TestTelemetryExactUnderConcurrency pins the collector's contract that
// counters and histograms are exact — not sampled, not approximate —
// regardless of how blocks are scheduled across workers. Every
// schedule-independent field of a parallel run's snapshot must equal
// the serial run's, on every golden fixture, which the race detector
// additionally turns into a concurrency-soundness check of the atomics.
func TestTelemetryExactUnderConcurrency(t *testing.T) {
	for _, gc := range goldenCases() {
		t.Run(gc.name, func(t *testing.T) {
			data := gc.data(gc.cfg)
			want := snapshotFor(t, gc.cfg, data, 1)
			if want.Blocks == 0 {
				t.Fatal("serial run recorded no blocks")
			}
			if want.BytesIn != uint64(len(data)*8) {
				t.Fatalf("bytes_in = %d, want %d", want.BytesIn, len(data)*8)
			}
			for _, workers := range []int{2, 4, 8} {
				got := snapshotFor(t, gc.cfg, data, workers)
				if got.Blocks != want.Blocks ||
					got.BytesIn != want.BytesIn ||
					got.BytesOutPayload != want.BytesOutPayload ||
					got.BytesOutFraming != want.BytesOutFraming ||
					got.BytesOutTotal != want.BytesOutTotal {
					t.Errorf("workers=%d: totals diverge: got %+v want %+v",
						workers, got, want)
				}
				if !reflect.DeepEqual(got.Encodings, want.Encodings) {
					t.Errorf("workers=%d: encodings %v, want %v",
						workers, got.Encodings, want.Encodings)
				}
				if !reflect.DeepEqual(got.BlockBytes, want.BlockBytes) {
					t.Errorf("workers=%d: block-bytes histogram diverges", workers)
				}
				// Stage counts are schedule-independent for the per-block
				// stages; durations and the split/wait stages are not.
				for _, stage := range []string{"pattern_fit", "quantize", "encode"} {
					if got.Stages[stage].Count != want.Stages[stage].Count {
						t.Errorf("workers=%d: stage %s count %d, want %d",
							workers, stage, got.Stages[stage].Count, want.Stages[stage].Count)
					}
				}
			}
		})
	}
}

// TestTelemetryDecodeCounters checks the decode-side counters match the
// encode-side block accounting for both serial and parallel decode.
func TestTelemetryDecodeCounters(t *testing.T) {
	gc := goldenCases()[0]
	data := gc.data(gc.cfg)
	comp, err := Compress(data, gc.cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers%d", workers), func(t *testing.T) {
			col := telemetry.New(0)
			dec, err := DecompressCollect(comp, workers, col)
			if err != nil {
				t.Fatal(err)
			}
			snap := col.Snapshot()
			if snap.BlocksDecoded != uint64(len(data)/gc.cfg.BlockSize()) {
				t.Fatalf("blocks_decoded = %d", snap.BlocksDecoded)
			}
			if snap.DecodedBytesOut != uint64(len(dec)*8) {
				t.Fatalf("decoded_bytes_out = %d, want %d", snap.DecodedBytesOut, len(dec)*8)
			}
			if snap.Stages["decode"].Count != snap.BlocksDecoded {
				t.Fatalf("decode stage count %d != blocks %d",
					snap.Stages["decode"].Count, snap.BlocksDecoded)
			}
		})
	}
}

// TestTelemetryTraceCompleteness: with a ring at least as deep as the
// block count, every block appears exactly once with a unique id, and
// per-record payload bytes sum to the payload counter.
func TestTelemetryTraceCompleteness(t *testing.T) {
	gc := goldenCases()[0]
	data := gc.data(gc.cfg)
	nblocks := len(data) / gc.cfg.BlockSize()
	col := telemetry.New(telemetry.DefaultTraceDepth)
	cfg := gc.cfg
	cfg.Collector = col
	if _, err := CompressWorkers(data, cfg, 4, nil); err != nil {
		t.Fatal(err)
	}
	snap := col.Snapshot()
	if len(snap.Traces) != nblocks {
		t.Fatalf("trace holds %d records, want %d", len(snap.Traces), nblocks)
	}
	seen := make(map[uint64]bool)
	var payload uint64
	for _, tr := range snap.Traces {
		if seen[tr.Block] {
			t.Fatalf("duplicate trace id %d", tr.Block)
		}
		seen[tr.Block] = true
		if tr.Block >= uint64(nblocks) {
			t.Fatalf("trace id %d out of range", tr.Block)
		}
		payload += uint64(tr.BytesOut)
		if tr.EBSlack < 0 || tr.EBSlack > cfg.ErrorBound {
			t.Errorf("block %d eb_slack %g outside [0, %g]", tr.Block, tr.EBSlack, cfg.ErrorBound)
		}
	}
	if payload != snap.BytesOutPayload {
		t.Fatalf("trace payload bytes %d != counter %d", payload, snap.BytesOutPayload)
	}
}
