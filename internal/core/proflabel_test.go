package core

import (
	"bytes"
	"context"
	"runtime/pprof"
	"testing"
)

// TestStageLabelsPropagate proves the worker pool runs under the
// request's pprof label set plus its own stage label: goroutine labels
// are what the CPU profiler samples, so if the label map inside a
// worker carries tenant+stage, profiles attribute correctly.
func TestStageLabelsPropagate(t *testing.T) {
	cfg := Defaults(4, 16, 1e-10)
	cfg.Workers = 2

	seen := make(chan map[string]string, 8)
	probe := func(ctx context.Context) {
		m := make(map[string]string)
		pprof.ForLabels(ctx, func(k, v string) bool {
			m[k] = v
			return true
		})
		seen <- m
	}

	pprof.Do(context.Background(), pprof.Labels("tenant", "acme", "route", "upload"), func(ctx context.Context) {
		cfg.ProfileCtx = ctx
		// withStageLabel must add stage without losing the request labels.
		withStageLabel(cfg.ProfileCtx, profStageEncode, func() {
			// Inside the labeled region the goroutine's label set is the
			// context pprof.Do derived; re-derive it via Do to inspect.
			pprof.Do(ctx, pprof.Labels("stage", profStageEncode), probe)
		})

		var buf bytes.Buffer
		w, err := NewParallelStreamWriter(&buf, cfg, 2)
		if err != nil {
			t.Fatal(err)
		}
		block := make([]float64, cfg.BlockSize())
		for i := range block {
			block[i] = float64(i%7) * 1e-8
		}
		for i := 0; i < 4; i++ {
			if err := w.WriteBlock(block); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
	})

	m := <-seen
	if m["tenant"] != "acme" || m["route"] != "upload" || m["stage"] != profStageEncode {
		t.Fatalf("labels = %v, want tenant=acme route=upload stage=encode", m)
	}
}

// TestWithStageLabelNilCtx pins the disabled path: no context, no
// pprof machinery, and crucially no allocations — the CLI pipelines
// rely on the zero-cost default.
func TestWithStageLabelNilCtx(t *testing.T) {
	ran := false
	withStageLabel(nil, profStageSequencer, func() { ran = true })
	if !ran {
		t.Fatal("f not called")
	}
	allocs := testing.AllocsPerRun(100, func() {
		withStageLabel(nil, profStageEncode, func() {})
	})
	if allocs != 0 {
		t.Fatalf("nil-ctx withStageLabel allocates %v/op, want 0", allocs)
	}
}

// TestParallelOutputUnchangedWithProfileCtx guards the byte-identity
// contract: labeling goroutines must not perturb the stream.
func TestParallelOutputUnchangedWithProfileCtx(t *testing.T) {
	cfg := Defaults(4, 16, 1e-10)
	block := make([]float64, cfg.BlockSize())
	for i := range block {
		block[i] = float64(i%11) * 1e-9
	}
	run := func(ctx context.Context) []byte {
		c := cfg
		c.ProfileCtx = ctx
		var buf bytes.Buffer
		w, err := NewParallelStreamWriter(&buf, c, 3)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 6; i++ {
			if err := w.WriteBlock(block); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	plain := run(nil)
	labeled := run(context.Background())
	if !bytes.Equal(plain, labeled) {
		t.Fatal("ProfileCtx changed the output stream")
	}
}
