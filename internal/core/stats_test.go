package core

import (
	"math"
	"testing"

	"repro/internal/quant"
)

// Direct unit tests for the Stats accumulator: the integration tests
// exercise it through whole-stream compression, which never hits the
// degenerate shapes (empty ECQ slice, all-zero blocks, single
// sub-block configs) or Merge's nil-map path in isolation.

func TestClassifyECbMaxEdges(t *testing.T) {
	// core_test.go covers the interior cut points; this pins the ends.
	if got := ClassifyECbMax(0); got != Type0 {
		t.Errorf("ClassifyECbMax(0) = %v, want Type0", got)
	}
	if got := ClassifyECbMax(64); got != Type3 {
		t.Errorf("ClassifyECbMax(64) = %v, want Type3", got)
	}
	if s := BlockType(9).String(); s != "Type ?" {
		t.Errorf("out-of-range BlockType prints %q", s)
	}
}

func TestRecordBlockEmptyECQ(t *testing.T) {
	// An empty ECQ slice (e.g. a fully pattern-explained block in a
	// degenerate config) must still count the block and its bits.
	s := NewStats()
	s.recordBlock(nil, 0, 10, 20, 0, 5, false)
	if s.Blocks != 1 || s.TypeCount[Type0] != 1 {
		t.Fatalf("blocks/type = %d/%v", s.Blocks, s.TypeCount)
	}
	for b, n := range s.TotalHist {
		if n != 0 {
			t.Fatalf("TotalHist[%d] = %d for empty ECQ", b, n)
		}
	}
	if s.PayloadBits() != 35 {
		t.Fatalf("PayloadBits = %d, want 35", s.PayloadBits())
	}
}

func TestRecordBlockAllZero(t *testing.T) {
	// All-zero ECQ: a Type 0 block. Every value lands in bin 1, which
	// holds {0} in the paper's Fig. 6 numbering.
	s := NewStats()
	ecq := make([]int64, 36)
	s.recordBlock(ecq, 1, 4, 8, 0, 2, false)
	if got := ClassifyECbMax(1); got != Type0 {
		t.Fatalf("ecbMax 1 classified %v", got)
	}
	if s.TypeCount[Type0] != 1 || s.BinHist[Type0][1] != 36 || s.TotalHist[1] != 36 {
		t.Fatalf("zero-block histograms wrong: %v / %d", s.TypeCount, s.TotalHist[1])
	}
	if s.ECbMaxHist[1] != 1 {
		t.Fatalf("ECbMaxHist = %v", s.ECbMaxHist)
	}
	if s.SparseBlocks != 0 {
		t.Fatalf("SparseBlocks = %d", s.SparseBlocks)
	}
}

func TestRecordBlockSingleSubBlock(t *testing.T) {
	// A single sub-block "pattern" (NumSB=1): the whole block is the
	// pattern, ECQ carries one entry per point.
	s := NewStats()
	ecq := []int64{0, -1, 1, 3, -4}
	s.recordBlock(ecq, 3, 64, 11, 15, 2, true)
	if s.TypeCount[Type2] != 1 {
		t.Fatalf("TypeCount = %v, want one Type2", s.TypeCount)
	}
	if s.SparseBlocks != 1 {
		t.Fatalf("SparseBlocks = %d, want 1", s.SparseBlocks)
	}
	// Bin occupancy mirrors quant.BitsForValue exactly.
	wantBins := map[uint]uint64{}
	for _, v := range ecq {
		wantBins[quant.BitsForValue(v)]++
	}
	for b, n := range wantBins {
		if s.TotalHist[b] != n || s.BinHist[Type2][b] != n {
			t.Fatalf("bin %d: total %d / type %d, want %d",
				b, s.TotalHist[b], s.BinHist[Type2][b], n)
		}
	}
}

func TestStatsMergeNilAndEmptyMap(t *testing.T) {
	s := NewStats()
	s.recordBlock([]int64{1}, 2, 1, 2, 3, 4, false)
	before := *s
	s.Merge(nil) // no-op
	if s.Blocks != before.Blocks || s.PayloadBits() != before.PayloadBits() {
		t.Fatal("Merge(nil) changed the accumulator")
	}

	// Merging into a zero-value Stats (nil ECbMaxHist) must allocate
	// the map rather than panic.
	var dst Stats
	other := NewStats()
	other.recordBlock([]int64{0, 7}, 4, 5, 6, 7, 8, true)
	dst.Merge(other)
	if dst.Blocks != 1 || dst.ECbMaxHist[4] != 1 || dst.SparseBlocks != 1 {
		t.Fatalf("zero-value Merge: %+v", dst)
	}
	if dst.PayloadBits() != 5+6+7+8 {
		t.Fatalf("PayloadBits = %d", dst.PayloadBits())
	}
}

func TestStatsFractionsZeroAndExact(t *testing.T) {
	var s Stats
	p, e, b := s.Fractions()
	if p != 0 || e != 0 || b != 0 { //lint:floatcmp-ok exact: zero-total case returns literal zeros
		t.Fatalf("empty Fractions = %v %v %v", p, e, b)
	}
	s.PatternBits, s.ScaleBits, s.ECQBits, s.HeaderBits = 10, 10, 70, 10
	p, e, b = s.Fractions()
	if math.Abs(p-0.2) > 1e-12 || math.Abs(e-0.7) > 1e-12 || math.Abs(b-0.1) > 1e-12 {
		t.Fatalf("Fractions = %v %v %v", p, e, b)
	}
}
