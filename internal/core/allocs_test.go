package core

import (
	"math/rand"
	"testing"

	"repro/internal/bitio"
	"repro/internal/encoding"
	"repro/internal/pattern"
)

// Allocation-regression tests for the block kernels. The per-block hot
// path — analyze/quantize/encode on the compress side, DecodeBlock on
// the decompress side — must not touch the heap once the scratch arenas
// and pools are warm. All tests skip under the race detector, whose
// instrumentation allocates.

func allocTestConfig() Config {
	return Config{
		NumSB: 8, SBSize: 32, ErrorBound: 1e-10,
		Metric: pattern.ER, Encoding: encoding.Tree5,
	}
}

func allocTestData(cfg Config, nblocks int) []float64 {
	rng := rand.New(rand.NewSource(99))
	data := make([]float64, 0, nblocks*cfg.BlockSize())
	for b := 0; b < nblocks; b++ {
		data = append(data, patternedBlock(rng, cfg.NumSB, cfg.SBSize, 1e-7, 1e-9, 0.02)...)
	}
	return data
}

// TestEncodeBlockAllocs: a warm BlockEncoder must encode without any
// heap allocation.
func TestEncodeBlockAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates")
	}
	cfg := allocTestConfig()
	block := allocTestData(cfg, 1)
	enc, err := NewBlockEncoder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w := bitio.NewWriter(cfg.BlockSize())
	allocs := testing.AllocsPerRun(100, func() {
		w.Reset()
		if err := enc.EncodeBlock(w, block); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("EncodeBlock allocates %v times per block, want 0", allocs)
	}
}

// TestDecodeBlockAllocs: a warm BlockDecoder must decode without any
// heap allocation.
func TestDecodeBlockAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates")
	}
	cfg := allocTestConfig()
	block := allocTestData(cfg, 1)
	enc, err := NewBlockEncoder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w := bitio.NewWriter(cfg.BlockSize())
	if err := enc.EncodeBlock(w, block); err != nil {
		t.Fatal(err)
	}
	payload := w.Bytes()
	dec, err := NewBlockDecoder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := bitio.NewReader(nil)
	dst := make([]float64, cfg.BlockSize())
	allocs := testing.AllocsPerRun(100, func() {
		r.Reset(payload)
		if err := dec.DecodeBlock(r, dst); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("DecodeBlock allocates %v times per block, want 0", allocs)
	}
}

// TestCompressWorkersAllocs: a one-shot CompressWorkers call pays a
// fixed per-call cost (output stream, channels, goroutines) but must
// not allocate per block once the encoder and payload pools are warm.
// The marginal allocations between an n-block and a 2n-block call
// isolate the steady-state per-block cost.
func TestCompressWorkersAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates")
	}
	cfg := allocTestConfig()
	const n = 4
	small := allocTestData(cfg, n)
	large := allocTestData(cfg, 2*n)

	for _, tc := range []struct {
		name    string
		workers int
	}{
		{"serial", 1},
		{"workers4", 4},
	} {
		t.Run(tc.name, func(t *testing.T) {
			run := func(data []float64) float64 {
				return testing.AllocsPerRun(50, func() {
					if _, err := CompressWorkers(data, cfg, tc.workers, nil); err != nil {
						t.Fatal(err)
					}
				})
			}
			aSmall := run(small)
			aLarge := run(large)
			perBlock := (aLarge - aSmall) / float64(n)
			// The two calls differ only in block count, so any difference
			// is per-block heap traffic. Allow sub-1 noise from pool
			// rebalancing; steady state must round to 0 allocs per block.
			if perBlock >= 1 {
				t.Errorf("%s: %v allocs per block (small call %v, large call %v), want 0",
					tc.name, perBlock, aSmall, aLarge)
			}
		})
	}
}
