package core

import (
	"bytes"
	"encoding/binary"
	"math"
	"math/rand"
	"testing"

	"repro/internal/bitio"
	"repro/internal/encoding"
	"repro/internal/pattern"
)

// Byte-identity battery for the fused single-pass encoder: over
// randomized configurations and data, the fused path must produce
// exactly the stream the staged reference path produces — same bytes,
// same stats, same errors. The committed goldens already pin the fused
// path to the frozen format; these tests additionally sweep corners no
// golden covers.

// compressBoth runs the same data through the fused and staged paths
// and returns both streams (and errors).
func compressBoth(data []float64, cfg Config, workers int) (fused, staged []byte, errF, errS error) {
	fCfg, sCfg := cfg, cfg
	fCfg.DisableFused = false
	sCfg.DisableFused = true
	fused, errF = CompressWorkers(data, fCfg, workers, nil)
	staged, errS = CompressWorkers(data, sCfg, workers, nil)
	return
}

func TestFusedMatchesStaged(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	metrics := []pattern.Metric{pattern.ER, pattern.FR, pattern.AR, pattern.AAR, pattern.IS}
	methods := []encoding.Method{encoding.Fixed, encoding.Tree1, encoding.Tree2,
		encoding.Tree3, encoding.Tree4, encoding.Tree5}
	workerSet := []int{1, 2, 4, 7}
	for trial := 0; trial < 60; trial++ {
		cfg := Config{
			NumSB:         1 + rng.Intn(12),
			SBSize:        1 + rng.Intn(24),
			ErrorBound:    math.Pow(10, -3-float64(rng.Intn(10))), // 1e-3 .. 1e-12
			Metric:        metrics[rng.Intn(len(metrics))],
			Encoding:      methods[rng.Intn(len(methods))],
			DisableSparse: rng.Intn(4) == 0,
		}
		nblocks := 1 + rng.Intn(20)
		var data []float64
		if rng.Intn(2) == 0 {
			data = eriLikeBlocks(cfg, nblocks, rng.Int63())
		} else {
			data = make([]float64, 0, nblocks*cfg.BlockSize())
			amp := math.Pow(10, float64(rng.Intn(12)-6))
			noise := cfg.ErrorBound * math.Pow(10, float64(rng.Intn(4)-1))
			for b := 0; b < nblocks; b++ {
				data = append(data, patternedBlock(rng, cfg.NumSB, cfg.SBSize, amp, noise, 0.05)...)
			}
		}
		workers := workerSet[rng.Intn(len(workerSet))]

		fused, staged, errF, errS := compressBoth(data, cfg, workers)
		if (errF == nil) != (errS == nil) {
			t.Fatalf("trial %d (%+v): error parity broken: fused=%v staged=%v", trial, cfg, errF, errS)
		}
		if errF != nil {
			if errF.Error() != errS.Error() {
				t.Fatalf("trial %d (%+v): errors differ: fused=%v staged=%v", trial, cfg, errF, errS)
			}
			continue
		}
		if !bytes.Equal(fused, staged) {
			t.Fatalf("trial %d (%+v, workers=%d): fused stream differs from staged (%d vs %d bytes)",
				trial, cfg, workers, len(fused), len(staged))
		}
		dec, err := Decompress(fused, 1)
		if err != nil {
			t.Fatalf("trial %d: decompress: %v", trial, err)
		}
		for i, x := range data {
			// A few ulps of the value magnitude cover reconstruction
			// rounding when EB sits below representable precision.
			tol := cfg.ErrorBound + 8*math.Abs(x)*0x1p-52
			if math.Abs(x-dec[i]) > tol {
				t.Fatalf("trial %d: point %d violates EB: |%g - %g| > %g", trial, i, x, dec[i], cfg.ErrorBound)
			}
		}
	}
}

// TestFusedMatchesStagedSpecials hits block shapes the random sweep is
// unlikely to produce: all-zero (Type-0), pure pattern (zero residual),
// denormal data, single-point geometry, and residual magnitudes that
// force the widest ECQ bins.
func TestFusedMatchesStagedSpecials(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	cases := []struct {
		name string
		cfg  Config
		data func(cfg Config) []float64
	}{
		{"type0", Defaults(6, 10, 1e-8), func(cfg Config) []float64 {
			return make([]float64, cfg.BlockSize())
		}},
		{"pure-pattern", Defaults(4, 12, 1e-10), func(cfg Config) []float64 {
			data := make([]float64, cfg.BlockSize())
			for s := 0; s < cfg.NumSB; s++ {
				for i := 0; i < cfg.SBSize; i++ {
					data[s*cfg.SBSize+i] = float64(s+1) * math.Sin(float64(i))
				}
			}
			return data
		}},
		{"denormal", Defaults(3, 7, 1e-12), func(cfg Config) []float64 {
			data := make([]float64, cfg.BlockSize())
			for i := range data {
				data[i] = float64(i%5) * 5e-324
			}
			return data
		}},
		{"single-point", Defaults(1, 1, 1e-10), func(cfg Config) []float64 {
			return []float64{0.7071}
		}},
		{"wide-bins", Defaults(2, 8, 1e-3), func(cfg Config) []float64 {
			data := make([]float64, cfg.BlockSize())
			for i := range data {
				// Large deviations from any pattern fit force wide ECQ bins.
				data[i] = rng.NormFloat64() * math.Pow(10, float64(i%7))
			}
			return data
		}},
		{"negative-zero", Defaults(2, 6, 1e-9), func(cfg Config) []float64 {
			data := make([]float64, cfg.BlockSize())
			for i := range data {
				data[i] = math.Copysign(0, -1)
			}
			return data
		}},
	}
	for _, tc := range cases {
		data := tc.data(tc.cfg)
		fused, staged, errF, errS := compressBoth(data, tc.cfg, 1)
		if (errF == nil) != (errS == nil) {
			t.Fatalf("%s: error parity broken: fused=%v staged=%v", tc.name, errF, errS)
		}
		if errF != nil {
			continue
		}
		if !bytes.Equal(fused, staged) {
			t.Fatalf("%s: fused stream differs from staged", tc.name)
		}
	}
}

// TestFusedErrorParity: inputs that make compression fail must fail
// identically on both paths (same error text), since callers and tests
// match on these messages.
func TestFusedErrorParity(t *testing.T) {
	cfg := Defaults(2, 4, 1e-10)
	for _, tc := range []struct {
		name string
		data []float64
	}{
		{"nan", []float64{1, 2, math.NaN(), 4, 5, 6, 7, 8}},
		{"inf", []float64{1, 2, math.Inf(1), 4, 5, 6, 7, 8}},
		{"huge-range", []float64{1e300, 1, 1, 1, 1, 1, 1, 1}},
	} {
		_, _, errF, errS := compressBoth(tc.data, cfg, 1)
		if errF == nil || errS == nil {
			if (errF == nil) != (errS == nil) {
				t.Fatalf("%s: error parity broken: fused=%v staged=%v", tc.name, errF, errS)
			}
			continue
		}
		if errF.Error() != errS.Error() {
			t.Fatalf("%s: errors differ:\n  fused:  %v\n  staged: %v", tc.name, errF, errS)
		}
	}
}

// TestFusedStatsParity: the scatter-reconstructed ECQ the fused path
// hands to the stats sink must yield exactly the staged path's stats.
func TestFusedStatsParity(t *testing.T) {
	cfg := Defaults(6, 10, 1e-10)
	data := eriLikeBlocks(cfg, 31, 7)
	fCfg, sCfg := cfg, cfg
	sCfg.DisableFused = true
	fStats, sStats := NewStats(), NewStats()
	if _, err := CompressWorkers(data, fCfg, 1, fStats); err != nil {
		t.Fatal(err)
	}
	if _, err := CompressWorkers(data, sCfg, 1, sStats); err != nil {
		t.Fatal(err)
	}
	if fStats.Blocks != sStats.Blocks || fStats.TypeCount != sStats.TypeCount ||
		fStats.SparseBlocks != sStats.SparseBlocks ||
		fStats.PayloadBits() != sStats.PayloadBits() {
		t.Fatalf("stats diverge:\n  fused:  %+v\n  staged: %+v", fStats, sStats)
	}
}

// TestFusedEncodeBlockAllocs: the fused hot path must stay
// allocation-free once the arenas are warm, exactly like the staged one
// (TestEncodeBlockAllocs covers the dispatch default).
func TestFusedEncodeBlockAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates")
	}
	for _, tc := range []struct {
		name         string
		disableFused bool
	}{
		{"fused", false},
		{"staged", true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := allocTestConfig()
			cfg.DisableFused = tc.disableFused
			block := allocTestData(cfg, 1)
			enc, err := NewBlockEncoder(cfg)
			if err != nil {
				t.Fatal(err)
			}
			w := bitio.NewWriter(cfg.BlockSize())
			allocs := testing.AllocsPerRun(100, func() {
				w.Reset()
				if err := enc.EncodeBlock(w, block); err != nil {
					t.Fatal(err)
				}
			})
			if allocs != 0 {
				t.Errorf("%s EncodeBlock allocates %v times per block, want 0", tc.name, allocs)
			}
		})
	}
}

// FuzzFusedCompress feeds arbitrary geometry, error bound and raw bytes
// through both paths, requiring error parity and byte-identical streams.
func FuzzFusedCompress(f *testing.F) {
	seed := func(cfg Config, data []float64) {
		raw := make([]byte, len(data)*8)
		for i, v := range data {
			binary.LittleEndian.PutUint64(raw[i*8:], math.Float64bits(v))
		}
		f.Add(uint8(cfg.NumSB), uint8(cfg.SBSize), uint8(0), raw)
	}
	cfg := Defaults(4, 6, 1e-10)
	seed(cfg, eriLikeBlocks(cfg, 2, 1))
	seed(Defaults(2, 3, 1e-10), []float64{0, 0, 0, 0, 0, 0})
	seed(Defaults(1, 2, 1e-10), []float64{math.NaN(), 1})
	f.Fuzz(func(t *testing.T, nsb, sbs, ebSel uint8, raw []byte) {
		cfg := Defaults(1+int(nsb%10), 1+int(sbs%12), math.Pow(10, -3-float64(ebSel%10)))
		bs := cfg.BlockSize()
		nblocks := len(raw) / 8 / bs
		if nblocks == 0 {
			return
		}
		if nblocks > 8 {
			nblocks = 8
		}
		data := make([]float64, nblocks*bs)
		for i := range data {
			data[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[i*8:]))
		}
		fused, staged, errF, errS := compressBoth(data, cfg, 1+int(nsb%4))
		if (errF == nil) != (errS == nil) {
			t.Fatalf("error parity broken: fused=%v staged=%v", errF, errS)
		}
		if errF != nil {
			if errF.Error() != errS.Error() {
				t.Fatalf("errors differ: fused=%v staged=%v", errF, errS)
			}
			return
		}
		if !bytes.Equal(fused, staged) {
			t.Fatalf("fused stream differs from staged (%d vs %d bytes)", len(fused), len(staged))
		}
	})
}
