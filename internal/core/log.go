package core

import (
	"context"
	"fmt"
	"log/slog"
)

// Structured-logging support. Log sites follow the same zero-cost
// discipline as telemetry: a nil Config.Logger reduces every site to
// one untaken branch, and per-block Debug records are gated on
// Logger.Enabled so a disabled level never pays for attribute
// construction. Attribute keys are lowercase_snake string constants —
// the pastrilint slogkey analyzer enforces this repo-wide, so log
// consumers (and the README's documented fields) cannot drift.

// logEnabled reports whether l would emit at level; nil-safe.
func logEnabled(l *slog.Logger, level slog.Level) bool {
	return l != nil && l.Enabled(context.Background(), level)
}

// quartetClass renders a block geometry as the shell-quartet class
// string used in logs and artifacts, e.g. "36x36" for a (dd|dd) block.
func quartetClass(numSB, sbSize int) string {
	return fmt.Sprintf("%dx%d", numSB, sbSize)
}
