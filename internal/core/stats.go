package core

import "repro/internal/quant"

// BlockType classifies a block by its ECQ range, following Fig. 6 of the
// paper.
type BlockType int

// The four block types observed in ERI data (Sec. IV-C).
const (
	// Type0: all ECQ values are zero; no ECQ bits are spent.
	Type0 BlockType = iota
	// Type1: ECQ values are confined to {−1, 0, +1} (ECb_max = 2).
	Type1
	// Type2: a few bits suffice (ECb_max ≤ 6), mass concentrated low.
	Type2
	// Type3: wide ECQ range (ECb_max > 6).
	Type3
)

// String names the block type as in the paper.
func (t BlockType) String() string {
	switch t {
	case Type0:
		return "Type 0"
	case Type1:
		return "Type 1"
	case Type2:
		return "Type 2"
	case Type3:
		return "Type 3"
	}
	return "Type ?"
}

// ClassifyECbMax maps a block's ECb_max to its type. "The type of the
// block can be determined from the value of ECb_max" (Sec. IV-C).
func ClassifyECbMax(ecbMax uint) BlockType {
	switch {
	case ecbMax <= 1:
		return Type0
	case ecbMax == 2:
		return Type1
	case ecbMax <= 6:
		return Type2
	default:
		return Type3
	}
}

// Stats accumulates the per-block information behind Fig. 6 (ECQ value
// distribution per block type) and the Sec. V-B output-composition
// breakdown (PQ+SQ vs ECQ vs bookkeeping bits). It is filled by
// BlockEncoder when attached via CollectStats; merge per-worker copies
// with Merge.
type Stats struct {
	Blocks      uint64          // total blocks
	TypeCount   [4]uint64       // blocks per type
	BinHist     [4][64]uint64   // per-type histogram of ECQ bin numbers
	TotalHist   [64]uint64      // all-blocks histogram of ECQ bin numbers
	PatternBits uint64          // bits spent on PQ
	ScaleBits   uint64          // bits spent on SQ
	ECQBits     uint64          // bits spent on ECQ payloads (incl. sparse flag)
	HeaderBits  uint64          // bits spent on per-block bookkeeping
	ECbMaxHist  map[uint]uint64 // distribution of per-block ECb_max
	// SparseBlocks counts blocks that chose the sparse (index,value)
	// ECQ representation over the dense tree encoding (Sec. IV-C).
	SparseBlocks uint64
}

// NewStats returns an empty accumulator.
func NewStats() *Stats {
	return &Stats{ECbMaxHist: make(map[uint]uint64)} //lint:hotalloc2-ok one histogram map per stream accumulator
}

func (s *Stats) recordBlock(ecq []int64, ecbMax uint, pqBits, sqBits, ecqBits, headerBits uint64, sparse bool) {
	if sparse {
		s.SparseBlocks++
	}
	s.Blocks++
	t := ClassifyECbMax(ecbMax)
	s.TypeCount[t]++
	for _, v := range ecq {
		b := quant.BitsForValue(v)
		s.BinHist[t][b]++
		s.TotalHist[b]++
	}
	s.PatternBits += pqBits
	s.ScaleBits += sqBits
	s.ECQBits += ecqBits
	s.HeaderBits += headerBits
	s.ECbMaxHist[ecbMax]++
}

// Merge folds other into s.
func (s *Stats) Merge(other *Stats) {
	if other == nil {
		return
	}
	s.Blocks += other.Blocks
	for i := range s.TypeCount {
		s.TypeCount[i] += other.TypeCount[i]
		for j := range s.BinHist[i] {
			s.BinHist[i][j] += other.BinHist[i][j]
		}
	}
	for j := range s.TotalHist {
		s.TotalHist[j] += other.TotalHist[j]
	}
	s.PatternBits += other.PatternBits
	s.ScaleBits += other.ScaleBits
	s.ECQBits += other.ECQBits
	s.HeaderBits += other.HeaderBits
	if s.ECbMaxHist == nil {
		s.ECbMaxHist = make(map[uint]uint64) //lint:hotalloc2-ok lazy init, at most once per accumulator
	}
	for k, v := range other.ECbMaxHist { //lint:detlint-ok map-to-map addition is commutative; iteration order cannot change the result
		s.ECbMaxHist[k] += v
	}
	s.SparseBlocks += other.SparseBlocks
}

// PayloadBits returns total bits across all categories.
func (s *Stats) PayloadBits() uint64 {
	return s.PatternBits + s.ScaleBits + s.ECQBits + s.HeaderBits
}

// Fractions returns the share of output taken by PQ+SQ, ECQ and
// bookkeeping. Sec. V-B reports PQ+SQ ≈ 20–30 %, ECQ ≈ 70–80 %,
// bookkeeping < 0.5 % for ERI workloads.
func (s *Stats) Fractions() (patternScale, ecq, bookkeeping float64) {
	total := float64(s.PayloadBits())
	if total == 0 { //lint:floatcmp-ok exact: total is an integer bit counter converted to float64
		return 0, 0, 0
	}
	return float64(s.PatternBits+s.ScaleBits) / total,
		float64(s.ECQBits) / total,
		float64(s.HeaderBits) / total
}
