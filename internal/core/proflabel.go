package core

import (
	"context"
	"runtime/pprof"
)

// pprof "stage" label values for the pipeline's goroutine roles. The
// encode workers cover both the fused and the staged encoder — the
// whole per-block compression runs inside them.
const (
	profStageEncode    = "encode"
	profStageSequencer = "sequencer"
)

// withStageLabel runs f under ctx's pprof label set plus a "stage"
// label, so CPU samples taken inside f carry tenant/route (inherited
// from the request context pastrid threads through Config.ProfileCtx)
// and the pipeline stage. With no profile context attached — every CLI
// and library path — f runs directly: no label map copy, no overhead.
func withStageLabel(ctx context.Context, stage string, f func()) {
	if ctx == nil {
		f()
		return
	}
	pprof.Do(ctx, pprof.Labels("stage", stage), func(context.Context) { f() }) //lint:hotalloc2-ok one closure per labeled region (per worker/stream), not per block
}
