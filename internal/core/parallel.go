package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/bitio"
	"repro/internal/telemetry"
)

// Parallel block-compression engine. PaSTRI blocks are self-contained
// (see block.go), so compression is embarrassingly parallel: every
// worker encodes blocks against the same Config with private scratch
// state, and only the assembly into the stream is ordered. Both the
// one-shot path (Compress / CompressWorkers) and the incremental path
// (ParallelStreamWriter) are built on that property and produce output
// byte-identical to the serial encoder for every worker count — the
// stream contains no trace of how many goroutines built it.

// normalizeWorkers resolves a requested worker count: non-positive
// means GOMAXPROCS, and nblocks (when non-negative) caps useful
// parallelism.
func normalizeWorkers(workers, nblocks int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if nblocks >= 0 && workers > nblocks {
		workers = nblocks
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// compressPayloads compresses every block of data (a whole number of
// blocks, pre-validated by the caller) into its own pooled byte buffer,
// fanning out over workers goroutines. payloads[b] depends only on the
// block contents and cfg, never on the worker count or schedule. If
// stats is non-nil, per-worker accumulators are merged into it.
//
// Encoders and payload buffers come from the package pools: the caller
// must hand the returned buffers back via putPayloads once their
// contents have been copied out. Steady state does zero per-block heap
// allocation.
//
//pastri:hotpath
func compressPayloads(data []float64, cfg Config, workers int, stats *Stats) ([]*[]byte, error) {
	bs := cfg.BlockSize()
	nblocks := len(data) / bs
	payloads := make([]*[]byte, nblocks) //lint:hotalloc-ok one slice per call, not per block
	workers = normalizeWorkers(workers, nblocks)

	if workers <= 1 {
		enc := getEncoder(cfg)
		defer putEncoder(enc)
		enc.CollectStats(stats)
		w := bitio.NewWriter(bs)
		for b := 0; b < nblocks; b++ {
			w.Reset()
			if err := enc.EncodeBlock(w, data[b*bs:(b+1)*bs]); err != nil {
				putPayloads(payloads)
				return nil, err
			}
			p := getPayload()
			*p = append((*p)[:0], w.Bytes()...) //lint:hotalloc-ok pooled buffer: append is in place once warm
			payloads[b] = p
		}
		return payloads, nil
	}

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	tSplit := cfg.Collector.StageStart()
	spSplit := cfg.Trace.StartChild("block_split")
	next := make(chan int, nblocks) //lint:hotalloc-ok one channel per call, not per block
	for b := 0; b < nblocks; b++ {
		next <- b
	}
	close(next)
	spSplit.End()
	cfg.Collector.StageEnd(telemetry.StageBlockSplit, tSplit)
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		//lint:hotalloc2-ok one worker closure per goroutine at stream start, not per block
		go func() {
			defer wg.Done()
			//lint:hotalloc2-ok one label closure per worker, not per block
			withStageLabel(cfg.ProfileCtx, profStageEncode, func() {
				enc := getEncoder(cfg)
				defer putEncoder(enc)
				var local *Stats
				if stats != nil {
					local = NewStats()
					enc.CollectStats(local)
				}
				w := bitio.NewWriter(bs)
				for b := range next {
					w.Reset()
					if err := enc.EncodeBlock(w, data[b*bs:(b+1)*bs]); err != nil {
						mu.Lock()
						if firstErr == nil {
							firstErr = err
						}
						mu.Unlock()
						return
					}
					p := getPayload()
					*p = append((*p)[:0], w.Bytes()...) //lint:hotalloc-ok pooled buffer: append is in place once warm
					payloads[b] = p
				}
				if local != nil {
					mu.Lock()
					stats.Merge(local)
					mu.Unlock()
				}
			})
		}()
	}
	wg.Wait()
	if firstErr != nil {
		putPayloads(payloads)
		return nil, firstErr
	}
	return payloads, nil
}

// CompressWorkers is Compress with an explicit worker count that
// overrides cfg.Workers (non-positive ⇒ GOMAXPROCS). The output is
// byte-identical to Compress for every worker count.
func CompressWorkers(data []float64, cfg Config, workers int, stats *Stats) ([]byte, error) {
	if workers < 0 {
		workers = 0
	}
	cfg.Workers = workers
	return Compress(data, cfg, stats)
}

// pswJob carries one submitted block to a worker; seq is the block's
// position in submission order.
type pswJob struct {
	seq  uint64
	data []float64
}

// pswResult carries one compressed payload (or the encoder's error)
// back to the sequencer. The payload buffer is pooled: the sequencer
// returns it via putPayload after writing (or discarding) it.
type pswResult struct {
	seq     uint64
	payload *[]byte
	err     error
}

// ParallelStreamWriter compresses blocks incrementally like
// StreamWriter, but fans the per-block encoding out over a bounded
// worker pool. A sequencer goroutine writes finished payloads to the
// underlying writer strictly in submission order, so the produced
// stream is byte-identical to what StreamWriter emits for the same
// blocks — same header, same block order, no reordering.
//
// WriteBlock may return an encoding error on a later call than the
// block that caused it (the pipeline is asynchronous); Close always
// reports the first error in block order. WriteBlock and Close must be
// called from a single goroutine.
type ParallelStreamWriter struct {
	w       *bufio.Writer
	cfg     Config
	workers int

	started bool
	closed  bool
	jobs    chan pswJob
	results chan pswResult
	seqDone chan struct{}
	wg      sync.WaitGroup

	submitted uint64
	written   atomic.Uint64
	failed    atomic.Bool
	errMu     sync.Mutex
	firstErr  error // first error in block order (sequencer) or setup order

	stats       *Stats
	workerStats []*Stats

	blockPool sync.Pool
}

// NewParallelStreamWriter writes a stream header to w and returns a
// writer that compresses each WriteBlock over a pool of workers
// goroutines (non-positive ⇒ GOMAXPROCS). The caller must Close it to
// drain the pipeline and flush buffered output.
func NewParallelStreamWriter(w io.Writer, cfg Config, workers int) (*ParallelStreamWriter, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	bw := bufio.NewWriter(w)
	hdr := appendHeader(make([]byte, 0, headerSize), cfg, streamingCount)
	if _, err := bw.Write(hdr); err != nil {
		return nil, err
	}
	cfg.Collector.AddFramingBytes(len(hdr))
	return &ParallelStreamWriter{
		w:       bw,
		cfg:     cfg,
		workers: normalizeWorkers(workers, -1),
	}, nil
}

// CollectStats attaches a statistics sink. It must be called before the
// first WriteBlock; later calls are ignored.
func (s *ParallelStreamWriter) CollectStats(st *Stats) {
	if !s.started {
		s.stats = st
	}
}

// start spins up the worker pool and the sequencer. Deferred to the
// first WriteBlock so CollectStats can attach beforehand.
func (s *ParallelStreamWriter) start() {
	s.started = true
	s.jobs = make(chan pswJob, 2*s.workers)
	s.results = make(chan pswResult, 2*s.workers)
	s.seqDone = make(chan struct{})
	for wk := 0; wk < s.workers; wk++ {
		var local *Stats
		if s.stats != nil {
			local = NewStats()
			s.workerStats = append(s.workerStats, local)
		}
		s.wg.Add(1)
		go s.worker(local)
	}
	go s.sequencer()
}

func (s *ParallelStreamWriter) worker(local *Stats) {
	defer s.wg.Done()
	// One label scope per worker lifetime, not per block: CPU samples in
	// the whole encode loop are attributed to tenant×route×stage=encode.
	withStageLabel(s.cfg.ProfileCtx, profStageEncode, func() { s.encodeLoop(local) })
}

func (s *ParallelStreamWriter) encodeLoop(local *Stats) {
	enc := getEncoder(s.cfg)
	defer putEncoder(enc)
	enc.CollectStats(local)
	bw := bitio.NewWriter(s.cfg.BlockSize())
	for j := range s.jobs {
		if s.failed.Load() {
			// A preceding block already failed; the stream is dead, so
			// skip the encoding work and let the sequencer discard this.
			s.results <- pswResult{seq: j.seq, err: errAborted}
			s.blockPool.Put(&j.data)
			continue
		}
		bw.Reset()
		err := enc.EncodeBlock(bw, j.data)
		res := pswResult{seq: j.seq, err: err}
		if err == nil {
			p := getPayload()
			*p = append((*p)[:0], bw.Bytes()...)
			res.payload = p
		}
		s.blockPool.Put(&j.data)
		s.results <- res
	}
}

// errAborted marks results that were skipped because an earlier block
// already failed; the sequencer never reports it as the root cause.
var errAborted = fmt.Errorf("core: block skipped after earlier error")

// sequencer writes payloads in submission order, buffering results that
// arrive early. On the first in-order error it stops writing and
// records the error; remaining results are drained and discarded.
// Receive gaps are recorded as sequencer-wait time and the varint+
// payload writes as write time, so a snapshot distinguishes "workers
// can't keep the sequencer fed" from "the sink is slow".
func (s *ParallelStreamWriter) sequencer() {
	defer close(s.seqDone)
	withStageLabel(s.cfg.ProfileCtx, profStageSequencer, s.sequence)
}

func (s *ParallelStreamWriter) sequence() {
	col := s.cfg.Collector
	pending := make(map[uint64]pswResult) //lint:hotalloc2-ok one map per stream, not per block; sequence runs once per writer
	var nextSeq uint64
	var lenBuf [binary.MaxVarintLen64]byte
	dead := false
	tWait := col.StageStart()
	spWait := s.cfg.Trace.StartChild("sequencer_wait") //lint:spanend-ok span is re-created per receive gap; every instance ends on the next receive or after channel close below
	for res := range s.results {
		col.StageEnd(telemetry.StageSequencerWait, tWait)
		spWait.End()
		pending[res.seq] = res
		for {
			r, ok := pending[nextSeq]
			if !ok {
				break
			}
			delete(pending, nextSeq)
			nextSeq++
			switch {
			case dead:
				// Stream already failed: discard.
			case r.err != nil:
				s.fail(r.err)
				dead = true
			default:
				tWrite := col.StageStart()
				spWrite := s.cfg.Trace.StartChild("write")
				n := binary.PutUvarint(lenBuf[:], uint64(len(*r.payload)))
				if _, err := s.w.Write(lenBuf[:n]); err != nil {
					s.fail(err)
					dead = true
				} else if _, err := s.w.Write(*r.payload); err != nil {
					s.fail(err)
					dead = true
				} else {
					col.StageEnd(telemetry.StageWrite, tWrite)
					col.AddFramingBytes(n)
					s.written.Add(1)
				}
				spWrite.End()
			}
			// The payload buffer is recycled whether it was written or
			// discarded: bufio.Writer has copied what it needs by now.
			if r.payload != nil {
				putPayload(r.payload)
			}
		}
		tWait = col.StageStart()
		spWait = s.cfg.Trace.StartChild("sequencer_wait") //lint:spanend-ok ended on the next receive or by the final End below
	}
	spWait.End() // final gap: waiting out the results-channel close
}

// fail records the first error (in block order, since only the
// sequencer calls it for encoding/write failures) and flags the
// pipeline so workers stop encoding.
func (s *ParallelStreamWriter) fail(err error) {
	s.errMu.Lock()
	if s.firstErr == nil && err != errAborted {
		s.firstErr = err
	}
	s.errMu.Unlock()
	s.failed.Store(true)
}

func (s *ParallelStreamWriter) err() error {
	s.errMu.Lock()
	defer s.errMu.Unlock()
	return s.firstErr
}

// WriteBlock submits one block of Config().BlockSize() values for
// compression. The block is copied, so the caller may reuse it
// immediately. Encoding errors may surface on a later WriteBlock or on
// Close.
func (s *ParallelStreamWriter) WriteBlock(block []float64) error {
	if s.closed {
		return fmt.Errorf("core: write on closed ParallelStreamWriter")
	}
	if len(block) != s.cfg.BlockSize() {
		return fmt.Errorf("core: block has %d points, config wants %d", len(block), s.cfg.BlockSize())
	}
	if err := s.err(); err != nil {
		return err
	}
	if !s.started {
		s.start()
	}
	col := s.cfg.Collector
	tSplit := col.StageStart()
	spSplit := s.cfg.Trace.StartChild("block_split")
	var buf []float64
	if p, ok := s.blockPool.Get().(*[]float64); ok && cap(*p) >= len(block) {
		buf = (*p)[:len(block)]
	} else {
		buf = make([]float64, len(block))
	}
	copy(buf, block)
	s.jobs <- pswJob{seq: s.submitted, data: buf}
	s.submitted++
	spSplit.End()
	col.StageEnd(telemetry.StageBlockSplit, tSplit)
	return nil
}

// Blocks returns the number of blocks fully written to the underlying
// writer so far; after a successful Close it equals the number
// submitted.
func (s *ParallelStreamWriter) Blocks() uint64 { return s.written.Load() }

// Close drains the pipeline, flushes buffered output and returns the
// first error in block order, if any. The underlying writer is not
// closed. Close is idempotent.
func (s *ParallelStreamWriter) Close() error {
	if s.closed {
		return s.err()
	}
	s.closed = true
	if s.started {
		close(s.jobs)
		s.wg.Wait()
		close(s.results)
		<-s.seqDone
		// Merge per-worker stats in worker order for a deterministic
		// (order-independent anyway — Stats is pure counters) result.
		for _, ws := range s.workerStats {
			s.stats.Merge(ws)
		}
	}
	if err := s.err(); err != nil {
		return err
	}
	if err := s.w.Flush(); err != nil {
		s.fail(err)
		return err
	}
	return nil
}
