package core

import (
	"fmt"
	"math"

	"repro/internal/bitio"
	"repro/internal/encoding"
	"repro/internal/quant"
	"repro/internal/telemetry"
)

// Fused single-pass compression path.
//
// The staged encoder (block.go) quantizes every error-correction
// residual into the dense ecq arena and then re-reads that arena twice:
// once to count zero runs for the tree coders (or gather indices for
// the sparse coder) and once more if stats or tracing want a scan. For
// ERI data the overwhelming majority of quanta are zero, so almost all
// of that traffic is spent storing and re-loading zeros.
//
// The fused path never materializes the dense slice. The quantization
// pass appends only the surviving nonzero quanta to a compact
// (index, value) list — the zero population is implicit in the index
// gaps — and the emission stage streams straight from that list into
// the bit writer:
//
//   - dense tree coders: each gap becomes one Zeros(run) call (pure
//     zero bits, written in word-sized chunks) and each nonzero one
//     Value call through the same per-value emitters Encode uses;
//   - the sparse coder consumes the list as-is via EncodeSparseList;
//   - PQ and SQ go out through the batched WriteSignedN kernel, which
//     packs codewords into a local 64-bit register before spilling.
//
// Byte-identity with the staged path is structural, not coincidental:
// the residual expression, zero fast path, per-value code tables and
// cost algebra are shared code, zero-bit grouping is associative, and
// the cost counts are commutative sums, so regrouping the zero
// observations cannot change the method choice. The goldens and the
// TestFusedMatchesStaged battery enforce it.
//
// When stats, telemetry or debug logging are attached, the dense ecq
// arena is reconstructed by scattering the list (scatterECQ) so those
// consumers see exactly what the staged path would have handed them —
// observability costs one extra O(blockSize) pass only when someone is
// looking.

// analyzeFused runs pattern fit, P/S quantization and the
// error-correction pass like analyze, but gathers nonzero quanta into
// the nzIdx/nzQ arenas instead of filling the dense ecq arena. Stage
// timings, spans and error returns mirror analyze exactly.
//
//pastri:hotpath
func (e *BlockEncoder) analyzeFused(block []float64) (pb, ecbMax uint, err error) {
	cfg := e.cfg
	if len(block) != cfg.BlockSize() {
		return 0, 0, fmt.Errorf("core: block has %d points, config wants %d", len(block), cfg.BlockSize())
	}
	// 1. Pattern analysis (Sec. IV-A), shared with the staged path.
	tFit := e.col.StageStart()
	spFit := e.sp.StartChild("pattern_fit")
	res, err := e.pat.Analyze(block, cfg.NumSB, cfg.SBSize, cfg.Metric)
	spFit.End()
	e.col.StageEnd(telemetry.StagePatternFit, tFit)
	if err != nil {
		return 0, 0, err
	}
	tQuant := e.col.StageStart()
	spQuant := e.sp.StartChild("quantize")
	pat := block[res.PatternIndex*cfg.SBSize : (res.PatternIndex+1)*cfg.SBSize]

	// 2. Quantize pattern and scales through the four-lane kernel
	// (elementwise identical to the staged scalar loop).
	eb := cfg.ErrorBound
	pBin := 2 * eb
	pExt, _ := quant.MaxAbs(pat)
	pb = quant.PatternBits(pExt, eb)
	if pb > 64 {
		spQuant.End()
		return 0, 0, fmt.Errorf("core: pattern extremum %g needs %d bits at EB %g", pExt, pb, eb)
	}
	sb := pb
	sBin := quant.ScaleBinSize(sb)
	quant.QuantizeClampN(e.pq, pat, pBin, pb)
	quant.QuantizeClampN(e.sq, res.Scales, sBin, sb)

	// 3. Error correction, gathering nonzeros only. Residual expression,
	// zero fast path and quantizer are the staged loop's verbatim; the
	// post-divide q == 0 test replaces the staged store-of-zero, and the
	// skipped zero population is folded into the cost counts wholesale at
	// the end (AddZeros — commutative, so the CostSet cannot differ).
	pHat := e.pHat[:cfg.SBSize]
	for i := range pHat {
		pHat[i] = quant.Dequantize(e.pq[i], pBin)
	}
	ecBin := 2 * eb
	zeroCut := 0.499 * ecBin
	// ±1 fast path bounds: residuals with d/ecBin certainly in (1/2, 3/2)
	// quantize to exactly 1 (symmetrically -1) without the divide. The
	// margins absorb both float roundings (threshold multiply and
	// Quantize's divide): d > fl(0.501·ecBin) forces the computed
	// quotient above 0.501·(1−2⁻⁵³)² > 1/2, and d < fl(1.499·ecBin)
	// keeps it below 1.499·(1+2⁻⁵³)² < 3/2, so round() lands on 1 on
	// both routes — byte-identical to the staged path's Quantize call.
	// ECQ residuals are overwhelmingly ±1 quanta, which is what makes
	// the shortcut pay; boundary values fall back to the divide. The
	// margin argument needs a normal-range ecBin whose 1.499 multiple
	// cannot overflow, so tiny and huge bins disable the path
	// (oneLo = +Inf fails every test below).
	oneLo, oneHi := 0.501*ecBin, 1.499*ecBin
	if ecBin < 1e-300 {
		zeroCut = 0
		oneLo = math.Inf(1)
	} else if ecBin > 1e300 {
		oneLo = math.Inf(1)
	}
	ecbMax = 1
	// The counts live in a stack-local struct through the loop: the
	// inlined ObserveNonZero then updates registers, not memory the
	// compiler must assume the appends below could alias.
	var costs encoding.CostCounts
	nzIdx := e.nzIdx[:0]
	nzQ := e.nzQ[:0]
	for s := 0; s < cfg.NumSB; s++ {
		sHat := quant.Dequantize(e.sq[s], sBin)
		base := s * cfg.SBSize
		// Slicing by len(pHat) tells the prove pass len(sub) == len(pHat),
		// so pHat[i] below needs no bounds check.
		sub := block[base : base+len(pHat)]
		for i, x := range sub {
			d := x - sHat*pHat[i]
			if d < zeroCut && d > -zeroCut {
				continue
			}
			// The constant-argument ObserveNonZero calls in the ±1 arms
			// constant-fold after inlining (no sign test, no Len64).
			var q int64
			if d > oneLo && d < oneHi {
				q = 1
				if b := costs.ObserveNonZero(1); b > ecbMax {
					ecbMax = b
				}
			} else if d < -oneLo && d > -oneHi {
				q = -1
				if b := costs.ObserveNonZero(-1); b > ecbMax {
					ecbMax = b
				}
			} else {
				if q = quant.Quantize(d, ecBin); q == 0 {
					continue
				}
				if b := costs.ObserveNonZero(q); b > ecbMax {
					ecbMax = b
				}
			}
			nzIdx = append(nzIdx, int32(base+i))
			nzQ = append(nzQ, q)
		}
	}
	costs.AddZeros(uint64(cfg.BlockSize() - len(nzIdx)))
	e.costs = costs
	e.nzIdx, e.nzQ = nzIdx, nzQ
	spQuant.End()
	e.col.StageEnd(telemetry.StageQuantize, tQuant)
	if ecbMax > 63 {
		return 0, 0, fmt.Errorf("core: ECQ needs %d bits; data range too wide for EB %g", ecbMax, eb)
	}
	return pb, ecbMax, nil
}

// encodeBlockFused is EncodeBlock's fused implementation: one traversal
// from raw doubles to emitted bits, with no dense ECQ round-trip.
//
//pastri:hotpath
func (e *BlockEncoder) encodeBlockFused(w *bitio.Writer, block []float64) error {
	cfg := e.cfg
	startBits := w.BitLen()
	pb, ecbMax, err := e.analyzeFused(block)
	if err != nil {
		return err
	}
	tEnc := e.col.StageStart()
	spEnc := e.sp.StartChild("encode")

	// 4. Header fields.
	w.WriteBits(uint64(pb-1), pbFieldBits)
	w.WriteBits(uint64(ecbMax), ecbMaxFieldBits)

	// 5. PQ and SQ through the batched fixed-width kernel.
	w.WriteSignedN(e.pq, pb)
	sqStart := w.BitLen()
	w.WriteSignedN(e.sq, pb) // S_b = P_b (Sec. IV-B)
	ecqStart := w.BitLen()

	// 6. ECQ straight from the nonzero list. Type-0 blocks (empty list,
	// ECbMax == 1) spend no bits; otherwise the same exact-cost
	// sparse/dense decision as the staged path, priced from the counts
	// the quantize pass accumulated.
	usedSparse := false
	if ecbMax > 1 {
		idxBits := encoding.IndexBits(cfg.BlockSize())
		countBits := encoding.IndexBits(cfg.BlockSize() + 1)
		set := e.costs.CostSet(ecbMax, idxBits, countBits)
		if !cfg.DisableSparse && set.Sparse < set.Bits(cfg.Encoding) {
			usedSparse = true
			w.WriteBit(1)
			encoding.EncodeSparseList(w, e.nzIdx, e.nzQ, ecbMax, idxBits, countBits)
		} else {
			w.WriteBit(0)
			encoding.EncodeList(w, e.nzIdx, e.nzQ, cfg.BlockSize(), ecbMax, cfg.Encoding)
		}
	}

	spEnc.End()
	e.col.StageEnd(telemetry.StageEncode, tEnc)

	// Observability consumers read dense ECQ; rebuild it from the list
	// only when one is attached so the hot path stays scatter-free.
	if e.stats != nil || e.col.Enabled() || e.debugLog {
		e.scatterECQ()
		if e.stats != nil {
			e.stats.recordBlock(e.ecq, ecbMax,
				sqStart-startBits-uint64(pbFieldBits+ecbMaxFieldBits), // PQ bits
				ecqStart-sqStart,    // SQ bits
				w.BitLen()-ecqStart, // ECQ bits
				uint64(pbFieldBits+ecbMaxFieldBits), usedSparse)
		}
		if e.col.Enabled() || e.debugLog {
			kind := telemetry.EncType0
			if ecbMax > 1 {
				if usedSparse {
					kind = telemetry.EncSparse
				} else {
					kind = telemetry.EncDense
				}
			}
			e.recordTrace(block, pb, ecbMax, w.BitLen()-startBits, kind)
		}
	}
	return nil
}

// scatterECQ reconstructs the dense ecq arena from the nonzero list, so
// stats and trace consumers see the same slice the staged path fills.
func (e *BlockEncoder) scatterECQ() {
	ecq := e.ecq[:e.cfg.BlockSize()]
	for i := range ecq {
		ecq[i] = 0
	}
	for k, idx := range e.nzIdx {
		ecq[idx] = e.nzQ[k]
	}
}
