package core

import (
	"bytes"
	"encoding/binary"
	"flag"
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/encoding"
)

// Golden-format fixtures pin the on-disk stream format across PRs:
// committed compressed streams must decode to the committed
// reconstruction bit-exactly, and re-encoding the committed raw input
// must reproduce the committed stream byte-for-byte — at every worker
// count. Regenerate with
//
//	go test ./internal/core -run TestGolden -update-golden
//
// only on a deliberate, versioned format change.

var updateGolden = flag.Bool("update-golden", false, "rewrite golden fixtures")

const goldenDir = "testdata/golden"

// goldenRNG is a self-contained xorshift64* generator so fixture data
// never depends on math/rand's sequence.
type goldenRNG uint64

func (r *goldenRNG) next() float64 {
	x := uint64(*r)
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	*r = goldenRNG(x)
	return float64(x*0x2545F4914F6CDD1D>>11) / float64(1<<53) // [0, 1)
}

// goldenData builds deterministic ERI-shaped blocks: a shared rational
// pattern per sub-block (no math.Sin — plain IEEE ops only), geometric
// scales, and noise at a multiple of the quantization bin.
func goldenData(cfg Config, nblocks int, amp, noiseBins float64, seed uint64) []float64 {
	rng := goldenRNG(seed)
	data := make([]float64, nblocks*cfg.BlockSize())
	for b := 0; b < nblocks; b++ {
		for s := 0; s < cfg.NumSB; s++ {
			scale := amp / (1 + 0.5*float64(s)) * (1 - 2*float64((b+s)%2))
			base := b*cfg.BlockSize() + s*cfg.SBSize
			for i := 0; i < cfg.SBSize; i++ {
				x := float64(i+1) / float64(cfg.SBSize)
				p := x / (0.25 + x*x) // smooth, peaked, exactly reproducible
				noise := (rng.next() - 0.5) * 2 * cfg.ErrorBound * noiseBins
				data[base+i] = scale*p + noise
			}
		}
	}
	return data
}

type goldenCase struct {
	name string
	cfg  Config
	data func(cfg Config) []float64
}

func goldenCases() []goldenCase {
	return []goldenCase{
		{
			// The paper's headline shape: (dd|dd)-like geometry, GAMESS bound.
			name: "dd_eb1e-10",
			cfg:  Defaults(4, 9, 1e-10),
			data: func(cfg Config) []float64 { return goldenData(cfg, 3, 1e-6, 40, 1) },
		},
		{
			// Different sub-block split and a coarse bound: Type-0/1 rich.
			name: "split2x18_eb1e-3",
			cfg:  Defaults(2, 18, 1e-3),
			data: func(cfg Config) []float64 { return goldenData(cfg, 2, 0.5, 2, 2) },
		},
		{
			// All-zero blocks: the degenerate Type-0 path.
			name: "allzero_eb1e-12",
			cfg:  Defaults(4, 4, 1e-12),
			data: func(cfg Config) []float64 { return make([]float64, 2*cfg.BlockSize()) },
		},
		{
			// Denormal-heavy values near the bottom of the double range.
			name: "denormal_eb1e-315",
			cfg:  Defaults(3, 5, 1e-315),
			data: func(cfg Config) []float64 { return goldenData(cfg, 2, 1e-310, 8, 3) },
		},
		{
			// Non-default encoder, dense-only ECQ, tight bound.
			name: "tree1_dense_eb1e-8",
			cfg: Config{NumSB: 6, SBSize: 10, ErrorBound: 1e-8,
				Metric: Defaults(1, 1, 1).Metric, Encoding: encoding.Tree1, DisableSparse: true},
			data: func(cfg Config) []float64 { return goldenData(cfg, 4, 1e-4, 100, 4) },
		},
	}
}

func f64sToBytes(v []float64) []byte {
	out := make([]byte, 8*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint64(out[i*8:], math.Float64bits(x))
	}
	return out
}

func bytesToF64s(t *testing.T, b []byte) []float64 {
	t.Helper()
	if len(b)%8 != 0 {
		t.Fatalf("fixture length %d not a multiple of 8", len(b))
	}
	out := make([]float64, len(b)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return out
}

func goldenPaths(name string) (pstr, raw, dec string) {
	return filepath.Join(goldenDir, name+".pstr"),
		filepath.Join(goldenDir, name+".raw.f64"),
		filepath.Join(goldenDir, name+".dec.f64")
}

func TestGoldenStreams(t *testing.T) {
	for _, gc := range goldenCases() {
		gc := gc
		t.Run(gc.name, func(t *testing.T) {
			pstrPath, rawPath, decPath := goldenPaths(gc.name)
			data := gc.data(gc.cfg)

			if *updateGolden {
				comp, err := CompressWorkers(data, gc.cfg, 1, nil)
				if err != nil {
					t.Fatal(err)
				}
				dec, err := Decompress(comp, 1)
				if err != nil {
					t.Fatal(err)
				}
				if err := os.MkdirAll(goldenDir, 0o755); err != nil {
					t.Fatal(err)
				}
				for p, b := range map[string][]byte{
					pstrPath: comp, rawPath: f64sToBytes(data), decPath: f64sToBytes(dec),
				} {
					if err := os.WriteFile(p, b, 0o644); err != nil {
						t.Fatal(err)
					}
				}
				t.Logf("rewrote %s (%d bytes)", pstrPath, len(comp))
				return
			}

			wantComp, err := os.ReadFile(pstrPath)
			if err != nil {
				t.Fatalf("missing fixture (run with -update-golden): %v", err)
			}
			wantRawB, err := os.ReadFile(rawPath)
			if err != nil {
				t.Fatal(err)
			}
			wantDecB, err := os.ReadFile(decPath)
			if err != nil {
				t.Fatal(err)
			}
			wantRaw := bytesToF64s(t, wantRawB)
			wantDec := bytesToF64s(t, wantDecB)

			// The generator itself must still be deterministic.
			if !bytes.Equal(f64sToBytes(data), wantRawB) {
				t.Fatal("golden raw input drifted: generator is no longer deterministic")
			}

			// Re-encode to identical bytes, serial and parallel.
			for _, workers := range []int{1, 2, 4} {
				comp, err := CompressWorkers(wantRaw, gc.cfg, workers, nil)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if !bytes.Equal(comp, wantComp) {
					t.Fatalf("workers=%d: re-encoded stream differs from golden %s", workers, pstrPath)
				}
			}

			// Decode the committed stream bit-exactly.
			dec, err := Decompress(wantComp, 2)
			if err != nil {
				t.Fatal(err)
			}
			if len(dec) != len(wantDec) {
				t.Fatalf("decoded %d values, golden has %d", len(dec), len(wantDec))
			}
			for i := range dec {
				if math.Float64bits(dec[i]) != math.Float64bits(wantDec[i]) {
					t.Fatalf("value %d: decoded %x, golden %x",
						i, math.Float64bits(dec[i]), math.Float64bits(wantDec[i]))
				}
			}

			// And the decode must honor the recorded error bound vs the raw.
			for i := range dec {
				if math.Abs(dec[i]-wantRaw[i]) > gc.cfg.ErrorBound {
					t.Fatalf("value %d: |err| %g > EB %g",
						i, math.Abs(dec[i]-wantRaw[i]), gc.cfg.ErrorBound)
				}
			}
		})
	}
}

// goldenStreamFiles returns the committed .pstr fixtures, for reuse by
// the corruption and fuzz batteries.
func goldenStreamFiles(t testing.TB) map[string][]byte {
	t.Helper()
	entries, err := os.ReadDir(goldenDir)
	if err != nil {
		t.Fatalf("golden fixtures missing: %v", err)
	}
	out := map[string][]byte{}
	for _, e := range entries {
		if filepath.Ext(e.Name()) != ".pstr" {
			continue
		}
		b, err := os.ReadFile(filepath.Join(goldenDir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		out[e.Name()] = b
	}
	if len(out) == 0 {
		t.Fatal("no .pstr fixtures under testdata/golden")
	}
	return out
}
