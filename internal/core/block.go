package core

import (
	"context"
	"fmt"
	"log/slog"
	"math"

	"repro/internal/bitio"
	"repro/internal/encoding"
	"repro/internal/pattern"
	"repro/internal/quant"
	"repro/internal/telemetry"
	"repro/internal/telemetry/trace"
)

// Block bitstream layout (all fields bit-packed, MSB first):
//
//	Pb      6 bits   pattern/scale bit width − 1   (1..64)
//	ECbMax  6 bits   widest ECQ bin (1 ⇒ Type-0 block, no ECQ section)
//	PQ      SBSize × Pb bits (two's complement)
//	SQ      NumSB  × Pb bits (two's complement; S_b = P_b, Sec. IV-B)
//	[if ECbMax > 1]
//	  sparse 1 bit
//	  ECQ    dense: tree-coded; sparse: count + (index,value) pairs
//
// Everything else (EB, geometry, metric, encoding method) lives in the
// stream header; a block is decodable given the Config alone, which is
// what makes blocks independently (de)compressible in parallel.

const (
	pbFieldBits     = 6
	ecbMaxFieldBits = 6
)

// BlockEncoder compresses blocks one at a time, reusing scratch buffers.
// It is not safe for concurrent use; stream compression creates one per
// worker.
type BlockEncoder struct {
	cfg Config
	col *telemetry.Collector // from cfg; nil ⇒ no telemetry
	sp  *trace.Span          // from cfg; nil ⇒ no tracing
	// debugLog caches Logger.Enabled(Debug) at reset time so the
	// per-block gate is one boolean test, not an interface call.
	debugLog bool
	// scratch arenas, sized once in reset and reused for every block
	pq    []int64
	sq    []int64
	ecq   []int64
	nzIdx []int32 // fused path: block positions of nonzero ECQ, ascending
	nzQ   []int64 // fused path: the matching nonzero quanta
	pHat  []float64
	recon []float64 // flight-recorder capture arena; grown only when a recorder wants data
	pat   pattern.Scratch
	costs encoding.CostCounts // filled by analyze, priced in EncodeBlock
	stats *Stats              // optional, may be nil
}

// NewBlockEncoder returns an encoder for the given configuration.
func NewBlockEncoder(cfg Config) (*BlockEncoder, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	e := &BlockEncoder{}
	e.reset(cfg)
	return e, nil
}

// reset re-points the encoder at cfg (which must already be validated)
// and sizes the scratch arenas, reusing their backing arrays when the
// geometry allows. The encoder pool uses this to recycle encoders
// across blocks and calls.
func (e *BlockEncoder) reset(cfg Config) {
	e.cfg = cfg
	e.col = cfg.Collector
	e.sp = cfg.Trace
	e.debugLog = logEnabled(cfg.Logger, slog.LevelDebug)
	e.stats = nil
	e.pq = growI64(e.pq, cfg.SBSize)
	e.sq = growI64(e.sq, cfg.NumSB)
	e.ecq = growI64(e.ecq, cfg.BlockSize())
	e.nzIdx = growI32(e.nzIdx, cfg.BlockSize())
	e.nzQ = growI64(e.nzQ, cfg.BlockSize())
	e.pHat = growFloat64(e.pHat, cfg.SBSize)
}

// growI64 returns s resized to n elements, reallocating only when the
// capacity is insufficient. Contents are unspecified.
func growI64(s []int64, n int) []int64 {
	if cap(s) < n {
		return make([]int64, n) //lint:hotalloc2-ok grow path: reallocates only until scratch reaches steady-state capacity
	}
	return s[:n]
}

func growI32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n) //lint:hotalloc2-ok grow path: reallocates only until scratch reaches steady-state capacity
	}
	return s[:n]
}

func growFloat64(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n) //lint:hotalloc2-ok grow path: reallocates only until scratch reaches steady-state capacity
	}
	return s[:n]
}

// CollectStats attaches a Stats sink; pass nil to detach.
func (e *BlockEncoder) CollectStats(s *Stats) { e.stats = s }

// analyze runs the pattern-scaling and quantization stages
// (Sec. IV-A/IV-B) as one fused traversal: pattern fit into the
// encoder's scratch, pattern/scale quantization, and an error-correction
// pass that quantizes, tracks the widest bin and accumulates the cost
// counts for every encoding method (consumed by EncodeBlock) in a
// single scan. It fills the scratch buffers pq, sq and ecq, and returns
// the pattern/scale bit width P_b and the widest ECQ bin.
//
//pastri:hotpath
func (e *BlockEncoder) analyze(block []float64) (pb, ecbMax uint, err error) {
	cfg := e.cfg
	if len(block) != cfg.BlockSize() {
		return 0, 0, fmt.Errorf("core: block has %d points, config wants %d", len(block), cfg.BlockSize())
	}
	// 1. Pattern analysis (Sec. IV-A), writing into encoder-owned scratch.
	tFit := e.col.StageStart()
	spFit := e.sp.StartChild("pattern_fit")
	res, err := e.pat.Analyze(block, cfg.NumSB, cfg.SBSize, cfg.Metric)
	spFit.End()
	e.col.StageEnd(telemetry.StagePatternFit, tFit)
	if err != nil {
		return 0, 0, err
	}
	tQuant := e.col.StageStart()
	spQuant := e.sp.StartChild("quantize")
	pat := block[res.PatternIndex*cfg.SBSize : (res.PatternIndex+1)*cfg.SBSize]

	// 2. Quantize the pattern with Pbinsize = 2·EB (Sec. IV-B practical
	// method) and the scales with S_b = P_b.
	eb := cfg.ErrorBound
	pBin := 2 * eb
	pExt, _ := quant.MaxAbs(pat)
	pb = quant.PatternBits(pExt, eb)
	if pb > 64 {
		spQuant.End()
		return 0, 0, fmt.Errorf("core: pattern extremum %g needs %d bits at EB %g", pExt, pb, eb)
	}
	sb := pb
	sBin := quant.ScaleBinSize(sb)
	for i, p := range pat {
		e.pq[i] = quant.ClampSigned(quant.Quantize(p, pBin), pb)
	}
	for s, sc := range res.Scales {
		e.sq[s] = quant.ClampSigned(quant.Quantize(sc, sBin), sb)
	}

	// 3. Error correction against the *reconstructed* scaled pattern, so
	// the EC term absorbs the quantization error of P and S (eq. (11)).
	// The reconstructed pattern is hoisted out of the sub-block loop, and
	// the loop body feeds each quantum to the cost accumulator, whose
	// Observe returns the bin number — so quantization, ECb_max tracking
	// and method pricing all ride the same pass over the block.
	pHat := e.pHat[:cfg.SBSize]
	for i := range pHat {
		pHat[i] = quant.Dequantize(e.pq[i], pBin)
	}
	ecBin := 2 * eb
	// Most residuals quantize to zero (that is what makes ECQ compress),
	// and the divide in Quantize dominates this loop. A residual d with
	// |d| < 0.499·ecBin provably rounds to quantum 0: even after the two
	// roundings (the threshold multiply and Quantize's divide) the
	// quotient magnitude stays below 0.499·(1+2⁻⁵³)² < 0.5, so
	// math.Round yields ±0 and int64(±0) is 0 — byte-identical to the
	// slow path. Residuals in [0.499, 0.5)·ecBin just take the divide and
	// still produce 0. The margin argument assumes a normal-range
	// threshold, so absurdly tiny bins fall back to always dividing.
	zeroCut := 0.499 * ecBin
	if ecBin < 1e-300 {
		zeroCut = 0
	}
	ecbMax = 1
	e.costs.Reset()
	for s := 0; s < cfg.NumSB; s++ {
		sHat := quant.Dequantize(e.sq[s], sBin)
		base := s * cfg.SBSize
		sub := block[base : base+cfg.SBSize]
		out := e.ecq[base : base+cfg.SBSize]
		for i, x := range sub {
			d := x - sHat*pHat[i]
			var q int64
			if !(d < zeroCut && d > -zeroCut) {
				q = quant.Quantize(d, ecBin)
			}
			out[i] = q
			if b := e.costs.Observe(q); b > ecbMax {
				ecbMax = b
			}
		}
	}
	spQuant.End()
	e.col.StageEnd(telemetry.StageQuantize, tQuant)
	if ecbMax > 63 {
		return 0, 0, fmt.Errorf("core: ECQ needs %d bits; data range too wide for EB %g", ecbMax, eb)
	}
	return pb, ecbMax, nil
}

// ECQCodes exposes the quantized error-correction values and the widest
// bin a block would produce under this configuration — the raw material
// of the encoder-design analyses (Fig. 6 histograms, the Huffman
// comparison of Sec. IV-C). The returned slice is a copy.
func (e *BlockEncoder) ECQCodes(block []float64) ([]int64, uint, error) {
	_, ecbMax, err := e.analyze(block)
	if err != nil {
		return nil, 0, err
	}
	return append([]int64(nil), e.ecq...), ecbMax, nil
}

// EncodeBlock appends the compressed representation of block to w.
// len(block) must equal cfg.BlockSize().
//
// Two implementations produce the stream: the fused single-pass path
// (fused.go), which carries nonzero quanta as a compact list and never
// materializes dense ECQ scratch, and the staged reference path below,
// which writes every stage's output into scratch arenas before the
// next stage reads it. They are byte-identical — the goldens and
// TestFusedMatchesStaged are the oracle — and Config.DisableFused
// selects the staged one for A/B runs.
//
//pastri:hotpath
func (e *BlockEncoder) EncodeBlock(w *bitio.Writer, block []float64) error {
	if e.cfg.DisableFused {
		return e.encodeBlockStaged(w, block)
	}
	return e.encodeBlockFused(w, block)
}

// encodeBlockStaged is the staged reference encoder: analyze fills the
// pq/sq/ecq arenas, then the emission stage walks them. Kept verbatim
// as the semantic oracle for the fused path.
//
//pastri:hotpath
func (e *BlockEncoder) encodeBlockStaged(w *bitio.Writer, block []float64) error {
	cfg := e.cfg
	startBits := w.BitLen()
	pb, ecbMax, err := e.analyze(block)
	if err != nil {
		return err
	}
	tEnc := e.col.StageStart()
	spEnc := e.sp.StartChild("encode")

	// 4. Emit header fields.
	w.WriteBits(uint64(pb-1), pbFieldBits)
	w.WriteBits(uint64(ecbMax), ecbMaxFieldBits)

	// 5. Emit PQ and SQ fixed-length.
	for _, q := range e.pq {
		w.WriteSigned(q, pb)
	}
	sqStart := w.BitLen()
	for _, q := range e.sq {
		w.WriteSigned(q, pb) // S_b = P_b (Sec. IV-B)
	}
	ecqStart := w.BitLen()

	// 6. Emit ECQ: Type-0 blocks (all quanta zero) spend no bits at all;
	// otherwise pick sparse or dense representation by exact cost.
	usedSparse := false
	if ecbMax > 1 {
		idxBits := encoding.IndexBits(cfg.BlockSize())
		countBits := encoding.IndexBits(cfg.BlockSize() + 1)
		// The cost counts were accumulated during analyze's quantization
		// pass; pricing every method is O(1) algebra from here.
		set := e.costs.CostSet(ecbMax, idxBits, countBits)
		dense := set.Bits(cfg.Encoding)
		sparse := set.Sparse
		if !cfg.DisableSparse && sparse < dense {
			usedSparse = true
			w.WriteBit(1)
			encoding.EncodeSparse(w, e.ecq, ecbMax, idxBits, countBits)
		} else {
			w.WriteBit(0)
			encoding.Encode(w, e.ecq, ecbMax, cfg.Encoding)
		}
	}

	spEnc.End()
	e.col.StageEnd(telemetry.StageEncode, tEnc)

	if e.stats != nil {
		e.stats.recordBlock(e.ecq, ecbMax,
			sqStart-startBits-uint64(pbFieldBits+ecbMaxFieldBits), // PQ bits
			ecqStart-sqStart,    // SQ bits
			w.BitLen()-ecqStart, // ECQ bits
			uint64(pbFieldBits+ecbMaxFieldBits), usedSparse)
	}
	if e.col.Enabled() || e.debugLog {
		kind := telemetry.EncType0
		if ecbMax > 1 {
			if usedSparse {
				kind = telemetry.EncSparse
			} else {
				kind = telemetry.EncDense
			}
		}
		e.recordTrace(block, pb, ecbMax, w.BitLen()-startBits, kind)
	}
	return nil
}

// recordTrace computes the per-block trace record — exponent span,
// chosen encoding, ECQ summary, bytes in/out and error-bound slack —
// and hands it to the collector. Only called when a collector is
// attached; the slack recomputation reuses the scratch buffers analyze
// just filled (pq via pHat, sq, ecq), so it costs one extra pass over
// the block. When an attached flight recorder wants block data, the
// same pass also materializes the reconstruction into the recon arena
// so an anomaly can be captured for offline zcheck replay.
func (e *BlockEncoder) recordTrace(block []float64, pb, ecbMax uint, payloadBits uint64, kind telemetry.BlockEncoding) {
	cfg := e.cfg
	minExp, maxExp, seen := 0, 0, false
	ecqNonZero := 0
	for _, v := range block {
		if v == 0 { //lint:floatcmp-ok exact zero test selects values that have a binary exponent
			continue
		}
		exp := quant.Exponent(v) // math.Frexp's exponent, without the split
		if !seen {
			minExp, maxExp, seen = exp, exp, true
		} else if exp < minExp {
			minExp = exp
		} else if exp > maxExp {
			maxExp = exp
		}
	}
	for _, q := range e.ecq {
		if q != 0 {
			ecqNonZero++
		}
	}
	wantData := e.col.FlightWantsData()
	var recon []float64
	if wantData {
		// Grown only on the flight-recorder path so the default
		// telemetry path stays allocation-free after warmup.
		e.recon = growFloat64(e.recon, cfg.BlockSize())
		recon = e.recon
	}
	eb := cfg.ErrorBound
	sBin := quant.ScaleBinSize(pb) // S_b = P_b
	ecBin := 2 * eb
	pHat := e.pHat[:cfg.SBSize]
	maxRes := 0.0
	for s := 0; s < cfg.NumSB; s++ {
		sHat := quant.Dequantize(e.sq[s], sBin)
		base := s * cfg.SBSize
		for i := 0; i < cfg.SBSize; i++ {
			rec := sHat*pHat[i] + quant.Dequantize(e.ecq[base+i], ecBin)
			if recon != nil {
				recon[base+i] = rec
			}
			if r := math.Abs(block[base+i] - rec); r > maxRes {
				maxRes = r
			}
		}
	}
	id := e.col.RecordBlockData(telemetry.TraceRecord{
		SubBlocks:  cfg.NumSB,
		ExpSpan:    maxExp - minExp,
		Encoding:   kind,
		BytesIn:    len(block) * 8,
		BytesOut:   int((payloadBits + 7) / 8),
		EBSlack:    eb - maxRes,
		ECQNonZero: ecqNonZero,
		ECbMax:     int(ecbMax),
	}, block, recon)
	if e.debugLog {
		e.cfg.Logger.LogAttrs(context.Background(), slog.LevelDebug, "block compressed",
			slog.Uint64("block", id),
			slog.String("class", quartetClass(cfg.NumSB, cfg.SBSize)),
			slog.String("encoding", kind.String()),
			slog.Int("bytes_in", len(block)*8),
			slog.Int("bytes_out", int((payloadBits+7)/8)),
			slog.Float64("eb_slack", eb-maxRes),
			slog.Int("ecq_nonzero", ecqNonZero),
			slog.Int("ecb_max", int(ecbMax)))
	}
}

// BlockDecoder decompresses blocks, reusing scratch buffers. Not safe for
// concurrent use.
type BlockDecoder struct {
	cfg  Config
	col  *telemetry.Collector // from cfg; nil ⇒ no telemetry
	pq   []int64
	sq   []int64
	ecq  []int64
	pHat []float64
}

// NewBlockDecoder returns a decoder for the given configuration.
func NewBlockDecoder(cfg Config) (*BlockDecoder, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	d := &BlockDecoder{}
	d.reset(cfg)
	return d, nil
}

// reset re-points the decoder at cfg (which must already be validated),
// sizing the scratch arenas and reusing backing arrays when possible.
func (d *BlockDecoder) reset(cfg Config) {
	d.cfg = cfg
	d.col = cfg.Collector
	d.pq = growI64(d.pq, cfg.SBSize)
	d.sq = growI64(d.sq, cfg.NumSB)
	d.ecq = growI64(d.ecq, cfg.BlockSize())
	d.pHat = growFloat64(d.pHat, cfg.SBSize)
}

// DecodeBlock reads one block from r into dst, which must have
// cfg.BlockSize() elements.
//
//pastri:hotpath
func (d *BlockDecoder) DecodeBlock(r *bitio.Reader, dst []float64) error {
	cfg := d.cfg
	if len(dst) != cfg.BlockSize() {
		return fmt.Errorf("core: dst has %d points, config wants %d", len(dst), cfg.BlockSize())
	}
	tDec := d.col.StageStart()
	defer d.col.StageEnd(telemetry.StageDecode, tDec)
	pbRaw, err := r.ReadBits(pbFieldBits)
	if err != nil {
		return err
	}
	pb := uint(pbRaw) + 1
	ecbRaw, err := r.ReadBits(ecbMaxFieldBits)
	if err != nil {
		return err
	}
	ecbMax := uint(ecbRaw)
	if ecbMax == 0 || ecbMax > 63 {
		return fmt.Errorf("core: corrupt block header: ECbMax=%d", ecbMax)
	}

	for i := range d.pq {
		q, err := r.ReadSigned(pb)
		if err != nil {
			return err
		}
		d.pq[i] = q
	}
	sb := pb
	for s := range d.sq {
		q, err := r.ReadSigned(sb)
		if err != nil {
			return err
		}
		d.sq[s] = q
	}
	if ecbMax > 1 {
		sparse, err := r.ReadBit()
		if err != nil {
			return err
		}
		idxBits := encoding.IndexBits(cfg.BlockSize())
		countBits := encoding.IndexBits(cfg.BlockSize() + 1)
		if sparse == 1 {
			if err := encoding.DecodeSparse(r, d.ecq, ecbMax, idxBits, countBits); err != nil {
				return err
			}
		} else {
			if err := encoding.Decode(r, d.ecq, ecbMax, cfg.Encoding); err != nil {
				return err
			}
		}
	} else {
		for i := range d.ecq {
			d.ecq[i] = 0
		}
	}

	eb := cfg.ErrorBound
	pBin := 2 * eb
	sBin := quant.ScaleBinSize(sb)
	ecBin := 2 * eb
	pHat := d.pHat[:cfg.SBSize]
	for i := range pHat {
		pHat[i] = quant.Dequantize(d.pq[i], pBin)
	}
	for s := 0; s < cfg.NumSB; s++ {
		sHat := quant.Dequantize(d.sq[s], sBin)
		base := s * cfg.SBSize
		for i := 0; i < cfg.SBSize; i++ {
			dst[base+i] = sHat*pHat[i] + quant.Dequantize(d.ecq[base+i], ecBin)
		}
	}
	return nil
}

// MaxBlockError returns the worst-case reconstruction error the codec can
// introduce for the given configuration: exactly EB (up to floating-point
// rounding in the reconstruction arithmetic).
func MaxBlockError(cfg Config) float64 {
	// One mid-tread quantization of the EC residual with bin 2·EB.
	return cfg.ErrorBound * (1 + 4*math.Nextafter(1, 2) - 4)
}
