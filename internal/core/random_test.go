package core

import (
	"math"
	"math/rand"
	"testing"
)

func TestBlockReaderRandomAccess(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	cfg := Defaults(6, 36, 1e-10)
	const nblocks = 23
	data := make([]float64, 0, nblocks*cfg.BlockSize())
	for b := 0; b < nblocks; b++ {
		amp := math.Pow(10, float64(rng.Intn(8)-10))
		data = append(data, patternedBlock(rng, 6, 36, amp, amp*1e-4, 0.02)...)
	}
	comp, err := Compress(data, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	br, err := NewBlockReader(comp)
	if err != nil {
		t.Fatal(err)
	}
	if br.NumBlocks() != nblocks {
		t.Fatalf("NumBlocks = %d, want %d", br.NumBlocks(), nblocks)
	}
	if br.Config().BlockSize() != cfg.BlockSize() {
		t.Fatalf("BlockSize = %d", br.Config().BlockSize())
	}
	dst := make([]float64, cfg.BlockSize())
	// Access blocks in random order, repeatedly.
	for trial := 0; trial < 100; trial++ {
		b := rng.Intn(nblocks)
		if err := br.ReadBlock(b, dst); err != nil {
			t.Fatalf("block %d: %v", b, err)
		}
		base := b * cfg.BlockSize()
		for i, v := range dst {
			if math.Abs(v-data[base+i]) > cfg.ErrorBound*(1+1e-9) {
				t.Fatalf("block %d point %d: error %g", b, i, math.Abs(v-data[base+i]))
			}
		}
	}
	// Compressed sizes must sum to less than the stream length.
	total := 0
	for b := 0; b < nblocks; b++ {
		if sz := br.CompressedBlockBytes(b); sz <= 0 {
			t.Fatalf("block %d compressed size %d", b, sz)
		} else {
			total += sz
		}
	}
	if total >= len(comp) {
		t.Fatalf("payload bytes %d not less than stream %d", total, len(comp))
	}
}

func TestBlockReaderBounds(t *testing.T) {
	cfg := Defaults(2, 2, 1e-10)
	comp, err := Compress(make([]float64, 8), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	br, err := NewBlockReader(comp)
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]float64, 4)
	if err := br.ReadBlock(-1, dst); err == nil {
		t.Error("negative index accepted")
	}
	if err := br.ReadBlock(2, dst); err == nil {
		t.Error("out-of-range index accepted")
	}
	if err := br.ReadBlock(0, make([]float64, 3)); err == nil {
		t.Error("wrong dst size accepted")
	}
}

func TestBlockReaderCorruptStream(t *testing.T) {
	if _, err := NewBlockReader([]byte("garbage")); err == nil {
		t.Error("garbage accepted")
	}
	cfg := Defaults(2, 2, 1e-10)
	comp, err := Compress(make([]float64, 8), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewBlockReader(comp[:len(comp)-1]); err == nil {
		t.Error("truncated stream accepted")
	}
}
