package core

import (
	"sync"
)

// Pools recycling per-worker kernel state across blocks and calls.
// A BlockEncoder/BlockDecoder owns sizable scratch arenas (pq, sq, ecq,
// pHat, pattern scratch), and every compressed block needs a payload
// buffer; recycling all three means steady-state compression performs
// zero per-block heap allocation (enforced by TestCompressWorkersAllocs
// and TestDecodeBlockAllocs). The arenas adapt to the largest geometry
// seen via reset, so mixed-Config callers share the pools safely.

var encoderPool sync.Pool

// getEncoder returns a pooled encoder reset to cfg, which must already
// be validated (the pool path cannot report a validation error).
func getEncoder(cfg Config) *BlockEncoder {
	if v := encoderPool.Get(); v != nil {
		e := v.(*BlockEncoder)
		e.reset(cfg)
		return e
	}
	e := &BlockEncoder{}
	e.reset(cfg)
	return e
}

// putEncoder returns an encoder to the pool, dropping references the
// pool must not retain (collector, stats sink, request-scoped span).
func putEncoder(e *BlockEncoder) {
	e.col = nil
	e.sp = nil
	e.stats = nil
	encoderPool.Put(e)
}

var decoderPool sync.Pool

// getDecoder is the decode-side counterpart of getEncoder.
func getDecoder(cfg Config) *BlockDecoder {
	if v := decoderPool.Get(); v != nil {
		d := v.(*BlockDecoder)
		d.reset(cfg)
		return d
	}
	d := &BlockDecoder{}
	d.reset(cfg)
	return d
}

func putDecoder(d *BlockDecoder) {
	d.col = nil
	decoderPool.Put(d)
}

// payloadPool recycles per-block payload buffers. Pointers (not slices)
// travel through the pool so a Get/Put cycle allocates nothing once the
// pool is warm; callers append into the pointed-to slice and hand the
// same pointer back via putPayload after the payload has been copied
// into the assembled stream.
var payloadPool sync.Pool

func getPayload() *[]byte {
	if v := payloadPool.Get(); v != nil {
		return v.(*[]byte)
	}
	return new([]byte)
}

func putPayload(p *[]byte) {
	payloadPool.Put(p)
}

// putPayloads returns a whole compression call's payload buffers.
func putPayloads(ps []*[]byte) {
	for _, p := range ps {
		if p != nil {
			putPayload(p)
		}
	}
}
