package core

import (
	"bytes"
	"io"
	"math"
	"math/rand"
	"strings"
	"testing"
)

func TestStreamWriterReaderRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	cfg := Defaults(6, 36, 1e-10)
	const nblocks = 15
	blocks := make([][]float64, nblocks)
	for b := range blocks {
		amp := math.Pow(10, float64(rng.Intn(8)-10))
		blocks[b] = patternedBlock(rng, 6, 36, amp, amp*1e-4, 0.01)
	}

	var buf bytes.Buffer
	sw, err := NewStreamWriter(&buf, cfg)
	if err != nil {
		t.Fatal(err)
	}
	stats := NewStats()
	sw.CollectStats(stats)
	for _, blk := range blocks {
		if err := sw.WriteBlock(blk); err != nil {
			t.Fatal(err)
		}
	}
	if sw.Blocks() != nblocks {
		t.Fatalf("Blocks() = %d", sw.Blocks())
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	if stats.Blocks != nblocks {
		t.Fatalf("stats recorded %d blocks", stats.Blocks)
	}
	if err := sw.Close(); err != nil {
		t.Fatal("second Close should be a no-op")
	}
	if err := sw.WriteBlock(blocks[0]); err == nil {
		t.Fatal("write after Close accepted")
	}

	// Sequential read back.
	sr, err := NewStreamReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if sr.Config().BlockSize() != cfg.BlockSize() {
		t.Fatalf("config mismatch")
	}
	dst := make([]float64, cfg.BlockSize())
	for b := 0; b < nblocks; b++ {
		if err := sr.ReadBlock(dst); err != nil {
			t.Fatalf("block %d: %v", b, err)
		}
		for i, v := range dst {
			if math.Abs(v-blocks[b][i]) > cfg.ErrorBound*(1+1e-9) {
				t.Fatalf("block %d point %d out of bound", b, i)
			}
		}
	}
	if err := sr.ReadBlock(dst); err != io.EOF {
		t.Fatalf("expected io.EOF, got %v", err)
	}
	if sr.BlocksRead() != nblocks {
		t.Fatalf("BlocksRead = %d", sr.BlocksRead())
	}

	// The whole streamed file also decompresses via the batch API...
	flat, err := Decompress(buf.Bytes(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(flat) != nblocks*cfg.BlockSize() {
		t.Fatalf("batch decompress length %d", len(flat))
	}
	// ...and supports random access.
	br, err := NewBlockReader(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if br.NumBlocks() != nblocks {
		t.Fatalf("BlockReader sees %d blocks", br.NumBlocks())
	}
	if err := br.ReadBlock(nblocks-1, dst); err != nil {
		t.Fatal(err)
	}
}

func TestStreamReaderOfBatchStream(t *testing.T) {
	// A batch-compressed stream must be readable via StreamReader too.
	cfg := Defaults(3, 4, 1e-9)
	data := []float64{
		1e-6, 2e-6, -1e-6, 0, 5e-7, 5e-7, -5e-7, 0, 1e-7, 0, 0, 0,
		2e-6, 4e-6, -2e-6, 0, 1e-6, 1e-6, -1e-6, 0, 2e-7, 0, 0, 0,
	}
	comp, err := Compress(data, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	sr, err := NewStreamReader(bytes.NewReader(comp))
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]float64, 12)
	for b := 0; b < 2; b++ {
		if err := sr.ReadBlock(dst); err != nil {
			t.Fatalf("block %d: %v", b, err)
		}
	}
	if err := sr.ReadBlock(dst); err != io.EOF {
		t.Fatalf("expected io.EOF, got %v", err)
	}
}

func TestStreamReaderErrors(t *testing.T) {
	if _, err := NewStreamReader(strings.NewReader("short")); err == nil {
		t.Error("short header accepted")
	}
	cfg := Defaults(2, 2, 1e-10)
	var buf bytes.Buffer
	sw, err := NewStreamWriter(&buf, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.WriteBlock(make([]float64, 4)); err != nil {
		t.Fatal(err)
	}
	if err := sw.WriteBlock(make([]float64, 3)); err == nil {
		t.Error("wrong block size accepted")
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	// Truncated payload.
	trunc := buf.Bytes()[:buf.Len()-1]
	sr, err := NewStreamReader(bytes.NewReader(trunc))
	if err != nil {
		t.Fatal(err)
	}
	if err := sr.ReadBlock(make([]float64, 4)); err == nil {
		t.Error("truncated payload accepted")
	}
	// Invalid config in writer.
	if _, err := NewStreamWriter(io.Discard, Config{}); err == nil {
		t.Error("invalid config accepted")
	}
}
