// Package core implements the PaSTRI compression algorithm (Sec. IV of
// the paper): pattern-scaled, error-bounded lossy compression of blocked
// floating-point data, tuned for two-electron repulsion integral (ERI)
// shell-quartet blocks but applicable to any dataset whose blocks consist
// of sub-blocks repeating one latent pattern up to a scalar.
//
// A block of numSB·sbSize doubles is represented as
//
//	data[s·sbSize+i] ≈ S[s] · P[i],
//
// with the pattern P (one sub-block, quantized to PQ), the scaling
// coefficients S (quantized to SQ) and per-point error-correction quanta
// ECQ = round((data − Ŝ·P̂)/(2·EB)) making the representation exact to
// within the user's absolute error bound EB. The EC stage absorbs both
// natural deviations and the quantization error of P and S, so the bound
// holds unconditionally.
package core

import (
	"context"
	"fmt"
	"log/slog"
	"math"

	"repro/internal/encoding"
	"repro/internal/pattern"
	"repro/internal/telemetry"
	"repro/internal/telemetry/trace"
)

// Config controls compression. The zero value is not valid; use Defaults
// to start from the paper's shipped configuration.
type Config struct {
	// NumSB is the number of sub-blocks per block (Na·Nb for an ERI
	// shell-quartet block).
	NumSB int
	// SBSize is the number of points per sub-block (Nc·Nd).
	SBSize int
	// ErrorBound is the absolute error bound (EB). Typical GAMESS
	// requirement: 1e-10.
	ErrorBound float64
	// Metric selects the pattern-scaling metric (Sec. IV-A). The paper
	// ships ER.
	Metric pattern.Metric
	// Encoding selects the ECQ encoder (Sec. IV-C). The paper ships
	// Tree 5.
	Encoding encoding.Method
	// DisableSparse forces the dense ECQ representation, for ablation of
	// the sparse/dense adaptive choice.
	DisableSparse bool
	// DisableFused routes compression through the staged reference
	// encoder (materialized ECQ scratch, per-code emission) instead of
	// the fused single-pass path. The two produce byte-identical
	// streams; the switch exists for A/B benchmarking and for the
	// identity battery. Runtime-only — never serialized into streams,
	// and irrelevant to decompression.
	DisableFused bool
	// Workers caps parallelism for stream compression; 0 means
	// runtime.GOMAXPROCS(0).
	Workers int
	// Collector, when non-nil, receives per-stage timings, byte
	// accounting and per-block trace records (internal/telemetry). It
	// is runtime-only state — never serialized into streams — and may
	// be shared across workers and sections. The nil default makes
	// every instrumentation point a single untaken branch.
	Collector *telemetry.Collector
	// Logger, when non-nil, receives structured pipeline logs: run
	// summaries at Info, per-block records (block id, quartet class,
	// eb slack, encoding) at Debug. Like Collector it is runtime-only
	// state, never serialized into streams, and the nil default costs
	// one untaken branch per log site. Per-block Debug logging requires
	// a handler whose level actually enables Debug — the encoder checks
	// Enabled once per block, not per attribute.
	Logger *slog.Logger
	// Trace, when non-nil, is the parent span under which the pipeline
	// records per-stage child spans (block_split, pattern_fit, quantize,
	// encode, sequencer_wait, write) for the request that owns this
	// compression. Like Collector and Logger it is runtime-only state,
	// never serialized into streams; the nil default (or a non-recording
	// span) costs one untaken branch per instrumentation point. It may
	// be shared across workers — spans are safe for concurrent children.
	Trace *trace.Span
	// ProfileCtx, when non-nil, is the context whose pprof goroutine
	// labels (pastrid sets tenant and route) the pipeline's goroutines
	// run under, with a "stage" label added per pipeline role — so CPU
	// profiles attribute samples to tenant × route × stage. Runtime-only
	// state like the fields above; the nil default runs every goroutine
	// unlabeled with zero overhead.
	ProfileCtx context.Context
}

// Defaults returns the paper's shipped configuration for a block geometry
// and error bound: ER scaling, Tree-5 encoding, adaptive sparse ECQ.
func Defaults(numSB, sbSize int, eb float64) Config {
	return Config{
		NumSB:      numSB,
		SBSize:     sbSize,
		ErrorBound: eb,
		Metric:     pattern.ER,
		Encoding:   encoding.Tree5,
	}
}

// BlockSize returns the number of points per block.
func (c Config) BlockSize() int { return c.NumSB * c.SBSize }

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.NumSB <= 0 || c.SBSize <= 0 {
		return fmt.Errorf("core: invalid block geometry %d×%d", c.NumSB, c.SBSize)
	}
	if c.NumSB*c.SBSize > maxBlockSize {
		return fmt.Errorf("core: block size %d exceeds maximum %d", c.NumSB*c.SBSize, maxBlockSize)
	}
	if !(c.ErrorBound > 0) || math.IsInf(c.ErrorBound, 0) {
		return fmt.Errorf("core: error bound must be positive and finite, got %g", c.ErrorBound)
	}
	switch c.Metric {
	case pattern.FR, pattern.ER, pattern.AR, pattern.AAR, pattern.IS:
	default:
		return fmt.Errorf("core: unknown metric %v", c.Metric)
	}
	switch c.Encoding {
	case encoding.Fixed, encoding.Tree1, encoding.Tree2, encoding.Tree3,
		encoding.Tree4, encoding.Tree5:
	default:
		return fmt.Errorf("core: unknown encoding %v", c.Encoding)
	}
	if c.Workers < 0 {
		return fmt.Errorf("core: negative worker count %d", c.Workers)
	}
	return nil
}

// maxBlockSize bounds a single block. The largest common ERI
// configuration, (ff|ff), has 10^4 = 10000 points (paper Sec. IV-C);
// we allow comfortably more for generic datasets.
const maxBlockSize = 1 << 24
