package core

import (
	"context"
	"encoding/binary"
	"fmt"
	"log/slog"
	"math"
	"runtime"
	"sync"

	"repro/internal/bitio"
	"repro/internal/encoding"
	"repro/internal/pattern"
	"repro/internal/telemetry"
)

// Stream format
//
//	magic    [4]byte  "PSTR"
//	version  uint8    1
//	metric   uint8
//	encoding uint8
//	flags    uint8    bit0 = sparse disabled
//	eb       float64  (IEEE-754 bits, little endian)
//	numSB    uint32
//	sbSize   uint32
//	nblocks  uint64
//	blocks   nblocks × { uvarint payloadLen; payload }
//
// Each block payload is byte-aligned and self-contained, so blocks can be
// compressed and decompressed fully independently — the property the
// paper highlights for parallel execution (Sec. IV-C).

var streamMagic = [4]byte{'P', 'S', 'T', 'R'}

const streamVersion = 1

// headerSize is the fixed-size portion of the stream header in bytes.
const headerSize = 4 + 1 + 1 + 1 + 1 + 8 + 4 + 4 + 8

// Compress compresses data (a whole number of blocks) under cfg,
// fanning blocks out over cfg.Workers goroutines (see parallel.go). If
// stats is non-nil it receives the merged per-block statistics.
func Compress(data []float64, cfg Config, stats *Stats) ([]byte, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	bs := cfg.BlockSize()
	if len(data)%bs != 0 {
		return nil, fmt.Errorf("core: data length %d is not a multiple of block size %d", len(data), bs)
	}

	payloads, err := compressPayloads(data, cfg, cfg.Workers, stats)
	if err != nil {
		return nil, err
	}
	out := assembleStream(payloads, cfg)
	putPayloads(payloads) // contents copied into out; recycle the buffers
	if logEnabled(cfg.Logger, slog.LevelInfo) {
		ratio := 0.0
		if len(out) > 0 {
			ratio = float64(len(data)*8) / float64(len(out))
		}
		cfg.Logger.LogAttrs(context.Background(), slog.LevelInfo, "stream compressed",
			slog.Int("blocks", len(data)/bs),
			slog.String("class", quartetClass(cfg.NumSB, cfg.SBSize)),
			slog.Float64("error_bound", cfg.ErrorBound),
			slog.Int("bytes_in", len(data)*8),
			slog.Int("bytes_out", len(out)),
			slog.Float64("ratio", ratio))
	}
	return out, nil
}

// assembleStream concatenates header, varint framing and block
// payloads. Framing bytes (everything that is not block payload) are
// reported to the collector so payload + framing equals the stream
// size exactly.
func assembleStream(payloads []*[]byte, cfg Config) []byte {
	col := cfg.Collector
	defer col.Timer(telemetry.StageWrite).Stop()
	framing := headerSize
	total := headerSize
	var lenBuf [binary.MaxVarintLen64]byte
	for _, p := range payloads {
		n := binary.PutUvarint(lenBuf[:], uint64(len(*p)))
		framing += n
		total += n + len(*p)
	}
	out := make([]byte, 0, total)
	out = appendHeader(out, cfg, uint64(len(payloads)))
	for _, p := range payloads {
		n := binary.PutUvarint(lenBuf[:], uint64(len(*p)))
		out = append(out, lenBuf[:n]...)
		out = append(out, *p...)
	}
	col.AddFramingBytes(framing)
	return out
}

func appendHeader(dst []byte, cfg Config, nblocks uint64) []byte {
	dst = append(dst, streamMagic[:]...)
	dst = append(dst, streamVersion, byte(cfg.Metric), byte(cfg.Encoding), flagsByte(cfg))
	var b8 [8]byte
	binary.LittleEndian.PutUint64(b8[:], math.Float64bits(cfg.ErrorBound))
	dst = append(dst, b8[:]...)
	var b4 [4]byte
	binary.LittleEndian.PutUint32(b4[:], uint32(cfg.NumSB))
	dst = append(dst, b4[:]...)
	binary.LittleEndian.PutUint32(b4[:], uint32(cfg.SBSize))
	dst = append(dst, b4[:]...)
	binary.LittleEndian.PutUint64(b8[:], nblocks)
	dst = append(dst, b8[:]...)
	return dst
}

func flagsByte(cfg Config) byte {
	var f byte
	if cfg.DisableSparse {
		f |= 1
	}
	return f
}

// ParseHeader recovers the Config and block count from a compressed
// stream, returning also the offset at which block payloads begin. For
// a streamed file (NewStreamWriter) the count is the streaming
// sentinel; ResolveBlockCount turns it into the real count.
func ParseHeader(comp []byte) (Config, uint64, int, error) {
	return parseHeaderBytes(comp)
}

func parseHeaderBytes(comp []byte) (Config, uint64, int, error) {
	if len(comp) < headerSize {
		return Config{}, 0, 0, fmt.Errorf("core: stream too short (%d bytes)", len(comp))
	}
	if [4]byte(comp[:4]) != streamMagic {
		return Config{}, 0, 0, fmt.Errorf("core: bad magic %q", comp[:4])
	}
	if comp[4] != streamVersion {
		return Config{}, 0, 0, fmt.Errorf("core: unsupported version %d", comp[4])
	}
	cfg := Config{
		Metric:        metricFromByte(comp[5]),
		Encoding:      encodingFromByte(comp[6]),
		DisableSparse: comp[7]&1 != 0,
		ErrorBound:    math.Float64frombits(binary.LittleEndian.Uint64(comp[8:16])),
		NumSB:         int(binary.LittleEndian.Uint32(comp[16:20])),
		SBSize:        int(binary.LittleEndian.Uint32(comp[20:24])),
	}
	nblocks := binary.LittleEndian.Uint64(comp[24:32])
	if err := cfg.Validate(); err != nil {
		return Config{}, 0, 0, fmt.Errorf("core: corrupt header: %w", err)
	}
	return cfg, nblocks, headerSize, nil
}

// Decompress reconstructs the original data from a compressed stream,
// fanning blocks out over workers goroutines (0 ⇒ GOMAXPROCS).
func Decompress(comp []byte, workers int) ([]float64, error) {
	return DecompressCollect(comp, workers, nil)
}

// DecompressCollect is Decompress with a telemetry sink: per-block
// decode timings and decoded block/byte counts are recorded into col
// (nil ⇒ no telemetry, identical to Decompress).
func DecompressCollect(comp []byte, workers int, col *telemetry.Collector) ([]float64, error) {
	return DecompressLogged(comp, workers, col, nil)
}

// DecompressLogged is DecompressCollect with a structured logger: a
// successful run emits one Info summary (blocks, bytes, workers, the
// stream's geometry and error bound). Decompression reads its Config
// from the stream header, so the logger cannot ride in via Config and
// is threaded explicitly here.
func DecompressLogged(comp []byte, workers int, col *telemetry.Collector, logger *slog.Logger) ([]float64, error) {
	cfg, nblocks, off, err := ParseHeader(comp)
	if err != nil {
		return nil, err
	}
	cfg.Collector = col
	bs := cfg.BlockSize()
	if nblocks != streamingCount && nblocks > uint64(math.MaxInt64)/uint64(bs) {
		return nil, fmt.Errorf("core: implausible block count %d", nblocks)
	}
	// Slice out per-block payloads first (sequential scan over varints).
	spans, err := resolveSpans(comp, nblocks, off)
	if err != nil {
		return nil, err
	}
	nblocks = uint64(len(spans))
	out := make([]float64, int(nblocks)*bs)

	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > int(nblocks) {
		workers = int(nblocks)
	}
	logDone := func() {
		if logEnabled(logger, slog.LevelInfo) {
			logger.LogAttrs(context.Background(), slog.LevelInfo, "stream decompressed",
				slog.Uint64("blocks", nblocks),
				slog.String("class", quartetClass(cfg.NumSB, cfg.SBSize)),
				slog.Float64("error_bound", cfg.ErrorBound),
				slog.Int("bytes_in", len(comp)),
				slog.Int("bytes_out", len(out)*8),
				slog.Int("workers", workers))
		}
	}
	if workers <= 1 {
		dec := getDecoder(cfg)
		defer putDecoder(dec)
		r := bitio.NewReader(nil)
		for b := range spans {
			r.Reset(comp[spans[b].lo:spans[b].hi])
			if err := dec.DecodeBlock(r, out[b*bs:(b+1)*bs]); err != nil {
				return nil, fmt.Errorf("core: block %d: %w", b, err)
			}
			col.RecordDecodedBlock(spans[b].hi-spans[b].lo, bs*8)
		}
		logDone()
		return out, nil
	}

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	next := make(chan int, len(spans))
	for b := range spans {
		next <- b
	}
	close(next)
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			dec := getDecoder(cfg)
			defer putDecoder(dec)
			r := bitio.NewReader(nil)
			for b := range next {
				r.Reset(comp[spans[b].lo:spans[b].hi])
				if err := dec.DecodeBlock(r, out[b*bs:(b+1)*bs]); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("core: block %d: %w", b, err)
					}
					mu.Unlock()
					return
				}
				col.RecordDecodedBlock(spans[b].hi-spans[b].lo, bs*8)
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	logDone()
	return out, nil
}

func metricFromByte(b byte) pattern.Metric    { return pattern.Metric(b) }
func encodingFromByte(b byte) encoding.Method { return encoding.Method(b) }
