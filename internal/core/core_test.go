package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bitio"
	"repro/internal/encoding"
	"repro/internal/pattern"
)

// patternedBlock simulates an ERI shell-quartet block: sub-blocks that
// share one shape up to a scalar, with deviations and a few outliers,
// spanning several orders of magnitude.
func patternedBlock(rng *rand.Rand, numSB, sbSize int, amplitude, noise, outlierFrac float64) []float64 {
	shape := make([]float64, sbSize)
	for i := range shape {
		shape[i] = rng.NormFloat64() * amplitude
	}
	block := make([]float64, numSB*sbSize)
	for s := 0; s < numSB; s++ {
		scale := rng.Float64()*2 - 1
		for i := 0; i < sbSize; i++ {
			v := scale*shape[i] + noise*rng.NormFloat64()
			if rng.Float64() < outlierFrac {
				v += amplitude * rng.NormFloat64() * 0.1
			}
			block[s*sbSize+i] = v
		}
	}
	return block
}

func blockRoundTrip(t *testing.T, block []float64, cfg Config) []float64 {
	t.Helper()
	enc, err := NewBlockEncoder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w := bitio.NewWriter(0)
	if err := enc.EncodeBlock(w, block); err != nil {
		t.Fatal(err)
	}
	dec, err := NewBlockDecoder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]float64, len(block))
	if err := dec.DecodeBlock(bitio.NewReader(w.Bytes()), dst); err != nil {
		t.Fatal(err)
	}
	return dst
}

func maxAbsErr(a, b []float64) float64 {
	m := 0.0
	for i := range a {
		if e := math.Abs(a[i] - b[i]); e > m {
			m = e
		}
	}
	return m
}

func TestBlockRoundTripErrorBound(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, eb := range []float64{1e-9, 1e-10, 1e-11} {
		cfg := Defaults(36, 36, eb)
		for trial := 0; trial < 20; trial++ {
			block := patternedBlock(rng, 36, 36, 1e-6, eb/3, 0.01)
			dst := blockRoundTrip(t, block, cfg)
			if e := maxAbsErr(block, dst); e > eb*(1+1e-9) {
				t.Fatalf("EB=%g trial %d: max error %g exceeds bound", eb, trial, e)
			}
		}
	}
}

// The central property: the error bound holds for EVERY metric and EVERY
// encoding on arbitrary data — even data with no pattern at all. The EC
// stage makes the bound structural (Sec. IV-B).
func TestQuickErrorBoundUnconditional(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		numSB := rng.Intn(6) + 2
		sbSize := rng.Intn(30) + 2
		eb := math.Pow(10, -float64(rng.Intn(5)+7)) // 1e-7 .. 1e-11
		block := make([]float64, numSB*sbSize)
		for i := range block {
			block[i] = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(10)-8))
		}
		m := pattern.Metrics[rng.Intn(len(pattern.Metrics))]
		e := encoding.Methods[rng.Intn(len(encoding.Methods))]
		cfg := Config{NumSB: numSB, SBSize: sbSize, ErrorBound: eb, Metric: m, Encoding: e}
		enc, err := NewBlockEncoder(cfg)
		if err != nil {
			return false
		}
		w := bitio.NewWriter(0)
		if err := enc.EncodeBlock(w, block); err != nil {
			return false
		}
		dec, err := NewBlockDecoder(cfg)
		if err != nil {
			return false
		}
		dst := make([]float64, len(block))
		if err := dec.DecodeBlock(bitio.NewReader(w.Bytes()), dst); err != nil {
			return false
		}
		return maxAbsErr(block, dst) <= eb*(1+1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestZeroBlockIsTiny(t *testing.T) {
	cfg := Defaults(36, 36, 1e-10)
	block := make([]float64, cfg.BlockSize())
	enc, _ := NewBlockEncoder(cfg)
	w := bitio.NewWriter(0)
	if err := enc.EncodeBlock(w, block); err != nil {
		t.Fatal(err)
	}
	// Type-0 zero block: header + PQ(36×1) + SQ(36×1) bits ≈ 84 bits.
	if w.BitLen() > 128 {
		t.Fatalf("zero block took %d bits", w.BitLen())
	}
	dst := blockRoundTrip(t, block, cfg)
	for i, v := range dst {
		if v != 0 {
			t.Fatalf("dst[%d] = %g, want 0", i, v)
		}
	}
}

func TestPatternedBlockCompressesWell(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	cfg := Defaults(36, 36, 1e-10)
	block := patternedBlock(rng, 36, 36, 1e-6, 1e-11, 0.002)
	enc, _ := NewBlockEncoder(cfg)
	w := bitio.NewWriter(0)
	if err := enc.EncodeBlock(w, block); err != nil {
		t.Fatal(err)
	}
	rawBits := uint64(len(block) * 64)
	ratio := float64(rawBits) / float64(w.BitLen())
	if ratio < 10 {
		t.Fatalf("patterned block ratio %.1f < 10 (took %d bits for %d points)",
			ratio, w.BitLen(), len(block))
	}
}

func TestConfigValidate(t *testing.T) {
	good := Defaults(6, 6, 1e-10)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []Config{
		{NumSB: 0, SBSize: 6, ErrorBound: 1e-10},
		{NumSB: 6, SBSize: -1, ErrorBound: 1e-10},
		{NumSB: 6, SBSize: 6, ErrorBound: 0},
		{NumSB: 6, SBSize: 6, ErrorBound: math.Inf(1)},
		{NumSB: 6, SBSize: 6, ErrorBound: -1e-10},
		{NumSB: 6, SBSize: 6, ErrorBound: 1e-10, Metric: pattern.Metric(9)},
		{NumSB: 6, SBSize: 6, ErrorBound: 1e-10, Encoding: encoding.Method(9)},
		{NumSB: 6, SBSize: 6, ErrorBound: 1e-10, Workers: -2},
		{NumSB: 1 << 13, SBSize: 1 << 13, ErrorBound: 1e-10},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestStreamRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	cfg := Defaults(36, 36, 1e-10)
	const nblocks = 17
	data := make([]float64, 0, nblocks*cfg.BlockSize())
	for b := 0; b < nblocks; b++ {
		amp := math.Pow(10, float64(rng.Intn(8)-10))
		data = append(data, patternedBlock(rng, 36, 36, amp, amp*1e-4, 0.01)...)
	}
	for _, workers := range []int{1, 4, 0} {
		cfg.Workers = workers
		stats := NewStats()
		comp, err := Compress(data, cfg, stats)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if stats.Blocks != nblocks {
			t.Fatalf("workers=%d: stats recorded %d blocks, want %d", workers, stats.Blocks, nblocks)
		}
		got, err := Decompress(comp, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != len(data) {
			t.Fatalf("workers=%d: got %d points, want %d", workers, len(got), len(data))
		}
		if e := maxAbsErr(data, got); e > cfg.ErrorBound*(1+1e-9) {
			t.Fatalf("workers=%d: max error %g", workers, e)
		}
	}
}

func TestStreamDeterministicAcrossWorkerCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cfg := Defaults(6, 36, 1e-10)
	data := make([]float64, 0, 12*cfg.BlockSize())
	for b := 0; b < 12; b++ {
		data = append(data, patternedBlock(rng, 6, 36, 1e-7, 1e-12, 0.01)...)
	}
	cfg.Workers = 1
	c1, err := Compress(data, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 8
	c8, err := Compress(data, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(c1) != string(c8) {
		t.Fatal("compressed stream differs between 1 and 8 workers")
	}
}

func TestCompressRejectsPartialBlock(t *testing.T) {
	cfg := Defaults(6, 6, 1e-10)
	if _, err := Compress(make([]float64, 35), cfg, nil); err == nil {
		t.Fatal("expected error for partial block")
	}
}

func TestDecompressCorruptStreams(t *testing.T) {
	cfg := Defaults(6, 6, 1e-10)
	data := make([]float64, cfg.BlockSize()*2)
	for i := range data {
		data[i] = float64(i) * 1e-9
	}
	comp, err := Compress(data, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":       {},
		"short":       comp[:10],
		"bad magic":   append([]byte("XXXX"), comp[4:]...),
		"bad version": append(append([]byte{}, comp[:4]...), append([]byte{99}, comp[5:]...)...),
		"truncated":   comp[:len(comp)-3],
	}
	for name, c := range cases {
		if _, err := Decompress(c, 1); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestParseHeaderRoundTrip(t *testing.T) {
	cfg := Config{NumSB: 60, SBSize: 100, ErrorBound: 1e-11,
		Metric: pattern.AAR, Encoding: encoding.Tree3, DisableSparse: true}
	data := make([]float64, cfg.BlockSize())
	comp, err := Compress(data, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, nblocks, _, err := ParseHeader(comp)
	if err != nil {
		t.Fatal(err)
	}
	if nblocks != 1 {
		t.Fatalf("nblocks = %d", nblocks)
	}
	if got.NumSB != 60 || got.SBSize != 100 || got.ErrorBound != 1e-11 ||
		got.Metric != pattern.AAR || got.Encoding != encoding.Tree3 || !got.DisableSparse {
		t.Fatalf("header round trip mismatch: %+v", got)
	}
}

func TestStatsFractions(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	cfg := Defaults(36, 36, 1e-10)
	data := make([]float64, 0, 30*cfg.BlockSize())
	for b := 0; b < 30; b++ {
		data = append(data, patternedBlock(rng, 36, 36, 1e-6, 3e-10, 0.05)...)
	}
	stats := NewStats()
	if _, err := Compress(data, cfg, stats); err != nil {
		t.Fatal(err)
	}
	ps, ecq, book := stats.Fractions()
	sum := ps + ecq + book
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("fractions sum to %g", sum)
	}
	if ecq <= 0 || ps <= 0 {
		t.Fatalf("degenerate fractions: ps=%g ecq=%g book=%g", ps, ecq, book)
	}
}

func TestClassifyECbMax(t *testing.T) {
	cases := map[uint]BlockType{1: Type0, 2: Type1, 3: Type2, 6: Type2, 7: Type3, 22: Type3}
	for ecb, want := range cases {
		if got := ClassifyECbMax(ecb); got != want {
			t.Errorf("ClassifyECbMax(%d) = %v, want %v", ecb, got, want)
		}
	}
	for _, bt := range []BlockType{Type0, Type1, Type2, Type3} {
		if bt.String() == "Type ?" {
			t.Errorf("missing String for %d", int(bt))
		}
	}
}

func TestStatsMerge(t *testing.T) {
	a, b := NewStats(), NewStats()
	a.recordBlock([]int64{0, 1, -1}, 2, 10, 20, 30, 12, true)
	b.recordBlock([]int64{0, 0, 0}, 1, 5, 5, 0, 12, false)
	a.Merge(b)
	if a.Blocks != 2 {
		t.Fatalf("Blocks = %d", a.Blocks)
	}
	if a.TypeCount[Type0] != 1 || a.TypeCount[Type1] != 1 {
		t.Fatalf("TypeCount = %v", a.TypeCount)
	}
	if a.PayloadBits() != 10+20+30+12+5+5+12 {
		t.Fatalf("PayloadBits = %d", a.PayloadBits())
	}
	if a.SparseBlocks != 1 {
		t.Fatalf("SparseBlocks = %d", a.SparseBlocks)
	}
	a.Merge(nil) // must not panic
}

// Compression is idempotent on its own output: once a block consists of
// already-quantized values, a second compress→decompress cycle is
// lossless. Downstream pipelines can therefore re-compress decompressed
// data without accumulating error.
func TestQuickCompressionIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := Defaults(rng.Intn(5)+2, rng.Intn(20)+2, 1e-9)
		data := make([]float64, (rng.Intn(3)+1)*cfg.BlockSize())
		for i := range data {
			data[i] = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(8)-7))
		}
		c1, err := Compress(data, cfg, nil)
		if err != nil {
			return false
		}
		d1, err := Decompress(c1, 1)
		if err != nil {
			return false
		}
		c2, err := Compress(d1, cfg, nil)
		if err != nil {
			return false
		}
		d2, err := Decompress(c2, 1)
		if err != nil {
			return false
		}
		for i := range d1 {
			// Second pass must not drift beyond one further quantum; in
			// practice it is exactly stable after at most one extra pass.
			if math.Abs(d2[i]-d1[i]) > cfg.ErrorBound*(1+1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDisableSparseAblation(t *testing.T) {
	// One huge-outlier block: sparse representation should win when
	// enabled; with DisableSparse the stream must still round-trip.
	cfg := Defaults(10, 100, 1e-10)
	block := make([]float64, cfg.BlockSize())
	block[123] = 1e-3 // single large value, everything else zero
	sparseStream, err := Compress(block, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg.DisableSparse = true
	denseStream, err := Compress(block, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(sparseStream) >= len(denseStream) {
		t.Fatalf("sparse (%d B) should beat dense (%d B) here", len(sparseStream), len(denseStream))
	}
	got, err := Decompress(denseStream, 1)
	if err != nil {
		t.Fatal(err)
	}
	if e := maxAbsErr(block, got); e > cfg.ErrorBound*(1+1e-9) {
		t.Fatalf("dense ablation max error %g", e)
	}
}
