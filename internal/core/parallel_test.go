package core

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"repro/internal/encoding"
	"repro/internal/pattern"
)

// eriLikeBlocks synthesizes nblocks ERI-shaped blocks for cfg: each
// sub-block is a shared smooth pattern times a decaying scale, plus
// noise around the quantization scale so all four block types occur.
func eriLikeBlocks(cfg Config, nblocks int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	data := make([]float64, nblocks*cfg.BlockSize())
	for b := 0; b < nblocks; b++ {
		amp := math.Pow(10, -2*rng.Float64()) // block amplitude 1e-2..1
		for s := 0; s < cfg.NumSB; s++ {
			scale := amp * math.Pow(0.7, float64(s)) * (1 - 2*float64(s%2))
			base := b*cfg.BlockSize() + s*cfg.SBSize
			for i := 0; i < cfg.SBSize; i++ {
				p := math.Sin(float64(i)*0.7+float64(b)) * math.Exp(-0.05*float64(i))
				noise := (rng.Float64() - 0.5) * cfg.ErrorBound * float64(rng.Intn(200))
				data[base+i] = scale*p + noise
			}
		}
	}
	return data
}

func TestCompressWorkersByteIdentical(t *testing.T) {
	cfg := Defaults(6, 10, 1e-10)
	data := eriLikeBlocks(cfg, 37, 1)
	serial, err := CompressWorkers(data, cfg, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{0, 2, 3, 4, 7, 16} {
		par, err := CompressWorkers(data, cfg, n, nil)
		if err != nil {
			t.Fatalf("workers=%d: %v", n, err)
		}
		if !bytes.Equal(serial, par) {
			t.Fatalf("workers=%d: output differs from serial (%d vs %d bytes)", n, len(serial), len(par))
		}
	}
}

func TestCompressWorkersStats(t *testing.T) {
	cfg := Defaults(4, 9, 1e-9)
	data := eriLikeBlocks(cfg, 25, 2)
	want := NewStats()
	if _, err := CompressWorkers(data, cfg, 1, want); err != nil {
		t.Fatal(err)
	}
	got := NewStats()
	if _, err := CompressWorkers(data, cfg, 4, got); err != nil {
		t.Fatal(err)
	}
	if want.Blocks != got.Blocks || want.TypeCount != got.TypeCount ||
		want.PayloadBits() != got.PayloadBits() || want.SparseBlocks != got.SparseBlocks {
		t.Fatalf("parallel stats diverge: serial %+v parallel %+v", want, got)
	}
}

func TestParallelStreamWriterMatchesSerial(t *testing.T) {
	cfg := Defaults(5, 8, 1e-8)
	data := eriLikeBlocks(cfg, 41, 3)
	bs := cfg.BlockSize()

	var serial bytes.Buffer
	sw, err := NewStreamWriter(&serial, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for b := 0; b*bs < len(data); b++ {
		if err := sw.WriteBlock(data[b*bs : (b+1)*bs]); err != nil {
			t.Fatal(err)
		}
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 2, 4, 7} {
		var par bytes.Buffer
		pw, err := NewParallelStreamWriter(&par, cfg, workers)
		if err != nil {
			t.Fatal(err)
		}
		st := NewStats()
		pw.CollectStats(st)
		block := make([]float64, bs)
		for b := 0; b*bs < len(data); b++ {
			copy(block, data[b*bs:(b+1)*bs]) // writer must copy: reuse the buffer
			if err := pw.WriteBlock(block); err != nil {
				t.Fatalf("workers=%d block %d: %v", workers, b, err)
			}
		}
		if err := pw.Close(); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !bytes.Equal(serial.Bytes(), par.Bytes()) {
			t.Fatalf("workers=%d: parallel stream differs from serial (%d vs %d bytes)",
				workers, serial.Len(), par.Len())
		}
		if got, want := pw.Blocks(), uint64(len(data)/bs); got != want {
			t.Fatalf("workers=%d: Blocks() = %d, want %d", workers, got, want)
		}
		if st.Blocks != uint64(len(data)/bs) {
			t.Fatalf("workers=%d: stats saw %d blocks, want %d", workers, st.Blocks, len(data)/bs)
		}
	}
}

func TestParallelStreamWriterRoundTrip(t *testing.T) {
	cfg := Defaults(4, 6, 1e-11)
	data := eriLikeBlocks(cfg, 19, 4)
	bs := cfg.BlockSize()
	var buf bytes.Buffer
	pw, err := NewParallelStreamWriter(&buf, cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	for b := 0; b*bs < len(data); b++ {
		if err := pw.WriteBlock(data[b*bs : (b+1)*bs]); err != nil {
			t.Fatal(err)
		}
	}
	if err := pw.Close(); err != nil {
		t.Fatal(err)
	}
	out, err := Decompress(buf.Bytes(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(data) {
		t.Fatalf("decompressed %d values, want %d", len(out), len(data))
	}
	for i := range data {
		if math.Abs(out[i]-data[i]) > cfg.ErrorBound {
			t.Fatalf("value %d: |%g - %g| > EB %g", i, data[i], out[i], cfg.ErrorBound)
		}
	}
}

func TestParallelStreamWriterEmpty(t *testing.T) {
	cfg := Defaults(3, 3, 1e-6)
	var buf bytes.Buffer
	pw, err := NewParallelStreamWriter(&buf, cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := pw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := pw.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	out, err := Decompress(buf.Bytes(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Fatalf("empty stream decoded %d values", len(out))
	}
	if err := pw.WriteBlock(make([]float64, cfg.BlockSize())); err == nil {
		t.Fatal("WriteBlock after Close did not error")
	}
}

func TestParallelStreamWriterBadBlockLength(t *testing.T) {
	cfg := Defaults(3, 3, 1e-6)
	var buf bytes.Buffer
	pw, err := NewParallelStreamWriter(&buf, cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := pw.WriteBlock(make([]float64, cfg.BlockSize()+1)); err == nil {
		t.Fatal("oversized block accepted")
	}
	if err := pw.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestParallelStreamWriterEncodeError drives the pipeline into an
// encoder failure (data range too wide for the error bound) and checks
// the error surfaces on Close without deadlock or panic.
func TestParallelStreamWriterEncodeError(t *testing.T) {
	cfg := Defaults(2, 4, 1e-300)
	var buf bytes.Buffer
	pw, err := NewParallelStreamWriter(&buf, cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	bad := []float64{1e300, -1e300, 1e299, 2e299, 1, 2, 3, 4}
	var writeErr error
	for i := 0; i < 50 && writeErr == nil; i++ {
		writeErr = pw.WriteBlock(bad)
	}
	closeErr := pw.Close()
	if writeErr == nil && closeErr == nil {
		t.Fatal("encoder error never surfaced")
	}
}

// TestPropertyRoundTrip is the randomized-config battery: for options
// drawn across block geometries, sub-block splits, metrics, encodings
// and error bounds spanning 1e-3..1e-12, the reconstruction must honor
// the absolute error bound and every worker count must produce the
// exact bytes of the serial path.
func TestPropertyRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	metrics := []pattern.Metric{pattern.ER, pattern.FR, pattern.AR, pattern.AAR, pattern.IS}
	encodings := []encoding.Method{encoding.Tree5, encoding.Fixed, encoding.Tree1,
		encoding.Tree2, encoding.Tree3, encoding.Tree4}
	iters := 40
	if testing.Short() {
		iters = 10
	}
	for it := 0; it < iters; it++ {
		cfg := Config{
			NumSB:         1 + rng.Intn(12),
			SBSize:        1 + rng.Intn(24),
			ErrorBound:    math.Pow(10, -3-9*rng.Float64()), // 1e-3 .. 1e-12
			Metric:        metrics[rng.Intn(len(metrics))],
			Encoding:      encodings[rng.Intn(len(encodings))],
			DisableSparse: rng.Intn(4) == 0,
		}
		nblocks := 1 + rng.Intn(12)
		data := eriLikeBlocks(cfg, nblocks, int64(1000+it))
		serial, err := CompressWorkers(data, cfg, 1, nil)
		if err != nil {
			t.Fatalf("iter %d cfg %+v: %v", it, cfg, err)
		}
		out, err := Decompress(serial, 1+rng.Intn(4))
		if err != nil {
			t.Fatalf("iter %d cfg %+v: decompress: %v", it, cfg, err)
		}
		for i := range data {
			if math.Abs(out[i]-data[i]) > cfg.ErrorBound {
				t.Fatalf("iter %d cfg %+v: value %d: |err| %g > EB %g",
					it, cfg, i, math.Abs(out[i]-data[i]), cfg.ErrorBound)
			}
		}
		for _, n := range []int{2, 4, 7} {
			par, err := CompressWorkers(data, cfg, n, nil)
			if err != nil {
				t.Fatalf("iter %d workers %d: %v", it, n, err)
			}
			if !bytes.Equal(serial, par) {
				t.Fatalf("iter %d cfg %+v: workers=%d output differs from serial", it, cfg, n)
			}
		}
	}
}
