// Package huffman implements a canonical Huffman coder over uint32
// symbols, the entropy-coding substrate of the SZ baseline compressor
// (SZ encodes its linear-scaling quantization codes with Huffman; see
// Tao et al., IPDPS'17).
package huffman

import (
	"container/heap"
	"fmt"
	"sort"

	"repro/internal/bitio"
)

// maxCodeLen bounds code lengths; with canonical assignment and ≤ 2^32
// distinct symbols this is never exceeded for realistic inputs, and the
// serialized table reserves 6 bits for lengths.
const maxCodeLen = 58

// Codec holds a canonical Huffman code for a set of symbols.
type Codec struct {
	symbols []uint32        // sorted by (length, symbol)
	lengths []uint8         // parallel to symbols
	codes   map[uint32]code // symbol → code
	decode  decodeTable
}

type code struct {
	bits uint64
	len  uint8
}

// decodeTable supports canonical decoding: for each length, the first
// code value and the index of its first symbol.
type decodeTable struct {
	firstCode  [maxCodeLen + 1]uint64
	firstIndex [maxCodeLen + 1]int
	count      [maxCodeLen + 1]int
	symbols    []uint32
	maxLen     int
}

type hnode struct {
	freq        uint64
	symbol      uint32
	left, right *hnode
}

type hheap []*hnode

func (h hheap) Len() int { return len(h) }
func (h hheap) Less(i, j int) bool {
	if h[i].freq != h[j].freq {
		return h[i].freq < h[j].freq
	}
	return h[i].symbol < h[j].symbol // deterministic tie-break
}
func (h hheap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *hheap) Push(x interface{}) { *h = append(*h, x.(*hnode)) }
func (h *hheap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// New builds a canonical Huffman code from symbol frequencies. At least
// one symbol must have nonzero frequency.
func New(freqs map[uint32]uint64) (*Codec, error) {
	var nodes hheap
	for sym, f := range freqs { //lint:detlint-ok collection order is neutralized by the deterministic sort below
		if f > 0 {
			nodes = append(nodes, &hnode{freq: f, symbol: sym})
		}
	}
	if len(nodes) == 0 {
		return nil, fmt.Errorf("huffman: no symbols")
	}
	if len(nodes) == 1 {
		// Degenerate: one symbol gets a 1-bit code.
		c := &Codec{
			symbols: []uint32{nodes[0].symbol},
			lengths: []uint8{1},
		}
		c.finish()
		return c, nil
	}
	// Map iteration order is random; sort for a deterministic tree.
	sort.Slice(nodes, func(i, j int) bool {
		if nodes[i].freq != nodes[j].freq {
			return nodes[i].freq < nodes[j].freq
		}
		return nodes[i].symbol < nodes[j].symbol
	})
	heap.Init(&nodes)
	for nodes.Len() > 1 {
		a := heap.Pop(&nodes).(*hnode)
		b := heap.Pop(&nodes).(*hnode)
		heap.Push(&nodes, &hnode{freq: a.freq + b.freq, left: a, right: b})
	}
	root := nodes[0]

	// Collect code lengths.
	type sl struct {
		sym uint32
		l   uint8
	}
	var all []sl
	var walk func(n *hnode, depth uint8)
	walk = func(n *hnode, depth uint8) {
		if n.left == nil {
			if depth == 0 {
				depth = 1
			}
			all = append(all, sl{n.sym(), depth})
			return
		}
		walk(n.left, depth+1)
		walk(n.right, depth+1)
	}
	walk(root, 0)
	sort.Slice(all, func(i, j int) bool {
		if all[i].l != all[j].l {
			return all[i].l < all[j].l
		}
		return all[i].sym < all[j].sym
	})
	c := &Codec{}
	for _, e := range all {
		if e.l > maxCodeLen {
			return nil, fmt.Errorf("huffman: code length %d exceeds limit", e.l)
		}
		c.symbols = append(c.symbols, e.sym)
		c.lengths = append(c.lengths, e.l)
	}
	c.finish()
	return c, nil
}

func (n *hnode) sym() uint32 { return n.symbol }

// finish assigns canonical codes from the sorted (length, symbol) list.
func (c *Codec) finish() {
	c.codes = make(map[uint32]code, len(c.symbols))
	c.decode = decodeTable{symbols: c.symbols}
	var next uint64
	prevLen := uint8(0)
	for i, sym := range c.symbols {
		l := c.lengths[i]
		// Canonical order sorts by length, so l >= prevLen and both are
		// <= maxCodeLen = 58; the delta is at most 57.
		next <<= (l - prevLen) //lint:shiftwidth-ok see invariant above
		prevLen = l
		c.codes[sym] = code{bits: next, len: l}
		if c.decode.count[l] == 0 {
			c.decode.firstCode[l] = next
			c.decode.firstIndex[l] = i
		}
		c.decode.count[l]++
		if int(l) > c.decode.maxLen {
			c.decode.maxLen = int(l)
		}
		next++
	}
}

// CodeLen returns the code length in bits for a symbol (0 if unknown).
func (c *Codec) CodeLen(sym uint32) int { return int(c.codes[sym].len) }

// EncodeSymbol writes one symbol's code.
func (c *Codec) EncodeSymbol(w *bitio.Writer, sym uint32) error {
	cd, ok := c.codes[sym]
	if !ok {
		return fmt.Errorf("huffman: symbol %d not in codebook", sym)
	}
	w.WriteBits(cd.bits, uint(cd.len))
	return nil
}

// DecodeSymbol reads one symbol.
func (c *Codec) DecodeSymbol(r *bitio.Reader) (uint32, error) {
	var v uint64
	for l := 1; l <= c.decode.maxLen; l++ {
		b, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		v = v<<1 | uint64(b)
		if c.decode.count[l] > 0 {
			offset := int64(v) - int64(c.decode.firstCode[l])
			if offset >= 0 && offset < int64(c.decode.count[l]) {
				return c.decode.symbols[c.decode.firstIndex[l]+int(offset)], nil
			}
		}
	}
	return 0, fmt.Errorf("huffman: corrupt stream (no code within %d bits)", c.decode.maxLen)
}

// WriteTable serializes the codebook: symbol count, then (symbol, length)
// pairs. Canonical codes are reconstructed on read, so codes themselves
// are not stored — this is the dictionary cost the paper contrasts with
// PaSTRI's fixed trees (Sec. IV-C).
func (c *Codec) WriteTable(w *bitio.Writer) {
	w.WriteBits(uint64(len(c.symbols)), 32)
	for i, sym := range c.symbols {
		w.WriteBits(uint64(sym), 32)
		w.WriteBits(uint64(c.lengths[i]), 6)
	}
}

// TableBits returns the serialized codebook size in bits.
func (c *Codec) TableBits() uint64 { return 32 + uint64(len(c.symbols))*38 }

// ReadTable reconstructs a Codec from WriteTable output.
func ReadTable(r *bitio.Reader) (*Codec, error) {
	n, err := r.ReadBits(32)
	if err != nil {
		return nil, err
	}
	if n == 0 || n > 1<<26 {
		return nil, fmt.Errorf("huffman: implausible table size %d", n)
	}
	c := &Codec{
		symbols: make([]uint32, n),
		lengths: make([]uint8, n),
	}
	for i := range c.symbols {
		s, err := r.ReadBits(32)
		if err != nil {
			return nil, err
		}
		l, err := r.ReadBits(6)
		if err != nil {
			return nil, err
		}
		if l == 0 || l > maxCodeLen {
			return nil, fmt.Errorf("huffman: invalid code length %d", l)
		}
		c.symbols[i] = uint32(s)
		c.lengths[i] = uint8(l)
	}
	// Validate canonical ordering.
	for i := 1; i < len(c.symbols); i++ {
		if c.lengths[i] < c.lengths[i-1] ||
			(c.lengths[i] == c.lengths[i-1] && c.symbols[i] <= c.symbols[i-1]) {
			return nil, fmt.Errorf("huffman: table not in canonical order at %d", i)
		}
	}
	c.finish()
	return c, nil
}
