package huffman

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bitio"
)

func roundTrip(t *testing.T, data []uint32) {
	t.Helper()
	freqs := map[uint32]uint64{}
	for _, s := range data {
		freqs[s]++
	}
	enc, err := New(freqs)
	if err != nil {
		t.Fatal(err)
	}
	w := bitio.NewWriter(0)
	enc.WriteTable(w)
	if got := w.BitLen(); got != enc.TableBits() {
		t.Fatalf("TableBits = %d but wrote %d", enc.TableBits(), got)
	}
	for _, s := range data {
		if err := enc.EncodeSymbol(w, s); err != nil {
			t.Fatal(err)
		}
	}
	r := bitio.NewReader(w.Bytes())
	dec, err := ReadTable(r)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range data {
		got, err := dec.DecodeSymbol(r)
		if err != nil {
			t.Fatalf("symbol %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("symbol %d = %d, want %d", i, got, want)
		}
	}
}

func TestRoundTripBasic(t *testing.T) {
	roundTrip(t, []uint32{1, 1, 1, 2, 2, 3})
	roundTrip(t, []uint32{42})
	roundTrip(t, []uint32{7, 7, 7, 7})
	roundTrip(t, []uint32{0, 1<<31 - 1, 0, 5, 5, 5, 5, 5, 5, 5})
}

func TestSkewedDistributionCompresses(t *testing.T) {
	// 95% zeros: the dominant symbol must get a short code.
	data := make([]uint32, 10000)
	rng := rand.New(rand.NewSource(1))
	for i := range data {
		if rng.Intn(20) == 0 {
			data[i] = uint32(rng.Intn(100) + 1)
		}
	}
	freqs := map[uint32]uint64{}
	for _, s := range data {
		freqs[s]++
	}
	c, err := New(freqs)
	if err != nil {
		t.Fatal(err)
	}
	if l := c.CodeLen(0); l > 2 {
		t.Fatalf("dominant symbol got %d-bit code", l)
	}
	// Total encoded size well under fixed-length (7 bits × 10000).
	total := uint64(0)
	for s, f := range freqs {
		total += uint64(c.CodeLen(s)) * f
	}
	if total > 30000 {
		t.Fatalf("encoded size %d bits, expected < 30000", total)
	}
}

func TestKraftInequality(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	freqs := map[uint32]uint64{}
	for i := 0; i < 300; i++ {
		freqs[uint32(i)] = uint64(rng.Intn(10000) + 1)
	}
	c, err := New(freqs)
	if err != nil {
		t.Fatal(err)
	}
	// Σ 2^(−l) must equal 1 for a complete prefix code.
	sum := 0.0
	for _, l := range c.lengths {
		sum += 1 / float64(uint64(1)<<l)
	}
	if sum > 1.0000001 || sum < 0.9999999 {
		t.Fatalf("Kraft sum = %v", sum)
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64, n uint16, alphabet uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		count := int(n)%2000 + 1
		syms := int(alphabet)%64 + 1
		data := make([]uint32, count)
		for i := range data {
			// Zipf-ish skew.
			data[i] = uint32(rng.Intn(rng.Intn(syms) + 1))
		}
		freqs := map[uint32]uint64{}
		for _, s := range data {
			freqs[s]++
		}
		enc, err := New(freqs)
		if err != nil {
			return false
		}
		w := bitio.NewWriter(0)
		enc.WriteTable(w)
		for _, s := range data {
			if enc.EncodeSymbol(w, s) != nil {
				return false
			}
		}
		r := bitio.NewReader(w.Bytes())
		dec, err := ReadTable(r)
		if err != nil {
			return false
		}
		for _, want := range data {
			got, err := dec.DecodeSymbol(r)
			if err != nil || got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestErrors(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Error("empty frequency map accepted")
	}
	if _, err := New(map[uint32]uint64{5: 0}); err == nil {
		t.Error("all-zero frequencies accepted")
	}
	c, err := New(map[uint32]uint64{1: 3, 2: 1})
	if err != nil {
		t.Fatal(err)
	}
	w := bitio.NewWriter(0)
	if err := c.EncodeSymbol(w, 99); err == nil {
		t.Error("unknown symbol accepted")
	}
	// Corrupt table.
	w2 := bitio.NewWriter(0)
	w2.WriteBits(1<<30, 32)
	if _, err := ReadTable(bitio.NewReader(w2.Bytes())); err == nil {
		t.Error("implausible table accepted")
	}
}

func TestDeterministicTree(t *testing.T) {
	freqs := map[uint32]uint64{}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		freqs[uint32(i)] = uint64(rng.Intn(5) + 1) // many frequency ties
	}
	a, err := New(freqs)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 5; trial++ {
		b, err := New(freqs)
		if err != nil {
			t.Fatal(err)
		}
		for i := range a.symbols {
			if a.symbols[i] != b.symbols[i] || a.lengths[i] != b.lengths[i] {
				t.Fatal("tree construction not deterministic")
			}
		}
	}
}
