package experiments

import (
	"fmt"
	"math"

	"repro/internal/basis"
	"repro/internal/container"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/eri"
)

// This file reproduces the paper's hybrid-configuration claim
// (Sec. V-A): "we have also used d and f hybrid BF configurations
// ((df|fd), etc.) ... Metrics for hybrid configurations follow very
// similar trends of the metrics of pure configurations." A hybrid
// workload mixes block shapes, so it exercises the multi-section
// container format.

// HybridResult reports the hybrid-configuration measurement.
type HybridResult struct {
	Blocks     int
	Sections   int // distinct block geometries
	RawBytes   int
	CompBytes  int
	Ratio      float64
	MaxAbsErr  float64
	PureDDFF   float64 // mean ratio of the pure (dd|dd)+(ff|ff) datasets at the same EB
	ErrorBound float64
}

// Hybrid generates a mixed d/f configuration over the benzene cluster
// (both a d and an f shell on every heavy atom), compresses the
// variable-geometry block stream into a container at EB = 1e-10, and
// verifies the error bound and the "similar trends" claim against the
// pure configurations.
func Hybrid(blocks int) (*HybridResult, error) {
	const eb = 1e-10
	mol, err := dataset.PaperMolecule("benzene")
	if err != nil {
		return nil, err
	}
	shells, err := basis.MixedShells(mol)
	if err != nil {
		return nil, err
	}
	prepared := make([]*eri.PreparedShell, len(shells))
	maxL := 0
	for i, s := range shells {
		prepared[i] = eri.Prepare(s)
		if s.L > maxL {
			maxL = s.L
		}
	}
	quartets, err := eri.SelectQuartets(prepared, maxL, eri.DefaultScreenTol, blocks)
	if err != nil {
		return nil, err
	}
	mixed, err := eri.ComputeMixedBlocks(prepared, quartets, 0)
	if err != nil {
		return nil, err
	}

	w, err := container.NewWriter(core.Defaults(1, 1, eb))
	if err != nil {
		return nil, err
	}
	raw := 0
	for i := range mixed {
		b := &mixed[i]
		g := container.Geometry{NumSB: b.NumSB(), SBSize: b.SBSize()}
		if err := w.WriteBlock(g, b.Data); err != nil {
			return nil, err
		}
		raw += len(b.Data) * 8
	}
	buf, err := w.Bytes()
	if err != nil {
		return nil, err
	}

	// Verify the bound across the whole replay.
	r, err := container.NewReader(buf)
	if err != nil {
		return nil, err
	}
	maxErr := 0.0
	for i := range mixed {
		data, _, err := r.Next()
		if err != nil {
			return nil, err
		}
		if data == nil {
			return nil, fmt.Errorf("experiments: container ended early at block %d", i)
		}
		for j := range data {
			if e := math.Abs(data[j] - mixed[i].Data[j]); e > maxErr {
				maxErr = e
			}
		}
	}
	if maxErr > eb*(1+1e-9) {
		return nil, fmt.Errorf("experiments: hybrid bound violated (max error %g)", maxErr)
	}

	// Pure-configuration reference at the same EB for the trends check.
	pure := 0.0
	for _, l := range []int{2, 3} {
		ds, err := dataset.Get(dataset.Spec{Molecule: "benzene", L: l, MaxBlocks: blocks})
		if err != nil {
			return nil, err
		}
		cfg := core.Defaults(ds.NumSB, ds.SBSize, eb)
		comp, err := core.Compress(ds.Data, cfg, nil)
		if err != nil {
			return nil, err
		}
		pure += float64(len(ds.Data)*8) / float64(len(comp))
	}
	pure /= 2

	return &HybridResult{
		Blocks:     len(mixed),
		Sections:   w.Sections(),
		RawBytes:   raw,
		CompBytes:  len(buf),
		Ratio:      float64(raw) / float64(len(buf)),
		MaxAbsErr:  maxErr,
		PureDDFF:   pure,
		ErrorBound: eb,
	}, nil
}
