package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/encoding"
	"repro/internal/huffman"
)

// This file quantifies the design argument of Sec. IV-C: PaSTRI uses
// fixed encoding trees instead of Huffman coding for the ECQ values
// because (a) per-block Huffman pays a dictionary per block, (b) the
// huge ECQ range creates many single-occurrence symbols, and (c) a
// global dictionary serializes the workload. HuffmanComparison measures
// (a) and (b) directly on real ECQ streams.

// HuffmanComparisonResult reports total ECQ-section bits under each
// strategy over one workload.
type HuffmanComparisonResult struct {
	Blocks            int
	Values            int
	Tree5Bits         uint64 // PaSTRI's shipped fixed tree, per block
	HuffmanPerBlock   uint64 // Huffman code + dictionary per block
	HuffmanPerBlkDict uint64 // the dictionary share of HuffmanPerBlock
	HuffmanGlobal     uint64 // one dictionary for the whole stream + codes
	HuffmanGlobalDict uint64 // the dictionary share of HuffmanGlobal
	DistinctSymbols   int    // global distinct ECQ values
	SingleOccurrence  int    // symbols appearing exactly once (Sec. IV-C point 2)
}

// HuffmanComparison extracts the ECQ streams of the standard (dd|dd)
// workload and totals the ECQ-section cost under Tree 5, per-block
// Huffman, and global-dictionary Huffman.
func HuffmanComparison(blocks int) (*HuffmanComparisonResult, error) {
	res := &HuffmanComparisonResult{}
	globalFreqs := map[uint32]uint64{}
	type blockECQ struct {
		vals   []int64
		ecbMax uint
	}
	var all []blockECQ

	for _, m := range dataset.Names {
		ds, err := dataset.Get(dataset.Spec{Molecule: m, L: 2, MaxBlocks: blocks})
		if err != nil {
			return nil, err
		}
		cfg := core.Defaults(ds.NumSB, ds.SBSize, 1e-10)
		enc, err := core.NewBlockEncoder(cfg)
		if err != nil {
			return nil, err
		}
		for b := 0; b < ds.Blocks; b++ {
			vals, ecbMax, err := enc.ECQCodes(ds.Block(b))
			if err != nil {
				return nil, err
			}
			if !verifySymbolWidth(vals) {
				return nil, fmt.Errorf("experiments: ECQ value exceeds the 32-bit symbol space")
			}
			all = append(all, blockECQ{vals, ecbMax})
			res.Blocks++
			res.Values += len(vals)
			for _, v := range vals {
				globalFreqs[symbolOf(v)]++
			}
		}
	}

	// Tree 5 (no sparse escape, to isolate the entropy-coder choice).
	for _, b := range all {
		if b.ecbMax <= 1 {
			continue // Type-0: zero ECQ bits under PaSTRI
		}
		res.Tree5Bits += encoding.CostBits(b.vals, b.ecbMax, encoding.Tree5)
	}

	// Per-block Huffman: dictionary + codes for every block. Even an
	// all-zero block pays for its dictionary — each block must stay
	// self-describing for PaSTRI's parallel, bundle-free design.
	for _, b := range all {
		freqs := map[uint32]uint64{}
		for _, v := range b.vals {
			freqs[symbolOf(v)]++
		}
		codec, err := huffman.New(freqs)
		if err != nil {
			return nil, err
		}
		res.HuffmanPerBlock += codec.TableBits()
		res.HuffmanPerBlkDict += codec.TableBits()
		for _, v := range b.vals {
			res.HuffmanPerBlock += uint64(codec.CodeLen(symbolOf(v)))
		}
	}

	// Global Huffman: one dictionary, shared codes.
	codec, err := huffman.New(globalFreqs)
	if err != nil {
		return nil, err
	}
	res.HuffmanGlobal = codec.TableBits()
	res.HuffmanGlobalDict = codec.TableBits()
	for _, b := range all {
		for _, v := range b.vals {
			res.HuffmanGlobal += uint64(codec.CodeLen(symbolOf(v)))
		}
	}
	res.DistinctSymbols = len(globalFreqs)
	for _, f := range globalFreqs {
		if f == 1 {
			res.SingleOccurrence++
		}
	}
	return res, nil
}

// symbolOf maps an ECQ value to a Huffman symbol. ECQ quanta can span
// ±2^62; folding them through the bin structure (sign + bin + offset)
// would change the comparison, so symbols are the zig-zag-coded values
// truncated to 32 bits — collisions are impossible in practice because
// observed |ECQ| < 2^31 implies zig-zag < 2^32.
func symbolOf(v int64) uint32 {
	zz := uint64(v) << 1
	if v < 0 {
		zz = uint64(-v)<<1 | 1
	}
	return uint32(zz)
}

// verifySymbolWidth reports whether every value in the workload fits the
// 32-bit symbol space (checked by the tests).
func verifySymbolWidth(vals []int64) bool {
	for _, v := range vals {
		if v >= 1<<31 || v < -(1<<31) {
			return false
		}
	}
	return true
}
