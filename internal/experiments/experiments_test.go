package experiments

// These tests check the SHAPE claims of every reproduced figure on
// small (fast) dataset samples: who wins, orderings, and error-bound
// validity. The full-size numbers live in EXPERIMENTS.md and come from
// cmd/experiments / the root benchmarks.

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/encoding"
)

// testBlocks keeps the per-dataset sample small so the whole suite runs
// in seconds (datasets are cached across tests and packages).
const testBlocks = 60

func TestFig3PatternIsStrong(t *testing.T) {
	r, err := Fig3(testBlocks)
	if err != nil {
		t.Fatal(err)
	}
	if r.MaxDeviation >= r.BlockAmp*0.01 {
		t.Fatalf("pattern deviation %.3g not small vs amplitude %.3g",
			r.MaxDeviation, r.BlockAmp)
	}
	if r.Scale < -1 || r.Scale > 1 {
		t.Fatalf("scale %g outside [-1,1]", r.Scale)
	}
	if len(r.Block) != 216 || len(r.SubBlock0) != 36 {
		t.Fatalf("series lengths: %d, %d", len(r.Block), len(r.SubBlock0))
	}
}

func TestFig4MetricOrdering(t *testing.T) {
	rows, err := Fig4(testBlocks)
	if err != nil {
		t.Fatal(err)
	}
	ratio := map[string]float64{}
	for _, r := range rows {
		if r.Ratio <= 1 {
			t.Fatalf("%v ratio %.2f not > 1", r.Metric, r.Ratio)
		}
		ratio[r.Metric.String()] = r.Ratio
	}
	// Paper Fig. 4 ordering among aggregate metrics: AAR > IS > AR.
	if !(ratio["AAR"] > ratio["AR"]) {
		t.Errorf("AAR (%.2f) should beat AR (%.2f)", ratio["AAR"], ratio["AR"])
	}
	// ER must be competitive with the best (it is also the cheapest).
	best := 0.0
	for _, v := range ratio {
		if v > best {
			best = v
		}
	}
	if ratio["ER"] < 0.93*best {
		t.Errorf("ER (%.2f) not competitive with best (%.2f)", ratio["ER"], best)
	}
}

func TestFig6TypeMix(t *testing.T) {
	stats, err := Fig6(testBlocks)
	if err != nil {
		t.Fatal(err)
	}
	var sum uint64
	for _, c := range stats.TypeCount {
		sum += c
	}
	if sum != stats.Blocks || stats.Blocks == 0 {
		t.Fatalf("type counts %v don't sum to %d blocks", stats.TypeCount, stats.Blocks)
	}
	// The paper's characteristic mix: Type 0/1 are the majority
	// ("70-80%" there; we require a majority on the small sample).
	if frac := float64(stats.TypeCount[0]+stats.TypeCount[1]) / float64(sum); frac < 0.5 {
		t.Errorf("Type 0+1 fraction %.2f < 0.5", frac)
	}
	// Bin 1 (value 0) must dominate the total ECQ histogram.
	var totalVals uint64
	for _, c := range stats.TotalHist {
		totalVals += c
	}
	if float64(stats.TotalHist[1])/float64(totalVals) < 0.5 {
		t.Errorf("zero bin holds %.2f of values, expected a majority",
			float64(stats.TotalHist[1])/float64(totalVals))
	}
}

func TestFig7TreeOrdering(t *testing.T) {
	rows, err := Fig7(testBlocks)
	if err != nil {
		t.Fatal(err)
	}
	ratio := map[encoding.Method]float64{}
	for _, r := range rows {
		ratio[r.Method] = r.Ratio
	}
	// Paper Fig. 7 shape: Tree5 beats Trees 1-3 (its adaptive superset);
	// Tree3 beats Tree2. Tree4's rank is data-dependent (it codes each
	// value by its own bin, which pays off when Type-3 blocks carry
	// heavier mid-value tails than the paper's data — see
	// EXPERIMENTS.md), so it is not constrained here.
	for _, m := range []encoding.Method{encoding.Tree1, encoding.Tree2, encoding.Tree3} {
		if ratio[encoding.Tree5] < ratio[m]*0.999 {
			t.Errorf("Tree5 (%.3f) lost to %v (%.3f)", ratio[encoding.Tree5], m, ratio[m])
		}
	}
	if !(ratio[encoding.Tree3] > ratio[encoding.Tree2]) {
		t.Errorf("Tree3 (%.3f) should beat Tree2 (%.3f)",
			ratio[encoding.Tree3], ratio[encoding.Tree2])
	}
}

func TestFig9HeadlineShape(t *testing.T) {
	rows, err := Fig9(testBlocks)
	if err != nil {
		t.Fatal(err) // Fig9 verifies every error bound internally
	}
	for _, eb := range EBs {
		avg := AverageRatio(rows, eb)
		// PaSTRI beats both baselines at every error bound — the
		// paper's ~2.5x claim; we require ≥1.5x on the small sample.
		if avg["PaSTRI"] < 1.5*avg["SZ"] {
			t.Errorf("EB %.0e: PaSTRI %.2f not ≥1.5x SZ %.2f", eb, avg["PaSTRI"], avg["SZ"])
		}
		if avg["PaSTRI"] < 1.5*avg["ZFP"] {
			t.Errorf("EB %.0e: PaSTRI %.2f not ≥1.5x ZFP %.2f", eb, avg["PaSTRI"], avg["ZFP"])
		}
	}
	comp, dec := AverageRate(rows)
	if comp["PaSTRI"] < comp["SZ"] || comp["PaSTRI"] < comp["ZFP"] {
		t.Errorf("PaSTRI compression rate %.0f MB/s not fastest (SZ %.0f, ZFP %.0f)",
			comp["PaSTRI"], comp["SZ"], comp["ZFP"])
	}
	if dec["PaSTRI"] < dec["SZ"] || dec["PaSTRI"] < dec["ZFP"] {
		t.Errorf("PaSTRI decompression rate %.0f MB/s not fastest (SZ %.0f, ZFP %.0f)",
			dec["PaSTRI"], dec["SZ"], dec["ZFP"])
	}
}

func TestFig9bRateDistortionDominance(t *testing.T) {
	pts, err := Fig9b(testBlocks)
	if err != nil {
		t.Fatal(err)
	}
	// At every matched error bound, PaSTRI's bitrate must be the lowest
	// (its curve sits upper-left of SZ's and ZFP's).
	br := map[float64]map[string]float64{}
	for _, p := range pts {
		if br[p.EB] == nil {
			br[p.EB] = map[string]float64{}
		}
		br[p.EB][p.Codec] = p.BitRate
	}
	for eb, m := range br {
		if m["PaSTRI"] >= m["SZ"] || m["PaSTRI"] >= m["ZFP"] {
			t.Errorf("EB %.0e: PaSTRI bitrate %.3f not lowest (SZ %.3f, ZFP %.3f)",
				eb, m["PaSTRI"], m["SZ"], m["ZFP"])
		}
	}
}

func TestFig10PaSTRIWinsIO(t *testing.T) {
	rows, err := Fig10(testBlocks)
	if err != nil {
		t.Fatal(err)
	}
	totals := map[int]map[string][2]float64{}
	for _, r := range rows {
		if totals[r.Cores] == nil {
			totals[r.Cores] = map[string][2]float64{}
		}
		totals[r.Cores][r.Codec] = [2]float64{r.Dump.Total().Seconds(), r.Load.Total().Seconds()}
	}
	for cores, m := range totals {
		for _, other := range []string{"SZ", "ZFP"} {
			if m["PaSTRI"][0] >= m[other][0] {
				t.Errorf("%d cores: PaSTRI dump %.1fs not faster than %s %.1fs",
					cores, m["PaSTRI"][0], other, m[other][0])
			}
			if m["PaSTRI"][1] >= m[other][1] {
				t.Errorf("%d cores: PaSTRI load %.1fs not faster than %s %.1fs",
					cores, m["PaSTRI"][1], other, m[other][1])
			}
		}
	}
}

func TestFig11SpeedupShape(t *testing.T) {
	rows, err := Fig11(testBlocks)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("expected 6 rows, got %d", len(rows))
	}
	for _, r := range rows {
		// Fig. 11's claim: with reuse = 20, the PaSTRI infrastructure
		// beats recomputation at every EB and configuration.
		if r.Speedup <= 1 {
			t.Errorf("%s EB %.0e: speedup %.2f ≤ 1", r.Config, r.EB, r.Speedup)
		}
	}
}

func TestBreakdownShape(t *testing.T) {
	ps, ecq, book, err := Breakdown(testBlocks)
	if err != nil {
		t.Fatal(err)
	}
	if ecq <= ps {
		t.Errorf("ECQ share %.2f not dominant over PQ+SQ %.2f (paper: 70-80%% vs 20-30%%)", ecq, ps)
	}
	if book > 0.02 {
		t.Errorf("bookkeeping share %.3f above 2%%", book)
	}
}

func TestLosslessBaselineWeak(t *testing.T) {
	ratio, err := LosslessBaseline(testBlocks)
	if err != nil {
		t.Fatal(err)
	}
	if ratio < 1 || ratio > 4 {
		t.Errorf("DEFLATE ratio %.2f outside the credible 1-4x band", ratio)
	}
}

func TestPaSTRIParallelRateScales(t *testing.T) {
	spec := dataset.Spec{Molecule: "alanine", L: 2, MaxBlocks: testBlocks}
	c1, d1, err := PaSTRIParallelRate(spec, 1e-10, 1)
	if err != nil {
		t.Fatal(err)
	}
	c4, d4, err := PaSTRIParallelRate(spec, 1e-10, 4)
	if err != nil {
		t.Fatal(err)
	}
	if c4 < c1 || d4 < d1 {
		t.Logf("parallel rates did not improve (c: %.0f->%.0f, d: %.0f->%.0f MB/s) — acceptable on loaded CI machines",
			c1, c4, d1, d4)
	}
}

// Sec. III-B: the right block geometry is what unlocks the ratio; a
// wrong period still honors the bound but compresses far worse.
func TestGeometryAblation(t *testing.T) {
	rows, err := GeometryAblation(testBlocks)
	if err != nil {
		t.Fatal(err)
	}
	byLabel := map[string]float64{}
	for _, r := range rows {
		byLabel[r.Label] = r.Ratio
	}
	correct := byLabel["correct (36x36)"]
	if correct <= 1 {
		t.Fatalf("correct geometry ratio %.2f", correct)
	}
	for label, ratio := range byLabel {
		if label == "correct (36x36)" {
			continue
		}
		if ratio >= correct*0.8 {
			t.Errorf("%s ratio %.2f too close to correct %.2f — geometry should matter",
				label, ratio, correct)
		}
	}
}

func TestCompressWithUnknownCodec(t *testing.T) {
	if _, err := compressWith("LZMA", nil, 1e-10); err == nil {
		t.Error("unknown codec accepted")
	}
	if _, err := decompressWith("LZMA", nil); err == nil {
		t.Error("unknown codec accepted")
	}
}
