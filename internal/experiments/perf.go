package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/zcheck"
)

// This file regenerates Fig. 9: compression ratios (a), rate-distortion
// (b), and compression/decompression rates (c, d).

// Fig9Row is one (dataset, EB, codec) measurement.
type Fig9Row struct {
	Dataset        string
	EB             float64
	Codec          string
	Report         zcheck.Report
	CompressMBps   float64
	DecompressMBps float64
}

// Fig9 runs the full comparison: every dataset × EB × codec, measuring
// ratio (Fig. 9a), PSNR (feeding 9b) and single-core rates (9c, 9d),
// and verifying the error bound on every run.
func Fig9(blocks int) ([]Fig9Row, error) {
	var rows []Fig9Row
	for _, spec := range Workload(blocks) {
		ds, err := dataset.Get(spec)
		if err != nil {
			return nil, err
		}
		raw := float64(len(ds.Data) * 8)
		for _, eb := range EBs {
			for _, codec := range Codecs {
				var comp []byte
				ct, err := timeIt(func() error {
					var e error
					comp, e = compressWith(codec, ds, eb)
					return e
				})
				if err != nil {
					return nil, fmt.Errorf("%s on %s: %w", codec, ds.Name, err)
				}
				var recon []float64
				dt, err := timeIt(func() error {
					var e error
					recon, e = decompressWith(codec, comp)
					return e
				})
				if err != nil {
					return nil, fmt.Errorf("%s on %s: %w", codec, ds.Name, err)
				}
				rep, err := verifyBound(ds.Data, recon, len(comp), eb)
				if err != nil {
					return nil, fmt.Errorf("%s on %s at EB %g: %w", codec, ds.Name, eb, err)
				}
				rows = append(rows, Fig9Row{
					Dataset:        spec.String(),
					EB:             eb,
					Codec:          codec,
					Report:         rep,
					CompressMBps:   raw / 1e6 / ct,
					DecompressMBps: raw / 1e6 / dt,
				})
			}
		}
	}
	return rows, nil
}

// AverageRatio aggregates Fig9 rows: mean compression ratio per codec at
// one error bound (the paper's "PaSTRI gets up to 16.8×, SZ 7.24×, ZFP
// 5.92× at 1e-10" summary).
func AverageRatio(rows []Fig9Row, eb float64) map[string]float64 {
	sum := map[string]float64{}
	n := map[string]int{}
	for _, r := range rows {
		if r.EB == eb { //lint:floatcmp-ok grouping key: both sides are the same copied config value
			sum[r.Codec] += r.Report.Ratio
			n[r.Codec]++
		}
	}
	out := map[string]float64{}
	for c, s := range sum {
		out[c] = s / float64(n[c])
	}
	return out
}

// AverageRate aggregates mean compression and decompression rates per
// codec over all datasets and error bounds (Fig. 9c/d summary).
func AverageRate(rows []Fig9Row) (compress, decompress map[string]float64) {
	cs := map[string]float64{}
	dsum := map[string]float64{}
	n := map[string]int{}
	for _, r := range rows {
		cs[r.Codec] += r.CompressMBps
		dsum[r.Codec] += r.DecompressMBps
		n[r.Codec]++
	}
	compress, decompress = map[string]float64{}, map[string]float64{}
	for c := range cs {
		compress[c] = cs[c] / float64(n[c])
		decompress[c] = dsum[c] / float64(n[c])
	}
	return compress, decompress
}

// RDPoint is one point of the Fig. 9b rate-distortion curve.
type RDPoint struct {
	Codec   string
	EB      float64
	BitRate float64
	PSNR    float64
}

// Fig9b sweeps error bounds on the Alanine (dd|dd) dataset and returns
// PSNR-vs-bitrate points per codec. A curve closer to the upper left is
// better; PaSTRI's must dominate.
func Fig9b(blocks int) ([]RDPoint, error) {
	ds, err := dataset.Get(dataset.Spec{Molecule: "alanine", L: 2, MaxBlocks: blocks})
	if err != nil {
		return nil, err
	}
	sweep := []float64{1e-7, 1e-8, 1e-9, 1e-10, 1e-11, 1e-12, 1e-13}
	var pts []RDPoint
	for _, codec := range Codecs {
		for _, eb := range sweep {
			comp, err := compressWith(codec, ds, eb)
			if err != nil {
				return nil, err
			}
			recon, err := decompressWith(codec, comp)
			if err != nil {
				return nil, err
			}
			rep, err := verifyBound(ds.Data, recon, len(comp), eb)
			if err != nil {
				return nil, err
			}
			pts = append(pts, RDPoint{Codec: codec, EB: eb, BitRate: rep.BitRate, PSNR: rep.PSNR})
		}
	}
	return pts, nil
}

// LosslessBaseline compresses the workload with DEFLATE to demonstrate
// the paper's Sec. II premise: lossless ratios of only ≈ 1.1–2× on
// ERI data.
func LosslessBaseline(blocks int) (float64, error) {
	var raw, comp uint64
	for _, spec := range Workload(blocks) {
		ds, err := dataset.Get(spec)
		if err != nil {
			return 0, err
		}
		c, err := compressWith("Gzip", ds, 0)
		if err != nil {
			return 0, err
		}
		recon, err := decompressWith("Gzip", c)
		if err != nil {
			return 0, err
		}
		for i := range recon {
			if recon[i] != ds.Data[i] { //lint:floatcmp-ok bit-exactness is the property under test (lossless baseline)
				return 0, fmt.Errorf("experiments: lossless baseline not lossless")
			}
		}
		raw += uint64(len(ds.Data) * 8)
		comp += uint64(len(c))
	}
	return float64(raw) / float64(comp), nil
}

// ParallelRow is one worker count's throughput measurement.
type ParallelRow struct {
	Workers        int
	CompressMBps   float64
	DecompressMBps float64
}

// ParallelScaling measures PaSTRI compress/decompress throughput at
// power-of-two worker counts up to maxWorkers on the alanine (dd|dd)
// workload — the block-parallel scaling claim of Sec. IV-C.
func ParallelScaling(blocks, maxWorkers int) ([]ParallelRow, error) {
	if maxWorkers < 1 {
		maxWorkers = 1
	}
	spec := dataset.Spec{Molecule: "alanine", L: 2, MaxBlocks: blocks}
	var rows []ParallelRow
	for w := 1; ; w *= 2 {
		if w > maxWorkers {
			w = maxWorkers
		}
		c, d, err := PaSTRIParallelRate(spec, 1e-10, w)
		if err != nil {
			return nil, err
		}
		rows = append(rows, ParallelRow{Workers: w, CompressMBps: c, DecompressMBps: d})
		if w == maxWorkers {
			return rows, nil
		}
	}
}

// PaSTRIParallelRate measures PaSTRI's multi-worker throughput on one
// dataset (MB/s of raw data), demonstrating the block-parallel design
// of Sec. IV-C.
func PaSTRIParallelRate(spec dataset.Spec, eb float64, workers int) (compressMBps, decompressMBps float64, err error) {
	ds, err := dataset.Get(spec)
	if err != nil {
		return 0, 0, err
	}
	cfg := core.Defaults(ds.NumSB, ds.SBSize, eb)
	cfg.Workers = workers
	raw := float64(len(ds.Data) * 8)
	var comp []byte
	ct, err := timeIt(func() error {
		var e error
		comp, e = core.Compress(ds.Data, cfg, nil)
		return e
	})
	if err != nil {
		return 0, 0, err
	}
	dt, err := timeIt(func() error {
		_, e := core.Decompress(comp, workers)
		return e
	})
	if err != nil {
		return 0, 0, err
	}
	return raw / 1e6 / ct, raw / 1e6 / dt, nil
}
