package experiments

import "testing"

// The paper's hybrid claim: "Metrics for hybrid configurations follow
// very similar trends of the metrics of pure configurations."
func TestHybridFollowsPureTrends(t *testing.T) {
	r, err := Hybrid(testBlocks)
	if err != nil {
		t.Fatal(err)
	}
	if r.Blocks == 0 {
		t.Fatal("no hybrid blocks")
	}
	// A d+f shell set yields several distinct block geometries.
	if r.Sections < 3 {
		t.Errorf("only %d block geometries in the hybrid stream", r.Sections)
	}
	if r.Ratio <= 1 {
		t.Fatalf("hybrid ratio %.2f", r.Ratio)
	}
	// "Very similar trends": hybrid ratio within 2x of the pure mean —
	// same order of magnitude, same winner-by-far over raw storage.
	if r.Ratio < r.PureDDFF/2 || r.Ratio > r.PureDDFF*2 {
		t.Errorf("hybrid ratio %.2f far from pure mean %.2f", r.Ratio, r.PureDDFF)
	}
	if r.MaxAbsErr > r.ErrorBound {
		t.Errorf("bound violated: %g > %g", r.MaxAbsErr, r.ErrorBound)
	}
}
