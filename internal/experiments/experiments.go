// Package experiments regenerates every table and figure of the paper's
// evaluation (Sec. V) plus the design-exploration figures (Sec. IV),
// using datasets produced by the from-scratch integral engine and the
// three compressors in this repository. Each FigN function returns
// structured results; the cmd/experiments binary renders them as text
// and the root bench_test.go wraps them in testing.B benchmarks.
//
// The paper's absolute numbers came from GAMESS data on the Bebop
// cluster; the reproduction targets the *shape* of each result (who
// wins, by roughly what factor, where crossovers fall). EXPERIMENTS.md
// records measured-vs-paper values side by side.
package experiments

import (
	"fmt"
	"math"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/encoding"
	"repro/internal/eri"
	"repro/internal/lossless"
	"repro/internal/pattern"
	"repro/internal/sz"
	"repro/internal/zcheck"
	"repro/internal/zfp"
)

// EBs are the error bounds of Fig. 9 (Sec. V-A).
var EBs = []float64{1e-11, 1e-10, 1e-9}

// Codecs names the compared compressors in the paper's order.
var Codecs = []string{"SZ", "ZFP", "PaSTRI"}

// Workload identifies the standard evaluation datasets: all three
// molecules × {(dd|dd), (ff|ff)}.
func Workload(blocks int) []dataset.Spec {
	var specs []dataset.Spec
	for _, m := range dataset.Names {
		for _, l := range []int{2, 3} {
			specs = append(specs, dataset.Spec{Molecule: m, L: l, MaxBlocks: blocks})
		}
	}
	return specs
}

// compressWith runs one codec on one dataset and returns the compressed
// bytes. PaSTRI runs single-worker so per-core rates are comparable
// with the (single-threaded) SZ and ZFP baselines.
func compressWith(codec string, ds *eri.Dataset, eb float64) ([]byte, error) {
	switch codec {
	case "PaSTRI":
		cfg := core.Defaults(ds.NumSB, ds.SBSize, eb)
		cfg.Workers = 1
		return core.Compress(ds.Data, cfg, nil)
	case "SZ":
		return sz.Compress(ds.Data, eb)
	case "ZFP":
		return zfp.Compress(ds.Data, eb)
	case "Gzip":
		return lossless.Compress(ds.Data)
	default:
		return nil, fmt.Errorf("experiments: unknown codec %q", codec)
	}
}

func decompressWith(codec string, comp []byte) ([]float64, error) {
	switch codec {
	case "PaSTRI":
		return core.Decompress(comp, 1)
	case "SZ":
		return sz.Decompress(comp)
	case "ZFP":
		return zfp.Decompress(comp)
	case "Gzip":
		return lossless.Decompress(comp)
	default:
		return nil, fmt.Errorf("experiments: unknown codec %q", codec)
	}
}

// ------------------------------------------------------------------
// Fig. 3 — the latent pattern in one ERI block.

// Fig3Result carries the series of Fig. 3: one (dd|dd) block's first
// sub-blocks, the rescaled comparison, and the deviations.
type Fig3Result struct {
	Block        []float64 // the first 6 sub-blocks (216 points, as in the paper)
	SubBlock0    []float64 // [0:35]
	SubBlock1    []float64 // [36:71]
	Scale        float64   // ER scaling coefficient of sub-block 1 vs the pattern
	Rescaled     []float64 // sub-block 1 divided by its scale
	AbsDeviation []float64 // |sub-block1 − scale·pattern| per point
	MaxDeviation float64
	BlockAmp     float64 // block extremum
}

// Fig3 reproduces the pattern demonstration on a benzene (dd|dd) block,
// choosing (like the paper's illustration) a block whose sub-blocks are
// visibly scaled copies.
func Fig3(blocks int) (*Fig3Result, error) {
	ds, err := dataset.Get(dataset.Spec{Molecule: "benzene", L: 2, MaxBlocks: blocks})
	if err != nil {
		return nil, err
	}
	// Pick the Type-1-ish block with the largest amplitude: strong
	// pattern, visible signal.
	bestBlock, bestAmp := -1, 0.0
	cfg := core.Defaults(ds.NumSB, ds.SBSize, 1e-10)
	for b := 0; b < ds.Blocks; b++ {
		blk := ds.Block(b)
		res, err := pattern.Analyze(blk, cfg.NumSB, cfg.SBSize, pattern.ER)
		if err != nil {
			return nil, err
		}
		devs := pattern.Deviations(blk, cfg.NumSB, cfg.SBSize, res)
		amp, _ := maxAbs(blk)
		dev, _ := maxAbs(devs)
		if amp > bestAmp && dev < amp*1e-3 && amp > 1e-9 {
			bestAmp, bestBlock = amp, b
		}
	}
	if bestBlock < 0 {
		return nil, fmt.Errorf("experiments: no strongly patterned block found")
	}
	blk := ds.Block(bestBlock)
	res, err := pattern.Analyze(blk, cfg.NumSB, cfg.SBSize, pattern.ER)
	if err != nil {
		return nil, err
	}
	pat := blk[res.PatternIndex*cfg.SBSize : (res.PatternIndex+1)*cfg.SBSize]
	// Compare the pattern against the sub-block with the largest
	// non-unit scale — the visibly "same shape, different amplitude"
	// pair the paper plots in Fig. 3(b).
	cmpIdx, cmpScale := -1, 0.0
	for s, sc := range res.Scales {
		if s == res.PatternIndex {
			continue
		}
		if math.Abs(sc) > math.Abs(cmpScale) {
			cmpIdx, cmpScale = s, sc
		}
	}
	if cmpIdx < 0 {
		return nil, fmt.Errorf("experiments: degenerate block")
	}
	cmp := blk[cmpIdx*cfg.SBSize : (cmpIdx+1)*cfg.SBSize]
	out := &Fig3Result{
		Block:     append([]float64(nil), blk[:6*36]...),
		SubBlock0: append([]float64(nil), pat...),
		SubBlock1: append([]float64(nil), cmp...),
		Scale:     cmpScale,
		BlockAmp:  bestAmp,
	}
	out.Rescaled = make([]float64, cfg.SBSize)
	out.AbsDeviation = make([]float64, cfg.SBSize)
	for i := 0; i < cfg.SBSize; i++ {
		if cmpScale != 0 { //lint:floatcmp-ok division guard: only an exactly-zero scale divides badly
			out.Rescaled[i] = cmp[i] / cmpScale
		}
		d := math.Abs(cmp[i] - cmpScale*pat[i])
		out.AbsDeviation[i] = d
		if d > out.MaxDeviation {
			out.MaxDeviation = d
		}
	}
	return out, nil
}

// ------------------------------------------------------------------
// Fig. 4 — compression ratio per pattern-scaling metric.

// MetricRow is one row of the Fig. 4 table.
type MetricRow struct {
	Metric pattern.Metric
	Ratio  float64
}

// Fig4 compresses the standard workload once per scaling metric at
// EB = 1e-10 and reports the aggregate compression ratio, reproducing
// the metric comparison table in Fig. 4. (The paper marks FR "N/A"
// because first-point scaling is unreliable; here it simply produces
// the worst ratio — the error bound holds regardless.)
func Fig4(blocks int) ([]MetricRow, error) {
	specs := Workload(blocks)
	var rows []MetricRow
	for _, m := range pattern.Metrics {
		var raw, comp uint64
		for _, spec := range specs {
			ds, err := dataset.Get(spec)
			if err != nil {
				return nil, err
			}
			cfg := core.Defaults(ds.NumSB, ds.SBSize, 1e-10)
			cfg.Metric = m
			c, err := core.Compress(ds.Data, cfg, nil)
			if err != nil {
				return nil, err
			}
			raw += uint64(len(ds.Data) * 8)
			comp += uint64(len(c))
		}
		rows = append(rows, MetricRow{Metric: m, Ratio: float64(raw) / float64(comp)})
	}
	return rows, nil
}

// ------------------------------------------------------------------
// Fig. 6 — ECQ value distribution per block type.

// Fig6 compresses the standard workload at EB = 1e-10 and returns the
// accumulated per-type ECQ bin histograms.
func Fig6(blocks int) (*core.Stats, error) {
	stats := core.NewStats()
	for _, spec := range Workload(blocks) {
		ds, err := dataset.Get(spec)
		if err != nil {
			return nil, err
		}
		cfg := core.Defaults(ds.NumSB, ds.SBSize, 1e-10)
		if _, err := core.Compress(ds.Data, cfg, stats); err != nil {
			return nil, err
		}
	}
	return stats, nil
}

// ------------------------------------------------------------------
// Fig. 7 — compression ratio per encoding tree.

// EncodingRow is one row of the Fig. 7 table.
type EncodingRow struct {
	Method encoding.Method
	Ratio  float64
}

// Fig7 compresses the standard workload once per ECQ encoder at
// EB = 1e-10, with the sparse representation disabled so the encoder
// choice alone differentiates the output (as in the paper's tree
// comparison).
func Fig7(blocks int) ([]EncodingRow, error) {
	specs := Workload(blocks)
	methods := []encoding.Method{encoding.Tree1, encoding.Tree2, encoding.Tree3,
		encoding.Tree4, encoding.Tree5}
	var rows []EncodingRow
	for _, m := range methods {
		var raw, comp uint64
		for _, spec := range specs {
			ds, err := dataset.Get(spec)
			if err != nil {
				return nil, err
			}
			cfg := core.Defaults(ds.NumSB, ds.SBSize, 1e-10)
			cfg.Encoding = m
			cfg.DisableSparse = true
			c, err := core.Compress(ds.Data, cfg, nil)
			if err != nil {
				return nil, err
			}
			raw += uint64(len(ds.Data) * 8)
			comp += uint64(len(c))
		}
		rows = append(rows, EncodingRow{Method: m, Ratio: float64(raw) / float64(comp)})
	}
	return rows, nil
}

// ------------------------------------------------------------------
// Sec. V-B — output composition breakdown.

// Breakdown reports the PQ+SQ / ECQ / bookkeeping shares of PaSTRI's
// output on the standard workload (paper: 20–30 % / 70–80 % / < 0.5 %).
func Breakdown(blocks int) (patternScale, ecq, bookkeeping float64, err error) {
	stats, err := Fig6(blocks)
	if err != nil {
		return 0, 0, 0, err
	}
	ps, e, b := stats.Fractions()
	return ps, e, b, nil
}

// GeometryRow is one entry of the block-geometry ablation.
type GeometryRow struct {
	Label  string
	NumSB  int
	SBSize int
	Ratio  float64
}

// GeometryAblation quantifies the paper's Sec. III-B requirement that
// "the user should provide the information about which BF
// configuration is being used": compressing the benzene (dd|dd) stream
// with the correct 36×36 sub-block period versus misaligned geometries.
// A wrong period destroys the pattern match and the ratio collapses —
// but the error bound still holds (the EC stage is unconditional).
func GeometryAblation(blocks int) ([]GeometryRow, error) {
	ds, err := dataset.Get(dataset.Spec{Molecule: "benzene", L: 2, MaxBlocks: blocks})
	if err != nil {
		return nil, err
	}
	n := len(ds.Data)
	shapes := []GeometryRow{
		{Label: "correct (36x36)", NumSB: 36, SBSize: 36},
		{Label: "misaligned (36x24)", NumSB: 36, SBSize: 24},
		{Label: "transposed period (24x54)", NumSB: 24, SBSize: 54},
		{Label: "flat (1x1296)", NumSB: 1, SBSize: 1296},
	}
	for i := range shapes {
		bs := shapes[i].NumSB * shapes[i].SBSize
		usable := n - n%bs
		cfg := core.Defaults(shapes[i].NumSB, shapes[i].SBSize, 1e-10)
		comp, err := core.Compress(ds.Data[:usable], cfg, nil)
		if err != nil {
			return nil, err
		}
		recon, err := core.Decompress(comp, 0)
		if err != nil {
			return nil, err
		}
		if _, err := verifyBound(ds.Data[:usable], recon, len(comp), 1e-10); err != nil {
			return nil, fmt.Errorf("geometry %s: %w", shapes[i].Label, err)
		}
		shapes[i].Ratio = float64(usable*8) / float64(len(comp))
	}
	return shapes, nil
}

func maxAbs(xs []float64) (float64, int) {
	best, idx := 0.0, -1
	for i, x := range xs {
		if a := math.Abs(x); a > best || idx == -1 {
			best, idx = a, i
		}
	}
	return best, idx
}

// timeIt runs f once and returns elapsed seconds.
func timeIt(f func() error) (float64, error) {
	t0 := time.Now()
	err := f()
	return time.Since(t0).Seconds(), err
}

// verifyBound checks an error-bounded reconstruction with a
// floating-point-aware tolerance: at extreme value-to-bound ratios
// (|x|/EB approaching 2^52) the residual division r/(2·EB) itself
// rounds by a fraction of a quantum, so every quantizing compressor
// (ours, SZ, ZFP alike) can exceed EB by O(ε·|x|). The slack
// ε·valueRange is far below EB in every realistic regime.
func verifyBound(orig, recon []float64, compBytes int, eb float64) (zcheck.Report, error) {
	rep, err := zcheck.Assess(orig, recon, compBytes, 0)
	if err != nil {
		return rep, err
	}
	allow := eb*(1+1e-9) + 4e-16*rep.ValueRange
	if rep.MaxAbsErr > allow {
		return rep, fmt.Errorf("experiments: error bound %g violated (max error %g, allowance %g)",
			eb, rep.MaxAbsErr, allow)
	}
	return rep, nil
}
