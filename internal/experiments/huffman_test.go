package experiments

import "testing"

// Sec. IV-C's argument against Huffman must hold quantitatively on real
// ECQ streams: per-block Huffman loses to the fixed trees because of
// dictionary overhead, and the global dictionary carries many
// single-occurrence symbols.
func TestHuffmanComparisonShape(t *testing.T) {
	res, err := HuffmanComparison(testBlocks)
	if err != nil {
		t.Fatal(err)
	}
	if res.Blocks == 0 || res.Values == 0 {
		t.Fatal("empty comparison")
	}
	if res.Tree5Bits == 0 {
		t.Fatal("Tree5 measured zero bits")
	}
	// (a) Per-block Huffman must lose to the fixed tree: the dictionary
	// is paid per block and cannot amortize.
	if res.HuffmanPerBlock <= res.Tree5Bits {
		t.Errorf("per-block Huffman (%d bits) should exceed Tree5 (%d bits)",
			res.HuffmanPerBlock, res.Tree5Bits)
	}
	// The dictionary share must be the reason.
	if res.HuffmanPerBlock-res.HuffmanPerBlkDict > res.HuffmanPerBlock {
		t.Error("dictionary accounting inconsistent")
	}
	if res.HuffmanPerBlkDict*2 < res.HuffmanPerBlock-res.Tree5Bits {
		t.Logf("note: per-block Huffman loses even beyond its dictionary cost")
	}
	// (b) The global ECQ alphabet carries many single-occurrence symbols
	// (the paper's "huge number of bins ... single-value occurrences").
	if res.DistinctSymbols < 100 {
		t.Errorf("only %d distinct ECQ symbols — workload too uniform to test", res.DistinctSymbols)
	}
	if frac := float64(res.SingleOccurrence) / float64(res.DistinctSymbols); frac < 0.2 {
		t.Errorf("single-occurrence symbols only %.2f of alphabet", frac)
	}
}

func TestSymbolOfZigZag(t *testing.T) {
	// symbolOf maps v to |v|<<1 with the sign in the low bit.
	cases := map[int64]uint32{0: 0, 1: 2, -1: 3, 2: 4, -2: 5, 100: 200, -100: 201}
	for v, want := range cases {
		if got := symbolOf(v); got != want {
			t.Errorf("symbolOf(%d) = %d, want %d", v, got, want)
		}
	}
	// Distinctness over a range.
	seen := map[uint32]bool{}
	for v := int64(-5000); v <= 5000; v++ {
		s := symbolOf(v)
		if seen[s] {
			t.Fatalf("collision at %d", v)
		}
		seen[s] = true
	}
	if !verifySymbolWidth([]int64{1 << 30, -(1 << 30)}) {
		t.Error("in-range values rejected")
	}
	if verifySymbolWidth([]int64{1 << 31}) {
		t.Error("out-of-range value accepted")
	}
}
