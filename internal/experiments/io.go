package experiments

import (
	"time"

	"repro/internal/basis"
	"repro/internal/dataset"
	"repro/internal/eri"
	"repro/internal/iosim"
)

// This file regenerates Fig. 10 (parallel dump/load to the PFS) and
// Fig. 11 (recompute-vs-decompress total time), driving the analytic
// I/O model with rates and ratios measured on this machine.

// CoreCounts are the process counts of Fig. 10.
var CoreCounts = []int{256, 512, 1024, 2048}

// Fig10TotalBytes is the modeled dataset size: 2 GB per 256-core group,
// in the spirit of the paper's "at least 2 GB per configuration"
// sampling, scaled to cluster size so elapsed times land in the
// minutes regime the paper shows.
const Fig10TotalBytes = 4e12

// MeasureProfiles runs every codec once over the Alanine (dd|dd)
// dataset at EB = 1e-10 and returns iosim profiles with measured
// single-core rates and ratios.
func MeasureProfiles(blocks int) (map[string]iosim.CodecProfile, error) {
	ds, err := dataset.Get(dataset.Spec{Molecule: "alanine", L: 2, MaxBlocks: blocks})
	if err != nil {
		return nil, err
	}
	raw := float64(len(ds.Data) * 8)
	const eb = 1e-10
	out := map[string]iosim.CodecProfile{}
	for _, codec := range Codecs {
		var comp []byte
		ct, err := timeIt(func() error {
			var e error
			comp, e = compressWith(codec, ds, eb)
			return e
		})
		if err != nil {
			return nil, err
		}
		dt, err := timeIt(func() error {
			_, e := decompressWith(codec, comp)
			return e
		})
		if err != nil {
			return nil, err
		}
		out[codec] = iosim.CodecProfile{
			Name:          codec,
			Ratio:         raw / float64(len(comp)),
			CompressBps:   raw / ct,
			DecompressBps: raw / dt,
		}
	}
	return out, nil
}

// Fig10Row is one bar group of Fig. 10.
type Fig10Row struct {
	Cores int
	Codec string
	Dump  iosim.Phase
	Load  iosim.Phase
}

// Fig10 models dumping and loading the Alanine (dd|dd) dataset with
// each codec at 256–2048 cores, file-per-process on a GPFS-class file
// system, using measured codec profiles.
func Fig10(blocks int) ([]Fig10Row, error) {
	profiles, err := MeasureProfiles(blocks)
	if err != nil {
		return nil, err
	}
	cfg := iosim.GPFSDefaults()
	var rows []Fig10Row
	for _, cores := range CoreCounts {
		for _, codec := range Codecs {
			p := profiles[codec]
			d, err := iosim.Dump(cfg, p, Fig10TotalBytes, cores)
			if err != nil {
				return nil, err
			}
			l, err := iosim.Load(cfg, p, Fig10TotalBytes, cores)
			if err != nil {
				return nil, err
			}
			rows = append(rows, Fig10Row{Cores: cores, Codec: codec, Dump: d, Load: l})
		}
	}
	return rows, nil
}

// MeasureERIGenRate times single-worker ERI generation — the stand-in
// for GAMESS's integral computation rate (the paper reports 322.82 MB/s
// for (dd|dd) and 622.81 MB/s for (ff|ff)). Only the quartet
// computation itself is timed: screening/setup cost is amortized over
// the full O(N⁴) stream in a production run and would otherwise
// dominate a small sample.
func MeasureERIGenRate(molecule string, l int, blocks int) (float64, error) {
	mol, err := dataset.PaperMolecule(molecule)
	if err != nil {
		return 0, err
	}
	shells, err := basis.PureShells(mol, l)
	if err != nil {
		return 0, err
	}
	prepared := make([]*eri.PreparedShell, len(shells))
	for i, s := range shells {
		prepared[i] = eri.Prepare(s)
	}
	quartets, err := eri.SelectQuartets(prepared, l, eri.DefaultScreenTol, blocks)
	if err != nil {
		return 0, err
	}
	t0 := time.Now()
	ds, err := eri.ComputeQuartets("rate-probe", prepared, quartets, 1)
	if err != nil {
		return 0, err
	}
	return float64(len(ds.Data)*8) / time.Since(t0).Seconds(), nil
}

// Fig11Row is one bar group of Fig. 11.
type Fig11Row struct {
	Config   string // "(dd|dd)" or "(ff|ff)"
	EB       float64
	Original time.Duration // recompute ERIs on every use
	Infra    time.Duration // compute once + compress + decompress per use
	Speedup  float64
}

// Fig11Reuse is the data-reuse count the paper assumes ("a total of 20
// times, which is a conservatively acceptable value for ERIs").
const Fig11Reuse = 20

// Fig11 compares total computation time of the original
// recompute-everything strategy against the PaSTRI infrastructure for
// both configurations and all three error bounds, using measured
// generation and codec rates. Disk time is excluded as in the paper.
func Fig11(blocks int) ([]Fig11Row, error) {
	var rows []Fig11Row
	for _, l := range []int{2, 3} {
		genBps, err := MeasureERIGenRate("alanine", l, min(blocks, 300))
		if err != nil {
			return nil, err
		}
		ds, err := dataset.Get(dataset.Spec{Molecule: "alanine", L: l, MaxBlocks: blocks})
		if err != nil {
			return nil, err
		}
		raw := float64(len(ds.Data) * 8)
		cfgName := "(dd|dd)"
		if l == 3 {
			cfgName = "(ff|ff)"
		}
		for _, eb := range EBs {
			var comp []byte
			ct, err := timeIt(func() error {
				var e error
				comp, e = compressWith("PaSTRI", ds, eb)
				return e
			})
			if err != nil {
				return nil, err
			}
			dt, err := timeIt(func() error {
				_, e := decompressWith("PaSTRI", comp)
				return e
			})
			if err != nil {
				return nil, err
			}
			profile := iosim.CodecProfile{
				Name:          "PaSTRI",
				Ratio:         raw / float64(len(comp)),
				CompressBps:   raw / ct,
				DecompressBps: raw / dt,
			}
			orig, infra, err := iosim.ReuseComparison(genBps, profile, raw, Fig11Reuse)
			if err != nil {
				return nil, err
			}
			rows = append(rows, Fig11Row{
				Config:   cfgName,
				EB:       eb,
				Original: orig,
				Infra:    infra,
				Speedup:  float64(orig) / float64(infra),
			})
		}
	}
	return rows, nil
}
