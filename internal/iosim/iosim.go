// Package iosim models the parallel-I/O experiments of the paper's
// evaluation (Fig. 10 and Fig. 11) analytically. The paper ran
// file-per-process POSIX I/O against GPFS on the Bebop cluster; the
// elapsed time of a dump or load is governed by
//
//	time = per-file latency + bytes / min(per-process BW, aggregate BW / P)
//
// plus the (measured) compression or decompression time. We feed the
// model with codec rates and ratios measured on this machine, so the
// *shape* of the figures — who wins, by how much, how it scales with
// core count — reproduces, while absolute seconds depend on the
// parameterization (see DESIGN.md's substitution table).
package iosim

import (
	"fmt"
	"time"
)

// PFSConfig parameterizes the parallel file system.
type PFSConfig struct {
	AggregateWriteBW  float64       // bytes/s across all processes
	AggregateReadBW   float64       // bytes/s across all processes
	PerProcessWriteBW float64       // bytes/s cap per process (POSIX stream)
	PerProcessReadBW  float64       // bytes/s cap per process
	FileLatency       time.Duration // open/close + metadata per file
}

// GPFSDefaults returns a GPFS configuration in the class of the paper's
// Bebop system: tens of GB/s aggregate, a few hundred MB/s per POSIX
// stream.
func GPFSDefaults() PFSConfig {
	return PFSConfig{
		AggregateWriteBW:  20e9,
		AggregateReadBW:   30e9,
		PerProcessWriteBW: 250e6,
		PerProcessReadBW:  350e6,
		FileLatency:       20 * time.Millisecond,
	}
}

// Validate reports configuration errors.
func (c PFSConfig) Validate() error {
	if c.AggregateWriteBW <= 0 || c.AggregateReadBW <= 0 ||
		c.PerProcessWriteBW <= 0 || c.PerProcessReadBW <= 0 {
		return fmt.Errorf("iosim: bandwidths must be positive: %+v", c)
	}
	if c.FileLatency < 0 {
		return fmt.Errorf("iosim: negative latency")
	}
	return nil
}

// CodecProfile carries the measured behaviour of one compressor on one
// dataset: the achieved ratio and the per-core (de)compression
// throughputs in raw bytes per second. Ratio 1 with infinite rates
// models "no compression".
type CodecProfile struct {
	Name          string
	Ratio         float64
	CompressBps   float64
	DecompressBps float64
}

// Uncompressed is the no-compressor profile.
var Uncompressed = CodecProfile{Name: "none", Ratio: 1}

// Phase breaks an elapsed dump or load into its components.
type Phase struct {
	Compress   time.Duration
	Write      time.Duration
	Read       time.Duration
	Decompress time.Duration
}

// Total returns the summed elapsed time.
func (p Phase) Total() time.Duration {
	return p.Compress + p.Write + p.Read + p.Decompress
}

func seconds(s float64) time.Duration {
	return time.Duration(s * float64(time.Second))
}

// Dump models compressing and writing totalRawBytes spread evenly over
// procs processes (file-per-process).
func Dump(cfg PFSConfig, c CodecProfile, totalRawBytes float64, procs int) (Phase, error) {
	if err := cfg.Validate(); err != nil {
		return Phase{}, err
	}
	if procs <= 0 || totalRawBytes < 0 || c.Ratio <= 0 {
		return Phase{}, fmt.Errorf("iosim: invalid dump parameters (procs=%d bytes=%g ratio=%g)",
			procs, totalRawBytes, c.Ratio)
	}
	perProcRaw := totalRawBytes / float64(procs)
	perProcComp := perProcRaw / c.Ratio
	var ph Phase
	if c.CompressBps > 0 {
		ph.Compress = seconds(perProcRaw / c.CompressBps)
	}
	bw := cfg.PerProcessWriteBW
	if agg := cfg.AggregateWriteBW / float64(procs); agg < bw {
		bw = agg
	}
	ph.Write = cfg.FileLatency + seconds(perProcComp/bw)
	return ph, nil
}

// Load models reading and decompressing totalRawBytes spread evenly
// over procs processes.
func Load(cfg PFSConfig, c CodecProfile, totalRawBytes float64, procs int) (Phase, error) {
	if err := cfg.Validate(); err != nil {
		return Phase{}, err
	}
	if procs <= 0 || totalRawBytes < 0 || c.Ratio <= 0 {
		return Phase{}, fmt.Errorf("iosim: invalid load parameters (procs=%d bytes=%g ratio=%g)",
			procs, totalRawBytes, c.Ratio)
	}
	perProcRaw := totalRawBytes / float64(procs)
	perProcComp := perProcRaw / c.Ratio
	var ph Phase
	bw := cfg.PerProcessReadBW
	if agg := cfg.AggregateReadBW / float64(procs); agg < bw {
		bw = agg
	}
	ph.Read = cfg.FileLatency + seconds(perProcComp/bw)
	if c.DecompressBps > 0 {
		ph.Decompress = seconds(perProcRaw / c.DecompressBps)
	}
	return ph, nil
}

// SharedFileConfig extends PFSConfig for MPI-IO-style shared-file
// collective I/O: all processes write one file through collective
// buffering, paying a per-operation coordination cost but avoiding
// per-file metadata. The paper's footnote 1 notes POSIX file-per-process
// and MPI-IO perform similarly at thousands-of-files scale on GPFS
// (Turner, ARCHER webinar 2017); this model reproduces that
// equivalence.
type SharedFileConfig struct {
	PFSConfig
	// CollectiveOverhead is the per-process coordination cost of a
	// collective operation (two-phase I/O exchange).
	CollectiveOverhead time.Duration
	// LockContention scales throughput down as processes contend for
	// file-range locks: effective aggregate = aggregate / (1 + c·log2(P)).
	LockContention float64
}

// SharedFileDefaults returns an MPI-IO-on-GPFS-class parameterization.
func SharedFileDefaults() SharedFileConfig {
	return SharedFileConfig{
		PFSConfig:          GPFSDefaults(),
		CollectiveOverhead: 50 * time.Millisecond,
		LockContention:     0.01,
	}
}

// DumpShared models compressing and collectively writing totalRawBytes
// over procs processes into one shared file.
func DumpShared(cfg SharedFileConfig, c CodecProfile, totalRawBytes float64, procs int) (Phase, error) {
	if err := cfg.Validate(); err != nil {
		return Phase{}, err
	}
	if procs <= 0 || totalRawBytes < 0 || c.Ratio <= 0 || cfg.LockContention < 0 {
		return Phase{}, fmt.Errorf("iosim: invalid shared-dump parameters")
	}
	perProcRaw := totalRawBytes / float64(procs)
	var ph Phase
	if c.CompressBps > 0 {
		ph.Compress = seconds(perProcRaw / c.CompressBps)
	}
	agg := cfg.AggregateWriteBW / (1 + cfg.LockContention*log2(float64(procs)))
	bw := cfg.PerProcessWriteBW
	if a := agg / float64(procs); a < bw {
		bw = a
	}
	ph.Write = cfg.CollectiveOverhead + seconds(perProcRaw/c.Ratio/bw)
	return ph, nil
}

// LoadShared models the collective read + decompress path.
func LoadShared(cfg SharedFileConfig, c CodecProfile, totalRawBytes float64, procs int) (Phase, error) {
	if err := cfg.Validate(); err != nil {
		return Phase{}, err
	}
	if procs <= 0 || totalRawBytes < 0 || c.Ratio <= 0 || cfg.LockContention < 0 {
		return Phase{}, fmt.Errorf("iosim: invalid shared-load parameters")
	}
	perProcRaw := totalRawBytes / float64(procs)
	var ph Phase
	agg := cfg.AggregateReadBW / (1 + cfg.LockContention*log2(float64(procs)))
	bw := cfg.PerProcessReadBW
	if a := agg / float64(procs); a < bw {
		bw = a
	}
	ph.Read = cfg.CollectiveOverhead + seconds(perProcRaw/c.Ratio/bw)
	if c.DecompressBps > 0 {
		ph.Decompress = seconds(perProcRaw / c.DecompressBps)
	}
	return ph, nil
}

func log2(x float64) float64 {
	if x <= 1 {
		return 0
	}
	n := 0.0
	for x > 1 {
		x /= 2
		n++
	}
	return n
}

// ReuseComparison models Fig. 11: obtaining the same integral data
// `reuse` times, either by recomputing it every time ("Original"
// GAMESS) or by computing once, compressing once, and decompressing on
// each subsequent use (PaSTRI infrastructure). Disk time is excluded,
// as in the paper ("the data is assumed to fit into the memory").
// Rates are per-core raw bytes/s; totals scale out, so the ratio is
// core-count independent.
func ReuseComparison(eriGenBps float64, c CodecProfile, totalRawBytes float64, reuse int) (original, infra time.Duration, err error) {
	if eriGenBps <= 0 || totalRawBytes < 0 || reuse < 1 {
		return 0, 0, fmt.Errorf("iosim: invalid reuse parameters")
	}
	if c.CompressBps <= 0 || c.DecompressBps <= 0 {
		return 0, 0, fmt.Errorf("iosim: codec %q lacks measured rates", c.Name)
	}
	original = seconds(float64(reuse) * totalRawBytes / eriGenBps)
	infra = seconds(totalRawBytes/eriGenBps +
		totalRawBytes/c.CompressBps +
		float64(reuse)*totalRawBytes/c.DecompressBps)
	return original, infra, nil
}
