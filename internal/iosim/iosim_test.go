package iosim

import (
	"testing"
	"time"
)

var pastri = CodecProfile{Name: "PaSTRI", Ratio: 16.8, CompressBps: 660e6, DecompressBps: 1110e6}
var szp = CodecProfile{Name: "SZ", Ratio: 7.24, CompressBps: 104e6, DecompressBps: 148e6}
var zfpp = CodecProfile{Name: "ZFP", Ratio: 5.92, CompressBps: 308e6, DecompressBps: 260e6}

const tb = 1e12

func TestDumpFasterWithBetterRatio(t *testing.T) {
	cfg := GPFSDefaults()
	for _, procs := range []int{256, 512, 1024, 2048} {
		p, err := Dump(cfg, pastri, tb, procs)
		if err != nil {
			t.Fatal(err)
		}
		s, err := Dump(cfg, szp, tb, procs)
		if err != nil {
			t.Fatal(err)
		}
		z, err := Dump(cfg, zfpp, tb, procs)
		if err != nil {
			t.Fatal(err)
		}
		// The paper's headline: PaSTRI ≥ 2× faster than both.
		if p.Total()*2 > s.Total() || p.Total()*2 > z.Total() {
			t.Errorf("procs=%d: PaSTRI %v not 2x faster than SZ %v / ZFP %v",
				procs, p.Total(), s.Total(), z.Total())
		}
	}
}

func TestLoadDominatedByReadPlusDecompress(t *testing.T) {
	cfg := GPFSDefaults()
	l, err := Load(cfg, szp, tb, 512)
	if err != nil {
		t.Fatal(err)
	}
	if l.Read <= 0 || l.Decompress <= 0 || l.Compress != 0 || l.Write != 0 {
		t.Fatalf("phase breakdown wrong: %+v", l)
	}
	if l.Total() != l.Read+l.Decompress {
		t.Fatalf("total %v != read+decompress", l.Total())
	}
}

func TestScalingMonotonic(t *testing.T) {
	cfg := GPFSDefaults()
	var prev time.Duration
	for i, procs := range []int{256, 512, 1024, 2048} {
		d, err := Dump(cfg, pastri, tb, procs)
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && d.Total() > prev {
			t.Errorf("dump time grew from %v to %v at %d procs", prev, d.Total(), procs)
		}
		prev = d.Total()
	}
}

func TestAggregateBandwidthCap(t *testing.T) {
	cfg := GPFSDefaults()
	// With enormous process counts the aggregate cap dominates: doubling
	// processes must no longer halve write time.
	a, _ := Dump(cfg, Uncompressed, tb, 1<<14)
	b, _ := Dump(cfg, Uncompressed, tb, 1<<15)
	ratio := float64(a.Write-cfg.FileLatency) / float64(b.Write-cfg.FileLatency)
	if ratio > 1.01 {
		t.Fatalf("aggregate cap not enforced: %v vs %v", a.Write, b.Write)
	}
}

func TestUncompressedIsSlowestToWrite(t *testing.T) {
	cfg := GPFSDefaults()
	raw, _ := Dump(cfg, Uncompressed, tb, 512)
	comp, _ := Dump(cfg, pastri, tb, 512)
	if raw.Write <= comp.Total() {
		t.Fatalf("raw write %v should dwarf compressed dump %v (the paper's 'thousands of seconds')",
			raw.Write, comp.Total())
	}
}

func TestReuseComparison(t *testing.T) {
	// Paper Fig. 11: ERI generation ≈ 322.8 MB/s for (dd|dd); reuse 20.
	orig, infra, err := ReuseComparison(322.8e6, pastri, tb, 20)
	if err != nil {
		t.Fatal(err)
	}
	if infra >= orig {
		t.Fatalf("PaSTRI infra %v not faster than recompute %v", infra, orig)
	}
	// Speedup should be substantial (decompress ≫ generate).
	if float64(orig)/float64(infra) < 2.5 {
		t.Fatalf("speedup only %.2fx", float64(orig)/float64(infra))
	}
	// reuse = 1 must favor recompute (compression overhead unamortized).
	orig1, infra1, err := ReuseComparison(322.8e6, pastri, tb, 1)
	if err != nil {
		t.Fatal(err)
	}
	if infra1 <= orig1 {
		t.Fatalf("with no reuse, infra %v should cost more than %v", infra1, orig1)
	}
}

// The paper's footnote 1: POSIX file-per-process and MPI-IO shared-file
// perform comparably at these scales on GPFS.
func TestSharedFileComparableToFilePerProcess(t *testing.T) {
	pfsCfg := GPFSDefaults()
	shCfg := SharedFileDefaults()
	for _, procs := range []int{256, 1024, 2048} {
		fpp, err := Dump(pfsCfg, pastri, tb, procs)
		if err != nil {
			t.Fatal(err)
		}
		sh, err := DumpShared(shCfg, pastri, tb, procs)
		if err != nil {
			t.Fatal(err)
		}
		ratio := float64(sh.Total()) / float64(fpp.Total())
		if ratio < 0.5 || ratio > 2 {
			t.Errorf("procs=%d: shared/file-per-process = %.2f, want within 2x", procs, ratio)
		}
		lsh, err := LoadShared(shCfg, pastri, tb, procs)
		if err != nil {
			t.Fatal(err)
		}
		if lsh.Read <= 0 || lsh.Decompress <= 0 {
			t.Errorf("procs=%d: shared load phases %+v", procs, lsh)
		}
	}
	// PaSTRI's advantage survives the I/O mode change.
	shP, _ := DumpShared(shCfg, pastri, tb, 1024)
	shS, _ := DumpShared(shCfg, szp, tb, 1024)
	if shP.Total()*2 > shS.Total() {
		t.Errorf("shared-file: PaSTRI %v not 2x faster than SZ %v", shP.Total(), shS.Total())
	}
}

func TestSharedFileValidation(t *testing.T) {
	cfg := SharedFileDefaults()
	if _, err := DumpShared(cfg, pastri, tb, 0); err == nil {
		t.Error("zero procs accepted")
	}
	if _, err := LoadShared(cfg, CodecProfile{Ratio: 0}, tb, 8); err == nil {
		t.Error("zero ratio accepted")
	}
	bad := SharedFileConfig{}
	if _, err := DumpShared(bad, pastri, tb, 8); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestValidation(t *testing.T) {
	bad := PFSConfig{}
	if _, err := Dump(bad, pastri, tb, 10); err == nil {
		t.Error("invalid config accepted by Dump")
	}
	if _, err := Load(bad, pastri, tb, 10); err == nil {
		t.Error("invalid config accepted by Load")
	}
	cfg := GPFSDefaults()
	if _, err := Dump(cfg, pastri, tb, 0); err == nil {
		t.Error("zero procs accepted")
	}
	if _, err := Dump(cfg, CodecProfile{Ratio: -1}, tb, 1); err == nil {
		t.Error("negative ratio accepted")
	}
	if _, _, err := ReuseComparison(0, pastri, tb, 20); err == nil {
		t.Error("zero generation rate accepted")
	}
	if _, _, err := ReuseComparison(1e6, Uncompressed, tb, 20); err == nil {
		t.Error("profile without rates accepted")
	}
	cfg.FileLatency = -time.Second
	if err := cfg.Validate(); err == nil {
		t.Error("negative latency accepted")
	}
}
