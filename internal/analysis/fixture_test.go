package analysis

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// Fixture tests: each analyzer runs over a small testdata package and
// its diagnostics are compared against `// want "regexp"` comments on
// the expected lines — the same convention as x/tools analysistest,
// reimplemented on the stdlib. Fixtures import only the standard
// library so the shared source-mode importer can resolve everything.

var fixtureFset = token.NewFileSet()

var fixtureImporter = sync.OnceValue(func() types.Importer {
	return StdImporter(fixtureFset)
})

const fixtureModPath = "fixture.example/mod"

var wantRe = regexp.MustCompile(`want "((?:[^"\\]|\\.)*)"`)

// loadFixture type-checks the package at testdata/<dir> under import
// path pkgPath.
func loadFixture(t testing.TB, dir, pkgPath string) *Package {
	t.Helper()
	full := filepath.Join("testdata", dir)
	ents, err := os.ReadDir(full)
	if err != nil {
		t.Fatal(err)
	}
	var files []*ast.File
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fixtureFset, filepath.Join(full, e.Name()), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		t.Fatalf("no fixture files in %s", full)
	}
	info := newTypesInfo()
	conf := &types.Config{Importer: fixtureImporter()}
	tpkg, err := conf.Check(pkgPath, fixtureFset, files, info)
	if err != nil {
		t.Fatalf("type-checking fixture %s: %v", full, err)
	}
	return &Package{
		Path:    pkgPath,
		ModPath: fixtureModPath,
		Dir:     full,
		Fset:    fixtureFset,
		Files:   files,
		Types:   tpkg,
		Info:    info,
	}
}

// runFixture runs a per-package analyzer over testdata/<dir> and diffs
// findings against `// want` comments.
func runFixture(t *testing.T, a *Analyzer, dir, pkgPath string) {
	t.Helper()
	pkg := loadFixture(t, dir, pkgPath)
	diffWants(t, pkg, RunPackage(pkg, []*Analyzer{a}))
}

// runModuleFixture runs a module analyzer over testdata/<dir> as a
// single-package module (the flow engine's whole-program view is just
// that package) and diffs findings against `// want` comments.
func runModuleFixture(t *testing.T, a *ModuleAnalyzer, dir, pkgPath string) {
	t.Helper()
	pkg := loadFixture(t, dir, pkgPath)
	diffWants(t, pkg, RunModule([]*Package{pkg}, []*ModuleAnalyzer{a}))
}

func diffWants(t *testing.T, pkg *Package, diags []Diagnostic) {
	t.Helper()
	wants := collectWants(t, pkg.Files)
	matched := make(map[*wantExpectation]bool)
	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
		found := false
		for _, w := range wants[key] {
			if w.re.MatchString(d.Message) {
				matched[w] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !matched[w] {
				t.Errorf("%s: expected diagnostic matching %q, got none", key, w.re)
			}
		}
	}
}

type wantExpectation struct{ re *regexp.Regexp }

func collectWants(t *testing.T, files []*ast.File) map[string][]*wantExpectation {
	t.Helper()
	out := make(map[string][]*wantExpectation)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				for _, m := range wantRe.FindAllStringSubmatch(c.Text, -1) {
					pat, err := strconv.Unquote(`"` + m[1] + `"`)
					if err != nil {
						t.Fatalf("bad want pattern %q: %v", m[1], err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("bad want regexp %q: %v", pat, err)
					}
					pos := fixtureFset.Position(c.Pos())
					key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
					out[key] = append(out[key], &wantExpectation{re: re})
				}
			}
		}
	}
	return out
}
