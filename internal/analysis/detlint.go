package analysis

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis/flow"
)

// DetLint guards the determinism contract from the parallel-pipeline
// PR: compressed output is byte-identical at any worker count, so
// nothing on an output path may depend on map iteration order, wall
//-clock time, random numbers, or which goroutine happens to finish
// first. The analyzer computes the set of functions reachable (via the
// flow call graph) from the output roots — any function whose name
// starts with Compress, and every method of ParallelStreamWriter — and
// inside that set flags:
//
//   - range over a map (iteration order is randomized per run);
//   - calls into time (Now/Since/Until) — wall-clock values must not
//     steer encoding decisions;
//   - any call into math/rand or math/rand/v2;
//   - select with two or more communication clauses (when several
//     channels are ready the runtime picks pseudo-randomly, so
//     goroutine completion order can leak into output order).
//
// Telemetry and logging legitimately read the clock on these paths;
// such sites carry //lint:detlint-ok markers stating why the value
// cannot reach the output bytes.
var DetLint = &ModuleAnalyzer{
	Name: "detlint",
	Doc:  "flag nondeterminism (map ranges, clock, rand, racy selects) reachable from Compress*/ParallelStreamWriter",
	Run:  runDetLint,
}

// detRoot reports whether fn anchors an output path.
func detRoot(fn *flow.Func) bool {
	if strings.HasPrefix(fn.Obj.Name(), "Compress") {
		return true
	}
	recv := fn.Obj.Type().(*types.Signature).Recv()
	if recv == nil {
		return false
	}
	t := recv.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "ParallelStreamWriter"
}

func runDetLint(p *ModulePass) {
	var roots []*flow.Func
	for _, fn := range p.Program.Funcs() {
		if detRoot(fn) {
			roots = append(roots, fn)
		}
	}
	reached, from := p.Program.ReachFrom(roots)
	for _, fn := range p.Program.Funcs() {
		if !reached[fn] {
			continue
		}
		where := fn.Obj.Name()
		if chain := flow.Chain(from, fn); chain != "" {
			where = fn.Obj.Name() + " (reachable via " + chain + ")"
		}
		checkDeterminism(p, fn, where)
	}
}

func checkDeterminism(p *ModulePass, fn *flow.Func, where string) {
	info := fn.Pkg.Info
	ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			if t := info.TypeOf(n.X); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					p.Reportf(n.Pos(),
						"range over a map in %s: iteration order is nondeterministic and this function is on an output path; iterate a sorted key slice or annotate //lint:detlint-ok",
						where)
				}
			}
		case *ast.CallExpr:
			callee := calleeFunc(info, n)
			if callee == nil || callee.Pkg() == nil {
				return true
			}
			switch callee.Pkg().Path() {
			case "time":
				switch callee.Name() {
				case "Now", "Since", "Until":
					p.Reportf(n.Pos(),
						"time.%s in %s feeds an output path; wall-clock values must not steer encoding — restrict to telemetry and annotate //lint:detlint-ok",
						callee.Name(), where)
				}
			case "math/rand", "math/rand/v2":
				p.Reportf(n.Pos(),
					"%s.%s in %s: random values on an output path break byte-identical parallel output; seed deterministically outside or annotate //lint:detlint-ok",
					callee.Pkg().Name(), callee.Name(), where)
			}
		case *ast.SelectStmt:
			comms := 0
			for _, cl := range n.Body.List {
				if cc, ok := cl.(*ast.CommClause); ok && cc.Comm != nil {
					comms++
				}
			}
			if comms >= 2 {
				p.Reportf(n.Pos(),
					"select with %d communication clauses in %s: when several channels are ready the choice is pseudo-random, so goroutine completion order can leak into output — sequence explicitly or annotate //lint:detlint-ok",
					comms, where)
			}
		}
		return true
	})
}

// calleeFunc resolves the called function or method object of a call
// expression, or nil for builtins, conversions and dynamic calls.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			f, _ := sel.Obj().(*types.Func)
			return f
		}
		f, _ := info.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}
