package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoroutineCapture flags `go func() { ... }` literals in loop bodies
// that capture per-iteration or loop-mutated state by reference instead
// of receiving it as an argument. The block codec's order-preserving
// fan-out (internal/core, internal/eri, internal/dataset) depends on
// every worker seeing a stable view of its inputs; a captured variable
// that the loop keeps writing is a data race the compiler accepts
// silently and the race detector only catches when the schedule
// cooperates.
//
// Two shapes are reported:
//
//   - capture of an enclosing for/range iteration variable — even with
//     per-iteration loop variables (Go >= 1.22) worker-pool code passes
//     iteration state explicitly, so intent survives refactors into
//     helpers with older semantics;
//   - capture of a variable declared outside an enclosing loop that the
//     loop body also writes outside the literal (a shared accumulator
//     being raced against the goroutine).
//
// Synchronized sites (mutex-guarded accumulators written only inside
// the literal, channels, sync primitives) are not flagged.
var GoroutineCapture = &Analyzer{
	Name: "goroutinecapture",
	Doc:  "flag loop-variable and loop-mutated captures in go func literals",
	Run:  runGoroutineCapture,
}

func runGoroutineCapture(p *Pass) {
	for _, f := range p.Files {
		walkStack(f, func(stack []ast.Node, n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit)
			if !ok {
				return true
			}
			loops := enclosingLoops(stack)
			if len(loops) == 0 {
				return true
			}
			iterVars := make(map[*types.Var]bool)
			for _, loop := range loops {
				for _, v := range p.loopIterVars(loop) {
					iterVars[v] = true
				}
			}
			reported := make(map[*types.Var]bool)
			for _, use := range p.freeVars(lit) {
				obj := use.obj
				if reported[obj] {
					continue
				}
				if iterVars[obj] {
					reported[obj] = true
					p.Reportf(use.pos,
						"go literal captures iteration variable %q of an enclosing loop; pass it as an argument",
						obj.Name())
					continue
				}
				for _, loop := range loops {
					if nodeWithin(loop, obj.Pos()) {
						continue // declared inside this loop: fresh per iteration
					}
					if p.writesTo(loop, lit, obj) {
						reported[obj] = true
						p.Reportf(use.pos,
							"go literal captures %q, which the enclosing loop writes outside the literal (data race); pass a copy as an argument",
							obj.Name())
						break
					}
				}
			}
			return true
		})
	}
}

type freeUse struct {
	obj *types.Var
	pos token.Pos
}

// freeVars lists variables referenced inside lit but declared outside
// it (first use position wins). Struct fields and package-level
// declarations from other files still qualify when loop-written.
func (p *Pass) freeVars(lit *ast.FuncLit) []freeUse {
	var out []freeUse
	seen := make(map[*types.Var]bool)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := p.TypesInfo.Uses[id].(*types.Var)
		if !ok || obj.IsField() || seen[obj] {
			return true
		}
		if nodeWithin(lit, obj.Pos()) {
			return true // declared inside the literal (incl. its params)
		}
		seen[obj] = true
		out = append(out, freeUse{obj: obj, pos: id.Pos()})
		return true
	})
	return out
}

// enclosingLoops returns the for/range statements on the ancestor
// stack, stopping at the nearest enclosing function boundary.
func enclosingLoops(stack []ast.Node) []ast.Node {
	var loops []ast.Node
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			loops = append(loops, stack[i])
		case *ast.FuncLit, *ast.FuncDecl:
			return loops
		}
	}
	return loops
}

// loopIterVars returns the variables bound per-iteration by loop.
func (p *Pass) loopIterVars(loop ast.Node) []*types.Var {
	var idents []ast.Expr
	switch l := loop.(type) {
	case *ast.RangeStmt:
		idents = append(idents, l.Key, l.Value)
	case *ast.ForStmt:
		if init, ok := l.Init.(*ast.AssignStmt); ok {
			idents = append(idents, init.Lhs...)
		}
	}
	var out []*types.Var
	for _, e := range idents {
		id, ok := e.(*ast.Ident)
		if !ok {
			continue
		}
		if v, ok := p.TypesInfo.Defs[id].(*types.Var); ok {
			out = append(out, v)
		} else if v, ok := p.TypesInfo.Uses[id].(*types.Var); ok {
			// `for i = range xs` rebinding an outer variable.
			out = append(out, v)
		}
	}
	return out
}

// writesTo reports whether loop assigns to obj anywhere outside lit.
func (p *Pass) writesTo(loop ast.Node, lit *ast.FuncLit, obj *types.Var) bool {
	found := false
	ast.Inspect(loop, func(n ast.Node) bool {
		if found || n == ast.Node(lit) {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE {
				return true // := introduces new objects, not writes to obj
			}
			for _, lhs := range n.Lhs {
				if p.isUseOfExpr(lhs, obj) {
					found = true
				}
			}
		case *ast.IncDecStmt:
			if p.isUseOfExpr(n.X, obj) {
				found = true
			}
		case *ast.RangeStmt:
			if n.Tok == token.ASSIGN {
				if p.isUseOfExpr(n.Key, obj) || p.isUseOfExpr(n.Value, obj) {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

func (p *Pass) isUseOfExpr(e ast.Expr, obj *types.Var) bool {
	if e == nil {
		return false
	}
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && p.TypesInfo.Uses[id] == types.Object(obj)
}

func nodeWithin(n ast.Node, pos token.Pos) bool {
	return n != nil && n.Pos() <= pos && pos < n.End()
}
