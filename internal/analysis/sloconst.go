package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
	"regexp"
)

// SloConst enforces the observability naming registry: series keys,
// SLO objectives, metric families and burn states are typed strings
// (tsdb.Key, slo.Objective, slo.MetricName, slo.State) whose values
// live in central const blocks. The SLO engine, the history ring, the
// Prometheus exposition and the ops-report renderer all join on these
// names, so an ad-hoc literal at a call site ("read_latency" typed
// inline, or tsdb.Key("requests_total")) forks the namespace exactly
// like an unregistered slog key would — it compiles, scrapes, and then
// silently never matches the dashboard query. Two invariants:
//
//   - declared constants of those types must be lowercase_snake, the
//     shape every joining surface expects;
//   - call sites must pass the named constants, not string literals,
//     conversions of literals, or local untyped-string constants —
//     composite keys go through the registry's own builders
//     (tsdb.ForTenant, tsdb.StageNS), which take runtime strings.
//
// Types are matched structurally by name (a named string type called
// Key, Objective, MetricName or State), so fixtures and future
// registries are covered without importing the telemetry packages.
// Deliberate exceptions carry //lint:sloconst-ok.
var SloConst = &Analyzer{
	Name: "sloconst",
	Doc:  "observability name constants must be lowercase_snake and referenced, never inlined",
	Run:  runSloConst,
}

var sloConstRe = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)

// sloConstTypeNames are the registry type names the analyzer guards.
var sloConstTypeNames = map[string]bool{
	"Key": true, "Objective": true, "MetricName": true, "State": true,
}

// isSLOConstType reports whether t is a named string type carrying one
// of the registry type names.
func isSLOConstType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok || !sloConstTypeNames[named.Obj().Name()] {
		return false
	}
	basic, ok := named.Underlying().(*types.Basic)
	return ok && basic.Kind() == types.String
}

func runSloConst(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GenDecl:
				p.checkSLOConstDecl(n)
			case *ast.CallExpr:
				p.checkSLOConstCall(n)
			case *ast.BinaryExpr:
				p.checkSLOConstCompare(n)
			}
			return true
		})
	}
}

// checkSLOConstDecl verifies declared registry constants are
// lowercase_snake.
func (p *Pass) checkSLOConstDecl(decl *ast.GenDecl) {
	for _, spec := range decl.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		for _, name := range vs.Names {
			c, ok := p.TypesInfo.Defs[name].(*types.Const)
			if !ok || !isSLOConstType(c.Type()) || c.Val().Kind() != constant.String {
				continue
			}
			if v := constant.StringVal(c.Val()); !sloConstRe.MatchString(v) {
				p.Reportf(name.Pos(),
					"%s constant %s value %q is not lowercase_snake (want %s); every surface joining on this name expects that shape",
					typeShortName(c.Type()), name.Name, v, sloConstRe)
			}
		}
	}
}

// checkSLOConstCall flags registry-typed arguments that are inlined
// strings rather than references to the named constants, and explicit
// conversions of constant strings to registry types.
func (p *Pass) checkSLOConstCall(call *ast.CallExpr) {
	// T("literal") conversions anywhere mint an unregistered name.
	if tv, ok := p.TypesInfo.Types[call.Fun]; ok && tv.IsType() && isSLOConstType(tv.Type) {
		if len(call.Args) == 1 {
			if av, ok := p.TypesInfo.Types[call.Args[0]]; ok && av.Value != nil {
				p.Reportf(call.Pos(),
					"conversion of constant string to %s mints an unregistered name; declare it in the registry const block",
					typeShortName(tv.Type))
			}
		}
		return
	}
	sig, ok := p.TypesInfo.Types[call.Fun].Type.(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		pt, ok := paramTypeAt(sig, i, len(call.Args), call.Ellipsis.IsValid())
		if !ok || !isSLOConstType(pt) {
			continue
		}
		p.checkSLOConstValue(arg, pt)
	}
}

// paramTypeAt resolves the declared type of argument i, unrolling the
// variadic tail (a `...` call spreads a slice and is left alone).
func paramTypeAt(sig *types.Signature, i, nargs int, ellipsis bool) (types.Type, bool) {
	params := sig.Params()
	if sig.Variadic() {
		if i < params.Len()-1 {
			return params.At(i).Type(), true
		}
		if ellipsis {
			return nil, false
		}
		slice, ok := params.At(params.Len() - 1).Type().(*types.Slice)
		if !ok {
			return nil, false
		}
		return slice.Elem(), true
	}
	if i >= params.Len() {
		return nil, false
	}
	return params.At(i).Type(), true
}

// checkSLOConstValue flags expr when it supplies a registry-typed slot
// with anything constant that is not a reference to a constant
// declared with the registry type itself.
func (p *Pass) checkSLOConstValue(expr ast.Expr, want types.Type) {
	e := ast.Unparen(expr)
	tv, ok := p.TypesInfo.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return // runtime values flow through the registry's builders
	}
	if constant.StringVal(tv.Value) == "" {
		return // the empty string is the universal "unset" sentinel, not a name
	}
	switch e := e.(type) {
	case *ast.Ident, *ast.SelectorExpr:
		var obj types.Object
		if id, ok := e.(*ast.Ident); ok {
			obj = p.TypesInfo.Uses[id]
		} else {
			obj = p.TypesInfo.Uses[e.(*ast.SelectorExpr).Sel]
		}
		if c, ok := obj.(*types.Const); ok && isSLOConstType(c.Type()) {
			return // the named registry constant: the one allowed shape
		}
		p.Reportf(expr.Pos(),
			"%s argument is a string constant declared outside the registry; use the registry's named constant",
			typeShortName(want))
	case *ast.CallExpr:
		if tv, ok := p.TypesInfo.Types[e.Fun]; ok && tv.IsType() {
			return // a constant conversion: the conversion rule reports it once
		}
		p.Reportf(expr.Pos(),
			"%s argument is an inline string %s; use the registry's named constant so the name stays greppable",
			typeShortName(want), constant.StringVal(tv.Value))
	default:
		p.Reportf(expr.Pos(),
			"%s argument is an inline string %s; use the registry's named constant so the name stays greppable",
			typeShortName(want), constant.StringVal(tv.Value))
	}
}

// checkSLOConstCompare flags `x == "literal"` where x is registry
// typed: state machines must compare against the named constants.
func (p *Pass) checkSLOConstCompare(b *ast.BinaryExpr) {
	if b.Op.String() != "==" && b.Op.String() != "!=" {
		return
	}
	check := func(typed, other ast.Expr) {
		tt, ok := p.TypesInfo.Types[typed]
		if !ok || tt.Value != nil || !isSLOConstType(tt.Type) {
			return // only non-constant registry-typed operands anchor the check
		}
		p.checkSLOConstValue(other, tt.Type)
	}
	check(b.X, b.Y)
	check(b.Y, b.X)
}

// typeShortName renders a named type as pkg.Name for diagnostics.
func typeShortName(t types.Type) string {
	named, ok := t.(*types.Named)
	if !ok {
		return t.String()
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return obj.Name()
	}
	return obj.Pkg().Name() + "." + obj.Name()
}
