package analysis

import (
	"fmt"
	"path/filepath"
	"sort"
)

// A Finding is a Diagnostic prepared for machine output: the file is
// module-root-relative with forward slashes, so JSON, SARIF, baseline
// files, and selftest goldens are stable across checkouts and operating
// systems.
type Finding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

// NewFinding converts d, rewriting its position relative to modRoot.
// Positions outside modRoot (which do not occur for module-loaded
// packages) keep their original path.
func NewFinding(modRoot string, d Diagnostic) Finding {
	file := d.Pos.Filename
	if modRoot != "" {
		if rel, err := filepath.Rel(modRoot, file); err == nil && !isOutside(rel) {
			file = rel
		}
	}
	return Finding{
		Analyzer: d.Analyzer,
		File:     filepath.ToSlash(file),
		Line:     d.Pos.Line,
		Col:      d.Pos.Column,
		Message:  d.Message,
	}
}

func isOutside(rel string) bool {
	return rel == ".." || len(rel) >= 3 && rel[:3] == ".."+string(filepath.Separator)
}

// String renders the finding in the classic compiler format.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.File, f.Line, f.Col, f.Analyzer, f.Message)
}

// SortFindings orders findings by file, line, column, analyzer — the
// canonical order for every machine output.
func SortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
}
