// Package analysis is a stdlib-only static-analysis framework plus a
// suite of PaSTRI-specific analyzers. The compressor's headline
// guarantee — decompressed values honor the absolute error bound
// unconditionally — rests on invariants the Go compiler does not check:
// no exact float equality in bound logic, no variable shifts that can
// silently reach the operand width, no dropped bitio/container errors,
// no panics in library code, and no mutable-state captures in the
// parallel block fan-out. Each analyzer here machine-checks one of
// those invariants so hot paths can be refactored aggressively without
// reviewer vigilance being the only safety net.
//
// The framework deliberately mirrors golang.org/x/tools/go/analysis in
// miniature (Analyzer, Pass, fixture tests with `// want` comments) but
// is built only on go/parser, go/types and go/importer so the module
// keeps zero external dependencies.
//
// Findings are suppressed by annotating the offending line (or the line
// directly above it) with a marker comment:
//
//	//lint:floatcmp-ok        exact comparison is intentional here
//
// The marker names the analyzer; unknown names are ignored. Test files
// are not analyzed: fixtures use dedicated testdata packages instead.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// A Diagnostic is one finding produced by an analyzer.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// An Analyzer checks one invariant over a type-checked package.
type Analyzer struct {
	Name string // short lower-case identifier, used in //lint:<name>-ok markers
	Doc  string // one-line description of the guarded invariant
	Run  func(*Pass)
}

// A Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	PkgPath   string // import path ("" for ad-hoc fixture packages)
	ModPath   string // module path the package belongs to
	Pkg       *types.Package
	TypesInfo *types.Info

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// All returns the per-package analyzer suite in reporting order. The
// interprocedural analyzers live in AllModule; the first-generation
// hotalloc analyzer has been subsumed by hotalloc2 there, rebased on
// the internal/analysis/flow engine.
func All() []*Analyzer {
	return []*Analyzer{
		FloatCmp,
		ShiftWidth,
		ErrDrop,
		NoPanic,
		GoroutineCapture,
		TelemetryDrop,
		SlogKey,
		SpanEnd,
		SloConst,
	}
}

// ByName resolves a comma-separated analyzer name list against the
// registry.
func ByName(names []string) ([]*Analyzer, error) {
	byName := make(map[string]*Analyzer)
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range names {
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("analysis: unknown analyzer %q", n)
		}
		out = append(out, a)
	}
	return out, nil
}

// RunPackage applies analyzers to pkg and returns the surviving
// diagnostics: findings on lines carrying a matching //lint:<name>-ok
// marker (or directly below one) are dropped. Results are sorted by
// position.
func RunPackage(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			PkgPath:   pkg.Path,
			ModPath:   pkg.ModPath,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			diags:     &diags,
		}
		a.Run(pass)
	}
	sup := collectSuppressions(pkg.Fset, pkg.Files)
	kept := diags[:0]
	for _, d := range diags {
		if !sup.suppressed(d) {
			kept = append(kept, d)
		}
	}
	sortDiagnostics(kept)
	return kept
}
