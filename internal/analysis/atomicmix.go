package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AtomicMix guards the core invariant of the lock-free telemetry
// collector: a struct field that participates in sync/atomic
// operations anywhere in the module must never also be touched by a
// plain load or store — mixed access is a data race the race detector
// only catches when the interleaving actually happens under -race.
//
// The analyzer runs in two passes over the whole module: first it
// collects every struct field whose address is passed to a sync/atomic
// function (atomic.AddUint64(&c.hits, 1), atomic.LoadPointer(&s.head),
// ...); then it flags every other selector of those fields that is not
// itself an atomic-call operand. Initialization before the struct is
// shared (constructors, tests) is a legitimate exception — annotate it
// with //lint:atomicmix-ok and say why the value is not yet visible to
// other goroutines.
var AtomicMix = &ModuleAnalyzer{
	Name: "atomicmix",
	Doc:  "flag struct fields accessed both via sync/atomic and by plain loads/stores",
	Run:  runAtomicMix,
}

func runAtomicMix(p *ModulePass) {
	// Pass 1: fields used atomically, with one representative site for
	// the diagnostic text.
	atomicFields := make(map[*types.Var]token.Pos)
	for _, pkg := range p.Packages {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || !isAtomicCall(pkg.Info, call) {
					return true
				}
				for _, arg := range call.Args {
					if fv := addressedField(pkg.Info, arg); fv != nil {
						if _, seen := atomicFields[fv]; !seen {
							atomicFields[fv] = call.Pos()
						}
					}
				}
				return true
			})
		}
	}
	if len(atomicFields) == 0 {
		return
	}
	// Pass 2: plain accesses of those fields.
	for _, pkg := range p.Packages {
		for _, f := range pkg.Files {
			walkStack(f, func(stack []ast.Node, n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				fv := fieldOf(pkg.Info, sel)
				if fv == nil {
					return true
				}
				site, isAtomic := atomicFields[fv]
				if !isAtomic || isAtomicOperand(pkg.Info, stack) {
					return true
				}
				p.Reportf(sel.Pos(),
					"struct field %s is accessed with sync/atomic at %s; this plain access races with those atomics — use the atomic API or annotate //lint:atomicmix-ok",
					fv.Name(), p.PositionString(site))
				return true
			})
		}
	}
}

// isAtomicCall reports whether call invokes a package-level function
// of sync/atomic. Methods of the atomic.Int64-style wrapper types
// don't count: fields of those types cannot be touched non-atomically
// without going through the same wrapper.
func isAtomicCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if _, isMethod := info.Selections[sel]; isMethod {
		return false
	}
	f, ok := info.Uses[sel.Sel].(*types.Func)
	return ok && f.Pkg() != nil && f.Pkg().Path() == "sync/atomic"
}

// addressedField resolves &x.f (parens allowed) to the field's object.
func addressedField(info *types.Info, arg ast.Expr) *types.Var {
	un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
	if !ok || un.Op != token.AND {
		return nil
	}
	sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	return fieldOf(info, sel)
}

// fieldOf returns the struct-field object a selector denotes, or nil.
func fieldOf(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	if s, ok := info.Selections[sel]; ok && s.Kind() == types.FieldVal {
		if v, ok := s.Obj().(*types.Var); ok {
			return v
		}
	}
	return nil
}

// isAtomicOperand reports whether the innermost enclosing context of
// the current node (per the walk stack) is `&<sel>` passed directly to
// a sync/atomic call — the sanctioned access shape skipped by pass 2.
func isAtomicOperand(info *types.Info, stack []ast.Node) bool {
	// stack is outermost-first and excludes the selector itself; scan
	// inward past parens for UnaryExpr(&) then CallExpr(atomic).
	i := len(stack) - 1
	for i >= 0 {
		if _, ok := stack[i].(*ast.ParenExpr); ok {
			i--
			continue
		}
		break
	}
	if i < 0 {
		return false
	}
	un, ok := stack[i].(*ast.UnaryExpr)
	if !ok || un.Op != token.AND {
		return false
	}
	i--
	for i >= 0 {
		if _, ok := stack[i].(*ast.ParenExpr); ok {
			i--
			continue
		}
		break
	}
	if i < 0 {
		return false
	}
	call, ok := stack[i].(*ast.CallExpr)
	return ok && isAtomicCall(info, call)
}
