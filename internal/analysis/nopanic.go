package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// NoPanic forbids panic, log.Fatal* / log.Panic* and os.Exit in library
// packages. The codec is embedded in long-running chemistry drivers: a
// panic in a worker goroutine kills the whole SCF run, and log.Fatal
// skips deferred stream flushes. Escape hatches live only at the edges
// — package main under cmd/ and examples/ — or behind an explicit
// //lint:nopanic-ok marker for API-contract violations (programmer
// error, not data error), which must never be reachable from decoding
// untrusted bytes.
var NoPanic = &Analyzer{
	Name: "nopanic",
	Doc:  "forbid panic/log.Fatal/os.Exit outside cmd/ and examples/",
	Run:  runNoPanic,
}

func runNoPanic(p *Pass) {
	if nopanicExempt(p.ModPath, p.PkgPath) {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch fun := ast.Unparen(call.Fun).(type) {
			case *ast.Ident:
				if obj, isBuiltin := p.TypesInfo.Uses[fun].(*types.Builtin); isBuiltin && obj.Name() == "panic" {
					p.Reportf(call.Pos(),
						"panic in library package %s; return an error, or annotate //lint:nopanic-ok for an unreachable API-contract guard",
						p.PkgPath)
				}
			case *ast.SelectorExpr:
				obj, isFunc := p.TypesInfo.Uses[fun.Sel].(*types.Func)
				if !isFunc || obj.Pkg() == nil {
					return true
				}
				pkg, name := obj.Pkg().Path(), obj.Name()
				if (pkg == "log" && (strings.HasPrefix(name, "Fatal") || strings.HasPrefix(name, "Panic"))) ||
					(pkg == "os" && name == "Exit") {
					p.Reportf(call.Pos(),
						"%s.%s in library package %s; return an error instead (deferred flushes are skipped)",
						obj.Pkg().Name(), name, p.PkgPath)
				}
			}
			return true
		})
	}
}

// nopanicExempt reports whether pkgPath is an edge package where
// process-terminating calls are the correct idiom.
func nopanicExempt(modPath, pkgPath string) bool {
	rel := strings.TrimPrefix(strings.TrimPrefix(pkgPath, modPath), "/")
	return strings.HasPrefix(rel, "cmd/") || strings.HasPrefix(rel, "examples/")
}
