package analysis

import (
	"testing"
)

func TestLoaderSinglePackage(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	if l.ModPath() != "repro" {
		t.Fatalf("module path = %q, want repro", l.ModPath())
	}
	pkgs, err := l.Load("./internal/quant")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 || pkgs[0].Path != "repro/internal/quant" {
		t.Fatalf("Load(./internal/quant) = %v", pkgs)
	}
	p := pkgs[0]
	if p.Types == nil || p.Types.Scope().Lookup("Quantize") == nil {
		t.Fatal("package not type-checked: Quantize not found")
	}
	if len(p.Info.Uses) == 0 {
		t.Fatal("type info not populated")
	}
}

func TestLoaderRecursiveSkipsTestdata(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	// Loading this package recursively must not descend into testdata
	// (the fixture packages would not resolve outside the harness).
	pkgs, err := l.Load("./internal/analysis/...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 2 || pkgs[0].Path != "repro/internal/analysis" ||
		pkgs[1].Path != "repro/internal/analysis/flow" {
		t.Fatalf("Load(./internal/analysis/...) = %d packages", len(pkgs))
	}
}

func TestLoaderBadPattern(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Load("./no/such/dir"); err == nil {
		t.Fatal("Load accepted a nonexistent directory")
	}
}
