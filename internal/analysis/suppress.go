package analysis

import (
	"go/ast"
	"go/token"
	"regexp"
	"strings"
)

// Suppression convention: a comment containing `lint:<name>-ok`
// silences analyzer <name> on the comment's own line and on the line
// immediately below it. That covers both placements:
//
//	x := a == b //lint:floatcmp-ok exact sentinel comparison
//
//	//lint:floatcmp-ok exact sentinel comparison
//	x := a == b
//
// Explanatory prose after the marker is encouraged — the marker is a
// claim about an invariant, and the prose is where the invariant gets
// stated for the next reader.
var suppressRe = regexp.MustCompile(`lint:([a-z][a-z0-9]*)-ok\b`)

type suppressionSet struct {
	// byFile maps filename -> line -> analyzer names silenced there.
	byFile map[string]map[int]map[string]bool
}

func collectSuppressions(fset *token.FileSet, files []*ast.File) *suppressionSet {
	s := &suppressionSet{byFile: make(map[string]map[int]map[string]bool)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.Contains(c.Text, "lint:") {
					continue
				}
				for _, m := range suppressRe.FindAllStringSubmatch(c.Text, -1) {
					pos := fset.Position(c.Pos())
					lines := s.byFile[pos.Filename]
					if lines == nil {
						lines = make(map[int]map[string]bool)
						s.byFile[pos.Filename] = lines
					}
					for _, line := range []int{pos.Line, pos.Line + 1} {
						set := lines[line]
						if set == nil {
							set = make(map[string]bool)
							lines[line] = set
						}
						set[m[1]] = true
					}
				}
			}
		}
	}
	return s
}

func (s *suppressionSet) suppressed(d Diagnostic) bool {
	return s.suppressedAs(d, d.Analyzer)
}

// suppressedAs checks the marker under a specific name, so analyzers
// can honor legacy marker spellings (see ModuleAnalyzer.Suppress).
func (s *suppressionSet) suppressedAs(d Diagnostic, name string) bool {
	lines := s.byFile[d.Pos.Filename]
	if lines == nil {
		return false
	}
	return lines[d.Pos.Line][name]
}
