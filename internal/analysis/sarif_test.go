package analysis

import (
	"bytes"
	"os"
	"strings"
	"testing"
)

var sarifTestFindings = []Finding{
	{Analyzer: "detlint", File: "internal/core/a.go", Line: 12, Col: 3,
		Message: "range over a map in CompressStream: iteration order is nondeterministic"},
	{Analyzer: "hotalloc2", File: "internal/core/b.go", Line: 7, Col: 10,
		Message: "make in hot function kernel allocates on every call"},
}

// TestSARIFGolden pins the exact SARIF 2.1.0 document for a fixed pair
// of findings and checks it against the structural validator — the
// golden keeps the writer's shape stable, the validator keeps it legal.
// Regenerate by deleting testdata/sarif.golden.json and re-running.
func TestSARIFGolden(t *testing.T) {
	rules := SuiteRules(All(), AllModule())
	doc, err := SARIFReport(rules, sarifTestFindings)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateSARIF(doc); err != nil {
		t.Fatalf("generated document fails schema validation: %v", err)
	}
	const goldenPath = "testdata/sarif.golden.json"
	golden, err := os.ReadFile(goldenPath)
	if os.IsNotExist(err) {
		if werr := os.WriteFile(goldenPath, doc, 0o644); werr != nil {
			t.Fatal(werr)
		}
		t.Fatalf("wrote new golden %s; re-run the test", goldenPath)
	}
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(doc, golden) {
		t.Fatalf("SARIF output differs from %s; delete the golden and re-run to regenerate\ngot:\n%s", goldenPath, doc)
	}
	if err := ValidateSARIF(golden); err != nil {
		t.Fatalf("committed golden fails schema validation: %v", err)
	}
}

func TestSARIFRejectsUnknownAnalyzer(t *testing.T) {
	_, err := SARIFReport([]Rule{{Name: "floatcmp", Doc: "d"}},
		[]Finding{{Analyzer: "nosuch", File: "a.go", Line: 1, Col: 1, Message: "m"}})
	if err == nil || !strings.Contains(err.Error(), "no rule descriptor") {
		t.Fatalf("err = %v", err)
	}
}

func TestValidateSARIFCatchesViolations(t *testing.T) {
	cases := []struct {
		doc  string
		want string
	}{
		{`not json`, "not valid JSON"},
		{`{"version":"2.0.0","runs":[]}`, "schema requires"},
		{`{"version":"2.1.0"}`, "missing required property runs"},
		{`{"version":"2.1.0","runs":[{}]}`, "missing required property tool"},
		{`{"version":"2.1.0","runs":[{"tool":{}}]}`, "missing required property driver"},
		{`{"version":"2.1.0","runs":[{"tool":{"driver":{}}}]}`, "missing required property name"},
		{`{"version":"2.1.0","runs":[{"tool":{"driver":{"name":"x"}},"results":[{}]}]}`,
			"missing required property message"},
		{`{"version":"2.1.0","runs":[{"tool":{"driver":{"name":"x","rules":[{"id":"r"}]}},
			"results":[{"message":{"text":"m"},"ruleId":"r","ruleIndex":5}]}]}`,
			"ruleIndex 5 out of range"},
		{`{"version":"2.1.0","runs":[{"tool":{"driver":{"name":"x","rules":[{"id":"r"},{"id":"s"}]}},
			"results":[{"message":{"text":"m"},"ruleId":"r","ruleIndex":1}]}]}`,
			"does not match"},
		{`{"version":"2.1.0","runs":[{"tool":{"driver":{"name":"x"}},
			"results":[{"message":{"text":"m"},"locations":[{"physicalLocation":{"artifactLocation":{}}}]}]}]}`,
			"no artifactLocation.uri"},
		{`{"version":"2.1.0","runs":[{"tool":{"driver":{"name":"x"}},
			"results":[{"message":{"text":"m"},"locations":[{"physicalLocation":{"artifactLocation":{"uri":"a.go"},"region":{"startLine":0}}}]}]}]}`,
			"startLine"},
	}
	for _, c := range cases {
		err := ValidateSARIF([]byte(c.doc))
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("ValidateSARIF(%.60s...) err = %v, want containing %q", c.doc, err, c.want)
		}
	}
}
