package analysis

import (
	"encoding/json"
	"fmt"
)

// SARIF 2.1.0 output, so pastrilint findings can be ingested by code
// scanning UIs (GitHub code scanning, VS Code SARIF viewer). Only the
// subset of the format the suite needs is modeled; ValidateSARIF checks
// the produced document against the schema's structural requirements
// and runs in a golden test so the writer cannot drift.

const (
	sarifVersion = "2.1.0"
	sarifSchema  = "https://json.schemastore.org/sarif-2.1.0.json"
)

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	RuleIndex int             `json:"ruleIndex"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

// A Rule describes one analyzer for the SARIF rules table.
type Rule struct {
	Name string
	Doc  string
}

// SuiteRules returns the rule descriptors for the given analyzer sets,
// in reporting order.
func SuiteRules(pas []*Analyzer, mas []*ModuleAnalyzer) []Rule {
	var rules []Rule
	for _, a := range pas {
		rules = append(rules, Rule{Name: a.Name, Doc: a.Doc})
	}
	for _, a := range mas {
		rules = append(rules, Rule{Name: a.Name, Doc: a.Doc})
	}
	return rules
}

// SARIFReport renders findings as an indented SARIF 2.1.0 document.
// Every finding's analyzer must appear in rules; file paths are emitted
// relative to the SRCROOT base (the module root).
func SARIFReport(rules []Rule, findings []Finding) ([]byte, error) {
	index := make(map[string]int, len(rules))
	sr := make([]sarifRule, len(rules))
	for i, r := range rules {
		index[r.Name] = i
		sr[i] = sarifRule{ID: r.Name, ShortDescription: sarifMessage{Text: r.Doc}}
	}
	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		ri, ok := index[f.Analyzer]
		if !ok {
			return nil, fmt.Errorf("sarif: finding from analyzer %q has no rule descriptor", f.Analyzer)
		}
		results = append(results, sarifResult{
			RuleID:    f.Analyzer,
			RuleIndex: ri,
			Level:     "warning",
			Message:   sarifMessage{Text: f.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: f.File, URIBaseID: "SRCROOT"},
					Region:           sarifRegion{StartLine: f.Line, StartColumn: f.Col},
				},
			}},
		})
	}
	doc := sarifLog{
		Schema:  sarifSchema,
		Version: sarifVersion,
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "pastrilint", Rules: sr}},
			Results: results,
		}},
	}
	out, err := json.MarshalIndent(&doc, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// ValidateSARIF checks a document against the structural requirements
// of the SARIF 2.1.0 schema: version is the literal "2.1.0", runs is
// present, each run's tool.driver has a name, each result has a
// message.text, a ruleId whose ruleIndex points into the driver's rules
// table, and locations with a uri and a 1-based startLine. It decodes
// into generic JSON rather than the writer's own structs so it catches
// writer bugs instead of inheriting them.
func ValidateSARIF(data []byte) error {
	var doc map[string]any
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("sarif: not valid JSON: %w", err)
	}
	if v, _ := doc["version"].(string); v != sarifVersion {
		return fmt.Errorf("sarif: version = %v, schema requires %q", doc["version"], sarifVersion)
	}
	runs, ok := doc["runs"].([]any)
	if !ok {
		return fmt.Errorf("sarif: missing required property runs")
	}
	for ri, rv := range runs {
		run, ok := rv.(map[string]any)
		if !ok {
			return fmt.Errorf("sarif: runs[%d] is not an object", ri)
		}
		tool, ok := run["tool"].(map[string]any)
		if !ok {
			return fmt.Errorf("sarif: runs[%d] missing required property tool", ri)
		}
		driver, ok := tool["driver"].(map[string]any)
		if !ok {
			return fmt.Errorf("sarif: runs[%d].tool missing required property driver", ri)
		}
		if name, _ := driver["name"].(string); name == "" {
			return fmt.Errorf("sarif: runs[%d].tool.driver missing required property name", ri)
		}
		rules, _ := driver["rules"].([]any)
		ruleIDs := make([]string, len(rules))
		for i, rl := range rules {
			rule, ok := rl.(map[string]any)
			if !ok {
				return fmt.Errorf("sarif: runs[%d] rules[%d] is not an object", ri, i)
			}
			id, _ := rule["id"].(string)
			if id == "" {
				return fmt.Errorf("sarif: runs[%d] rules[%d] missing required property id", ri, i)
			}
			ruleIDs[i] = id
		}
		results, ok := run["results"].([]any)
		if !ok {
			continue // results is optional in the schema
		}
		for i, resv := range results {
			res, ok := resv.(map[string]any)
			if !ok {
				return fmt.Errorf("sarif: runs[%d].results[%d] is not an object", ri, i)
			}
			msg, ok := res["message"].(map[string]any)
			if !ok {
				return fmt.Errorf("sarif: runs[%d].results[%d] missing required property message", ri, i)
			}
			if text, _ := msg["text"].(string); text == "" {
				return fmt.Errorf("sarif: runs[%d].results[%d].message has no text", ri, i)
			}
			ruleID, _ := res["ruleId"].(string)
			if idxv, present := res["ruleIndex"]; present {
				idx, ok := idxv.(float64)
				if !ok || idx != float64(int(idx)) || int(idx) < 0 || int(idx) >= len(ruleIDs) { //lint:floatcmp-ok integrality check: exact when idx is a whole JSON number
					return fmt.Errorf("sarif: runs[%d].results[%d].ruleIndex %v out of range", ri, i, idxv)
				}
				if ruleID != "" && ruleIDs[int(idx)] != ruleID {
					return fmt.Errorf("sarif: runs[%d].results[%d] ruleId %q does not match rules[%d]=%q",
						ri, i, ruleID, int(idx), ruleIDs[int(idx)])
				}
			}
			locs, _ := res["locations"].([]any)
			for j, lv := range locs {
				loc, _ := lv.(map[string]any)
				phys, _ := loc["physicalLocation"].(map[string]any)
				if phys == nil {
					return fmt.Errorf("sarif: runs[%d].results[%d].locations[%d] has no physicalLocation", ri, i, j)
				}
				art, _ := phys["artifactLocation"].(map[string]any)
				if uri, _ := art["uri"].(string); uri == "" {
					return fmt.Errorf("sarif: runs[%d].results[%d].locations[%d] has no artifactLocation.uri", ri, i, j)
				}
				if reg, _ := phys["region"].(map[string]any); reg != nil {
					if sl, _ := reg["startLine"].(float64); sl < 1 {
						return fmt.Errorf("sarif: runs[%d].results[%d].locations[%d].region.startLine %v < 1", ri, i, j, reg["startLine"])
					}
				}
			}
		}
	}
	return nil
}
