package analysis

import (
	"strings"
	"testing"
	"time"
)

func mustParseBaseline(t *testing.T, src string) *Baseline {
	t.Helper()
	b, err := ParseBaseline([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestParseBaselineRejectsMissingFields(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{`{"entries":[{"file":"a.go","message_prefix":"m","reason":"r","expires":"2026-01-01"}]}`, "missing analyzer"},
		{`{"entries":[{"analyzer":"detlint","message_prefix":"m","reason":"r","expires":"2026-01-01"}]}`, "missing file"},
		{`{"entries":[{"analyzer":"detlint","file":"a.go","reason":"r","expires":"2026-01-01"}]}`, "missing message_prefix"},
		{`{"entries":[{"analyzer":"detlint","file":"a.go","message_prefix":"m","expires":"2026-01-01"}]}`, "missing reason"},
		{`{"entries":[{"analyzer":"detlint","file":"a.go","message_prefix":"m","reason":"r"}]}`, "missing expires"},
		{`{"entries":[{"analyzer":"detlint","file":"a.go","message_prefix":"m","reason":"r","expires":"soon"}]}`, "bad expires"},
		{`{"entries":[],"extra":1}`, "unknown field"},
	}
	for _, c := range cases {
		_, err := ParseBaseline([]byte(c.src))
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("ParseBaseline(%s) err = %v, want containing %q", c.src, err, c.want)
		}
	}
	if _, err := ParseBaseline([]byte(`{"entries":[]}`)); err != nil {
		t.Errorf("empty baseline rejected: %v", err)
	}
}

func TestBaselineApplySuppressesByPrefix(t *testing.T) {
	b := mustParseBaseline(t, `{"entries":[
		{"analyzer":"detlint","file":"internal/core/a.go","message_prefix":"time.Now in","reason":"migration in flight","expires":"2026-12-31"}
	]}`)
	now := time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC)
	findings := []Finding{
		{Analyzer: "detlint", File: "internal/core/a.go", Line: 3, Message: "time.Now in Flush feeds an output path"},
		{Analyzer: "detlint", File: "internal/core/b.go", Line: 4, Message: "time.Now in Other feeds an output path"},
		{Analyzer: "hotalloc2", File: "internal/core/a.go", Line: 5, Message: "time.Now in disguise"},
	}
	kept, problems := b.Apply(findings, now)
	if len(problems) != 0 {
		t.Fatalf("problems = %v", problems)
	}
	if len(kept) != 2 || kept[0].File != "internal/core/b.go" || kept[1].Analyzer != "hotalloc2" {
		t.Fatalf("kept = %v", kept)
	}
}

func TestBaselineApplyFlagsExpiredAndUnused(t *testing.T) {
	b := mustParseBaseline(t, `{"entries":[
		{"analyzer":"detlint","file":"a.go","message_prefix":"time.Now","reason":"r1","expires":"2026-01-01"},
		{"analyzer":"atomicmix","file":"b.go","message_prefix":"struct field","reason":"r2","expires":"2027-01-01"}
	]}`)
	now := time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC)
	findings := []Finding{
		{Analyzer: "detlint", File: "a.go", Line: 1, Message: "time.Now in X"},
	}
	kept, problems := b.Apply(findings, now)
	// The expired entry must stop suppressing: the finding survives.
	if len(kept) != 1 {
		t.Fatalf("kept = %v, want the expired-entry finding to survive", kept)
	}
	if len(problems) != 2 {
		t.Fatalf("problems = %v, want expired + unused", problems)
	}
	if !strings.Contains(problems[0], "expired 2026-01-01") || !strings.Contains(problems[0], "r1") {
		t.Errorf("problems[0] = %q", problems[0])
	}
	if !strings.Contains(problems[1], "matched no finding") {
		t.Errorf("problems[1] = %q", problems[1])
	}
}

func TestBaselineApplyExactlyOnExpiryDay(t *testing.T) {
	b := mustParseBaseline(t, `{"entries":[
		{"analyzer":"detlint","file":"a.go","message_prefix":"m","reason":"r","expires":"2026-08-01"}
	]}`)
	findings := []Finding{{Analyzer: "detlint", File: "a.go", Message: "m and more"}}
	// On the expiry day itself the entry still suppresses.
	kept, problems := b.Apply(findings, time.Date(2026, 8, 1, 23, 0, 0, 0, time.UTC))
	if len(kept) != 0 || len(problems) != 0 {
		t.Fatalf("on expiry day: kept=%v problems=%v", kept, problems)
	}
	// The day after, it no longer does.
	kept, problems = b.Apply(findings, time.Date(2026, 8, 2, 0, 0, 0, 0, time.UTC))
	if len(kept) != 1 || len(problems) != 1 {
		t.Fatalf("after expiry: kept=%v problems=%v", kept, problems)
	}
}
