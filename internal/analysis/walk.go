package analysis

import "go/ast"

// walkStack traverses the AST below root in source order, calling fn
// with the chain of ancestors (outermost first, not including n) for
// every node. fn returns false to prune the subtree below n.
func walkStack(root ast.Node, fn func(stack []ast.Node, n ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		descend := fn(stack, n)
		if descend {
			stack = append(stack, n)
		}
		return descend
	})
}
