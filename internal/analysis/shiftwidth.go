package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strconv"
)

// ShiftWidth flags shift expressions whose distance can reach the bit
// width of the shifted operand. Go defines `x << n` as 0 (and signed
// `x >> n` as 0 or -1) once n >= width — no trap, no wraparound — so
// the classic mask idiom `(1 << b) - 1` silently produces an all-zero
// mask at b == 64. PaSTRI's Pb/Sb/ECb bit-width arithmetic lives right
// at that edge: widths are computed from data and legitimately hit 64.
//
// A variable-distance shift is accepted when the distance is provably
// below the operand width:
//
//   - constant distances below the width;
//   - distances masked or reduced on the spot (n & 63, n % 64 for
//     unsigned n);
//   - distances bounded by a dominating check: the shift sits in the
//     then-branch of `if n < 64`, in the else-branch of `if n >= 64`,
//     or after an `if n >= 64 { return/panic/... }` whose body always
//     terminates. Conjunctions, disjunctions and small +/- constant
//     offsets (n-1, n+2) are understood.
//
// Anything else is a finding: either restructure so the bound is
// dominating, or annotate //lint:shiftwidth-ok with the invariant that
// keeps the distance in range.
var ShiftWidth = &Analyzer{
	Name: "shiftwidth",
	Doc:  "flag variable shift distances not provably below the operand width",
	Run:  runShiftWidth,
}

func runShiftWidth(p *Pass) {
	for _, f := range p.Files {
		walkStack(f, func(stack []ast.Node, n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if n.Op == token.SHL || n.Op == token.SHR {
					tv := p.TypesInfo.Types[n]
					if tv.Value != nil { // whole expression is constant-folded
						return true
					}
					p.checkShift(stack, n, n.Y, tv.Type)
				}
			case *ast.AssignStmt:
				if n.Tok == token.SHL_ASSIGN || n.Tok == token.SHR_ASSIGN {
					p.checkShift(stack, n, n.Rhs[0], p.TypesInfo.Types[n.Lhs[0]].Type)
				}
			}
			return true
		})
	}
}

// checkShift reports the shift at node unless the distance expression
// amt is provably below the bit width of shifted type t.
func (p *Pass) checkShift(stack []ast.Node, node ast.Node, amt ast.Expr, t types.Type) {
	width := basicWidth(t)
	if width == 0 {
		return // non-basic or generic shifted operand; out of scope
	}
	if max, known := p.distanceMax(stack, node, amt); known && max < int64(width) {
		return
	}
	p.Reportf(node.Pos(),
		"shift distance %q not provably < %d (operand %s); bound it with a dominating check, mask it, or annotate //lint:shiftwidth-ok with the invariant",
		exprString(p.Fset, amt), width, t)
}

// distanceMax computes a best-effort inclusive upper bound for the
// shift distance amt at the given AST location.
func (p *Pass) distanceMax(stack []ast.Node, node ast.Node, amt ast.Expr) (int64, bool) {
	amt = ast.Unparen(amt)
	// Constant distance.
	if tv := p.TypesInfo.Types[amt]; tv.Value != nil {
		if v, ok := constant.Int64Val(constant.ToInt(tv.Value)); ok {
			return v, true
		}
		return 0, false
	}
	switch e := amt.(type) {
	case *ast.BinaryExpr:
		switch e.Op {
		case token.AND: // n & C  =>  <= C
			if c, ok := p.intConst(e.Y); ok && c >= 0 {
				return c, true
			}
			if c, ok := p.intConst(e.X); ok && c >= 0 {
				return c, true
			}
		case token.REM: // n % C for unsigned n  =>  <= C-1
			if c, ok := p.intConst(e.Y); ok && c > 0 && isUnsigned(p.TypesInfo.Types[e.X].Type) {
				return c - 1, true
			}
		case token.ADD, token.SUB: // base ± C: bound the base, then offset
			if c, ok := p.intConst(e.Y); ok {
				if base, known := p.distanceMax(stack, node, e.X); known {
					if e.Op == token.ADD {
						return base + c, true
					}
					return base - c, true
				}
			}
			if c, ok := p.intConst(e.X); ok {
				switch e.Op {
				case token.ADD:
					if base, known := p.distanceMax(stack, node, e.Y); known {
						return base + c, true
					}
				case token.SUB: // C - e: maximized when e is minimal
					if emin, known := p.distanceMin(stack, e.Y); known {
						return c - emin, true
					}
				}
			}
		}
	case *ast.CallExpr: // integer conversion: uint(n)
		if len(e.Args) == 1 && p.TypesInfo.Types[e.Fun].IsType() &&
			basicWidth(p.TypesInfo.Types[e.Fun].Type) != 0 {
			return p.distanceMax(stack, node, e.Args[0])
		}
	case *ast.Ident:
		obj, ok := p.TypesInfo.Uses[e].(*types.Var)
		if !ok {
			return 0, false
		}
		// Type-derived bound: a uint8 distance is below 256 for free.
		if w := basicWidth(obj.Type()); w != 0 && w < 64 && isUnsigned(obj.Type()) {
			if max, known := p.guardMax(stack, node, obj); known {
				if tmax := int64(1)<<w - 1; tmax < max {
					return tmax, true
				}
				return max, true
			}
			return int64(1)<<w - 1, true
		}
		return p.guardMax(stack, node, obj)
	}
	return 0, false
}

func (p *Pass) intConst(e ast.Expr) (int64, bool) {
	tv := p.TypesInfo.Types[e]
	if tv.Value == nil {
		return 0, false
	}
	return constant.Int64Val(constant.ToInt(tv.Value))
}

// guardMax scans the ancestors of node for checks dominating it that
// bound obj from above: enclosing if-branches, earlier terminating
// if-statements in enclosing blocks, tagless-switch case ordering, and
// for-loop variables whose condition or constant start bounds them.
// Reassignment of obj between an if-guard and the shift is not tracked
// — the analyzers trade soundness at that edge for zero dependencies,
// and the fixture suite pins the behavior.
func (p *Pass) guardMax(stack []ast.Node, node ast.Node, obj *types.Var) (int64, bool) {
	best := int64(-1)
	better := func(m int64, ok bool) {
		if ok && (best < 0 || m < best) {
			best = m
		}
	}
	child := ast.Node(node)
	for i := len(stack) - 1; i >= 0; i-- {
		switch parent := stack[i].(type) {
		case *ast.IfStmt:
			if containsNode(parent.Body, child) {
				better(p.condMax(parent.Cond, obj, true))
			} else if parent.Else != nil && containsNode(parent.Else, child) {
				better(p.condMax(parent.Cond, obj, false))
			}
		case *ast.BlockStmt:
			for _, stmt := range parent.List {
				if stmt == child || containsNode(stmt, child) {
					break
				}
				ifs, ok := stmt.(*ast.IfStmt)
				if !ok || !terminates(ifs.Body) || ifs.Else != nil {
					continue
				}
				better(p.condMax(ifs.Cond, obj, false))
			}
		case *ast.SwitchStmt:
			// In a tagless switch without fallthrough, reaching a
			// clause means every earlier clause's expression was false,
			// and (for non-default clauses) one of its own is true.
			if parent.Tag == nil && !hasFallthrough(parent) {
				for _, stmt := range parent.Body.List {
					cc, ok := stmt.(*ast.CaseClause)
					if !ok {
						break
					}
					if containsNode(cc, node) {
						better(p.clauseMax(cc, obj))
						break
					}
					for _, e := range cc.List {
						better(p.condMax(e, obj, false))
					}
				}
			}
		case *ast.ForStmt:
			if containsNode(parent.Body, child) {
				better(p.forLoopMax(parent, obj))
			}
		case *ast.FuncLit, *ast.FuncDecl:
			// Guards outside the enclosing function don't dominate
			// goroutine bodies or closures called later.
			if best >= 0 {
				return best, true
			}
			return 0, false
		}
		child = stack[i]
	}
	if best >= 0 {
		return best, true
	}
	return 0, false
}

// clauseMax bounds obj inside a non-default case clause: the clause is
// entered when any of its expressions holds, so every expression must
// yield a bound and the weakest one wins.
func (p *Pass) clauseMax(cc *ast.CaseClause, obj *types.Var) (int64, bool) {
	if len(cc.List) == 0 {
		return 0, false // default clause: no positive information
	}
	worst := int64(-1)
	for _, e := range cc.List {
		m, ok := p.condMax(e, obj, true)
		if !ok {
			return 0, false
		}
		if m > worst {
			worst = m
		}
	}
	return worst, true
}

// forLoopMax bounds a for-loop's own variable inside its body: either
// the condition caps it on every iteration entry, or it starts at a
// constant and only ever decreases. Both require that the body never
// writes the variable.
func (p *Pass) forLoopMax(f *ast.ForStmt, obj *types.Var) (int64, bool) {
	if !p.definesLoopVar(f, obj) || writesVar(p, f.Body, obj) {
		return 0, false
	}
	if f.Cond != nil {
		if m, ok := p.condMax(f.Cond, obj, true); ok {
			return m, true
		}
	}
	if c, ok := p.loopInitConst(f, obj); ok {
		if dec, ok := f.Post.(*ast.IncDecStmt); ok && dec.Tok == token.DEC && p.isUseOf(dec.X, obj) {
			return c, true
		}
	}
	return 0, false
}

// forLoopMin is the mirror image, used to bound C-e distances: the
// condition floors a downward loop, or the variable starts at a
// constant and only ever increases.
func (p *Pass) forLoopMin(f *ast.ForStmt, obj *types.Var) (int64, bool) {
	if !p.definesLoopVar(f, obj) || writesVar(p, f.Body, obj) {
		return 0, false
	}
	if f.Cond != nil {
		if m, ok := p.condMin(f.Cond, obj); ok {
			return m, true
		}
	}
	if c, ok := p.loopInitConst(f, obj); ok {
		if inc, ok := f.Post.(*ast.IncDecStmt); ok && inc.Tok == token.INC && p.isUseOf(inc.X, obj) {
			return c, true
		}
	}
	return 0, false
}

func (p *Pass) definesLoopVar(f *ast.ForStmt, obj *types.Var) bool {
	init, ok := f.Init.(*ast.AssignStmt)
	if !ok || init.Tok != token.DEFINE {
		return false
	}
	for _, lhs := range init.Lhs {
		if id, ok := lhs.(*ast.Ident); ok && p.TypesInfo.Defs[id] == types.Object(obj) {
			return true
		}
	}
	return false
}

func (p *Pass) loopInitConst(f *ast.ForStmt, obj *types.Var) (int64, bool) {
	init := f.Init.(*ast.AssignStmt) // checked by definesLoopVar
	for i, lhs := range init.Lhs {
		if id, ok := lhs.(*ast.Ident); ok && p.TypesInfo.Defs[id] == types.Object(obj) && i < len(init.Rhs) {
			return p.intConst(init.Rhs[i])
		}
	}
	return 0, false
}

// distanceMin is the lower-bound companion of distanceMax, currently
// covering constants and upward/floored loop variables.
func (p *Pass) distanceMin(stack []ast.Node, e ast.Expr) (int64, bool) {
	e = ast.Unparen(e)
	if v, ok := p.intConst(e); ok {
		return v, true
	}
	id, ok := e.(*ast.Ident)
	if !ok {
		return 0, false
	}
	obj, ok := p.TypesInfo.Uses[id].(*types.Var)
	if !ok {
		return 0, false
	}
	for i := len(stack) - 1; i >= 0; i-- {
		switch parent := stack[i].(type) {
		case *ast.ForStmt:
			if m, ok := p.forLoopMin(parent, obj); ok {
				return m, true
			}
		case *ast.FuncLit, *ast.FuncDecl:
			return 0, false
		}
	}
	return 0, false
}

// condMin extracts an inclusive lower bound for obj implied by cond.
func (p *Pass) condMin(cond ast.Expr, obj *types.Var) (int64, bool) {
	cond = ast.Unparen(cond)
	be, ok := cond.(*ast.BinaryExpr)
	if !ok {
		return 0, false
	}
	if be.Op == token.LAND {
		if m, ok := p.condMin(be.X, obj); ok {
			return m, true
		}
		return p.condMin(be.Y, obj)
	}
	op := be.Op
	var cexpr ast.Expr
	if p.isUseOf(be.X, obj) {
		cexpr = be.Y
	} else if p.isUseOf(be.Y, obj) {
		cexpr = be.X
		switch op {
		case token.LSS:
			op = token.GTR
		case token.LEQ:
			op = token.GEQ
		case token.GTR:
			op = token.LSS
		case token.GEQ:
			op = token.LEQ
		}
	} else {
		return 0, false
	}
	c, ok := p.intConst(cexpr)
	if !ok {
		return 0, false
	}
	switch op {
	case token.GTR: // obj > c
		return c + 1, true
	case token.GEQ, token.EQL: // obj >= c, obj == c
		return c, true
	}
	return 0, false
}

func hasFallthrough(s *ast.SwitchStmt) bool {
	found := false
	ast.Inspect(s.Body, func(n ast.Node) bool {
		if b, ok := n.(*ast.BranchStmt); ok && b.Tok == token.FALLTHROUGH {
			found = true
		}
		return !found
	})
	return found
}

// writesVar reports whether any assignment or inc/dec under root
// (including nested function literals) targets obj.
func writesVar(p *Pass, root ast.Node, obj *types.Var) bool {
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE {
				return true
			}
			for _, lhs := range n.Lhs {
				if p.isUseOf(lhs, obj) {
					found = true
				}
			}
		case *ast.IncDecStmt:
			if p.isUseOf(n.X, obj) {
				found = true
			}
		case *ast.UnaryExpr:
			// Taking the address may alias the variable; be conservative.
			if n.Op == token.AND && p.isUseOf(n.X, obj) {
				found = true
			}
		}
		return !found
	})
	return found
}

// condMax extracts an inclusive upper bound for obj implied by cond
// (when positive is true) or by !cond (when positive is false).
func (p *Pass) condMax(cond ast.Expr, obj *types.Var, positive bool) (int64, bool) {
	cond = ast.Unparen(cond)
	be, ok := cond.(*ast.BinaryExpr)
	if !ok {
		return 0, false
	}
	// Boolean structure: cond=a&&b implies both; !(a||b) implies !a and !b.
	if (positive && be.Op == token.LAND) || (!positive && be.Op == token.LOR) {
		mx, okx := p.condMax(be.X, obj, positive)
		my, oky := p.condMax(be.Y, obj, positive)
		switch {
		case okx && oky:
			return min(mx, my), true
		case okx:
			return mx, true
		case oky:
			return my, true
		}
		return 0, false
	}
	// Normalize to: obj OP const.
	op := be.Op
	var cexpr ast.Expr
	if p.isUseOf(be.X, obj) {
		cexpr = be.Y
	} else if p.isUseOf(be.Y, obj) {
		cexpr = be.X
		switch op { // flip the relation
		case token.LSS:
			op = token.GTR
		case token.LEQ:
			op = token.GEQ
		case token.GTR:
			op = token.LSS
		case token.GEQ:
			op = token.LEQ
		}
	} else {
		return 0, false
	}
	c, ok := p.intConst(cexpr)
	if !ok {
		return 0, false
	}
	if positive {
		switch op {
		case token.LSS: // obj < c
			return c - 1, true
		case token.LEQ, token.EQL: // obj <= c, obj == c
			return c, true
		}
	} else {
		switch op {
		case token.GTR: // !(obj > c)
			return c, true
		case token.GEQ: // !(obj >= c)
			return c - 1, true
		case token.NEQ: // !(obj != c)
			return c, true
		}
	}
	return 0, false
}

func (p *Pass) isUseOf(e ast.Expr, obj *types.Var) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		// Tolerate a single integer conversion: uint(n) < 64.
		if call, isCall := ast.Unparen(e).(*ast.CallExpr); isCall &&
			len(call.Args) == 1 && p.TypesInfo.Types[call.Fun].IsType() {
			id, ok = ast.Unparen(call.Args[0]).(*ast.Ident)
		}
		if !ok {
			return false
		}
	}
	return p.TypesInfo.Uses[id] == obj
}

// terminates reports whether a block always transfers control out
// (return, branch, panic, os.Exit, log.Fatal*).
func terminates(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch s := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		call, ok := s.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			return fun.Name == "panic"
		case *ast.SelectorExpr:
			if x, ok := fun.X.(*ast.Ident); ok {
				return (x.Name == "os" && fun.Sel.Name == "Exit") ||
					(x.Name == "log" && len(fun.Sel.Name) >= 5 && fun.Sel.Name[:5] == "Fatal")
			}
		}
	}
	return false
}

func containsNode(root, target ast.Node) bool {
	if root == nil {
		return false
	}
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if found {
			return false
		}
		if n == target {
			found = true
		}
		return !found
	})
	return found
}

func basicWidth(t types.Type) int {
	if t == nil {
		return 0
	}
	b, ok := t.Underlying().(*types.Basic)
	if !ok || b.Info()&types.IsInteger == 0 {
		return 0
	}
	switch b.Kind() {
	case types.Int8, types.Uint8:
		return 8
	case types.Int16, types.Uint16:
		return 16
	case types.Int32, types.Uint32:
		return 32
	case types.Int64, types.Uint64:
		return 64
	case types.Int, types.Uint:
		return strconv.IntSize
	case types.Uintptr:
		return strconv.IntSize
	}
	return 0
}

func isUnsigned(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsUnsigned != 0
}
