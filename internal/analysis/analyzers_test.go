package analysis

import "testing"

func TestFloatCmp(t *testing.T) {
	runFixture(t, FloatCmp, "floatcmp", fixtureModPath+"/internal/fixtures")
}

func TestShiftWidth(t *testing.T) {
	runFixture(t, ShiftWidth, "shiftwidth", fixtureModPath+"/internal/fixtures")
}

func TestErrDrop(t *testing.T) {
	runFixture(t, ErrDrop, "errdrop", fixtureModPath+"/internal/fixtures")
}

func TestNoPanicLibrary(t *testing.T) {
	runFixture(t, NoPanic, "nopanic/lib", fixtureModPath+"/internal/fixtures")
}

func TestNoPanicCmdExempt(t *testing.T) {
	// Same calls, cmd/ package path: zero findings expected, which the
	// harness enforces because the fixture has no want comments.
	runFixture(t, NoPanic, "nopanic/cmdpkg", fixtureModPath+"/cmd/tool")
}

func TestGoroutineCapture(t *testing.T) {
	runFixture(t, GoroutineCapture, "goroutinecapture", fixtureModPath+"/internal/fixtures")
}

func TestTelemetryDrop(t *testing.T) {
	runFixture(t, TelemetryDrop, "telemetrydrop", fixtureModPath+"/internal/fixtures")
}

func TestHotAlloc(t *testing.T) {
	runFixture(t, HotAlloc, "hotalloc", fixtureModPath+"/internal/fixtures")
}

func TestSlogKey(t *testing.T) {
	runFixture(t, SlogKey, "slogkey", fixtureModPath+"/internal/fixtures")
}

func TestByName(t *testing.T) {
	as, err := ByName([]string{"floatcmp", "nopanic"})
	if err != nil || len(as) != 2 || as[0] != FloatCmp || as[1] != NoPanic {
		t.Fatalf("ByName = %v, %v", as, err)
	}
	if _, err := ByName([]string{"nosuch"}); err == nil {
		t.Fatal("ByName accepted unknown analyzer")
	}
}
