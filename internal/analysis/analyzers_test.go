package analysis

import "testing"

func TestFloatCmp(t *testing.T) {
	runFixture(t, FloatCmp, "floatcmp", fixtureModPath+"/internal/fixtures")
}

func TestShiftWidth(t *testing.T) {
	runFixture(t, ShiftWidth, "shiftwidth", fixtureModPath+"/internal/fixtures")
}

func TestErrDrop(t *testing.T) {
	runFixture(t, ErrDrop, "errdrop", fixtureModPath+"/internal/fixtures")
}

func TestNoPanicLibrary(t *testing.T) {
	runFixture(t, NoPanic, "nopanic/lib", fixtureModPath+"/internal/fixtures")
}

func TestNoPanicCmdExempt(t *testing.T) {
	// Same calls, cmd/ package path: zero findings expected, which the
	// harness enforces because the fixture has no want comments.
	runFixture(t, NoPanic, "nopanic/cmdpkg", fixtureModPath+"/cmd/tool")
}

func TestGoroutineCapture(t *testing.T) {
	runFixture(t, GoroutineCapture, "goroutinecapture", fixtureModPath+"/internal/fixtures")
}

func TestTelemetryDrop(t *testing.T) {
	runFixture(t, TelemetryDrop, "telemetrydrop", fixtureModPath+"/internal/fixtures")
}

func TestSlogKey(t *testing.T) {
	runFixture(t, SlogKey, "slogkey", fixtureModPath+"/internal/fixtures")
}

func TestSpanEnd(t *testing.T) {
	runFixture(t, SpanEnd, "spanend", fixtureModPath+"/internal/fixtures")
}

func TestSloConst(t *testing.T) {
	runFixture(t, SloConst, "sloconst", fixtureModPath+"/internal/fixtures")
}

func TestHotAlloc2(t *testing.T) {
	runModuleFixture(t, HotAlloc2, "hotalloc2", fixtureModPath+"/internal/fixtures")
}

func TestDetLint(t *testing.T) {
	runModuleFixture(t, DetLint, "detlint", fixtureModPath+"/internal/fixtures")
}

func TestAtomicMix(t *testing.T) {
	runModuleFixture(t, AtomicMix, "atomicmix", fixtureModPath+"/internal/fixtures")
}

func TestDeferLoop(t *testing.T) {
	runModuleFixture(t, DeferLoop, "deferloop", fixtureModPath+"/internal/fixtures")
}

func TestSelect(t *testing.T) {
	pas, mas, err := Select([]string{"floatcmp", "hotalloc2", "detlint"})
	if err != nil || len(pas) != 1 || len(mas) != 2 {
		t.Fatalf("Select = %v, %v, %v", pas, mas, err)
	}
	if pas[0] != FloatCmp || mas[0] != HotAlloc2 || mas[1] != DetLint {
		t.Fatal("Select resolved wrong analyzers")
	}
	if _, _, err := Select([]string{"hotalloc"}); err == nil {
		t.Fatal("Select accepted the retired hotalloc name")
	}
}

func TestByName(t *testing.T) {
	as, err := ByName([]string{"floatcmp", "nopanic"})
	if err != nil || len(as) != 2 || as[0] != FloatCmp || as[1] != NoPanic {
		t.Fatalf("ByName = %v, %v", as, err)
	}
	if _, err := ByName([]string{"nosuch"}); err == nil {
		t.Fatal("ByName accepted unknown analyzer")
	}
}
