package analysis

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"time"
)

// A Baseline is the committed list of findings the repo has chosen to
// live with temporarily. Every entry must say why it exists and when it
// expires; an expired entry stops suppressing and fails the run, so
// debt cannot silently become permanent. Unused entries also fail the
// run: once the underlying finding is fixed, the entry must be deleted.
type Baseline struct {
	Entries []BaselineEntry `json:"entries"`
}

// A BaselineEntry suppresses findings from one analyzer in one file
// whose message starts with MessagePrefix. File is module-root-relative
// with forward slashes, matching Finding.File. Line numbers are
// deliberately not part of the key — baselined findings should survive
// unrelated edits above them.
type BaselineEntry struct {
	Analyzer      string `json:"analyzer"`
	File          string `json:"file"`
	MessagePrefix string `json:"message_prefix"`
	Reason        string `json:"reason"`
	Expires       string `json:"expires"` // YYYY-MM-DD, mandatory
}

const baselineDateLayout = "2006-01-02"

// LoadBaseline reads and validates a baseline file.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	b, err := ParseBaseline(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return b, nil
}

// ParseBaseline decodes a baseline document, rejecting unknown fields
// and entries missing any of the mandatory fields.
func ParseBaseline(data []byte) (*Baseline, error) {
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	var b Baseline
	if err := dec.Decode(&b); err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	for i, e := range b.Entries {
		switch {
		case e.Analyzer == "":
			return nil, fmt.Errorf("baseline entry %d: missing analyzer", i)
		case e.File == "":
			return nil, fmt.Errorf("baseline entry %d: missing file", i)
		case e.MessagePrefix == "":
			return nil, fmt.Errorf("baseline entry %d: missing message_prefix", i)
		case e.Reason == "":
			return nil, fmt.Errorf("baseline entry %d: missing reason — say why this finding is temporarily acceptable", i)
		case e.Expires == "":
			return nil, fmt.Errorf("baseline entry %d: missing expires — baseline entries must have an expiry date", i)
		}
		if _, err := time.Parse(baselineDateLayout, e.Expires); err != nil {
			return nil, fmt.Errorf("baseline entry %d: bad expires %q: want YYYY-MM-DD", i, e.Expires)
		}
	}
	return &b, nil
}

// Apply filters findings through the baseline as of now. It returns the
// findings no unexpired entry matches, plus one problem string per
// expired entry and per entry that matched nothing — both are failures
// for the caller to report.
func (b *Baseline) Apply(findings []Finding, now time.Time) (kept []Finding, problems []string) {
	today := now.Format(baselineDateLayout)
	used := make([]bool, len(b.Entries))
	expired := make([]bool, len(b.Entries))
	for i, e := range b.Entries {
		// String comparison works because the layout is big-endian.
		expired[i] = e.Expires < today
	}
	for _, f := range findings {
		matched := false
		for i, e := range b.Entries {
			if e.Analyzer != f.Analyzer || e.File != f.File ||
				!strings.HasPrefix(f.Message, e.MessagePrefix) {
				continue
			}
			used[i] = true
			if !expired[i] {
				matched = true
			}
		}
		if !matched {
			kept = append(kept, f)
		}
	}
	for i, e := range b.Entries {
		if expired[i] {
			problems = append(problems,
				fmt.Sprintf("baseline entry for %s in %s expired %s (%s); fix the finding or renew the entry",
					e.Analyzer, e.File, e.Expires, e.Reason))
		} else if !used[i] {
			problems = append(problems,
				fmt.Sprintf("baseline entry for %s in %s matched no finding; delete it", e.Analyzer, e.File))
		}
	}
	return kept, problems
}
