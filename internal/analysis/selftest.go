package analysis

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path"
	"path/filepath"
	"strings"
)

// Selftest runs every analyzer over its fixture package under
// modRoot/internal/analysis/testdata and returns the surviving findings
// with module-root-relative paths, sorted canonically. The committed
// golden (cmd/pastrilint/testdata/selftest.golden.json) pins this
// output, so a behavior change in any analyzer — a lost finding, a
// reworded message, a broken suppression — shows up as a golden diff
// even when the unit fixtures were updated to match.
func Selftest(modRoot string) ([]Finding, error) {
	const fixtureMod = "fixture.example/mod"
	cases := []struct {
		dir     string // under internal/analysis/testdata
		pkgPath string
		names   []string // analyzer names, resolved via Select
	}{
		{"floatcmp", fixtureMod + "/internal/fixtures", []string{"floatcmp"}},
		{"shiftwidth", fixtureMod + "/internal/fixtures", []string{"shiftwidth"}},
		{"errdrop", fixtureMod + "/internal/fixtures", []string{"errdrop"}},
		{"nopanic/lib", fixtureMod + "/internal/fixtures", []string{"nopanic"}},
		{"nopanic/cmdpkg", fixtureMod + "/cmd/tool", []string{"nopanic"}},
		{"goroutinecapture", fixtureMod + "/internal/fixtures", []string{"goroutinecapture"}},
		{"telemetrydrop", fixtureMod + "/internal/fixtures", []string{"telemetrydrop"}},
		{"slogkey", fixtureMod + "/internal/fixtures", []string{"slogkey"}},
		{"spanend", fixtureMod + "/internal/fixtures", []string{"spanend"}},
		{"sloconst", fixtureMod + "/internal/fixtures", []string{"sloconst"}},
		{"hotalloc2", fixtureMod + "/internal/fixtures", []string{"hotalloc2"}},
		{"detlint", fixtureMod + "/internal/fixtures", []string{"detlint"}},
		{"atomicmix", fixtureMod + "/internal/fixtures", []string{"atomicmix"}},
		{"deferloop", fixtureMod + "/internal/fixtures", []string{"deferloop"}},
	}
	fset := token.NewFileSet()
	importer := StdImporter(fset)
	var findings []Finding
	for _, c := range cases {
		pas, mas, err := Select(c.names)
		if err != nil {
			return nil, err
		}
		pkg, err := loadFixturePackage(fset, importer, modRoot, c.dir, c.pkgPath)
		if err != nil {
			return nil, fmt.Errorf("selftest %s: %w", c.dir, err)
		}
		var diags []Diagnostic
		if len(pas) > 0 {
			diags = append(diags, RunPackage(pkg, pas)...)
		}
		if len(mas) > 0 {
			diags = append(diags, RunModule([]*Package{pkg}, mas)...)
		}
		for _, d := range diags {
			// Positions are already recorded module-root-relative.
			findings = append(findings, NewFinding("", d))
		}
	}
	SortFindings(findings)
	return findings, nil
}

// loadFixturePackage type-checks one fixture directory, recording file
// positions as module-root-relative slash paths so selftest output is
// byte-identical regardless of where the checkout lives.
func loadFixturePackage(fset *token.FileSet, importer types.Importer, modRoot, dir, pkgPath string) (*Package, error) {
	rel := path.Join("internal/analysis/testdata", dir)
	full := filepath.Join(modRoot, filepath.FromSlash(rel))
	ents, err := os.ReadDir(full)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		src, err := os.ReadFile(filepath.Join(full, e.Name()))
		if err != nil {
			return nil, err
		}
		f, err := parser.ParseFile(fset, path.Join(rel, e.Name()), src,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no fixture files in %s", full)
	}
	info := newTypesInfo()
	conf := &types.Config{Importer: importer}
	tpkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking: %w", err)
	}
	return &Package{
		Path:    pkgPath,
		ModPath: "fixture.example/mod",
		Dir:     full,
		Fset:    fset,
		Files:   files,
		Types:   tpkg,
		Info:    info,
	}, nil
}
