package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatCmp flags == and != between floating-point (or complex)
// operands. PaSTRI's error-bound logic must compare against tolerances
// (|a-b| <= eb), never exactly: an exact comparison that "works" on one
// code path silently breaks once a refactor reorders the arithmetic.
// The only legitimate exact comparisons are sentinel checks against
// values that are exact by construction (un-touched zeros from sparse
// screening, IEEE values produced by Ldexp) — those sites carry a
// //lint:floatcmp-ok marker stating why exactness holds.
var FloatCmp = &Analyzer{
	Name: "floatcmp",
	Doc:  "flag == / != on floating-point operands (use a tolerance or annotate the sentinel)",
	Run:  runFloatCmp,
}

func runFloatCmp(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			xt := p.TypesInfo.Types[be.X]
			yt := p.TypesInfo.Types[be.Y]
			if !isFloatish(xt.Type) && !isFloatish(yt.Type) {
				return true
			}
			// Both sides compile-time constants: the comparison is
			// resolved by the compiler, not at run time.
			if xt.Value != nil && yt.Value != nil {
				return true
			}
			p.Reportf(be.OpPos,
				"floating-point %s comparison; compare against a tolerance or annotate //lint:floatcmp-ok with the exactness argument",
				be.Op)
			return true
		})
	}
}

func isFloatish(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
}
