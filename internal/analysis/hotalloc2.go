package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis/flow"
)

// HotAlloc2 is the interprocedural successor of the first-generation
// hotalloc analyzer: it guards the zero-allocation contract of the
// block kernels across call boundaries. A function is hot if its doc
// comment carries //pastri:hotpath or if it is reachable from a marked
// function through the flow engine's call graph (static calls,
// interface dispatch by class hierarchy, function values by signature
// match) — so a make buried two helpers below a kernel no longer sails
// through.
//
// Inside a hot function (including nested function literals) the
// analyzer flags:
//
//   - any call to the builtin make;
//   - append into a freshly created slice (composite literal,
//     conversion, call result);
//   - append whose result does not feed back into its destination;
//   - append onto a slice variable that is still nil from its local
//     declaration on some path (solved with a may-analysis on the CFG:
//     the first such append allocates the backing array on every call);
//   - function literals that capture variables (a closure allocates);
//   - implicit interface conversions at call arguments and explicit
//     conversions to interface types (boxing allocates);
//   - non-constant string concatenation.
//
// Two exemptions keep the signal-to-noise ratio honest. Boxing and
// concatenation inside a return statement or a panic argument are not
// flagged: those expressions run at most once per call — in practice on
// error exits (`return fmt.Errorf(...)`, `panic(fmt.Sprintf(...))`) —
// so they are not a per-iteration cost. And converting a
// pointer-shaped value (pointer, channel, map, function) to an
// interface is not flagged at all: the value fits the interface data
// word directly and the conversion does not allocate.
//
// Findings inherited by reachability carry the propagation chain from
// the marked root. Legacy //lint:hotalloc-ok markers are honored so
// first-generation annotations keep working.
var HotAlloc2 = &ModuleAnalyzer{
	Name:     "hotalloc2",
	Doc:      "flag allocations (make/append/closures/boxing/string concat) in or reachable from //pastri:hotpath functions",
	Suppress: []string{"hotalloc"},
	Run:      runHotAlloc2,
}

func runHotAlloc2(p *ModulePass) {
	hot, from := p.Program.Hot()
	for _, fn := range p.Program.Funcs() {
		if !hot[fn] {
			continue
		}
		where := fn.Obj.Name()
		if chain := flow.Chain(from, fn); chain != "" {
			where = fn.Obj.Name() + " (hot via " + chain + ")"
		}
		c := &hotChecker{p: p, fn: fn, where: where, info: fn.Pkg.Info}
		c.check()
	}
}

type hotChecker struct {
	p     *ModulePass
	fn    *flow.Func
	where string // "name" or "name (hot via root → ... → name)"
	info  *types.Info
}

func (c *hotChecker) check() {
	body := c.fn.Decl.Body
	walkStack(body, func(stack []ast.Node, n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			c.checkCall(stack, n)
		case *ast.FuncLit:
			c.checkClosure(n)
		case *ast.BinaryExpr:
			c.checkStringConcat(stack, n)
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isStringType(c.info.TypeOf(n.Lhs[0])) {
				c.p.Reportf(n.Pos(),
					"string += in hot function %s allocates on every call; use a reusable []byte or strings.Builder outside the hot path, or annotate //lint:hotalloc2-ok",
					c.where)
			}
		}
		return true
	})
	// CFG pass: appends onto locally-nil slices, per body (the
	// declaration body and every nested literal get their own graphs).
	c.checkNilAppends(body)
	for _, fl := range flow.FuncLitsIn(c.fn.Decl) {
		c.checkNilAppends(fl.Body)
	}
}

func (c *hotChecker) checkCall(stack []ast.Node, call *ast.CallExpr) {
	switch c.builtinName(call) {
	case "make":
		c.p.Reportf(call.Pos(),
			"make in hot function %s allocates on every call; hoist into reusable scratch or annotate //lint:hotalloc2-ok",
			c.where)
		return
	case "append":
		if len(call.Args) == 0 {
			return
		}
		if isFreshSlice(ast.Unparen(call.Args[0])) {
			c.p.Reportf(call.Pos(),
				"append into a fresh slice in hot function %s allocates on every call; append in place into reusable scratch or annotate //lint:hotalloc2-ok",
				c.where)
			return
		}
		if !c.appendInPlace(stack, call) {
			c.p.Reportf(call.Pos(),
				"append result in hot function %s does not feed back into its destination; use x = append(x, ...) on reusable scratch or annotate //lint:hotalloc2-ok",
			c.where)
		}
		return
	case "":
		// Not a builtin: interface boxing at arguments, below.
	default:
		return
	}
	if c.coldExit(stack) {
		return // boxing on a return/panic path is not per-iteration
	}
	if tv, ok := c.info.Types[call.Fun]; ok && tv.IsType() {
		// Explicit conversion T(x): flag conversions to interfaces.
		if types.IsInterface(tv.Type) && len(call.Args) == 1 {
			if at := c.info.TypeOf(call.Args[0]); concreteBoxed(at) {
				c.p.Reportf(call.Pos(),
					"conversion of %s to interface %s in hot function %s allocates (boxing); keep concrete types on the hot path or annotate //lint:hotalloc2-ok",
					at, tv.Type, c.where)
			}
		}
		return
	}
	sig, ok := typeAsSignature(c.info.TypeOf(call.Fun))
	if !ok || call.Ellipsis != token.NoPos {
		return
	}
	np := sig.Params().Len()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= np-1:
			slice, ok := sig.Params().At(np - 1).Type().(*types.Slice)
			if !ok {
				continue
			}
			pt = slice.Elem()
		case i < np:
			pt = sig.Params().At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(pt) {
			continue
		}
		if at := c.info.TypeOf(arg); concreteBoxed(at) {
			c.p.Reportf(arg.Pos(),
				"argument converts %s to interface %s in hot function %s; boxing allocates per call — keep concrete types or annotate //lint:hotalloc2-ok",
				at, pt, c.where)
		}
	}
}

// checkClosure flags function literals that capture enclosing
// variables: constructing such a closure allocates.
func (c *hotChecker) checkClosure(fl *ast.FuncLit) {
	decl := c.fn.Decl
	captured := map[string]bool{}
	var names []string
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := c.info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		// Captured = declared inside the enclosing declaration but
		// outside this literal.
		if v.Pos() >= decl.Pos() && v.Pos() < decl.End() &&
			!(v.Pos() >= fl.Pos() && v.Pos() < fl.End()) {
			if !captured[v.Name()] {
				captured[v.Name()] = true
				names = append(names, v.Name())
			}
		}
		return true
	})
	if len(names) > 0 {
		c.p.Reportf(fl.Pos(),
			"function literal captures %s in hot function %s; constructing the closure allocates per call — hoist it or annotate //lint:hotalloc2-ok",
			strings.Join(names, ", "), c.where)
	}
}

func (c *hotChecker) checkStringConcat(stack []ast.Node, be *ast.BinaryExpr) {
	if be.Op != token.ADD || !isStringType(c.info.TypeOf(be)) {
		return
	}
	if tv, ok := c.info.Types[be]; ok && tv.Value != nil {
		return // constant-folded at compile time
	}
	if c.coldExit(stack) {
		return
	}
	c.p.Reportf(be.Pos(),
		"string concatenation in hot function %s allocates on every call; precompute or use reusable scratch, or annotate //lint:hotalloc2-ok",
		c.where)
}

// --- CFG may-analysis: appends onto locally-nil slices -------------------

// freshFact is the set of slice variables that may still hold their
// zero (nil) value from a local declaration. Join is union: if any
// path reaches an append with the variable nil, the append allocates
// on that path.
type freshFact map[*types.Var]bool

type freshLattice struct{}

func (freshLattice) Bottom() freshFact { return nil }

func (freshLattice) Join(a, b freshFact) freshFact {
	if len(a) == 0 {
		return b
	}
	if len(b) == 0 {
		return a
	}
	out := make(freshFact, len(a)+len(b))
	for v := range a {
		out[v] = true
	}
	for v := range b {
		out[v] = true
	}
	return out
}

func (freshLattice) Equal(a, b freshFact) bool {
	if len(a) != len(b) {
		return false
	}
	for v := range a {
		if !b[v] {
			return false
		}
	}
	return true
}

// checkNilAppends runs the nil-slice may-analysis over one body and
// reports in-place appends whose base may still be the locally
// declared nil slice.
func (c *hotChecker) checkNilAppends(body *ast.BlockStmt) {
	g := flow.New(body)
	facts := flow.Forward[freshFact](g, freshLattice{}, func(b *flow.Block, in freshFact) freshFact {
		return c.freshTransfer(b, in, nil)
	})
	reach := g.Reachable()
	for _, b := range g.Blocks {
		if !reach[b] {
			continue
		}
		c.freshTransfer(b, facts.In[b], func(v *types.Var, call *ast.CallExpr) {
			c.p.Reportf(call.Pos(),
				"append onto %s, which is still the locally-declared nil slice on some path, allocates a new backing array on every call of hot function %s; use caller-provided or pooled scratch or annotate //lint:hotalloc2-ok",
				v.Name(), c.where)
		})
	}
}

// freshTransfer interprets one block's statements over the fresh-set
// fact. When report is non-nil it also fires for each in-place append
// whose base is currently fresh (the reporting replay).
func (c *hotChecker) freshTransfer(b *flow.Block, in freshFact, report func(*types.Var, *ast.CallExpr)) freshFact {
	out := make(freshFact, len(in))
	for v := range in {
		out[v] = true
	}
	for _, s := range b.Stmts {
		for _, node := range flow.BlockNodes(s) {
			ast.Inspect(node, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.FuncLit:
					return false // separate body, separate analysis
				case *ast.DeclStmt:
					gd, ok := n.Decl.(*ast.GenDecl)
					if !ok {
						return true
					}
					for _, spec := range gd.Specs {
						vs, ok := spec.(*ast.ValueSpec)
						if !ok || len(vs.Values) != 0 {
							continue
						}
						for _, name := range vs.Names {
							if v := c.sliceVar(name); v != nil {
								out[v] = true // var s []T: nil
							}
						}
					}
				case *ast.AssignStmt:
					c.freshAssign(n, out, report)
					return true
				}
				return true
			})
		}
	}
	return out
}

// freshAssign updates the fresh set for one assignment and fires
// report for in-place appends on fresh bases.
func (c *hotChecker) freshAssign(as *ast.AssignStmt, out freshFact, report func(*types.Var, *ast.CallExpr)) {
	if len(as.Lhs) != len(as.Rhs) {
		// Multi-value assignment from a call: targets are no longer
		// known-nil.
		for _, lhs := range as.Lhs {
			if v := c.sliceVarExpr(lhs); v != nil {
				delete(out, v)
			}
		}
		return
	}
	for i, lhs := range as.Lhs {
		v := c.sliceVarExpr(lhs)
		rhs := ast.Unparen(as.Rhs[i])
		// Appends: report if the base is fresh, then mark the target
		// non-fresh (the backing array now exists; one finding per
		// chain is enough).
		if call, ok := rhs.(*ast.CallExpr); ok && c.builtinName(call) == "append" && len(call.Args) > 0 {
			if base := c.sliceVarExpr(sliceBase(call.Args[0])); base != nil && out[base] {
				if report != nil {
					report(base, call)
				}
				delete(out, base)
			}
			if v != nil {
				delete(out, v)
			}
			continue
		}
		if v == nil {
			continue
		}
		if isNilIdent(rhs) {
			out[v] = true // s = nil: back to fresh
		} else {
			delete(out, v)
		}
	}
}

// sliceVar resolves a defining or using identifier to its *types.Var
// if it names a local variable of slice type.
func (c *hotChecker) sliceVar(id *ast.Ident) *types.Var {
	var obj types.Object
	if d, ok := c.info.Defs[id]; ok {
		obj = d
	} else {
		obj = c.info.Uses[id]
	}
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() {
		return nil
	}
	if _, ok := v.Type().Underlying().(*types.Slice); !ok {
		return nil
	}
	return v
}

func (c *hotChecker) sliceVarExpr(e ast.Expr) *types.Var {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	return c.sliceVar(id)
}

func isNilIdent(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

// --- helpers shared with the first-generation hotalloc (relocated) -------

// builtinName returns the name of the builtin being called, or "" if
// call is not a direct builtin invocation.
func (c *hotChecker) builtinName(call *ast.CallExpr) string {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return ""
	}
	if _, ok := c.info.Uses[id].(*types.Builtin); !ok {
		return ""
	}
	return id.Name
}

// isFreshSlice reports whether e creates a slice at the point of use: a
// composite literal or any call result (conversions like []T(nil) and
// make(...) parse as calls). Identifiers, selectors, index and slice
// expressions refer to existing backing arrays and are not fresh.
func isFreshSlice(e ast.Expr) bool {
	switch e.(type) {
	case *ast.CompositeLit, *ast.CallExpr:
		return true
	}
	return false
}

// appendInPlace reports whether call sits on the right-hand side of an
// assignment whose matching left-hand side is the same expression as
// the append destination's base (slicing and parens stripped), i.e. the
// canonical `x = append(x, ...)` / `*p = append((*p)[:0], ...)` shapes.
func (c *hotChecker) appendInPlace(stack []ast.Node, call *ast.CallExpr) bool {
	i := len(stack) - 1
	for i >= 0 {
		if _, ok := stack[i].(*ast.ParenExpr); ok {
			i--
			continue
		}
		break
	}
	if i < 0 {
		return false
	}
	as, ok := stack[i].(*ast.AssignStmt)
	if !ok || len(as.Lhs) != len(as.Rhs) {
		return false
	}
	for j, rhs := range as.Rhs {
		if ast.Unparen(rhs) != ast.Expr(call) {
			continue
		}
		lhs := exprString(c.p.Fset, ast.Unparen(as.Lhs[j]))
		base := exprString(c.p.Fset, sliceBase(call.Args[0]))
		return lhs == base
	}
	return false
}

// coldExit reports whether the node the stack leads to sits inside a
// return statement or a panic argument of the innermost function body —
// paths that execute at most once per call, typically error exits.
// The scan stops at a function-literal boundary: an expression inside a
// literal is not on the enclosing function's exit path.
func (c *hotChecker) coldExit(stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch n := stack[i].(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			return true
		case *ast.CallExpr:
			if c.builtinName(n) == "panic" {
				return true
			}
		}
	}
	return false
}

// sliceBase strips parens and slicing from e: (*p)[:0] -> *p, x[:n] -> x.
func sliceBase(e ast.Expr) ast.Expr {
	for {
		switch t := e.(type) {
		case *ast.ParenExpr:
			e = t.X
		case *ast.SliceExpr:
			e = t.X
		default:
			return e
		}
	}
}

// typeAsSignature unwraps a call operand's type to its signature.
func typeAsSignature(t types.Type) (*types.Signature, bool) {
	if t == nil {
		return nil, false
	}
	sig, ok := t.Underlying().(*types.Signature)
	return sig, ok
}

// concreteBoxed reports whether converting a value of type t to an
// interface allocates: t must be a real, non-interface type (not
// untyped nil) that does not already fit the interface data word.
// Pointers, channels, maps, functions, and unsafe.Pointer are stored
// directly, so converting them is free.
func concreteBoxed(t types.Type) bool {
	if t == nil || types.IsInterface(t) {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Basic:
		switch u.Kind() {
		case types.UntypedNil, types.Invalid, types.UnsafePointer:
			return false
		}
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return false
	}
	return true
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}
