package analysis

import (
	"go/ast"
	"go/types"
)

// SpanEnd flags trace spans whose End is not guaranteed to run on
// every exit path. Span.StartChild (internal/telemetry/trace) hands
// back a child span that must be ended exactly once; a span that is
// never ended is exported as "unfinished" with zero duration, and a
// span ended only on the happy path lies about latency in exactly the
// failing requests where traces are most wanted.
//
// Flagged shapes, matched structurally by name so fixtures and future
// tracer types are covered without importing the trace package: a
// method named StartChild on a type named Span returning a type named
// Span that has an End method.
//
//   - the span dropped outright (bare call, or assigned to _);
//   - chained sp.StartChild(...).End() in one statement — the span
//     brackets nothing;
//   - v := sp.StartChild(...) where the enclosing function neither
//     defers v.End() nor ends the span on the straight line: a plain
//     v.End() must follow in the definition's own statement list, and
//     every return between the two must be preceded by a v.End() in
//     its innermost block.
//
// A span that escapes — passed to another function, returned, stored
// in a struct or field — is not flagged; ownership moved with it.
// Intentional exceptions (e.g. a span re-created per loop iteration
// and ended at the top of the next) are annotated //lint:spanend-ok.
var SpanEnd = &Analyzer{
	Name: "spanend",
	Doc:  "flag trace spans whose End is skipped on some exit path",
	Run:  runSpanEnd,
}

func runSpanEnd(p *Pass) {
	for _, f := range p.Files {
		walkStack(f, func(stack []ast.Node, n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				call, ok := ast.Unparen(n.X).(*ast.CallExpr)
				if !ok {
					return true
				}
				if p.isStartChildCall(call) {
					p.Reportf(call.Pos(),
						"span is dropped; its End never runs, so it is exported as an unfinished span")
					return true
				}
				if p.isSpanEndChain(call) {
					p.Reportf(call.Pos(),
						"span is started and ended in the same statement; it brackets nothing — bind it and End after the work")
				}
			case *ast.AssignStmt:
				if len(n.Lhs) != len(n.Rhs) {
					return true
				}
				for i, rhs := range n.Rhs {
					call, ok := ast.Unparen(rhs).(*ast.CallExpr)
					if !ok || !p.isStartChildCall(call) {
						continue
					}
					id, ok := n.Lhs[i].(*ast.Ident)
					if !ok {
						continue // stored into a field/element: escapes
					}
					if id.Name == "_" {
						p.Reportf(call.Pos(),
							"span is discarded with _; its End never runs, so it is exported as an unfinished span")
						continue
					}
					v := p.definedOrUsedVar(id)
					body := enclosingFuncBody(stack)
					if v == nil || body == nil {
						continue
					}
					if p.spanEndDeferred(body, v) || p.spanEscapes(body, v) {
						continue
					}
					p.checkStraightLineEnd(stack, n, v)
				}
			}
			return true
		})
	}
}

// checkStraightLineEnd enforces the non-deferred discipline for a span
// defined by assign: a plain v.End() later in the same statement list,
// with every return in between ended in its own innermost block.
func (p *Pass) checkStraightLineEnd(stack []ast.Node, assign *ast.AssignStmt, v *types.Var) {
	var list []ast.Stmt
	if len(stack) > 0 {
		list = stmtList(stack[len(stack)-1])
	}
	defIdx := -1
	for i, s := range list {
		if s == ast.Stmt(assign) {
			defIdx = i
			break
		}
	}
	if defIdx < 0 {
		// Defined somewhere without a statement list (if-init, etc.):
		// too exotic for straight-line proof — demand a defer.
		p.Reportf(assign.Pos(),
			"span %q needs defer %s.End(); its definition site has no straight-line End position", v.Name(), v.Name())
		return
	}
	endIdx := -1
	for j := defIdx + 1; j < len(list); j++ {
		if p.isPlainEndStmt(list[j], v) {
			endIdx = j
			break
		}
	}
	if endIdx < 0 {
		p.Reportf(assign.Pos(),
			"span %q is never ended on this path; defer %s.End() or end it before every exit (or annotate //lint:spanend-ok)",
			v.Name(), v.Name())
		return
	}
	for j := defIdx + 1; j < endIdx; j++ {
		p.checkReturnsEnd(list[j], v)
	}
}

// checkReturnsEnd flags every return nested in stmt that is not
// preceded by a plain v.End() in its innermost statement list. Returns
// inside function literals belong to a different function and are
// skipped.
func (p *Pass) checkReturnsEnd(stmt ast.Stmt, v *types.Var) {
	walkStack(stmt, func(stack []ast.Node, n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for i := len(stack) - 1; i >= 0; i-- {
			list := stmtList(stack[i])
			if list == nil {
				continue
			}
			ended := false
			for _, s := range list {
				if s == ast.Stmt(ret) {
					break
				}
				if p.isPlainEndStmt(s, v) {
					ended = true
				}
			}
			if !ended {
				p.Reportf(ret.Pos(),
					"return without ending span %q; call %s.End() before this return or defer it",
					v.Name(), v.Name())
			}
			return true // only the innermost statement list counts
		}
		return true
	})
}

// stmtList returns the statement list a node directly carries, if any.
func stmtList(n ast.Node) []ast.Stmt {
	switch b := n.(type) {
	case *ast.BlockStmt:
		return b.List
	case *ast.CaseClause:
		return b.Body
	case *ast.CommClause:
		return b.Body
	}
	return nil
}

// isPlainEndStmt reports whether s is the statement `v.End()`.
func (p *Pass) isPlainEndStmt(s ast.Stmt, v *types.Var) bool {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := ast.Unparen(es.X).(*ast.CallExpr)
	return ok && p.isEndCallOn(call, v)
}

// isStartChildCall reports whether call invokes a method StartChild on
// a type named Span returning a single value of a type named Span that
// has an End method. StartRequest roots are excluded: they are ended
// by the tracer's FinishRequest, not by End.
func (p *Pass) isStartChildCall(call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "StartChild" {
		return false
	}
	s, ok := p.TypesInfo.Selections[sel]
	if !ok {
		return false
	}
	f, ok := s.Obj().(*types.Func)
	if !ok {
		return false
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || sig.Results().Len() != 1 {
		return false
	}
	if !namedTypeIs(sig.Recv().Type(), "Span") {
		return false
	}
	res := sig.Results().At(0).Type()
	return namedTypeIs(res, "Span") && hasNiladicMethod(res, "End")
}

// isSpanEndChain reports whether call is `<StartChild call>.End()`.
func (p *Pass) isSpanEndChain(call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "End" {
		return false
	}
	inner, ok := ast.Unparen(sel.X).(*ast.CallExpr)
	return ok && p.isStartChildCall(inner)
}

// spanEndDeferred reports whether body defers v.End(), either directly
// or inside a deferred function literal.
func (p *Pass) spanEndDeferred(body ast.Node, v *types.Var) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		d, ok := n.(*ast.DeferStmt)
		if !ok {
			return true
		}
		if p.isEndCallOn(d.Call, v) {
			found = true
			return false
		}
		if lit, ok := ast.Unparen(d.Call.Fun).(*ast.FuncLit); ok {
			ast.Inspect(lit.Body, func(m ast.Node) bool {
				if call, ok := m.(*ast.CallExpr); ok && p.isEndCallOn(call, v) {
					found = true
				}
				return !found
			})
		}
		return !found
	})
	return found
}

// spanEscapes reports whether v is used for anything other than method
// calls on it or reassignment — passed as an argument, returned,
// stored in a field, captured as a method value. Escaped spans are the
// recipient's responsibility (the analyzer checks that site instead).
func (p *Pass) spanEscapes(body ast.Node, v *types.Var) bool {
	escaped := false
	walkStack(body, func(stack []ast.Node, n ast.Node) bool {
		if escaped {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok || p.TypesInfo.Uses[id] != types.Object(v) {
			return true
		}
		if len(stack) == 0 {
			escaped = true
			return false
		}
		switch parent := stack[len(stack)-1].(type) {
		case *ast.SelectorExpr:
			// v.Method(...) in receiver position is fine — End,
			// SetError, Annotate all stay local. A bare method value
			// (v.End handed off uncalled) escapes.
			if parent.X == ast.Expr(id) && len(stack) >= 2 {
				if call, ok := stack[len(stack)-2].(*ast.CallExpr); ok && ast.Unparen(call.Fun) == ast.Expr(parent) {
					return true
				}
			}
		case *ast.AssignStmt:
			// Re-binding the same variable to a fresh span is a define
			// site, not an escape.
			for _, lhs := range parent.Lhs {
				if lhs == ast.Expr(id) {
					return true
				}
			}
		}
		escaped = true
		return false
	})
	return escaped
}

// isEndCallOn reports whether call is `v.End()`.
func (p *Pass) isEndCallOn(call *ast.CallExpr, v *types.Var) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "End" {
		return false
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	return ok && p.TypesInfo.Uses[id] == types.Object(v)
}

// hasNiladicMethod reports whether t has a parameterless method name.
func hasNiladicMethod(t types.Type, name string) bool {
	obj, _, _ := types.LookupFieldOrMethod(t, true, nil, name)
	f, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	sig := f.Type().(*types.Signature)
	return sig.Params().Len() == 0
}
