package analysis

import (
	"go/ast"
	"go/types"
)

// TelemetryDrop flags misuse of the telemetry Collector's scope timers.
// Collector.Timer(stage) hands back a Timer whose Stop records the
// interval; the contract (internal/telemetry) is that Stop runs via
// defer so every exit path — early returns, error paths, panics — is
// measured. A timer whose Stop is skipped or called on only the happy
// path silently under-reports a stage, and the resulting snapshot lies
// in exactly the situations (failures, aborts) where timing data is
// most wanted.
//
// Flagged shapes, matched structurally by name so fixtures and future
// collector types are covered without importing the telemetry package:
// a method named Timer on a type named Collector returning a type
// named Timer that has a Stop method.
//
//   - the Timer result dropped outright (bare call, or assigned to _);
//   - chained c.Timer(s).Stop() as a plain statement instead of defer;
//   - t := c.Timer(s) where the enclosing function never defers
//     t.Stop() (plain t.Stop() calls do not count: they miss early
//     exits).
//
// A timer that escapes — passed to another function, returned, stored
// in a struct — is not flagged; ownership moved with it.
var TelemetryDrop = &Analyzer{
	Name: "telemetrydrop",
	Doc:  "flag Collector stage timers whose Stop is not deferred",
	Run:  runTelemetryDrop,
}

func runTelemetryDrop(p *Pass) {
	for _, f := range p.Files {
		walkStack(f, func(stack []ast.Node, n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				call, ok := ast.Unparen(n.X).(*ast.CallExpr)
				if !ok {
					return true
				}
				if p.isCollectorTimerCall(call) {
					p.Reportf(call.Pos(),
						"telemetry timer is dropped; its Stop never runs, so the stage interval is lost")
					return true
				}
				if p.isTimerStopChain(call) {
					p.Reportf(call.Pos(),
						"timer Stop is not deferred; use `defer ...Timer(...).Stop()` so the interval is recorded on every exit path")
				}
			case *ast.AssignStmt:
				if len(n.Lhs) != len(n.Rhs) {
					return true
				}
				for i, rhs := range n.Rhs {
					call, ok := ast.Unparen(rhs).(*ast.CallExpr)
					if !ok || !p.isCollectorTimerCall(call) {
						continue
					}
					id, ok := n.Lhs[i].(*ast.Ident)
					if !ok {
						continue // stored into a field/element: escapes
					}
					if id.Name == "_" {
						p.Reportf(call.Pos(),
							"telemetry timer is discarded with _; its Stop never runs, so the stage interval is lost")
						continue
					}
					v := p.definedOrUsedVar(id)
					body := enclosingFuncBody(stack)
					if v == nil || body == nil {
						continue
					}
					if p.timerStopDeferred(body, v) || p.timerEscapes(body, v) {
						continue
					}
					p.Reportf(id.Pos(),
						"timer %q is never stopped via defer; plain Stop calls miss early exits — defer %s.Stop() or annotate //lint:telemetrydrop-ok",
						v.Name(), v.Name())
				}
			}
			return true
		})
	}
}

// isCollectorTimerCall reports whether call invokes a method Timer on a
// type named Collector returning a single value of a type named Timer
// that has a Stop method.
func (p *Pass) isCollectorTimerCall(call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Timer" {
		return false
	}
	s, ok := p.TypesInfo.Selections[sel]
	if !ok {
		return false
	}
	f, ok := s.Obj().(*types.Func)
	if !ok {
		return false
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || sig.Results().Len() != 1 {
		return false
	}
	if !namedTypeIs(sig.Recv().Type(), "Collector") {
		return false
	}
	res := sig.Results().At(0).Type()
	return namedTypeIs(res, "Timer") && hasStopMethod(res)
}

// isTimerStopChain reports whether call is `<timer call>.Stop()`.
func (p *Pass) isTimerStopChain(call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Stop" {
		return false
	}
	inner, ok := ast.Unparen(sel.X).(*ast.CallExpr)
	return ok && p.isCollectorTimerCall(inner)
}

// timerStopDeferred reports whether body defers v.Stop(), either
// directly or inside a deferred function literal.
func (p *Pass) timerStopDeferred(body ast.Node, v *types.Var) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		d, ok := n.(*ast.DeferStmt)
		if !ok {
			return true
		}
		if p.isStopCallOn(d.Call, v) {
			found = true
			return false
		}
		if lit, ok := ast.Unparen(d.Call.Fun).(*ast.FuncLit); ok {
			ast.Inspect(lit.Body, func(m ast.Node) bool {
				if call, ok := m.(*ast.CallExpr); ok && p.isStopCallOn(call, v) {
					found = true
				}
				return !found
			})
		}
		return !found
	})
	return found
}

// timerEscapes reports whether v is used for anything other than
// defining assignments or v.Stop() calls — passed as an argument,
// returned, reassigned elsewhere, etc. Escaped timers are someone
// else's responsibility.
func (p *Pass) timerEscapes(body ast.Node, v *types.Var) bool {
	escaped := false
	walkStack(body, func(stack []ast.Node, n ast.Node) bool {
		if escaped {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok || p.TypesInfo.Uses[id] != types.Object(v) {
			return true
		}
		if len(stack) == 0 {
			escaped = true
			return false
		}
		switch parent := stack[len(stack)-1].(type) {
		case *ast.SelectorExpr:
			// v.Stop() receiver position is fine; any other selector
			// (v.c, v passed via method value) escapes.
			if parent.X == ast.Expr(id) && parent.Sel.Name == "Stop" {
				return true
			}
		case *ast.AssignStmt:
			// Re-binding the same variable to a fresh timer is a define
			// site, not an escape.
			for _, lhs := range parent.Lhs {
				if lhs == ast.Expr(id) {
					return true
				}
			}
		}
		escaped = true
		return false
	})
	return escaped
}

// isStopCallOn reports whether call is `v.Stop()`.
func (p *Pass) isStopCallOn(call *ast.CallExpr, v *types.Var) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Stop" {
		return false
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	return ok && p.TypesInfo.Uses[id] == types.Object(v)
}

// definedOrUsedVar resolves id whether it is a := definition or an
// assignment to an existing variable.
func (p *Pass) definedOrUsedVar(id *ast.Ident) *types.Var {
	if v, ok := p.TypesInfo.Defs[id].(*types.Var); ok {
		return v
	}
	if v, ok := p.TypesInfo.Uses[id].(*types.Var); ok {
		return v
	}
	return nil
}

// enclosingFuncBody returns the body of the innermost enclosing
// function declaration or literal on the ancestor stack.
func enclosingFuncBody(stack []ast.Node) ast.Node {
	for i := len(stack) - 1; i >= 0; i-- {
		switch fn := stack[i].(type) {
		case *ast.FuncDecl:
			return fn.Body
		case *ast.FuncLit:
			return fn.Body
		}
	}
	return nil
}

// namedTypeIs reports whether t (possibly behind a pointer) is a
// defined type with the given name.
func namedTypeIs(t types.Type, name string) bool {
	if pt, ok := t.(*types.Pointer); ok {
		t = pt.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == name
}

// hasStopMethod reports whether t has a niladic method named Stop.
func hasStopMethod(t types.Type) bool {
	obj, _, _ := types.LookupFieldOrMethod(t, true, nil, "Stop")
	f, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	sig := f.Type().(*types.Signature)
	return sig.Params().Len() == 0
}
