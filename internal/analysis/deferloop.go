package analysis

import (
	"go/ast"

	"repro/internal/analysis/flow"
)

// DeferLoop flags defer statements that execute inside a loop of a
// hot-path function. Each iteration pushes another record onto the
// defer stack that only unwinds at function return: on a per-block
// kernel that is both an allocation and an O(iterations) memory hold.
// "Inside a loop" is decided on the control-flow graph — a defer in a
// block that lies on a CFG cycle — so loops spelled with goto/labels
// are caught and defers merely lexically near a loop are not. The hot
// set is the same interprocedural one hotalloc2 uses: marked functions
// plus everything reachable from one through the call graph.
//
// A defer inside a function literal is attributed to the literal (it
// runs when the closure returns), so a closure called once per
// iteration is clean unless its own body loops.
var DeferLoop = &ModuleAnalyzer{
	Name: "deferloop",
	Doc:  "flag defer inside loops (CFG cycles) of hot-path functions",
	Run:  runDeferLoop,
}

func runDeferLoop(p *ModulePass) {
	hot, from := p.Program.Hot()
	for _, fn := range p.Program.Funcs() {
		if !hot[fn] {
			continue
		}
		where := fn.Obj.Name()
		if chain := flow.Chain(from, fn); chain != "" {
			where = fn.Obj.Name() + " (hot via " + chain + ")"
		}
		bodies := []*ast.BlockStmt{fn.Decl.Body}
		for _, fl := range flow.FuncLitsIn(fn.Decl) {
			bodies = append(bodies, fl.Body)
		}
		for _, body := range bodies {
			reportDefersInCycles(p, body, where)
		}
	}
}

func reportDefersInCycles(p *ModulePass, body *ast.BlockStmt, where string) {
	g := flow.New(body)
	cyc := g.InCycle()
	if len(cyc) == 0 {
		return
	}
	reach := g.Reachable()
	for _, b := range g.Blocks {
		if !cyc[b] || !reach[b] {
			continue
		}
		for _, s := range b.Stmts {
			// Block statement lists are flat, so a direct type check is
			// exact: defers in nested literals live in other graphs.
			if ds, ok := s.(*ast.DeferStmt); ok {
				p.Reportf(ds.Pos(),
					"defer inside a loop in hot function %s: the defer stack grows every iteration and unwinds only at return; call directly or hoist the loop body into a function, or annotate //lint:deferloop-ok",
					where)
			}
		}
	}
}
