package flow

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// FuzzCFGBuild feeds arbitrary Go source through the CFG builder and
// asserts its two structural invariants: New never panics on anything
// the parser accepts, and the resulting graph is well-formed (every
// reachable block is registered in Blocks and every edge appears in
// both Succs and Preds). The corpus is seeded with every Go file in
// the module, so every function the repo actually contains — including
// the hot kernels with their label/goto/defer shapes — is a seed.
func FuzzCFGBuild(f *testing.F) {
	root := moduleRoot(f)
	if root != "" {
		err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			name := d.Name()
			if d.IsDir() {
				if name == ".git" || strings.HasPrefix(name, "_") {
					return filepath.SkipDir
				}
				return nil
			}
			if !strings.HasSuffix(name, ".go") {
				return nil
			}
			src, err := os.ReadFile(path)
			if err != nil || len(src) > 1<<20 {
				return nil
			}
			f.Add(string(src))
			return nil
		})
		if err != nil {
			f.Fatal(err)
		}
	}
	// Minimal synthetic seeds exercising edge shapes that may not
	// survive corpus minimization.
	f.Add("package p\nfunc f() { goto x; x: for { break } }")
	f.Add("package p\nfunc f(c chan int) { select { case <-c: default: } }")

	f.Fuzz(func(t *testing.T, src string) {
		fset := token.NewFileSet()
		file, err := parser.ParseFile(fset, "fuzz.go", src,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return // not valid Go: out of contract
		}
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch n := n.(type) {
			case *ast.FuncDecl:
				body = n.Body
			case *ast.FuncLit:
				body = n.Body
			}
			if body != nil {
				g := New(body)
				checkInvariants(t, g)
				// The cycle and reachability queries must also hold up
				// on arbitrary graphs.
				_ = g.InCycle()
				_ = g.Reachable()
			}
			return true
		})
	})
}

// moduleRoot walks up from the working directory to the enclosing
// go.mod, or returns "" (fuzz corpus then runs on synthetic seeds
// only).
func moduleRoot(f *testing.F) string {
	dir, err := os.Getwd()
	if err != nil {
		return ""
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return ""
		}
		dir = parent
	}
}
