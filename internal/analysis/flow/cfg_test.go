package flow

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// parseFunc parses src (a complete file) and returns its first
// function declaration.
func parseFunc(t *testing.T, src string) *ast.FuncDecl {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
			return fd
		}
	}
	t.Fatal("no function in source")
	return nil
}

// checkInvariants asserts the structural contract the fuzzer relies
// on: mutual pred/succ consistency and every reachable block present
// in Blocks.
func checkInvariants(t testing.TB, g *Graph) {
	t.Helper()
	in := make(map[*Block]bool, len(g.Blocks))
	for _, b := range g.Blocks {
		in[b] = true
	}
	if !in[g.Entry] || !in[g.Exit] {
		t.Fatal("entry or exit missing from Blocks")
	}
	for _, b := range g.Blocks {
		for _, s := range b.Succs {
			if !in[s] {
				t.Fatalf("block %d has successor outside Blocks", b.Index)
			}
			found := false
			for _, p := range s.Preds {
				if p == b {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("edge %d->%d missing from Preds", b.Index, s.Index)
			}
		}
	}
	for b := range g.Reachable() {
		if !in[b] {
			t.Fatal("reachable block outside Blocks")
		}
	}
}

func TestCFGStraightLine(t *testing.T) {
	g := New(parseFunc(t, `package p
func f() { x := 1; _ = x }`).Body)
	checkInvariants(t, g)
	if len(g.Entry.Stmts) != 2 {
		t.Fatalf("entry stmts = %d, want 2", len(g.Entry.Stmts))
	}
	if len(g.Entry.Succs) != 1 || g.Entry.Succs[0] != g.Exit {
		t.Fatal("straight-line body should flow entry -> exit")
	}
	if g.InCycle()[g.Entry] {
		t.Fatal("straight-line entry reported cyclic")
	}
}

func TestCFGIfElse(t *testing.T) {
	g := New(parseFunc(t, `package p
func f(c bool) int {
	if c {
		return 1
	} else {
		return 2
	}
}`).Body)
	checkInvariants(t, g)
	// The condition block must have two successors (then, else), and
	// both must reach exit via their returns.
	cond := g.Entry
	if len(cond.Succs) != 2 {
		t.Fatalf("cond succs = %d, want 2", len(cond.Succs))
	}
	for _, s := range cond.Succs {
		if len(s.Succs) != 1 || s.Succs[0] != g.Exit {
			t.Fatal("branch should return straight to exit")
		}
	}
}

func TestCFGForLoopCycle(t *testing.T) {
	fd := parseFunc(t, `package p
func f(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		s += i
	}
	return s
}`)
	g := New(fd.Body)
	checkInvariants(t, g)
	cyc := g.InCycle()
	var cycles int
	for _, b := range g.Blocks {
		if cyc[b] {
			cycles++
		}
	}
	if cycles < 2 {
		t.Fatalf("for loop should put head+body+post in a cycle, got %d cyclic blocks", cycles)
	}
	if cyc[g.Entry] || cyc[g.Exit] {
		t.Fatal("entry/exit must not be cyclic")
	}
}

func TestCFGRangeBreakContinue(t *testing.T) {
	g := New(parseFunc(t, `package p
func f(xs []int) int {
	s := 0
	for _, x := range xs {
		if x < 0 {
			continue
		}
		if x > 100 {
			break
		}
		s += x
	}
	return s
}`).Body)
	checkInvariants(t, g)
	if len(g.InCycle()) == 0 {
		t.Fatal("range loop should contain a cycle")
	}
}

func TestCFGLabeledGotoLoop(t *testing.T) {
	// A loop spelled with goto must still register as a cycle: that is
	// the reason deferloop uses CFG cycles instead of syntax.
	g := New(parseFunc(t, `package p
func f(n int) {
	i := 0
loop:
	if i < n {
		i++
		goto loop
	}
}`).Body)
	checkInvariants(t, g)
	if len(g.InCycle()) == 0 {
		t.Fatal("goto loop should contain a cycle")
	}
}

func TestCFGLabeledBreakOuter(t *testing.T) {
	g := New(parseFunc(t, `package p
func f(m [][]int) int {
outer:
	for _, row := range m {
		for _, v := range row {
			if v == 0 {
				break outer
			}
		}
	}
	return 0
}`).Body)
	checkInvariants(t, g)
}

func TestCFGSwitchFallthrough(t *testing.T) {
	g := New(parseFunc(t, `package p
func f(x int) int {
	r := 0
	switch x {
	case 1:
		r = 1
		fallthrough
	case 2:
		r += 2
	default:
		r = 9
	}
	return r
}`).Body)
	checkInvariants(t, g)
	if len(g.InCycle()) != 0 {
		t.Fatal("switch must not create cycles")
	}
}

func TestCFGSelect(t *testing.T) {
	g := New(parseFunc(t, `package p
func f(a, b chan int) int {
	select {
	case x := <-a:
		return x
	case <-b:
		return 0
	}
}`).Body)
	checkInvariants(t, g)
}

func TestCFGReturnMakesUnreachable(t *testing.T) {
	g := New(parseFunc(t, `package p
func f() int {
	return 1
	x := 2 //lint:ignore unreachable on purpose
	_ = x
	return x
}`).Body)
	checkInvariants(t, g)
	reach := g.Reachable()
	unreachable := 0
	for _, b := range g.Blocks {
		if !reach[b] && len(b.Stmts) > 0 {
			unreachable++
		}
	}
	if unreachable == 0 {
		t.Fatal("statements after return should sit in an unreachable block")
	}
}

func TestCFGPanicEdgesToExit(t *testing.T) {
	g := New(parseFunc(t, `package p
func f(c bool) {
	if c {
		panic("boom")
	}
}`).Body)
	checkInvariants(t, g)
	// The panic block must have the exit among its successors.
	found := false
	for _, b := range g.Blocks {
		for _, s := range b.Stmts {
			if es, ok := s.(*ast.ExprStmt); ok && isPanicCall(es.X) {
				for _, succ := range b.Succs {
					if succ == g.Exit {
						found = true
					}
				}
			}
		}
	}
	if !found {
		t.Fatal("panic block does not edge to exit")
	}
}

// Dangling branches (break outside loop, goto to a missing label) are
// semantically invalid but parseable; the builder must not panic.
func TestCFGDanglingBranches(t *testing.T) {
	for _, src := range []string{
		`package p
func f() { break }`,
		`package p
func f() { continue }`,
		`package p
func f() { goto nowhere }`,
		`package p
func f(x int) { switch x { case 1: fallthrough } }`,
		`package p
func f() { select {} }`,
	} {
		g := New(parseFunc(t, src).Body)
		checkInvariants(t, g)
	}
}

func TestBlockNodesGuardsOnly(t *testing.T) {
	fd := parseFunc(t, `package p
func f(xs []int) {
	for i := 0; i < len(xs); i++ {
		xs[i] = 0
	}
}`)
	forStmt := fd.Body.List[0].(*ast.ForStmt)
	nodes := BlockNodes(forStmt)
	if len(nodes) != 2 { // init, cond — not the body
		t.Fatalf("BlockNodes(for) = %d nodes, want 2", len(nodes))
	}
	for _, n := range nodes {
		ast.Inspect(n, func(x ast.Node) bool {
			if _, ok := x.(*ast.AssignStmt); ok {
				if as := x.(*ast.AssignStmt); len(as.Lhs) == 1 {
					if _, isIndex := as.Lhs[0].(*ast.IndexExpr); isIndex {
						t.Fatal("loop body leaked into BlockNodes")
					}
				}
			}
			return true
		})
	}
}
