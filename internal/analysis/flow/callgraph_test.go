package flow

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// buildTestProgram type-checks one source file as package path "p/p"
// and builds its Program.
func buildTestProgram(t *testing.T, src string) *Program {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	conf := &types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	pkg, err := conf.Check("p/p", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	return BuildProgram(fset, []*PackageInfo{{Path: "p/p", Files: []*ast.File{f}, Pkg: pkg, Info: info}})
}

func findFunc(t *testing.T, p *Program, name string) *Func {
	t.Helper()
	for _, f := range p.Funcs() {
		if f.Obj.Name() == name {
			return f
		}
	}
	t.Fatalf("function %s not found", name)
	return nil
}

func callees(f *Func) map[string]bool {
	out := make(map[string]bool)
	for _, c := range f.Callees {
		out[c.Obj.Name()] = true
	}
	return out
}

func TestCallGraphStaticChainAndHotPropagation(t *testing.T) {
	p := buildTestProgram(t, `package p

// kernel is the hot entry.
//
//pastri:hotpath
func kernel() { helper() }

func helper() { leaf() }

func leaf() {}

func cold() {}
`)
	k, h, l, c := findFunc(t, p, "kernel"), findFunc(t, p, "helper"), findFunc(t, p, "leaf"), findFunc(t, p, "cold")
	if !k.Marked {
		t.Fatal("kernel should be marked hot")
	}
	if !callees(k)["helper"] || !callees(h)["leaf"] {
		t.Fatal("static call edges missing")
	}
	hot, from := p.Hot()
	if !hot[k] || !hot[h] || !hot[l] {
		t.Fatalf("hot propagation incomplete: %v %v %v", hot[k], hot[h], hot[l])
	}
	if hot[c] {
		t.Fatal("cold function marked hot")
	}
	chain := Chain(from, l)
	if !strings.Contains(chain, "kernel") || !strings.Contains(chain, "helper") {
		t.Fatalf("chain = %q, want kernel → helper → leaf", chain)
	}
	if Chain(from, k) != "" {
		t.Fatal("root should have empty chain")
	}
}

func TestCallGraphInterfaceCHA(t *testing.T) {
	p := buildTestProgram(t, `package p

type enc interface{ encode() }

type a struct{}

func (a) encode() { aImpl() }

type b struct{}

func (*b) encode() { bImpl() }

func aImpl() {}
func bImpl() {}

func drive(e enc) { e.encode() }
`)
	d := findFunc(t, p, "drive")
	got := callees(d)
	if !got["encode"] {
		t.Fatalf("drive callees = %v, want both encode methods", got)
	}
	// Both implementations must be reachable from drive.
	reached, _ := p.ReachFrom([]*Func{d})
	names := make(map[string]bool)
	for f := range reached {
		names[f.Obj.Name()] = true
	}
	if !names["aImpl"] || !names["bImpl"] {
		t.Fatalf("CHA missed an implementation: reached %v", names)
	}
}

func TestCallGraphFuncValue(t *testing.T) {
	p := buildTestProgram(t, `package p

func target() {}

func other(int) {}

func caller() {
	f := target
	f()
}
`)
	c := findFunc(t, p, "caller")
	got := callees(c)
	if !got["target"] {
		t.Fatalf("dynamic call missed address-taken target: %v", got)
	}
	if got["other"] {
		t.Fatal("signature mismatch should exclude other")
	}
}

func TestCallGraphClosureAttribution(t *testing.T) {
	p := buildTestProgram(t, `package p

func leaf() {}

func spawner() {
	go func() {
		leaf()
	}()
}
`)
	s := findFunc(t, p, "spawner")
	if !callees(s)["leaf"] {
		t.Fatal("call inside closure not attributed to enclosing function")
	}
}

func TestCallGraphMethodStatic(t *testing.T) {
	p := buildTestProgram(t, `package p

type w struct{}

func (w *w) flush() {}

func use(x *w) { x.flush() }
`)
	u := findFunc(t, p, "use")
	if !callees(u)["flush"] {
		t.Fatal("concrete method call edge missing")
	}
}

func TestFuncString(t *testing.T) {
	p := buildTestProgram(t, `package p

type w struct{}

func (w *w) flush() {}

func free() {}
`)
	if got := findFunc(t, p, "flush").String(); got != "p.(*w).flush" {
		t.Fatalf("method String = %q", got)
	}
	if got := findFunc(t, p, "free").String(); got != "p.free" {
		t.Fatalf("func String = %q", got)
	}
}

func TestFuncLitsIn(t *testing.T) {
	fd := parseFunc(t, `package p
func f() {
	g := func() { _ = func() {} }
	g()
}`)
	if n := len(FuncLitsIn(fd)); n != 2 {
		t.Fatalf("FuncLitsIn = %d, want 2 (nested literal included)", n)
	}
}
