// Package flow is a stdlib-only control- and data-flow engine for the
// pastrilint analyzer suite: a control-flow-graph builder over go/ast,
// a generic worklist fixpoint solver, and a class-hierarchy call graph
// with transitive propagation of the //pastri:hotpath directive. The
// first-generation analyzers in internal/analysis are single-function
// AST walks; everything interprocedural (an allocation two calls below
// a hot kernel, nondeterminism feeding the parallel sequencer) needs
// the structures built here.
//
// Like internal/analysis itself, the package is built only on
// go/ast + go/types so the module keeps zero external dependencies.
package flow

import (
	"go/ast"
	"go/token"
)

// A Block is one straight-line run of statements in a Graph. Control
// enters at the first statement and leaves at the last; Succs are the
// possible successor blocks. Compound statements (if/for/switch/...)
// appear in the block where their guard is evaluated, while their
// bodies live in successor blocks.
type Block struct {
	Index int
	Stmts []ast.Stmt
	Succs []*Block
	Preds []*Block
}

// A Graph is the control-flow graph of one function body. Entry is the
// first block executed; Exit is a synthetic block reached by returns,
// panics and falling off the end. Blocks holds every block created,
// including unreachable ones (statements after a return keep a block so
// analyzers can still see them).
type Graph struct {
	Entry  *Block
	Exit   *Block
	Blocks []*Block
}

// New builds the control-flow graph of body. Function literals nested
// inside body are treated as opaque values: their own bodies get their
// own graphs via a separate New call. The builder never panics on
// syntactically valid but semantically broken input (break outside a
// loop, goto to a missing label, fallthrough in the last case): such
// edges are simply dropped, matching the fuzzer's contract.
func New(body *ast.BlockStmt) *Graph {
	b := &builder{g: &Graph{}, labels: make(map[string]*labelInfo)}
	b.g.Entry = b.newBlock()
	b.g.Exit = b.newBlock()
	b.cur = b.g.Entry
	b.stmtList(body.List)
	// Falling off the end of the body reaches the exit.
	b.edge(b.cur, b.g.Exit)
	b.resolveGotos()
	return b.g
}

// labelInfo tracks one label's targets: the labeled statement's block
// (for goto), plus break/continue targets when the label names a loop,
// switch or select.
type labelInfo struct {
	block     *Block // block the labeled statement starts in
	breakTo   *Block
	continueTo *Block
}

// loopScope is one enclosing breakable/continuable construct.
type loopScope struct {
	breakTo    *Block
	continueTo *Block // nil for switch/select scopes
	label      string
}

type builder struct {
	g      *Graph
	cur    *Block
	scopes []loopScope
	labels map[string]*labelInfo
	gotos  []pendingGoto
	// pendingLabel carries a just-seen label name into the immediately
	// following loop/switch statement so labeled break/continue resolve.
	pendingLabel string
}

type pendingGoto struct {
	from  *Block
	label string
}

func (b *builder) newBlock() *Block {
	blk := &Block{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *builder) edge(from, to *Block) {
	if from == nil || to == nil {
		return
	}
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// startBlock makes blk the current block.
func (b *builder) startBlock(blk *Block) { b.cur = blk }

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *builder) add(s ast.Stmt) {
	b.cur.Stmts = append(b.cur.Stmts, s)
}

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.IfStmt:
		b.add(s) // init + cond evaluate here
		condBlock := b.cur
		after := b.newBlock()
		then := b.newBlock()
		b.edge(condBlock, then)
		b.startBlock(then)
		b.stmtList(s.Body.List)
		b.edge(b.cur, after)
		if s.Else != nil {
			els := b.newBlock()
			b.edge(condBlock, els)
			b.startBlock(els)
			b.stmt(s.Else)
			b.edge(b.cur, after)
		} else {
			b.edge(condBlock, after)
		}
		b.startBlock(after)

	case *ast.ForStmt:
		label := b.takeLabel()
		head := b.newBlock()
		b.edge(b.cur, head)
		b.startBlock(head)
		b.add(s) // cond evaluates each iteration
		body := b.newBlock()
		after := b.newBlock()
		post := b.newBlock()
		b.edge(head, body)
		if s.Cond != nil {
			b.edge(head, after)
		}
		b.setLabelTargets(label, head, after, post)
		b.pushScope(loopScope{breakTo: after, continueTo: post, label: label})
		b.startBlock(body)
		b.stmtList(s.Body.List)
		b.popScope()
		b.edge(b.cur, post)
		b.startBlock(post)
		if s.Post != nil {
			b.add(s.Post)
		}
		b.edge(post, head)
		b.startBlock(after)

	case *ast.RangeStmt:
		label := b.takeLabel()
		head := b.newBlock()
		b.edge(b.cur, head)
		b.startBlock(head)
		b.add(s) // the range expression + per-iteration assignment
		body := b.newBlock()
		after := b.newBlock()
		b.edge(head, body)
		b.edge(head, after)
		b.setLabelTargets(label, head, after, head)
		b.pushScope(loopScope{breakTo: after, continueTo: head, label: label})
		b.startBlock(body)
		b.stmtList(s.Body.List)
		b.popScope()
		b.edge(b.cur, head)
		b.startBlock(after)

	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		b.switchStmt(s)

	case *ast.SelectStmt:
		label := b.takeLabel()
		b.add(s)
		head := b.cur
		after := b.newBlock()
		b.setLabelTargets(label, head, after, nil)
		b.pushScope(loopScope{breakTo: after, label: label})
		any := false
		for _, c := range s.Body.List {
			cc, ok := c.(*ast.CommClause)
			if !ok {
				continue
			}
			any = true
			cb := b.newBlock()
			b.edge(head, cb)
			b.startBlock(cb)
			if cc.Comm != nil {
				b.add(cc.Comm)
			}
			b.stmtList(cc.Body)
			b.edge(b.cur, after)
		}
		b.popScope()
		if !any {
			// select{} blocks forever: no edge to after, but keep the
			// block so following statements stay representable.
		}
		b.startBlock(after)

	case *ast.LabeledStmt:
		li := &labelInfo{}
		b.labels[s.Label.Name] = li
		// The labeled statement begins in a fresh block so gotos have a
		// stable target.
		target := b.newBlock()
		b.edge(b.cur, target)
		b.startBlock(target)
		li.block = target
		// Only the construct the label is directly attached to may
		// consume it for break/continue targets; a loop nested deeper
		// must not steal it.
		switch s.Stmt.(type) {
		case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			b.pendingLabel = s.Label.Name
			b.stmt(s.Stmt)
			b.pendingLabel = ""
		default:
			b.stmt(s.Stmt)
		}

	case *ast.BranchStmt:
		b.add(s)
		switch s.Tok {
		case token.BREAK:
			if t := b.branchTarget(s, true); t != nil {
				b.edge(b.cur, t)
			}
		case token.CONTINUE:
			if t := b.branchTarget(s, false); t != nil {
				b.edge(b.cur, t)
			}
		case token.GOTO:
			if s.Label != nil {
				b.gotos = append(b.gotos, pendingGoto{from: b.cur, label: s.Label.Name})
			}
		case token.FALLTHROUGH:
			// Handled structurally in switchStmt; nothing to do here.
		}
		if s.Tok != token.FALLTHROUGH {
			// Control does not continue past break/continue/goto.
			b.startBlock(b.newBlock())
		}

	case *ast.ReturnStmt:
		b.add(s)
		b.edge(b.cur, b.g.Exit)
		b.startBlock(b.newBlock())

	case *ast.ExprStmt:
		b.add(s)
		if isPanicCall(s.X) {
			b.edge(b.cur, b.g.Exit)
			b.startBlock(b.newBlock())
		}

	default:
		// Decl, assign, send, inc/dec, defer, go, empty: straight-line.
		b.add(s)
	}
}

// switchStmt lowers expression and type switches: the guard evaluates
// in the current block, each case clause gets its own block, and
// fallthrough chains a case's end into the next clause's block.
func (b *builder) switchStmt(s ast.Stmt) {
	label := b.takeLabel()
	b.add(s)
	head := b.cur
	after := b.newBlock()
	b.setLabelTargets(label, head, after, nil)

	var clauses []*ast.CaseClause
	var bodyList []ast.Stmt
	switch s := s.(type) {
	case *ast.SwitchStmt:
		bodyList = s.Body.List
	case *ast.TypeSwitchStmt:
		bodyList = s.Body.List
	}
	for _, c := range bodyList {
		if cc, ok := c.(*ast.CaseClause); ok {
			clauses = append(clauses, cc)
		}
	}
	blocks := make([]*Block, len(clauses))
	hasDefault := false
	for i, cc := range clauses {
		blocks[i] = b.newBlock()
		b.edge(head, blocks[i])
		if cc.List == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		b.edge(head, after)
	}
	b.pushScope(loopScope{breakTo: after, label: label})
	for i, cc := range clauses {
		b.startBlock(blocks[i])
		b.stmtList(cc.Body)
		if fallsThrough(cc.Body) && i+1 < len(clauses) {
			b.edge(b.cur, blocks[i+1])
		} else {
			b.edge(b.cur, after)
		}
	}
	b.popScope()
	b.startBlock(after)
}

// fallsThrough reports whether a case body ends in a fallthrough
// statement.
func fallsThrough(body []ast.Stmt) bool {
	if len(body) == 0 {
		return false
	}
	br, ok := body[len(body)-1].(*ast.BranchStmt)
	return ok && br.Tok == token.FALLTHROUGH
}

func (b *builder) pushScope(s loopScope) { b.scopes = append(b.scopes, s) }
func (b *builder) popScope()             { b.scopes = b.scopes[:len(b.scopes)-1] }

// takeLabel consumes the label pending from an enclosing LabeledStmt.
func (b *builder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

func (b *builder) setLabelTargets(label string, head, breakTo, continueTo *Block) {
	if label == "" {
		return
	}
	if li, ok := b.labels[label]; ok {
		li.breakTo = breakTo
		li.continueTo = continueTo
		if li.block == nil {
			li.block = head
		}
	}
}

// branchTarget resolves break (isBreak) or continue to its target
// block, or nil if the statement is semantically dangling.
func (b *builder) branchTarget(s *ast.BranchStmt, isBreak bool) *Block {
	if s.Label != nil {
		li, ok := b.labels[s.Label.Name]
		if !ok {
			return nil
		}
		if isBreak {
			return li.breakTo
		}
		return li.continueTo
	}
	for i := len(b.scopes) - 1; i >= 0; i-- {
		sc := b.scopes[i]
		if isBreak {
			return sc.breakTo
		}
		if sc.continueTo != nil {
			return sc.continueTo
		}
	}
	return nil
}

func (b *builder) resolveGotos() {
	for _, g := range b.gotos {
		if li, ok := b.labels[g.label]; ok && li.block != nil {
			b.edge(g.from, li.block)
		}
	}
}

// isPanicCall reports whether e is a direct call of the predeclared
// panic identifier. This is a syntactic check (a local function named
// panic would also match); the CFG only uses it to add an extra edge to
// the exit block, which is conservative either way.
func isPanicCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic"
}

// BlockNodes returns the AST nodes that actually execute within the
// block holding s: the whole statement for straight-line statements,
// but only the guard parts (init, condition, tag, range operand) for
// compound statements whose bodies live in successor blocks. Dataflow
// transfer functions iterate these instead of ast.Inspect-ing the raw
// statement, which would leak body effects into the guard's block.
func BlockNodes(s ast.Stmt) []ast.Node {
	var out []ast.Node
	add := func(n ast.Node) {
		if n != nil && !isNilNode(n) {
			out = append(out, n)
		}
	}
	switch s := s.(type) {
	case *ast.IfStmt:
		add(s.Init)
		add(s.Cond)
	case *ast.ForStmt:
		add(s.Init)
		add(s.Cond)
	case *ast.RangeStmt:
		add(s.Key)
		add(s.Value)
		add(s.X)
	case *ast.SwitchStmt:
		add(s.Init)
		add(s.Tag)
	case *ast.TypeSwitchStmt:
		add(s.Init)
		add(s.Assign)
	case *ast.SelectStmt:
		// Comm statements execute in their clause blocks.
	default:
		add(s)
	}
	return out
}

// isNilNode guards against typed-nil ast.Node interface values
// (e.g. a nil *ast.Stmt field passed through add).
func isNilNode(n ast.Node) bool {
	switch v := n.(type) {
	case ast.Stmt:
		return v == nil
	case ast.Expr:
		return v == nil
	}
	return n == nil
}

// Reachable returns the set of blocks reachable from the entry block.
func (g *Graph) Reachable() map[*Block]bool {
	seen := make(map[*Block]bool)
	var stack []*Block
	stack = append(stack, g.Entry)
	seen[g.Entry] = true
	for len(stack) > 0 {
		blk := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range blk.Succs {
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	return seen
}

// InCycle returns the set of blocks that lie on some cycle of the
// graph: a block is cyclic iff it can reach itself through one or more
// edges. Analyzers use this as the semantic notion of "inside a loop"
// (it also covers loops spelled with goto).
func (g *Graph) InCycle() map[*Block]bool {
	cyclic := make(map[*Block]bool)
	for _, b := range g.Blocks {
		// DFS from b's successors looking for b itself.
		seen := make(map[*Block]bool)
		stack := append([]*Block(nil), b.Succs...)
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if n == b {
				cyclic[b] = true
				break
			}
			if seen[n] {
				continue
			}
			seen[n] = true
			stack = append(stack, n.Succs...)
		}
	}
	return cyclic
}
