package flow

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// HotPathMarker is the doc-comment directive that marks a function as
// per-block hot. It must appear on a comment line of its own.
const HotPathMarker = "//pastri:hotpath"

// IsHotMarked reports whether the function declaration's doc comment
// carries the hot-path directive.
func IsHotMarked(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.TrimSpace(c.Text) == HotPathMarker {
			return true
		}
	}
	return false
}

// PackageInfo is the slice of a type-checked package the flow engine
// needs. internal/analysis adapts its own Package type to this.
type PackageInfo struct {
	Path  string
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// A Func is one declared function or method with a body, a node of the
// call graph. Code inside function literals is attributed to the
// enclosing declaration: a closure spawned by a hot function is hot.
type Func struct {
	Obj    *types.Func
	Decl   *ast.FuncDecl
	Pkg    *PackageInfo
	Marked bool // explicit //pastri:hotpath directive

	Callees []*Func
	Callers []*Func
}

// String renders a compact human name: pkg.Fn or pkg.(*T).Method.
func (f *Func) String() string {
	name := f.Obj.Name()
	if recv := f.Obj.Type().(*types.Signature).Recv(); recv != nil {
		t := recv.Type()
		ptr := ""
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
			ptr = "*"
		}
		tn := "?"
		if named, ok := t.(*types.Named); ok {
			tn = named.Obj().Name()
		}
		name = "(" + ptr + tn + ")." + name
	}
	return f.Obj.Pkg().Name() + "." + name
}

// A Program is the whole-module view: every declared function across
// the loaded packages, linked by a call graph that resolves static
// calls directly, interface method calls by class-hierarchy analysis
// (every module type implementing the interface), and calls through
// function values by signature match against address-taken functions.
type Program struct {
	Fset     *token.FileSet
	Packages []*PackageInfo

	funcs  map[*types.Func]*Func
	byDecl map[*ast.FuncDecl]*Func
	order  []*Func // deterministic (position) iteration order
}

// Funcs returns every function node in deterministic source order.
func (p *Program) Funcs() []*Func { return p.order }

// FuncOf returns the node for a declaration, or nil.
func (p *Program) FuncOf(fd *ast.FuncDecl) *Func { return p.byDecl[fd] }

// dynCall is a pending call through a function value, resolved against
// address-taken functions once all of them are known.
type dynCall struct {
	caller *Func
	sig    *types.Signature
}

// BuildProgram indexes the packages and builds the call graph.
func BuildProgram(fset *token.FileSet, pkgs []*PackageInfo) *Program {
	p := &Program{
		Fset:     fset,
		Packages: pkgs,
		funcs:    make(map[*types.Func]*Func),
		byDecl:   make(map[*ast.FuncDecl]*Func),
	}

	// Pass 1: one node per declared function/method with a body.
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				fn := &Func{Obj: obj, Decl: fd, Pkg: pkg, Marked: IsHotMarked(fd)}
				p.funcs[obj] = fn
				p.byDecl[fd] = fn
				p.order = append(p.order, fn)
			}
		}
	}
	sort.Slice(p.order, func(i, j int) bool {
		a, b := p.Fset.Position(p.order[i].Decl.Pos()), p.Fset.Position(p.order[j].Decl.Pos())
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Offset < b.Offset
	})

	named := p.moduleNamedTypes()

	// Pass 2: edges. Also collect address-taken functions (referenced
	// outside call position) and dynamic call sites for pass 3.
	addrTaken := make(map[*types.Func]bool)
	var dyns []dynCall
	edges := make(map[*Func]map[*Func]bool)
	addEdge := func(caller *Func, callee *types.Func) {
		if callee == nil {
			return
		}
		node := p.funcs[callee.Origin()]
		if node == nil {
			return // outside the module (stdlib)
		}
		set := edges[caller]
		if set == nil {
			set = make(map[*Func]bool)
			edges[caller] = set
		}
		set[node] = true
	}

	for _, caller := range p.order {
		info := caller.Pkg.Info
		callPos := make(map[*ast.Ident]bool) // idents that are the operator of a call
		ast.Inspect(caller.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch fun := ast.Unparen(call.Fun).(type) {
			case *ast.Ident:
				callPos[fun] = true
				switch obj := info.Uses[fun].(type) {
				case *types.Func:
					addEdge(caller, obj)
				case *types.Var:
					if sig, ok := obj.Type().Underlying().(*types.Signature); ok {
						dyns = append(dyns, dynCall{caller: caller, sig: sig})
					}
				}
			case *ast.SelectorExpr:
				callPos[fun.Sel] = true
				if sel, ok := info.Selections[fun]; ok {
					switch sel.Kind() {
					case types.MethodVal:
						if iface, ok := sel.Recv().Underlying().(*types.Interface); ok {
							// Interface dispatch: CHA over module types.
							for _, impl := range implementers(named, iface, fun.Sel.Name) {
								addEdge(caller, impl)
							}
						} else if m, ok := sel.Obj().(*types.Func); ok {
							addEdge(caller, m)
						}
					case types.FieldVal:
						// Calling a func-typed struct field: dynamic.
						if sig, ok := sel.Type().Underlying().(*types.Signature); ok {
							dyns = append(dyns, dynCall{caller: caller, sig: sig})
						}
					}
				} else if obj, ok := info.Uses[fun.Sel].(*types.Func); ok {
					// Qualified call of a package-level function.
					addEdge(caller, obj)
				}
			default:
				// f()(), funcs[i](), (<-ch)(): dynamic through a value.
				if tv, ok := info.Types[call.Fun]; ok {
					if sig, ok := tv.Type.Underlying().(*types.Signature); ok {
						dyns = append(dyns, dynCall{caller: caller, sig: sig})
					}
				}
			}
			return true
		})
		// Address-taken scan: any use of a function identifier that is
		// not the operator of a call makes the function a possible
		// target of dynamic calls.
		ast.Inspect(caller.Decl.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok || callPos[id] {
				return true
			}
			if obj, ok := info.Uses[id].(*types.Func); ok {
				addrTaken[obj.Origin()] = true
			}
			return true
		})
	}
	// Package-level var initializers can also take function addresses
	// (var handler = process).
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok {
					continue
				}
				ast.Inspect(gd, func(n ast.Node) bool {
					if id, ok := n.(*ast.Ident); ok {
						if obj, ok := pkg.Info.Uses[id].(*types.Func); ok {
							addrTaken[obj.Origin()] = true
						}
					}
					return true
				})
			}
		}
	}

	// Pass 3: resolve dynamic calls by signature match.
	var takenNodes []*Func
	for obj := range addrTaken {
		if node := p.funcs[obj]; node != nil {
			takenNodes = append(takenNodes, node)
		}
	}
	for _, d := range dyns {
		for _, cand := range takenNodes {
			if sameSignature(cand.Obj.Type().(*types.Signature), d.sig) {
				set := edges[d.caller]
				if set == nil {
					set = make(map[*Func]bool)
					edges[d.caller] = set
				}
				set[cand] = true
			}
		}
	}

	// Materialize sorted edge lists.
	for _, caller := range p.order {
		set := edges[caller]
		if len(set) == 0 {
			continue
		}
		for callee := range set {
			caller.Callees = append(caller.Callees, callee)
		}
		sort.Slice(caller.Callees, func(i, j int) bool {
			return posLess(p.Fset, caller.Callees[i].Decl.Pos(), caller.Callees[j].Decl.Pos())
		})
		for _, callee := range caller.Callees {
			callee.Callers = append(callee.Callers, caller)
		}
	}
	return p
}

func posLess(fset *token.FileSet, a, b token.Pos) bool {
	pa, pb := fset.Position(a), fset.Position(b)
	if pa.Filename != pb.Filename {
		return pa.Filename < pb.Filename
	}
	return pa.Offset < pb.Offset
}

// moduleNamedTypes collects every named (non-alias, non-interface)
// type declared in the loaded packages — the class hierarchy for CHA.
func (p *Program) moduleNamedTypes() []*types.Named {
	var out []*types.Named
	for _, pkg := range p.Packages {
		scope := pkg.Pkg.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			if _, isIface := named.Underlying().(*types.Interface); isIface {
				continue
			}
			out = append(out, named)
		}
	}
	return out
}

// implementers returns the concrete method `name` of every named type
// (or its pointer type) that implements iface.
func implementers(named []*types.Named, iface *types.Interface, name string) []*types.Func {
	var out []*types.Func
	for _, n := range named {
		var recv types.Type
		if types.Implements(n, iface) {
			recv = n
		} else if ptr := types.NewPointer(n); types.Implements(ptr, iface) {
			recv = ptr
		} else {
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(recv, true, n.Obj().Pkg(), name)
		if m, ok := obj.(*types.Func); ok {
			out = append(out, m)
		}
	}
	return out
}

// sameSignature reports whether a (possibly a method signature, whose
// receiver is ignored) matches the call-site signature b.
func sameSignature(a, b *types.Signature) bool {
	if a.Variadic() != b.Variadic() {
		return false
	}
	return types.Identical(a.Params(), b.Params()) &&
		types.Identical(a.Results(), b.Results())
}

// Hot returns every function on the hot path — explicitly marked or
// reachable from a marked function through the call graph — plus the
// spanning tree recording how each function was first reached, for
// diagnostic chains.
func (p *Program) Hot() (map[*Func]bool, map[*Func]*Func) {
	var roots []*Func
	for _, f := range p.order {
		if f.Marked {
			roots = append(roots, f)
		}
	}
	return p.ReachFrom(roots)
}

// ReachFrom is call-graph reachability from roots (the worklist
// fixpoint shared with the dataflow solvers).
func (p *Program) ReachFrom(roots []*Func) (map[*Func]bool, map[*Func]*Func) {
	return Reach(roots, func(f *Func) []*Func { return f.Callees })
}

// Chain renders the propagation path from a root to f using the
// spanning tree returned by Hot/ReachFrom, e.g.
// "core.encodeBlock → bitio.grow". Chains longer than five hops are
// elided in the middle. For a root itself it returns "".
func Chain(from map[*Func]*Func, f *Func) string {
	var hops []string
	for cur := f; ; {
		prev, ok := from[cur]
		if !ok {
			hops = append(hops, cur.String())
			break
		}
		hops = append(hops, cur.String())
		cur = prev
	}
	if len(hops) <= 1 {
		return ""
	}
	// hops is f..root; reverse into root..f.
	for i, j := 0, len(hops)-1; i < j; i, j = i+1, j-1 {
		hops[i], hops[j] = hops[j], hops[i]
	}
	if len(hops) > 6 {
		hops = append(hops[:3], append([]string{"…"}, hops[len(hops)-2:]...)...)
	}
	return strings.Join(hops, " → ")
}

// FuncLitsIn returns the function literals nested in fn's body in
// source order (literals inside other literals included). Their bodies
// get their own CFGs but share fn's call-graph node.
func FuncLitsIn(fn *ast.FuncDecl) []*ast.FuncLit {
	var out []*ast.FuncLit
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			out = append(out, fl)
		}
		return true
	})
	return out
}
