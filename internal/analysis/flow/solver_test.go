package flow

import "testing"

// intSetLattice: sets of ints, join = union — the shape most analyzer
// facts take (may-analyses).
type intSetLattice struct{}

func (intSetLattice) Bottom() map[int]bool { return nil }

func (intSetLattice) Join(a, b map[int]bool) map[int]bool {
	if len(a) == 0 {
		return b
	}
	if len(b) == 0 {
		return a
	}
	out := make(map[int]bool, len(a)+len(b))
	for k := range a {
		out[k] = true
	}
	for k := range b {
		out[k] = true
	}
	return out
}

func (intSetLattice) Equal(a, b map[int]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// TestForwardFixpointLoop checks that facts generated inside a loop
// body reach the loop head through the back edge — the property that
// distinguishes a fixpoint solver from a single pass.
func TestForwardFixpointLoop(t *testing.T) {
	g := New(parseFunc(t, `package p
func f(n int) {
	for i := 0; i < n; i++ {
		_ = i
	}
}`).Body)

	// Transfer: each block adds its own index to the fact set.
	facts := Forward[map[int]bool](g, intSetLattice{}, func(b *Block, in map[int]bool) map[int]bool {
		out := make(map[int]bool, len(in)+1)
		for k := range in {
			out[k] = true
		}
		out[b.Index] = true
		return out
	})

	// Find the loop head: a reachable cyclic block. Its IN fact must
	// contain indices of blocks inside the loop (flowed around the back
	// edge), not just its forward predecessors.
	cyc := g.InCycle()
	reach := g.Reachable()
	var head *Block
	for _, b := range g.Blocks {
		if cyc[b] && reach[b] {
			head = b
			break
		}
	}
	if head == nil {
		t.Fatal("no cyclic block found")
	}
	in := facts.In[head]
	backedge := false
	for idx := range in {
		if cyc[g.Blocks[idx]] && g.Blocks[idx] != head {
			backedge = true
		}
	}
	if !backedge {
		t.Fatalf("loop head IN fact %v lacks facts from the loop body (back edge not solved)", in)
	}
}

func TestBackwardReachesEntry(t *testing.T) {
	g := New(parseFunc(t, `package p
func f(c bool) int {
	if c {
		return 1
	}
	return 2
}`).Body)
	facts := Backward[map[int]bool](g, intSetLattice{}, func(b *Block, in map[int]bool) map[int]bool {
		out := map[int]bool{b.Index: true}
		for k := range in {
			out[k] = true
		}
		return out
	})
	// Entry's OUT must include the exit's index: facts flowed all the
	// way backward.
	if !facts.Out[g.Entry][g.Exit.Index] {
		t.Fatalf("backward solve did not propagate exit fact to entry: %v", facts.Out[g.Entry])
	}
}

func TestWorklistDedup(t *testing.T) {
	wl := newWorklist[int]()
	wl.push(1)
	wl.push(1)
	wl.push(2)
	if n, ok := wl.pop(); !ok || n != 1 {
		t.Fatal("pop != 1")
	}
	if n, ok := wl.pop(); !ok || n != 2 {
		t.Fatal("pop != 2")
	}
	if _, ok := wl.pop(); ok {
		t.Fatal("queue should be empty (dup suppressed)")
	}
}

func TestReachChain(t *testing.T) {
	// Tiny graph: 1 -> 2 -> 3, 4 isolated.
	succs := map[int][]int{1: {2}, 2: {3}}
	reached, from := Reach([]int{1}, func(n int) []int { return succs[n] })
	if !reached[1] || !reached[2] || !reached[3] || reached[4] {
		t.Fatalf("reached = %v", reached)
	}
	if from[3] != 2 || from[2] != 1 {
		t.Fatalf("from = %v", from)
	}
	if _, ok := from[1]; ok {
		t.Fatal("root must not have a from entry")
	}
}
