package flow

// A Lattice defines the fact domain of a dataflow analysis: the
// initial ("bottom") fact, the join of two facts at a control-flow
// merge, and fact equality (the solver's termination test). Join must
// be monotone for the worklist iteration to reach a fixpoint.
type Lattice[F any] interface {
	Bottom() F
	Join(a, b F) F
	Equal(a, b F) bool
}

// A Transfer function maps a block's input fact to its output fact by
// interpreting the block's statements.
type Transfer[F any] func(b *Block, in F) F

// Facts holds the solved per-block input and output facts.
type Facts[F any] struct {
	In  map[*Block]F
	Out map[*Block]F
}

// Forward runs a forward worklist dataflow analysis over g: entry
// starts at lat.Bottom() (callers fold any boundary fact into the
// entry block's transfer), each block's input is the join of its
// predecessors' outputs, and iteration continues until no output
// changes. The result maps every reachable block; unreachable blocks
// keep bottom facts.
func Forward[F any](g *Graph, lat Lattice[F], tf Transfer[F]) *Facts[F] {
	res := &Facts[F]{In: make(map[*Block]F), Out: make(map[*Block]F)}
	for _, b := range g.Blocks {
		res.In[b] = lat.Bottom()
		res.Out[b] = lat.Bottom()
	}
	wl := newWorklist[*Block]()
	wl.push(g.Entry)
	for {
		b, ok := wl.pop()
		if !ok {
			return res
		}
		in := lat.Bottom()
		if len(b.Preds) > 0 {
			in = res.Out[b.Preds[0]]
			for _, p := range b.Preds[1:] {
				in = lat.Join(in, res.Out[p])
			}
		}
		res.In[b] = in
		out := tf(b, in)
		if !lat.Equal(out, res.Out[b]) {
			res.Out[b] = out
			for _, s := range b.Succs {
				wl.push(s)
			}
		}
	}
}

// Backward is Forward with the edge directions reversed: a block's
// input fact is the join of its successors' outputs and facts flow
// from the exit toward the entry. Used for liveness-style analyses.
func Backward[F any](g *Graph, lat Lattice[F], tf Transfer[F]) *Facts[F] {
	res := &Facts[F]{In: make(map[*Block]F), Out: make(map[*Block]F)}
	for _, b := range g.Blocks {
		res.In[b] = lat.Bottom()
		res.Out[b] = lat.Bottom()
	}
	wl := newWorklist[*Block]()
	wl.push(g.Exit)
	for {
		b, ok := wl.pop()
		if !ok {
			return res
		}
		in := lat.Bottom()
		if len(b.Succs) > 0 {
			in = res.Out[b.Succs[0]]
			for _, s := range b.Succs[1:] {
				in = lat.Join(in, res.Out[s])
			}
		}
		res.In[b] = in
		out := tf(b, in)
		if !lat.Equal(out, res.Out[b]) {
			res.Out[b] = out
			for _, p := range b.Preds {
				wl.push(p)
			}
		}
	}
}

// worklist is a FIFO queue with membership dedup: pushing a node
// already queued is a no-op, so each node is processed once per
// invalidation instead of once per edge. The same structure drives
// both the CFG solvers above and the call-graph fixpoints in
// callgraph.go.
type worklist[N comparable] struct {
	queue  []N
	queued map[N]bool
}

func newWorklist[N comparable]() *worklist[N] {
	return &worklist[N]{queued: make(map[N]bool)}
}

func (w *worklist[N]) push(n N) {
	if w.queued[n] {
		return
	}
	w.queued[n] = true
	w.queue = append(w.queue, n)
}

func (w *worklist[N]) pop() (N, bool) {
	if len(w.queue) == 0 {
		var zero N
		return zero, false
	}
	n := w.queue[0]
	w.queue = w.queue[1:]
	w.queued[n] = false
	return n, true
}

// Reach computes the forward-reachable set from roots over an
// arbitrary successor function, using the same worklist discipline as
// the dataflow solvers. The returned map also records, for every
// reached node other than a root, the node it was first reached from
// (a shortest-hop spanning tree), which analyzers use to print the
// propagation chain in diagnostics.
func Reach[N comparable](roots []N, succs func(N) []N) (reached map[N]bool, from map[N]N) {
	reached = make(map[N]bool)
	from = make(map[N]N)
	wl := newWorklist[N]()
	for _, r := range roots {
		if !reached[r] {
			reached[r] = true
			wl.push(r)
		}
	}
	for {
		n, ok := wl.pop()
		if !ok {
			return reached, from
		}
		for _, s := range succs(n) {
			if !reached[s] {
				reached[s] = true
				from[s] = n
				wl.push(s)
			}
		}
	}
}
