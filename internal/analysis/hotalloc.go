package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// HotAlloc guards the zero-allocation contract of the block kernels.
// Functions marked with a `//pastri:hotpath` doc-comment directive run
// once per block (or per sub-block value) and are covered by
// AllocsPerRun regression tests; a stray make or an append into a fresh
// slice inside one of them re-introduces per-block heap traffic that
// the type system cannot see and benchmarks only catch after the fact.
//
// Inside a hotpath function (including function literals nested in it)
// the analyzer flags:
//
//   - any call to the builtin make;
//   - append whose destination is a freshly created slice (composite
//     literal, conversion like []T(nil), or any call result);
//   - append whose result does not feed back into its destination,
//     i.e. anything other than `x = append(x, ...)` (slicing and
//     parenthesizing the destination are fine: `*p = append((*p)[:0],
//     ...)` is the pooled-buffer idiom).
//
// In-place grow-and-reuse appends on caller- or struct-owned scratch
// are the intended idiom and pass untouched. Deliberate per-call
// allocations (one-time setup inside a hot entry point, pool misses)
// carry a //lint:hotalloc-ok marker stating why they are not per-block.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "flag make and append-into-new-slice inside //pastri:hotpath functions",
	Run:  runHotAlloc,
}

const hotPathMarker = "//pastri:hotpath"

func runHotAlloc(p *Pass) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !isHotPath(fn) {
				continue
			}
			p.checkHotBody(fn)
		}
	}
}

// isHotPath reports whether the function's doc comment group carries
// the hotpath directive on a line of its own.
func isHotPath(fn *ast.FuncDecl) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if strings.TrimSpace(c.Text) == hotPathMarker {
			return true
		}
	}
	return false
}

func (p *Pass) checkHotBody(fn *ast.FuncDecl) {
	name := fn.Name.Name
	walkStack(fn.Body, func(stack []ast.Node, n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch p.builtinName(call) {
		case "make":
			p.Reportf(call.Pos(),
				"make in hotpath function %s allocates on every call; hoist into reusable scratch or annotate //lint:hotalloc-ok",
				name)
		case "append":
			if len(call.Args) == 0 {
				return true
			}
			if isFreshSlice(ast.Unparen(call.Args[0])) {
				p.Reportf(call.Pos(),
					"append into a fresh slice in hotpath function %s allocates on every call; append in place into reusable scratch or annotate //lint:hotalloc-ok",
					name)
				return true
			}
			if !p.appendInPlace(stack, call) {
				p.Reportf(call.Pos(),
					"append result in hotpath function %s does not feed back into its destination; use x = append(x, ...) on reusable scratch or annotate //lint:hotalloc-ok",
					name)
			}
		}
		return true
	})
}

// builtinName returns the name of the builtin being called, or "" if
// call is not a direct builtin invocation.
func (p *Pass) builtinName(call *ast.CallExpr) string {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return ""
	}
	if _, ok := p.TypesInfo.Uses[id].(*types.Builtin); !ok {
		return ""
	}
	return id.Name
}

// isFreshSlice reports whether e creates a slice at the point of use: a
// composite literal or any call result (conversions like []T(nil) and
// make(...) parse as calls). Identifiers, selectors, index and slice
// expressions refer to existing backing arrays and are not fresh.
func isFreshSlice(e ast.Expr) bool {
	switch e.(type) {
	case *ast.CompositeLit, *ast.CallExpr:
		return true
	}
	return false
}

// appendInPlace reports whether call sits on the right-hand side of an
// assignment whose matching left-hand side is the same expression as
// the append destination's base (slicing and parens stripped), i.e. the
// canonical `x = append(x, ...)` / `*p = append((*p)[:0], ...)` shapes.
func (p *Pass) appendInPlace(stack []ast.Node, call *ast.CallExpr) bool {
	i := len(stack) - 1
	for i >= 0 {
		if _, ok := stack[i].(*ast.ParenExpr); ok {
			i--
			continue
		}
		break
	}
	if i < 0 {
		return false
	}
	as, ok := stack[i].(*ast.AssignStmt)
	if !ok || len(as.Lhs) != len(as.Rhs) {
		return false
	}
	for j, rhs := range as.Rhs {
		if ast.Unparen(rhs) != ast.Expr(call) {
			continue
		}
		lhs := exprString(p.Fset, ast.Unparen(as.Lhs[j]))
		base := exprString(p.Fset, sliceBase(call.Args[0]))
		return lhs == base
	}
	return false
}

// sliceBase strips parens and slicing from e: (*p)[:0] -> *p, x[:n] -> x.
func sliceBase(e ast.Expr) ast.Expr {
	for {
		switch t := e.(type) {
		case *ast.ParenExpr:
			e = t.X
		case *ast.SliceExpr:
			e = t.X
		default:
			return e
		}
	}
}
