package analysis

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// A Package is one loaded, type-checked package ready for analysis.
// Only non-test files are loaded: the analyzers guard library
// invariants, and test files get their own conventions (exact float
// comparisons against golden values, panics via t.Fatal, ...).
type Package struct {
	Path    string // import path, e.g. "repro/internal/bitio"
	ModPath string // module path, e.g. "repro"
	ModRoot string // module root directory; "" when positions are already relative
	Dir     string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// Loader type-checks packages of a single module from source. Imports
// inside the module are resolved recursively by the loader itself;
// imports outside it (the standard library — this module has no other
// dependencies) are delegated to go/importer's source-mode importer.
// Everything runs off go/parser + go/types: no go/packages, no
// toolchain subprocesses.
type Loader struct {
	Fset    *token.FileSet
	modPath string
	modRoot string
	std     types.Importer
	pkgs    map[string]*loadEntry
}

type loadEntry struct {
	pkg *Package
	err error
}

// NewLoader locates the enclosing module of dir (by walking up to
// go.mod) and returns a loader rooted there.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("analysis: no go.mod found above %s", abs)
		}
		root = parent
	}
	modPath, err := moduleName(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:    fset,
		modPath: modPath,
		modRoot: root,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    make(map[string]*loadEntry),
	}, nil
}

// ModPath returns the module path the loader is rooted at.
func (l *Loader) ModPath() string { return l.modPath }

// ModRoot returns the module root directory.
func (l *Loader) ModRoot() string { return l.modRoot }

func moduleName(gomod string) (string, error) {
	b, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(b), "\n") {
		line = strings.TrimSpace(line)
		if name, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(name), nil
		}
	}
	return "", fmt.Errorf("analysis: no module directive in %s", gomod)
}

// Load resolves the given patterns ("./...", "./dir/...", "./dir", ".")
// relative to the module root and returns the matched packages,
// type-checked and sorted by import path. Directories named testdata or
// vendor and hidden/underscore directories are never descended into.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	dirs := make(map[string]bool)
	for _, pat := range patterns {
		rec := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			rec = true
			pat = rest
			if pat == "" {
				pat = "."
			}
		} else if pat == "..." {
			rec, pat = true, "."
		}
		base := pat
		if !filepath.IsAbs(base) {
			base = filepath.Join(l.modRoot, pat)
		}
		fi, err := os.Stat(base)
		if err != nil || !fi.IsDir() {
			return nil, fmt.Errorf("analysis: pattern %q does not name a directory", pat)
		}
		if rec {
			if err := walkPackageDirs(base, dirs); err != nil {
				return nil, err
			}
		} else {
			dirs[base] = true
		}
	}
	var out []*Package
	for dir := range dirs {
		has, err := hasGoFiles(dir)
		if err != nil {
			return nil, err
		}
		if !has {
			continue
		}
		pkg, err := l.loadDir(dir)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

func walkPackageDirs(root string, dirs map[string]bool) error {
	return filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		dirs[path] = true
		return nil
	})
}

func hasGoFiles(dir string) (bool, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false, err
	}
	for _, e := range ents {
		if sourceFileWanted(e) {
			return true, nil
		}
	}
	return false, nil
}

func sourceFileWanted(e os.DirEntry) bool {
	name := e.Name()
	return !e.IsDir() && strings.HasSuffix(name, ".go") &&
		!strings.HasSuffix(name, "_test.go") &&
		!strings.HasPrefix(name, ".") && !strings.HasPrefix(name, "_")
}

// buildTags is the loader's build context: host OS/arch, gc compiler,
// no optional tags. In particular `race` is false, so of a
// race_on.go/race_off.go pair only the !race file is loaded — the same
// selection an ordinary `go build` makes.
var buildTags = map[string]bool{
	runtime.GOOS:   true,
	runtime.GOARCH: true,
	"gc":           true,
}

// fileIncluded reports whether src's //go:build constraint (if any,
// scanning the leading line-comment block) is satisfied under
// buildTags. Files without a constraint are always included.
func fileIncluded(src []byte) bool {
	for _, line := range strings.Split(string(src), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "//") {
			if expr, err := constraint.Parse(line); err == nil {
				return expr.Eval(func(tag string) bool { return buildTags[tag] })
			}
			continue
		}
		// First non-comment line: build constraints must precede it.
		break
	}
	return true
}

// importPathFor maps a module-local directory to its import path.
func (l *Loader) importPathFor(dir string) (string, error) {
	rel, err := filepath.Rel(l.modRoot, dir)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return l.modPath, nil
	}
	if strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("analysis: %s is outside module %s", dir, l.modPath)
	}
	return l.modPath + "/" + filepath.ToSlash(rel), nil
}

func (l *Loader) loadDir(dir string) (*Package, error) {
	path, err := l.importPathFor(dir)
	if err != nil {
		return nil, err
	}
	return l.loadPath(path, dir)
}

// loadPath type-checks the module package at dir (memoized by import
// path).
func (l *Loader) loadPath(path, dir string) (*Package, error) {
	if e, ok := l.pkgs[path]; ok {
		if e == nil {
			return nil, fmt.Errorf("analysis: import cycle through %s", path)
		}
		return e.pkg, e.err
	}
	l.pkgs[path] = nil // cycle marker
	pkg, err := l.typeCheckDir(path, dir)
	l.pkgs[path] = &loadEntry{pkg: pkg, err: err}
	return pkg, err
}

func (l *Loader) typeCheckDir(path, dir string) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range ents {
		if !sourceFileWanted(e) {
			continue
		}
		full := filepath.Join(dir, e.Name())
		src, err := os.ReadFile(full)
		if err != nil {
			return nil, err
		}
		if !fileIncluded(src) {
			continue
		}
		f, err := parser.ParseFile(l.Fset, full, src,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go source files in %s", dir)
	}
	info := newTypesInfo()
	conf := &types.Config{
		Importer: l,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	return &Package{
		Path:    path,
		ModPath: l.modPath,
		ModRoot: l.modRoot,
		Dir:     dir,
		Fset:    l.Fset,
		Files:   files,
		Types:   tpkg,
		Info:    info,
	}, nil
}

func newTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
}

// Import implements types.Importer: module-local packages are loaded
// from source by the loader itself, everything else (stdlib) is
// delegated to the source-mode importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == l.modPath || strings.HasPrefix(path, l.modPath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.modPath), "/")
		pkg, err := l.loadPath(path, filepath.Join(l.modRoot, filepath.FromSlash(rel)))
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// StdImporter returns a source-mode importer over fset for standard
// library packages. Fixture tests use it to type-check testdata
// packages that import only the standard library.
func StdImporter(fset *token.FileSet) types.Importer {
	return importer.ForCompiler(fset, "source", nil)
}
