package fixtures

import "sync"

func use(int) {}

// True positive: literal reads the iteration variable by reference.

func iterCapture(xs []int) {
	var wg sync.WaitGroup
	for i := range xs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = xs[i] // want "captures iteration variable \"i\""
		}()
	}
	wg.Wait()
}

// True positive: shared accumulator written by the loop while the
// goroutines read it.

func mutatedCapture(xs []int) {
	var cur int
	var wg sync.WaitGroup
	for _, x := range xs {
		cur = x
		wg.Add(1)
		go func() {
			defer wg.Done()
			use(cur) // want "captures \"cur\", which the enclosing loop writes"
		}()
	}
	wg.Wait()
}

// Clean: iteration state passed as an argument.

func passedAsArg(xs []int) {
	var wg sync.WaitGroup
	for i := range xs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_ = xs[i]
		}(i)
	}
	wg.Wait()
}

// Clean: the worker-pool shape used by the block codec — workers pull
// indices from a closed channel; captured state is never written by
// the spawning loop.

func channelFanOut(xs, out []int) {
	next := make(chan int, len(xs))
	for i := range xs {
		next <- i
	}
	close(next)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				out[i] = xs[i]
			}
		}()
	}
	wg.Wait()
}

// Clean: goroutine outside any loop.

func noLoop(x int) {
	done := make(chan struct{})
	go func() {
		use(x)
		close(done)
	}()
	<-done
}
