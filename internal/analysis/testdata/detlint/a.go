package fixtures

import (
	"math/rand"
	"time"
)

// Positives: nondeterminism inside functions reachable from the
// determinism roots (Compress* functions, ParallelStreamWriter
// methods).

// CompressStream is a root by name.
func CompressStream(blocks map[int][]byte) []byte {
	var out []byte
	for id, b := range blocks { // want "range over a map in CompressStream: iteration order is nondeterministic"
		_ = id
		out = append(out, b...)
	}
	shuffleHelper(out)
	return out
}

// shuffleHelper is only dangerous because CompressStream reaches it.
func shuffleHelper(b []byte) {
	rand.Shuffle(len(b), func(i, j int) { // want "rand.Shuffle in shuffleHelper \\(reachable via fixtures.CompressStream → fixtures.shuffleHelper\\)"
		b[i], b[j] = b[j], b[i]
	})
}

// ParallelStreamWriter mirrors the real sequencer type: every method
// is a root.
type ParallelStreamWriter struct {
	done chan int
	aux  chan int
}

func (w *ParallelStreamWriter) Flush() time.Time {
	select { // want "select with 2 communication clauses in Flush"
	case <-w.done:
	case <-w.aux:
	}
	stampHelper()
	return time.Now() // want "time.Now in Flush feeds an output path"
}

// stampHelper is dangerous because the Flush root reaches it.
func stampHelper() time.Duration {
	return time.Since(time.Time{}) // want "time.Since in stampHelper \\(reachable via fixtures.\\(\\*ParallelStreamWriter\\).Flush → fixtures.stampHelper\\)"
}

// Suppressed: telemetry timing on an output path, with justification.
func CompressTimed(data []byte) []byte {
	start := time.Now() //lint:detlint-ok telemetry only; the timestamp never reaches the encoder
	_ = start
	return data
}

// Clean: a map range in a function no root reaches.
func coldSummary(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// Clean: single-case select with default (non-blocking poll) makes no
// cross-channel choice.
func (w *ParallelStreamWriter) poll() bool {
	select {
	case <-w.done:
		return true
	default:
		return false
	}
}

// Clean: ranging a slice on an output path is ordered.
func CompressOrdered(blocks [][]byte) int {
	n := 0
	for _, b := range blocks {
		n += len(b)
	}
	return n
}
