package fixtures

import "sync/atomic"

// collector mimics the lock-free telemetry collector: hits and drops
// are updated atomically from many goroutines.
type collector struct {
	hits  uint64
	drops uint64
	name  string // never atomic: plain access is fine
}

func (c *collector) record() {
	atomic.AddUint64(&c.hits, 1)
	atomic.AddUint64((&c.drops), 1) // parens around the operand are fine
}

func (c *collector) snapshot() (uint64, uint64) {
	return atomic.LoadUint64(&c.hits), atomic.LoadUint64(&c.drops)
}

// Positives: plain loads and stores of atomically-used fields.

func (c *collector) racyRead() uint64 {
	return c.hits // want "struct field hits is accessed with sync/atomic at"
}

func (c *collector) racyReset() {
	c.drops = 0 // want "struct field drops is accessed with sync/atomic at"
}

// Suppressed: initialization before the collector is shared.

func newCollector() *collector {
	c := &collector{}
	c.hits = 0 //lint:atomicmix-ok not yet visible to other goroutines
	return c
}

// Clean: fields never touched by sync/atomic may be accessed freely.

func (c *collector) label() string {
	return c.name
}

// Clean: a different struct whose counter is only ever plain.

type plainBox struct {
	n int
}

func (b *plainBox) bump() {
	b.n++
}
