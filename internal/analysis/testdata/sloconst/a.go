package fixtures

// A miniature observability registry mirroring the shapes in
// internal/telemetry: named string types for series keys, SLO
// objectives, metric families and burn states.

type Key string

type Objective string

type MetricName string

type State string

const (
	KeyReadsTotal Key        = "reads_total"
	KeyBadCase    Key        = "ReadsTotal"  // want "Key constant KeyBadCase value \\\"ReadsTotal\\\" is not lowercase_snake"
	KeyBadDash    Key        = "reads-total" // want "Key constant KeyBadDash value \\\"reads-total\\\" is not lowercase_snake"
	ReadLatency   Objective  = "read_latency"
	BadObjective  Objective  = "Read Latency" // want "Objective constant BadObjective value \\\"Read Latency\\\" is not lowercase_snake"
	MetricState   MetricName = "pastrid_slo_state"
	StateOK       State      = "ok"
	StateFastBurn State      = "fast_burn"
)

// ForTenant is the registry's composite-key builder: conversions of
// runtime strings are the sanctioned path.
func ForTenant(tenant string, k Key) Key {
	return Key("tenant." + tenant + "." + string(k))
}

func get(k Key) float64          { return 0 }
func eval(o Objective) State     { return StateOK }
func family(m MetricName) string { return string(m) }
func record(ks ...Key) int       { return len(ks) }

// Clean call sites: named constants, runtime values, builders.

func goodCalls(tenant string, dynamic Key) {
	get(KeyReadsTotal)
	get(ForTenant(tenant, KeyReadsTotal))
	get(dynamic)
	eval(ReadLatency)
	family(MetricState)
	record(KeyReadsTotal, dynamic)
}

// True positives: inline literals, conversions, off-registry consts.

const looseName = "reads_total" // untyped string, not a registry constant

func badCalls() {
	get("reads_total")            // want "Key argument is an inline string"
	eval("read_latency")          // want "Objective argument is an inline string"
	family("pastrid_slo_state")   // want "MetricName argument is an inline string"
	record(KeyReadsTotal, "x_y")  // want "Key argument is an inline string"
	get(Key("reads_total"))       // want "conversion of constant string to fixtures.Key mints an unregistered name"
	get(looseName)                // want "Key argument is a string constant declared outside the registry"
	_ = Objective("cache_warmth") // want "conversion of constant string to fixtures.Objective mints an unregistered name"
}

// Comparisons must join on the named constants too.

func badCompare(s State, k Key) bool {
	if s == "fast_burn" { // want "State argument is an inline string"
		return true
	}
	if "ok" != s { // want "State argument is an inline string"
		return true
	}
	return k == "" // clean: the empty string is the unset sentinel, not a name
}

func goodCompare(s State) bool { return s == StateFastBurn }

// Clean: suppressed deliberate exception.

func suppressed() float64 {
	return get("legacy.dotted.name") //lint:sloconst-ok mirrors a pre-registry wire field verbatim
}
