package fixtures

import (
	"log/slog"
	"time"
)

// True positives: non-snake keys and run-time keys.

func badKeys(name string, d time.Duration) []slog.Attr {
	return []slog.Attr{
		slog.String("BytesIn", "x"),    // want "slog.String key \\\"BytesIn\\\" is not lowercase_snake"
		slog.Int("bytes-out", 1),       // want "slog.Int key \\\"bytes-out\\\" is not lowercase_snake"
		slog.Float64("ebSlack", 0.5),   // want "slog.Float64 key \\\"ebSlack\\\" is not lowercase_snake"
		slog.Bool("1st", true),         // want "slog.Bool key \\\"1st\\\" is not lowercase_snake"
		slog.Any("with space", nil),    // want "slog.Any key \\\"with space\\\" is not lowercase_snake"
		slog.Duration(name, d),         // want "slog.Duration key is not a compile-time constant"
		slog.String(keyFor("eb"), "x"), // want "slog.String key is not a compile-time constant"
	}
}

func keyFor(s string) string { return s + "_key" }

// Clean: literal and constant lowercase_snake keys.

const ratioKey = "compression_ratio"

func goodKeys() []slog.Attr {
	return []slog.Attr{
		slog.String("class", "4x16"),
		slog.Int("bytes_in", 800),
		slog.Uint64("block", 7),
		slog.Float64(ratioKey, 8.0),
		slog.Group("stage_timers", slog.Int("encode_ns", 1)),
	}
}

// Clean: same method names on non-slog receivers are out of scope.

type fake struct{}

func (fake) String(key, v string) string { return key + v }

func otherString() string {
	var f fake
	return f.String("NotSlog", "x")
}

// Clean: suppressed deliberate exception (external system's key).

func suppressed() slog.Attr {
	return slog.String("Content-Type", "text/plain") //lint:slogkey-ok mirrors the HTTP header name verbatim
}
