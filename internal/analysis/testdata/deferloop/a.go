package fixtures

import "sync"

var mu sync.Mutex

// Positives: defers that pile up inside loops of hot functions.

//pastri:hotpath
func drainBlocks(blocks [][]byte) int {
	n := 0
	for _, b := range blocks {
		mu.Lock()
		defer mu.Unlock() // want "defer inside a loop in hot function drainBlocks"
		n += len(b)
	}
	return n
}

// A loop spelled with goto is still a loop on the CFG.
//
//pastri:hotpath
func gotoLoop(n int) {
	i := 0
again:
	if i < n {
		defer mu.Unlock() // want "defer inside a loop in hot function gotoLoop"
		i++
		goto again
	}
}

// Interprocedural: the helper inherits hotness from the marked root.
//
//pastri:hotpath
func hotRoot(blocks [][]byte) {
	flushAll(blocks)
}

func flushAll(blocks [][]byte) {
	for range blocks {
		defer mu.Unlock() // want "defer inside a loop in hot function flushAll \\(hot via fixtures.hotRoot → fixtures.flushAll\\)"
	}
}

// Suppressed: a bounded two-iteration loop where the pile-up is
// intentional.
//
//pastri:hotpath
func annotated() {
	for i := 0; i < 2; i++ {
		defer mu.Unlock() //lint:deferloop-ok bounded to two iterations by construction
	}
}

// Clean: defer before or after the loop, not inside it.

//pastri:hotpath
func deferOutside(blocks [][]byte) {
	mu.Lock()
	defer mu.Unlock()
	for range blocks {
	}
}

// Clean: the defer lives in a function literal called per iteration —
// it unwinds when the literal returns, not at the end of the loop.

//pastri:hotpath
func deferInClosure(blocks [][]byte) {
	for range blocks {
		func() {
			mu.Lock()
			defer mu.Unlock()
		}()
	}
}

// Clean: cold functions may defer in loops.

func coldDrain(blocks [][]byte) {
	for range blocks {
		defer mu.Unlock()
	}
}
