package fixtures

import "time"

// Local stand-ins with the shape the analyzer matches structurally: a
// Collector with a Timer method returning a Timer that has Stop.

type Stage int

type Collector struct{ total time.Duration }

type Timer struct {
	c     *Collector
	start time.Time
}

func (c *Collector) Timer(s Stage) Timer {
	if c == nil {
		return Timer{}
	}
	return Timer{c: c, start: time.Now()}
}

func (t Timer) Stop() {
	if t.c != nil {
		t.c.total += time.Since(t.start)
	}
}

// True positives.

func dropped(c *Collector) {
	c.Timer(0) // want "telemetry timer is dropped"
}

func discarded(c *Collector) {
	_ = c.Timer(0) // want "telemetry timer is discarded with _"
}

func plainChain(c *Collector) {
	c.Timer(0).Stop() // want "timer Stop is not deferred"
}

func plainStopOnly(c *Collector) {
	t := c.Timer(0) // want "timer \"t\" is never stopped via defer"
	work()
	t.Stop()
}

func conditionalStop(c *Collector, ok bool) {
	t := c.Timer(0) // want "timer \"t\" is never stopped via defer"
	work()
	if ok {
		t.Stop()
	}
}

// Clean: deferred Stop, directly or chained.

func deferredChain(c *Collector) {
	defer c.Timer(0).Stop()
	work()
}

func deferredVar(c *Collector) {
	t := c.Timer(0)
	defer t.Stop()
	work()
}

func deferredInLiteral(c *Collector) {
	t := c.Timer(0)
	defer func() {
		t.Stop()
	}()
	work()
}

// Clean: the timer escapes — stopping it is the callee's job.

func escapesAsArg(c *Collector) {
	t := c.Timer(0)
	stopLater(t)
}

func escapesAsReturn(c *Collector) Timer {
	return c.Timer(0)
}

// Clean: rebinding the variable to a fresh timer, with a deferred
// closure stopping whichever timer is current at exit (the restart
// pattern a loop uses to time successive intervals).

func rebound(c *Collector) {
	t := c.Timer(0)
	defer func() { t.Stop() }()
	t.Stop()
	t = c.Timer(1)
	work()
}

// Clean: suppressed finding.

func suppressed(c *Collector) {
	t := c.Timer(0) //lint:telemetrydrop-ok single-exit helper, Stop below is unconditional
	work()
	t.Stop()
}

// Clean: similarly named methods on unrelated types do not match.

type Clock struct{}

func (Clock) Timer(s Stage) int { return int(s) }

func unrelated(k Clock) {
	k.Timer(0)
}

func stopLater(t Timer) { t.Stop() }

func work() {}
