package fixtures

import "errors"

// Local stand-ins with the shape the analyzer matches structurally: a
// Span with a StartChild method returning a *Span that has End.

type Span struct {
	name  string
	ended bool
}

func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	return &Span{name: name}
}

func (s *Span) End() {
	if s != nil {
		s.ended = true
	}
}

func (s *Span) SetError(err error) {}

func (s *Span) Annotate(k, v string) {}

func work() error { return errors.New("nope") }

// True positives.

func dropped(sp *Span) {
	sp.StartChild("x") // want "span is dropped"
}

func discarded(sp *Span) {
	_ = sp.StartChild("x") // want "span is discarded with _"
}

func sameStatement(sp *Span) {
	sp.StartChild("x").End() // want "started and ended in the same statement"
}

func neverEnded(sp *Span) {
	c := sp.StartChild("x") // want "span \"c\" is never ended"
	c.Annotate("k", "v")
}

func earlyReturnSkipsEnd(sp *Span) error {
	c := sp.StartChild("x")
	if err := work(); err != nil {
		return err // want "return without ending span \"c\""
	}
	c.End()
	return nil
}

func switchReturnSkipsEnd(sp *Span) error {
	c := sp.StartChild("x")
	switch err := work(); err {
	case nil:
	default:
		return err // want "return without ending span \"c\""
	}
	c.End()
	return nil
}

// Clean patterns.

func deferred(sp *Span) error {
	c := sp.StartChild("x")
	defer c.End()
	return work()
}

func deferredClosure(sp *Span) (err error) {
	c := sp.StartChild("x")
	defer func() {
		if err != nil {
			c.SetError(err)
		}
		c.End()
	}()
	return work()
}

func straightLine(sp *Span) error {
	c := sp.StartChild("x")
	err := work()
	c.End()
	return err
}

func endedOnEveryPath(sp *Span) error {
	c := sp.StartChild("x")
	if err := work(); err != nil {
		c.SetError(err)
		c.End()
		return err
	}
	c.End()
	return nil
}

func escapesAsArgument(sp *Span, sink func(*Span)) {
	c := sp.StartChild("x")
	sink(c)
}

func escapesIntoField(sp *Span, out *struct{ S *Span }) {
	out.S = sp.StartChild("x")
}

func escapesByReturn(sp *Span) *Span {
	c := sp.StartChild("x")
	return c
}

func innerFuncReturnsAreNotExits(sp *Span, run func(func() error)) {
	c := sp.StartChild("x")
	run(func() error {
		return work() // a different function's return, not this span's exit
	})
	c.End()
}

func loopRecreate(sp *Span) {
	c := sp.StartChild("gap")
	for i := 0; i < 3; i++ {
		c.End()
		c = sp.StartChild("gap") //lint:spanend-ok re-created per iteration; ended at the top of the next pass or after the loop
	}
	c.End()
}
