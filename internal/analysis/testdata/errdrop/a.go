package fixtures

import (
	"io"
	"os"
)

// True positives: watched errors silently dropped.

func drop(f *os.File) {
	f.Close() // want "error result of os.Close is dropped"
}

func deferDrop(f *os.File) {
	defer f.Close() // want "error result of os.Close is dropped by defer"
}

func copyDrop(w io.Writer, r io.Reader) {
	io.Copy(w, r) // want "error result of io.Copy is dropped"
}

func blankDiscard(f *os.File, p []byte) {
	_, _ = f.Write(p) // want "error result of os.Write is discarded with _"
}

// Clean: error handled or returned.

func handled(f *os.File) error {
	if err := f.Close(); err != nil {
		return err
	}
	return nil
}

func returned(w io.Writer, p []byte) (int, error) {
	return w.Write(p)
}

// Clean: unwatched callee (local function returning error).

func local() error { return nil }

func unwatched() {
	local()
}

// Clean: suppressed best-effort cleanup.

func annotated(f *os.File) {
	defer f.Close() //lint:errdrop-ok read-only file, close error carries no data loss
}
