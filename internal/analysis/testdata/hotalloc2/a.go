package fixtures

// Positives: allocation shapes inside functions that are hot either by
// direct //pastri:hotpath marking or by call-graph reachability.

// encodeHot is a fake block kernel.
//
//pastri:hotpath
func encodeHot(n int) []float64 {
	buf := make([]float64, n) // want "make in hot function encodeHot allocates on every call"
	return buf
}

//pastri:hotpath
func appendFreshLiteral(v byte) []byte {
	return append([]byte{}, v) // want "append into a fresh slice in hot function appendFreshLiteral"
}

//pastri:hotpath
func appendFreshConversion(src []byte) []byte {
	return append([]byte(nil), src...) // want "append into a fresh slice in hot function appendFreshConversion"
}

//pastri:hotpath
func appendIntoOther(dst []int64, v int64) []int64 {
	out := append(dst, v) // want "append result in hot function appendIntoOther does not feed back"
	return out
}

// Interprocedural: kernel is marked, the allocation sits two calls
// down in helperTwo — the case the first-generation analyzer missed.
//
//pastri:hotpath
func kernel(n int) int {
	return helperOne(n)
}

func helperOne(n int) int {
	return len(helperTwo(n))
}

func helperTwo(n int) []byte {
	return make([]byte, n) // want "make in hot function helperTwo \\(hot via fixtures.kernel → fixtures.helperOne → fixtures.helperTwo\\)"
}

// Closure capture: constructing the literal allocates per call.
//
//pastri:hotpath
func closureCapture(n int) func() int {
	f := func() int { return n } // want "function literal captures n in hot function closureCapture"
	return f
}

// Interface boxing at a call argument and via explicit conversion.

func sink(v any) { _ = v }

//pastri:hotpath
func boxesArg(x int) {
	sink(x) // want "argument converts int to interface any in hot function boxesArg"
}

//pastri:hotpath
func boxesExplicit(x float64) any {
	v := any(x) // want "conversion of float64 to interface any in hot function boxesExplicit"
	return v
}

// String concatenation.

//pastri:hotpath
func concat(a, b string) string {
	s := a + b // want "string concatenation in hot function concat allocates"
	return s
}

//pastri:hotpath
func concatAssign(parts []string) string {
	s := ""
	for _, p := range parts {
		s += p // want "string \\+= in hot function concatAssign allocates"
	}
	return s
}

// CFG may-analysis: appending onto a slice still nil from its local
// declaration allocates the backing array per call, even though the
// append is textually in-place.
//
//pastri:hotpath
func nilAppend(vs []int) []int {
	var out []int
	for _, v := range vs {
		out = append(out, v) // want "append onto out, which is still the locally-declared nil slice"
	}
	return out
}

// Clean: the in-place grow-and-reuse idiom on caller-owned scratch.

//pastri:hotpath
func appendInPlace(dst []float64, block []float64) []float64 {
	for _, x := range block {
		dst = append(dst, x*2)
	}
	return dst
}

// Clean: the pooled-buffer idiom — slicing and parens on the
// destination still count as feeding back in place.
//
//pastri:hotpath
func pooledBuffer(p *[]byte, payload []byte) {
	*p = append((*p)[:0], payload...)
}

// Clean: a slice assigned from the caller's world is not locally nil.

//pastri:hotpath
func callerBacked(scratch []int, v int) []int {
	out := scratch[:0]
	out = append(out, v)
	return out
}

// Clean: boxing and concatenation on return/panic paths run at most
// once per call — the classic error-exit shapes are not hot-loop costs.

//pastri:hotpath
func coldExitError(n int) (int, error) {
	if n < 0 {
		return 0, errorf("fixtures: bad n %d", n)
	}
	return n, nil
}

//pastri:hotpath
func coldExitPanic(n int) int {
	if n < 0 {
		panic("fixtures: bad n " + itoa(n))
	}
	return n
}

func errorf(format string, args ...any) error { return nil }
func itoa(int) string                         { return "" }

// Clean: pointer-shaped values fit the interface data word, so the
// conversion does not allocate.

//pastri:hotpath
func boxesPointer(p *int, m map[string]int) {
	sink(p)
	sink(m)
}

// Suppressed: deliberate per-call (not per-block) allocation.

//pastri:hotpath
func annotatedSetup(nblocks int) [][]byte {
	payloads := make([][]byte, nblocks) //lint:hotalloc2-ok one slice per call, not per block
	return payloads
}

// Suppressed via the legacy first-generation marker, still honored.

//pastri:hotpath
func legacyAnnotated(n int) []byte {
	return make([]byte, n) //lint:hotalloc-ok legacy annotation from the v1 analyzer
}

// Clean: cold functions allocate freely.

func coldPath(n int) []float64 {
	buf := make([]float64, n)
	s := "x" + "y" // constant-folded, and cold anyway
	_ = s
	return append(buf[:0], 1.5)
}

// Clean: a doc comment that merely mentions the marker in prose (not on
// a line of its own) does not mark the function hot.

// notHot explains that callers on a pastri:hotpath should pre-size dst.
func notHot(n int) []int {
	return make([]int, n)
}
