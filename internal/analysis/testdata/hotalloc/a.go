package fixtures

// Positives: per-call allocation shapes inside hotpath functions.

// encodeHot is a fake block kernel.
//
//pastri:hotpath
func encodeHot(n int) []float64 {
	buf := make([]float64, n) // want "make in hotpath function encodeHot allocates on every call"
	return buf
}

//pastri:hotpath
func appendFreshLiteral(v byte) []byte {
	return append([]byte{}, v) // want "append into a fresh slice in hotpath function appendFreshLiteral"
}

//pastri:hotpath
func appendFreshConversion(src []byte) []byte {
	return append([]byte(nil), src...) // want "append into a fresh slice in hotpath function appendFreshConversion"
}

//pastri:hotpath
func appendIntoOther(dst []int64, v int64) []int64 {
	out := append(dst, v) // want "append result in hotpath function appendIntoOther does not feed back"
	return out
}

//pastri:hotpath
func appendReturned(dst []int64, v int64) []int64 {
	return append(dst, v) // want "append result in hotpath function appendReturned does not feed back"
}

// Positives survive inside nested function literals: worker goroutines
// spawned by a hotpath fan-out are themselves hot.
//
//pastri:hotpath
func hotFanOut(n int) {
	work := func() {
		scratch := make([]byte, n) // want "make in hotpath function hotFanOut allocates on every call"
		_ = scratch
	}
	work()
}

// Clean: the in-place grow-and-reuse idiom on caller-owned scratch.

//pastri:hotpath
func appendInPlace(dst []float64, block []float64) []float64 {
	for _, x := range block {
		dst = append(dst, x*2)
	}
	return dst
}

// Clean: the pooled-buffer idiom — slicing and parens on the
// destination still count as feeding back in place.
//
//pastri:hotpath
func pooledBuffer(p *[]byte, payload []byte) {
	*p = append((*p)[:0], payload...)
}

// Clean: deliberate per-call (not per-block) allocation, annotated.

//pastri:hotpath
func annotatedSetup(nblocks int) [][]byte {
	payloads := make([][]byte, nblocks) //lint:hotalloc-ok one slice per call, not per block
	return payloads
}

// Clean: cold functions allocate freely.

func coldPath(n int) []float64 {
	buf := make([]float64, n)
	return append(buf[:0], 1.5)
}

// Clean: a doc comment that merely mentions the marker in prose (not on
// a line of its own) does not mark the function hot.

// notHot explains that callers on a pastri:hotpath should pre-size dst.
func notHot(n int) []int {
	return make([]int, n)
}
