// Clean case: under cmd/ (and examples/) process-terminating calls are
// the correct idiom, so nothing here is flagged.
package main

import (
	"log"
	"os"
)

func main() {
	if len(os.Args) < 2 {
		log.Fatal("usage: tool <arg>")
	}
	if os.Args[1] == "boom" {
		panic("boom")
	}
	os.Exit(0)
}
