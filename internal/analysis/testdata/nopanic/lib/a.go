package fixtures

import (
	"fmt"
	"log"
	"os"
)

// True positives: process-terminating calls in a library package.

func bad(x int) {
	if x < 0 {
		panic("negative") // want "panic in library package"
	}
}

func badLog(err error) {
	log.Fatal(err) // want "log.Fatal in library package"
}

func badLogf(err error) {
	log.Panicf("boom: %v", err) // want "log.Panicf in library package"
}

func badExit() {
	os.Exit(1) // want "os.Exit in library package"
}

// Clean: errors returned instead.

func clean(x int) error {
	if x < 0 {
		return fmt.Errorf("negative %d", x)
	}
	return nil
}

// Clean: suppressed API-contract guard.

func contract(width uint) {
	if width > 64 {
		panic(fmt.Sprintf("width %d > 64", width)) //lint:nopanic-ok unreachable unless the caller breaks the documented contract
	}
}
