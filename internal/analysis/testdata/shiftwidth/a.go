package fixtures

// True positives: distances that can reach the operand width.

func unbounded(b uint) uint64 {
	return 1 << b // want "not provably < 64"
}

func unboundedOffset(width uint) uint64 {
	return ^uint64(0) << (width - 1) // want "not provably < 64"
}

func constTooBig(x uint64) uint64 {
	return x >> 70 // want "not provably < 64"
}

func assignOp(x uint64, n uint) uint64 {
	x >>= n // want "not provably < 64"
	return x
}

func guardTooWeak(width uint) uint64 {
	if width <= 64 { // admits width == 64
		return 1 << width // want "not provably < 64"
	}
	return 0
}

func wrongBranch(b uint) uint64 {
	if b < 64 {
		return 0
	}
	return 1 << b // want "not provably < 64"
}

// Clean: dominating bound checks in all supported shapes.

func guardedThen(b uint) uint64 {
	if b < 64 {
		return 1 << b
	}
	return 0
}

func guardedElse(b uint) uint64 {
	if b >= 64 {
		return 0
	} else {
		return 1 << b
	}
}

func guardedTerminator(b uint) uint64 {
	if b > 63 {
		panic("shift distance out of range")
	}
	return 1 << b
}

func guardedDisjunction(width uint) uint64 {
	if width == 0 || width > 64 {
		return 0
	}
	return ^uint64(0) << (width - 1)
}

func guardedConjunction(x uint64, a uint) uint64 {
	if a < 32 && x > 0 {
		return x << (a + 31)
	}
	return 0
}

func guardedAssignOp(x uint64, n uint) uint64 {
	if n < 8 {
		x <<= n
	}
	return x
}

// Clean: distance reduced on the spot.

func masked(x uint64, n uint) uint64 {
	return x << (n & 63)
}

func modded(x uint64, n uint) uint64 {
	return x >> (n % 64)
}

func constOK(x uint64) uint64 {
	return x << 63
}

func narrowOperand(x uint16, n uint) uint16 {
	if n < 16 {
		return x << n
	}
	return 0
}

// Clean: tagless-switch ordering — reaching a later clause negates the
// earlier guards, and a clause's own expression bounds it positively.

func guardedSwitchOrder(x uint64, bin uint) (uint64, bool) {
	switch {
	case bin == 0:
		return 0, false
	case bin > 64:
		return 0, false
	default:
		return x << (bin - 1), true
	}
}

func guardedSwitchCase(x uint64, n uint) uint64 {
	switch {
	case n < 16:
		return x << n
	default:
		return 0
	}
}

// Positive: fallthrough invalidates the ordering argument.

func switchFallthrough(x uint64, n uint) uint64 {
	switch {
	case n > 64:
		fallthrough
	default:
		return x << n // want "not provably < 64"
	}
	return 0
}

// Clean: loop variables bounded by their condition (upward) or their
// constant start (downward), as in the ZFP bit-plane coder.

func guardedUpLoop(u []uint64) uint64 {
	var nibble uint64
	for i := 0; i < len(u) && i < 16; i++ {
		nibble = nibble<<1 | (u[0]>>uint(63-i))&1
	}
	return nibble
}

func guardedDownLoop(u []uint64, planes int) uint64 {
	var acc uint64
	for p := 63; p > 63-planes; p-- {
		acc |= (u[0] >> uint(p)) & 1
	}
	return acc
}

// Positive: the body writes the loop variable, so the loop bounds are
// off the table.

func loopVarRewritten(x uint64) uint64 {
	var acc uint64
	for i := 0; i < 16; i++ {
		acc |= x << i // want "not provably < 64"
		i += int(x)
	}
	return acc
}

// Clean: suppressed with the invariant stated.

func annotated(x uint64, rem uint) uint64 {
	return x << rem //lint:shiftwidth-ok rem = width-free < 64 because free >= 1
}
