package fixtures

// True positives: exact equality on floating-point operands.

func eq(a, b float64) bool {
	return a == b // want "floating-point == comparison"
}

func neq32(a, b float32) bool {
	return a != b // want "floating-point != comparison"
}

func mixedConst(x float64) bool {
	return x == 1.5 // want "floating-point == comparison"
}

// Clean: tolerance-based comparison and integer equality.

func clean(a, b float64, i, j int) bool {
	const tol = 1e-12
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= tol && i == j
}

// Clean: both operands are compile-time constants.

const cA = 1.5

func constFold() bool {
	return cA == 1.5
}

// Clean: suppressed exact-zero sentinel.

func sentinel(x float64) bool {
	return x == 0 //lint:floatcmp-ok untouched screening zeros are exact by construction
}
