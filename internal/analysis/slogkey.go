package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
	"regexp"
)

// SlogKey enforces the structured-logging key contract: every slog
// attribute constructor (slog.String, slog.Int, ...) takes a
// compile-time constant key in lowercase_snake. Telemetry snapshots,
// Prometheus labels and slog attributes all describe the same pipeline,
// and dashboards join them by name — a key that is computed at run time
// cannot be grepped for, and a "BytesIn"/"bytes-in" variant silently
// forks the namespace. Deliberate exceptions carry //lint:slogkey-ok.
var SlogKey = &Analyzer{
	Name: "slogkey",
	Doc:  "slog attribute keys must be constant lowercase_snake strings",
	Run:  runSlogKey,
}

var slogKeyRe = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)

// slogAttrCtors are the log/slog functions whose first argument is an
// attribute key.
var slogAttrCtors = map[string]bool{
	"String": true, "Int": true, "Int64": true, "Uint64": true,
	"Float64": true, "Bool": true, "Duration": true, "Time": true,
	"Any": true, "Group": true,
}

func runSlogKey(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !slogAttrCtors[sel.Sel.Name] {
				return true
			}
			pkgIdent, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := p.TypesInfo.Uses[pkgIdent].(*types.PkgName)
			if !ok || pn.Imported().Path() != "log/slog" {
				return true
			}
			keyArg := call.Args[0]
			tv := p.TypesInfo.Types[keyArg]
			if tv.Value == nil || tv.Value.Kind() != constant.String {
				p.Reportf(keyArg.Pos(),
					"slog.%s key is not a compile-time constant; use a literal lowercase_snake key so logs stay greppable",
					sel.Sel.Name)
				return true
			}
			key := constant.StringVal(tv.Value)
			if !slogKeyRe.MatchString(key) {
				p.Reportf(keyArg.Pos(),
					"slog.%s key %q is not lowercase_snake (want %s)",
					sel.Sel.Name, key, slogKeyRe)
			}
			return true
		})
	}
}
