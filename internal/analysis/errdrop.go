package analysis

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"strings"
)

// ErrDrop flags dropped error returns at stream-I/O call sites: calls
// into the bit-stream substrate (internal/bitio), the mixed-geometry
// container layer (internal/container), the core stream codec, and the
// standard I/O packages. A swallowed bitio.ErrUnexpectedEOF turns a
// truncated stream into silently wrong science data — the decoder
// "succeeds" with garbage quanta — so these call sites must either
// handle the error or annotate why dropping is sound.
//
// Flagged shapes: a call used as a bare statement or `defer` whose
// (last) result is error, and explicit discards `_ = f()` of such
// calls, when the callee is defined in one of the watched packages.
var ErrDrop = &Analyzer{
	Name: "errdrop",
	Doc:  "flag dropped error results from bitio/container/stream-I/O calls",
	Run:  runErrDrop,
}

// errDropWatched lists packages whose error returns must not be
// dropped. Module-local entries are path suffixes resolved against
// Pass.ModPath.
var errDropWatched = map[string]bool{
	"io":                      true,
	"bufio":                   true,
	"os":                      true,
	"$MOD":                    true, // the public façade (StreamWriter.Close flushes!)
	"$MOD/internal/bitio":     true,
	"$MOD/internal/container": true,
	"$MOD/internal/core":      true,
}

func runErrDrop(p *Pass) {
	watched := make(map[string]bool, len(errDropWatched))
	for k := range errDropWatched {
		if strings.HasPrefix(k, "$MOD") {
			k = p.ModPath + k[len("$MOD"):]
		}
		watched[k] = true
	}
	check := func(call *ast.CallExpr, how string) {
		pkg, name := p.calleePackage(call)
		if pkg == nil || !watched[pkg.Path()] {
			return
		}
		if !callReturnsError(p.TypesInfo, call) {
			return
		}
		p.Reportf(call.Pos(),
			"error result of %s.%s %s; handle it or annotate //lint:errdrop-ok with why dropping is sound",
			pkg.Name(), name, how)
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					check(call, "is dropped")
				}
			case *ast.DeferStmt:
				check(n.Call, "is dropped by defer")
			case *ast.GoStmt:
				check(n.Call, "is dropped by go")
			case *ast.AssignStmt:
				// _ = f()  or  v, _ := f()  discarding the error slot.
				if len(n.Rhs) != 1 {
					return true
				}
				call, ok := n.Rhs[0].(*ast.CallExpr)
				if !ok {
					return true
				}
				sig := callSignature(p.TypesInfo, call)
				if sig == nil {
					return true
				}
				res := sig.Results()
				for i := 0; i < res.Len() && i < len(n.Lhs); i++ {
					if !isErrorType(res.At(i).Type()) {
						continue
					}
					if id, ok := n.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
						check(call, "is discarded with _")
					}
				}
			}
			return true
		})
	}
}

// calleePackage resolves the package defining the called function or
// method, and the callee's name.
func (p *Pass) calleePackage(call *ast.CallExpr) (*types.Package, string) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if obj, ok := p.TypesInfo.Uses[fun].(*types.Func); ok {
			return obj.Pkg(), obj.Name()
		}
	case *ast.SelectorExpr:
		if sel, ok := p.TypesInfo.Selections[fun]; ok {
			if f, ok := sel.Obj().(*types.Func); ok {
				return f.Pkg(), f.Name()
			}
			return nil, ""
		}
		// Package-qualified call: pkg.Func().
		if obj, ok := p.TypesInfo.Uses[fun.Sel].(*types.Func); ok {
			return obj.Pkg(), obj.Name()
		}
	}
	return nil, ""
}

func callSignature(info *types.Info, call *ast.CallExpr) *types.Signature {
	t := info.Types[call.Fun].Type
	if t == nil {
		return nil
	}
	sig, _ := t.Underlying().(*types.Signature)
	return sig
}

func callReturnsError(info *types.Info, call *ast.CallExpr) bool {
	sig := callSignature(info, call)
	if sig == nil || sig.Results().Len() == 0 {
		return false
	}
	return isErrorType(sig.Results().At(sig.Results().Len() - 1).Type())
}

func isErrorType(t types.Type) bool {
	return t != nil && t.String() == "error" && types.IsInterface(t)
}

// exprString renders a (small) expression for diagnostics.
func exprString(fset *token.FileSet, e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, e); err != nil {
		return "?"
	}
	return buf.String()
}
