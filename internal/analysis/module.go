package analysis

import (
	"fmt"
	"go/token"
	"path/filepath"
	"sort"

	"repro/internal/analysis/flow"
)

// A ModuleAnalyzer checks an invariant that spans packages: it sees
// every loaded package at once plus the flow engine's whole-program
// view (call graph, hot-path propagation). The second-generation
// analyzers (hotalloc2, detlint, atomicmix, deferloop) are module
// analyzers because their invariants cross call boundaries.
type ModuleAnalyzer struct {
	Name string // identifier used in //lint:<name>-ok markers
	Doc  string
	// Suppress lists additional marker names honored for this
	// analyzer's findings; hotalloc2 grandfathers the first-generation
	// //lint:hotalloc-ok annotations this way.
	Suppress []string
	Run      func(*ModulePass)
}

// A ModulePass carries the loaded module through one module analyzer.
type ModulePass struct {
	Analyzer *ModuleAnalyzer
	Fset     *token.FileSet
	Packages []*Package
	Program  *flow.Program

	diags *[]Diagnostic
}

// PositionString formats pos with a module-root-relative path, so
// diagnostics that embed a second location stay machine-independent.
func (p *ModulePass) PositionString(pos token.Pos) string {
	position := p.Fset.Position(pos)
	if len(p.Packages) > 0 && p.Packages[0].ModRoot != "" {
		if rel, err := filepath.Rel(p.Packages[0].ModRoot, position.Filename); err == nil && !isOutside(rel) {
			position.Filename = filepath.ToSlash(rel)
		}
	}
	return position.String()
}

// Reportf records a finding at pos.
func (p *ModulePass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// AllModule returns the module-analyzer suite in reporting order.
func AllModule() []*ModuleAnalyzer {
	return []*ModuleAnalyzer{
		HotAlloc2,
		DetLint,
		AtomicMix,
		DeferLoop,
	}
}

// Select resolves analyzer names against both registries. Unknown
// names are an error; each name resolves to exactly one kind.
func Select(names []string) ([]*Analyzer, []*ModuleAnalyzer, error) {
	pkgBy := make(map[string]*Analyzer)
	for _, a := range All() {
		pkgBy[a.Name] = a
	}
	modBy := make(map[string]*ModuleAnalyzer)
	for _, a := range AllModule() {
		modBy[a.Name] = a
	}
	var pas []*Analyzer
	var mas []*ModuleAnalyzer
	for _, n := range names {
		switch {
		case pkgBy[n] != nil:
			pas = append(pas, pkgBy[n])
		case modBy[n] != nil:
			mas = append(mas, modBy[n])
		default:
			return nil, nil, fmt.Errorf("analysis: unknown analyzer %q", n)
		}
	}
	return pas, mas, nil
}

// FlowProgram adapts the loaded packages into the flow engine's
// whole-program view. All packages must share one FileSet (they do
// when produced by a single Loader).
func FlowProgram(pkgs []*Package) *flow.Program {
	if len(pkgs) == 0 {
		return flow.BuildProgram(token.NewFileSet(), nil)
	}
	infos := make([]*flow.PackageInfo, len(pkgs))
	for i, p := range pkgs {
		infos[i] = &flow.PackageInfo{
			Path:  p.Path,
			Files: p.Files,
			Pkg:   p.Types,
			Info:  p.Info,
		}
	}
	return flow.BuildProgram(pkgs[0].Fset, infos)
}

// RunModule applies module analyzers to the whole loaded package set
// and returns the surviving diagnostics, with //lint:<name>-ok
// suppressions (and each analyzer's legacy markers) applied and the
// result sorted by position.
func RunModule(pkgs []*Package, analyzers []*ModuleAnalyzer) []Diagnostic {
	if len(pkgs) == 0 || len(analyzers) == 0 {
		return nil
	}
	prog := FlowProgram(pkgs)
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &ModulePass{
			Analyzer: a,
			Fset:     pkgs[0].Fset,
			Packages: pkgs,
			Program:  prog,
			diags:    &diags,
		}
		a.Run(pass)
	}
	aliases := make(map[string][]string)
	for _, a := range analyzers {
		aliases[a.Name] = append([]string{a.Name}, a.Suppress...)
	}
	sup := &suppressionSet{byFile: make(map[string]map[int]map[string]bool)}
	for _, pkg := range pkgs {
		mergeSuppressions(sup, collectSuppressions(pkg.Fset, pkg.Files))
	}
	kept := diags[:0]
	for _, d := range diags {
		names := aliases[d.Analyzer]
		if len(names) == 0 {
			names = []string{d.Analyzer}
		}
		drop := false
		for _, n := range names {
			if sup.suppressedAs(d, n) {
				drop = true
				break
			}
		}
		if !drop {
			kept = append(kept, d)
		}
	}
	sortDiagnostics(kept)
	return kept
}

func mergeSuppressions(dst, src *suppressionSet) {
	for file, lines := range src.byFile {
		dl := dst.byFile[file]
		if dl == nil {
			dst.byFile[file] = lines
			continue
		}
		for line, set := range lines {
			ds := dl[line]
			if ds == nil {
				dl[line] = set
				continue
			}
			for n := range set {
				ds[n] = true
			}
		}
	}
}

func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
}
