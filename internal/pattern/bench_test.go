package pattern

import (
	"math/rand"
	"testing"
)

func BenchmarkAnalyze(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	block, _ := syntheticBlock(rng, 36, 36, 1e-12)
	for _, m := range Metrics {
		b.Run(m.String(), func(b *testing.B) {
			b.SetBytes(int64(len(block) * 8))
			for i := 0; i < b.N; i++ {
				if _, err := Analyze(block, 36, 36, m); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
