package pattern

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// syntheticBlock builds a block of numSB sub-blocks, each an exact scalar
// multiple of a shared shape, plus optional noise.
func syntheticBlock(rng *rand.Rand, numSB, sbSize int, noise float64) ([]float64, []float64) {
	shape := make([]float64, sbSize)
	for i := range shape {
		shape[i] = rng.NormFloat64()
	}
	block := make([]float64, numSB*sbSize)
	scales := make([]float64, numSB)
	for s := 0; s < numSB; s++ {
		scales[s] = rng.Float64()*2 - 1
		for i := 0; i < sbSize; i++ {
			block[s*sbSize+i] = scales[s]*shape[i] + noise*rng.NormFloat64()
		}
	}
	return block, scales
}

func TestAnalyzeGeometryErrors(t *testing.T) {
	if _, err := Analyze(make([]float64, 10), 3, 4, ER); err == nil {
		t.Fatal("expected size mismatch error")
	}
	if _, err := Analyze(nil, 0, 4, ER); err == nil {
		t.Fatal("expected invalid geometry error")
	}
	if _, err := Analyze(make([]float64, 12), 3, 4, Metric(99)); err == nil {
		t.Fatal("expected unknown metric error")
	}
}

func TestMetricStrings(t *testing.T) {
	want := map[Metric]string{FR: "FR", ER: "ER", AR: "AR", AAR: "AAR", IS: "IS"}
	for m, s := range want {
		if m.String() != s {
			t.Errorf("%v.String() = %q, want %q", int(m), m.String(), s)
		}
	}
	if Metric(42).String() != "Metric(42)" {
		t.Errorf("unknown metric String: %q", Metric(42).String())
	}
}

// On an exactly scalable block, every metric must recover the structure
// perfectly: residuals are ~0.
func TestExactPatternRecovery(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, m := range Metrics {
		block, _ := syntheticBlock(rng, 6, 36, 0)
		res, err := Analyze(block, 6, 36, m)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		devs := Deviations(block, 6, 36, res)
		maxDev := 0.0
		for _, d := range devs {
			if a := math.Abs(d); a > maxDev {
				maxDev = a
			}
		}
		if maxDev > 1e-12 {
			t.Errorf("%v: max residual %g on exactly scalable block", m, maxDev)
		}
	}
}

// Property: scales are always within [-1, 1] and the pattern's own scale
// is exactly 1, for every metric, even on random (non-patterned) data.
func TestQuickScaleBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		numSB := rng.Intn(8) + 1
		sbSize := rng.Intn(50) + 1
		block := make([]float64, numSB*sbSize)
		for i := range block {
			block[i] = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(8)-4))
		}
		for _, m := range Metrics {
			res, err := Analyze(block, numSB, sbSize, m)
			if err != nil {
				return false
			}
			if res.Scales[res.PatternIndex] != 1 {
				return false
			}
			for _, s := range res.Scales {
				if s < -1 || s > 1 || math.IsNaN(s) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestERPicksExtremumSubBlock(t *testing.T) {
	block := []float64{
		0.1, -0.2, 0.3, 0.0, // sub-block 0
		0.2, -0.4, 0.6, 0.0, // sub-block 1
		-0.5, 1.0, -9.0, 0.0, // sub-block 2 (extremum -9 at local pos 2)
	}
	res, err := Analyze(block, 3, 4, ER)
	if err != nil {
		t.Fatal(err)
	}
	if res.PatternIndex != 2 {
		t.Fatalf("PatternIndex = %d, want 2", res.PatternIndex)
	}
	if res.RefPos != 2 {
		t.Fatalf("RefPos = %d, want 2", res.RefPos)
	}
	// Sub-block 0's coefficient = 0.3 / -9.0.
	if got, want := res.Scales[0], 0.3/-9.0; math.Abs(got-want) > 1e-15 {
		t.Fatalf("Scales[0] = %g, want %g", got, want)
	}
}

func TestFRPicksLargestFirst(t *testing.T) {
	block := []float64{
		0.1, 5.0, // sub-block 0 (first = 0.1)
		-2.0, 1.0, // sub-block 1 (first = -2.0, largest |first|)
		0.5, 0.0, // sub-block 2
	}
	res, err := Analyze(block, 3, 2, FR)
	if err != nil {
		t.Fatal(err)
	}
	if res.PatternIndex != 1 || res.RefPos != 0 {
		t.Fatalf("PatternIndex=%d RefPos=%d, want 1, 0", res.PatternIndex, res.RefPos)
	}
	if got, want := res.Scales[2], 0.5/-2.0; math.Abs(got-want) > 1e-15 {
		t.Fatalf("Scales[2] = %g, want %g", got, want)
	}
}

// Sign correction: AAR and IS on an inverted copy must flip the sign of
// the coefficient so residuals stay small.
func TestSignCorrection(t *testing.T) {
	shape := []float64{1, -2, 3, -4, 2, 0.5}
	block := make([]float64, 0, 12)
	block = append(block, shape...)
	for _, x := range shape {
		block = append(block, -0.5*x) // inverted, half amplitude
	}
	for _, m := range []Metric{AAR, IS} {
		res, err := Analyze(block, 2, 6, m)
		if err != nil {
			t.Fatal(err)
		}
		devs := Deviations(block, 2, 6, res)
		for i, d := range devs {
			if math.Abs(d) > 1e-12 {
				t.Errorf("%v: residual[%d] = %g (sign correction failed?)", m, i, d)
			}
		}
	}
}

func TestAllZeroBlock(t *testing.T) {
	block := make([]float64, 24)
	for _, m := range Metrics {
		res, err := Analyze(block, 4, 6, m)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		for i, s := range res.Scales {
			if math.IsNaN(s) || math.IsInf(s, 0) {
				t.Fatalf("%v: Scales[%d] = %g on zero block", m, i, s)
			}
		}
	}
}

// ER residuals on a realistic near-pattern block stay far below the
// sub-block amplitudes — this is the observation of Fig. 3(d).
func TestERResidualsSmallOnNoisyPattern(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	block, _ := syntheticBlock(rng, 6, 36, 1e-9)
	res, err := Analyze(block, 6, 36, ER)
	if err != nil {
		t.Fatal(err)
	}
	devs := Deviations(block, 6, 36, res)
	amp, _ := maxAbs(block)
	dmax, _ := maxAbs(devs)
	if dmax > amp*1e-6 {
		t.Fatalf("residual %g too large vs amplitude %g", dmax, amp)
	}
}

func maxAbs(xs []float64) (float64, int) {
	best, idx := 0.0, -1
	for i, x := range xs {
		if a := math.Abs(x); a > best || idx == -1 {
			best, idx = a, i
		}
	}
	return best, idx
}
