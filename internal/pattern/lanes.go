package pattern

import "math"

// ArgMaxAbs returns the largest |x| in xs and the index of its first
// occurrence, with (-1, 0) for an empty slice and NaNs never selected
// (exactly as in a sequential strict-`>` scan, where they compare
// false against every running best). This is the ER metric's
// whole-block extremum scan — the single hottest loop of compression,
// since it touches every point.
//
// The loop compares magnitudes in the integer domain. For non-NaN
// doubles, clearing the sign bit leaves a value whose unsigned integer
// order is exactly the order of |x| (IEEE-754 magnitudes are
// lexicographic in the remaining bits, denormals and ±Inf included),
// so the comparison runs on plain integer loads with no float→int
// register round-trip per element (math.Abs is not an amd64
// intrinsic) and no floating-point compare. Each lane best holds the
// masked bits plus one: the +1 bias is order-preserving (masked bits
// never exceed 2^63, so it cannot overflow) and makes 0 an unambiguous
// "lane never updated" sentinel even when the data's largest magnitude
// is ±0, whose masked bits are 0. NaNs mask to values above the ±Inf
// pattern and are rejected by the explicit `a <= infBits` test before
// the lane compare.
//
// The result is lane-count invariant: each lane keeps the first strict
// maximum of its stride subsequence (strict `>` preserves the earliest
// occurrence), so the lane achieving the global maximum magnitude
// holds the globally smallest such index, and the merge — strictly
// greater, or equal with smaller index — recovers exactly the
// sequential first-strict-max answer. TestArgMaxAbsMatchesSequential
// pins the equivalence on adversarial inputs (ties, NaNs, ±Inf, ±0,
// denormals).
//
//pastri:hotpath
func ArgMaxAbs(xs []float64) (float64, int) {
	const infBits = 0x7FF0000000000000 // masked bits of ±Inf; anything above is a NaN
	var b0, b1, b2, b3 uint64
	i0, i1, i2, i3 := 0, 0, 0, 0
	n := len(xs)
	i := 0
	for ; i+4 <= n; i += 4 {
		if a := math.Float64bits(xs[i]) &^ (1 << 63); a <= infBits && a+1 > b0 {
			b0, i0 = a+1, i
		}
		if a := math.Float64bits(xs[i+1]) &^ (1 << 63); a <= infBits && a+1 > b1 {
			b1, i1 = a+1, i+1
		}
		if a := math.Float64bits(xs[i+2]) &^ (1 << 63); a <= infBits && a+1 > b2 {
			b2, i2 = a+1, i+2
		}
		if a := math.Float64bits(xs[i+3]) &^ (1 << 63); a <= infBits && a+1 > b3 {
			b3, i3 = a+1, i+3
		}
	}
	// Tail folds into lane 0: its indices exceed every stored one, and
	// strict `>` keeps the earlier occurrence.
	for ; i < n; i++ {
		if a := math.Float64bits(xs[i]) &^ (1 << 63); a <= infBits && a+1 > b0 {
			b0, i0 = a+1, i
		}
	}
	best, idx := b0, i0
	if b1 > best || (b1 == best && i1 < idx) {
		best, idx = b1, i1
	}
	if b2 > best || (b2 == best && i2 < idx) {
		best, idx = b2, i2
	}
	if b3 > best || (b3 == best && i3 < idx) {
		best, idx = b3, i3
	}
	if best == 0 {
		// No lane ever updated: empty input or all NaN.
		return -1, 0
	}
	return math.Float64frombits(best - 1), idx
}
