package pattern

import (
	"math"
	"math/rand"
	"testing"
)

// argMaxAbsSeq is the reference semantics ArgMaxAbs must reproduce:
// a sequential strict-`>` scan from index 0 with best initialized
// below every magnitude.
func argMaxAbsSeq(xs []float64) (float64, int) {
	best, idx := -1.0, 0
	for i, x := range xs {
		if a := math.Abs(x); a > best {
			best, idx = a, i
		}
	}
	return best, idx
}

func TestArgMaxAbsMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	specials := []float64{0, math.Copysign(0, -1), 1, -1, math.NaN(),
		math.Inf(1), math.Inf(-1), 5e-324, -5e-324, 1e-310, math.MaxFloat64}
	for trial := 0; trial < 2000; trial++ {
		n := rng.Intn(67) // cover empty, sub-lane-width and multi-word lengths
		xs := make([]float64, n)
		for i := range xs {
			switch rng.Intn(4) {
			case 0:
				xs[i] = specials[rng.Intn(len(specials))]
			case 1:
				// Deliberate ties: same magnitude, random sign, repeated.
				xs[i] = math.Copysign(float64(rng.Intn(4)), float64(rng.Intn(3)-1))
			default:
				xs[i] = (rng.Float64() - 0.5) * math.Pow(10, float64(rng.Intn(40)-20))
			}
		}
		wantBest, wantIdx := argMaxAbsSeq(xs)
		gotBest, gotIdx := ArgMaxAbs(xs)
		if gotIdx != wantIdx || math.Float64bits(gotBest) != math.Float64bits(wantBest) {
			t.Fatalf("trial %d (n=%d): ArgMaxAbs = (%g, %d), sequential = (%g, %d)\nxs = %v",
				trial, n, gotBest, gotIdx, wantBest, wantIdx, xs)
		}
	}
}

func TestArgMaxAbsEmpty(t *testing.T) {
	best, idx := ArgMaxAbs(nil)
	if best != -1 || idx != 0 {
		t.Fatalf("ArgMaxAbs(nil) = (%g, %d), want (-1, 0)", best, idx)
	}
}

func BenchmarkArgMaxAbs(b *testing.B) {
	xs := make([]float64, 10000) // one (ff|ff) block
	rng := rand.New(rand.NewSource(1))
	for i := range xs {
		xs[i] = (rng.Float64() - 0.5) * 1e-4
	}
	b.SetBytes(int64(len(xs) * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ArgMaxAbs(xs)
	}
}
