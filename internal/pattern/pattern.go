// Package pattern implements PaSTRI's pattern-scaling stage (Sec. IV-A of
// the paper): selecting, for each ERI block, the sub-block that best
// represents the latent repeated shape, and computing one scaling
// coefficient per sub-block that maps the pattern onto that sub-block.
//
// Five scaling metrics are provided, matching Fig. 4 of the paper:
//
//	FR  — ratio of firsts             (pattern = sub-block with largest |first point|)
//	ER  — ratio of extremums          (pattern = sub-block containing the block extremum)
//	AR  — ratio of averages           (pattern = sub-block with largest |average|)
//	AAR — ratio of absolute averages  (pattern = sub-block with largest mean |x|; sign-corrected)
//	IS  — interval scaling            (pattern = sub-block with largest value range; sign-corrected)
//
// All metrics pick the sub-block that maximizes the metric, so every
// scaling coefficient lies in [-1, 1] — a property the quantizer exploits
// (Sec. IV-B). ER is the paper's choice: it yields the best ratio and the
// lowest computational cost.
package pattern

import (
	"fmt"
	"math"
)

// Metric identifies a pattern-scaling method.
type Metric int

// The five scaling metrics evaluated in the paper (Fig. 4).
const (
	ER  Metric = iota // ratio of extremums (paper default)
	FR                // ratio of firsts
	AR                // ratio of averages
	AAR               // ratio of absolute averages
	IS                // interval scaling
)

// String returns the paper's abbreviation for the metric.
func (m Metric) String() string {
	switch m {
	case FR:
		return "FR"
	case ER:
		return "ER"
	case AR:
		return "AR"
	case AAR:
		return "AAR"
	case IS:
		return "IS"
	}
	return fmt.Sprintf("Metric(%d)", int(m))
}

// Metrics lists all supported metrics in the paper's presentation order.
var Metrics = []Metric{FR, ER, AR, AAR, IS}

// Result is the outcome of pattern analysis on one block.
type Result struct {
	PatternIndex int       // which sub-block was chosen as the pattern
	Scales       []float64 // one coefficient per sub-block, in [-1, 1]
	// RefPos is the intra-sub-block position used by point-ratio metrics
	// (FR, ER); -1 for aggregate metrics (AR, AAR, IS).
	RefPos int
}

// Analyze decomposes block into numSB contiguous sub-blocks of size
// sbSize and computes the pattern choice and per-sub-block scaling
// coefficients under metric m. len(block) must equal numSB*sbSize.
//
// The returned pattern is the slice block[p*sbSize:(p+1)*sbSize] for
// p = Result.PatternIndex; callers quantize it separately.
func Analyze(block []float64, numSB, sbSize int, m Metric) (Result, error) {
	return new(Scratch).Analyze(block, numSB, sbSize, m)
}

// Scratch owns the working buffers of repeated Analyze calls so the
// per-block hot path allocates nothing. A zero Scratch is ready to use;
// the buffers grow to the largest geometry seen and are then reused.
type Scratch struct {
	scales []float64
	aggs   []float64
}

// Analyze is like the package-level Analyze, but the Scales slice of
// the returned Result aliases the Scratch and is only valid until the
// next call on the same Scratch.
//
//pastri:hotpath
func (sc *Scratch) Analyze(block []float64, numSB, sbSize int, m Metric) (Result, error) {
	if numSB <= 0 || sbSize <= 0 {
		return Result{}, fmt.Errorf("pattern: invalid geometry %d×%d", numSB, sbSize)
	}
	if len(block) != numSB*sbSize {
		return Result{}, fmt.Errorf("pattern: block has %d points, geometry wants %d×%d=%d",
			len(block), numSB, sbSize, numSB*sbSize)
	}
	sc.scales = growF64(sc.scales, numSB) //lint:hotalloc-ok grows once to the session geometry, then reused
	switch m {
	case FR, ER:
		return analyzePointRatio(block, numSB, sbSize, m, sc.scales), nil
	case AR, AAR, IS:
		sc.aggs = growF64(sc.aggs, numSB) //lint:hotalloc-ok grows once to the session geometry, then reused
		switch m {
		case AR:
			return analyzeAggregate(block, numSB, sbSize, mean, false, sc.scales, sc.aggs), nil
		case AAR:
			return analyzeAggregate(block, numSB, sbSize, meanAbs, true, sc.scales, sc.aggs), nil
		default:
			return analyzeAggregate(block, numSB, sbSize, valueRange, true, sc.scales, sc.aggs), nil
		}
	default:
		return Result{}, fmt.Errorf("pattern: unknown metric %v", m)
	}
}

// growF64 returns s resized to n elements, reallocating only when the
// capacity is insufficient. Contents are unspecified.
func growF64(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n) //lint:hotalloc2-ok grow path: reallocates only until scratch reaches steady-state capacity
	}
	return s[:n]
}

// analyzePointRatio implements FR and ER: the scaling coefficient of each
// sub-block is the ratio of its value at a fixed reference position to
// the pattern's value there. scales is caller-owned storage of length
// numSB.
func analyzePointRatio(block []float64, numSB, sbSize int, m Metric, scales []float64) Result {
	// Select the pattern.
	patIdx, refPos := 0, 0
	switch m {
	case FR:
		// Sub-block with the largest |first point|; reference is point 0.
		best := -1.0
		for s := 0; s < numSB; s++ {
			a := math.Abs(block[s*sbSize])
			if a > best {
				best = a
				patIdx = s
			}
		}
		refPos = 0
	case ER:
		// Sub-block containing the block extremum; reference is the
		// extremum's intra-sub-block position. The whole-block scan is
		// the eight-lane ArgMaxAbs kernel, whose result is proven
		// identical to a sequential first-strict-max scan (see its
		// doc comment); both the staged and the fused compression
		// paths go through this one kernel, so the pattern choice can
		// never diverge between them.
		_, idx := ArgMaxAbs(block)
		patIdx, refPos = idx/sbSize, idx%sbSize
	}
	ref := block[patIdx*sbSize+refPos]
	for s := 0; s < numSB; s++ {
		scales[s] = safeRatio(block[s*sbSize+refPos], ref)
	}
	scales[patIdx] = 1
	return Result{PatternIndex: patIdx, Scales: scales, RefPos: refPos}
}

// analyzeAggregate implements AR, AAR and IS: the pattern is the
// sub-block maximizing |agg|, and each coefficient is the ratio of
// aggregates, optionally sign-corrected so that the scaled pattern has
// the same polarity as the sub-block (Fig. 4 "requires sign correction").
// scales and aggs are caller-owned storage of length numSB.
func analyzeAggregate(block []float64, numSB, sbSize int, agg func([]float64) float64, signCorrect bool, scales, aggs []float64) Result {
	patIdx, best := 0, -1.0
	for s := 0; s < numSB; s++ {
		aggs[s] = agg(block[s*sbSize : (s+1)*sbSize])
		if a := math.Abs(aggs[s]); a > best {
			best = a
			patIdx = s
		}
	}
	ref := aggs[patIdx]
	pat := block[patIdx*sbSize : (patIdx+1)*sbSize]
	for s := 0; s < numSB; s++ {
		c := safeRatio(aggs[s], ref)
		if signCorrect && s != patIdx {
			// AAR and IS aggregates are sign-blind; align the scaled
			// pattern's polarity with the sub-block's dominant sign.
			if dot(pat, block[s*sbSize:(s+1)*sbSize]) < 0 {
				c = -c
			}
		}
		scales[s] = c
	}
	scales[patIdx] = 1
	return Result{PatternIndex: patIdx, Scales: scales, RefPos: -1}
}

// safeRatio returns a/b clamped to [-1, 1]; if b is zero (a degenerate
// all-zero pattern) it returns 0 so downstream error correction absorbs
// everything.
func safeRatio(a, b float64) float64 {
	if b == 0 { //lint:floatcmp-ok degenerate-pattern sentinel: only an exactly-zero extremum divides badly
		return 0
	}
	r := a / b
	if r > 1 {
		r = 1
	} else if r < -1 {
		r = -1
	}
	return r
}

func mean(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func meanAbs(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += math.Abs(x)
	}
	return s / float64(len(xs))
}

func valueRange(xs []float64) float64 {
	lo, hi := xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return hi - lo
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Deviations returns, for diagnostic purposes, the residuals
// data − S·P for every point in the block under the given analysis.
func Deviations(block []float64, numSB, sbSize int, res Result) []float64 {
	return DeviationsInto(make([]float64, 0, len(block)), block, numSB, sbSize, res)
}

// DeviationsInto appends the residuals data − S·P for every point in
// the block to dst and returns the extended slice; with sufficient
// capacity it does not allocate.
//
//pastri:hotpath
func DeviationsInto(dst []float64, block []float64, numSB, sbSize int, res Result) []float64 {
	pat := block[res.PatternIndex*sbSize : (res.PatternIndex+1)*sbSize]
	for s := 0; s < numSB; s++ {
		c := res.Scales[s]
		sb := block[s*sbSize : (s+1)*sbSize]
		for i, x := range sb {
			dst = append(dst, x-c*pat[i]) //lint:hotalloc-ok callers pass pre-sized dst; the append is in-place
		}
	}
	return dst
}
