package blockcache

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// blk returns a deterministic block of n float64s keyed by k, so tests
// can verify the cache never serves a block under the wrong key.
func blk(k Key, n int) []float64 {
	out := make([]float64, n)
	seed := uint64(len(k.Tenant))<<32 ^ uint64(len(k.Stream))<<16 ^ uint64(k.Block+1)
	for i := range out {
		seed ^= seed << 13
		seed ^= seed >> 7
		seed ^= seed << 17
		out[i] = float64(seed%1000) / 7
	}
	return out
}

func key(tenant string, b int) Key { return Key{Tenant: tenant, Stream: "s", Block: b} }

func fillOK(k Key, n int) func() ([]float64, error) {
	return func() ([]float64, error) { return blk(k, n), nil }
}

// Eviction must be strict LRU order, with Get/GetOrFill hits promoting
// to the front. Keys() (MRU→LRU) is the oracle.
func TestCacheLRUEvictionOrder(t *testing.T) {
	// Each block is 10 floats = 80 bytes; cap fits exactly 3 blocks.
	c := New(240, nil)
	for b := 0; b < 3; b++ {
		if _, err := c.GetOrFill(key("t", b), fillOK(key("t", b), 10)); err != nil {
			t.Fatal(err)
		}
	}
	wantKeys := func(want ...int) {
		t.Helper()
		got := c.Keys()
		if len(got) != len(want) {
			t.Fatalf("Keys() = %v, want blocks %v", got, want)
		}
		for i, b := range want {
			if got[i] != key("t", b) {
				t.Fatalf("Keys()[%d] = %v, want block %d (full: %v)", i, got[i], b, got)
			}
		}
	}
	wantKeys(2, 1, 0) // insertion order, newest first

	// Touch block 0: it must move to the front.
	if _, ok := c.Get(key("t", 0)); !ok {
		t.Fatal("block 0 missing")
	}
	wantKeys(0, 2, 1)

	// Insert block 3: block 1 (now coldest) must be the one evicted.
	if _, err := c.GetOrFill(key("t", 3), fillOK(key("t", 3), 10)); err != nil {
		t.Fatal(err)
	}
	wantKeys(3, 0, 2)
	if _, ok := c.Get(key("t", 1)); ok {
		t.Fatal("block 1 survived eviction")
	}
	st := c.Stats()
	if st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
	if st.Bytes != 240 || st.Entries != 3 {
		t.Fatalf("bytes=%d entries=%d, want 240/3", st.Bytes, st.Entries)
	}
}

// A tenant sub-cap evicts that tenant's own coldest blocks without
// touching other tenants, even when the global cap still has room.
func TestCachePerTenantCap(t *testing.T) {
	// Global cap is generous; tenant "small" may hold only 2 blocks.
	c := New(1<<20, map[string]int64{"small": 160})
	for b := 0; b < 3; b++ {
		if _, err := c.GetOrFill(key("big", b), fillOK(key("big", b), 10)); err != nil {
			t.Fatal(err)
		}
	}
	for b := 0; b < 3; b++ {
		if _, err := c.GetOrFill(key("small", b), fillOK(key("small", b), 10)); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.TenantBytes("small"); got != 160 {
		t.Fatalf("small tenant bytes = %d, want 160", got)
	}
	if got := c.TenantBytes("big"); got != 240 {
		t.Fatalf("big tenant bytes = %d, want 240 (must not be evicted)", got)
	}
	// small's coldest (block 0) is gone; 1 and 2 remain.
	if _, ok := c.Get(key("small", 0)); ok {
		t.Fatal("small/0 should have been evicted by the tenant cap")
	}
	for b := 1; b < 3; b++ {
		if _, ok := c.Get(key("small", b)); !ok {
			t.Fatalf("small/%d missing", b)
		}
	}
	// A single block larger than the tenant cap is served but not cached.
	huge := Key{Tenant: "small", Stream: "s", Block: 99}
	if _, err := c.GetOrFill(huge, fillOK(huge, 100)); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(huge); ok {
		t.Fatal("oversized block was cached past the tenant cap")
	}
}

// A fill error propagates to the caller and nothing is cached, so the
// next request retries the fill.
func TestCacheFillError(t *testing.T) {
	c := New(1<<20, nil)
	boom := errors.New("disk on fire")
	k := key("t", 0)
	if _, err := c.GetOrFill(k, func() ([]float64, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("got %v, want fill error", err)
	}
	if _, ok := c.Get(k); ok {
		t.Fatal("failed fill was cached")
	}
	if _, err := c.GetOrFill(k, fillOK(k, 10)); err != nil {
		t.Fatalf("retry after failed fill: %v", err)
	}
	st := c.Stats()
	if st.Misses != 2 || st.Fills != 1 {
		t.Fatalf("misses=%d fills=%d, want 2/1", st.Misses, st.Fills)
	}
}

// InvalidateStream removes exactly that stream's blocks.
func TestCacheInvalidateStream(t *testing.T) {
	c := New(1<<20, nil)
	for _, stream := range []string{"a", "b"} {
		for b := 0; b < 4; b++ {
			k := Key{Tenant: "t", Stream: stream, Block: b}
			if _, err := c.GetOrFill(k, fillOK(k, 10)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if n := c.InvalidateStream("t", "a"); n != 4 {
		t.Fatalf("invalidated %d entries, want 4", n)
	}
	for b := 0; b < 4; b++ {
		if _, ok := c.Get(Key{Tenant: "t", Stream: "a", Block: b}); ok {
			t.Fatalf("a/%d survived invalidation", b)
		}
		if _, ok := c.Get(Key{Tenant: "t", Stream: "b", Block: b}); !ok {
			t.Fatalf("b/%d wrongly invalidated", b)
		}
	}
	if st := c.Stats(); st.Entries != 4 || st.Bytes != 320 {
		t.Fatalf("entries=%d bytes=%d after invalidate, want 4/320", st.Entries, st.Bytes)
	}
}

// A zero-capacity cache still deduplicates concurrent fills but never
// retains entries.
func TestCacheZeroCapacity(t *testing.T) {
	c := New(0, nil)
	k := key("t", 0)
	if _, err := c.GetOrFill(k, fillOK(k, 10)); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("zero-cap cache retained entries: %+v", st)
	}
}

// The hammer: G goroutines × R rounds all demand the same small key
// set. The singleflight path must give *exactly one* fill per distinct
// key — the telemetry counters are the oracle — and every caller must
// receive the bytes belonging to the key it asked for.
func TestCacheConcurrentHammerExactlyOnceFill(t *testing.T) {
	const (
		goroutines = 32
		rounds     = 200
		nkeys      = 8
		blockLen   = 64
	)
	// Capacity holds every key: once filled, a key may never be evicted,
	// so exactly one fill per key is the hard invariant.
	c := New(int64(nkeys*blockLen*8), nil)
	var fillCalls [nkeys]atomic.Int64
	var wg sync.WaitGroup
	errc := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				b := (g + r) % nkeys
				k := key("t", b)
				got, err := c.GetOrFill(k, func() ([]float64, error) {
					fillCalls[b].Add(1)
					return blk(k, blockLen), nil
				})
				if err != nil {
					errc <- err
					return
				}
				want := blk(k, blockLen)
				for i := range want {
					if got[i] != want[i] {
						errc <- fmt.Errorf("key %v served wrong data at %d", k, i)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	for b := range fillCalls {
		if n := fillCalls[b].Load(); n != 1 {
			t.Fatalf("key %d filled %d times, want exactly 1", b, n)
		}
	}
	st := c.Stats()
	if st.Fills != nkeys {
		t.Fatalf("telemetry fills = %d, want %d", st.Fills, nkeys)
	}
	if st.Misses != nkeys {
		t.Fatalf("telemetry misses = %d, want %d (every non-leader must hit or dedup-wait)", st.Misses, nkeys)
	}
	total := st.Hits + st.Misses + st.DedupWaits
	if want := uint64(goroutines * rounds); total != want {
		t.Fatalf("hits+misses+dedupWaits = %d, want %d lookups accounted", total, want)
	}
	if st.Evictions != 0 {
		t.Fatalf("evictions = %d, want 0 (capacity holds the whole key set)", st.Evictions)
	}
}

// Concurrent waiters on a failing fill all receive the leader's error,
// and the retry after completion runs a fresh fill.
func TestCacheConcurrentFillErrorShared(t *testing.T) {
	c := New(1<<20, nil)
	boom := errors.New("fill failed")
	k := key("t", 7)
	release := make(chan struct{})
	var calls atomic.Int64

	const waiters = 16
	var wg sync.WaitGroup
	errs := make([]error, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = c.GetOrFill(k, func() ([]float64, error) {
				calls.Add(1)
				<-release
				return nil, boom
			})
		}(i)
	}
	// Wait until the leader is inside the fill and all other callers are
	// parked on its flight, then release.
	for {
		st := c.Stats()
		if st.Misses >= 1 && st.DedupWaits >= waiters-1 {
			break
		}
	}
	close(release)
	wg.Wait()
	for i, err := range errs {
		if !errors.Is(err, boom) {
			t.Fatalf("waiter %d: got %v, want shared fill error", i, err)
		}
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("failing fill ran %d times, want 1", n)
	}
	if _, err := c.GetOrFill(k, fillOK(k, 4)); err != nil {
		t.Fatalf("fresh fill after shared failure: %v", err)
	}
}
