// Package blockcache is pastrid's hot-block cache: a byte-capped LRU
// of decoded float64 blocks with per-tenant sub-caps and
// singleflight-style fill deduplication.
//
// The cache sits between the HTTP block-read path and the on-disk
// store. Under a heavy random-read fleet the same hot block is often
// requested by many readers at once; without deduplication each miss
// would decode the block once per waiter. GetOrFill guarantees
// *exactly one* fill per (key, miss) regardless of how many readers
// pile onto it — concurrent requesters of the same missing key block
// on the leader's fill and share its result. The telemetry counters
// (Hits/Misses/Fills/DedupWaits/Evictions) are exact, which is what
// lets the hammer tests use them as an exactly-once oracle.
//
// Eviction is least-recently-used by byte size: inserting past the
// global capacity (or the key's tenant sub-cap) evicts from the cold
// end until the cache fits. Entries are immutable once inserted —
// readers receive a shared slice and must not write into it (the
// server copies into the response writer, never mutates).
package blockcache

import (
	"container/list"
	"fmt"
	"sync"

	"repro/internal/telemetry"
	"repro/internal/telemetry/trace"
)

// Key identifies one decoded block.
type Key struct {
	Tenant string
	Stream string
	Block  int
}

// entry is one resident cache line.
type entry struct {
	key  Key
	data []float64
	elem *list.Element // position in the global LRU list
}

// flight is one in-progress fill; waiters block on done.
type flight struct {
	done chan struct{}
	data []float64
	err  error
}

// Stats is a point-in-time view of the cache counters.
type Stats struct {
	Hits       uint64 `json:"hits"`
	Misses     uint64 `json:"misses"`
	Fills      uint64 `json:"fills"`
	DedupWaits uint64 `json:"dedup_waits"`
	Evictions  uint64 `json:"evictions"`
	Entries    int    `json:"entries"`
	Bytes      int64  `json:"bytes"`
}

// HitRate returns hits / (hits + misses), or 0 before any lookup.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Cache is the LRU. All methods are safe for concurrent use.
type Cache struct {
	capBytes    int64
	tenantCaps  map[string]int64
	mu          sync.Mutex
	entries     map[Key]*entry
	lru         *list.List // front = most recent, back = eviction candidate
	bytes       int64
	tenantBytes map[string]int64
	flights     map[Key]*flight

	hits       telemetry.Counter
	misses     telemetry.Counter
	fills      telemetry.Counter
	dedupWaits telemetry.Counter
	evictions  telemetry.Counter
}

// New returns a cache holding at most capBytes of decoded block data
// (8 bytes per float64; a non-positive cap disables caching but keeps
// the singleflight dedup). tenantCaps optionally sub-caps individual
// tenants; entries absent from the map share only the global cap.
func New(capBytes int64, tenantCaps map[string]int64) *Cache {
	caps := make(map[string]int64, len(tenantCaps))
	for t, c := range tenantCaps {
		caps[t] = c
	}
	return &Cache{
		capBytes:    capBytes,
		tenantCaps:  caps,
		entries:     make(map[Key]*entry),
		lru:         list.New(),
		tenantBytes: make(map[string]int64),
		flights:     make(map[Key]*flight),
	}
}

func blockBytes(data []float64) int64 { return int64(len(data)) * 8 }

// GetOrFill returns the cached block for k, or runs fill exactly once
// (across all concurrent callers of the same key) and caches its
// result. A fill error is returned to the leader and every waiter, and
// nothing is cached. The returned slice is shared — callers must treat
// it as read-only.
func (c *Cache) GetOrFill(k Key, fill func() ([]float64, error)) ([]float64, error) {
	return c.GetOrFillTraced(k, nil, func(*trace.Span) ([]float64, error) { return fill() })
}

// GetOrFillTraced is GetOrFill with request tracing: the lookup
// outcome (hit, dedup_wait or miss) is annotated onto sp, waiters
// record a cache.dedup_wait child span covering the block on the
// leader, and the leader's fill runs under a cache.fill child span
// which is passed to fill so the store can attach its own children.
// A nil sp (or a non-recording one) disables all of it.
func (c *Cache) GetOrFillTraced(k Key, sp *trace.Span, fill func(*trace.Span) ([]float64, error)) ([]float64, error) {
	c.mu.Lock()
	if e, ok := c.entries[k]; ok {
		c.lru.MoveToFront(e.elem)
		c.mu.Unlock()
		c.hits.Add(1)
		sp.Annotate("cache_outcome", "hit")
		return e.data, nil
	}
	if fl, ok := c.flights[k]; ok {
		c.mu.Unlock()
		c.dedupWaits.Add(1)
		sp.Annotate("cache_outcome", "dedup_wait")
		wsp := sp.StartChild("cache.dedup_wait")
		<-fl.done
		wsp.End()
		if fl.err != nil {
			return nil, fl.err
		}
		// The leader's result may already have been evicted again;
		// returning it directly is still coherent (it was the block's
		// decoded bytes). Sharing it avoids a refill stampede.
		return fl.data, nil
	}
	// This caller is the leader for k.
	fl := &flight{done: make(chan struct{})}
	c.flights[k] = fl
	c.mu.Unlock()
	c.misses.Add(1)
	sp.Annotate("cache_outcome", "miss")

	fsp := sp.StartChild("cache.fill")
	data, err := fill(fsp)
	if err != nil {
		fsp.SetError(err)
	}
	fsp.End()
	fl.data, fl.err = data, err
	if err == nil {
		c.fills.Add(1)
		c.insert(k, data)
	}
	c.mu.Lock()
	delete(c.flights, k)
	c.mu.Unlock()
	close(fl.done)
	return data, err
}

// Get returns the cached block without filling.
func (c *Cache) Get(k Key) ([]float64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[k]
	if !ok {
		return nil, false
	}
	c.lru.MoveToFront(e.elem)
	return e.data, true
}

// insert adds a filled block and evicts until caps hold.
func (c *Cache) insert(k Key, data []float64) {
	size := blockBytes(data)
	if c.capBytes <= 0 || size > c.capBytes {
		return // caching disabled, or a single block larger than the cache
	}
	if tc, ok := c.tenantCaps[k.Tenant]; ok && tc > 0 && size > tc {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[k]; ok {
		return // raced with another insert of the same key
	}
	e := &entry{key: k, data: data}
	e.elem = c.lru.PushFront(e)
	c.entries[k] = e
	c.bytes += size
	c.tenantBytes[k.Tenant] += size
	for c.bytes > c.capBytes {
		if !c.evictOldestLocked(nil) {
			break
		}
	}
	if tc, ok := c.tenantCaps[k.Tenant]; ok && tc > 0 {
		tenant := k.Tenant
		for c.tenantBytes[tenant] > tc {
			if !c.evictOldestLocked(&tenant) {
				break
			}
		}
	}
}

// evictOldestLocked removes the least-recently-used entry — of one
// tenant when tenant is non-nil, globally otherwise. Returns false
// when nothing evictable remains.
func (c *Cache) evictOldestLocked(tenant *string) bool {
	for el := c.lru.Back(); el != nil; el = el.Prev() {
		e := el.Value.(*entry)
		if tenant != nil && e.key.Tenant != *tenant {
			continue
		}
		c.removeLocked(e)
		c.evictions.Add(1)
		return true
	}
	return false
}

func (c *Cache) removeLocked(e *entry) {
	c.lru.Remove(e.elem)
	delete(c.entries, e.key)
	size := blockBytes(e.data)
	c.bytes -= size
	c.tenantBytes[e.key.Tenant] -= size
	if c.tenantBytes[e.key.Tenant] <= 0 {
		delete(c.tenantBytes, e.key.Tenant)
	}
}

// InvalidateStream drops every cached block of one stream (used on
// delete so a re-uploaded id can never serve stale blocks).
func (c *Cache) InvalidateStream(tenant, stream string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for el := c.lru.Back(); el != nil; {
		prev := el.Prev()
		e := el.Value.(*entry)
		if e.key.Tenant == tenant && e.key.Stream == stream {
			c.removeLocked(e)
			n++
		}
		el = prev
	}
	return n
}

// Keys returns the resident keys from most to least recently used —
// the oracle for eviction-order tests.
func (c *Cache) Keys() []Key {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Key, 0, c.lru.Len())
	for el := c.lru.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*entry).key)
	}
	return out
}

// TenantBytes returns the resident bytes attributed to one tenant.
func (c *Cache) TenantBytes(tenant string) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.tenantBytes[tenant]
}

// Stats returns the current counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	entries := len(c.entries)
	bytes := c.bytes
	c.mu.Unlock()
	return Stats{
		Hits:       c.hits.Load(),
		Misses:     c.misses.Load(),
		Fills:      c.fills.Load(),
		DedupWaits: c.dedupWaits.Load(),
		Evictions:  c.evictions.Load(),
		Entries:    entries,
		Bytes:      bytes,
	}
}

// String summarizes the cache for logs.
func (c *Cache) String() string {
	st := c.Stats()
	return fmt.Sprintf("blockcache{entries=%d bytes=%d hit_rate=%.3f}", st.Entries, st.Bytes, st.HitRate())
}
