package dataset

import (
	"math"
	"testing"

	"repro/internal/basis"
	"repro/internal/eri"
)

func TestPaperMolecules(t *testing.T) {
	for _, name := range Names {
		mol, err := PaperMolecule(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(mol.HeavyAtoms()) < 50 {
			t.Errorf("%s: only %d heavy atoms — cluster missing?", name, len(mol.HeavyAtoms()))
		}
	}
	if _, err := PaperMolecule("unobtainium"); err == nil {
		t.Error("unknown molecule accepted")
	}
}

// Cluster copies must stay at van-der-Waals contact: no inter-copy atom
// pair closer than ~2.0 Å (collisions would make the ERI stream
// unphysical).
func TestClusterPackingPhysical(t *testing.T) {
	sizes := map[string]int{"alanine": 33, "benzene": 12, "glutamine": 20}
	for _, name := range Names {
		mol, err := PaperMolecule(name)
		if err != nil {
			t.Fatal(err)
		}
		copySize := sizes[name]
		minGap := math.Inf(1)
		for i := 0; i < len(mol.Atoms); i++ {
			for j := i + 1; j < len(mol.Atoms); j++ {
				if i/copySize == j/copySize {
					continue
				}
				d := mol.Atoms[i].Pos.Sub(mol.Atoms[j].Pos).Norm() / basis.AngstromToBohr
				if d < minGap {
					minGap = d
				}
			}
		}
		if minGap < 2.0 {
			t.Errorf("%s: inter-copy gap %.2f Å < 2.0", name, minGap)
		}
		if minGap > 6.0 {
			t.Errorf("%s: inter-copy gap %.2f Å — packing too loose to be condensed-phase-like", name, minGap)
		}
	}
}

func TestSpecString(t *testing.T) {
	s := Spec{Molecule: "benzene", L: 2}
	if got := s.String(); got != "benzene,(dd|dd)" {
		t.Fatalf("String = %q", got)
	}
	s.L = 3
	if got := s.String(); got != "benzene,(ff|ff)" {
		t.Fatalf("String = %q", got)
	}
}

func TestGetCachesAndRoundTrips(t *testing.T) {
	if testing.Short() {
		t.Skip("dataset generation is seconds-long")
	}
	spec := Spec{Molecule: "benzene", L: 2, MaxBlocks: 40}
	ds1, err := Get(spec)
	if err != nil {
		t.Fatal(err)
	}
	if ds1.Blocks != 40 || ds1.NumSB != 36 || ds1.SBSize != 36 {
		t.Fatalf("unexpected geometry: %d blocks %dx%d", ds1.Blocks, ds1.NumSB, ds1.SBSize)
	}
	// Second Get must hit the in-memory cache (same pointer).
	ds2, err := Get(spec)
	if err != nil {
		t.Fatal(err)
	}
	if ds1 != ds2 {
		t.Fatal("in-memory cache miss")
	}
	// Drop the in-memory cache but keep disk; data must round-trip
	// bit-exactly through the file format.
	memMu.Lock()
	memory = map[string]*eri.Dataset{}
	memMu.Unlock()
	ds3, err := Get(spec)
	if err != nil {
		t.Fatal(err)
	}
	if ds3 == ds1 {
		t.Fatal("expected a fresh load, got the old pointer")
	}
	if ds3.Name != ds1.Name || ds3.Blocks != ds1.Blocks ||
		ds3.NumSB != ds1.NumSB || ds3.SBSize != ds1.SBSize {
		t.Fatalf("metadata mismatch after disk round trip: %+v vs %+v", ds3, ds1)
	}
	for i := range ds1.Data {
		if math.Float64bits(ds3.Data[i]) != math.Float64bits(ds1.Data[i]) {
			t.Fatalf("data[%d] not bit-exact after disk round trip", i)
		}
	}
}

func TestLoadCacheRejectsCorrupt(t *testing.T) {
	if _, err := loadCache("no-such-key"); err == nil {
		t.Error("missing cache file accepted")
	}
}
