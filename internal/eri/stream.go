package eri

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/basis"
)

// StreamBlocks evaluates same-L shell quartets in parallel and hands
// each block, in quartet order, to emit — the streaming analog of
// ComputeQuartets for pipelines that compress integrals as they are
// generated instead of materializing the whole dataset first (the
// compute-and-compress coupling of the FPGA ERI pipeline, in software).
// Feeding emit into a ParallelStreamWriter.WriteBlock produces a stream
// byte-identical to batch-compressing the ComputeQuartets dataset; see
// TestStreamBlocksMatchesCompute.
//
// Memory stays bounded: at most ~2×workers block buffers exist at any
// time, recycled through a pool once emit returns — the buffer handed
// to emit is only valid for the duration of the call. emit runs on one
// goroutine, in block order (a pending map holds the few
// out-of-order completions, exactly like ParallelStreamWriter's
// sequencer). A non-nil error from emit cancels the remaining work and
// is returned.
func StreamBlocks(prepared []*PreparedShell, quartets []Quartet, workers int, emit func(b int, block []float64) error) error {
	if len(prepared) == 0 || len(quartets) == 0 {
		return fmt.Errorf("eri: nothing to compute")
	}
	l := prepared[0].Shell.L
	nc := basis.NCart(l)
	blockLen := nc * nc * nc * nc

	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(quartets) {
		workers = len(quartets)
	}
	if workers < 1 {
		workers = 1
	}

	pool := sync.Pool{New: func() any {
		buf := make([]float64, blockLen)
		return &buf
	}}

	type done struct {
		b   int
		buf *[]float64
	}
	// results is sized so a worker finishing far ahead of the sequencer
	// can always deposit and move on; the ticket channel below is what
	// actually bounds the number of in-flight buffers.
	results := make(chan done, len(quartets))
	// Each in-flight block holds one ticket from compute start until the
	// sequencer has emitted it, capping live buffers at 2×workers.
	tickets := make(chan struct{}, 2*workers)
	cancel := make(chan struct{})
	next := make(chan int)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			en := NewEngine(l)
			for b := range next {
				q := quartets[b]
				buf := pool.Get().(*[]float64)
				en.Quartet(prepared[q[0]], prepared[q[1]], prepared[q[2]], prepared[q[3]], *buf)
				results <- done{b, buf}
			}
		}()
	}

	// Feeder: one ticket per dispatched block; stops on cancellation.
	go func() {
		defer close(next)
		for b := range quartets {
			select {
			case tickets <- struct{}{}:
			case <-cancel:
				return
			}
			select {
			case next <- b:
			case <-cancel:
				return
			}
		}
	}()

	// Sequencer: deliver in block order, recycling buffers after emit.
	var err error
	pending := make(map[int]*[]float64)
	want := 0
	for d := range results {
		pending[d.b] = d.buf
		for buf, ok := pending[want]; ok; buf, ok = pending[want] {
			delete(pending, want)
			if err = emit(want, *buf); err != nil {
				close(cancel)
				break
			}
			pool.Put(buf)
			<-tickets
			want++
		}
		if err != nil || want == len(quartets) {
			break
		}
	}
	// Drain: workers may still be computing dispatched blocks; wait for
	// them, then empty the results channel so nothing leaks.
	go func() {
		wg.Wait()
		close(results)
	}()
	for range results {
	}
	if err != nil {
		return err
	}
	return nil
}
