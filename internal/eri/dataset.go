package eri

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"repro/internal/basis"
)

// This file turns the quartet engine into a GAMESS-style dataset
// producer: canonical shell-quartet enumeration, deterministic
// down-sampling (the paper sampled its multi-TB datasets down to 2 GB),
// and parallel block generation.

// Quartet identifies one shell quartet (AB|CD) by shell indices.
type Quartet [4]int

// EnumerateQuartets lists the canonical quartets over nShells shells:
// i ≤ j, k ≤ l, (i,j) ≤ (k,l) in pair order — the standard 8-fold
// permutational symmetry reduction quantum chemistry codes use.
func EnumerateQuartets(nShells int) []Quartet {
	var out []Quartet
	for i := 0; i < nShells; i++ {
		for j := i; j < nShells; j++ {
			for k := i; k < nShells; k++ {
				lStart := k
				if k == i {
					lStart = j
				}
				for l := lStart; l < nShells; l++ {
					out = append(out, Quartet{i, j, k, l})
				}
			}
		}
	}
	return out
}

// SampleQuartets deterministically down-samples qs to at most maxBlocks
// quartets with an even stride, preserving order. maxBlocks ≤ 0 keeps
// everything.
func SampleQuartets(qs []Quartet, maxBlocks int) []Quartet {
	if maxBlocks <= 0 || len(qs) <= maxBlocks {
		return qs
	}
	out := make([]Quartet, 0, maxBlocks)
	stride := float64(len(qs)) / float64(maxBlocks)
	for i := 0; i < maxBlocks; i++ {
		out = append(out, qs[int(float64(i)*stride)])
	}
	return out
}

// SelectQuartets returns up to maxBlocks canonical quartets surviving
// Schwarz screening at tol (negative tol disables screening), sampled
// with an even stride over the surviving population — without
// materializing the full O(P²) quartet list. The surviving population is
// enumerated over shell pairs sorted by descending Schwarz factor: for
// each pair rank r, the partners s ≥ r with Q_r·Q_s ≥ tol form a prefix,
// so counting and index-addressing are O(P log P).
func SelectQuartets(prepared []*PreparedShell, maxL int, tol float64, maxBlocks int) ([]Quartet, error) {
	type pairInfo struct {
		i, j int
		q    float64
	}
	var pairs []pairInfo
	bounds := SchwarzBounds(prepared, maxL)
	for i := 0; i < len(prepared); i++ {
		for j := i; j < len(prepared); j++ {
			pairs = append(pairs, pairInfo{i, j, bounds[[2]int{i, j}]})
		}
	}
	sort.Slice(pairs, func(a, b int) bool {
		if pairs[a].q != pairs[b].q { //lint:floatcmp-ok sort key: identical stored values compare equal, ties break on indices
			return pairs[a].q > pairs[b].q
		}
		if pairs[a].i != pairs[b].i {
			return pairs[a].i < pairs[b].i
		}
		return pairs[a].j < pairs[b].j
	})
	P := len(pairs)
	// rowCount[r] = number of partners s in [r, P) with Q_r·Q_s ≥ tol.
	rowStart := make([]uint64, P+1)
	for r := 0; r < P; r++ {
		count := 0
		if tol <= 0 {
			count = P - r
		} else if pairs[r].q > 0 {
			// Largest prefix of the descending-Q list meeting the bound.
			count = sort.Search(P-r, func(k int) bool {
				return pairs[r].q*pairs[r+k].q < tol
			})
		}
		rowStart[r+1] = rowStart[r] + uint64(count)
	}
	total := rowStart[P]
	if total == 0 {
		return nil, fmt.Errorf("eri: screening removed every quartet (tol %g)", tol)
	}
	n := total
	if maxBlocks > 0 && uint64(maxBlocks) < n {
		n = uint64(maxBlocks)
	}
	out := make([]Quartet, 0, n)
	stride := float64(total) / float64(n)
	row := 0
	for k := uint64(0); k < n; k++ {
		idx := uint64(float64(k) * stride)
		for rowStart[row+1] <= idx {
			row++
		}
		s := row + int(idx-rowStart[row])
		out = append(out, Quartet{pairs[row].i, pairs[row].j, pairs[s].i, pairs[s].j})
	}
	return out, nil
}

// Dataset is a generated stream of same-geometry ERI blocks, ready for
// compression: Data holds Blocks consecutive blocks, each a 4-D shell
// quartet tensor of NumSB·SBSize doubles in GAMESS layout.
type Dataset struct {
	Name   string
	Data   []float64
	Blocks int
	NumSB  int // Na·Nb
	SBSize int // Nc·Nd
}

// BlockSizeBytes returns the raw size of one block in bytes.
func (d *Dataset) BlockSizeBytes() int { return d.NumSB * d.SBSize * 8 }

// SizeBytes returns the raw size of the whole dataset in bytes.
func (d *Dataset) SizeBytes() int { return len(d.Data) * 8 }

// Block returns a view of block b.
func (d *Dataset) Block(b int) []float64 {
	n := d.NumSB * d.SBSize
	return d.Data[b*n : (b+1)*n]
}

// GenerateOptions controls dataset generation.
type GenerateOptions struct {
	MaxBlocks int // cap on quartet blocks; ≤ 0 = all canonical quartets
	Workers   int // parallel engines; ≤ 0 = GOMAXPROCS
	// ScreenTol drops quartets whose Schwarz bound √(ab|ab)·√(cd|cd)
	// falls below it, as production integral codes do before computing
	// or storing a block. 0 applies DefaultScreenTol; set negative to
	// disable screening.
	ScreenTol float64
}

// DefaultScreenTol mirrors a typical GAMESS integral cutoff: blocks
// whose largest element is guaranteed below this never reach the ERI
// stream.
const DefaultScreenTol = 1e-11

// SchwarzBounds returns, for every shell pair (i ≤ j), the Schwarz
// factor Q_ij = √(max_ab (ab|ab)) used for rigorous ERI screening:
// |(ab|cd)| ≤ Q_ij·Q_kl.
func SchwarzBounds(prepared []*PreparedShell, maxL int) map[[2]int]float64 {
	n := len(prepared)
	type pair struct{ i, j int }
	pairs := make([]pair, 0, n*(n+1)/2)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			pairs = append(pairs, pair{i, j})
		}
	}
	vals := make([]float64, len(pairs))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(pairs) {
		workers = len(pairs)
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	next := make(chan int, len(pairs))
	for k := range pairs {
		next <- k
	}
	close(next)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			en := NewEngine(maxL)
			var buf []float64
			for k := range next {
				A, B := prepared[pairs[k].i], prepared[pairs[k].j]
				nAB := len(A.Comps) * len(B.Comps)
				if cap(buf) < nAB*nAB {
					buf = make([]float64, nAB*nAB)
				}
				block := buf[:nAB*nAB]
				en.Quartet(A, B, A, B, block)
				maxDiag := 0.0
				for d := 0; d < nAB; d++ {
					if v := block[d*nAB+d]; v > maxDiag {
						maxDiag = v
					}
				}
				if maxDiag < 0 {
					maxDiag = 0
				}
				vals[k] = math.Sqrt(maxDiag)
			}
		}()
	}
	wg.Wait()
	out := make(map[[2]int]float64, len(pairs))
	for k, p := range pairs {
		out[[2]int{p.i, p.j}] = vals[k]
	}
	return out
}

// GeneratePure computes the (ll|ll) dataset for a molecule: l = 2 gives
// the paper's (dd|dd) configuration, l = 3 gives (ff|ff).
func GeneratePure(mol basis.Molecule, l int, opt GenerateOptions) (*Dataset, error) {
	shells, err := basis.PureShells(mol, l)
	if err != nil {
		return nil, err
	}
	name := fmt.Sprintf("%s (%s%s|%s%s)", mol.Name,
		basis.ShellLetter(l), basis.ShellLetter(l), basis.ShellLetter(l), basis.ShellLetter(l))
	return GenerateBlocks(name, shells, opt)
}

// GenerateBlocks computes all (sampled) canonical shell-quartet blocks
// for a set of same-L shells in parallel. All shells must share one
// angular momentum so every block has identical geometry (the PaSTRI
// stream format requires fixed block dims).
func GenerateBlocks(name string, shells []basis.Shell, opt GenerateOptions) (*Dataset, error) {
	if len(shells) == 0 {
		return nil, fmt.Errorf("eri: no shells")
	}
	l := shells[0].L
	for i, s := range shells {
		if s.L != l {
			return nil, fmt.Errorf("eri: shell %d has L=%d, want uniform L=%d", i, s.L, l)
		}
	}
	prepared := make([]*PreparedShell, len(shells))
	for i, s := range shells {
		prepared[i] = Prepare(s)
	}
	tol := opt.ScreenTol
	if tol == 0 { //lint:floatcmp-ok unset-option sentinel: the zero value requests the default
		tol = DefaultScreenTol
	}
	quartets, err := SelectQuartets(prepared, l, tol, opt.MaxBlocks)
	if err != nil {
		return nil, err
	}
	return ComputeQuartets(name, prepared, quartets, opt.Workers)
}

// ComputeQuartets evaluates an explicit list of same-L shell quartets in
// parallel. This is the pure integral-computation stage, separated from
// screening/selection so callers (e.g. the Fig. 11 generation-rate
// measurement) can time it on its own.
func ComputeQuartets(name string, prepared []*PreparedShell, quartets []Quartet, workers int) (*Dataset, error) {
	if len(prepared) == 0 || len(quartets) == 0 {
		return nil, fmt.Errorf("eri: nothing to compute")
	}
	l := prepared[0].Shell.L
	nc := basis.NCart(l)
	blockLen := nc * nc * nc * nc

	ds := &Dataset{
		Name:   name,
		Data:   make([]float64, len(quartets)*blockLen),
		Blocks: len(quartets),
		NumSB:  nc * nc,
		SBSize: nc * nc,
	}

	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(quartets) {
		workers = len(quartets)
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	next := make(chan int, len(quartets))
	for b := range quartets {
		next <- b
	}
	close(next)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			en := NewEngine(l)
			for b := range next {
				q := quartets[b]
				en.Quartet(prepared[q[0]], prepared[q[1]], prepared[q[2]], prepared[q[3]],
					ds.Data[b*blockLen:(b+1)*blockLen])
			}
		}()
	}
	wg.Wait()
	return ds, nil
}

// MixedBlock is one shell-quartet block from a mixed-angular-momentum
// configuration, carrying its own tensor dimensions.
type MixedBlock struct {
	Q              Quartet
	Na, Nb, Nc, Nd int
	Data           []float64
}

// NumSB returns the sub-block count Na·Nb.
func (m *MixedBlock) NumSB() int { return m.Na * m.Nb }

// SBSize returns the sub-block size Nc·Nd.
func (m *MixedBlock) SBSize() int { return m.Nc * m.Nd }

// ComputeMixedBlocks evaluates quartets over shells of arbitrary
// (possibly differing) angular momenta — the paper's hybrid
// configurations ((df|fd), etc.). Unlike ComputeQuartets, block shapes
// vary, so the result is a list of self-describing blocks in quartet
// order.
func ComputeMixedBlocks(prepared []*PreparedShell, quartets []Quartet, workers int) ([]MixedBlock, error) {
	if len(prepared) == 0 || len(quartets) == 0 {
		return nil, fmt.Errorf("eri: nothing to compute")
	}
	maxL := 0
	for _, p := range prepared {
		if p.Shell.L > maxL {
			maxL = p.Shell.L
		}
	}
	out := make([]MixedBlock, len(quartets))
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(quartets) {
		workers = len(quartets)
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	next := make(chan int, len(quartets))
	for b := range quartets {
		next <- b
	}
	close(next)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			en := NewEngine(maxL)
			for b := range next {
				q := quartets[b]
				A, B, C, D := prepared[q[0]], prepared[q[1]], prepared[q[2]], prepared[q[3]]
				blk := MixedBlock{
					Q:  q,
					Na: len(A.Comps), Nb: len(B.Comps),
					Nc: len(C.Comps), Nd: len(D.Comps),
				}
				blk.Data = make([]float64, blk.NumSB()*blk.SBSize())
				en.Quartet(A, B, C, D, blk.Data)
				out[b] = blk
			}
		}()
	}
	wg.Wait()
	return out, nil
}

// AllERIs computes the complete two-electron integral tensor (ij|kl)
// over a (small) basis set, exploiting the 8-fold permutational
// symmetry. The result is a flat n⁴ tensor in chemist notation,
// addressed as eri[((i·n+j)·n+k)·n+l]. Intended for the Hartree–Fock
// substrate; memory grows as n⁴.
func AllERIs(bs *basis.BasisSet) []float64 {
	n := bs.NBF()
	out := make([]float64, n*n*n*n)
	prepared := make([]*PreparedShell, bs.NShells())
	maxL := 0
	for i := range prepared {
		prepared[i] = Prepare(bs.Shells[i])
		if bs.Shells[i].L > maxL {
			maxL = bs.Shells[i].L
		}
	}
	quartets := EnumerateQuartets(bs.NShells())

	workers := runtime.GOMAXPROCS(0)
	if workers > len(quartets) {
		workers = len(quartets)
	}
	var wg sync.WaitGroup
	next := make(chan Quartet, len(quartets))
	for _, q := range quartets {
		next <- q
	}
	close(next)
	var mu sync.Mutex
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			en := NewEngine(maxL)
			var buf []float64
			for q := range next {
				A, B, C, D := prepared[q[0]], prepared[q[1]], prepared[q[2]], prepared[q[3]]
				size := BlockSize(A, B, C, D)
				if cap(buf) < size {
					buf = make([]float64, size)
				}
				block := buf[:size]
				en.Quartet(A, B, C, D, block)
				mu.Lock()
				scatterQuartet(out, n, bs, q, A, B, C, D, block)
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	return out
}

// scatterQuartet writes one computed block into the full tensor at all
// 8 permutationally equivalent positions.
func scatterQuartet(out []float64, n int, bs *basis.BasisSet, q Quartet,
	A, B, C, D *PreparedShell, block []float64) {
	offA, offB, offC, offD := bs.Offset(q[0]), bs.Offset(q[1]), bs.Offset(q[2]), bs.Offset(q[3])
	nB, nC, nD := len(B.Comps), len(C.Comps), len(D.Comps)
	set := func(i, j, k, l int, v float64) {
		out[((i*n+j)*n+k)*n+l] = v
		out[((j*n+i)*n+k)*n+l] = v
		out[((i*n+j)*n+l)*n+k] = v
		out[((j*n+i)*n+l)*n+k] = v
		out[((k*n+l)*n+i)*n+j] = v
		out[((l*n+k)*n+i)*n+j] = v
		out[((k*n+l)*n+j)*n+i] = v
		out[((l*n+k)*n+j)*n+i] = v
	}
	for a := 0; a < len(A.Comps); a++ {
		for b := 0; b < nB; b++ {
			for c := 0; c < nC; c++ {
				for d := 0; d < nD; d++ {
					v := block[((a*nB+b)*nC+c)*nD+d]
					set(offA+a, offB+b, offC+c, offD+d, v)
				}
			}
		}
	}
}
