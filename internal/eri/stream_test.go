package eri

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/basis"
	"repro/internal/core"
)

// streamFixture builds a small set of prepared p-shells and the full
// canonical quartet list over them.
func streamFixture(nShells, l int, seed int64) ([]*PreparedShell, []Quartet) {
	rng := rand.New(rand.NewSource(seed))
	prepared := make([]*PreparedShell, nShells)
	for i := range prepared {
		prepared[i] = Prepare(basis.Shell{
			Center: basis.Vec3{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()},
			L:      l,
			Exps:   []float64{0.5 + rng.Float64()},
			Coefs:  []float64{1},
		})
	}
	return prepared, EnumerateQuartets(nShells)
}

// TestStreamBlocksMatchesCompute: streaming the quartets through
// StreamBlocks into a ParallelStreamWriter must produce exactly the
// bytes of serially stream-writing the batch ComputeQuartets dataset —
// the generate-and-compress pipeline has no seams. (Streams carry the
// block-count sentinel instead of batch Compress's materialized count,
// so the byte oracle is the serial StreamWriter; the decode check
// closes the loop back to the batch data.)
func TestStreamBlocksMatchesCompute(t *testing.T) {
	const l = 1
	prepared, quartets := streamFixture(3, l, 11)

	ds, err := ComputeQuartets("stream-fixture", prepared, quartets, 4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.Defaults(ds.NumSB, ds.SBSize, 1e-10)
	var ref bytes.Buffer
	rw, err := core.NewStreamWriter(&ref, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for b := 0; b < ds.Blocks; b++ {
		if err := rw.WriteBlock(ds.Block(b)); err != nil {
			t.Fatal(err)
		}
	}
	if err := rw.Close(); err != nil {
		t.Fatal(err)
	}
	batch := ref.Bytes()

	dec, err := core.Decompress(batch, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range ds.Data {
		if d := x - dec[i]; d > 1e-10 || d < -1e-10 {
			t.Fatalf("decoded stream violates EB at %d: %v vs %v", i, dec[i], x)
		}
	}

	for _, workers := range []int{1, 2, 4, 7} {
		var buf bytes.Buffer
		sw, err := core.NewParallelStreamWriter(&buf, cfg, workers)
		if err != nil {
			t.Fatal(err)
		}
		order := make([]int, 0, len(quartets))
		err = StreamBlocks(prepared, quartets, workers, func(b int, block []float64) error {
			order = append(order, b)
			return sw.WriteBlock(block)
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if err := sw.Close(); err != nil {
			t.Fatal(err)
		}
		for i, b := range order {
			if i != b {
				t.Fatalf("workers=%d: emit order broken: position %d got block %d", workers, i, b)
			}
		}
		if len(order) != len(quartets) {
			t.Fatalf("workers=%d: emitted %d blocks, want %d", workers, len(order), len(quartets))
		}
		if !bytes.Equal(buf.Bytes(), batch) {
			t.Fatalf("workers=%d: streamed compressed bytes differ from batch (%d vs %d bytes)",
				workers, buf.Len(), len(batch))
		}
	}
}

// TestStreamBlocksEmitError: an emit failure cancels the stream
// promptly and surfaces the error.
func TestStreamBlocksEmitError(t *testing.T) {
	prepared, quartets := streamFixture(3, 1, 12)
	wantErr := fmt.Errorf("sink full")
	calls := 0
	err := StreamBlocks(prepared, quartets, 4, func(b int, block []float64) error {
		calls++
		if b == 2 {
			return wantErr
		}
		return nil
	})
	if err != wantErr { //lint:errcmp-ok sentinel identity is the contract under test
		t.Fatalf("got err %v, want %v", err, wantErr)
	}
	if calls != 3 {
		t.Fatalf("emit called %d times, want 3 (blocks 0..2 in order)", calls)
	}
}

// TestStreamBlocksEmpty mirrors ComputeQuartets's contract.
func TestStreamBlocksEmpty(t *testing.T) {
	if err := StreamBlocks(nil, nil, 4, func(int, []float64) error { return nil }); err == nil {
		t.Fatal("want error for empty input")
	}
}
