package eri

import (
	"math"

	"repro/internal/basis"
)

// DipoleIntegrals computes the electric-dipole one-electron integrals
// ⟨a|x|b⟩, ⟨a|y|b⟩, ⟨a|z|b⟩ about the origin, as dense row-major n×n
// matrices. Together with the SCF density they give molecular dipole
// moments (see internal/hf properties).
//
// Along one dimension, x = x_B + B_x turns the moment into overlaps:
// ⟨i|x|j⟩ = S(i, j+1) + B_x·S(i, j), with S(i,j) = E_0^{ij}·√(π/p).
func DipoleIntegrals(bs *basis.BasisSet) (Dx, Dy, Dz []float64, n int) {
	n = bs.NBF()
	Dx = make([]float64, n*n)
	Dy = make([]float64, n*n)
	Dz = make([]float64, n*n)

	shells := make([]*PreparedShell, bs.NShells())
	for i := range shells {
		shells[i] = Prepare(bs.Shells[i])
	}
	var ex, ey, ez *ETable

	for si, A := range shells {
		for sj, B := range shells {
			if sj < si {
				continue
			}
			la, lb := A.Shell.L, B.Shell.L
			offA, offB := bs.Offset(si), bs.Offset(sj)
			ca, cb := A.Shell.Center, B.Shell.Center
			for pi, a := range A.Shell.Exps {
				for pj, b := range B.Shell.Exps {
					p := a + b
					ex = BuildE(la, lb+1, a, b, ca[0]-cb[0], ex)
					ey = BuildE(la, lb+1, a, b, ca[1]-cb[1], ey)
					ez = BuildE(la, lb+1, a, b, ca[2]-cb[2], ez)
					sqp := math.Sqrt(math.Pi / p)
					pref3 := sqp * sqp * sqp

					for ai, compA := range A.Comps {
						for bi, compB := range B.Comps {
							coef := A.Coefs[ai][pi] * B.Coefs[bi][pj] * pref3
							ia, ja := compA.Lx, compB.Lx
							ib, jb := compA.Ly, compB.Ly
							ic, jc := compA.Lz, compB.Lz
							sx := ex.At(ia, ja, 0)
							sy := ey.At(ib, jb, 0)
							sz := ez.At(ic, jc, 0)
							mx := ex.At(ia, ja+1, 0) + cb[0]*sx
							my := ey.At(ib, jb+1, 0) + cb[1]*sy
							mz := ez.At(ic, jc+1, 0) + cb[2]*sz

							r := offA + ai
							c := offB + bi
							Dx[r*n+c] += coef * mx * sy * sz
							Dy[r*n+c] += coef * sx * my * sz
							Dz[r*n+c] += coef * sx * sy * mz
						}
					}
				}
			}
		}
	}
	for r := 0; r < n; r++ {
		for c := r + 1; c < n; c++ {
			Dx[c*n+r] = Dx[r*n+c]
			Dy[c*n+r] = Dy[r*n+c]
			Dz[c*n+r] = Dz[r*n+c]
		}
	}
	return Dx, Dy, Dz, n
}
