package eri

import (
	"math"

	"repro/internal/basis"
)

// PreparedShell caches the per-Cartesian-component effective contraction
// coefficients of a shell so repeated quartet evaluations don't redo the
// normalization arithmetic.
type PreparedShell struct {
	Shell basis.Shell
	Comps []basis.CartComponent
	// Coefs[c][i] is the effective coefficient of primitive i for
	// component c (published coefficient × primitive norm × contraction
	// norm).
	Coefs [][]float64
}

// Prepare computes the cached form of a shell.
func Prepare(s basis.Shell) *PreparedShell {
	comps := basis.CartComponents(s.L)
	coefs := make([][]float64, len(comps))
	for c, comp := range comps {
		coefs[c] = s.ContractedCoefs(comp)
	}
	return &PreparedShell{Shell: s, Comps: comps, Coefs: coefs}
}

// Engine evaluates shell-quartet ERI blocks. It owns scratch tables and
// is not safe for concurrent use; create one Engine per goroutine.
type Engine struct {
	maxL   int
	rt     *RTable
	eBra   [3]*ETable
	eKet   [3]*ETable
	jtab   []float64 // flattened: ketPairs × braCube
	braIdx []int32   // scratch: bra Hermite box indices
	braW   []float64 // scratch: bra Hermite box weights
}

// NewEngine returns an engine supporting shells up to angular momentum
// maxL (3 = f suffices for the paper's datasets; 4 = g is supported).
func NewEngine(maxL int) *Engine {
	if maxL < 0 || 4*maxL > maxBoysOrder {
		panic("eri: unsupported maximum angular momentum") //lint:nopanic-ok programmer error: maxL is a construction-time constant
	}
	return &Engine{maxL: maxL, rt: NewRTable(4 * maxL)}
}

// BlockSize returns the number of integrals in the (AB|CD) block.
func BlockSize(a, b, c, d *PreparedShell) int {
	return len(a.Comps) * len(b.Comps) * len(c.Comps) * len(d.Comps)
}

// Quartet computes the shell-quartet ERI tensor (AB|CD) into out using
// the GAMESS-style layout out[((a·Nb+b)·Nc+c)·Nd+d] (Fig. 2b of the
// paper). out must have BlockSize(A,B,C,D) elements; it is overwritten.
func (en *Engine) Quartet(A, B, C, D *PreparedShell, out []float64) {
	la, lb, lc, ld := A.Shell.L, B.Shell.L, C.Shell.L, D.Shell.L
	if la > en.maxL || lb > en.maxL || lc > en.maxL || ld > en.maxL {
		panic("eri: shell angular momentum exceeds engine capacity") //lint:nopanic-ok programmer error: caller must size the engine for its basis set
	}
	nA, nB, nC, nD := len(A.Comps), len(B.Comps), len(C.Comps), len(D.Comps)
	if len(out) != nA*nB*nC*nD {
		panic("eri: output slice has wrong size") //lint:nopanic-ok programmer error: out must be BlockSize() long per the documented contract
	}
	for i := range out {
		out[i] = 0
	}

	lBra := la + lb
	lKet := lc + ld
	lTot := lBra + lKet
	braStride := lBra + 1
	braCube := braStride * braStride * braStride
	if cap(en.jtab) < nC*nD*braCube {
		en.jtab = make([]float64, nC*nD*braCube)
	}
	jtab := en.jtab[:nC*nD*braCube]

	ca, cb, cc, cd := A.Shell.Center, B.Shell.Center, C.Shell.Center, D.Shell.Center

	for i, ea := range A.Shell.Exps {
		for j, eb := range B.Shell.Exps {
			p := ea + eb
			var P basis.Vec3
			for d := 0; d < 3; d++ {
				P[d] = (ea*ca[d] + eb*cb[d]) / p
				en.eBra[d] = BuildE(la, lb, ea, eb, ca[d]-cb[d], en.eBra[d])
			}
			for k, ec := range C.Shell.Exps {
				for l, ed := range D.Shell.Exps {
					q := ec + ed
					var Q basis.Vec3
					for d := 0; d < 3; d++ {
						Q[d] = (ec*cc[d] + ed*cd[d]) / q
						en.eKet[d] = BuildE(lc, ld, ec, ed, cc[d]-cd[d], en.eKet[d])
					}
					alpha := p * q / (p + q)
					en.rt.Build(lTot, alpha, P[0]-Q[0], P[1]-Q[1], P[2]-Q[2])
					pref := 2 * math.Pow(math.Pi, 2.5) / (p * q * math.Sqrt(p+q))

					en.accumulate(A, B, C, D, i, j, k, l, pref,
						lBra, braStride, braCube, jtab, out)
				}
			}
		}
	}
}

// accumulate folds one primitive quadruple into out.
func (en *Engine) accumulate(A, B, C, D *PreparedShell, pi, pj, pk, pl int,
	pref float64, lBra, braStride, braCube int, jtab, out []float64) {

	nB, nC, nD := len(B.Comps), len(C.Comps), len(D.Comps)
	rt := en.rt
	rs := rt.stride

	// Phase 1: for every ket component pair (c,d), contract the ket
	// Hermite coefficients with R into J^{cd}_{tuv} over the bra cube.
	for c, compC := range C.Comps {
		exC, eyC, ezC := compC.Lx, compC.Ly, compC.Lz
		for d, compD := range D.Comps {
			exD, eyD, ezD := compD.Lx, compD.Ly, compD.Lz
			J := jtab[(c*nD+d)*braCube : (c*nD+d+1)*braCube]
			for z := range J {
				J[z] = 0
			}
			exRow := en.eKet[0].Row(exC, exD)
			eyRow := en.eKet[1].Row(eyC, eyD)
			ezRow := en.eKet[2].Row(ezC, ezD)
			for tau, ex := range exRow {
				if ex == 0 { //lint:floatcmp-ok sparsity skip: only exact zeros are skipped, which is always sound
					continue
				}
				for mu, ey := range eyRow {
					exy := ex * ey
					if exy == 0 { //lint:floatcmp-ok sparsity skip: exact zero product of Hermite coefficients
						continue
					}
					for nu, ez := range ezRow {
						w := exy * ez
						if w == 0 { //lint:floatcmp-ok sparsity skip: exact zero weight contributes nothing
							continue
						}
						if (tau+mu+nu)&1 == 1 {
							w = -w
						}
						// Add w·R[t+τ, u+μ, v+ν] over the bra range.
						for t := 0; t <= lBra; t++ {
							for u := 0; u <= lBra-t; u++ {
								n := lBra - t - u + 1
								off := (t+tau)*rs*rs + (u+mu)*rs + nu
								rowR := rt.data[off : off+n]
								off = t*braStride*braStride + u*braStride
								rowJ := J[off : off+n]
								for v := range rowJ {
									rowJ[v] += w * rowR[v]
								}
							}
						}
					}
				}
			}
		}
	}

	// Phase 2: contract bra Hermite coefficients with J and scatter into
	// the output tensor with the contraction coefficients. The bra
	// Hermite product list for a component pair (a,b) is independent of
	// (c,d), so it is materialized once into (index, weight) pairs.
	if cap(en.braIdx) < braCube {
		en.braIdx = make([]int32, braCube)
		en.braW = make([]float64, braCube)
	}
	for a, compA := range A.Comps {
		axA, ayA, azA := compA.Lx, compA.Ly, compA.Lz
		coefA := A.Coefs[a][pi]
		for b, compB := range B.Comps {
			axB, ayB, azB := compB.Lx, compB.Ly, compB.Lz
			coefAB := coefA * B.Coefs[b][pj] * pref
			base := (a*nB + b) * nC * nD

			exRow := en.eBra[0].Row(axA, axB)
			eyRow := en.eBra[1].Row(ayA, ayB)
			ezRow := en.eBra[2].Row(azA, azB)
			nw := 0
			for t, ex := range exRow {
				if ex == 0 { //lint:floatcmp-ok sparsity skip: only exact zeros are skipped, which is always sound
					continue
				}
				for u, ey := range eyRow {
					exy := ex * ey
					if exy == 0 { //lint:floatcmp-ok sparsity skip: exact zero product of Hermite coefficients
						continue
					}
					rowJ := t*braStride*braStride + u*braStride
					for v, ez := range ezRow {
						if w := exy * ez; w != 0 { //lint:floatcmp-ok sparsity skip: exact nonzero weights are kept
							en.braIdx[nw] = int32(rowJ + v)
							en.braW[nw] = w
							nw++
						}
					}
				}
			}
			braIdx := en.braIdx[:nw]
			braW := en.braW[:nw]

			for c := 0; c < nC; c++ {
				coefABC := coefAB * C.Coefs[c][pk]
				for d := 0; d < nD; d++ {
					J := jtab[(c*nD+d)*braCube:]
					sum := 0.0
					for k, idx := range braIdx {
						sum += braW[k] * J[idx]
					}
					out[base+c*nD+d] += coefABC * D.Coefs[d][pl] * sum
				}
			}
		}
	}
}
