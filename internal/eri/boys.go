// Package eri computes Gaussian molecular integrals from scratch using
// the McMurchie–Davidson scheme: the Boys function, Hermite expansion
// coefficients (E), Hermite Coulomb integrals (R), one-electron integrals
// (overlap, kinetic, nuclear attraction) and two-electron repulsion
// integrals (ERIs) over contracted Cartesian Gaussian shells.
//
// It stands in for the GAMESS ERI programs the paper compressed the
// output of: shell-quartet ERI blocks are produced in the same
// [i,j,k,l] 4-D tensor layout mapped to a 1-D array (Fig. 2), which is
// exactly what PaSTRI consumes.
package eri

import "math"

// maxBoysOrder is the highest Boys order the tables support: enough for
// (gg|gg) quartets (4·4 = 16) plus derivative headroom.
const maxBoysOrder = 32

// Boys fills out[0..m] with the Boys functions F_n(T) for n = 0..m,
//
//	F_n(T) = ∫₀¹ t^(2n) e^(−T t²) dt.
//
// For small and moderate T it evaluates the top order by its convergent
// ascending series and recurs downward (stable); for large T it starts
// from F₀ = ½√(π/T)·erf(√T) and recurs upward (stable when T is large
// compared with n).
func Boys(m int, T float64, out []float64) {
	if m < 0 || m > maxBoysOrder {
		panic("eri: Boys order out of range") //lint:nopanic-ok programmer error: order is fixed by the engine's compile-time maxL
	}
	if T < 0 {
		panic("eri: negative Boys argument") //lint:nopanic-ok programmer error: T = α·|PQ|² is nonnegative by construction
	}
	expT := math.Exp(-T)
	if T > 33 {
		// Upward recursion from the closed-form F₀.
		out[0] = 0.5 * math.Sqrt(math.Pi/T) * math.Erf(math.Sqrt(T))
		for n := 0; n < m; n++ {
			out[n+1] = (float64(2*n+1)*out[n] - expT) / (2 * T)
		}
		return
	}
	// Ascending series at order m:
	//   F_m(T) = e^(−T) Σ_{k≥0} (2T)^k / ((2m+1)(2m+3)⋯(2m+2k+1))
	sum := 0.0
	term := 1.0 / float64(2*m+1)
	for k := 0; k < 400; k++ {
		sum += term
		if term < sum*1e-17 {
			break
		}
		term *= 2 * T / float64(2*m+2*k+3)
	}
	out[m] = expT * sum
	// Downward recursion: F_n = (2T·F_{n+1} + e^(−T)) / (2n+1).
	for n := m - 1; n >= 0; n-- {
		out[n] = (2*T*out[n+1] + expT) / float64(2*n+1)
	}
}

// BoysSingle returns F_n(T) for a single order.
func BoysSingle(n int, T float64) float64 {
	var buf [maxBoysOrder + 1]float64
	Boys(n, T, buf[:])
	return buf[n]
}
