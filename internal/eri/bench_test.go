package eri

import (
	"testing"

	"repro/internal/basis"
)

// BenchmarkQuartet measures the integral engine on the quartet shapes
// of the paper's datasets.
func BenchmarkQuartet(b *testing.B) {
	centers := []basis.Vec3{{0, 0, 0}, {2.5, 0.4, -0.3}, {-1.1, 2.0, 0.8}, {0.9, -1.7, 2.2}}
	for _, l := range []int{0, 1, 2, 3} {
		name := basis.ShellLetter(l)
		b.Run("("+name+name+"|"+name+name+")", func(b *testing.B) {
			shells := make([]*PreparedShell, 4)
			for i := range shells {
				shells[i] = Prepare(basis.Shell{
					Center: centers[i], L: l,
					Exps: []float64{0.6 + 0.1*float64(i)}, Coefs: []float64{1},
				})
			}
			en := NewEngine(l)
			out := make([]float64, BlockSize(shells[0], shells[1], shells[2], shells[3]))
			b.SetBytes(int64(len(out) * 8))
			for i := 0; i < b.N; i++ {
				en.Quartet(shells[0], shells[1], shells[2], shells[3], out)
			}
		})
	}
}

func BenchmarkBoys(b *testing.B) {
	var out [maxBoysOrder + 1]float64
	b.Run("series", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			Boys(12, 7.5, out[:])
		}
	})
	b.Run("asymptotic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			Boys(12, 80, out[:])
		}
	})
}
