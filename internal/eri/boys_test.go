package eri

import (
	"math"
	"testing"
	"testing/quick"
)

// numericalBoys integrates F_m(T) = ∫₀¹ t^(2m) e^(−T t²) dt by composite
// Simpson with enough points for ~1e-13 accuracy.
func numericalBoys(m int, T float64) float64 {
	const n = 20000 // even
	h := 1.0 / n
	f := func(t float64) float64 { return math.Pow(t, float64(2*m)) * math.Exp(-T*t*t) }
	sum := f(0) + f(1)
	for i := 1; i < n; i++ {
		x := float64(i) * h
		if i%2 == 1 {
			sum += 4 * f(x)
		} else {
			sum += 2 * f(x)
		}
	}
	return sum * h / 3
}

func TestBoysAtZero(t *testing.T) {
	var out [maxBoysOrder + 1]float64
	Boys(maxBoysOrder, 0, out[:])
	for m := 0; m <= maxBoysOrder; m++ {
		want := 1 / float64(2*m+1)
		if math.Abs(out[m]-want) > 1e-15 {
			t.Errorf("F_%d(0) = %.17g, want %.17g", m, out[m], want)
		}
	}
}

func TestBoysVsNumerical(t *testing.T) {
	for _, T := range []float64{1e-8, 0.001, 0.1, 1, 3.5, 10, 25, 32.9, 33.1, 40, 80, 200} {
		for _, m := range []int{0, 1, 2, 5, 8, 12, 16} {
			got := BoysSingle(m, T)
			want := numericalBoys(m, T)
			tol := math.Max(1e-14, want*1e-9)
			if math.Abs(got-want) > tol {
				t.Errorf("F_%d(%g) = %.15g, want %.15g (diff %g)", m, T, got, want, got-want)
			}
		}
	}
}

func TestBoysF0ClosedForm(t *testing.T) {
	// F₀(T) = ½√(π/T)·erf(√T).
	for _, T := range []float64{0.5, 2, 10, 33, 50, 100} {
		want := 0.5 * math.Sqrt(math.Pi/T) * math.Erf(math.Sqrt(T))
		got := BoysSingle(0, T)
		if math.Abs(got-want) > 1e-14*want {
			t.Errorf("F_0(%g) = %.16g, want %.16g", T, got, want)
		}
	}
}

// Property: the downward/upward recursion identity
// F_{n}(T) = (2T·F_{n+1}(T) + e^(−T))/(2n+1) holds for the whole table.
func TestQuickBoysRecursionConsistency(t *testing.T) {
	f := func(tRaw float64) bool {
		T := math.Abs(tRaw)
		if math.IsNaN(T) || math.IsInf(T, 0) || T > 500 {
			return true
		}
		var out [maxBoysOrder + 1]float64
		Boys(maxBoysOrder, T, out[:])
		expT := math.Exp(-T)
		for n := 0; n < maxBoysOrder; n++ {
			lhs := float64(2*n+1) * out[n]
			rhs := 2*T*out[n+1] + expT
			if math.Abs(lhs-rhs) > 1e-12*math.Max(1, math.Abs(lhs)) {
				return false
			}
		}
		// Monotone decreasing in order.
		for n := 0; n < maxBoysOrder; n++ {
			if out[n+1] > out[n] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBoysPanics(t *testing.T) {
	assertPanics := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	var out [maxBoysOrder + 1]float64
	assertPanics("negative order", func() { Boys(-1, 1, out[:]) })
	assertPanics("huge order", func() { Boys(maxBoysOrder+1, 1, out[:]) })
	assertPanics("negative T", func() { Boys(0, -1, out[:]) })
}
