package eri

import (
	"math"
	"testing"

	"repro/internal/basis"
)

// Independent validation of the Hermite E-table machinery: compare
// analytic overlap and dipole integrals against brute-force 3-D grid
// quadrature for primitive shells up to d. The quadrature knows nothing
// about McMurchie–Davidson — it just evaluates Gaussians on a lattice.

// gridIntegrate3D integrates f over [-L,L]³ with the midpoint rule.
func gridIntegrate3D(f func(x, y, z float64) float64, L float64, n int) float64 {
	h := 2 * L / float64(n)
	sum := 0.0
	for i := 0; i < n; i++ {
		x := -L + (float64(i)+0.5)*h
		for j := 0; j < n; j++ {
			y := -L + (float64(j)+0.5)*h
			for k := 0; k < n; k++ {
				z := -L + (float64(k)+0.5)*h
				sum += f(x, y, z)
			}
		}
	}
	return sum * h * h * h
}

// cartGaussian evaluates one normalized contracted Cartesian Gaussian.
func cartGaussian(s basis.Shell, comp basis.CartComponent, coefs []float64, x, y, z float64) float64 {
	dx := x - s.Center[0]
	dy := y - s.Center[1]
	dz := z - s.Center[2]
	r2 := dx*dx + dy*dy + dz*dz
	poly := math.Pow(dx, float64(comp.Lx)) * math.Pow(dy, float64(comp.Ly)) * math.Pow(dz, float64(comp.Lz))
	v := 0.0
	for i, a := range s.Exps {
		v += coefs[i] * math.Exp(-a*r2)
	}
	return v * poly
}

func TestOverlapAgainstQuadrature(t *testing.T) {
	if testing.Short() {
		t.Skip("grid quadrature is slow")
	}
	mol := basis.Molecule{Name: "probe", Atoms: []basis.Atom{
		{Symbol: "H", Z: 1, Pos: basis.Vec3{0, 0, 0}},
		{Symbol: "H", Z: 1, Pos: basis.Vec3{1.2, -0.4, 0.7}},
	}}
	shells := []basis.Shell{
		{Atom: 0, Center: mol.Atoms[0].Pos, L: 0, Exps: []float64{0.9}, Coefs: []float64{1}},
		{Atom: 1, Center: mol.Atoms[1].Pos, L: 1, Exps: []float64{0.7}, Coefs: []float64{1}},
		{Atom: 0, Center: mol.Atoms[0].Pos, L: 2, Exps: []float64{1.1}, Coefs: []float64{1}},
	}
	bs, err := basis.NewBasisSet(mol, shells)
	if err != nil {
		t.Fatal(err)
	}
	S, _, _, n := OneElectron(bs)

	// Precompute per-BF evaluation closures.
	type bf struct {
		shell basis.Shell
		comp  basis.CartComponent
		coefs []float64
	}
	var bfs []bf
	for _, sh := range shells {
		for _, comp := range basis.CartComponents(sh.L) {
			bfs = append(bfs, bf{sh, comp, sh.ContractedCoefs(comp)})
		}
	}
	if len(bfs) != n {
		t.Fatalf("bf count %d vs n %d", len(bfs), n)
	}

	// Spot-check a representative set of matrix elements.
	pairs := [][2]int{{0, 0}, {0, 1}, {0, 3}, {1, 2}, {4, 4}, {2, 7}, {5, 9}}
	for _, p := range pairs {
		i, j := p[0], p[1]
		if i >= n || j >= n {
			continue
		}
		want := gridIntegrate3D(func(x, y, z float64) float64 {
			return cartGaussian(bfs[i].shell, bfs[i].comp, bfs[i].coefs, x, y, z) *
				cartGaussian(bfs[j].shell, bfs[j].comp, bfs[j].coefs, x, y, z)
		}, 9, 120)
		got := S[i*n+j]
		if math.Abs(got-want) > 2e-3*(1+math.Abs(want)) {
			t.Errorf("S[%d][%d] = %.6f, quadrature %.6f", i, j, got, want)
		}
	}
}

func TestDipoleAgainstQuadrature(t *testing.T) {
	if testing.Short() {
		t.Skip("grid quadrature is slow")
	}
	mol := basis.Molecule{Name: "probe", Atoms: []basis.Atom{
		{Symbol: "H", Z: 1, Pos: basis.Vec3{0.3, 0.1, -0.2}},
	}}
	shells := []basis.Shell{
		{Atom: 0, Center: mol.Atoms[0].Pos, L: 1, Exps: []float64{0.8}, Coefs: []float64{1}},
	}
	bs, err := basis.NewBasisSet(mol, shells)
	if err != nil {
		t.Fatal(err)
	}
	Dx, Dy, Dz, n := DipoleIntegrals(bs)
	comps := basis.CartComponents(1)
	coefs := make([][]float64, len(comps))
	for c, comp := range comps {
		coefs[c] = shells[0].ContractedCoefs(comp)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			for dim, mat := range [][]float64{Dx, Dy, Dz} {
				want := gridIntegrate3D(func(x, y, z float64) float64 {
					r := [3]float64{x, y, z}
					return cartGaussian(shells[0], comps[i], coefs[i], x, y, z) *
						r[dim] *
						cartGaussian(shells[0], comps[j], coefs[j], x, y, z)
				}, 9, 120)
				got := mat[i*n+j]
				if math.Abs(got-want) > 2e-3*(1+math.Abs(want)) {
					t.Errorf("D%c[%d][%d] = %.6f, quadrature %.6f", "xyz"[dim], i, j, got, want)
				}
			}
		}
	}
}
