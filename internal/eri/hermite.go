package eri

import "math"

// ETable holds the 1-D Hermite expansion coefficients E_t^{ij} of a
// Gaussian product along one Cartesian dimension: the overlap
// distribution x_A^i·x_B^j·exp(−a x_A²)·exp(−b x_B²) expanded in Hermite
// Gaussians Λ_t centered at P = (aA + bB)/(a+b):
//
//	G_i(x_A) G_j(x_B) = Σ_{t=0}^{i+j} E_t^{ij} Λ_t(x_P).
//
// E[(i·(jmax+1)+j)·(tmax+1)+t] addresses E_t^{ij}.
type ETable struct {
	imax, jmax int
	data       []float64
}

// At returns E_t^{ij}.
func (e *ETable) At(i, j, t int) float64 {
	return e.data[(i*(e.jmax+1)+j)*(e.imax+e.jmax+1)+t]
}

// Row returns the slice E_•^{ij}, valid for t in [0, i+j].
func (e *ETable) Row(i, j int) []float64 {
	base := (i*(e.jmax+1) + j) * (e.imax + e.jmax + 1)
	return e.data[base : base+i+j+1]
}

func (e *ETable) set(i, j, t int, v float64) {
	e.data[(i*(e.jmax+1)+j)*(e.imax+e.jmax+1)+t] = v
}

// BuildE fills an ETable for angular momenta up to (imax, jmax) along
// one dimension, for primitive exponents a (at coordinate A) and b (at
// B). dAB = A − B along this dimension. The table includes the 1-D
// pre-exponential factor exp(−μ·dAB²), μ = ab/(a+b), so multiplying the
// three per-dimension E products gives the full 3-D expansion.
//
// Recurrences (McMurchie–Davidson 1978):
//
//	E_t^{i+1,j} = E_{t−1}^{ij}/(2p) + X_PA·E_t^{ij} + (t+1)·E_{t+1}^{ij}
//	E_t^{i,j+1} = E_{t−1}^{ij}/(2p) + X_PB·E_t^{ij} + (t+1)·E_{t+1}^{ij}
//
// with p = a + b, X_PA = P − A = −b·dAB/p, X_PB = P − B = a·dAB/p.
func BuildE(imax, jmax int, a, b, dAB float64, reuse *ETable) *ETable {
	t := reuse
	size := (imax + 1) * (jmax + 1) * (imax + jmax + 1)
	if t == nil || t.imax != imax || t.jmax != jmax {
		t = &ETable{imax: imax, jmax: jmax, data: make([]float64, size)}
	} else {
		for k := range t.data {
			t.data[k] = 0
		}
	}
	p := a + b
	mu := a * b / p
	xPA := -b * dAB / p
	xPB := a * dAB / p
	inv2p := 1 / (2 * p)

	t.set(0, 0, 0, math.Exp(-mu*dAB*dAB))
	// Raise i first (j = 0), then raise j for every i.
	for i := 0; i < imax; i++ {
		for tt := 0; tt <= i+1; tt++ {
			v := xPA * t.At(i, 0, tt)
			if tt > 0 {
				v += inv2p * t.At(i, 0, tt-1)
			}
			if tt+1 <= i {
				v += float64(tt+1) * t.At(i, 0, tt+1)
			}
			t.set(i+1, 0, tt, v)
		}
	}
	for i := 0; i <= imax; i++ {
		for j := 0; j < jmax; j++ {
			for tt := 0; tt <= i+j+1; tt++ {
				v := xPB * t.At(i, j, tt)
				if tt > 0 {
					v += inv2p * t.At(i, j, tt-1)
				}
				if tt+1 <= i+j {
					v += float64(tt+1) * t.At(i, j, tt+1)
				}
				t.set(i, j+1, tt, v)
			}
		}
	}
	return t
}
