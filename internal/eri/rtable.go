package eri

// RTable holds the Hermite Coulomb integrals R⁰_{tuv}(α, PQ) needed to
// assemble Coulomb-type integrals from Hermite charge distributions:
//
//	R^n_{tuv} = (∂/∂P_x)^t (∂/∂P_y)^u (∂/∂P_z)^v R^n_{000},
//	R^n_{000} = (−2α)^n F_n(α·|PQ|²).
//
// Only the n = 0 layer is kept after construction; higher-n layers are
// scratch. Entries are addressed on a cube of side L+1 where
// L = t+u+v maximum total order.
type RTable struct {
	L      int
	stride int
	data   []float64 // R⁰ cube, (L+1)³
	work   []float64 // scratch: two alternating cubes
	boys   [maxBoysOrder + 1]float64
}

// NewRTable allocates a table supporting total Hermite order up to L.
func NewRTable(L int) *RTable {
	if L > maxBoysOrder {
		panic("eri: RTable order exceeds Boys table capacity") //lint:nopanic-ok programmer error: L is bounded by the engine's compile-time maxL
	}
	s := L + 1
	return &RTable{
		L:      L,
		stride: s,
		data:   make([]float64, s*s*s),
		work:   make([]float64, 2*s*s*s),
	}
}

// At returns R⁰_{tuv}. Entries with t+u+v > the L passed to Build are
// undefined.
func (r *RTable) At(t, u, v int) float64 {
	return r.data[(t*r.stride+u)*r.stride+v]
}

// Build fills the table for reduced exponent alpha and inter-center
// vector PQ = P − Q, up to total order L (≤ the table's capacity).
//
// The construction iterates n from L down to 0: layer n holds R^n_{tuv}
// for t+u+v ≤ L−n, derived from layer n+1 by
//
//	R^n_{t+1,u,v} = t·R^{n+1}_{t−1,u,v} + X_PQ·R^{n+1}_{t,u,v}   (etc.)
func (r *RTable) Build(L int, alpha float64, pqx, pqy, pqz float64) {
	if L > r.L {
		panic("eri: Build order exceeds table capacity") //lint:nopanic-ok programmer error: table is sized for the engine's maxL at construction
	}
	T := alpha * (pqx*pqx + pqy*pqy + pqz*pqz)
	Boys(L, T, r.boys[:])
	s := r.stride
	idx := func(t, u, v int) int { return (t*s+u)*s + v }

	cur := r.work[:s*s*s]
	next := r.work[s*s*s:]
	// Layer L: only R^L_{000}.
	m2a := 1.0 // (−2α)^n
	for n := 0; n < L; n++ {
		m2a *= -2 * alpha
	}
	cur[idx(0, 0, 0)] = m2a * r.boys[L]

	for n := L - 1; n >= 0; n-- {
		// R^n_{000}.
		f := 1.0
		for k := 0; k < n; k++ {
			f *= -2 * alpha
		}
		next[idx(0, 0, 0)] = f * r.boys[n]
		maxOrd := L - n
		for total := 1; total <= maxOrd; total++ {
			for t := 0; t <= total; t++ {
				for u := 0; u <= total-t; u++ {
					v := total - t - u
					var val float64
					switch {
					case t > 0:
						val = pqx * cur[idx(t-1, u, v)]
						if t > 1 {
							val += float64(t-1) * cur[idx(t-2, u, v)]
						}
					case u > 0:
						val = pqy * cur[idx(t, u-1, v)]
						if u > 1 {
							val += float64(u-1) * cur[idx(t, u-2, v)]
						}
					default: // v > 0
						val = pqz * cur[idx(t, u, v-1)]
						if v > 1 {
							val += float64(v-1) * cur[idx(t, u, v-2)]
						}
					}
					next[idx(t, u, v)] = val
				}
			}
		}
		cur, next = next, cur
	}
	copy(r.data, cur)
}
