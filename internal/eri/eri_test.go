package eri

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/basis"
)

// sShell builds a single-primitive s shell.
func sShell(center basis.Vec3, alpha float64) basis.Shell {
	return basis.Shell{Center: center, L: 0, Exps: []float64{alpha}, Coefs: []float64{1}}
}

// closedFormSSSS evaluates the textbook closed form for four normalized
// s-type primitives:
//
//	(ab|cd) = N · K_AB · K_CD · 2π^(5/2)/(pq√(p+q)) · F₀(α|PQ|²)
func closedFormSSSS(aA, aB, aC, aD float64, A, B, C, D basis.Vec3) float64 {
	p := aA + aB
	q := aC + aD
	P := A.Scale(aA / p).Add(B.Scale(aB / p))
	Q := C.Scale(aC / q).Add(D.Scale(aD / q))
	ab := A.Sub(B)
	cd := C.Sub(D)
	kab := math.Exp(-aA * aB / p * ab.Dot(ab))
	kcd := math.Exp(-aC * aD / q * cd.Dot(cd))
	alpha := p * q / (p + q)
	pq := P.Sub(Q)
	norm := basis.PrimitiveNorm(aA, basis.CartComponent{}) *
		basis.PrimitiveNorm(aB, basis.CartComponent{}) *
		basis.PrimitiveNorm(aC, basis.CartComponent{}) *
		basis.PrimitiveNorm(aD, basis.CartComponent{})
	return norm * kab * kcd * 2 * math.Pow(math.Pi, 2.5) / (p * q * math.Sqrt(p+q)) *
		BoysSingle(0, alpha*pq.Dot(pq))
}

func TestSSSSAgainstClosedForm(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	en := NewEngine(0)
	out := make([]float64, 1)
	for trial := 0; trial < 50; trial++ {
		alphas := [4]float64{}
		centers := [4]basis.Vec3{}
		for i := range alphas {
			alphas[i] = 0.1 + 3*rng.Float64()
			centers[i] = basis.Vec3{rng.NormFloat64() * 2, rng.NormFloat64() * 2, rng.NormFloat64() * 2}
		}
		A := Prepare(sShell(centers[0], alphas[0]))
		B := Prepare(sShell(centers[1], alphas[1]))
		C := Prepare(sShell(centers[2], alphas[2]))
		D := Prepare(sShell(centers[3], alphas[3]))
		en.Quartet(A, B, C, D, out)
		want := closedFormSSSS(alphas[0], alphas[1], alphas[2], alphas[3],
			centers[0], centers[1], centers[2], centers[3])
		if math.Abs(out[0]-want) > 1e-13*math.Max(1, math.Abs(want)) {
			t.Fatalf("trial %d: (ss|ss) = %.15g, want %.15g", trial, out[0], want)
		}
	}
}

// The self-repulsion of a normalized s Gaussian with exponent 1 is
// 2/√π (a standard closed-form anchor value).
func TestSSSSSelfRepulsion(t *testing.T) {
	en := NewEngine(0)
	out := make([]float64, 1)
	s := Prepare(sShell(basis.Vec3{}, 1))
	en.Quartet(s, s, s, s, out)
	want := 2 / math.Sqrt(math.Pi)
	if math.Abs(out[0]-want) > 1e-14 {
		t.Fatalf("(ss|ss) self = %.16g, want %.16g", out[0], want)
	}
}

// ERI permutational symmetry: the engine evaluated with shells swapped
// must produce the transposed tensors: (AB|CD) = (BA|CD) = (AB|DC) =
// (CD|AB).
func TestQuartetPermutationalSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	mk := func(l int) *PreparedShell {
		return Prepare(basis.Shell{
			Center: basis.Vec3{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()},
			L:      l,
			Exps:   []float64{0.3 + rng.Float64()},
			Coefs:  []float64{1},
		})
	}
	A, B, C, D := mk(1), mk(2), mk(0), mk(1)
	nA, nB, nC, nD := len(A.Comps), len(B.Comps), len(C.Comps), len(D.Comps)
	en := NewEngine(3)
	abcd := make([]float64, nA*nB*nC*nD)
	bacd := make([]float64, nA*nB*nC*nD)
	abdc := make([]float64, nA*nB*nC*nD)
	cdab := make([]float64, nA*nB*nC*nD)
	en.Quartet(A, B, C, D, abcd)
	en.Quartet(B, A, C, D, bacd)
	en.Quartet(A, B, D, C, abdc)
	en.Quartet(C, D, A, B, cdab)
	at := func(buf []float64, i, j, k, l, nj, nk, nl int) float64 {
		return buf[((i*nj+j)*nk+k)*nl+l]
	}
	for a := 0; a < nA; a++ {
		for b := 0; b < nB; b++ {
			for c := 0; c < nC; c++ {
				for d := 0; d < nD; d++ {
					v := at(abcd, a, b, c, d, nB, nC, nD)
					checks := []struct {
						name string
						got  float64
					}{
						{"(BA|CD)", at(bacd, b, a, c, d, nA, nC, nD)},
						{"(AB|DC)", at(abdc, a, b, d, c, nB, nD, nC)},
						{"(CD|AB)", at(cdab, c, d, a, b, nD, nA, nB)},
					}
					for _, ch := range checks {
						if math.Abs(ch.got-v) > 1e-13*math.Max(1, math.Abs(v)) {
							t.Fatalf("%s mismatch at (%d%d|%d%d): %g vs %g",
								ch.name, a, b, c, d, ch.got, v)
						}
					}
				}
			}
		}
	}
}

// Diagonal ERIs (ab|ab) are self-repulsions of a charge distribution and
// must be non-negative.
func TestDiagonalERIsNonNegative(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, l := range []int{0, 1, 2, 3} {
		A := Prepare(basis.Shell{
			Center: basis.Vec3{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()},
			L:      l, Exps: []float64{0.7}, Coefs: []float64{1},
		})
		B := Prepare(basis.Shell{
			Center: basis.Vec3{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()},
			L:      l, Exps: []float64{1.1}, Coefs: []float64{1},
		})
		n := len(A.Comps) * len(B.Comps)
		out := make([]float64, n*n)
		en := NewEngine(l)
		en.Quartet(A, B, A, B, out)
		for i := 0; i < n; i++ {
			if out[i*n+i] < -1e-14 {
				t.Errorf("l=%d: (ab|ab) diagonal %d = %g < 0", l, i, out[i*n+i])
			}
		}
	}
}

func TestOverlapNormalizedDiagonal(t *testing.T) {
	bs, err := basis.STO3G(basis.Water())
	if err != nil {
		t.Fatal(err)
	}
	S, _, _, n := OneElectron(bs)
	for i := 0; i < n; i++ {
		if math.Abs(S[i*n+i]-1) > 1e-10 {
			t.Errorf("S[%d][%d] = %.12g, want 1", i, i, S[i*n+i])
		}
	}
	// Symmetry and boundedness (Cauchy–Schwarz: |S_ij| ≤ 1).
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if math.Abs(S[i*n+j]-S[j*n+i]) > 1e-14 {
				t.Errorf("S asymmetric at %d,%d", i, j)
			}
			if math.Abs(S[i*n+j]) > 1+1e-12 {
				t.Errorf("|S[%d][%d]| = %g > 1", i, j, S[i*n+j])
			}
		}
	}
}

func TestKineticPositiveDiagonalNuclearNegative(t *testing.T) {
	bs, err := basis.STO3G(basis.Water())
	if err != nil {
		t.Fatal(err)
	}
	_, T, V, n := OneElectron(bs)
	for i := 0; i < n; i++ {
		if T[i*n+i] <= 0 {
			t.Errorf("T[%d][%d] = %g, want > 0", i, i, T[i*n+i])
		}
		if V[i*n+i] >= 0 {
			t.Errorf("V[%d][%d] = %g, want < 0", i, i, V[i*n+i])
		}
	}
}

// Hydrogen-atom sanity: with STO-3G on a single H, ⟨T⟩+⟨V⟩ for the 1s
// BF approximates the H ground-state energy −0.5 Eh (STO-3G gives
// ≈ −0.4666).
func TestHydrogenAtomEnergy(t *testing.T) {
	mol := basis.Molecule{Name: "H", Atoms: []basis.Atom{{Symbol: "H", Z: 1}}}
	bs, err := basis.STO3G(mol)
	if err != nil {
		t.Fatal(err)
	}
	_, T, V, _ := OneElectron(bs)
	e := T[0] + V[0]
	if math.Abs(e-(-0.46658)) > 5e-4 {
		t.Errorf("H atom STO-3G energy = %.5f, want ≈ -0.46658", e)
	}
}

func TestEnumerateQuartetsCanonical(t *testing.T) {
	qs := EnumerateQuartets(4)
	seen := map[Quartet]bool{}
	for _, q := range qs {
		i, j, k, l := q[0], q[1], q[2], q[3]
		if i > j || k > l {
			t.Fatalf("non-canonical pair in %v", q)
		}
		if k < i || (k == i && l < j) {
			t.Fatalf("ket pair before bra pair in %v", q)
		}
		if seen[q] {
			t.Fatalf("duplicate quartet %v", q)
		}
		seen[q] = true
	}
	// Number of canonical quartets over P = n(n+1)/2 pairs is P(P+1)/2.
	P := 4 * 5 / 2
	if want := P * (P + 1) / 2; len(qs) != want {
		t.Fatalf("got %d quartets, want %d", len(qs), want)
	}
}

func TestSampleQuartets(t *testing.T) {
	qs := EnumerateQuartets(6)
	s := SampleQuartets(qs, 10)
	if len(s) != 10 {
		t.Fatalf("sampled %d, want 10", len(s))
	}
	if s[0] != qs[0] {
		t.Fatalf("sampling should keep the first quartet")
	}
	if got := SampleQuartets(qs, 0); len(got) != len(qs) {
		t.Fatalf("maxBlocks=0 should keep all")
	}
	if got := SampleQuartets(qs, len(qs)+5); len(got) != len(qs) {
		t.Fatalf("oversized cap should keep all")
	}
	// Deterministic.
	s2 := SampleQuartets(qs, 10)
	for i := range s {
		if s[i] != s2[i] {
			t.Fatalf("sampling not deterministic")
		}
	}
}

func TestGeneratePureDataset(t *testing.T) {
	ds, err := GeneratePure(basis.Benzene(), 2, GenerateOptions{MaxBlocks: 25})
	if err != nil {
		t.Fatal(err)
	}
	if ds.Blocks != 25 {
		t.Fatalf("blocks = %d", ds.Blocks)
	}
	if ds.NumSB != 36 || ds.SBSize != 36 {
		t.Fatalf("geometry = %d×%d, want 36×36", ds.NumSB, ds.SBSize)
	}
	if len(ds.Data) != 25*1296 {
		t.Fatalf("data length = %d", len(ds.Data))
	}
	if ds.BlockSizeBytes() != 1296*8 || ds.SizeBytes() != 25*1296*8 {
		t.Fatalf("sizes: %d, %d", ds.BlockSizeBytes(), ds.SizeBytes())
	}
	// Blocks must contain structure (not all zero, finite values).
	nonzero := 0
	for _, v := range ds.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatal("non-finite ERI value")
		}
		if v != 0 {
			nonzero++
		}
	}
	if nonzero < len(ds.Data)/10 {
		t.Fatalf("only %d/%d nonzero ERIs", nonzero, len(ds.Data))
	}
	// Block accessor.
	if len(ds.Block(3)) != 1296 {
		t.Fatalf("Block view size %d", len(ds.Block(3)))
	}
}

// (gg|gg) support — the paper's future-work direction of extending the
// approach to more chemistry configurations. One benzene-pair g-shell
// quartet: 15⁴ = 50625 integrals per block.
func TestGenerateGShellBlocks(t *testing.T) {
	mol := basis.Cluster(basis.Benzene(), 1, 1, 2, 4.0)
	ds, err := GeneratePure(mol, 4, GenerateOptions{MaxBlocks: 3})
	if err != nil {
		t.Fatal(err)
	}
	if ds.NumSB != 225 || ds.SBSize != 225 {
		t.Fatalf("(gg|gg) geometry %dx%d, want 225x225", ds.NumSB, ds.SBSize)
	}
	nonzero := 0
	for _, v := range ds.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatal("non-finite (gg|gg) integral")
		}
		if v != 0 {
			nonzero++
		}
	}
	if nonzero == 0 {
		t.Fatal("all (gg|gg) integrals zero")
	}
}

func TestGenerateDeterministicAcrossWorkers(t *testing.T) {
	mol := basis.Water()
	shells := []basis.Shell{
		{Atom: 0, Center: mol.Atoms[0].Pos, L: 2, Exps: []float64{1.2}, Coefs: []float64{1}},
		{Atom: 1, Center: mol.Atoms[1].Pos, L: 2, Exps: []float64{0.8}, Coefs: []float64{1}},
	}
	d1, err := GenerateBlocks("w1", shells, GenerateOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	d4, err := GenerateBlocks("w4", shells, GenerateOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(d1.Data) != len(d4.Data) {
		t.Fatal("length mismatch")
	}
	for i := range d1.Data {
		if d1.Data[i] != d4.Data[i] {
			t.Fatalf("value %d differs across worker counts", i)
		}
	}
}

func TestGenerateBlocksErrors(t *testing.T) {
	if _, err := GenerateBlocks("empty", nil, GenerateOptions{}); err == nil {
		t.Error("empty shell list accepted")
	}
	mixed := []basis.Shell{
		{L: 2, Exps: []float64{1}, Coefs: []float64{1}},
		{L: 3, Exps: []float64{1}, Coefs: []float64{1}},
	}
	if _, err := GenerateBlocks("mixed", mixed, GenerateOptions{}); err == nil {
		t.Error("mixed-L shells accepted")
	}
}

// AllERIs must agree with direct quartet evaluation at a few spot
// positions, including non-canonical index orders (symmetry scatter).
func TestAllERIsMatchesQuartets(t *testing.T) {
	bs, err := basis.STO3G(basis.Water())
	if err != nil {
		t.Fatal(err)
	}
	full := AllERIs(bs)
	n := bs.NBF()
	at := func(i, j, k, l int) float64 { return full[((i*n+j)*n+k)*n+l] }

	// Symmetry spot checks over random indices.
	rng := rand.New(rand.NewSource(14))
	for trial := 0; trial < 200; trial++ {
		i, j, k, l := rng.Intn(n), rng.Intn(n), rng.Intn(n), rng.Intn(n)
		v := at(i, j, k, l)
		for _, w := range []float64{at(j, i, k, l), at(i, j, l, k), at(k, l, i, j), at(l, k, j, i)} {
			if math.Abs(v-w) > 1e-12*math.Max(1, math.Abs(v)) {
				t.Fatalf("symmetry violated at (%d%d|%d%d)", i, j, k, l)
			}
		}
	}

	// Direct re-evaluation of one specific quartet.
	en := NewEngine(1)
	A := Prepare(bs.Shells[0])
	C := Prepare(bs.Shells[2]) // oxygen p shell
	out := make([]float64, len(A.Comps)*len(A.Comps)*len(C.Comps)*len(C.Comps))
	en.Quartet(A, A, C, C, out)
	offA, offC := bs.Offset(0), bs.Offset(2)
	nC := len(C.Comps)
	for c := 0; c < nC; c++ {
		for d := 0; d < nC; d++ {
			want := out[c*nC+d] // a=b=0
			got := at(offA, offA, offC+c, offC+d)
			if math.Abs(got-want) > 1e-13*math.Max(1, math.Abs(want)) {
				t.Fatalf("AllERIs mismatch at (00|%d%d): %g vs %g", c, d, got, want)
			}
		}
	}
}

// The latent pattern the paper exploits must actually be present in our
// generated data: for a far-separated quartet, sub-blocks of the
// (dd|dd) block must be nearly proportional to each other (Fig. 3).
func TestGeneratedBlocksExhibitPattern(t *testing.T) {
	// Two d shells separated by ~8 bohr: the far-field factorization of
	// eq. (2)/(3) applies.
	sh1 := basis.Shell{Center: basis.Vec3{0, 0, 0}, L: 2, Exps: []float64{0.8}, Coefs: []float64{1}}
	sh2 := basis.Shell{Center: basis.Vec3{8, 0, 0}, L: 2, Exps: []float64{0.6}, Coefs: []float64{1}}
	A, B := Prepare(sh1), Prepare(sh2)
	en := NewEngine(2)
	out := make([]float64, 1296)
	en.Quartet(A, A, B, B, out)

	// Find the largest-amplitude sub-block as reference.
	const sb = 36
	best, bestAmp := 0, 0.0
	for s := 0; s < 36; s++ {
		for i := 0; i < sb; i++ {
			if a := math.Abs(out[s*sb+i]); a > bestAmp {
				bestAmp, best = a, s
			}
		}
	}
	ref := out[best*sb : (best+1)*sb]
	// Every other sub-block must match scale·ref with deviations small
	// relative to the BLOCK extremum — sub-blocks with vanishing shape
	// factor are orthogonal to the pattern but have tiny absolute
	// amplitude, which is exactly what PaSTRI's EC stage absorbs.
	for s := 0; s < 36; s++ {
		blk := out[s*sb : (s+1)*sb]
		// Least-squares scale.
		num, den := 0.0, 0.0
		for i := 0; i < sb; i++ {
			num += blk[i] * ref[i]
			den += ref[i] * ref[i]
		}
		scale := num / den
		for i := 0; i < sb; i++ {
			if dev := math.Abs(blk[i] - scale*ref[i]); dev > 0.05*bestAmp {
				t.Errorf("sub-block %d point %d: deviation %.3g vs block amplitude %.3g",
					s, i, dev, bestAmp)
			}
		}
	}
}
