package eri

import (
	"math"

	"repro/internal/basis"
)

// OneElectron computes the overlap (S), kinetic (T) and nuclear
// attraction (V) matrices over the basis set, each returned as a dense
// row-major n×n slice with n = bs.NBF(). These feed the Hartree–Fock
// substrate (the paper's Fig. 11 use case).
func OneElectron(bs *basis.BasisSet) (S, T, V []float64, n int) {
	n = bs.NBF()
	S = make([]float64, n*n)
	T = make([]float64, n*n)
	V = make([]float64, n*n)

	shells := make([]*PreparedShell, bs.NShells())
	for i := range shells {
		shells[i] = Prepare(bs.Shells[i])
	}
	maxL := 0
	for _, s := range shells {
		if s.Shell.L > maxL {
			maxL = s.Shell.L
		}
	}
	rt := NewRTable(2 * maxL)
	var ex, ey, ez *ETable

	for si, A := range shells {
		for sj, B := range shells {
			if sj < si {
				continue
			}
			la, lb := A.Shell.L, B.Shell.L
			offA, offB := bs.Offset(si), bs.Offset(sj)
			ca, cb := A.Shell.Center, B.Shell.Center
			for pi, a := range A.Shell.Exps {
				for pj, b := range B.Shell.Exps {
					p := a + b
					var P basis.Vec3
					for d := 0; d < 3; d++ {
						P[d] = (a*ca[d] + b*cb[d]) / p
					}
					// jmax = lb+2 provides the raised-j overlaps the
					// kinetic-energy relation needs.
					ex = BuildE(la, lb+2, a, b, ca[0]-cb[0], ex)
					ey = BuildE(la, lb+2, a, b, ca[1]-cb[1], ey)
					ez = BuildE(la, lb+2, a, b, ca[2]-cb[2], ez)
					sqp := math.Sqrt(math.Pi / p)
					pref3 := sqp * sqp * sqp

					for ai, compA := range A.Comps {
						for bi, compB := range B.Comps {
							coef := A.Coefs[ai][pi] * B.Coefs[bi][pj]
							ia, ja := compA.Lx, compB.Lx
							ib, jb := compA.Ly, compB.Ly
							ic, jc := compA.Lz, compB.Lz

							sx := ex.At(ia, ja, 0)
							sy := ey.At(ib, jb, 0)
							sz := ez.At(ic, jc, 0)
							sval := pref3 * sx * sy * sz

							// Kinetic: −½∇² acting on the ket Gaussian.
							kin1d := func(e *ETable, i, j int) float64 {
								t := 4 * b * b * e.At(i, j+2, 0)
								t -= 2 * b * float64(2*j+1) * e.At(i, j, 0)
								if j >= 2 {
									t += float64(j*(j-1)) * e.At(i, j-2, 0)
								}
								return t
							}
							tx := kin1d(ex, ia, ja) * sy * sz
							ty := kin1d(ey, ib, jb) * sx * sz
							tz := kin1d(ez, ic, jc) * sx * sy
							tval := -0.5 * pref3 * (tx + ty + tz)

							// Nuclear attraction over all nuclei.
							vval := 0.0
							for _, atom := range bs.Mol.Atoms {
								rt.Build(la+lb, p, P[0]-atom.Pos[0], P[1]-atom.Pos[1], P[2]-atom.Pos[2])
								sum := 0.0
								for t := 0; t <= ia+ja; t++ {
									etx := ex.At(ia, ja, t)
									if etx == 0 { //lint:floatcmp-ok sparsity skip: only exact zeros are skipped, which is always sound
										continue
									}
									for u := 0; u <= ib+jb; u++ {
										ety := etx * ey.At(ib, jb, u)
										if ety == 0 { //lint:floatcmp-ok sparsity skip: only exact zeros are skipped
											continue
										}
										for v := 0; v <= ic+jc; v++ {
											sum += ety * ez.At(ic, jc, v) * rt.At(t, u, v)
										}
									}
								}
								vval -= float64(atom.Z) * (2 * math.Pi / p) * sum
							}

							r := offA + ai
							c := offB + bi
							S[r*n+c] += coef * sval
							T[r*n+c] += coef * tval
							V[r*n+c] += coef * vval
						}
					}
				}
			}
		}
	}
	// Symmetrize: fill the lower triangles.
	for r := 0; r < n; r++ {
		for c := r + 1; c < n; c++ {
			S[c*n+r] = S[r*n+c]
			T[c*n+r] = T[r*n+c]
			V[c*n+r] = V[r*n+c]
		}
	}
	return S, T, V, n
}
