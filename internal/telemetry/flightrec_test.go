package telemetry

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/zcheck"
)

// goodRec returns a healthy block record: positive slack, ~8x ratio.
func goodRec() TraceRecord {
	return TraceRecord{SubBlocks: 4, Encoding: EncType0, BytesIn: 800, BytesOut: 100, EBSlack: 5e-11}
}

func TestFlightConfigDefaults(t *testing.T) {
	fr := NewFlightRecorder(FlightConfig{})
	cfg := fr.Config()
	if cfg.RatioSigma != 4 || cfg.Warmup != 64 || cfg.MaxArtifacts != 8 {
		t.Fatalf("defaults not applied: %+v", cfg)
	}
}

func TestEBViolationProducesReplayableArtifact(t *testing.T) {
	dir := t.TempDir()
	eb := 1e-10
	col := New(8)
	fr := NewFlightRecorder(FlightConfig{Dir: dir, ErrorBound: eb})
	col.AttachFlight(fr)
	if !col.FlightWantsData() {
		t.Fatal("FlightWantsData must be true with a recorder attached")
	}

	// A few healthy blocks populate the trace ring (and baseline).
	for i := 0; i < 5; i++ {
		col.RecordBlockData(goodRec(), nil, nil)
	}
	// Inject a genuine violation: the reconstruction is off by 3×EB on
	// one element, and the record carries negative slack.
	original := []float64{1.0, 2.0, 3.0, 4.0}
	reconstructed := []float64{1.0, 2.0, 3.0 + 3*eb, 4.0}
	bad := goodRec()
	bad.EBSlack = -2 * eb
	col.RecordBlockData(bad, original, reconstructed)

	counts := fr.AnomalyCounts()
	if counts[ReasonEBViolation] != 1 {
		t.Fatalf("eb_violation count = %d, want 1 (counts %v)", counts[ReasonEBViolation], counts)
	}
	paths := fr.ArtifactPaths()
	if len(paths) != 1 {
		t.Fatalf("artifact paths = %v, want exactly one", paths)
	}
	if err := fr.Err(); err != nil {
		t.Fatalf("unexpected write error: %v", err)
	}

	// The artifact replays offline through zcheck and re-derives the
	// violation from the captured data alone.
	a, err := ReadFlightArtifact(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	if a.Reason != ReasonEBViolation {
		t.Fatalf("reason = %q, want %q", a.Reason, ReasonEBViolation)
	}
	if a.ErrorBound != eb {
		t.Fatalf("artifact error bound = %g, want %g", a.ErrorBound, eb)
	}
	if len(a.Traces) == 0 {
		t.Fatal("artifact must carry the trace-ring context")
	}
	rep, err := zcheck.Assess(a.Original, a.Reconstructed, a.Record.BytesOut, a.ErrorBound)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.BoundViolated {
		t.Fatalf("replay does not confirm the violation: max err %g vs bound %g", rep.MaxAbsErr, a.ErrorBound)
	}

	// The snapshot surfaces the anomaly and artifact for -statsjson.
	snap := col.Snapshot()
	if snap.FlightAnomalies[ReasonEBViolation] != 1 || len(snap.FlightArtifacts) != 1 {
		t.Fatalf("snapshot flight fields wrong: %v / %v", snap.FlightAnomalies, snap.FlightArtifacts)
	}
}

func TestSlackFloorInjectsViolations(t *testing.T) {
	// SlackFloor lets operators (and CI) trip the detector on blocks
	// that are still within bound — every goodRec has slack 5e-11.
	col := New(4)
	fr := NewFlightRecorder(FlightConfig{SlackFloor: 1e-10})
	col.AttachFlight(fr)
	for i := 0; i < 3; i++ {
		col.RecordBlockData(goodRec(), nil, nil)
	}
	if got := fr.AnomalyCounts()[ReasonEBViolation]; got != 3 {
		t.Fatalf("slack-floor anomalies = %d, want 3", got)
	}
	// Dir is empty: anomalies count but no artifacts are written.
	if paths := fr.ArtifactPaths(); len(paths) != 0 {
		t.Fatalf("artifacts written without a dir: %v", paths)
	}
}

func TestRatioOutlierDetection(t *testing.T) {
	col := New(4)
	fr := NewFlightRecorder(FlightConfig{Warmup: 16, RatioSigma: 4})
	col.AttachFlight(fr)
	// Warm the baseline with slightly varying ~8x ratios so the stddev
	// is nonzero but small.
	for i := 0; i < 32; i++ {
		r := goodRec()
		r.BytesOut = 100 + i%3
		col.RecordBlockData(r, nil, nil)
	}
	if n := fr.AnomalyCounts()[ReasonRatioOutlier]; n != 0 {
		t.Fatalf("healthy warmup produced %d outliers", n)
	}
	// A block that barely compresses at all is far outside 4 sigma.
	collapsed := goodRec()
	collapsed.BytesOut = 790
	col.RecordBlockData(collapsed, nil, nil)
	if n := fr.AnomalyCounts()[ReasonRatioOutlier]; n != 1 {
		t.Fatalf("ratio collapse not detected: %v", fr.AnomalyCounts())
	}
	// The outlier must not have been folded into the baseline: an
	// immediately following healthy block stays healthy.
	col.RecordBlockData(goodRec(), nil, nil)
	if n := fr.AnomalyCounts()[ReasonRatioOutlier]; n != 1 {
		t.Fatalf("baseline dragged by outlier: %v", fr.AnomalyCounts())
	}
}

func TestDecodeRatioOutlier(t *testing.T) {
	col := New(4)
	fr := NewFlightRecorder(FlightConfig{Warmup: 8})
	col.AttachFlight(fr)
	for i := 0; i < 16; i++ {
		col.RecordDecodedBlock(100+i%3, 800)
	}
	col.RecordDecodedBlock(795, 800) // expansion ratio collapsed
	if n := fr.AnomalyCounts()[ReasonDecodeRatioOutlier]; n != 1 {
		t.Fatalf("decode outlier not detected: %v", fr.AnomalyCounts())
	}
}

func TestMaxArtifactsBounds(t *testing.T) {
	dir := t.TempDir()
	col := New(4)
	fr := NewFlightRecorder(FlightConfig{Dir: dir, SlackFloor: 1, MaxArtifacts: 2})
	col.AttachFlight(fr)
	for i := 0; i < 10; i++ {
		col.RecordBlockData(goodRec(), nil, nil)
	}
	if got := fr.AnomalyCounts()[ReasonEBViolation]; got != 10 {
		t.Fatalf("anomaly count = %d, want 10 (counting must not stop at the artifact cap)", got)
	}
	if paths := fr.ArtifactPaths(); len(paths) != 2 {
		t.Fatalf("artifact count = %d, want MaxArtifacts=2", len(paths))
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 2 {
		t.Fatalf("%d files on disk, want 2", len(ents))
	}
}

func TestArtifactWriteErrorSurfaced(t *testing.T) {
	// A file where the artifact dir should be makes MkdirAll fail; the
	// pipeline must keep running and surface the error via Err only.
	base := t.TempDir()
	block := filepath.Join(base, "not-a-dir")
	if err := os.WriteFile(block, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	col := New(4)
	fr := NewFlightRecorder(FlightConfig{Dir: filepath.Join(block, "sub"), SlackFloor: 1})
	col.AttachFlight(fr)
	col.RecordBlockData(goodRec(), nil, nil)
	if err := fr.Err(); err == nil {
		t.Fatal("write failure not surfaced")
	}
	if got := fr.AnomalyCounts()[ReasonEBViolation]; got != 1 {
		t.Fatalf("anomaly not counted despite write failure: %d", got)
	}
}

func TestNilSafety(t *testing.T) {
	var fr *FlightRecorder
	if fr.AnomalyCounts() != nil || fr.ArtifactPaths() != nil || fr.Err() != nil {
		t.Fatal("nil recorder accessors must return zero values")
	}
	var col *Collector
	col.AttachFlight(NewFlightRecorder(FlightConfig{}))
	if col.Flight() != nil || col.FlightWantsData() {
		t.Fatal("nil collector must ignore flight attachment")
	}
	col.AddEBViolations(3)
	if col.EBViolations() != 0 {
		t.Fatal("nil collector must count nothing")
	}
}

func TestSortedReasonsDeterministic(t *testing.T) {
	m := map[string]uint64{"zz_custom": 1, ReasonRatioOutlier: 2}
	got := sortedReasons(m)
	want := []string{ReasonEBViolation, ReasonRatioOutlier, ReasonDecodeRatioOutlier, "zz_custom"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("sortedReasons = %v, want %v", got, want)
	}
}
