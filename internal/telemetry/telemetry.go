// Package telemetry is a dependency-free observability layer for the
// PaSTRI compression pipeline: lock-free atomic counters, power-of-two
// bucketed histograms, per-stage wall-clock timers, and a bounded
// per-block trace ring buffer, aggregated by a Collector and exported
// as JSON snapshots or an expvar variable.
//
// Everything is nil-safe: every Collector method begins with a nil
// check and returns immediately, so a disabled pipeline pays only a
// pointer test and an untaken branch per instrumentation point — no
// clock reads, no allocations, no atomic traffic. Code under
// instrumentation therefore threads a possibly-nil *Collector without
// guarding call sites.
//
// All mutation paths are either atomic (counters, histograms, stage
// accumulators) or mutex-protected with a copy-in critical section
// (the trace ring), so any number of compression workers may record
// into one Collector concurrently. Counters and histograms are exact,
// not sampled: after a pipeline drains, their values are independent
// of the worker count and schedule. A Snapshot taken while workers are
// still recording is weakly consistent — each field is individually
// coherent but fields may reflect slightly different instants.
package telemetry

import (
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"
)

// Stage identifies one instrumented phase of the pipeline.
type Stage uint8

// The instrumented pipeline stages. Compression records the first six;
// StageDecode is recorded by the decompression paths.
const (
	// StageBlockSplit covers carving the input into block jobs: the
	// copy+submit of ParallelStreamWriter.WriteBlock, the job fan-out of
	// the one-shot compressor, and geometry grouping in the container
	// writer.
	StageBlockSplit Stage = iota
	// StagePatternFit is the pattern-scaling analysis (Sec. IV-A).
	StagePatternFit
	// StageQuantize is pattern/scale quantization plus the
	// error-correction pass (Sec. IV-B).
	StageQuantize
	// StageEncode is the bit emission: header fields, PQ/SQ, and the
	// prefix-tree (or sparse) ECQ encoding (Sec. IV-C).
	StageEncode
	// StageSequencerWait is time the in-order sequencer spends blocked
	// waiting for the next result from the worker pool.
	StageSequencerWait
	// StageWrite is time spent writing framing and payloads to the
	// underlying writer, and assembling one-shot streams.
	StageWrite
	// StageDecode is per-block decompression.
	StageDecode

	numStages
)

var stageNames = [numStages]string{
	"block_split",
	"pattern_fit",
	"quantize",
	"encode",
	"sequencer_wait",
	"write",
	"decode",
}

// String returns the snake_case stage name used in snapshots.
func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return "stage?"
}

// A Counter is a lock-free monotonically increasing counter.
type Counter struct{ v atomic.Uint64 }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// A Histogram counts observations in power-of-two buckets: bucket b
// holds values v with bits.Len64(v) == b, i.e. v in [2^(b-1), 2^b).
// Observation is lock-free and exact (no sampling).
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64
	buckets [65]atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bits.Len64(v)].Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() uint64 { return h.sum.Load() }

// stageRec accumulates one stage's timings. min is stored as ns+1 so
// the zero value means "no observations yet".
type stageRec struct {
	count atomic.Uint64
	total atomic.Uint64 // nanoseconds
	min   atomic.Uint64 // nanoseconds + 1; 0 = unset
	max   atomic.Uint64 // nanoseconds
	hist  Histogram     // nanoseconds, power-of-two buckets
}

func (r *stageRec) observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	ns := uint64(d)
	r.count.Add(1)
	r.total.Add(ns)
	r.hist.Observe(ns)
	for {
		cur := r.min.Load()
		if cur != 0 && cur <= ns+1 {
			break
		}
		if r.min.CompareAndSwap(cur, ns+1) {
			break
		}
	}
	for {
		cur := r.max.Load()
		if cur >= ns {
			break
		}
		if r.max.CompareAndSwap(cur, ns) {
			break
		}
	}
}

// BlockEncoding names the ECQ representation a block ended up with.
type BlockEncoding uint8

// The three per-block outcomes: Type-0 blocks spend no ECQ bits at
// all; other blocks choose dense tree coding or the sparse
// (index,value) representation by exact cost (Sec. IV-C).
const (
	EncType0 BlockEncoding = iota
	EncDense
	EncSparse

	numBlockEncodings
)

var encodingNames = [numBlockEncodings]string{"type0", "dense", "sparse"}

// String returns the snapshot name of the encoding.
func (e BlockEncoding) String() string {
	if int(e) < len(encodingNames) {
		return encodingNames[e]
	}
	return "enc?"
}

// MarshalText renders the encoding as its name in JSON snapshots.
func (e BlockEncoding) MarshalText() ([]byte, error) { return []byte(e.String()), nil }

// UnmarshalText parses an encoding name, so snapshots round-trip
// through JSON (e.g. when scraped back from /debug/vars).
func (e *BlockEncoding) UnmarshalText(text []byte) error {
	for i, name := range encodingNames {
		if name == string(text) {
			*e = BlockEncoding(i)
			return nil
		}
	}
	return fmt.Errorf("telemetry: unknown block encoding %q", text)
}

// DefaultTraceDepth is the trace ring size used when New is given a
// zero depth.
const DefaultTraceDepth = 256

// A Collector aggregates pipeline telemetry. The nil *Collector is a
// valid, zero-cost no-op sink; construct a live one with New. One
// Collector may be shared by any number of concurrent workers.
type Collector struct {
	stages       [numStages]stageRec
	blocks       Counter // compressed blocks (trace ids draw from this)
	bytesIn      Counter // raw bytes entering compressed blocks
	bytesPayload Counter // compressed block payload bytes
	bytesFraming Counter // stream/container framing bytes (headers, varints, directories)
	enc          [numBlockEncodings]Counter
	blockBytes   Histogram // compressed payload size per block

	blocksDecoded   Counter
	decodedBytesIn  Counter // compressed bytes consumed by decode
	decodedBytesOut Counter // raw bytes produced by decode

	// ebViolations counts blocks whose decoded values broke the absolute
	// error bound — incremented by audit passes (cmd/pastri -audit) and
	// surfaced on /metrics, so a nonzero value is an operator page.
	ebViolations Counter

	ring traceRing

	// flight, when set, receives every block record (plus block data,
	// when the instrumentation point can supply it) for anomaly
	// detection. Stored atomically so workers may record while an
	// operator attaches the recorder.
	flight atomic.Pointer[FlightRecorder]
}

// New returns a live Collector whose trace ring holds traceDepth
// records (0 ⇒ DefaultTraceDepth, negative ⇒ tracing disabled).
func New(traceDepth int) *Collector {
	c := &Collector{}
	switch {
	case traceDepth == 0:
		traceDepth = DefaultTraceDepth
	case traceDepth < 0:
		traceDepth = 0
	}
	if traceDepth > 0 {
		c.ring.recs = make([]TraceRecord, traceDepth)
	}
	return c
}

// Enabled reports whether the collector records anything; it is the
// hook for instrumentation that must do extra work (e.g. computing a
// trace record) only when someone is listening.
func (c *Collector) Enabled() bool { return c != nil }

// StageStart returns a start token for StageEnd. On a nil collector it
// returns the zero time without reading the clock.
func (c *Collector) StageStart() time.Time {
	if c == nil {
		return time.Time{}
	}
	return time.Now() //lint:detlint-ok telemetry only: stage durations are exported, never steer encoding
}

// StageEnd records the elapsed time since start against stage s. It is
// a no-op on a nil collector or a zero start token, so
// StageStart/StageEnd pairs need no call-site guards. Use this pair
// (not Timer) when one function times several sequential stages.
func (c *Collector) StageEnd(s Stage, start time.Time) {
	if c == nil || start.IsZero() {
		return
	}
	c.stages[s].observe(time.Since(start)) //lint:detlint-ok telemetry only: stage durations are exported, never steer encoding
}

// A Timer records one stage interval when stopped. The zero Timer is a
// no-op.
type Timer struct {
	c     *Collector
	s     Stage
	start time.Time
}

// Timer starts a timer for stage s. Stop the result with defer so the
// interval is recorded on every exit path — the telemetrydrop lint
// check enforces this.
func (c *Collector) Timer(s Stage) Timer {
	if c == nil {
		return Timer{}
	}
	return Timer{c: c, s: s, start: time.Now()} //lint:detlint-ok telemetry only: stage durations are exported, never steer encoding
}

// Stop records the interval since the timer started.
func (t Timer) Stop() {
	if t.c == nil {
		return
	}
	t.c.stages[t.s].observe(time.Since(t.start)) //lint:detlint-ok telemetry only: stage durations are exported, never steer encoding
}

// RecordBlock accounts one compressed block: counters, the payload
// size histogram, and a slot in the trace ring. The record's Block id
// is assigned here, in completion order (the stream's block order is
// the submission order, which may differ under parallel compression).
// It returns the assigned id (0 on a nil collector).
func (c *Collector) RecordBlock(rec TraceRecord) uint64 {
	return c.RecordBlockData(rec, nil, nil)
}

// RecordBlockData is RecordBlock for instrumentation points that can
// hand the attached FlightRecorder the block's raw and reconstructed
// values for anomaly capture. The slices are only read during the
// call — never retained — so callers may pass reusable scratch
// buffers. Either slice may be nil.
func (c *Collector) RecordBlockData(rec TraceRecord, original, reconstructed []float64) uint64 {
	if c == nil {
		return 0
	}
	rec.Block = c.blocks.v.Add(1) - 1
	c.bytesIn.Add(uint64(rec.BytesIn))
	c.bytesPayload.Add(uint64(rec.BytesOut))
	if int(rec.Encoding) < len(c.enc) {
		c.enc[rec.Encoding].Add(1)
	}
	c.blockBytes.Observe(uint64(rec.BytesOut))
	c.ring.push(rec)
	if fr := c.flight.Load(); fr != nil {
		fr.observeCompress(c, rec, original, reconstructed)
	}
	return rec.Block
}

// AttachFlight points the collector's block stream at a flight
// recorder. Safe to call while workers are recording; a nil collector
// or recorder is a no-op.
func (c *Collector) AttachFlight(fr *FlightRecorder) {
	if c == nil || fr == nil {
		return
	}
	c.flight.Store(fr)
}

// Flight returns the attached flight recorder, or nil.
func (c *Collector) Flight() *FlightRecorder {
	if c == nil {
		return nil
	}
	return c.flight.Load()
}

// FlightWantsData reports whether an attached flight recorder would
// capture block data — the hook instrumentation uses to decide whether
// computing a reconstruction copy is worth the extra pass.
func (c *Collector) FlightWantsData() bool {
	return c.Flight() != nil
}

// AddEBViolations counts n audited blocks that broke the absolute
// error bound.
func (c *Collector) AddEBViolations(n int) {
	if c == nil || n <= 0 {
		return
	}
	c.ebViolations.Add(uint64(n))
}

// EBViolations returns the audited bound-violation count.
func (c *Collector) EBViolations() uint64 {
	if c == nil {
		return 0
	}
	return c.ebViolations.Load()
}

// AddFramingBytes accounts stream or container framing (headers,
// varint lengths, directories) so payload + framing bytes sum to the
// produced output size exactly.
func (c *Collector) AddFramingBytes(n int) {
	if c == nil || n <= 0 {
		return
	}
	c.bytesFraming.Add(uint64(n))
}

// RecordDecodedBlock accounts one decompressed block.
func (c *Collector) RecordDecodedBlock(compressedBytes, rawBytes int) {
	if c == nil {
		return
	}
	c.blocksDecoded.Add(1)
	if compressedBytes > 0 {
		c.decodedBytesIn.Add(uint64(compressedBytes))
	}
	if rawBytes > 0 {
		c.decodedBytesOut.Add(uint64(rawBytes))
	}
	if fr := c.flight.Load(); fr != nil {
		fr.observeDecode(c, compressedBytes, rawBytes)
	}
}

// TraceRecord is one block's entry in the trace ring buffer.
type TraceRecord struct {
	// Block is the collector-assigned id, in completion order.
	Block uint64 `json:"block"`
	// SubBlocks is the block's sub-block count (NumSB).
	SubBlocks int `json:"sub_blocks"`
	// ExpSpan is the spread of binary exponents across the block's
	// nonzero values — a proxy for how hard the block is to pattern-fit.
	ExpSpan int `json:"exp_span"`
	// Encoding is the chosen ECQ representation.
	Encoding BlockEncoding `json:"encoding"`
	// BytesIn and BytesOut are the raw and compressed payload sizes.
	BytesIn  int `json:"bytes_in"`
	BytesOut int `json:"bytes_out"`
	// EBSlack is the error bound minus the block's actual worst-case
	// reconstruction error — how much of the user's bound the codec
	// left on the table.
	EBSlack float64 `json:"eb_slack"`
	// ECQNonZero is the number of nonzero error-correction quanta — the
	// block's "hardness" for the ECQ stage (a Type-0 block has zero).
	ECQNonZero int `json:"ecq_nonzero"`
	// ECbMax is the widest ECQ bin the block needed (1 ⇒ Type-0).
	ECbMax int `json:"ecb_max"`
}

// traceRing is a bounded ring of the most recent block traces. Pushes
// are mutex-serialized (the critical section is one struct copy);
// a zero-length ring drops everything without taking the lock.
type traceRing struct {
	mu   sync.Mutex
	recs []TraceRecord
	next uint64
}

func (r *traceRing) push(rec TraceRecord) {
	if len(r.recs) == 0 {
		return
	}
	r.mu.Lock()
	r.recs[r.next%uint64(len(r.recs))] = rec
	r.next++
	r.mu.Unlock()
}

// snapshot returns the retained records, oldest first.
func (r *traceRing) snapshot() []TraceRecord {
	if len(r.recs) == 0 {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.next
	depth := uint64(len(r.recs))
	count := n
	if count > depth {
		count = depth
	}
	out := make([]TraceRecord, 0, count) //lint:hotalloc2-ok anomaly path: snapshots are taken only when writing a flight artifact
	for i := n - count; i < n; i++ {
		out = append(out, r.recs[i%depth])
	}
	return out
}
