package telemetry

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// The flight recorder is the quality black box of the pipeline: it
// watches every block record for error-bound slack violations and
// compression-ratio outliers against a rolling baseline, and when one
// trips it dumps the recent trace ring plus the offending block's data
// to a JSON artifact that can be replayed offline through
// internal/zcheck (cmd/zcheck -flight). Detection is O(1) per block
// (a Welford update and two comparisons); artifact writes happen only
// on anomalies and are bounded by MaxArtifacts, so a pathological
// workload cannot turn the recorder into a disk-filling loop.

// Anomaly reasons, used as artifact labels, counter keys and the
// Prometheus reason label.
const (
	ReasonEBViolation        = "eb_violation"
	ReasonRatioOutlier       = "ratio_outlier"
	ReasonDecodeRatioOutlier = "decode_ratio_outlier"
)

var flightReasons = []string{ReasonEBViolation, ReasonRatioOutlier, ReasonDecodeRatioOutlier}

// FlightConfig parameterizes a FlightRecorder. The zero value of every
// field is replaced by the documented default.
type FlightConfig struct {
	// Dir is the directory artifacts are written into; "" disables
	// artifact writes (anomalies are still counted).
	Dir string
	// ErrorBound is recorded in artifacts so a replay can re-verify the
	// bound without the original stream header.
	ErrorBound float64
	// SlackFloor triggers an eb_violation anomaly when a block's
	// EBSlack falls below it. The default 0 fires only on genuine
	// violations (negative slack); operations can raise it to page on
	// quality erosion before the bound actually breaks, and tests use
	// it to inject violations on demand.
	SlackFloor float64
	// RatioSigma is the outlier threshold in baseline standard
	// deviations (default 4).
	RatioSigma float64
	// Warmup is the number of blocks folded into the rolling baseline
	// before outlier detection arms (default 64).
	Warmup int
	// MaxArtifacts bounds artifact files written over the recorder's
	// lifetime (default 8).
	MaxArtifacts int
}

func (c FlightConfig) withDefaults() FlightConfig {
	if c.RatioSigma <= 0 {
		c.RatioSigma = 4
	}
	if c.Warmup <= 0 {
		c.Warmup = 64
	}
	if c.MaxArtifacts <= 0 {
		c.MaxArtifacts = 8
	}
	return c
}

// rollingStats is Welford's online mean/variance accumulator.
type rollingStats struct {
	n    int
	mean float64
	m2   float64
}

func (r *rollingStats) add(x float64) {
	r.n++
	d := x - r.mean
	r.mean += d / float64(r.n)
	r.m2 += d * (x - r.mean)
}

func (r *rollingStats) stddev() float64 {
	if r.n < 2 {
		return 0
	}
	return math.Sqrt(r.m2 / float64(r.n-1))
}

// outlier reports whether x deviates from the rolling baseline by more
// than sigma standard deviations. The deviation scale is floored at 2%
// of the mean so a perfectly uniform warmup (stddev ~ 0) does not turn
// every later block into an outlier.
func (r *rollingStats) outlier(x, sigma float64, warmup int) bool {
	if r.n < warmup {
		return false
	}
	scale := r.stddev()
	if floor := 0.02 * math.Abs(r.mean); scale < floor {
		scale = floor
	}
	if scale <= 0 {
		return false
	}
	return math.Abs(x-r.mean) > sigma*scale
}

// A FlightRecorder watches a Collector's block stream for quality
// anomalies and captures bounded JSON artifacts. Attach one with
// Collector.AttachFlight; all methods are safe for concurrent use by
// any number of pipeline workers.
type FlightRecorder struct {
	cfg FlightConfig

	mu        sync.Mutex
	comp      rollingStats // per-block compression ratio (bytes_in / bytes_out)
	dec       rollingStats // per-block decode expansion ratio (raw / compressed)
	anomalies map[string]uint64
	artifacts []string
	writeErr  error
}

// NewFlightRecorder returns a recorder with cfg's zero fields replaced
// by defaults.
func NewFlightRecorder(cfg FlightConfig) *FlightRecorder {
	return &FlightRecorder{
		cfg:       cfg.withDefaults(),
		anomalies: make(map[string]uint64, len(flightReasons)),
	}
}

// Config returns the effective (default-filled) configuration.
func (fr *FlightRecorder) Config() FlightConfig { return fr.cfg }

// AnomalyCounts returns a copy of the per-reason anomaly counters.
func (fr *FlightRecorder) AnomalyCounts() map[string]uint64 {
	if fr == nil {
		return nil
	}
	fr.mu.Lock()
	defer fr.mu.Unlock()
	out := make(map[string]uint64, len(fr.anomalies))
	for k, v := range fr.anomalies {
		out[k] = v
	}
	return out
}

// ArtifactPaths returns the artifact files written so far, in write
// order.
func (fr *FlightRecorder) ArtifactPaths() []string {
	if fr == nil {
		return nil
	}
	fr.mu.Lock()
	defer fr.mu.Unlock()
	return append([]string(nil), fr.artifacts...)
}

// Err returns the first artifact-write error, if any. Detection keeps
// running after a failed write; the error is surfaced here instead of
// interrupting the pipeline.
func (fr *FlightRecorder) Err() error {
	if fr == nil {
		return nil
	}
	fr.mu.Lock()
	defer fr.mu.Unlock()
	return fr.writeErr
}

// observeCompress checks one compressed-block record. Anomalous blocks
// are counted and captured but not folded into the rolling baseline,
// so one bad block does not drag the baseline toward it.
func (fr *FlightRecorder) observeCompress(c *Collector, rec TraceRecord, original, reconstructed []float64) {
	ratio := 0.0
	if rec.BytesOut > 0 {
		ratio = float64(rec.BytesIn) / float64(rec.BytesOut)
	}
	fr.mu.Lock()
	reason := ""
	switch {
	case rec.EBSlack < fr.cfg.SlackFloor:
		reason = ReasonEBViolation
	case fr.comp.outlier(ratio, fr.cfg.RatioSigma, fr.cfg.Warmup):
		reason = ReasonRatioOutlier
	default:
		fr.comp.add(ratio)
		fr.mu.Unlock()
		return
	}
	fr.anomalies[reason]++
	baseline := fr.comp
	fr.writeArtifactLocked(&FlightArtifact{
		Reason:        reason,
		UnixNanos:     time.Now().UnixNano(), //lint:detlint-ok artifact timestamp is telemetry metadata, never encoder input
		ErrorBound:    fr.cfg.ErrorBound,
		Record:        rec,
		BaselineMean:  baseline.mean,
		BaselineStd:   baseline.stddev(),
		BaselineN:     baseline.n,
		Traces:        c.ring.snapshot(),
		Original:      append([]float64(nil), original...), //lint:hotalloc2-ok anomaly path bounded by MaxArtifacts; the artifact must own a copy
		Reconstructed: append([]float64(nil), reconstructed...), //lint:hotalloc2-ok anomaly path bounded by MaxArtifacts; the artifact must own a copy
	})
	fr.mu.Unlock()
}

// observeDecode checks one decoded block's expansion ratio against the
// decode-side baseline.
func (fr *FlightRecorder) observeDecode(c *Collector, compressedBytes, rawBytes int) {
	if compressedBytes <= 0 || rawBytes <= 0 {
		return
	}
	ratio := float64(rawBytes) / float64(compressedBytes)
	fr.mu.Lock()
	if !fr.dec.outlier(ratio, fr.cfg.RatioSigma, fr.cfg.Warmup) {
		fr.dec.add(ratio)
		fr.mu.Unlock()
		return
	}
	fr.anomalies[ReasonDecodeRatioOutlier]++
	baseline := fr.dec
	fr.writeArtifactLocked(&FlightArtifact{
		Reason:       ReasonDecodeRatioOutlier,
		UnixNanos:    time.Now().UnixNano(),
		ErrorBound:   fr.cfg.ErrorBound,
		Record:       TraceRecord{BytesIn: rawBytes, BytesOut: compressedBytes},
		BaselineMean: baseline.mean,
		BaselineStd:  baseline.stddev(),
		BaselineN:    baseline.n,
		Traces:       c.ring.snapshot(),
	})
	fr.mu.Unlock()
}

// writeArtifactLocked serializes a to a fresh file under cfg.Dir; the
// caller holds fr.mu, which also serializes the sequence numbering.
// Failures are recorded, not raised: the recorder must never take down
// the pipeline it observes. Anomalies are rare and bounded by
// MaxArtifacts, so file I/O under the lock is acceptable.
func (fr *FlightRecorder) writeArtifactLocked(a *FlightArtifact) {
	if fr.cfg.Dir == "" || len(fr.artifacts) >= fr.cfg.MaxArtifacts {
		return
	}
	path := filepath.Join(fr.cfg.Dir, fmt.Sprintf("flight-%04d-%s.json", len(fr.artifacts), a.Reason)) //lint:hotalloc2-ok anomaly path bounded by MaxArtifacts
	//lint:hotalloc2-ok anomaly path bounded by MaxArtifacts
	err := func() error {
		if err := os.MkdirAll(fr.cfg.Dir, 0o755); err != nil {
			return err
		}
		b, err := json.MarshalIndent(a, "", "  ")
		if err != nil {
			return err
		}
		return os.WriteFile(path, append(b, '\n'), 0o644) //lint:hotalloc2-ok anomaly path: trailing newline on a fresh JSON buffer
	}()
	if err != nil {
		if fr.writeErr == nil {
			fr.writeErr = err
		}
		return
	}
	fr.artifacts = append(fr.artifacts, path)
}

// A FlightArtifact is one captured anomaly: the offending block's
// trace record (including its ECQ summary), the trace-ring context
// leading up to it, the rolling baseline at detection time, and — for
// compress-side anomalies — the block's original and reconstructed
// values so the incident replays offline through internal/zcheck.
type FlightArtifact struct {
	Reason       string        `json:"reason"`
	UnixNanos    int64         `json:"unix_nanos"`
	ErrorBound   float64       `json:"error_bound,omitempty"`
	Record       TraceRecord   `json:"record"`
	BaselineMean float64       `json:"baseline_ratio_mean"`
	BaselineStd  float64       `json:"baseline_ratio_stddev"`
	BaselineN    int           `json:"baseline_blocks"`
	Traces       []TraceRecord `json:"traces,omitempty"`
	// Original and Reconstructed are the offending block's values; a
	// zcheck replay of the pair re-derives the violation independently
	// of the live run.
	Original      []float64 `json:"original,omitempty"`
	Reconstructed []float64 `json:"reconstructed,omitempty"`
}

// ReadFlightArtifact loads an artifact written by the recorder.
func ReadFlightArtifact(path string) (*FlightArtifact, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var a FlightArtifact
	if err := json.Unmarshal(b, &a); err != nil {
		return nil, fmt.Errorf("telemetry: flight artifact %s: %w", path, err)
	}
	return &a, nil
}

// sortedReasons returns the known anomaly reasons in stable order plus
// any unknown keys present in m — the Prometheus exporter needs a
// deterministic label order.
func sortedReasons(m map[string]uint64) []string {
	out := append([]string(nil), flightReasons...)
	seen := map[string]bool{}
	for _, r := range out {
		seen[r] = true
	}
	var extra []string
	for k := range m {
		if !seen[k] {
			extra = append(extra, k)
		}
	}
	sort.Strings(extra)
	return append(out, extra...)
}
