package telemetry

import (
	"encoding/json"
	"expvar"
	"math"
)

// Snapshots are pull-based: the Collector's hot paths only bump
// atomics, and a Snapshot call materializes a consistent-enough view
// on demand. See DESIGN.md ("Observability") for why the pipeline does
// not push per-event callbacks.

// Bucket is one histogram bucket in a snapshot: N observations with
// value ≤ Le (inclusive upper bound; buckets are powers of two).
type Bucket struct {
	Le uint64 `json:"le"`
	N  uint64 `json:"n"`
}

// HistogramSnapshot is a point-in-time copy of a Histogram; empty
// buckets are omitted.
type HistogramSnapshot struct {
	Count   uint64   `json:"count"`
	Sum     uint64   `json:"sum"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Snapshot copies the histogram.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Count: h.count.Load(), Sum: h.sum.Load()}
	for b := range h.buckets {
		n := h.buckets[b].Load()
		if n == 0 {
			continue
		}
		le := uint64(math.MaxUint64)
		if b < 64 {
			le = uint64(1)<<b - 1
		}
		s.Buckets = append(s.Buckets, Bucket{Le: le, N: n})
	}
	return s
}

// StageSnapshot summarizes one stage's timer.
type StageSnapshot struct {
	Count     uint64   `json:"count"`
	TotalNS   uint64   `json:"total_ns"`
	MinNS     uint64   `json:"min_ns"`
	MaxNS     uint64   `json:"max_ns"`
	AvgNS     uint64   `json:"avg_ns"`
	NSBuckets []Bucket `json:"ns_buckets,omitempty"`
}

// Snapshot is a point-in-time view of a Collector, shaped for JSON.
// BytesOutTotal = BytesOutPayload + BytesOutFraming equals the size of
// the produced stream or container exactly.
type Snapshot struct {
	Blocks          uint64                   `json:"blocks"`
	BytesIn         uint64                   `json:"bytes_in"`
	BytesOutPayload uint64                   `json:"bytes_out_payload"`
	BytesOutFraming uint64                   `json:"bytes_out_framing"`
	BytesOutTotal   uint64                   `json:"bytes_out_total"`
	Encodings       map[string]uint64        `json:"encodings"`
	BlockBytes      HistogramSnapshot        `json:"block_bytes"`
	Stages          map[string]StageSnapshot `json:"stages"`

	BlocksDecoded   uint64 `json:"blocks_decoded,omitempty"`
	DecodedBytesIn  uint64 `json:"decoded_bytes_in,omitempty"`
	DecodedBytesOut uint64 `json:"decoded_bytes_out,omitempty"`

	// EBViolations is the audited error-bound violation count; any
	// nonzero value means the hard-bound guarantee was observed broken.
	EBViolations uint64 `json:"eb_violations,omitempty"`

	// FlightAnomalies counts anomalies per reason, and FlightArtifacts
	// lists the artifact files the flight recorder has written; both are
	// empty when no recorder is attached.
	FlightAnomalies map[string]uint64 `json:"flight_anomalies,omitempty"`
	FlightArtifacts []string          `json:"flight_artifacts,omitempty"`

	Traces []TraceRecord `json:"traces,omitempty"`
}

// Snapshot materializes the collector's current state. On a nil
// collector it returns nil (which JSON-encodes as null).
func (c *Collector) Snapshot() *Snapshot {
	if c == nil {
		return nil
	}
	s := &Snapshot{
		Blocks:          c.blocks.Load(),
		BytesIn:         c.bytesIn.Load(),
		BytesOutPayload: c.bytesPayload.Load(),
		BytesOutFraming: c.bytesFraming.Load(),
		Encodings:       make(map[string]uint64, len(c.enc)),
		BlockBytes:      c.blockBytes.Snapshot(),
		Stages:          make(map[string]StageSnapshot),
		BlocksDecoded:   c.blocksDecoded.Load(),
		DecodedBytesIn:  c.decodedBytesIn.Load(),
		DecodedBytesOut: c.decodedBytesOut.Load(),
		EBViolations:    c.ebViolations.Load(),
		Traces:          c.ring.snapshot(),
	}
	if fr := c.flight.Load(); fr != nil {
		s.FlightAnomalies = fr.AnomalyCounts()
		s.FlightArtifacts = fr.ArtifactPaths()
	}
	s.BytesOutTotal = s.BytesOutPayload + s.BytesOutFraming
	for e := BlockEncoding(0); e < numBlockEncodings; e++ {
		s.Encodings[e.String()] = c.enc[e].Load()
	}
	for st := Stage(0); st < numStages; st++ {
		r := &c.stages[st]
		n := r.count.Load()
		if n == 0 {
			continue
		}
		ss := StageSnapshot{
			Count:   n,
			TotalNS: r.total.Load(),
			MaxNS:   r.max.Load(),
		}
		if m := r.min.Load(); m > 0 {
			ss.MinNS = m - 1
		}
		ss.AvgNS = ss.TotalNS / n
		ss.NSBuckets = r.hist.Snapshot().Buckets
		s.Stages[st.String()] = ss
	}
	return s
}

// JSON renders the snapshot with indentation; it never fails (the
// snapshot tree contains only marshalable types).
func (s *Snapshot) JSON() []byte {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return []byte("null")
	}
	return b
}

// Publish registers the collector under name in the process-wide
// expvar registry, so /debug/vars serves live snapshots. expvar names
// live for the process lifetime and cannot be replaced, so Publish is
// a no-op if the name is already taken (callers that swap collectors
// should register an expvar.Func over their own indirection instead).
func (c *Collector) Publish(name string) {
	if c == nil || expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return c.Snapshot() }))
}
