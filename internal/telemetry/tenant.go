package telemetry

import (
	"io"
	"sort"
)

// WriteTenantPrometheus renders a set of per-tenant collectors as
// tenant-labeled pipeline counter families, in Prometheus text format.
// Each family header is emitted once, followed by one sample per tenant
// in sorted tenant order, so scrapes are deterministic and the golden
// wire tests can lock the exact label names.
//
// Only the counter families are exported per tenant — stage-latency
// series would multiply cardinality by tenant count for little
// operational value (pastrid's request-level latency histograms cover
// that axis). Runtime families are left to the caller, which composes
// this output with its own server families and a single
// writeRuntimeMetrics-equivalent block.
func WriteTenantPrometheus(w io.Writer, tenants map[string]*Collector) error {
	p := &promWriter{w: w}
	names := make([]string, 0, len(tenants))
	for t, c := range tenants {
		if c != nil {
			names = append(names, t)
		}
	}
	sort.Strings(names)

	each := func(name, help string, load func(c *Collector) float64) {
		p.header(name, help, "counter")
		for _, t := range names {
			p.sample(name, load(tenants[t]), "tenant", t)
		}
	}
	each("pastri_tenant_blocks_total", "Blocks compressed per tenant.",
		func(c *Collector) float64 { return float64(c.blocks.Load()) })
	each("pastri_tenant_bytes_in_total", "Raw bytes entering compression per tenant.",
		func(c *Collector) float64 { return float64(c.bytesIn.Load()) })
	each("pastri_tenant_bytes_out_payload_total", "Compressed block payload bytes per tenant.",
		func(c *Collector) float64 { return float64(c.bytesPayload.Load()) })
	each("pastri_tenant_bytes_out_framing_total", "Stream framing bytes per tenant.",
		func(c *Collector) float64 { return float64(c.bytesFraming.Load()) })
	each("pastri_tenant_blocks_decoded_total", "Blocks decompressed per tenant.",
		func(c *Collector) float64 { return float64(c.blocksDecoded.Load()) })
	each("pastri_tenant_decoded_bytes_out_total", "Raw bytes produced by decode per tenant.",
		func(c *Collector) float64 { return float64(c.decodedBytesOut.Load()) })
	each("pastri_tenant_eb_violations_total", "Audited error-bound violations per tenant.",
		func(c *Collector) float64 { return float64(c.ebViolations.Load()) })

	p.header("pastri_tenant_blocks_encoded_total", "Blocks per chosen ECQ encoding per tenant.", "counter")
	for _, t := range names {
		c := tenants[t]
		for e := BlockEncoding(0); e < numBlockEncodings; e++ {
			p.sample("pastri_tenant_blocks_encoded_total", float64(c.enc[e].Load()),
				"tenant", t, "encoding", e.String())
		}
	}
	return p.err
}

// WriteRuntimePrometheus renders only the Go runtime/GC families — the
// building block pastrid uses to compose a complete scrape from
// tenant-labeled pipeline families plus its own server families.
func WriteRuntimePrometheus(w io.Writer) error {
	p := &promWriter{w: w}
	writeRuntimeMetrics(p)
	return p.err
}
