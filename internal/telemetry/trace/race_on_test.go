//go:build race

package trace

// raceEnabled reports whether the race detector instruments this build;
// allocation-regression tests skip under it because instrumentation
// adds its own heap traffic.
const raceEnabled = true
