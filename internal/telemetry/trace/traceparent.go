// W3C Trace Context traceparent handling (version 00):
//
//	traceparent: 00-<32 hex trace-id>-<16 hex parent-id>-<2 hex flags>
//
// https://www.w3.org/TR/trace-context/ — only the fields pastrid
// needs: the trace ID, the parent span ID and the sampled flag. An
// unknown version with the 00 field layout is accepted per spec;
// all-zero IDs are invalid.

package trace

import "encoding/hex"

// FlagSampled is the trace-flags bit indicating the caller sampled
// the trace; pastrid honors it on ingress and sets it on egress for
// recording spans.
const FlagSampled byte = 0x01

// TraceID is the 16-byte W3C trace identifier.
type TraceID [16]byte

// IsZero reports whether the ID is the invalid all-zero value.
func (id TraceID) IsZero() bool { return id == TraceID{} }

// String renders the ID as 32 lowercase hex digits.
func (id TraceID) String() string { return hex.EncodeToString(id[:]) }

// SpanID is the 8-byte W3C parent/span identifier.
type SpanID [8]byte

// IsZero reports whether the ID is the invalid all-zero value.
func (id SpanID) IsZero() bool { return id == SpanID{} }

// String renders the ID as 16 lowercase hex digits, or "" for the
// zero ID (roots without a remote parent omit parent_id entirely).
func (id SpanID) String() string {
	if id.IsZero() {
		return ""
	}
	return hex.EncodeToString(id[:])
}

// ParseTraceparent parses a traceparent header value. ok is false for
// empty, malformed, all-zero-ID, or version-ff values; callers then
// start a fresh trace.
func ParseTraceparent(h string) (tid TraceID, parent SpanID, flags byte, ok bool) {
	// version "00" layout: 2+1+32+1+16+1+2 = 55 bytes minimum; later
	// versions may append "-..." suffixes, which are ignored.
	if len(h) < 55 {
		return tid, parent, 0, false
	}
	if h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return tid, parent, 0, false
	}
	if len(h) > 55 && h[55] != '-' {
		return tid, parent, 0, false
	}
	ver, ok1 := hexByte(h[0], h[1])
	if !ok1 || ver == 0xff {
		return tid, parent, 0, false
	}
	// hex.Decode would accept uppercase; W3C requires lowercase.
	if !decodeLowerHex(tid[:], h[3:35]) || !decodeLowerHex(parent[:], h[36:52]) {
		return tid, parent, 0, false
	}
	flags, ok1 = hexByte(h[53], h[54])
	if !ok1 || tid.IsZero() || parent.IsZero() {
		return tid, parent, 0, false
	}
	return tid, parent, flags, true
}

// FormatTraceparent renders a version-00 traceparent header value.
func FormatTraceparent(tid TraceID, sid SpanID, flags byte) string {
	var buf [55]byte
	buf[0], buf[1], buf[2] = '0', '0', '-'
	hex.Encode(buf[3:35], tid[:])
	buf[35] = '-'
	hex.Encode(buf[36:52], sid[:])
	buf[52] = '-'
	hex.Encode(buf[53:55], []byte{flags})
	return string(buf[:])
}

func decodeLowerHex(dst []byte, src string) bool {
	for i := range dst {
		b, ok := hexByte(src[2*i], src[2*i+1])
		if !ok {
			return false
		}
		dst[i] = b
	}
	return true
}

func hexByte(hi, lo byte) (byte, bool) {
	h, ok1 := hexNibble(hi)
	l, ok2 := hexNibble(lo)
	return h<<4 | l, ok1 && ok2
}

func hexNibble(c byte) (byte, bool) {
	switch {
	case c >= '0' && c <= '9':
		return c - '0', true
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10, true
	default:
		return 0, false
	}
}
