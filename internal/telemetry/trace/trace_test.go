package trace

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// deterministicTracer returns a tracer with a fixed RNG seed so
// sampling decisions are reproducible.
func deterministicTracer(cfg Config) *Tracer {
	if cfg.Seed == 0 {
		cfg.Seed = 42
	}
	return New(cfg)
}

func TestTraceparentRoundTrip(t *testing.T) {
	tid := TraceID{0x4b, 0xf9, 0x2f, 0x35, 0x77, 0xb3, 0x4d, 0xa6, 0xa3, 0xce, 0x92, 0x9d, 0x0e, 0x0e, 0x47, 0x36}
	sid := SpanID{0x00, 0xf0, 0x67, 0xaa, 0x0b, 0xa9, 0x02, 0xb7}
	h := FormatTraceparent(tid, sid, FlagSampled)
	want := "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	if h != want {
		t.Fatalf("FormatTraceparent = %q, want %q", h, want)
	}
	gtid, gsid, flags, ok := ParseTraceparent(h)
	if !ok || gtid != tid || gsid != sid || flags != FlagSampled {
		t.Fatalf("ParseTraceparent(%q) = %v %v %v %v", h, gtid, gsid, flags, ok)
	}
}

func TestTraceparentRejectsMalformed(t *testing.T) {
	bad := []string{
		"",
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7",     // too short
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-0",   // short flags
		"ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",  // version ff
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01",  // zero trace id
		"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01",  // zero span id
		"00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01",  // uppercase hex
		"00x4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",  // bad separator
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01x", // junk suffix
	}
	for _, h := range bad {
		if _, _, _, ok := ParseTraceparent(h); ok {
			t.Errorf("ParseTraceparent(%q) accepted, want reject", h)
		}
	}
	// Future versions with a -suffix are accepted per spec.
	if _, _, _, ok := ParseTraceparent("01-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-extra"); !ok {
		t.Error("ParseTraceparent rejected future-version suffix form")
	}
}

func TestHeadSamplingRates(t *testing.T) {
	tr := deterministicTracer(Config{
		SampleRate:  1,
		TenantRates: map[string]float64{"quiet": 0, "off": -1},
	})
	if sp := tr.StartRequest("read_block", "alice", ""); !sp.Recording() {
		t.Error("rate-1.0 tenant not recording")
	}
	for _, tenant := range []string{"quiet", "off"} {
		sp := tr.StartRequest("read_block", tenant, "")
		if sp.Recording() {
			t.Errorf("tenant %q recording despite disabled rate", tenant)
		}
		// Unsampled spans still correlate logs.
		if sp.TraceID() == "" || sp.SpanID() == "" {
			t.Errorf("tenant %q: unsampled span missing IDs", tenant)
		}
		if sp.StartChild("x") != nil {
			t.Errorf("tenant %q: StartChild on unsampled span != nil", tenant)
		}
		if kept, _ := tr.FinishRequest(sp); kept {
			t.Errorf("tenant %q: unsampled trace retained", tenant)
		}
	}
}

func TestIncomingTraceparentPinsTraceAndForcesSampling(t *testing.T) {
	tr := deterministicTracer(Config{SampleRate: 0, KeepFraction: 1})
	h := "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	sp := tr.StartRequest("upload", "alice", h)
	if !sp.Recording() {
		t.Fatal("sampled incoming traceparent did not force recording")
	}
	if got := sp.TraceID(); got != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Fatalf("trace id = %s, want inherited", got)
	}
	kept, _ := tr.FinishRequest(sp)
	if !kept {
		t.Fatal("trace not retained at KeepFraction 1")
	}
	ring := tr.Ring()
	if len(ring) != 1 {
		t.Fatalf("ring length = %d", len(ring))
	}
	if ring[0].Spans[0].ParentID != "00f067aa0ba902b7" {
		t.Fatalf("root parent = %q, want remote span id", ring[0].Spans[0].ParentID)
	}
	// Unsampled incoming flag: IDs inherited, recording off.
	h0 := "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-00"
	if sp := tr.StartRequest("upload", "alice", h0); sp.Recording() {
		t.Fatal("unsampled incoming traceparent forced recording")
	}
}

func TestTailRetentionRules(t *testing.T) {
	cases := []struct {
		name   string
		cfg    Config
		drive  func(tr *Tracer, sp *Span)
		sleep  time.Duration
		want   string // "" = dropped
	}{
		{"error", Config{SampleRate: 1}, func(_ *Tracer, sp *Span) { sp.SetError(errors.New("boom")) }, 0, ReasonError},
		{"latency", Config{SampleRate: 1, LatencyThreshold: time.Microsecond}, nil, time.Millisecond, ReasonLatency},
		{"anomaly", Config{SampleRate: 1}, func(_ *Tracer, sp *Span) { sp.ForceKeep(ReasonAnomaly) }, 0, ReasonAnomaly},
		{"forced", Config{SampleRate: 1}, func(_ *Tracer, sp *Span) { sp.ForceKeep("because") }, 0, ReasonForced},
		{"random-all", Config{SampleRate: 1, KeepFraction: 1}, nil, 0, ReasonRandom},
		{"dropped", Config{SampleRate: 1}, nil, 0, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tr := deterministicTracer(tc.cfg)
			sp := tr.StartRequest("read_block", "alice", "")
			if tc.drive != nil {
				tc.drive(tr, sp)
			}
			if tc.sleep > 0 {
				time.Sleep(tc.sleep)
			}
			kept, reason := tr.FinishRequest(sp)
			if (tc.want != "") != kept || reason != tc.want {
				t.Fatalf("FinishRequest = (%v, %q), want reason %q", kept, reason, tc.want)
			}
			st := tr.Stats()
			if tc.want != "" {
				if st.RetainedByReason[tc.want] != 1 || st.TracesRetained != 1 || st.RingTraces != 1 {
					t.Fatalf("stats = %+v, want one retained as %q", st, tc.want)
				}
			} else if st.TracesRetained != 0 || st.RingTraces != 0 {
				t.Fatalf("stats = %+v, want nothing retained", st)
			}
			if st.TracesStarted != 1 || st.TracesSampled != 1 || st.TracesFinished != 1 {
				t.Fatalf("stats = %+v, want one started/sampled/finished", st)
			}
		})
	}
}

func TestRingBounded(t *testing.T) {
	tr := deterministicTracer(Config{SampleRate: 1, KeepFraction: 1, RingDepth: 4})
	for i := 0; i < 10; i++ {
		sp := tr.StartRequest(fmt.Sprintf("req%d", i), "alice", "")
		tr.FinishRequest(sp)
	}
	ring := tr.Ring()
	if len(ring) != 4 {
		t.Fatalf("ring length = %d, want 4", len(ring))
	}
	for i, ft := range ring {
		if want := fmt.Sprintf("req%d", 6+i); ft.Name != want {
			t.Errorf("ring[%d] = %s, want %s (oldest-first, newest retained)", i, ft.Name, want)
		}
	}
}

func TestSpanCapDropsAndCounts(t *testing.T) {
	tr := deterministicTracer(Config{SampleRate: 1, KeepFraction: 1, MaxSpans: 3})
	sp := tr.StartRequest("upload", "alice", "")
	a := sp.StartChild("a")
	b := sp.StartChild("b")
	c := sp.StartChild("c") // over cap: root + a + b = 3
	if a == nil || b == nil {
		t.Fatal("children under cap were dropped")
	}
	if c != nil {
		t.Fatal("child over cap was recorded")
	}
	a.End()
	b.End()
	tr.FinishRequest(sp)
	ring := tr.Ring()
	if len(ring) != 1 || len(ring[0].Spans) != 3 || ring[0].DroppedSpans != 1 {
		t.Fatalf("ring = %+v, want 3 spans with 1 dropped", ring[0])
	}
	if st := tr.Stats(); st.SpansDropped != 1 || st.SpansStarted != 3 {
		t.Fatalf("stats = %+v, want 3 started 1 dropped", st)
	}
}

func TestSpanTreeParentage(t *testing.T) {
	tr := deterministicTracer(Config{SampleRate: 1, KeepFraction: 1})
	root := tr.StartRequest("upload", "alice", "")
	compress := root.StartChild("compress")
	encode := compress.StartChild("encode")
	encode.Annotate("block", "0")
	encode.End()
	compress.End()
	commit := root.StartChild("store.commit")
	fsync := commit.StartChild("store.fsync")
	fsync.End()
	commit.End()
	tr.FinishRequest(root)

	ring := tr.Ring()
	if len(ring) != 1 {
		t.Fatalf("ring length = %d", len(ring))
	}
	byID := map[string]SpanData{}
	for _, sd := range ring[0].Spans {
		byID[sd.SpanID] = sd
	}
	parentName := func(sd SpanData) string {
		p, ok := byID[sd.ParentID]
		if !ok {
			return "?"
		}
		return p.Name
	}
	for _, want := range []struct{ child, parent string }{
		{"compress", "upload"},
		{"encode", "compress"},
		{"store.commit", "upload"},
		{"store.fsync", "store.commit"},
	} {
		found := false
		for _, sd := range ring[0].Spans {
			if sd.Name == want.child {
				found = true
				if got := parentName(sd); got != want.parent {
					t.Errorf("%s parent = %s, want %s", want.child, got, want.parent)
				}
				if sd.DurationNS < 0 {
					t.Errorf("%s never ended", want.child)
				}
			}
		}
		if !found {
			t.Errorf("span %s missing", want.child)
		}
	}
	if got := byID[ring[0].Spans[0].SpanID].Name; got != "upload" {
		t.Fatalf("root span = %s", got)
	}
}

func TestDoubleEndAndDoubleFinishAreNoOps(t *testing.T) {
	tr := deterministicTracer(Config{SampleRate: 1, KeepFraction: 1})
	root := tr.StartRequest("upload", "alice", "")
	c := root.StartChild("compress")
	c.End()
	c.End()
	c.Annotate("late", "ignored") // annotate after End: no-op, must not panic
	if kept, _ := tr.FinishRequest(root); !kept {
		t.Fatal("first FinishRequest dropped")
	}
	if kept, _ := tr.FinishRequest(root); kept {
		t.Fatal("second FinishRequest retained again")
	}
	if st := tr.Stats(); st.RingTraces != 1 {
		t.Fatalf("ring traces = %d, want 1", st.RingTraces)
	}
}

func TestConcurrentChildren(t *testing.T) {
	tr := deterministicTracer(Config{SampleRate: 1, KeepFraction: 1, MaxSpans: 4096})
	root := tr.StartRequest("upload", "alice", "")
	var wg sync.WaitGroup
	const workers, perWorker = 8, 50
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				sp := root.StartChild("encode")
				sp.AnnotateInt("worker", int64(w))
				sp.End()
			}
		}(w)
	}
	wg.Wait()
	tr.FinishRequest(root)
	ring := tr.Ring()
	if len(ring) != 1 {
		t.Fatalf("ring length = %d", len(ring))
	}
	if got := len(ring[0].Spans); got != 1+workers*perWorker {
		t.Fatalf("spans = %d, want %d", got, 1+workers*perWorker)
	}
	for _, sd := range ring[0].Spans[1:] {
		if sd.ParentID != ring[0].Spans[0].SpanID {
			t.Fatalf("concurrent child parent = %q, want root", sd.ParentID)
		}
		if sd.DurationNS < 0 {
			t.Fatal("concurrent child never ended")
		}
	}
}

func TestNilTracerAndNilSpanSafe(t *testing.T) {
	var tr *Tracer
	sp := tr.StartRequest("upload", "alice", "")
	if sp != nil {
		t.Fatal("nil tracer returned non-nil span")
	}
	// Every method on a nil span must be a safe no-op.
	sp.End()
	sp.Annotate("k", "v")
	sp.AnnotateInt("k", 1)
	sp.SetError(errors.New("x"))
	sp.ForceKeep(ReasonAnomaly)
	if sp.StartChild("x") != nil || sp.Recording() || sp.TraceID() != "" || sp.SpanID() != "" || sp.Traceparent() != "" {
		t.Fatal("nil span leaked state")
	}
	if kept, _ := tr.FinishRequest(sp); kept {
		t.Fatal("nil tracer retained a trace")
	}
	if got := tr.Ring(); got != nil {
		t.Fatal("nil tracer ring non-nil")
	}
	if st := tr.Stats(); st.TracesStarted != 0 {
		t.Fatal("nil tracer stats nonzero")
	}
	if cfg := tr.Config(); cfg.RingDepth != 0 || cfg.SampleRate != 0 {
		t.Fatal("nil tracer config nonzero")
	}
}

func TestWriteChromeShape(t *testing.T) {
	tr := deterministicTracer(Config{SampleRate: 1, KeepFraction: 1})
	root := tr.StartRequest("read_block", "alice", "")
	lookup := root.StartChild("cache.lookup")
	lookup.Annotate("cache_outcome", "miss")
	fill := lookup.StartChild("cache.fill")
	fill.End()
	lookup.End()
	leak := root.StartChild("leaked")
	_ = leak // deliberately never ended: export must mark it unfinished
	tr.FinishRequest(root)

	var buf bytes.Buffer
	if err := WriteChrome(&buf, tr.Ring()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			TS   float64           `json:"ts"`
			Dur  float64           `json:"dur"`
			PID  int               `json:"pid"`
			TID  int               `json:"tid"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	var meta, complete, unfinished int
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			meta++
			if ev.Name != "process_name" || !strings.Contains(ev.Args["name"], "keep=random") {
				t.Errorf("metadata event %+v malformed", ev)
			}
		case "X":
			complete++
			if ev.PID != 1 {
				t.Errorf("span event pid = %d, want 1", ev.PID)
			}
			if ev.Args["trace_id"] == "" || ev.Args["span_id"] == "" {
				t.Errorf("span event %q missing identity args", ev.Name)
			}
			if ev.Name != "read_block" && ev.Args["parent_id"] == "" {
				t.Errorf("child span %q missing parent_id", ev.Name)
			}
			if ev.Args["unfinished"] == "true" {
				unfinished++
			}
		default:
			t.Errorf("unexpected event phase %q", ev.Ph)
		}
	}
	if meta != 1 || complete != 4 || unfinished != 1 {
		t.Fatalf("meta=%d complete=%d unfinished=%d, want 1/4/1", meta, complete, unfinished)
	}
}

func TestAssignLanesSeparatesOverlaps(t *testing.T) {
	spans := []SpanData{
		{Name: "root", StartUnixNS: 0, DurationNS: 100},
		{Name: "a", StartUnixNS: 10, DurationNS: 50}, // overlaps root
		{Name: "b", StartUnixNS: 20, DurationNS: 10}, // overlaps root and a
		{Name: "c", StartUnixNS: 70, DurationNS: 10}, // fits after a on a's lane
	}
	lanes := assignLanes(spans)
	if lanes[0] == lanes[1] || lanes[0] == lanes[2] || lanes[1] == lanes[2] {
		t.Fatalf("overlapping spans share a lane: %v", lanes)
	}
	if lanes[3] != lanes[1] {
		t.Fatalf("non-overlapping span did not reuse a freed lane: %v", lanes)
	}
}

// TestNilSpanAllocs proves the uninstrumented path is allocation-free:
// child creation, annotation and End on a nil span must not allocate.
func TestNilSpanAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is skewed under the race detector")
	}
	var sp *Span
	allocs := testing.AllocsPerRun(1000, func() {
		c := sp.StartChild("encode")
		c.AnnotateInt("block", 7)
		c.End()
	})
	if allocs != 0 {
		t.Fatalf("nil-span instrumentation allocates %.1f allocs/op, want 0", allocs)
	}
}

// BenchmarkNilSpan measures the per-call overhead of disabled tracing
// — the cost every hot-path kernel pays when no trace is recording.
func BenchmarkNilSpan(b *testing.B) {
	var sp *Span
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := sp.StartChild("encode")
		c.End()
	}
}

// BenchmarkRecordingSpan measures the sampled path for contrast; the
// trace is finished (and dropped) every 256 spans so span storage
// stays bounded across b.N.
func BenchmarkRecordingSpan(b *testing.B) {
	tr := New(Config{SampleRate: 1, Seed: 42})
	root := tr.StartRequest("bench", "alice", "")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%256 == 255 {
			tr.FinishRequest(root)
			root = tr.StartRequest("bench", "alice", "")
		}
		c := root.StartChild("encode")
		c.End()
	}
}
