package trace

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden schema files")

// TestTraceSchemaGolden pins the JSON shape of the trace surfaces:
// the Chrome trace-event export served by GET /debug/traces and
// written by -traceout (parsed by Perfetto, chrome://tracing and the
// loadtest fleet's retention check), the FinishedTrace/SpanData forms
// and the Stats snapshot. Renaming or retyping a field breaks those
// consumers silently, so the schema can only change together with
// this golden (go test ./internal/telemetry/trace -run Schema -update).
func TestTraceSchemaGolden(t *testing.T) {
	var schema strings.Builder
	describeType(&schema, "chrome", reflect.TypeOf(chromeDoc{}))
	schema.WriteString("\n")
	describeType(&schema, "finished_trace", reflect.TypeOf(FinishedTrace{}))
	schema.WriteString("\n")
	describeType(&schema, "stats", reflect.TypeOf(Stats{}))
	got := schema.String()

	golden := filepath.Join("testdata", "trace_schema.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Fatalf("trace JSON schema drifted from golden.\n"+
			"If the change is intentional, update downstream consumers and rerun with -update.\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// describeType renders one line per JSON field path: path, wire name,
// Go type, and whether the field is omitempty. Mirrors the snapshot
// schema golden in internal/telemetry.
func describeType(w *strings.Builder, path string, t reflect.Type) {
	switch t.Kind() {
	case reflect.Pointer:
		describeType(w, path, t.Elem())
	case reflect.Struct:
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			if !f.IsExported() {
				continue
			}
			tag := f.Tag.Get("json")
			name, opts, _ := strings.Cut(tag, ",")
			if name == "-" {
				continue
			}
			if name == "" {
				name = f.Name
			}
			line := fmt.Sprintf("%s.%s %s", path, name, wireType(f.Type))
			if strings.Contains(","+opts+",", ",omitempty,") {
				line += " omitempty"
			}
			w.WriteString(line + "\n")
			descend(w, path+"."+name, f.Type)
		}
	}
}

// descend recurses into composite field types so nested structs get
// their own schema lines.
func descend(w *strings.Builder, path string, t reflect.Type) {
	switch t.Kind() {
	case reflect.Pointer:
		descend(w, path, t.Elem())
	case reflect.Struct:
		describeType(w, path, t)
	case reflect.Slice, reflect.Array:
		descend(w, path+"[]", t.Elem())
	case reflect.Map:
		descend(w, path+"{"+t.Key().Kind().String()+"}", t.Elem())
	}
}

// wireType names the JSON encoding a Go type produces.
func wireType(t reflect.Type) string {
	switch t.Kind() {
	case reflect.Pointer:
		return wireType(t.Elem())
	case reflect.String:
		return "string"
	case reflect.Bool:
		return "bool"
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64,
		reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		return "integer"
	case reflect.Float32, reflect.Float64:
		return "number"
	case reflect.Slice, reflect.Array:
		return "array(" + wireType(t.Elem()) + ")"
	case reflect.Map:
		return "object(" + t.Key().Kind().String() + "->" + wireType(t.Elem()) + ")"
	case reflect.Struct:
		return "object " + t.Name()
	default:
		return t.Kind().String()
	}
}
