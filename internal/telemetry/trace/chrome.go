// Chrome trace-event JSON export. The retained ring is rendered in
// the Trace Event Format's "JSON object" flavor — loadable directly
// in Perfetto (ui.perfetto.dev) or chrome://tracing:
//
//   - one process (pid) per retained trace, named via an "M"
//     (metadata) process_name event carrying route/tenant/keep-reason
//   - "X" (complete) events per span, ts/dur in microseconds, packed
//     onto threads (tid) by a greedy interval scheduler so
//     overlapping spans (parallel pipeline workers) get their own
//     lanes instead of nesting incorrectly
//   - span identity (trace_id / span_id / parent_id) and annotations
//     in args, which is also what the loadtest fleet parses to check
//     tail retention
package trace

import (
	"encoding/json"
	"io"
	"sort"
)

// chromeEvent is one entry of traceEvents. Field set and JSON names
// follow the Trace Event Format spec.
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	TS   float64           `json:"ts"` // microseconds
	Dur  float64           `json:"dur,omitempty"`
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// chromeDoc is the top-level trace-event JSON object.
type chromeDoc struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChrome renders traces (as returned by Tracer.Ring) as Chrome
// trace-event JSON.
func WriteChrome(w io.Writer, traces []*FinishedTrace) error {
	doc := chromeDoc{DisplayTimeUnit: "ms", TraceEvents: []chromeEvent{}}
	for i, ft := range traces {
		pid := i + 1
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: "process_name",
			Ph:   "M",
			PID:  pid,
			Args: map[string]string{
				"name": ft.Name + " trace=" + ft.TraceID + " tenant=" + ft.Tenant + " keep=" + ft.KeepReason,
			},
		})
		lanes := assignLanes(ft.Spans)
		for j := range ft.Spans {
			sp := &ft.Spans[j]
			ev := chromeEvent{
				Name: sp.Name,
				Cat:  "pastrid",
				Ph:   "X",
				TS:   float64(sp.StartUnixNS) / 1e3,
				Dur:  float64(sp.DurationNS) / 1e3,
				PID:  pid,
				TID:  lanes[j],
				Args: map[string]string{
					"trace_id": ft.TraceID,
					"span_id":  sp.SpanID,
				},
			}
			if sp.ParentID != "" {
				ev.Args["parent_id"] = sp.ParentID
			}
			if sp.Error {
				ev.Args["error"] = "true"
			}
			if sp.DurationNS < 0 { // leaked span: never ended
				ev.Dur = 0
				ev.Args["unfinished"] = "true"
			}
			for _, a := range sp.Attrs {
				ev.Args[a.Key] = a.Value
			}
			doc.TraceEvents = append(doc.TraceEvents, ev)
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}

// assignLanes packs spans onto integer lanes (Chrome tids) so that
// spans overlapping in time never share a lane: sort by start, give
// each span the lowest lane whose previous occupant has ended.
func assignLanes(spans []SpanData) []int {
	order := make([]int, len(spans))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return spans[order[a]].StartUnixNS < spans[order[b]].StartUnixNS
	})
	lanes := make([]int, len(spans))
	var laneEnd []int64 // end time of the last span on each lane
	for _, idx := range order {
		sp := &spans[idx]
		end := sp.StartUnixNS
		if sp.DurationNS > 0 {
			end += sp.DurationNS
		}
		placed := false
		for l, e := range laneEnd {
			if e <= sp.StartUnixNS {
				lanes[idx] = l
				laneEnd[l] = end
				placed = true
				break
			}
		}
		if !placed {
			lanes[idx] = len(laneEnd)
			laneEnd = append(laneEnd, end)
		}
	}
	return lanes
}
