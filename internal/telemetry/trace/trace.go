// Package trace implements request-scoped distributed tracing for the
// pastrid service: spans from the HTTP edge down to the PaSTRI encode
// kernel, W3C traceparent propagation, head sampling plus tail-based
// retention, and a bounded ring of finished traces exported as Chrome
// trace-event JSON.
//
// Design rules, mirroring the telemetry.Collector contract:
//
//   - A nil *Tracer and a nil *Span are fully usable: every method
//     nil-checks its receiver first and returns immediately, so
//     uninstrumented (or unsampled) paths pay one predictable branch
//     and zero allocations. This is proven by TestNilSpanAllocs and
//     BenchmarkNilSpan, and gated transitively by the PR 4 kernel
//     bench gate (core threads spans through the same hot paths).
//   - Stdlib only. No clocks besides time.Now/Since (annotated for
//     detlint where reachable from the deterministic pipeline), no
//     math/rand: sampling decisions use a splitmix64 generator seeded
//     from crypto/rand (or Config.Seed for deterministic tests).
//   - Spans of one trace share a single mutex-guarded slice; workers
//     from the parallel pipeline may start/end children concurrently.
//
// Sampling is two-staged. Head sampling decides at StartRequest, per
// tenant, whether the trace records spans at all (unsampled requests
// still get trace/span IDs so logs stay correlatable). Tail retention
// decides at FinishRequest which finished traces enter the export
// ring: errors, slow requests (Config.LatencyThreshold), traces
// force-kept by the caller (e.g. on a flight-recorder anomaly), and a
// Config.KeepFraction random residue for baseline coverage.
package trace

import (
	"crypto/rand"
	"encoding/binary"
	"sync"
	"sync/atomic"
	"time"
)

// Default capacities, applied by New when the Config field is zero.
const (
	DefaultRingDepth = 256 // finished traces retained for export
	DefaultMaxSpans  = 512 // spans recorded per trace before dropping
)

// Keep reasons attached to retained traces and used as the label set
// of the pastrid_traces_retained_total metric. Closed set: ForceKeep
// maps unknown reasons to ReasonForced so label cardinality is fixed.
const (
	ReasonError   = "error"
	ReasonLatency = "latency"
	ReasonAnomaly = "anomaly"
	ReasonForced  = "forced"
	ReasonRandom  = "random"
)

// KeepReasons lists every tail-retention reason in stable order.
var KeepReasons = []string{ReasonError, ReasonLatency, ReasonAnomaly, ReasonForced, ReasonRandom}

// Config parameterizes a Tracer. The zero value is valid: sample
// nothing at the head, keep errors/latency outliers of whatever was
// sampled, default ring depth and span cap.
type Config struct {
	// SampleRate is the default head-sampling probability in [0, 1].
	SampleRate float64

	// TenantRates overrides SampleRate per tenant. A negative rate
	// disables head sampling for that tenant entirely.
	TenantRates map[string]float64

	// LatencyThreshold is the tail-retention latency rule: a finished
	// trace whose root duration is >= the threshold is always kept.
	// Zero disables the rule.
	LatencyThreshold time.Duration

	// KeepFraction is the probability in [0, 1] that an otherwise
	// unremarkable finished trace is kept anyway, preserving baseline
	// (non-outlier) traces for comparison. 1.0 keeps everything —
	// used by the loadtest fleet to make retention deterministic.
	KeepFraction float64

	// RingDepth bounds the finished-trace export ring (default
	// DefaultRingDepth). Oldest retained traces are evicted first.
	RingDepth int

	// MaxSpans caps recorded spans per trace (default
	// DefaultMaxSpans); further StartChild calls count as dropped.
	MaxSpans int

	// Seed, when nonzero, seeds the sampling RNG deterministically.
	// Zero seeds from crypto/rand.
	Seed uint64
}

// A Tracer makes head-sampling decisions, applies tail retention and
// owns the bounded ring of finished traces. All methods are safe for
// concurrent use and safe on a nil receiver.
type Tracer struct {
	cfg Config
	rng atomic.Uint64 // splitmix64 state

	mu   sync.Mutex
	ring []*FinishedTrace // oldest first, len <= cfg.RingDepth

	tracesStarted  Counter
	tracesSampled  Counter
	tracesFinished Counter
	spansStarted   Counter
	spansDropped   Counter
	retained       [numReasons]Counter
}

// Counter aliases the telemetry counter idiom without importing the
// parent package (which must stay import-light); it is a lock-free
// monotonically increasing counter.
type Counter struct{ v atomic.Uint64 }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

const numReasons = 5

var reasonIndex = map[string]int{
	ReasonError:   0,
	ReasonLatency: 1,
	ReasonAnomaly: 2,
	ReasonForced:  3,
	ReasonRandom:  4,
}

// New returns a Tracer for cfg, applying defaults for zero RingDepth
// and MaxSpans and seeding the sampling RNG.
func New(cfg Config) *Tracer {
	if cfg.RingDepth == 0 {
		cfg.RingDepth = DefaultRingDepth
	}
	if cfg.MaxSpans == 0 {
		cfg.MaxSpans = DefaultMaxSpans
	}
	t := &Tracer{cfg: cfg}
	seed := cfg.Seed
	if seed == 0 {
		var b [8]byte
		if _, err := rand.Read(b[:]); err == nil {
			seed = binary.LittleEndian.Uint64(b[:])
		}
		seed |= 1 // never zero, even if crypto/rand failed
	}
	t.rng.Store(seed)
	return t
}

// Config returns the tracer's effective configuration (defaults
// applied). Zero value on a nil tracer.
func (t *Tracer) Config() Config {
	if t == nil {
		return Config{}
	}
	return t.cfg
}

// rand64 advances the splitmix64 generator. Lock-free; distinct
// callers may interleave but every value is drawn exactly once.
func (t *Tracer) rand64() uint64 {
	x := t.rng.Add(0x9E3779B97F4A7C15)
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// rand01 returns a uniform float64 in [0, 1).
func (t *Tracer) rand01() float64 {
	return float64(t.rand64()>>11) / (1 << 53)
}

func (t *Tracer) newTraceID() TraceID {
	var id TraceID
	binary.BigEndian.PutUint64(id[:8], t.rand64())
	binary.BigEndian.PutUint64(id[8:], t.rand64())
	if id.IsZero() {
		id[15] = 1
	}
	return id
}

func (t *Tracer) newSpanID() SpanID {
	var id SpanID
	binary.BigEndian.PutUint64(id[:], t.rand64())
	if id.IsZero() {
		id[7] = 1
	}
	return id
}

// sampleRate resolves the head-sampling probability for a tenant.
func (t *Tracer) sampleRate(tenant string) float64 {
	if r, ok := t.cfg.TenantRates[tenant]; ok {
		if r < 0 {
			return 0
		}
		return r
	}
	return t.cfg.SampleRate
}

// StartRequest opens the root span for one request. The traceparent
// argument is the raw W3C header value from the incoming request (""
// if absent): a valid header pins the trace ID, records the remote
// span as the root's parent, and its sampled flag forces head
// sampling on. Otherwise a fresh trace ID is drawn and head sampling
// follows the tenant's configured rate. The returned span always
// carries usable IDs for log correlation, even when head sampling
// declined to record; on a nil tracer it is nil.
func (t *Tracer) StartRequest(name, tenant, traceparent string) *Span {
	if t == nil {
		return nil
	}
	t.tracesStarted.Add(1)
	s := &Span{tracer: t, root: true}
	var sampled bool
	if tid, psid, flags, ok := ParseTraceparent(traceparent); ok {
		s.traceID = tid
		s.parentID = psid
		sampled = flags&FlagSampled != 0
	} else {
		s.traceID = t.newTraceID()
		sampled = t.rand01() < t.sampleRate(tenant)
	}
	s.spanID = t.newSpanID()
	s.start = time.Now() //lint:detlint-ok wall-clock span timestamps are observability-only, never encoded output
	if !sampled {
		return s
	}
	t.tracesSampled.Add(1)
	t.spansStarted.Add(1)
	at := &activeTrace{tenant: tenant, maxSpans: t.cfg.MaxSpans}
	at.spans = make([]SpanData, 1, 16)
	at.spans[0] = SpanData{
		SpanID:      s.spanID.String(),
		ParentID:    s.parentID.String(),
		Name:        name,
		StartUnixNS: s.start.UnixNano(),
		DurationNS:  -1,
	}
	s.at = at
	return s
}

// FinishRequest ends the root span, applies the tail-retention rules
// and, when the trace is kept, snapshots it into the export ring.
// It reports whether the trace was retained and why ("" when not).
// Nil-safe; spans from unsampled requests finish without recording.
func (t *Tracer) FinishRequest(root *Span) (retained bool, reason string) {
	if t == nil || root == nil || !root.root {
		return false, ""
	}
	dur := time.Since(root.start) //lint:detlint-ok wall-clock span timestamps are observability-only, never encoded output
	t.tracesFinished.Add(1)
	at := root.at
	if at == nil {
		return false, ""
	}
	root.at = nil // second FinishRequest is a no-op
	at.mu.Lock()
	at.spans[0].DurationNS = dur.Nanoseconds()
	at.spans[0].Error = at.spans[0].Error || at.err
	switch {
	case at.err:
		reason = ReasonError
	case at.forced != "":
		reason = at.forced
	case t.cfg.LatencyThreshold > 0 && dur >= t.cfg.LatencyThreshold:
		reason = ReasonLatency
	case t.cfg.KeepFraction > 0 && t.rand01() < t.cfg.KeepFraction:
		reason = ReasonRandom
	}
	if reason == "" {
		at.mu.Unlock()
		return false, ""
	}
	ft := &FinishedTrace{
		TraceID:      root.traceID.String(),
		Name:         at.spans[0].Name,
		Tenant:       at.tenant,
		KeepReason:   reason,
		StartUnixNS:  at.spans[0].StartUnixNS,
		DurationNS:   at.spans[0].DurationNS,
		DroppedSpans: at.dropped,
		Spans:        at.spans,
	}
	at.mu.Unlock()
	t.retained[reasonIndex[reason]].Add(1)
	t.mu.Lock()
	if len(t.ring) >= t.cfg.RingDepth {
		copy(t.ring, t.ring[1:])
		t.ring[len(t.ring)-1] = ft
	} else {
		t.ring = append(t.ring, ft)
	}
	t.mu.Unlock()
	return true, reason
}

// Ring returns the retained traces, oldest first. The slice is a
// copy; the FinishedTrace values are shared and must not be mutated.
func (t *Tracer) Ring() []*FinishedTrace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*FinishedTrace, len(t.ring))
	copy(out, t.ring)
	return out
}

// Stats is a point-in-time snapshot of tracer activity counters.
type Stats struct {
	TracesStarted    uint64            `json:"traces_started"`
	TracesSampled    uint64            `json:"traces_sampled"`
	TracesFinished   uint64            `json:"traces_finished"`
	TracesRetained   uint64            `json:"traces_retained"`
	SpansStarted     uint64            `json:"spans_started"`
	SpansDropped     uint64            `json:"spans_dropped"`
	RetainedByReason map[string]uint64 `json:"retained_by_reason"`
	RingTraces       int               `json:"ring_traces"`
}

// Stats snapshots the tracer counters. Zero value on a nil tracer.
func (t *Tracer) Stats() Stats {
	if t == nil {
		return Stats{RetainedByReason: map[string]uint64{}}
	}
	s := Stats{
		TracesStarted:    t.tracesStarted.Load(),
		TracesSampled:    t.tracesSampled.Load(),
		TracesFinished:   t.tracesFinished.Load(),
		SpansStarted:     t.spansStarted.Load(),
		SpansDropped:     t.spansDropped.Load(),
		RetainedByReason: make(map[string]uint64, len(KeepReasons)),
	}
	for _, r := range KeepReasons {
		n := t.retained[reasonIndex[r]].Load()
		s.RetainedByReason[r] = n
		s.TracesRetained += n
	}
	t.mu.Lock()
	s.RingTraces = len(t.ring)
	t.mu.Unlock()
	return s
}

// An activeTrace accumulates the spans of one sampled in-flight
// request. Shared by every span of the trace; the mutex makes
// concurrent StartChild/End from pipeline workers safe.
type activeTrace struct {
	tenant   string
	maxSpans int

	mu      sync.Mutex
	spans   []SpanData // index 0 is the root
	dropped int
	err     bool
	forced  string // tail keep reason forced by the caller
}

// SpanData is the recorded form of one span, as serialized in
// FinishedTrace. DurationNS is -1 while the span is unfinished (a
// leaked span stays -1 in the export and is marked unfinished there).
type SpanData struct {
	SpanID      string `json:"span_id"`
	ParentID    string `json:"parent_id,omitempty"`
	Name        string `json:"name"`
	StartUnixNS int64  `json:"start_unix_ns"`
	DurationNS  int64  `json:"duration_ns"`
	Error       bool   `json:"error,omitempty"`
	Attrs       []Attr `json:"attrs,omitempty"`
}

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// A FinishedTrace is one retained trace in the export ring.
type FinishedTrace struct {
	TraceID      string     `json:"trace_id"`
	Name         string     `json:"name"`
	Tenant       string     `json:"tenant,omitempty"`
	KeepReason   string     `json:"keep_reason"`
	StartUnixNS  int64      `json:"start_unix_ns"`
	DurationNS   int64      `json:"duration_ns"`
	DroppedSpans int        `json:"dropped_spans,omitempty"`
	Spans        []SpanData `json:"spans"`
}

// A Span is one live timed operation within a trace. The zero of the
// API is nil: every method nil-checks the receiver, and StartChild on
// a nil or non-recording span returns nil, so instrumentation costs
// one branch when tracing is off. Spans are not reusable after End.
type Span struct {
	tracer   *Tracer
	at       *activeTrace // nil when head sampling declined
	traceID  TraceID
	spanID   SpanID
	parentID SpanID // remote parent for roots, local parent for children
	idx      int    // index of this span's SpanData in at.spans
	start    time.Time
	root     bool
}

// Recording reports whether the span is live and recording span data
// (head-sampled and under the span cap). False on nil.
func (s *Span) Recording() bool { return s != nil && s.at != nil }

// TraceID returns the 32-hex-digit trace ID, or "" on nil.
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return s.traceID.String()
}

// SpanID returns the 16-hex-digit span ID, or "" on nil.
func (s *Span) SpanID() string {
	if s == nil {
		return ""
	}
	return s.spanID.String()
}

// Traceparent renders the W3C traceparent header value identifying
// this span, with the sampled flag reflecting whether the trace is
// recording. "" on nil.
func (s *Span) Traceparent() string {
	if s == nil {
		return ""
	}
	var flags byte
	if s.at != nil {
		flags = FlagSampled
	}
	return FormatTraceparent(s.traceID, s.spanID, flags)
}

// StartChild opens a child span. On a nil or non-recording receiver
// it returns nil (zero further cost); when the trace has hit its span
// cap the child is counted as dropped and nil is returned.
func (s *Span) StartChild(name string) *Span {
	if s == nil || s.at == nil {
		return nil
	}
	at := s.at
	t := s.tracer
	//lint:hotalloc2-ok sampled-trace slow path: reached from hot kernels only when a span is recording; the nil-span fast path above allocates nothing
	child := &Span{
		tracer:   t,
		traceID:  s.traceID,
		spanID:   t.newSpanID(),
		parentID: s.spanID,
		start:    time.Now(), //lint:detlint-ok wall-clock span timestamps are observability-only, never encoded output
	}
	at.mu.Lock()
	if len(at.spans) >= at.maxSpans {
		at.dropped++
		at.mu.Unlock()
		t.spansDropped.Add(1)
		return nil
	}
	child.at = at
	child.idx = len(at.spans)
	//lint:hotalloc2-ok sampled-trace slow path: span storage grows only while a trace is recording
	at.spans = append(at.spans, SpanData{
		SpanID:      child.spanID.String(),
		ParentID:    s.spanID.String(),
		Name:        name,
		StartUnixNS: child.start.UnixNano(),
		DurationNS:  -1,
	})
	at.mu.Unlock()
	t.spansStarted.Add(1)
	return child
}

// End finishes the span, recording its duration. Safe on nil; a
// second End is a no-op. Root spans are ended by
// Tracer.FinishRequest, not End.
func (s *Span) End() {
	if s == nil || s.at == nil || s.root {
		return
	}
	dur := time.Since(s.start) //lint:detlint-ok wall-clock span timestamps are observability-only, never encoded output
	at := s.at
	s.at = nil
	at.mu.Lock()
	if at.spans[s.idx].DurationNS < 0 {
		at.spans[s.idx].DurationNS = dur.Nanoseconds()
	}
	at.mu.Unlock()
}

// Annotate attaches a key/value attribute to the span. No-op on nil
// or ended spans.
func (s *Span) Annotate(key, value string) {
	if s == nil || s.at == nil {
		return
	}
	at := s.at
	at.mu.Lock()
	//lint:hotalloc2-ok sampled-trace slow path: attributes accumulate only while a trace is recording
	at.spans[s.idx].Attrs = append(at.spans[s.idx].Attrs, Attr{Key: key, Value: value})
	at.mu.Unlock()
}

// AnnotateInt attaches an integer attribute to the span.
func (s *Span) AnnotateInt(key string, value int64) {
	if s == nil || s.at == nil {
		return
	}
	s.Annotate(key, itoa(value))
}

// SetError marks the span (and, transitively, its trace: the tail
// sampler always keeps errored traces) as failed. A nil err still
// marks the span. No-op on nil spans.
func (s *Span) SetError(err error) {
	if s == nil || s.at == nil {
		return
	}
	at := s.at
	at.mu.Lock()
	at.spans[s.idx].Error = true
	if err != nil {
		//lint:hotalloc2-ok error path: annotating a failed span is never hot
		at.spans[s.idx].Attrs = append(at.spans[s.idx].Attrs, Attr{Key: "error_detail", Value: err.Error()})
	}
	at.err = true
	at.mu.Unlock()
}

// ForceKeep requests tail retention for the span's trace regardless
// of latency or the random keep fraction. Unknown reasons are
// recorded as ReasonForced to keep the metric label set closed.
func (s *Span) ForceKeep(reason string) {
	if s == nil || s.at == nil {
		return
	}
	if _, ok := reasonIndex[reason]; !ok || reason == ReasonError || reason == ReasonLatency || reason == ReasonRandom {
		reason = ReasonForced
	}
	at := s.at
	at.mu.Lock()
	if at.forced == "" {
		at.forced = reason
	}
	at.mu.Unlock()
}

// itoa is a minimal strconv.FormatInt(v, 10) without the strconv
// import weight on the hot path signature.
func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	neg := v < 0
	u := uint64(v)
	if neg {
		u = uint64(-v)
	}
	for u > 0 {
		i--
		buf[i] = byte('0' + u%10)
		u /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
