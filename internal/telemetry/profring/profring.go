// Package profring is a bounded on-disk ring of pprof profiles —
// pastrid's continuous-profiling store. A sampler captures periodic
// CPU and heap profiles, and the server force-captures when an SLO
// objective enters fast burn or the flight recorder flags an anomaly,
// tagging each capture with the reason, the tenant that triggered it,
// and the most recent retained trace ID so a profile can be joined
// back to a trace.
//
// The ring is disk-bounded, not time-bounded: at most MaxProfiles
// profile files are kept and the oldest are pruned on each capture, so
// a daemon can profile forever in a fixed footprint. Each profile is
// the runtime's gzip'd-protobuf output in a `{seq}-{kind}-{reason}.pb.gz`
// file with a small JSON sidecar holding the attribution metadata —
// `go tool pprof` reads the profile directly, and pastrid-report reads
// the sidecars.
//
// Only one CPU profile may run per process (a runtime/pprof
// limitation), so CPU captures are guarded by a process-wide busy
// flag: a capture requested while one is running is counted as
// skipped, never queued — by the time the running capture ends the
// moment it was meant to observe is gone.
package profring

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Capture kinds.
const (
	KindCPU  = "cpu"
	KindHeap = "heap"
)

// Well-known capture reasons (free-form strings; these are the ones
// pastrid emits).
const (
	ReasonPeriodic      = "periodic"
	ReasonSLOBurn       = "slo_burn"
	ReasonFlightAnomaly = "flight_anomaly"
	ReasonForced        = "forced"
)

// ErrBusy reports that a CPU capture was skipped because another one
// was already running.
var ErrBusy = errors.New("profring: cpu profile already running")

// cpuBusy is process-wide: runtime/pprof allows one CPU profile per
// process regardless of how many rings exist.
var cpuBusy atomic.Bool

// Config sizes a ring. Zero values take defaults; an empty Dir
// disables profiling entirely (Open returns a nil ring, whose methods
// all no-op).
type Config struct {
	Dir         string
	MaxProfiles int           // default 64
	CPUDuration time.Duration // default 1s per CPU capture
	Period      time.Duration // default 60s between periodic captures
}

func (c Config) withDefaults() Config {
	if c.MaxProfiles <= 0 {
		c.MaxProfiles = 64
	}
	if c.CPUDuration <= 0 {
		c.CPUDuration = time.Second
	}
	if c.Period <= 0 {
		c.Period = time.Minute
	}
	return c
}

// Entry describes one captured profile: the file pair on disk plus the
// attribution recorded at capture time.
type Entry struct {
	Seq       uint64 `json:"seq"`
	Kind      string `json:"kind"`
	Reason    string `json:"reason"`
	Tenant    string `json:"tenant,omitempty"`
	TraceID   string `json:"trace_id,omitempty"`
	UnixNano  int64  `json:"unix_nano"`
	SizeBytes int64  `json:"size_bytes"`
	Path      string `json:"path"`
	HeapAlloc uint64 `json:"heap_alloc_bytes,omitempty"`
}

// Stats counts ring activity for /metrics.
type Stats struct {
	Captures uint64
	Skipped  uint64
	Pruned   uint64
	Entries  int
	Bytes    int64
}

// Ring is the on-disk profile ring. The nil *Ring is a valid disabled
// ring. Methods are safe for concurrent use.
type Ring struct {
	cfg Config

	mu       sync.Mutex
	entries  []Entry // sorted by Seq ascending
	seq      uint64
	lastTick time.Time

	captures atomic.Uint64
	skipped  atomic.Uint64
	pruned   atomic.Uint64
}

// Open creates (or reopens) a ring at cfg.Dir, adopting profiles left
// by a previous run so pruning stays bounded across restarts. An
// empty Dir returns (nil, nil): profiling disabled.
func Open(cfg Config) (*Ring, error) {
	if cfg.Dir == "" {
		return nil, nil
	}
	cfg = cfg.withDefaults()
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("profring: %w", err)
	}
	r := &Ring{cfg: cfg}

	metas, err := filepath.Glob(filepath.Join(cfg.Dir, "*.meta.json"))
	if err != nil {
		return nil, fmt.Errorf("profring: %w", err)
	}
	for _, m := range metas {
		data, err := os.ReadFile(m)
		if err != nil {
			continue
		}
		var e Entry
		if json.Unmarshal(data, &e) != nil || e.Path == "" {
			continue
		}
		if _, err := os.Stat(e.Path); err != nil {
			os.Remove(m) //lint:errdrop-ok orphaned sidecar; removal is best-effort
			continue
		}
		r.entries = append(r.entries, e)
		if e.Seq >= r.seq {
			r.seq = e.Seq + 1
		}
	}
	sort.Slice(r.entries, func(i, j int) bool { return r.entries[i].Seq < r.entries[j].Seq })
	r.pruneLocked()
	return r, nil
}

// Dir returns the ring directory ("" for a disabled ring).
func (r *Ring) Dir() string {
	if r == nil {
		return ""
	}
	return r.cfg.Dir
}

// CaptureCPU records a CPU profile of CPUDuration, blocking for that
// long — callers on request paths should invoke it from a goroutine.
// Returns ErrBusy (and counts a skip) when a CPU profile is already
// running anywhere in the process.
func (r *Ring) CaptureCPU(reason, tenant, traceID string) (Entry, error) {
	if r == nil {
		return Entry{}, nil
	}
	if !cpuBusy.CompareAndSwap(false, true) {
		r.skipped.Add(1)
		return Entry{}, ErrBusy
	}
	defer cpuBusy.Store(false)

	e, f, err := r.begin(KindCPU, reason, tenant, traceID)
	if err != nil {
		return Entry{}, err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()         //lint:errdrop-ok capture failed; close is cleanup
		os.Remove(e.Path) //lint:errdrop-ok capture failed; unlink is cleanup
		r.skipped.Add(1)
		return Entry{}, fmt.Errorf("profring: %w", err)
	}
	time.Sleep(r.cfg.CPUDuration)
	pprof.StopCPUProfile()
	return r.commit(e, f)
}

// CaptureHeap records a heap profile (gzip'd protobuf, like the CPU
// kind). Fast: no sampling window.
func (r *Ring) CaptureHeap(reason, tenant, traceID string) (Entry, error) {
	if r == nil {
		return Entry{}, nil
	}
	e, f, err := r.begin(KindHeap, reason, tenant, traceID)
	if err != nil {
		return Entry{}, err
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	e.HeapAlloc = ms.HeapAlloc
	if err := pprof.Lookup("heap").WriteTo(f, 0); err != nil {
		f.Close()         //lint:errdrop-ok capture failed; close is cleanup
		os.Remove(e.Path) //lint:errdrop-ok capture failed; unlink is cleanup
		return Entry{}, fmt.Errorf("profring: %w", err)
	}
	return r.commit(e, f)
}

// Tick drives periodic capture: when a full Period has elapsed since
// the last periodic capture it records a heap profile inline and a CPU
// profile in the background. The sampler calls this once per sample
// interval.
func (r *Ring) Tick(now time.Time) {
	if r == nil {
		return
	}
	r.mu.Lock()
	due := r.lastTick.IsZero() || now.Sub(r.lastTick) >= r.cfg.Period
	if due {
		r.lastTick = now
	}
	r.mu.Unlock()
	if !due {
		return
	}
	r.CaptureHeap(ReasonPeriodic, "", "")   //lint:errdrop-ok periodic capture is best-effort by design
	go r.CaptureCPU(ReasonPeriodic, "", "") //lint:errdrop-ok periodic capture is best-effort by design
}

// Entries returns the retained entries, oldest first.
func (r *Ring) Entries() []Entry {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Entry(nil), r.entries...)
}

// Stats returns ring counters.
func (r *Ring) Stats() Stats {
	if r == nil {
		return Stats{}
	}
	r.mu.Lock()
	var bytes int64
	for _, e := range r.entries {
		bytes += e.SizeBytes
	}
	n := len(r.entries)
	r.mu.Unlock()
	return Stats{
		Captures: r.captures.Load(),
		Skipped:  r.skipped.Load(),
		Pruned:   r.pruned.Load(),
		Entries:  n,
		Bytes:    bytes,
	}
}

// begin allocates a sequence number and opens the profile file.
func (r *Ring) begin(kind, reason, tenant, traceID string) (Entry, *os.File, error) {
	r.mu.Lock()
	seq := r.seq
	r.seq++
	r.mu.Unlock()

	name := fmt.Sprintf("%06d-%s-%s.pb.gz", seq, kind, sanitize(reason))
	e := Entry{
		Seq:      seq,
		Kind:     kind,
		Reason:   reason,
		Tenant:   tenant,
		TraceID:  traceID,
		UnixNano: time.Now().UnixNano(),
		Path:     filepath.Join(r.cfg.Dir, name),
	}
	f, err := os.Create(e.Path)
	if err != nil {
		return Entry{}, nil, fmt.Errorf("profring: %w", err)
	}
	return e, f, nil
}

// commit closes the profile file, writes the metadata sidecar, and
// admits the entry into the ring (pruning the oldest beyond the cap).
func (r *Ring) commit(e Entry, f *os.File) (Entry, error) {
	if err := f.Close(); err != nil {
		return Entry{}, fmt.Errorf("profring: %w", err)
	}
	if fi, err := os.Stat(e.Path); err == nil {
		e.SizeBytes = fi.Size()
	}
	meta, err := json.MarshalIndent(e, "", "  ")
	if err != nil {
		return Entry{}, fmt.Errorf("profring: %w", err)
	}
	if err := os.WriteFile(metaPath(e.Path), meta, 0o644); err != nil {
		return Entry{}, fmt.Errorf("profring: %w", err)
	}

	r.mu.Lock()
	r.entries = append(r.entries, e)
	sort.Slice(r.entries, func(i, j int) bool { return r.entries[i].Seq < r.entries[j].Seq })
	r.pruneLocked()
	r.mu.Unlock()
	r.captures.Add(1)
	return e, nil
}

func (r *Ring) pruneLocked() {
	for len(r.entries) > r.cfg.MaxProfiles {
		old := r.entries[0]
		r.entries = r.entries[1:]
		os.Remove(old.Path)           //lint:errdrop-ok prune is best-effort; Open re-adopts leftovers
		os.Remove(metaPath(old.Path)) //lint:errdrop-ok prune is best-effort; Open re-adopts leftovers
		r.pruned.Add(1)
	}
}

func metaPath(profilePath string) string {
	return strings.TrimSuffix(profilePath, ".pb.gz") + ".meta.json"
}

// sanitize keeps reasons filename-safe.
func sanitize(s string) string {
	if s == "" {
		return "none"
	}
	var sb strings.Builder
	for _, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9', c == '_', c == '-':
			sb.WriteRune(c)
		case c >= 'A' && c <= 'Z':
			sb.WriteRune(c + ('a' - 'A'))
		default:
			sb.WriteByte('_')
		}
	}
	if sb.Len() == 0 {
		return "none"
	}
	return sb.String()
}

// ParseSeq extracts the sequence number from a profile filename —
// handy for tests and tooling that list the directory directly.
func ParseSeq(filename string) (uint64, bool) {
	base := filepath.Base(filename)
	i := strings.IndexByte(base, '-')
	if i <= 0 {
		return 0, false
	}
	n, err := strconv.ParseUint(base[:i], 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}
