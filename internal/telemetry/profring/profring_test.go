package profring

import (
	"bytes"
	"compress/gzip"
	"io"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func openRing(t *testing.T, cfg Config) *Ring {
	t.Helper()
	if cfg.Dir == "" {
		cfg.Dir = t.TempDir()
	}
	r, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestDisabledRing(t *testing.T) {
	r, err := Open(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if r != nil {
		t.Fatal("empty Dir should disable the ring")
	}
	// All methods must be nil-safe.
	if _, err := r.CaptureCPU(ReasonForced, "t", ""); err != nil {
		t.Fatal(err)
	}
	if _, err := r.CaptureHeap(ReasonForced, "t", ""); err != nil {
		t.Fatal(err)
	}
	r.Tick(time.Now())
	if got := r.Entries(); got != nil {
		t.Fatal("nil ring has entries")
	}
	if got := r.Stats(); got != (Stats{}) {
		t.Fatalf("nil ring stats = %+v", got)
	}
	if r.Dir() != "" {
		t.Fatal("nil ring dir")
	}
}

func TestCaptureHeapWritesPairAndMeta(t *testing.T) {
	r := openRing(t, Config{})
	e, err := r.CaptureHeap(ReasonFlightAnomaly, "acme", "trace-123")
	if err != nil {
		t.Fatal(err)
	}
	if e.Kind != KindHeap || e.Reason != ReasonFlightAnomaly || e.Tenant != "acme" || e.TraceID != "trace-123" {
		t.Fatalf("entry = %+v", e)
	}
	if e.SizeBytes <= 0 || e.HeapAlloc == 0 {
		t.Fatalf("entry sizes = %+v", e)
	}

	// The profile must be a gzip stream (the runtime's protobuf output).
	data, err := os.ReadFile(e.Path)
	if err != nil {
		t.Fatal(err)
	}
	zr, err := gzip.NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("profile is not gzip: %v", err)
	}
	if _, err := io.ReadAll(zr); err != nil {
		t.Fatalf("gunzip: %v", err)
	}

	if _, err := os.Stat(metaPath(e.Path)); err != nil {
		t.Fatalf("missing sidecar: %v", err)
	}
	st := r.Stats()
	if st.Captures != 1 || st.Entries != 1 || st.Bytes != e.SizeBytes {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCaptureCPU(t *testing.T) {
	r := openRing(t, Config{CPUDuration: 20 * time.Millisecond})
	e, err := r.CaptureCPU(ReasonSLOBurn, "tiny", "t-1")
	if err != nil {
		t.Fatal(err)
	}
	if e.Kind != KindCPU || e.SizeBytes <= 0 {
		t.Fatalf("entry = %+v", e)
	}
	seq, ok := ParseSeq(e.Path)
	if !ok || seq != e.Seq {
		t.Fatalf("ParseSeq(%q) = %d %v", e.Path, seq, ok)
	}
}

func TestCPUBusySkips(t *testing.T) {
	r := openRing(t, Config{CPUDuration: 200 * time.Millisecond})
	started := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		close(started)
		_, err := r.CaptureCPU(ReasonPeriodic, "", "")
		done <- err
	}()
	<-started
	// Wait for the first capture to actually claim the CPU profiler.
	deadline := time.Now().Add(time.Second)
	for !cpuBusy.Load() {
		if time.Now().After(deadline) {
			t.Fatal("first capture never started")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := r.CaptureCPU(ReasonForced, "", ""); err != ErrBusy {
		t.Fatalf("concurrent capture err = %v, want ErrBusy", err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if st := r.Stats(); st.Skipped != 1 || st.Captures != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPruneKeepsNewest(t *testing.T) {
	dir := t.TempDir()
	r := openRing(t, Config{Dir: dir, MaxProfiles: 3})
	for i := 0; i < 5; i++ {
		if _, err := r.CaptureHeap(ReasonPeriodic, "", ""); err != nil {
			t.Fatal(err)
		}
	}
	entries := r.Entries()
	if len(entries) != 3 {
		t.Fatalf("entries = %d, want 3", len(entries))
	}
	if entries[0].Seq != 2 || entries[2].Seq != 4 {
		t.Fatalf("kept seqs %d..%d, want 2..4", entries[0].Seq, entries[2].Seq)
	}
	if st := r.Stats(); st.Pruned != 2 {
		t.Fatalf("pruned = %d, want 2", st.Pruned)
	}
	// Only the retained file pairs remain on disk.
	files, err := filepath.Glob(filepath.Join(dir, "*.pb.gz"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 3 {
		t.Fatalf("on-disk profiles = %d, want 3", len(files))
	}
}

func TestReopenAdoptsExisting(t *testing.T) {
	dir := t.TempDir()
	r := openRing(t, Config{Dir: dir})
	e1, err := r.CaptureHeap(ReasonPeriodic, "acme", "")
	if err != nil {
		t.Fatal(err)
	}

	r2 := openRing(t, Config{Dir: dir})
	entries := r2.Entries()
	if len(entries) != 1 || entries[0].Seq != e1.Seq || entries[0].Tenant != "acme" {
		t.Fatalf("adopted entries = %+v", entries)
	}
	// New captures continue the sequence.
	e2, err := r2.CaptureHeap(ReasonPeriodic, "", "")
	if err != nil {
		t.Fatal(err)
	}
	if e2.Seq != e1.Seq+1 {
		t.Fatalf("seq = %d, want %d", e2.Seq, e1.Seq+1)
	}
}

func TestTickPeriodicCapture(t *testing.T) {
	r := openRing(t, Config{Period: time.Hour, CPUDuration: 10 * time.Millisecond})
	base := time.Unix(1000, 0)
	r.Tick(base) // first tick always captures
	waitFor(t, func() bool { return r.Stats().Captures >= 1 })
	r.Tick(base.Add(time.Minute)) // within the period: no capture
	r.Tick(base.Add(2 * time.Hour))
	waitFor(t, func() bool { return r.Stats().Captures >= 3 }) // 2 heap + ≥1 cpu

	var heap, cpu int
	for _, e := range r.Entries() {
		switch e.Kind {
		case KindHeap:
			heap++
		case KindCPU:
			cpu++
		}
	}
	if heap != 2 {
		t.Fatalf("heap captures = %d, want 2", heap)
	}
	if cpu < 1 {
		t.Fatalf("cpu captures = %d, want >= 1", cpu)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never met")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
