package telemetry

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Hand-rolled Prometheus text-format (version 0.0.4) exporter. The
// module has a zero-dependency policy (see DESIGN.md), and the subset
// of the exposition format the collector needs — counters, gauges,
// summaries and cumulative-bucket histograms with a handful of labels
// — is small enough that emitting it directly is simpler than it
// sounds: one HELP/TYPE header per family, then `name{labels} value`
// sample lines. Scrapes are pull-based like every other snapshot
// surface: rendering walks the same atomics Snapshot does, so a
// scrape costs the pipeline nothing between scrapes.

// promWriter accumulates exposition lines and remembers the first
// write error so the per-family emitters stay unconditional.
type promWriter struct {
	w   io.Writer
	err error
}

func (p *promWriter) printf(format string, args ...any) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}

// header emits the HELP/TYPE preamble for one metric family.
func (p *promWriter) header(name, help, typ string) {
	p.printf("# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// sample emits one sample line. labels come as alternating key, value
// pairs and are rendered in the given order.
func (p *promWriter) sample(name string, value float64, labels ...string) {
	if p.err != nil {
		return
	}
	var sb strings.Builder
	sb.WriteString(name)
	if len(labels) > 0 {
		sb.WriteByte('{')
		for i := 0; i+1 < len(labels); i += 2 {
			if i > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(labels[i])
			sb.WriteString(`="`)
			sb.WriteString(escapeLabel(labels[i+1]))
			sb.WriteByte('"')
		}
		sb.WriteByte('}')
	}
	sb.WriteByte(' ')
	sb.WriteString(formatValue(value))
	sb.WriteByte('\n')
	_, p.err = io.WriteString(p.w, sb.String())
}

func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders the collector's current state — plus Go
// runtime/GC gauges — in Prometheus text format. A nil collector
// writes only the runtime families, so a /metrics endpoint stays
// scrapeable before a pipeline has attached its collector.
func (c *Collector) WritePrometheus(w io.Writer) error {
	p := &promWriter{w: w}
	if c != nil {
		c.writePipelineMetrics(p)
	}
	writeRuntimeMetrics(p)
	return p.err
}

func (c *Collector) writePipelineMetrics(p *promWriter) {
	p.header("pastri_blocks_total", "Blocks compressed.", "counter")
	p.sample("pastri_blocks_total", float64(c.blocks.Load()))
	p.header("pastri_bytes_in_total", "Raw bytes entering compression.", "counter")
	p.sample("pastri_bytes_in_total", float64(c.bytesIn.Load()))
	p.header("pastri_bytes_out_payload_total", "Compressed block payload bytes produced.", "counter")
	p.sample("pastri_bytes_out_payload_total", float64(c.bytesPayload.Load()))
	p.header("pastri_bytes_out_framing_total", "Stream and container framing bytes produced.", "counter")
	p.sample("pastri_bytes_out_framing_total", float64(c.bytesFraming.Load()))

	p.header("pastri_blocks_encoded_total", "Blocks per chosen ECQ encoding.", "counter")
	for e := BlockEncoding(0); e < numBlockEncodings; e++ {
		p.sample("pastri_blocks_encoded_total", float64(c.enc[e].Load()), "encoding", e.String())
	}

	writeHistogram(p, "pastri_block_payload_bytes",
		"Compressed payload size per block.", c.blockBytes.Snapshot(), 1, nil)

	// Stage timers: a summary (sum/count) per stage, min/max gauges,
	// and the power-of-two latency histogram as cumulative buckets.
	// Durations are exported in seconds per Prometheus convention.
	p.header("pastri_stage_duration_seconds", "Wall-clock time per pipeline stage.", "summary")
	type stageView struct {
		name string
		rec  *stageRec
	}
	var stages []stageView
	for st := Stage(0); st < numStages; st++ {
		if c.stages[st].count.Load() == 0 {
			continue
		}
		stages = append(stages, stageView{st.String(), &c.stages[st]})
	}
	for _, sv := range stages {
		p.sample("pastri_stage_duration_seconds_sum", float64(sv.rec.total.Load())/1e9, "stage", sv.name)
		p.sample("pastri_stage_duration_seconds_count", float64(sv.rec.count.Load()), "stage", sv.name)
	}
	p.header("pastri_stage_duration_min_seconds", "Fastest observation per pipeline stage.", "gauge")
	for _, sv := range stages {
		minNS := uint64(0)
		if m := sv.rec.min.Load(); m > 0 {
			minNS = m - 1
		}
		p.sample("pastri_stage_duration_min_seconds", float64(minNS)/1e9, "stage", sv.name)
	}
	p.header("pastri_stage_duration_max_seconds", "Slowest observation per pipeline stage.", "gauge")
	for _, sv := range stages {
		p.sample("pastri_stage_duration_max_seconds", float64(sv.rec.max.Load())/1e9, "stage", sv.name)
	}
	if len(stages) > 0 {
		// One family header, then each stage's bucket series — the format
		// allows a single TYPE line per family.
		p.header("pastri_stage_duration_ns", "Per-stage latency in nanoseconds, power-of-two buckets.", "histogram")
		for _, sv := range stages {
			writeHistogramSeries(p, "pastri_stage_duration_ns",
				sv.rec.hist.Snapshot(), 1, []string{"stage", sv.name})
		}
	}

	p.header("pastri_blocks_decoded_total", "Blocks decompressed.", "counter")
	p.sample("pastri_blocks_decoded_total", float64(c.blocksDecoded.Load()))
	p.header("pastri_decoded_bytes_in_total", "Compressed bytes consumed by decode.", "counter")
	p.sample("pastri_decoded_bytes_in_total", float64(c.decodedBytesIn.Load()))
	p.header("pastri_decoded_bytes_out_total", "Raw bytes produced by decode.", "counter")
	p.sample("pastri_decoded_bytes_out_total", float64(c.decodedBytesOut.Load()))

	p.header("pastri_eb_violations_total", "Audited blocks that broke the absolute error bound.", "counter")
	p.sample("pastri_eb_violations_total", float64(c.ebViolations.Load()))

	if fr := c.flight.Load(); fr != nil {
		counts := fr.AnomalyCounts()
		p.header("pastri_flight_anomalies_total", "Quality anomalies detected by the flight recorder.", "counter")
		for _, reason := range sortedReasons(counts) {
			p.sample("pastri_flight_anomalies_total", float64(counts[reason]), "reason", reason)
		}
		p.header("pastri_flight_artifacts_total", "Flight-recorder artifact files written.", "counter")
		p.sample("pastri_flight_artifacts_total", float64(len(fr.ArtifactPaths())))
	}
}

// writeHistogram renders a HistogramSnapshot as a Prometheus histogram:
// cumulative buckets by ascending le, a +Inf bucket, and _sum/_count.
// The snapshot's buckets are per-bin counts with inclusive upper
// bounds, which matches the exposition format's `le` semantics once
// the counts are accumulated. scale multiplies bounds and sum (for
// unit conversion); extra label pairs are appended to every sample.
func writeHistogram(p *promWriter, name, help string, h HistogramSnapshot, scale float64, labels []string) {
	p.header(name, help, "histogram")
	writeHistogramSeries(p, name, h, scale, labels)
}

// writeHistogramSeries emits one labeled bucket/_sum/_count series
// without the family header, for families with several label sets.
func writeHistogramSeries(p *promWriter, name string, h HistogramSnapshot, scale float64, labels []string) {
	sorted := append([]Bucket(nil), h.Buckets...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Le < sorted[j].Le })
	cum := uint64(0)
	for _, b := range sorted {
		if b.Le == math.MaxUint64 {
			// The top power-of-two bin is an "everything else" catch-all;
			// it folds into the +Inf bucket below.
			continue
		}
		cum += b.N
		p.sample(name+"_bucket", float64(cum),
			append(append([]string(nil), labels...), "le", formatValue(float64(b.Le)*scale))...)
	}
	p.sample(name+"_bucket", float64(h.Count),
		append(append([]string(nil), labels...), "le", "+Inf")...)
	p.sample(name+"_sum", float64(h.Sum)*scale, labels...)
	p.sample(name+"_count", float64(h.Count), labels...)
}

func writeRuntimeMetrics(p *promWriter) {
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	p.header("go_goroutines", "Live goroutines.", "gauge")
	p.sample("go_goroutines", float64(runtime.NumGoroutine()))
	p.header("go_gc_cycles_total", "Completed GC cycles.", "counter")
	p.sample("go_gc_cycles_total", float64(m.NumGC))
	p.header("go_memstats_heap_alloc_bytes", "Bytes of allocated heap objects.", "gauge")
	p.sample("go_memstats_heap_alloc_bytes", float64(m.HeapAlloc))
	p.header("go_memstats_heap_objects", "Number of allocated heap objects.", "gauge")
	p.sample("go_memstats_heap_objects", float64(m.HeapObjects))
	p.header("go_memstats_sys_bytes", "Bytes obtained from the OS.", "gauge")
	p.sample("go_memstats_sys_bytes", float64(m.Sys))
	p.header("go_memstats_alloc_bytes_total", "Cumulative bytes allocated.", "counter")
	p.sample("go_memstats_alloc_bytes_total", float64(m.TotalAlloc))
	p.header("go_memstats_gc_pause_seconds_total", "Cumulative GC stop-the-world pause time.", "counter")
	p.sample("go_memstats_gc_pause_seconds_total", float64(m.PauseTotalNs)/1e9)
	p.header("go_memstats_gc_cpu_fraction", "Fraction of CPU time spent in GC.", "gauge")
	p.sample("go_memstats_gc_cpu_fraction", m.GCCPUFraction)
}

// MetricsHandler serves Prometheus text format for whatever collector
// get returns at scrape time — the indirection lets a long-lived
// process (or the pastri CLI's debug server, which swaps collectors
// per run) publish one stable /metrics endpoint.
func MetricsHandler(get func() *Collector) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		get().WritePrometheus(w) //lint:errdrop-ok a failed scrape write only hurts the scraper that went away
	})
}
