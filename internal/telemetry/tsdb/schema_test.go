package tsdb

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden schema files")

// TestHistorySchemaGolden pins the JSON shape of the /debug/history
// payload (and the pastrid-report dump format). Same contract as the
// telemetry snapshot golden: the schema changes only together with
// this file (go test ./internal/telemetry/tsdb -run Schema -update).
func TestHistorySchemaGolden(t *testing.T) {
	var schema strings.Builder
	describeType(&schema, "history", reflect.TypeOf(History{}))
	got := schema.String()

	golden := filepath.Join("testdata", "history_schema.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Fatalf("/debug/history JSON schema drifted from golden.\n"+
			"If the change is intentional, update downstream consumers and rerun with -update.\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// describeType / descend / wireType mirror the schema-golden helpers
// in internal/telemetry (test-only code, so not exported from there).
func describeType(w *strings.Builder, path string, t reflect.Type) {
	switch t.Kind() {
	case reflect.Pointer:
		describeType(w, path, t.Elem())
	case reflect.Struct:
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			if !f.IsExported() {
				continue
			}
			tag := f.Tag.Get("json")
			name, opts, _ := strings.Cut(tag, ",")
			if name == "-" {
				continue
			}
			if name == "" {
				name = f.Name
			}
			line := fmt.Sprintf("%s.%s %s", path, name, wireType(f.Type))
			if strings.Contains(","+opts+",", ",omitempty,") {
				line += " omitempty"
			}
			w.WriteString(line + "\n")
			descend(w, path+"."+name, f.Type)
		}
	}
}

func descend(w *strings.Builder, path string, t reflect.Type) {
	switch t.Kind() {
	case reflect.Pointer:
		descend(w, path, t.Elem())
	case reflect.Struct:
		describeType(w, path, t)
	case reflect.Slice, reflect.Array:
		descend(w, path+"[]", t.Elem())
	case reflect.Map:
		descend(w, path+"{"+t.Key().Kind().String()+"}", t.Elem())
	}
}

func wireType(t reflect.Type) string {
	switch t.Kind() {
	case reflect.Pointer:
		return wireType(t.Elem())
	case reflect.String:
		return "string"
	case reflect.Bool:
		return "bool"
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64,
		reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		return "integer"
	case reflect.Float32, reflect.Float64:
		return "number"
	case reflect.Slice, reflect.Array:
		return "array(" + wireType(t.Elem()) + ")"
	case reflect.Map:
		return "object(" + t.Key().Kind().String() + "->" + wireType(t.Elem()) + ")"
	case reflect.Struct:
		return "object " + t.Name()
	default:
		return t.Kind().String()
	}
}
