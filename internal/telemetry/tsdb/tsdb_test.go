package tsdb

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func sampleAt(sec int64, kv map[Key]float64) Sample {
	s := NewSample(time.Unix(sec, 0))
	for k, v := range kv {
		s.Set(k, v)
	}
	return s
}

func TestRingAddEvictsOldest(t *testing.T) {
	r := NewRing(3)
	for i := int64(1); i <= 5; i++ {
		r.Add(sampleAt(i, map[Key]float64{KeyRequestsTotal: float64(i)}))
	}
	if got := r.Len(); got != 3 {
		t.Fatalf("Len = %d, want 3", got)
	}
	snap := r.Snapshot()
	want := []int64{3, 4, 5}
	for i, s := range snap {
		if s.UnixNano != want[i]*1e9 {
			t.Fatalf("snapshot[%d].UnixNano = %d, want %d", i, s.UnixNano, want[i]*1e9)
		}
	}
	latest, ok := r.Latest()
	if !ok || latest.Get(KeyRequestsTotal) != 5 {
		t.Fatalf("Latest = %+v ok=%v, want requests_total=5", latest, ok)
	}
}

func TestRingBefore(t *testing.T) {
	r := NewRing(8)
	for i := int64(10); i <= 50; i += 10 {
		r.Add(sampleAt(i, map[Key]float64{KeyRequestsTotal: float64(i)}))
	}
	cases := []struct {
		cutoffSec int64
		wantSec   int64
	}{
		{35, 30},  // newest at-or-before cutoff
		{50, 50},  // exact hit
		{5, 10},   // older than history: degrade to oldest
		{999, 50}, // future cutoff: newest
	}
	for _, c := range cases {
		got, ok := r.Before(c.cutoffSec * 1e9)
		if !ok {
			t.Fatalf("Before(%d) not ok", c.cutoffSec)
		}
		if got.UnixNano != c.wantSec*1e9 {
			t.Errorf("Before(%ds) = %ds, want %ds", c.cutoffSec, got.UnixNano/1e9, c.wantSec)
		}
	}
}

func TestNilRingSafe(t *testing.T) {
	var r *Ring
	r.Add(sampleAt(1, nil))
	if r.Len() != 0 {
		t.Fatal("nil ring Len != 0")
	}
	if _, ok := r.Latest(); ok {
		t.Fatal("nil ring Latest ok")
	}
	if _, ok := r.Before(0); ok {
		t.Fatal("nil ring Before ok")
	}
	if got := r.Snapshot(); len(got) != 0 {
		t.Fatal("nil ring Snapshot non-empty")
	}
	h := r.History()
	if h.Depth != 0 || len(h.Samples) != 0 {
		t.Fatalf("nil ring History = %+v", h)
	}
}

func TestDeltaAndRate(t *testing.T) {
	old := sampleAt(10, map[Key]float64{KeyRequestsTotal: 100, KeyErrorsTotal: 7})
	now := sampleAt(20, map[Key]float64{KeyRequestsTotal: 300, KeyErrorsTotal: 5})
	if d := Delta(now, old, KeyRequestsTotal); d != 200 {
		t.Fatalf("Delta = %v, want 200", d)
	}
	// Counter went backwards (restart): clamp to zero.
	if d := Delta(now, old, KeyErrorsTotal); d != 0 {
		t.Fatalf("restart Delta = %v, want 0", d)
	}
	// Missing key reads as zero baseline.
	if d := Delta(now, Sample{}, KeyRequestsTotal); d != 300 {
		t.Fatalf("zero-baseline Delta = %v, want 300", d)
	}
	if rt := Rate(now, old, KeyRequestsTotal); rt != 20 {
		t.Fatalf("Rate = %v, want 20", rt)
	}
	if rt := Rate(old, old, KeyRequestsTotal); rt != 0 {
		t.Fatalf("zero-interval Rate = %v, want 0", rt)
	}
}

func TestTenantKeys(t *testing.T) {
	k := ForTenant("alice", KeyReadsTotal)
	if k != Key("tenant.alice.reads_total") {
		t.Fatalf("ForTenant = %q", k)
	}
	tenant, base, ok := SplitTenant(k)
	if !ok || tenant != "alice" || base != KeyReadsTotal {
		t.Fatalf("SplitTenant = %q %q %v", tenant, base, ok)
	}
	if _, _, ok := SplitTenant(KeyCacheBytes); ok {
		t.Fatal("SplitTenant accepted a process-wide key")
	}
	sk := ForTenant("alice", StageNS("encode"))
	wantTenant, wantBase, _ := SplitTenant(sk)
	if wantTenant != "alice" || wantBase != Key("stage_ns.encode") {
		t.Fatalf("stage key split = %q %q", wantTenant, wantBase)
	}
}

func TestHistoryRoundTrip(t *testing.T) {
	r := NewRing(4)
	r.Add(sampleAt(1, map[Key]float64{KeyCacheHitsTotal: 3}))
	r.Add(sampleAt(2, map[Key]float64{KeyCacheHitsTotal: 9}))
	h := r.History()
	if h.Depth != 4 || len(h.Samples) != 2 {
		t.Fatalf("History = depth %d samples %d", h.Depth, len(h.Samples))
	}
	var buf bytes.Buffer
	if err := h.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ParseHistory(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Depth != 4 || len(got.Samples) != 2 || got.Samples[1].Get(KeyCacheHitsTotal) != 9 {
		t.Fatalf("round trip = %+v", got)
	}
}

func TestParseHistoryRejectsDisorder(t *testing.T) {
	in := `{"depth":2,"samples":[{"unix_nano":20,"values":{}},{"unix_nano":10,"values":{}}]}`
	if _, err := ParseHistory(strings.NewReader(in)); err == nil {
		t.Fatal("out-of-order history accepted")
	}
}

func TestRingConcurrentReadersRace(t *testing.T) {
	r := NewRing(16)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := int64(0); i < 200; i++ {
			r.Add(sampleAt(i, map[Key]float64{KeyInflightRequests: float64(i)}))
		}
	}()
	for i := 0; i < 200; i++ {
		r.Snapshot()
		r.Before(int64(i) * 1e9)
		r.Latest()
		r.History()
	}
	<-done
}
