// Package tsdb is pastrid's embedded metrics history: a fixed-memory
// ring of periodic counter snapshots with delta/rate computation over
// lookback windows. It exists because the service must be able to
// judge itself without a Prometheus server in the loop — the SLO
// burn-rate engine (internal/telemetry/slo) and the pastrid-report
// renderer both ask "how much did counter X move over the last W
// seconds", and answering that needs history, not just the current
// atomics.
//
// The design is deliberately not a time-series database: one process,
// one ring, bounded memory (depth × series count), newest-wins
// eviction, no persistence beyond an explicit JSON dump. Samples are
// whole snapshots rather than per-series append logs so one mutex
// acquisition per tick captures a mutually consistent view, and window
// lookups are a binary search over at most depth entries.
//
// Series are identified by typed Key constants — the pastrilint
// sloconst analyzer rejects ad-hoc string literals at call sites, so
// the key namespace stays centrally defined and greppable.
package tsdb

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// Key names one series in a sample. Keys are lowercase_snake constants
// (enforced by pastrilint's sloconst check); composite keys for
// per-tenant or per-stage series are built with ForTenant and StageNS,
// never with inline literals.
type Key string

// The canonical pastrid series schema. Per-tenant series are these
// keys wrapped in ForTenant; cache, store and request series are
// sampled from the server's own counters.
const (
	// Per-tenant request accounting (from the server's route metrics).
	KeyRequestsTotal   Key = "requests_total"
	KeyErrorsTotal     Key = "errors_total"
	KeyReadsTotal      Key = "reads_total"
	KeyReadSlowTotal   Key = "read_slow_total"
	KeyUploadsTotal    Key = "uploads_total"
	KeyUploadSlowTotal Key = "upload_slow_total"

	// Per-tenant pipeline accounting (from the tenant collectors).
	KeyBlocksTotal          Key = "blocks_total"
	KeyBlocksDecodedTotal   Key = "blocks_decoded_total"
	KeyBytesInTotal         Key = "bytes_in_total"
	KeyBytesOutTotal        Key = "bytes_out_total"
	KeyEBViolationsTotal    Key = "eb_violations_total"
	KeyFlightAnomaliesTotal Key = "flight_anomalies_total"
	KeyStoreBytes           Key = "store_bytes"

	// Process-wide series.
	KeyCacheHitsTotal      Key = "cache_hits_total"
	KeyCacheMissesTotal    Key = "cache_misses_total"
	KeyCacheEvictionsTotal Key = "cache_evictions_total"
	KeyCacheBytes          Key = "cache_bytes"
	KeyInflightRequests    Key = "inflight_requests"
	KeyGoroutines          Key = "goroutines"
	KeyHeapAllocBytes      Key = "heap_alloc_bytes"
)

// ForTenant scopes a series key to one tenant: "tenant.<name>.<key>".
// Tenant names are validated store names (no dots), so the prefix
// parses back unambiguously with SplitTenant.
func ForTenant(tenant string, k Key) Key {
	return Key("tenant." + tenant + "." + string(k))
}

// StageNS names the cumulative wall-clock series of one pipeline
// stage: "stage_ns.<stage>". Wrap in ForTenant for per-tenant stage
// attribution.
func StageNS(stage string) Key {
	return Key("stage_ns." + stage)
}

// SplitStage decomposes a StageNS key into the stage name; ok is
// false for non-stage keys. Combine with SplitTenant to recover the
// tenant of a per-tenant stage series.
func SplitStage(k Key) (stage string, ok bool) {
	const prefix = "stage_ns."
	s := string(k)
	if len(s) <= len(prefix) || s[:len(prefix)] != prefix {
		return "", false
	}
	return s[len(prefix):], true
}

// SplitTenant decomposes a ForTenant key into tenant and base key;
// ok is false for process-wide keys.
func SplitTenant(k Key) (tenant string, base Key, ok bool) {
	const prefix = "tenant."
	s := string(k)
	if len(s) <= len(prefix) || s[:len(prefix)] != prefix {
		return "", "", false
	}
	rest := s[len(prefix):]
	for i := 0; i < len(rest); i++ {
		if rest[i] == '.' {
			return rest[:i], Key(rest[i+1:]), true
		}
	}
	return "", "", false
}

// A Sample is one tick's snapshot: a timestamp plus the cumulative
// counter values captured at that instant. Values is written once by
// the sampler and read-only afterwards — samples stored in a Ring must
// not be mutated.
type Sample struct {
	UnixNano int64           `json:"unix_nano"`
	Values   map[Key]float64 `json:"values"`
}

// NewSample returns an empty sample stamped at t.
func NewSample(t time.Time) Sample {
	return Sample{UnixNano: t.UnixNano(), Values: make(map[Key]float64, 64)}
}

// Set records one series value.
func (s Sample) Set(k Key, v float64) {
	if s.Values != nil {
		s.Values[k] = v
	}
}

// Get returns the series value, or 0 when absent (a counter that did
// not exist yet reads as zero, which is exactly its delta semantics).
func (s Sample) Get(k Key) float64 { return s.Values[k] }

// Delta returns how much series k grew from old to newest, clamped at
// zero: cumulative counters only move forward, so a negative delta
// means a restart and the history before it is not comparable.
func Delta(newest, old Sample, k Key) float64 {
	d := newest.Get(k) - old.Get(k)
	if d < 0 {
		return 0
	}
	return d
}

// Rate returns Delta per second over the samples' timestamps (0 when
// the interval is not positive).
func Rate(newest, old Sample, k Key) float64 {
	dt := float64(newest.UnixNano-old.UnixNano) / 1e9
	if dt <= 0 {
		return 0
	}
	return Delta(newest, old, k) / dt
}

// DefaultDepth is the ring size used when NewRing is given a
// non-positive depth: at the default 15 s sample interval it holds a
// little over two hours of history — comfortably past the 1 h slow
// SLO window.
const DefaultDepth = 512

// A Ring is a fixed-depth buffer of samples ordered by insertion time.
// The nil *Ring is a valid empty ring (every method no-ops or returns
// zero values), so a disabled history costs callers one branch.
type Ring struct {
	mu      sync.Mutex
	samples []Sample
	next    uint64 // total appends; next%depth is the write slot
}

// NewRing returns a ring holding depth samples (non-positive ⇒
// DefaultDepth).
func NewRing(depth int) *Ring {
	if depth <= 0 {
		depth = DefaultDepth
	}
	return &Ring{samples: make([]Sample, 0, depth)}
}

// Add appends a sample, evicting the oldest once the ring is full.
// Samples must arrive in non-decreasing timestamp order (the sampler
// is the single writer).
func (r *Ring) Add(s Sample) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if len(r.samples) < cap(r.samples) {
		r.samples = append(r.samples, s)
	} else {
		r.samples[r.next%uint64(cap(r.samples))] = s
	}
	r.next++
	r.mu.Unlock()
}

// Len returns the number of retained samples.
func (r *Ring) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.samples)
}

// Snapshot returns the retained samples, oldest first.
func (r *Ring) Snapshot() []Sample {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.orderedLocked()
}

func (r *Ring) orderedLocked() []Sample {
	n := len(r.samples)
	out := make([]Sample, 0, n)
	if n == 0 {
		return out
	}
	start := uint64(0)
	if r.next > uint64(n) {
		start = r.next // full ring: oldest is the next write slot
	}
	for i := 0; i < n; i++ {
		out = append(out, r.samples[(start+uint64(i))%uint64(n)])
	}
	return out
}

// Before returns the newest retained sample stamped at or before
// cutoffUnixNano. When every retained sample is newer — the ring does
// not reach back that far yet — it returns the oldest sample, so a
// window query degrades to "since history began" rather than failing.
// ok is false only when the ring is empty (or nil).
func (r *Ring) Before(cutoffUnixNano int64) (Sample, bool) {
	if r == nil {
		return Sample{}, false
	}
	r.mu.Lock()
	ordered := r.orderedLocked()
	r.mu.Unlock()
	if len(ordered) == 0 {
		return Sample{}, false
	}
	best := ordered[0]
	for _, s := range ordered {
		if s.UnixNano > cutoffUnixNano {
			break
		}
		best = s
	}
	return best, true
}

// Latest returns the newest retained sample.
func (r *Ring) Latest() (Sample, bool) {
	if r == nil {
		return Sample{}, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.samples) == 0 {
		return Sample{}, false
	}
	return r.samples[(r.next-1)%uint64(len(r.samples))], true
}

// History is the JSON shape served at GET /debug/history and embedded
// in ops dumps: the ring configuration plus the retained samples,
// oldest first.
type History struct {
	// Depth is the configured ring capacity; Samples holds the retained
	// entries (≤ Depth), oldest first.
	Depth   int      `json:"depth"`
	Samples []Sample `json:"samples"`
}

// History materializes the ring for export.
func (r *Ring) History() History {
	h := History{Samples: r.Snapshot()}
	if r != nil {
		r.mu.Lock()
		h.Depth = cap(r.samples)
		r.mu.Unlock()
	}
	if h.Samples == nil {
		h.Samples = []Sample{}
	}
	return h
}

// WriteJSON dumps the history with indentation.
func (h History) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(h)
}

// ParseHistory reads a History dump produced by WriteJSON (or the
// /debug/history endpoint) and validates sample ordering.
func ParseHistory(r io.Reader) (History, error) {
	var h History
	if err := json.NewDecoder(r).Decode(&h); err != nil {
		return History{}, fmt.Errorf("tsdb: parsing history: %w", err)
	}
	for i := 1; i < len(h.Samples); i++ {
		if h.Samples[i].UnixNano < h.Samples[i-1].UnixNano {
			return History{}, fmt.Errorf("tsdb: history samples out of order at index %d", i)
		}
	}
	return h, nil
}
