package telemetry

import (
	"encoding/json"
	"expvar"
	"sync"
	"testing"
	"time"
)

func TestNilCollectorIsSafe(t *testing.T) {
	var c *Collector
	if c.Enabled() {
		t.Fatal("nil collector reports enabled")
	}
	start := c.StageStart()
	if !start.IsZero() {
		t.Fatal("nil collector read the clock")
	}
	c.StageEnd(StageEncode, start)
	c.StageEnd(StageEncode, time.Now()) // zero token not required
	tm := c.Timer(StageWrite)
	tm.Stop()
	c.RecordBlock(TraceRecord{BytesIn: 8, BytesOut: 4})
	c.AddFramingBytes(32)
	c.RecordDecodedBlock(4, 8)
	if snap := c.Snapshot(); snap != nil {
		t.Fatalf("nil collector snapshot = %+v, want nil", snap)
	}
	c.Publish("nil-collector") // must not panic or register
	if expvar.Get("nil-collector") != nil {
		t.Fatal("nil collector published an expvar")
	}
}

func TestCounterAndHistogram(t *testing.T) {
	var h Histogram
	for _, v := range []uint64{0, 1, 2, 3, 4, 1023, 1024} {
		h.Observe(v)
	}
	if h.Count() != 7 {
		t.Fatalf("count = %d, want 7", h.Count())
	}
	if h.Sum() != 0+1+2+3+4+1023+1024 {
		t.Fatalf("sum = %d", h.Sum())
	}
	snap := h.Snapshot()
	// Buckets: len=0 → {0}, len=1 → {1}, len=2 → {2,3}, len=3 → {4},
	// len=10 → {1023}, len=11 → {1024}.
	want := map[uint64]uint64{0: 1, 1: 1, 3: 2, 7: 1, 1023: 1, 2047: 1}
	if len(snap.Buckets) != len(want) {
		t.Fatalf("buckets = %+v, want uppers %v", snap.Buckets, want)
	}
	for _, b := range snap.Buckets {
		if want[b.Le] != b.N {
			t.Errorf("bucket le=%d n=%d, want n=%d", b.Le, b.N, want[b.Le])
		}
	}
}

func TestStageTimerMinMax(t *testing.T) {
	c := New(0)
	for _, d := range []time.Duration{5 * time.Microsecond, time.Millisecond, 20 * time.Microsecond} {
		c.stages[StageEncode].observe(d)
	}
	snap := c.Snapshot()
	ss, ok := snap.Stages[StageEncode.String()]
	if !ok {
		t.Fatalf("no encode stage in %+v", snap.Stages)
	}
	if ss.Count != 3 {
		t.Fatalf("count = %d, want 3", ss.Count)
	}
	if ss.MinNS != uint64(5*time.Microsecond) || ss.MaxNS != uint64(time.Millisecond) {
		t.Fatalf("min/max = %d/%d", ss.MinNS, ss.MaxNS)
	}
	if ss.TotalNS != uint64(1025*time.Microsecond) || ss.AvgNS != ss.TotalNS/3 {
		t.Fatalf("total/avg = %d/%d", ss.TotalNS, ss.AvgNS)
	}
	// Negative durations clamp to zero rather than corrupting counters.
	c.stages[StageEncode].observe(-time.Second)
	if got := c.Snapshot().Stages[StageEncode.String()]; got.MinNS != 0 || got.Count != 4 {
		t.Fatalf("after negative observe: %+v", got)
	}
}

func TestRecordBlockAndSnapshotTotals(t *testing.T) {
	c := New(4)
	kinds := []BlockEncoding{EncType0, EncDense, EncSparse, EncDense, EncDense}
	for i, k := range kinds {
		c.RecordBlock(TraceRecord{
			SubBlocks: 4,
			Encoding:  k,
			BytesIn:   288,
			BytesOut:  10 + i,
		})
	}
	c.AddFramingBytes(32)
	c.AddFramingBytes(5)
	snap := c.Snapshot()
	if snap.Blocks != 5 {
		t.Fatalf("blocks = %d", snap.Blocks)
	}
	if snap.BytesIn != 5*288 {
		t.Fatalf("bytes in = %d", snap.BytesIn)
	}
	wantPayload := uint64(10 + 11 + 12 + 13 + 14)
	if snap.BytesOutPayload != wantPayload || snap.BytesOutFraming != 37 ||
		snap.BytesOutTotal != wantPayload+37 {
		t.Fatalf("bytes out = %d+%d=%d", snap.BytesOutPayload, snap.BytesOutFraming, snap.BytesOutTotal)
	}
	if snap.Encodings["type0"] != 1 || snap.Encodings["dense"] != 3 || snap.Encodings["sparse"] != 1 {
		t.Fatalf("encodings = %v", snap.Encodings)
	}
	if snap.BlockBytes.Count != 5 || snap.BlockBytes.Sum != wantPayload {
		t.Fatalf("block bytes hist = %+v", snap.BlockBytes)
	}
	// Ring depth 4: the oldest of 5 records was evicted; ids are 0..4
	// in completion order, so traces are 1..4 oldest-first.
	if len(snap.Traces) != 4 {
		t.Fatalf("traces = %+v", snap.Traces)
	}
	for i, tr := range snap.Traces {
		if tr.Block != uint64(i+1) {
			t.Fatalf("trace %d has block id %d, want %d", i, tr.Block, i+1)
		}
	}
}

func TestTraceDisabled(t *testing.T) {
	c := New(-1)
	c.RecordBlock(TraceRecord{BytesIn: 8, BytesOut: 2})
	snap := c.Snapshot()
	if snap.Blocks != 1 || len(snap.Traces) != 0 {
		t.Fatalf("blocks=%d traces=%v", snap.Blocks, snap.Traces)
	}
}

// TestConcurrentExactness drives many goroutines into one collector
// and asserts counters and histograms are exact, not approximate —
// the invariant the parallel pipeline's accounting relies on. Run
// under -race this also proves the mutation paths are data-race free.
func TestConcurrentExactness(t *testing.T) {
	c := New(8)
	const workers = 8
	const perWorker = 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.RecordBlock(TraceRecord{
					Encoding: BlockEncoding(i % int(numBlockEncodings)),
					BytesIn:  64,
					BytesOut: i % 32,
				})
				c.AddFramingBytes(1)
				c.StageEnd(StageEncode, c.StageStart())
				c.RecordDecodedBlock(2, 64)
			}
		}(w)
	}
	wg.Wait()
	snap := c.Snapshot()
	const total = workers * perWorker
	if snap.Blocks != total || snap.BlocksDecoded != total {
		t.Fatalf("blocks = %d/%d, want %d", snap.Blocks, snap.BlocksDecoded, total)
	}
	if snap.BytesIn != total*64 || snap.BytesOutFraming != total {
		t.Fatalf("bytes in/framing = %d/%d", snap.BytesIn, snap.BytesOutFraming)
	}
	var encSum uint64
	for _, n := range snap.Encodings {
		encSum += n
	}
	if encSum != total {
		t.Fatalf("encoding counts sum to %d, want %d", encSum, total)
	}
	if snap.BlockBytes.Count != total {
		t.Fatalf("histogram count = %d, want %d", snap.BlockBytes.Count, total)
	}
	var bucketSum uint64
	for _, b := range snap.BlockBytes.Buckets {
		bucketSum += b.N
	}
	if bucketSum != total {
		t.Fatalf("histogram buckets sum to %d, want %d", bucketSum, total)
	}
	if st := snap.Stages[StageEncode.String()]; st.Count != total {
		t.Fatalf("stage count = %d, want %d", st.Count, total)
	}
	if len(snap.Traces) != 8 {
		t.Fatalf("ring kept %d records, want 8", len(snap.Traces))
	}
}

func TestSnapshotJSONAndExpvar(t *testing.T) {
	c := New(2)
	c.RecordBlock(TraceRecord{SubBlocks: 2, Encoding: EncDense, BytesIn: 16, BytesOut: 4, EBSlack: 1e-11})
	c.AddFramingBytes(3)
	var decoded map[string]any
	if err := json.Unmarshal(c.Snapshot().JSON(), &decoded); err != nil {
		t.Fatalf("snapshot JSON does not parse: %v", err)
	}
	for _, key := range []string{"blocks", "bytes_in", "bytes_out_total", "encodings", "stages", "traces"} {
		if _, ok := decoded[key]; !ok {
			t.Errorf("snapshot JSON missing %q", key)
		}
	}
	trs := decoded["traces"].([]any)
	tr := trs[0].(map[string]any)
	if tr["encoding"] != "dense" {
		t.Fatalf("trace encoding = %v, want dense", tr["encoding"])
	}

	c.Publish("telemetry-test")
	v := expvar.Get("telemetry-test")
	if v == nil {
		t.Fatal("Publish did not register")
	}
	var fromVar map[string]any
	if err := json.Unmarshal([]byte(v.String()), &fromVar); err != nil {
		t.Fatalf("expvar value does not parse: %v", err)
	}
	if fromVar["bytes_out_total"].(float64) != 7 {
		t.Fatalf("expvar total = %v, want 7", fromVar["bytes_out_total"])
	}
	c.Publish("telemetry-test") // idempotent, must not panic
}

func TestStageAndEncodingNames(t *testing.T) {
	for s := Stage(0); s < numStages; s++ {
		if s.String() == "stage?" {
			t.Errorf("stage %d has no name", s)
		}
	}
	if Stage(200).String() != "stage?" {
		t.Error("out-of-range stage name")
	}
	for e := BlockEncoding(0); e < numBlockEncodings; e++ {
		if e.String() == "enc?" {
			t.Errorf("encoding %d has no name", e)
		}
	}
	if BlockEncoding(200).String() != "enc?" {
		t.Error("out-of-range encoding name")
	}
}
