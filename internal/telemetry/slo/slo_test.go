package slo

import (
	"bufio"
	"math"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/telemetry/tsdb"
)

// fixture builds a ring plus a "now" sample where tenant "tiny" serves
// every read slow and tenant "ok" serves everything fast. Timestamps
// are synthetic so evaluations are fully deterministic.
func fixture(t *testing.T) (*Engine, tsdb.Sample, *tsdb.Ring) {
	t.Helper()
	e := New(Config{
		FastWindow: 5 * time.Minute,
		SlowWindow: time.Hour,
	})
	ring := tsdb.NewRing(32)
	base := time.Unix(1000, 0)
	set := func(s tsdb.Sample, tenant string, reads, slow float64) {
		s.Set(tsdb.ForTenant(tenant, tsdb.KeyReadsTotal), reads)
		s.Set(tsdb.ForTenant(tenant, tsdb.KeyReadSlowTotal), slow)
		s.Set(tsdb.ForTenant(tenant, tsdb.KeyRequestsTotal), reads)
	}
	old := tsdb.NewSample(base)
	set(old, "tiny", 100, 100)
	set(old, "ok", 100, 0)
	ring.Add(old)

	now := tsdb.NewSample(base.Add(2 * time.Minute))
	set(now, "tiny", 300, 300) // 200 more reads, all slow
	set(now, "ok", 300, 0)
	return e, now, ring
}

func TestEvaluateFastBurn(t *testing.T) {
	e, now, ring := fixture(t)
	rep := e.Evaluate(now, ring, map[string]Quantiles{"tiny": {ReadP99MS: 80}})
	if rep.WorstState != StateFastBurn {
		t.Fatalf("WorstState = %q, want fast_burn", rep.WorstState)
	}

	st, ok := rep.Find("tiny", ReadLatency)
	if !ok {
		t.Fatal("tiny read_latency missing")
	}
	// 100% bad over a 1% budget = burn rate 100 on both windows (the
	// ring is younger than both windows, so both clamp to its span).
	if math.Abs(st.FastBurn-100) > 1e-9 || math.Abs(st.SlowBurn-100) > 1e-9 {
		t.Fatalf("burn = %v/%v, want 100/100", st.FastBurn, st.SlowBurn)
	}
	if st.State != StateFastBurn {
		t.Fatalf("state = %q, want fast_burn", st.State)
	}
	if st.FastBad != 200 || st.FastGood != 0 {
		t.Fatalf("fast events = good %v bad %v, want 0/200", st.FastGood, st.FastBad)
	}
	if st.LifetimeBad != 300 {
		t.Fatalf("lifetime bad = %v, want 300", st.LifetimeBad)
	}
	if rep.Tenants["tiny"].Latency.ReadP99MS != 80 {
		t.Fatalf("quantiles not threaded: %+v", rep.Tenants["tiny"].Latency)
	}

	if got := rep.Tenants["ok"].State; got != StateOK {
		t.Fatalf("healthy tenant state = %q", got)
	}
	if st, _ := rep.Find("ok", ReadLatency); st.FastBurn != 0 {
		t.Fatalf("healthy tenant burn = %v", st.FastBurn)
	}
}

// A spike confined to the fast window must not alarm when the slow
// window is clean — that is the point of requiring both windows.
func TestEvaluateNeedsBothWindows(t *testing.T) {
	e := New(Config{FastWindow: time.Minute, SlowWindow: time.Hour})
	ring := tsdb.NewRing(32)
	base := time.Unix(10000, 0)

	set := func(s tsdb.Sample, reads, slow float64) {
		s.Set(tsdb.ForTenant("a", tsdb.KeyReadsTotal), reads)
		s.Set(tsdb.ForTenant("a", tsdb.KeyReadSlowTotal), slow)
	}
	// An hour of clean traffic, then a 30-second 100%-slow spike. The
	// sample at -2m anchors the fast window after the clean bulk.
	old := tsdb.NewSample(base.Add(-time.Hour))
	set(old, 0, 0)
	ring.Add(old)
	mid := tsdb.NewSample(base.Add(-2 * time.Minute))
	set(mid, 100000, 0)
	ring.Add(mid)
	now := tsdb.NewSample(base)
	set(now, 100100, 100)

	rep := e.Evaluate(now, ring, nil)
	st, _ := rep.Find("a", ReadLatency)
	if st.FastBurn < e.Config().FastBurnThreshold {
		t.Fatalf("fast burn = %v, expected above threshold", st.FastBurn)
	}
	if st.SlowBurn >= e.Config().SlowBurnThreshold {
		t.Fatalf("slow burn = %v, expected below threshold", st.SlowBurn)
	}
	if st.State != StateOK {
		t.Fatalf("state = %q, want ok (slow window clean)", st.State)
	}
}

func TestEvaluateIdleTenantIsOK(t *testing.T) {
	e := New(Config{Tenants: map[string]TenantObjectives{"ghost": {}}})
	rep := e.Evaluate(tsdb.NewSample(time.Unix(5, 0)), nil, nil)
	if rep.Tenants["ghost"].State != StateOK {
		t.Fatalf("idle tenant state = %q", rep.Tenants["ghost"].State)
	}
	for _, st := range rep.Tenants["ghost"].Objectives {
		if st.FastBurn != 0 || st.SlowBurn != 0 {
			t.Fatalf("idle burn %+v", st)
		}
	}
}

func TestNilEngine(t *testing.T) {
	var e *Engine
	if rep := e.Evaluate(tsdb.Sample{}, nil, nil); rep != nil {
		t.Fatal("nil engine returned a report")
	}
	if o := e.ObjectivesFor("x"); o != (TenantObjectives{}) {
		t.Fatalf("nil engine objectives = %+v", o)
	}
	if err := WritePrometheus(nil, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDefaults(t *testing.T) {
	e := New(Config{Tenants: map[string]TenantObjectives{
		"custom": {ReadP99MS: 5, ErrorObjective: 0.9},
	}})
	cfg := e.Config()
	if cfg.FastWindow != 5*time.Minute || cfg.SlowWindow != time.Hour {
		t.Fatalf("windows = %v/%v", cfg.FastWindow, cfg.SlowWindow)
	}
	if cfg.FastBurnThreshold != 14.4 || cfg.SlowBurnThreshold != 6 {
		t.Fatalf("thresholds = %v/%v", cfg.FastBurnThreshold, cfg.SlowBurnThreshold)
	}
	o := e.ObjectivesFor("custom")
	if o.ReadP99MS != 5 || o.ErrorObjective != 0.9 {
		t.Fatalf("override lost: %+v", o)
	}
	if o.UploadP99MS != DefaultUploadP99MS || o.LatencyObjective != DefaultLatencyObjective {
		t.Fatalf("defaults not merged: %+v", o)
	}
	if d := e.ObjectivesFor("unknown"); d.EBObjective != DefaultEBObjective {
		t.Fatalf("unknown tenant objectives = %+v", d)
	}
}

func TestStateOrdering(t *testing.T) {
	if StateOK.Value() != 0 || StateSlowBurn.Value() != 1 || StateFastBurn.Value() != 2 {
		t.Fatal("state values drifted; dashboards depend on 0/1/2")
	}
	if worse(StateSlowBurn, StateFastBurn) != StateFastBurn || worse(StateSlowBurn, StateOK) != StateSlowBurn {
		t.Fatal("worse() broken")
	}
}

// promLine is the subset grammar of the exposition format the slo
// families use: metric{k="v",...} value
var promLine = regexp.MustCompile(`^(pastrid_slo_[a-z_]+)\{([^}]*)\} (\S+)$`)

// TestWritePrometheusParses runs the rendered families through a mini
// parser: headers pair with their family, every sample line matches
// the grammar, label keys are from the known set, and the series we
// computed above are present with the right values.
func TestWritePrometheusParses(t *testing.T) {
	e, now, ring := fixture(t)
	rep := e.Evaluate(now, ring, nil)

	var sb strings.Builder
	if err := WritePrometheus(&sb, rep); err != nil {
		t.Fatal(err)
	}

	series := make(map[string]float64)
	sc := bufio.NewScanner(strings.NewReader(sb.String()))
	var lastType string
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "# HELP ") {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("bad TYPE line: %q", line)
			}
			lastType = parts[2]
			continue
		}
		m := promLine.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("unparseable sample line: %q", line)
		}
		if !strings.HasPrefix(m[1], lastType) {
			t.Fatalf("sample %q outside its family block (last TYPE %q)", m[1], lastType)
		}
		for _, lv := range strings.Split(m[2], ",") {
			k, _, ok := strings.Cut(lv, "=")
			if !ok {
				t.Fatalf("bad label %q in %q", lv, line)
			}
			switch k {
			case "tenant", "objective", "window", "outcome":
			default:
				t.Fatalf("unknown label key %q in %q", k, line)
			}
		}
		v, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		series[m[1]+"{"+m[2]+"}"] = v
	}

	wants := map[string]float64{
		`pastrid_slo_state{tenant="tiny",objective="read_latency"}`:                      2,
		`pastrid_slo_state{tenant="ok",objective="read_latency"}`:                        0,
		`pastrid_slo_burn_rate{tenant="tiny",objective="read_latency",window="fast"}`:    100,
		`pastrid_slo_events_total{tenant="tiny",objective="read_latency",outcome="bad"}`: 300,
		`pastrid_slo_events_total{tenant="ok",objective="read_latency",outcome="good"}`:  300,
	}
	for k, want := range wants {
		got, ok := series[k]
		if !ok {
			t.Fatalf("missing series %s\nall: %v", k, sb.String())
		}
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("%s = %v, want %v", k, got, want)
		}
	}
}
