// Package slo evaluates per-tenant service-level objectives as
// multi-window burn rates, Google SRE style. The engine is pure: it
// reads the embedded metrics history (internal/telemetry/tsdb) plus a
// fresh "now" sample and returns a Report — no clocks, no goroutines,
// no I/O — so evaluations are deterministic under test and cheap
// enough to run on every /debug/slo request.
//
// Burn rate is the ratio between the bad-event fraction observed over
// a window and the error budget the objective leaves (1 - target). A
// burn rate of 1 means the budget is being consumed exactly at the
// sustainable pace; 14.4 means a 30-day budget dies in 2 days. An
// objective alarms only when BOTH the fast and the slow window exceed
// a threshold: the fast window makes detection quick, the slow window
// keeps a brief spike from paging, and requiring both is what makes
// the alert reset promptly once the condition clears.
package slo

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/telemetry/tsdb"
)

// Objective names one SLO dimension. Constants only — pastrilint's
// sloconst check rejects string literals at call sites.
type Objective string

const (
	// ReadLatency is "fraction of block reads faster than the tenant's
	// read threshold ≥ latency target".
	ReadLatency Objective = "read_latency"
	// UploadLatency is the same for stream uploads.
	UploadLatency Objective = "upload_latency"
	// ErrorRate is "fraction of requests that do not 5xx ≥ error target".
	ErrorRate Objective = "error_rate"
	// EBViolations is "fraction of decoded blocks inside the error
	// bound ≥ eb target" — the paper's correctness promise as an SLO.
	EBViolations Objective = "eb_violations"
)

// Objectives lists every dimension in report order.
func Objectives() []Objective {
	return []Objective{ReadLatency, UploadLatency, ErrorRate, EBViolations}
}

// State is an objective's burn verdict.
type State string

const (
	StateOK       State = "ok"
	StateSlowBurn State = "slow_burn"
	StateFastBurn State = "fast_burn"
)

// Value maps a state onto the pastrid_slo_state gauge (0/1/2) so
// dashboards can max() over tenants.
func (s State) Value() float64 {
	switch s {
	case StateFastBurn:
		return 2
	case StateSlowBurn:
		return 1
	default:
		return 0
	}
}

// worse returns the more severe of two states.
func worse(a, b State) State {
	if b.Value() > a.Value() {
		return b
	}
	return a
}

// MetricName names a pastrid_slo_* Prometheus family. Typed for the
// same reason as Objective: sloconst keeps the namespace in constants.
type MetricName string

const (
	MetricState       MetricName = "pastrid_slo_state"
	MetricBurnRate    MetricName = "pastrid_slo_burn_rate"
	MetricEventsTotal MetricName = "pastrid_slo_events_total"
)

// TenantObjectives are one tenant's targets. Latency thresholds are
// enforced at record time (the server counts a read/upload as "slow"
// when it exceeds the threshold); the engine only consumes the
// resulting good/bad counters.
type TenantObjectives struct {
	// ReadP99MS / UploadP99MS are the latency thresholds in
	// milliseconds a request must beat to count as good.
	ReadP99MS   float64 `json:"read_p99_ms"`
	UploadP99MS float64 `json:"upload_p99_ms"`
	// LatencyObjective / ErrorObjective / EBObjective are the target
	// good fractions, e.g. 0.99 = 1% error budget.
	LatencyObjective float64 `json:"latency_objective"`
	ErrorObjective   float64 `json:"error_objective"`
	EBObjective      float64 `json:"eb_objective"`
}

// Default objective values, applied field-wise wherever a tenant's
// override leaves a field zero.
const (
	DefaultReadP99MS        = 50
	DefaultUploadP99MS      = 1000
	DefaultLatencyObjective = 0.99
	DefaultErrorObjective   = 0.999
	DefaultEBObjective      = 0.99999
)

func (o TenantObjectives) withDefaults(d TenantObjectives) TenantObjectives {
	if o.ReadP99MS == 0 { //lint:floatcmp-ok exact zero is the documented "inherit" sentinel
		o.ReadP99MS = d.ReadP99MS
	}
	if o.UploadP99MS == 0 { //lint:floatcmp-ok exact zero is the documented "inherit" sentinel
		o.UploadP99MS = d.UploadP99MS
	}
	if o.LatencyObjective == 0 { //lint:floatcmp-ok exact zero is the documented "inherit" sentinel
		o.LatencyObjective = d.LatencyObjective
	}
	if o.ErrorObjective == 0 { //lint:floatcmp-ok exact zero is the documented "inherit" sentinel
		o.ErrorObjective = d.ErrorObjective
	}
	if o.EBObjective == 0 { //lint:floatcmp-ok exact zero is the documented "inherit" sentinel
		o.EBObjective = d.EBObjective
	}
	return o
}

// Config parameterizes an Engine. Zero values take the documented
// defaults, so Config{} is the stock 5m/1h 14.4/6 Google-SRE setup.
type Config struct {
	FastWindow        time.Duration // default 5m
	SlowWindow        time.Duration // default 1h
	FastBurnThreshold float64       // default 14.4 (2-day budget exhaustion)
	SlowBurnThreshold float64       // default 6
	Default           TenantObjectives
	Tenants           map[string]TenantObjectives // per-tenant overrides
}

func (c Config) withDefaults() Config {
	if c.FastWindow <= 0 {
		c.FastWindow = 5 * time.Minute
	}
	if c.SlowWindow <= 0 {
		c.SlowWindow = time.Hour
	}
	if c.FastBurnThreshold <= 0 {
		c.FastBurnThreshold = 14.4
	}
	if c.SlowBurnThreshold <= 0 {
		c.SlowBurnThreshold = 6
	}
	c.Default = c.Default.withDefaults(TenantObjectives{
		ReadP99MS:        DefaultReadP99MS,
		UploadP99MS:      DefaultUploadP99MS,
		LatencyObjective: DefaultLatencyObjective,
		ErrorObjective:   DefaultErrorObjective,
		EBObjective:      DefaultEBObjective,
	})
	return c
}

// Quantiles are a tenant's measured latency quantiles, interpolated by
// the server from its bucket histograms and passed through into the
// report for operators.
type Quantiles struct {
	ReadP50MS   float64 `json:"read_p50_ms"`
	ReadP99MS   float64 `json:"read_p99_ms"`
	UploadP50MS float64 `json:"upload_p50_ms"`
	UploadP99MS float64 `json:"upload_p99_ms"`
}

// ObjectiveStatus is one objective's evaluation for one tenant.
type ObjectiveStatus struct {
	Objective Objective `json:"objective"`
	// Target is the good fraction promised; ThresholdMS is set for
	// latency objectives only.
	Target      float64 `json:"target"`
	ThresholdMS float64 `json:"threshold_ms,omitempty"`
	// FastBurn / SlowBurn are the burn rates over the two windows;
	// FastGood / FastBad are the event counts behind the fast number.
	FastBurn float64 `json:"fast_burn"`
	SlowBurn float64 `json:"slow_burn"`
	FastGood float64 `json:"fast_good"`
	FastBad  float64 `json:"fast_bad"`
	// LifetimeGood / LifetimeBad back the pastrid_slo_events_total
	// counters.
	LifetimeGood float64 `json:"lifetime_good"`
	LifetimeBad  float64 `json:"lifetime_bad"`
	State        State   `json:"state"`
}

// TenantReport is one tenant's full SLO evaluation.
type TenantReport struct {
	State      State             `json:"state"`
	Latency    Quantiles         `json:"latency"`
	Objectives []ObjectiveStatus `json:"objectives"`
}

// Report is the /debug/slo payload.
type Report struct {
	GeneratedUnixNano int64                   `json:"generated_unix_nano"`
	FastWindowMS      int64                   `json:"fast_window_ms"`
	SlowWindowMS      int64                   `json:"slow_window_ms"`
	WorstState        State                   `json:"worst_state"`
	Tenants           map[string]TenantReport `json:"tenants"`
}

// TenantNames returns the report's tenants in sorted order.
func (r *Report) TenantNames() []string {
	if r == nil {
		return nil
	}
	names := make([]string, 0, len(r.Tenants))
	for t := range r.Tenants {
		names = append(names, t)
	}
	sort.Strings(names)
	return names
}

// Find returns one tenant's status for one objective.
func (r *Report) Find(tenant string, o Objective) (ObjectiveStatus, bool) {
	if r == nil {
		return ObjectiveStatus{}, false
	}
	for _, os := range r.Tenants[tenant].Objectives {
		if os.Objective == o {
			return os, true
		}
	}
	return ObjectiveStatus{}, false
}

// Engine evaluates SLOs against history samples. The nil *Engine is a
// valid disabled engine: Evaluate returns nil.
type Engine struct {
	cfg Config
}

// New builds an engine with defaults applied.
func New(cfg Config) *Engine {
	return &Engine{cfg: cfg.withDefaults()}
}

// Config returns the engine's resolved configuration.
func (e *Engine) Config() Config {
	if e == nil {
		return Config{}
	}
	return e.cfg
}

// ObjectivesFor resolves one tenant's objectives (override merged over
// the default).
func (e *Engine) ObjectivesFor(tenant string) TenantObjectives {
	if e == nil {
		return TenantObjectives{}
	}
	if o, ok := e.cfg.Tenants[tenant]; ok {
		return o.withDefaults(e.cfg.Default)
	}
	return e.cfg.Default
}

// objectiveKeys maps an objective onto its total/bad counter series
// and target for one tenant.
func objectiveKeys(o Objective, obj TenantObjectives) (total, bad tsdb.Key, target, thresholdMS float64) {
	switch o {
	case ReadLatency:
		return tsdb.KeyReadsTotal, tsdb.KeyReadSlowTotal, obj.LatencyObjective, obj.ReadP99MS
	case UploadLatency:
		return tsdb.KeyUploadsTotal, tsdb.KeyUploadSlowTotal, obj.LatencyObjective, obj.UploadP99MS
	case ErrorRate:
		return tsdb.KeyRequestsTotal, tsdb.KeyErrorsTotal, obj.ErrorObjective, 0
	default: // EBViolations
		return tsdb.KeyBlocksDecodedTotal, tsdb.KeyEBViolationsTotal, obj.EBObjective, 0
	}
}

// burnRate turns window event deltas into a burn rate. No traffic in
// the window means no burn — an idle tenant is not violating anything.
func burnRate(good, bad, target float64) float64 {
	total := good + bad
	if total <= 0 {
		return 0
	}
	budget := 1 - target
	if budget <= 0 {
		budget = 1e-9 // a 100% objective: any bad event is a huge burn
	}
	return (bad / total) / budget
}

// Evaluate runs every tenant × objective against the history ring.
// now is a freshly captured sample (it need not be in the ring); lat
// carries measured quantiles per tenant for the report. Tenants are
// the union of configured tenants and tenants present in now's keys.
// When the ring is younger than a window, the window clamps to the
// ring's span (delta against the oldest sample); with no history at
// all, lifetime totals serve as the window.
func (e *Engine) Evaluate(now tsdb.Sample, ring *tsdb.Ring, lat map[string]Quantiles) *Report {
	if e == nil {
		return nil
	}
	rep := &Report{
		GeneratedUnixNano: now.UnixNano,
		FastWindowMS:      e.cfg.FastWindow.Milliseconds(),
		SlowWindowMS:      e.cfg.SlowWindow.Milliseconds(),
		WorstState:        StateOK,
		Tenants:           make(map[string]TenantReport),
	}

	tenants := make(map[string]bool, len(e.cfg.Tenants))
	for t := range e.cfg.Tenants {
		tenants[t] = true
	}
	for k := range now.Values {
		if t, _, ok := tsdb.SplitTenant(k); ok {
			tenants[t] = true
		}
	}

	fastOld, _ := ring.Before(now.UnixNano - e.cfg.FastWindow.Nanoseconds())
	slowOld, _ := ring.Before(now.UnixNano - e.cfg.SlowWindow.Nanoseconds())

	for t := range tenants {
		obj := e.ObjectivesFor(t)
		tr := TenantReport{State: StateOK, Latency: lat[t]}
		for _, o := range Objectives() {
			totalKey, badKey, target, thresholdMS := objectiveKeys(o, obj)
			totalKey, badKey = tsdb.ForTenant(t, totalKey), tsdb.ForTenant(t, badKey)

			fastBad := tsdb.Delta(now, fastOld, badKey)
			fastGood := tsdb.Delta(now, fastOld, totalKey) - fastBad
			slowBad := tsdb.Delta(now, slowOld, badKey)
			slowGood := tsdb.Delta(now, slowOld, totalKey) - slowBad
			if fastGood < 0 {
				fastGood = 0
			}
			if slowGood < 0 {
				slowGood = 0
			}

			st := ObjectiveStatus{
				Objective:    o,
				Target:       target,
				ThresholdMS:  thresholdMS,
				FastBurn:     burnRate(fastGood, fastBad, target),
				SlowBurn:     burnRate(slowGood, slowBad, target),
				FastGood:     fastGood,
				FastBad:      fastBad,
				LifetimeBad:  now.Get(badKey),
				LifetimeGood: now.Get(totalKey) - now.Get(badKey),
				State:        StateOK,
			}
			if st.LifetimeGood < 0 {
				st.LifetimeGood = 0
			}
			switch {
			case st.FastBurn >= e.cfg.FastBurnThreshold && st.SlowBurn >= e.cfg.FastBurnThreshold:
				st.State = StateFastBurn
			case st.FastBurn >= e.cfg.SlowBurnThreshold && st.SlowBurn >= e.cfg.SlowBurnThreshold:
				st.State = StateSlowBurn
			}
			tr.State = worse(tr.State, st.State)
			tr.Objectives = append(tr.Objectives, st)
		}
		rep.WorstState = worse(rep.WorstState, tr.State)
		rep.Tenants[t] = tr
	}
	return rep
}

// WritePrometheus renders a report as the pastrid_slo_* families, in
// sorted tenant order so scrapes are deterministic. A nil report
// writes nothing, keeping /metrics valid before the first evaluation.
func WritePrometheus(w io.Writer, rep *Report) error {
	if rep == nil {
		return nil
	}
	ew := &expositionWriter{w: w}
	names := rep.TenantNames()

	ew.family(MetricState, "SLO burn state per tenant objective (0=ok 1=slow_burn 2=fast_burn).", "gauge")
	for _, t := range names {
		for _, os := range rep.Tenants[t].Objectives {
			ew.sample(MetricState, os.State.Value(), "tenant", t, "objective", string(os.Objective))
		}
	}
	ew.family(MetricBurnRate, "Error-budget burn rate per tenant objective and window.", "gauge")
	for _, t := range names {
		for _, os := range rep.Tenants[t].Objectives {
			ew.sample(MetricBurnRate, os.FastBurn, "tenant", t, "objective", string(os.Objective), "window", "fast")
			ew.sample(MetricBurnRate, os.SlowBurn, "tenant", t, "objective", string(os.Objective), "window", "slow")
		}
	}
	ew.family(MetricEventsTotal, "Lifetime SLO events per tenant objective and outcome.", "counter")
	for _, t := range names {
		for _, os := range rep.Tenants[t].Objectives {
			ew.sample(MetricEventsTotal, os.LifetimeGood, "tenant", t, "objective", string(os.Objective), "outcome", "good")
			ew.sample(MetricEventsTotal, os.LifetimeBad, "tenant", t, "objective", string(os.Objective), "outcome", "bad")
		}
	}
	return ew.err
}

// expositionWriter is the package's own minimal Prometheus text
// emitter (promWriter lives unexported in the parent package; the
// format subset needed here is three fmt verbs).
type expositionWriter struct {
	w   io.Writer
	err error
}

func (e *expositionWriter) family(name MetricName, help, typ string) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

func (e *expositionWriter) sample(name MetricName, v float64, labels ...string) {
	if e.err != nil {
		return
	}
	var sb strings.Builder
	sb.WriteString(string(name))
	sb.WriteByte('{')
	for i := 0; i+1 < len(labels); i += 2 {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(labels[i])
		sb.WriteString(`="`)
		sb.WriteString(strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`).Replace(labels[i+1]))
		sb.WriteByte('"')
	}
	sb.WriteString("} ")
	sb.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
	sb.WriteByte('\n')
	_, e.err = io.WriteString(e.w, sb.String())
}
