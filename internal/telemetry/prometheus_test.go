package telemetry

import (
	"io"
	"math"
	"net/http/httptest"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"
)

// --- a miniature Prometheus text-format (0.0.4) parser ---------------
//
// The exporter is hand-rolled, so the test battery parses its output
// with an independent reimplementation of the exposition grammar: HELP
// and TYPE comment lines, then `name{label="value",...} value` samples.
// Anything the grammar does not allow is a test failure.

var (
	promNameRe  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	promLabelRe = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

type promSample struct {
	name   string
	labels map[string]string
	value  float64
}

type promDoc struct {
	types   map[string]string // family -> counter|gauge|summary|histogram
	helps   map[string]string
	samples []promSample
}

// family strips the _bucket/_sum/_count suffix a sample inherits from
// its histogram or summary family.
func family(doc *promDoc, name string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suf)
		if base != name {
			if t := doc.types[base]; t == "histogram" || t == "summary" {
				return base
			}
		}
	}
	return name
}

func parseProm(t *testing.T, text string) *promDoc {
	t.Helper()
	doc := &promDoc{types: map[string]string{}, helps: map[string]string{}}
	for ln, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		switch {
		case strings.HasPrefix(line, "# HELP "):
			rest := strings.TrimPrefix(line, "# HELP ")
			name, help, ok := strings.Cut(rest, " ")
			if !ok || !promNameRe.MatchString(name) {
				t.Fatalf("line %d: malformed HELP: %q", ln+1, line)
			}
			doc.helps[name] = help
		case strings.HasPrefix(line, "# TYPE "):
			rest := strings.TrimPrefix(line, "# TYPE ")
			name, typ, ok := strings.Cut(rest, " ")
			if !ok || !promNameRe.MatchString(name) {
				t.Fatalf("line %d: malformed TYPE: %q", ln+1, line)
			}
			switch typ {
			case "counter", "gauge", "summary", "histogram", "untyped":
			default:
				t.Fatalf("line %d: unknown metric type %q", ln+1, typ)
			}
			if _, dup := doc.types[name]; dup {
				t.Fatalf("line %d: duplicate TYPE for family %s", ln+1, name)
			}
			doc.types[name] = typ
		case strings.HasPrefix(line, "#"):
			// other comments are legal
		default:
			doc.samples = append(doc.samples, parsePromSample(t, ln+1, line))
		}
	}
	// Every sample must belong to a family that declared HELP and TYPE
	// before it was emitted.
	for _, s := range doc.samples {
		fam := family(doc, s.name)
		if _, ok := doc.types[fam]; !ok {
			t.Fatalf("sample %s has no TYPE header (family %s)", s.name, fam)
		}
		if _, ok := doc.helps[fam]; !ok {
			t.Fatalf("sample %s has no HELP header (family %s)", s.name, fam)
		}
	}
	return doc
}

func parsePromSample(t *testing.T, ln int, line string) promSample {
	t.Helper()
	s := promSample{labels: map[string]string{}}
	rest := line
	if i := strings.IndexAny(rest, "{ "); i < 0 {
		t.Fatalf("line %d: no value separator: %q", ln, line)
	} else {
		s.name = rest[:i]
		rest = rest[i:]
	}
	if !promNameRe.MatchString(s.name) {
		t.Fatalf("line %d: bad metric name %q", ln, s.name)
	}
	if strings.HasPrefix(rest, "{") {
		end := strings.Index(rest, "}")
		if end < 0 {
			t.Fatalf("line %d: unterminated label set: %q", ln, line)
		}
		for _, pair := range strings.Split(rest[1:end], ",") {
			k, v, ok := strings.Cut(pair, "=")
			if !ok || !promLabelRe.MatchString(k) {
				t.Fatalf("line %d: bad label pair %q", ln, pair)
			}
			if len(v) < 2 || v[0] != '"' || v[len(v)-1] != '"' {
				t.Fatalf("line %d: label value not quoted: %q", ln, pair)
			}
			s.labels[k] = v[1 : len(v)-1]
		}
		rest = rest[end+1:]
	}
	rest = strings.TrimPrefix(rest, " ")
	var err error
	if rest == "+Inf" {
		s.value = math.Inf(1)
	} else if s.value, err = strconv.ParseFloat(rest, 64); err != nil {
		t.Fatalf("line %d: bad sample value %q: %v", ln, rest, err)
	}
	return s
}

// find returns all samples with the given name whose labels include
// every key=value in want.
func (d *promDoc) find(name string, want map[string]string) []promSample {
	var out []promSample
	for _, s := range d.samples {
		if s.name != name {
			continue
		}
		ok := true
		for k, v := range want {
			if s.labels[k] != v {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, s)
		}
	}
	return out
}

func (d *promDoc) one(t *testing.T, name string, want map[string]string) promSample {
	t.Helper()
	ss := d.find(name, want)
	if len(ss) != 1 {
		t.Fatalf("%s%v: %d samples, want 1", name, want, len(ss))
	}
	return ss[0]
}

// checkHistogram asserts the cumulative-bucket invariants for one
// histogram family restricted to the given labels: le values strictly
// ascending, counts non-decreasing, a +Inf bucket equal to _count.
func checkHistogram(t *testing.T, doc *promDoc, name string, labels map[string]string) {
	t.Helper()
	if typ := doc.types[name]; typ != "histogram" {
		t.Fatalf("%s TYPE = %q, want histogram", name, typ)
	}
	buckets := doc.find(name+"_bucket", labels)
	if len(buckets) == 0 {
		t.Fatalf("%s: no buckets", name)
	}
	sort.Slice(buckets, func(i, j int) bool {
		return promLe(t, buckets[i]) < promLe(t, buckets[j])
	})
	prevLe := math.Inf(-1)
	prevN := -1.0
	for _, b := range buckets {
		le := promLe(t, b)
		if le <= prevLe {
			t.Fatalf("%s: le %g not ascending after %g", name, le, prevLe)
		}
		if b.value < prevN {
			t.Fatalf("%s: bucket count %g decreased below %g at le=%g", name, b.value, prevN, le)
		}
		prevLe, prevN = le, b.value
	}
	last := buckets[len(buckets)-1]
	if !math.IsInf(promLe(t, last), 1) {
		t.Fatalf("%s: final bucket le = %v, want +Inf", name, last.labels["le"])
	}
	count := doc.one(t, name+"_count", labels)
	if last.value != count.value {
		t.Fatalf("%s: +Inf bucket %g != _count %g", name, last.value, count.value)
	}
}

func promLe(t *testing.T, s promSample) float64 {
	t.Helper()
	le, ok := s.labels["le"]
	if !ok {
		t.Fatalf("bucket sample without le label: %v", s)
	}
	if le == "+Inf" {
		return math.Inf(1)
	}
	v, err := strconv.ParseFloat(le, 64)
	if err != nil {
		t.Fatalf("bad le %q: %v", le, err)
	}
	return v
}

// --- exporter tests --------------------------------------------------

func TestWritePrometheusNilCollector(t *testing.T) {
	var c *Collector
	var sb strings.Builder
	if err := c.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	doc := parseProm(t, sb.String())
	for _, s := range doc.samples {
		if !strings.HasPrefix(s.name, "go_") {
			t.Fatalf("nil collector emitted pipeline metric %s", s.name)
		}
	}
	doc.one(t, "go_goroutines", nil)
	doc.one(t, "go_gc_cycles_total", nil)
	doc.one(t, "go_memstats_heap_alloc_bytes", nil)
}

// populatedCollector simulates a small compression + decode run with a
// flight recorder attached, touching every exported family.
func populatedCollector(t *testing.T) *Collector {
	t.Helper()
	c := New(4)
	fr := NewFlightRecorder(FlightConfig{SlackFloor: 1e-11})
	c.AttachFlight(fr)
	for i := 0; i < 6; i++ {
		rec := goodRec()
		rec.BytesOut = 90 + 10*i
		if i == 5 {
			rec.EBSlack = 1e-12 // below the slack floor -> one anomaly
		}
		c.RecordBlockData(rec, nil, nil)
	}
	c.AddFramingBytes(64)
	c.AddEBViolations(2)
	start := time.Now().Add(-time.Millisecond)
	c.StageEnd(StageEncode, start)
	c.StageEnd(StageEncode, time.Now().Add(-2*time.Millisecond))
	c.StageEnd(StageDecode, time.Now().Add(-500*time.Microsecond))
	c.RecordDecodedBlock(100, 800)
	return c
}

func TestWritePrometheusPipeline(t *testing.T) {
	c := populatedCollector(t)
	var sb strings.Builder
	if err := c.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	doc := parseProm(t, sb.String())

	if got := doc.one(t, "pastri_blocks_total", nil).value; got != 6 {
		t.Fatalf("pastri_blocks_total = %g, want 6", got)
	}
	if got := doc.one(t, "pastri_bytes_in_total", nil).value; got != 6*800 {
		t.Fatalf("pastri_bytes_in_total = %g, want %d", got, 6*800)
	}
	if got := doc.one(t, "pastri_bytes_out_framing_total", nil).value; got != 64 {
		t.Fatalf("framing bytes = %g, want 64", got)
	}
	if got := doc.one(t, "pastri_eb_violations_total", nil).value; got != 2 {
		t.Fatalf("eb violations = %g, want 2", got)
	}
	if typ := doc.types["pastri_blocks_total"]; typ != "counter" {
		t.Fatalf("pastri_blocks_total TYPE = %q, want counter", typ)
	}

	// One encoding sample per known encoding, all blocks attributed.
	encSamples := doc.find("pastri_blocks_encoded_total", nil)
	total := 0.0
	for _, s := range encSamples {
		if s.labels["encoding"] == "" {
			t.Fatalf("encoding sample without label: %v", s)
		}
		total += s.value
	}
	if len(encSamples) != int(numBlockEncodings) || total != 6 {
		t.Fatalf("encoding samples = %d (sum %g), want %d summing to 6", len(encSamples), total, numBlockEncodings)
	}

	// Payload-size histogram obeys the cumulative-bucket invariants.
	checkHistogram(t, doc, "pastri_block_payload_bytes", nil)

	// Stage summary: only stages with observations appear, durations in
	// seconds, and the per-stage ns histogram is well-formed.
	if typ := doc.types["pastri_stage_duration_seconds"]; typ != "summary" {
		t.Fatalf("stage duration TYPE = %q, want summary", typ)
	}
	enc := map[string]string{"stage": "encode"}
	if got := doc.one(t, "pastri_stage_duration_seconds_count", enc).value; got != 2 {
		t.Fatalf("encode stage count = %g, want 2", got)
	}
	sum := doc.one(t, "pastri_stage_duration_seconds_sum", enc).value
	if sum <= 0 || sum > 1 {
		t.Fatalf("encode stage sum = %g s, want a few milliseconds", sum)
	}
	minV := doc.one(t, "pastri_stage_duration_min_seconds", enc).value
	maxV := doc.one(t, "pastri_stage_duration_max_seconds", enc).value
	if minV <= 0 || maxV < minV || sum < maxV {
		t.Fatalf("stage min/max/sum inconsistent: min %g max %g sum %g", minV, maxV, sum)
	}
	checkHistogram(t, doc, "pastri_stage_duration_ns", enc)
	checkHistogram(t, doc, "pastri_stage_duration_ns", map[string]string{"stage": "decode"})
	if ss := doc.find("pastri_stage_duration_seconds_count", map[string]string{"stage": "pattern_fit"}); len(ss) != 0 {
		t.Fatalf("idle stage exported: %v", ss)
	}

	// Decode counters.
	if got := doc.one(t, "pastri_blocks_decoded_total", nil).value; got != 1 {
		t.Fatalf("blocks decoded = %g, want 1", got)
	}
	if got := doc.one(t, "pastri_decoded_bytes_out_total", nil).value; got != 800 {
		t.Fatalf("decoded bytes out = %g, want 800", got)
	}

	// Flight recorder families, with the slack-floor anomaly counted.
	v := doc.one(t, "pastri_flight_anomalies_total", map[string]string{"reason": ReasonEBViolation})
	if v.value != 1 {
		t.Fatalf("flight eb_violation anomalies = %g, want 1", v.value)
	}
	doc.one(t, "pastri_flight_artifacts_total", nil)

	// Runtime gauges ride along.
	doc.one(t, "go_goroutines", nil)
	doc.one(t, "go_memstats_gc_cpu_fraction", nil)
}

func TestWritePrometheusWithoutFlight(t *testing.T) {
	c := New(0)
	c.RecordBlock(goodRec())
	var sb strings.Builder
	if err := c.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	doc := parseProm(t, sb.String())
	if ss := doc.find("pastri_flight_anomalies_total", nil); len(ss) != 0 {
		t.Fatalf("flight families exported without a recorder: %v", ss)
	}
	if got := doc.one(t, "pastri_blocks_total", nil).value; got != 1 {
		t.Fatalf("pastri_blocks_total = %g, want 1", got)
	}
}

func TestWritePrometheusPropagatesWriteError(t *testing.T) {
	c := populatedCollector(t)
	if err := c.WritePrometheus(failWriter{}); err == nil {
		t.Fatal("write error swallowed")
	}
}

type failWriter struct{}

func (failWriter) Write(p []byte) (int, error) { return 0, io.ErrClosedPipe }

func TestEscapeLabel(t *testing.T) {
	in := "a\\b\"c\nd"
	want := `a\\b\"c\nd`
	if got := escapeLabel(in); got != want {
		t.Fatalf("escapeLabel(%q) = %q, want %q", in, got, want)
	}
}

func TestMetricsHandler(t *testing.T) {
	c := populatedCollector(t)
	h := MetricsHandler(func() *Collector { return c })
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rr.Header().Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Fatalf("content type = %q", ct)
	}
	doc := parseProm(t, rr.Body.String())
	doc.one(t, "pastri_blocks_total", nil)

	// The handler follows the getter, so a swapped-in nil collector
	// still serves the runtime families.
	h = MetricsHandler(func() *Collector { return nil })
	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	doc = parseProm(t, rr.Body.String())
	if ss := doc.find("pastri_blocks_total", nil); len(ss) != 0 {
		t.Fatalf("nil collector served pipeline metrics: %v", ss)
	}
	doc.one(t, "go_goroutines", nil)
}
