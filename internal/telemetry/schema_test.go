package telemetry

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden schema files")

// TestSnapshotSchemaGolden pins the JSON shape of the telemetry
// snapshot: every field path, its JSON name, and its wire type. The
// snapshot is a published artifact (-statsjson files, /debug/vars, the
// flight-recorder artifacts embed TraceRecord) — renaming or retyping a
// field breaks downstream dashboards silently, so the schema can only
// change together with this golden file (go test ./internal/telemetry
// -run Schema -update).
func TestSnapshotSchemaGolden(t *testing.T) {
	var schema strings.Builder
	describeType(&schema, "snapshot", reflect.TypeOf(Snapshot{}))
	schema.WriteString("\n")
	describeType(&schema, "flight_artifact", reflect.TypeOf(FlightArtifact{}))
	got := schema.String()

	golden := filepath.Join("testdata", "snapshot_schema.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Fatalf("snapshot JSON schema drifted from golden.\n"+
			"If the change is intentional, update downstream consumers and rerun with -update.\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// describeType renders one line per JSON field path: path, wire name,
// Go type, and whether the field is omitempty.
func describeType(w *strings.Builder, path string, t reflect.Type) {
	switch t.Kind() {
	case reflect.Pointer:
		describeType(w, path, t.Elem())
	case reflect.Struct:
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			if !f.IsExported() {
				continue
			}
			tag := f.Tag.Get("json")
			name, opts, _ := strings.Cut(tag, ",")
			if name == "-" {
				continue
			}
			if name == "" {
				name = f.Name
			}
			line := fmt.Sprintf("%s.%s %s", path, name, wireType(f.Type))
			if strings.Contains(","+opts+",", ",omitempty,") {
				line += " omitempty"
			}
			w.WriteString(line + "\n")
			descend(w, path+"."+name, f.Type)
		}
	}
}

// descend recurses into composite field types so nested structs get
// their own schema lines.
func descend(w *strings.Builder, path string, t reflect.Type) {
	switch t.Kind() {
	case reflect.Pointer:
		descend(w, path, t.Elem())
	case reflect.Struct:
		describeType(w, path, t)
	case reflect.Slice, reflect.Array:
		descend(w, path+"[]", t.Elem())
	case reflect.Map:
		keys := []string{path + "{" + t.Key().Kind().String() + "}"}
		sort.Strings(keys) // single entry; kept for shape symmetry
		descend(w, keys[0], t.Elem())
	}
}

// wireType names the JSON encoding a Go type produces.
func wireType(t reflect.Type) string {
	switch t.Kind() {
	case reflect.Pointer:
		return wireType(t.Elem())
	case reflect.String:
		return "string"
	case reflect.Bool:
		return "bool"
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64,
		reflect.Uint, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		return "integer"
	case reflect.Uint8:
		// BlockEncoding marshals as its text name.
		if t.Name() == "BlockEncoding" {
			return "string"
		}
		return "integer"
	case reflect.Float32, reflect.Float64:
		return "number"
	case reflect.Slice, reflect.Array:
		return "array(" + wireType(t.Elem()) + ")"
	case reflect.Map:
		return "object(" + t.Key().Kind().String() + "->" + wireType(t.Elem()) + ")"
	case reflect.Struct:
		return "object " + t.Name()
	default:
		return t.Kind().String()
	}
}
