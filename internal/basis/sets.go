package basis

import "fmt"

// This file holds the concrete basis sets used in the repository:
//
//   - STO-3G for H/He/C/N/O — the minimal basis driving the Hartree–Fock
//     example (each published coefficient refers to a normalized
//     primitive, the Basis Set Exchange convention);
//   - the pure-d and pure-f "compression configurations" that stand in
//     for the paper's (dd|dd) and (ff|ff) GAMESS datasets: one
//     uncontracted shell of the requested angular momentum per heavy
//     atom, with an element-dependent polarization exponent.

// sto3gRow holds the STO-3G parameters of one element.
type sto3gRow struct {
	sExp, sCoef   [3]float64 // core 1s
	spExp         [3]float64 // shared 2s/2p exponents (absent for H, He)
	s2Coef, pCoef [3]float64
	hasSP         bool
}

var sto3g = map[string]sto3gRow{
	"H": {
		sExp:  [3]float64{3.42525091, 0.62391373, 0.16885540},
		sCoef: [3]float64{0.15432897, 0.53532814, 0.44463454},
	},
	"He": {
		sExp:  [3]float64{6.36242139, 1.15892300, 0.31364979},
		sCoef: [3]float64{0.15432897, 0.53532814, 0.44463454},
	},
	"Li": {
		sExp:   [3]float64{16.1195750, 2.9362007, 0.7946505},
		sCoef:  [3]float64{0.15432897, 0.53532814, 0.44463454},
		spExp:  [3]float64{0.6362897, 0.1478601, 0.0480887},
		s2Coef: [3]float64{-0.09996723, 0.39951283, 0.70011547},
		pCoef:  [3]float64{0.15591627, 0.60768372, 0.39195739},
		hasSP:  true,
	},
	"C": {
		sExp:   [3]float64{71.6168370, 13.0450960, 3.5305122},
		sCoef:  [3]float64{0.15432897, 0.53532814, 0.44463454},
		spExp:  [3]float64{2.9412494, 0.6834831, 0.2222899},
		s2Coef: [3]float64{-0.09996723, 0.39951283, 0.70011547},
		pCoef:  [3]float64{0.15591627, 0.60768372, 0.39195739},
		hasSP:  true,
	},
	"N": {
		sExp:   [3]float64{99.1061690, 18.0523120, 4.8856602},
		sCoef:  [3]float64{0.15432897, 0.53532814, 0.44463454},
		spExp:  [3]float64{3.7804559, 0.8784966, 0.2857144},
		s2Coef: [3]float64{-0.09996723, 0.39951283, 0.70011547},
		pCoef:  [3]float64{0.15591627, 0.60768372, 0.39195739},
		hasSP:  true,
	},
	"O": {
		sExp:   [3]float64{130.7093200, 23.8088610, 6.4436083},
		sCoef:  [3]float64{0.15432897, 0.53532814, 0.44463454},
		spExp:  [3]float64{5.0331513, 1.1695961, 0.3803890},
		s2Coef: [3]float64{-0.09996723, 0.39951283, 0.70011547},
		pCoef:  [3]float64{0.15591627, 0.60768372, 0.39195739},
		hasSP:  true,
	},
}

// STO3G builds the STO-3G basis set for a molecule containing H, He, C,
// N and/or O atoms.
func STO3G(mol Molecule) (*BasisSet, error) {
	var shells []Shell
	for ai, atom := range mol.Atoms {
		row, ok := sto3g[atom.Symbol]
		if !ok {
			return nil, fmt.Errorf("basis: no STO-3G parameters for %q", atom.Symbol)
		}
		shells = append(shells, Shell{
			Atom: ai, Center: atom.Pos, L: 0,
			Exps:  row.sExp[:],
			Coefs: row.sCoef[:],
		})
		if row.hasSP {
			shells = append(shells,
				Shell{Atom: ai, Center: atom.Pos, L: 0,
					Exps: row.spExp[:], Coefs: row.s2Coef[:]},
				Shell{Atom: ai, Center: atom.Pos, L: 1,
					Exps: row.spExp[:], Coefs: row.pCoef[:]},
			)
		}
	}
	return NewBasisSet(mol, shells)
}

// polarizationExp gives the uncontracted polarization exponents used by
// the compression configurations, per element and angular momentum
// (cc-pVnZ-like values; the g exponents extend the series for the
// paper's future-work direction of higher-angular-momentum data).
var polarizationExp = map[string][3]float64{
	// {d exponent, f exponent, g exponent}
	"C": {0.550, 0.680, 1.011},
	"N": {0.817, 1.093, 1.515},
	"O": {1.185, 1.428, 2.000},
}

// defaultPolarization is used for elements without tabulated values.
var defaultPolarization = [3]float64{0.8, 1.0, 1.4}

// PureShells builds the paper's pure-l compression configuration: one
// uncontracted shell of angular momentum l (2 = d, 3 = f, 4 = g) on
// every heavy atom. The resulting shell-quartet blocks are all of type
// (ll|ll) — e.g. (dd|dd) blocks of 6⁴ = 1296 integrals, (ff|ff) blocks
// of 10⁴ = 10000 integrals, (gg|gg) blocks of 15⁴ = 50625 integrals.
func PureShells(mol Molecule, l int) ([]Shell, error) {
	if l < 2 || l > 4 {
		return nil, fmt.Errorf("basis: pure configuration supports d (2), f (3) and g (4), got %d", l)
	}
	var shells []Shell
	for ai, atom := range mol.Atoms {
		if atom.Z <= 1 {
			continue
		}
		exp := defaultPolarization[l-2]
		if row, ok := polarizationExp[atom.Symbol]; ok {
			exp = row[l-2]
		}
		shells = append(shells, Shell{
			Atom: ai, Center: atom.Pos, L: l,
			Exps:  []float64{exp},
			Coefs: []float64{1},
		})
	}
	if len(shells) == 0 {
		return nil, fmt.Errorf("basis: molecule %q has no heavy atoms", mol.Name)
	}
	return shells, nil
}

// MixedShells builds a hybrid configuration with both a d and an f shell
// on every heavy atom, producing the paper's hybrid blocks ((df|fd),
// etc.).
func MixedShells(mol Molecule) ([]Shell, error) {
	d, err := PureShells(mol, 2)
	if err != nil {
		return nil, err
	}
	f, err := PureShells(mol, 3)
	if err != nil {
		return nil, err
	}
	return append(d, f...), nil
}
