package basis

import (
	"fmt"
	"math"
)

// This file provides the molecular geometries behind the paper's
// evaluation datasets (Fig. 8: benzene, glutamine, tri-alanine) plus
// small systems for unit tests and the Hartree–Fock example.
//
// The paper's datasets came from GAMESS input decks we do not have; per
// DESIGN.md, benzene uses the exact experimental D6h geometry and
// glutamine / tri-alanine use chemically plausible geometries built from
// internal coordinates (standard bond lengths and angles) with the
// Z-matrix converter below. The compression study only requires realistic
// interatomic distance distributions, which these provide.

// ZEntry defines one atom of a Z-matrix: its element and up to three
// reference atoms with distance (Å), angle (degrees) and dihedral
// (degrees). For the first three atoms unused references are -1.
type ZEntry struct {
	Symbol  string
	RefD    int     // atom this one is bonded to (distance reference)
	Dist    float64 // Å
	RefA    int     // angle reference
	Angle   float64 // degrees
	RefT    int     // torsion reference
	Torsion float64 // degrees
}

// elementZ maps symbols to nuclear charge.
var elementZ = map[string]int{
	"H": 1, "He": 2, "Li": 3, "Be": 4, "B": 5, "C": 6, "N": 7, "O": 8,
	"F": 9, "Ne": 10, "S": 16, "P": 15, "Cl": 17,
}

// ZToCartesian converts a Z-matrix to Cartesian coordinates (in Bohr)
// using the standard NeRF placement. Distances are given in Å.
func ZToCartesian(name string, entries []ZEntry) (Molecule, error) {
	mol := Molecule{Name: name}
	pos := make([]Vec3, 0, len(entries))
	for i, e := range entries {
		z, ok := elementZ[e.Symbol]
		if !ok {
			return Molecule{}, fmt.Errorf("basis: unknown element %q", e.Symbol)
		}
		d := e.Dist * AngstromToBohr
		var p Vec3
		switch {
		case i == 0:
			p = Vec3{}
		case i == 1:
			if e.RefD != 0 {
				return Molecule{}, fmt.Errorf("basis: atom 1 must reference atom 0")
			}
			p = Vec3{d, 0, 0}
		case i == 2:
			a := pos[e.RefD]
			b := pos[e.RefA]
			ang := e.Angle * math.Pi / 180
			// Place in the xy-plane.
			ab := b.Sub(a).Unit()
			p = a.Add(Vec3{
				ab[0]*d*math.Cos(ang) - ab[1]*d*math.Sin(ang),
				ab[1]*d*math.Cos(ang) + ab[0]*d*math.Sin(ang),
				0,
			})
		default:
			if e.RefD >= i || e.RefA >= i || e.RefT >= i ||
				e.RefD < 0 || e.RefA < 0 || e.RefT < 0 {
				return Molecule{}, fmt.Errorf("basis: atom %d has invalid references", i)
			}
			a, b, c := pos[e.RefD], pos[e.RefA], pos[e.RefT]
			ang := e.Angle * math.Pi / 180
			tor := e.Torsion * math.Pi / 180
			ba := a.Sub(b)
			cb := b.Sub(c)
			cross := cb.Cross(ba)
			if cross.Norm() < 1e-9*cb.Norm()*ba.Norm() {
				return Molecule{}, fmt.Errorf("basis: atom %d references are collinear", i)
			}
			n := cross.Unit()
			// Local frame at a: x along a←b, z along n.
			x := ba.Unit()
			zAxis := n
			yAxis := zAxis.Cross(x)
			local := Vec3{
				-d * math.Cos(ang),
				d * math.Sin(ang) * math.Cos(tor),
				d * math.Sin(ang) * math.Sin(tor),
			}
			p = a.Add(x.Scale(local[0])).Add(yAxis.Scale(local[1])).Add(zAxis.Scale(local[2]))
		}
		pos = append(pos, p)
		mol.Atoms = append(mol.Atoms, Atom{Symbol: e.Symbol, Z: z, Pos: p})
	}
	return mol, nil
}

// mustZ builds a molecule from a Z-matrix and panics on structural
// errors; all inputs here are compile-time constants.
func mustZ(name string, entries []ZEntry) Molecule {
	m, err := ZToCartesian(name, entries)
	if err != nil {
		panic(err) //lint:nopanic-ok unreachable: all Z-matrix inputs are compile-time constants checked by tests
	}
	return m
}

// H2 returns molecular hydrogen at the experimental bond length.
func H2() Molecule {
	return mustZ("H2", []ZEntry{
		{Symbol: "H"},
		{Symbol: "H", RefD: 0, Dist: 0.7414},
	})
}

// Water returns H2O at the experimental geometry (r=0.9572 Å,
// θ=104.52°).
func Water() Molecule {
	return mustZ("water", []ZEntry{
		{Symbol: "O"},
		{Symbol: "H", RefD: 0, Dist: 0.9572},
		{Symbol: "H", RefD: 0, Dist: 0.9572, RefA: 1, Angle: 104.52},
	})
}

// HeH returns the HeH+ cation's geometry (a classic 2-electron test).
func HeH() Molecule {
	return mustZ("HeH+", []ZEntry{
		{Symbol: "He"},
		{Symbol: "H", RefD: 0, Dist: 0.772},
	})
}

// Benzene returns C6H6 at the experimental D6h geometry
// (r_CC = 1.397 Å, r_CH = 1.084 Å), one of the paper's three benchmark
// molecules (Fig. 8a).
func Benzene() Molecule {
	const rCC = 1.397 * AngstromToBohr
	const rCH = (1.397 + 1.084) * AngstromToBohr
	mol := Molecule{Name: "benzene"}
	for i := 0; i < 6; i++ {
		th := float64(i) * math.Pi / 3
		c, s := math.Cos(th), math.Sin(th)
		mol.Atoms = append(mol.Atoms, Atom{Symbol: "C", Z: 6, Pos: Vec3{rCC * c, rCC * s, 0}})
		mol.Atoms = append(mol.Atoms, Atom{Symbol: "H", Z: 1, Pos: Vec3{rCH * c, rCH * s, 0}})
	}
	return mol
}

// Glutamine returns the amino acid glutamine (C5H10N2O3, 20 atoms), one
// of the paper's benchmark molecules (Fig. 8b), built from standard
// internal coordinates (constructed geometry — see DESIGN.md).
func Glutamine() Molecule {
	// Backbone: N(0)–CA(1)–C(2)(=O(3))–O(4)H; side chain CA–CB(5)–CG(6)–
	// CD(7)(=OE1(8))–NE2(9); hydrogens fill the valences.
	return mustZ("glutamine", []ZEntry{
		{Symbol: "N"},                      // 0  N
		{Symbol: "C", RefD: 0, Dist: 1.47}, // 1  CA
		{Symbol: "C", RefD: 1, Dist: 1.53, RefA: 0, Angle: 110.5},                         // 2  C
		{Symbol: "O", RefD: 2, Dist: 1.23, RefA: 1, Angle: 121.0, RefT: 0, Torsion: 0},    // 3  O (carbonyl)
		{Symbol: "O", RefD: 2, Dist: 1.34, RefA: 1, Angle: 114.0, RefT: 0, Torsion: 180},  // 4  O (hydroxyl)
		{Symbol: "C", RefD: 1, Dist: 1.53, RefA: 0, Angle: 109.5, RefT: 2, Torsion: 120},  // 5  CB
		{Symbol: "C", RefD: 5, Dist: 1.53, RefA: 1, Angle: 112.0, RefT: 0, Torsion: 180},  // 6  CG
		{Symbol: "C", RefD: 6, Dist: 1.52, RefA: 5, Angle: 112.0, RefT: 1, Torsion: 180},  // 7  CD
		{Symbol: "O", RefD: 7, Dist: 1.23, RefA: 6, Angle: 121.0, RefT: 5, Torsion: 0},    // 8  OE1
		{Symbol: "N", RefD: 7, Dist: 1.33, RefA: 6, Angle: 116.0, RefT: 5, Torsion: 180},  // 9  NE2
		{Symbol: "H", RefD: 0, Dist: 1.01, RefA: 1, Angle: 109.5, RefT: 2, Torsion: 60},   // 10 H(N)
		{Symbol: "H", RefD: 0, Dist: 1.01, RefA: 1, Angle: 109.5, RefT: 2, Torsion: -60},  // 11 H(N)
		{Symbol: "H", RefD: 1, Dist: 1.09, RefA: 0, Angle: 109.5, RefT: 2, Torsion: -120}, // 12 H(CA)
		{Symbol: "H", RefD: 4, Dist: 0.97, RefA: 2, Angle: 106.0, RefT: 1, Torsion: 180},  // 13 H(O)
		{Symbol: "H", RefD: 5, Dist: 1.09, RefA: 1, Angle: 109.5, RefT: 6, Torsion: 120},  // 14 H(CB)
		{Symbol: "H", RefD: 5, Dist: 1.09, RefA: 1, Angle: 109.5, RefT: 6, Torsion: -120}, // 15 H(CB)
		{Symbol: "H", RefD: 6, Dist: 1.09, RefA: 5, Angle: 109.5, RefT: 7, Torsion: 120},  // 16 H(CG)
		{Symbol: "H", RefD: 6, Dist: 1.09, RefA: 5, Angle: 109.5, RefT: 7, Torsion: -120}, // 17 H(CG)
		{Symbol: "H", RefD: 9, Dist: 1.01, RefA: 7, Angle: 120.0, RefT: 6, Torsion: 0},    // 18 H(NE2)
		{Symbol: "H", RefD: 9, Dist: 1.01, RefA: 7, Angle: 120.0, RefT: 6, Torsion: 180},  // 19 H(NE2)
	})
}

// PolyAlanine builds an extended (all-trans) polypeptide of n alanine
// residues with an N-terminal H2N– group and a C-terminal –COOH, using
// standard backbone bond lengths and angles. TriAlanine (n=3) is the
// paper's third benchmark molecule (Fig. 8c).
func PolyAlanine(n int) Molecule {
	if n < 1 {
		panic("basis: PolyAlanine needs n >= 1") //lint:nopanic-ok programmer error: n is a compile-time benchmark parameter
	}
	var z []ZEntry
	// Seed residue: N, CA, C.
	z = append(z,
		ZEntry{Symbol: "N"},
		ZEntry{Symbol: "C", RefD: 0, Dist: 1.47},                        // CA
		ZEntry{Symbol: "C", RefD: 1, Dist: 1.53, RefA: 0, Angle: 111.0}, // C
	)
	nIdx, caIdx, cIdx := 0, 1, 2
	prevCA := -1
	for res := 0; res < n; res++ {
		// Carbonyl oxygen on C.
		refT := nIdx
		z = append(z, ZEntry{Symbol: "O", RefD: cIdx, Dist: 1.23, RefA: caIdx, Angle: 121.0, RefT: refT, Torsion: 0})
		// Side-chain CB + 3 methyl hydrogens on CA.
		z = append(z, ZEntry{Symbol: "C", RefD: caIdx, Dist: 1.53, RefA: nIdx, Angle: 109.5, RefT: cIdx, Torsion: 120})
		cb := len(z) - 1
		for k, tor := range []float64{60, 180, -60} {
			_ = k
			z = append(z, ZEntry{Symbol: "H", RefD: cb, Dist: 1.09, RefA: caIdx, Angle: 109.5, RefT: nIdx, Torsion: tor})
		}
		// Hα on CA.
		z = append(z, ZEntry{Symbol: "H", RefD: caIdx, Dist: 1.09, RefA: nIdx, Angle: 109.5, RefT: cIdx, Torsion: -120})
		// Amide hydrogens: 2 on the N-terminus, 1 on interior N.
		if res == 0 {
			z = append(z, ZEntry{Symbol: "H", RefD: nIdx, Dist: 1.01, RefA: caIdx, Angle: 109.5, RefT: cIdx, Torsion: 60})
			z = append(z, ZEntry{Symbol: "H", RefD: nIdx, Dist: 1.01, RefA: caIdx, Angle: 109.5, RefT: cIdx, Torsion: 180})
		} else {
			z = append(z, ZEntry{Symbol: "H", RefD: nIdx, Dist: 1.01, RefA: caIdx, Angle: 119.0, RefT: prevCA, Torsion: 180})
		}
		if res == n-1 {
			// C-terminal hydroxyl.
			z = append(z, ZEntry{Symbol: "O", RefD: cIdx, Dist: 1.34, RefA: caIdx, Angle: 114.0, RefT: nIdx, Torsion: 180})
			oh := len(z) - 1
			z = append(z, ZEntry{Symbol: "H", RefD: oh, Dist: 0.97, RefA: cIdx, Angle: 106.0, RefT: caIdx, Torsion: 180})
			break
		}
		// Peptide bond to the next residue: C–N(+1)–CA(+1)–C(+1).
		z = append(z, ZEntry{Symbol: "N", RefD: cIdx, Dist: 1.33, RefA: caIdx, Angle: 116.0, RefT: nIdx, Torsion: 180})
		newN := len(z) - 1
		z = append(z, ZEntry{Symbol: "C", RefD: newN, Dist: 1.46, RefA: cIdx, Angle: 121.0, RefT: caIdx, Torsion: 180})
		newCA := len(z) - 1
		z = append(z, ZEntry{Symbol: "C", RefD: newCA, Dist: 1.53, RefA: newN, Angle: 111.0, RefT: cIdx, Torsion: 180})
		prevCA = caIdx
		nIdx, caIdx, cIdx = newN, newCA, len(z)-1
	}
	name := fmt.Sprintf("poly-alanine-%d", n)
	if n == 3 {
		name = "tri-alanine"
	}
	return mustZ(name, z)
}

// TriAlanine returns the tri-alanine tripeptide (Fig. 8c).
func TriAlanine() Molecule { return PolyAlanine(3) }

// Cluster tiles nx×ny×nz translated copies of a molecule on a cubic
// grid with the given spacing (Å between copy origins). Large production
// quantum chemistry datasets cover shell pairs at many distances
// (solvated/packed systems); a cluster reproduces that distance
// distribution for a small molecule, which is what gives ERI streams
// their characteristic Type-0/1-dominated block mix (paper Sec. IV-C).
func Cluster(m Molecule, nx, ny, nz int, spacing float64) Molecule {
	return ClusterXYZ(m, nx, ny, nz, spacing, spacing, spacing)
}

// ClusterXYZ is Cluster with per-axis spacings (Å), for elongated
// molecules that need anisotropic packing to stay at van-der-Waals
// contact without collisions.
func ClusterXYZ(m Molecule, nx, ny, nz int, sx, sy, sz float64) Molecule {
	out := Molecule{Name: fmt.Sprintf("%s-%dx%dx%d", m.Name, nx, ny, nz)}
	for ix := 0; ix < nx; ix++ {
		for iy := 0; iy < ny; iy++ {
			for iz := 0; iz < nz; iz++ {
				off := Vec3{
					float64(ix) * sx * AngstromToBohr,
					float64(iy) * sy * AngstromToBohr,
					float64(iz) * sz * AngstromToBohr,
				}
				for _, a := range m.Atoms {
					a.Pos = a.Pos.Add(off)
					out.Atoms = append(out.Atoms, a)
				}
			}
		}
	}
	return out
}

// Molecules returns the paper's three benchmark molecules keyed by the
// names used in Fig. 9.
func Molecules() map[string]Molecule {
	return map[string]Molecule{
		"alanine":   TriAlanine(), // the paper labels tri-alanine "alanine" in Fig. 9
		"benzene":   Benzene(),
		"glutamine": Glutamine(),
	}
}
