// Package basis models Gaussian basis sets the way quantum chemistry
// codes like GAMESS do: basis functions (BFs) are contracted Cartesian
// Gaussians grouped into shells that share a center, exponents and total
// angular momentum l, giving (l+1)(l+2)/2 Cartesian components per shell
// (Sec. III-A of the paper; Fig. 1).
//
// It also carries the molecule geometries used in the paper's evaluation
// (benzene, glutamine, tri-alanine) plus small test systems, a Z-matrix
// builder for constructing geometries from internal coordinates, the
// STO-3G minimal basis for H/C/N/O (used by the Hartree–Fock example),
// and the pure-d / pure-f configurations used for the compression
// datasets ((dd|dd), (ff|ff), and hybrids).
package basis

import (
	"fmt"
	"math"
)

// Vec3 is a point or displacement in 3-D space (atomic units, Bohr).
type Vec3 [3]float64

// Add returns v + w.
func (v Vec3) Add(w Vec3) Vec3 { return Vec3{v[0] + w[0], v[1] + w[1], v[2] + w[2]} }

// Sub returns v − w.
func (v Vec3) Sub(w Vec3) Vec3 { return Vec3{v[0] - w[0], v[1] - w[1], v[2] - w[2]} }

// Scale returns s·v.
func (v Vec3) Scale(s float64) Vec3 { return Vec3{s * v[0], s * v[1], s * v[2]} }

// Dot returns v·w.
func (v Vec3) Dot(w Vec3) float64 { return v[0]*w[0] + v[1]*w[1] + v[2]*w[2] }

// Cross returns v × w.
func (v Vec3) Cross(w Vec3) Vec3 {
	return Vec3{
		v[1]*w[2] - v[2]*w[1],
		v[2]*w[0] - v[0]*w[2],
		v[0]*w[1] - v[1]*w[0],
	}
}

// Norm returns |v|.
func (v Vec3) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// Unit returns v/|v|; the zero vector is returned unchanged.
func (v Vec3) Unit() Vec3 {
	n := v.Norm()
	if n == 0 { //lint:floatcmp-ok |v| is exactly 0 only for the all-zero vector, the one case to guard
		return v
	}
	return v.Scale(1 / n)
}

// AngstromToBohr converts Å to atomic units.
const AngstromToBohr = 1.8897259886

// Atom is a nucleus with charge Z at a position (in Bohr).
type Atom struct {
	Symbol string
	Z      int
	Pos    Vec3
}

// Molecule is a set of atoms.
type Molecule struct {
	Name  string
	Atoms []Atom
}

// HeavyAtoms returns the non-hydrogen atoms.
func (m Molecule) HeavyAtoms() []Atom {
	var out []Atom
	for _, a := range m.Atoms {
		if a.Z > 1 {
			out = append(out, a)
		}
	}
	return out
}

// NElectrons returns the total electron count for a neutral molecule.
func (m Molecule) NElectrons() int {
	n := 0
	for _, a := range m.Atoms {
		n += a.Z
	}
	return n
}

// NuclearRepulsion returns the classical nucleus–nucleus repulsion energy
// in Hartree.
func (m Molecule) NuclearRepulsion() float64 {
	e := 0.0
	for i := 0; i < len(m.Atoms); i++ {
		for j := i + 1; j < len(m.Atoms); j++ {
			r := m.Atoms[i].Pos.Sub(m.Atoms[j].Pos).Norm()
			e += float64(m.Atoms[i].Z*m.Atoms[j].Z) / r
		}
	}
	return e
}

// ShellLetter returns the chemistry name of an angular momentum:
// s, p, d, f, g, … (Sec. III-A).
func ShellLetter(l int) string {
	letters := "spdfghik"
	if l >= 0 && l < len(letters) {
		return string(letters[l])
	}
	return fmt.Sprintf("l%d", l)
}

// NCart returns the number of Cartesian components of a shell with total
// angular momentum l: (l+1)(l+2)/2.
func NCart(l int) int { return (l + 1) * (l + 2) / 2 }

// CartComponent is one Cartesian Gaussian x^Lx·y^Ly·z^Lz·exp(−αr²).
type CartComponent struct{ Lx, Ly, Lz int }

// cartCache memoizes component lists per l.
var cartCache [12][]CartComponent

func init() {
	for l := range cartCache {
		var comps []CartComponent
		for lx := l; lx >= 0; lx-- {
			for ly := l - lx; ly >= 0; ly-- {
				comps = append(comps, CartComponent{lx, ly, l - lx - ly})
			}
		}
		cartCache[l] = comps
	}
}

// CartComponents lists a shell's Cartesian components in canonical
// (lexicographic descending) order: p → x,y,z; d → xx,xy,xz,yy,yz,zz; …
func CartComponents(l int) []CartComponent {
	if l >= 0 && l < len(cartCache) {
		return cartCache[l]
	}
	var comps []CartComponent
	for lx := l; lx >= 0; lx-- {
		for ly := l - lx; ly >= 0; ly-- {
			comps = append(comps, CartComponent{lx, ly, l - lx - ly})
		}
	}
	return comps
}

// Shell is a contracted Cartesian Gaussian shell: all (l+1)(l+2)/2
// components share the center, exponents and contraction coefficients.
// Coefs are the published coefficients for *normalized primitives*
// (the universal basis-set-exchange convention).
type Shell struct {
	Atom   int // index into the molecule's atom list (-1 if free-standing)
	Center Vec3
	L      int
	Exps   []float64
	Coefs  []float64
}

// NCart returns the number of basis functions in the shell.
func (s Shell) NCart() int { return NCart(s.L) }

// Validate checks structural invariants.
func (s Shell) Validate() error {
	if s.L < 0 {
		return fmt.Errorf("basis: negative angular momentum %d", s.L)
	}
	if len(s.Exps) == 0 || len(s.Exps) != len(s.Coefs) {
		return fmt.Errorf("basis: shell has %d exponents, %d coefficients", len(s.Exps), len(s.Coefs))
	}
	for _, a := range s.Exps {
		if !(a > 0) {
			return fmt.Errorf("basis: non-positive exponent %g", a)
		}
	}
	return nil
}

// doubleFactorial returns n!! with the convention (−1)!! = 0!! = 1.
func doubleFactorial(n int) float64 {
	r := 1.0
	for ; n > 1; n -= 2 {
		r *= float64(n)
	}
	return r
}

// PrimitiveNorm returns the normalization constant of the primitive
// Cartesian Gaussian x^lx y^ly z^lz exp(−α r²):
//
//	N = (2α/π)^¾ · (4α)^(l/2) / sqrt((2lx−1)!!(2ly−1)!!(2lz−1)!!)
func PrimitiveNorm(alpha float64, c CartComponent) float64 {
	l := c.Lx + c.Ly + c.Lz
	num := math.Pow(2*alpha/math.Pi, 0.75) * math.Pow(4*alpha, float64(l)/2)
	den := math.Sqrt(doubleFactorial(2*c.Lx-1) * doubleFactorial(2*c.Ly-1) * doubleFactorial(2*c.Lz-1))
	return num / den
}

// ContractedCoefs returns the effective primitive coefficients for one
// Cartesian component of the shell, such that the contracted BF built
// with plain (unnormalized) primitives Σ_i c'_i x^lx y^ly z^lz e^(−αᵢr²)
// has unit self-overlap.
func (s Shell) ContractedCoefs(c CartComponent) []float64 {
	// Step 1: published coefficients are per normalized primitive.
	eff := make([]float64, len(s.Exps))
	for i, a := range s.Exps {
		eff[i] = s.Coefs[i] * PrimitiveNorm(a, c)
	}
	// Step 2: overall contraction normalization from the analytic
	// same-center overlap of unnormalized primitives.
	l := c.Lx + c.Ly + c.Lz
	df := doubleFactorial(2*c.Lx-1) * doubleFactorial(2*c.Ly-1) * doubleFactorial(2*c.Lz-1)
	self := 0.0
	for i, ai := range s.Exps {
		for j, aj := range s.Exps {
			p := ai + aj
			sij := math.Pow(math.Pi/p, 1.5) * df / math.Pow(2*p, float64(l))
			self += eff[i] * eff[j] * sij
		}
	}
	n := 1 / math.Sqrt(self)
	for i := range eff {
		eff[i] *= n
	}
	return eff
}

// BasisSet is an ordered list of shells over a molecule, with a
// precomputed map from shell index to the offset of its first basis
// function in the full BF list.
type BasisSet struct {
	Mol     Molecule
	Shells  []Shell
	offsets []int
	nbf     int
}

// NewBasisSet assembles shells into a basis set, validating each shell.
func NewBasisSet(mol Molecule, shells []Shell) (*BasisSet, error) {
	bs := &BasisSet{Mol: mol, Shells: shells, offsets: make([]int, len(shells))}
	for i, s := range shells {
		if err := s.Validate(); err != nil {
			return nil, fmt.Errorf("shell %d: %w", i, err)
		}
		bs.offsets[i] = bs.nbf
		bs.nbf += s.NCart()
	}
	return bs, nil
}

// NBF returns the total number of basis functions N (the paper's scaling
// parameter: ERI count grows as O(N⁴)).
func (b *BasisSet) NBF() int { return b.nbf }

// Offset returns the index of the first BF of shell i.
func (b *BasisSet) Offset(i int) int { return b.offsets[i] }

// NShells returns the number of shells.
func (b *BasisSet) NShells() int { return len(b.Shells) }
