package basis

import (
	"math"
	"testing"
)

func TestNCart(t *testing.T) {
	want := map[int]int{0: 1, 1: 3, 2: 6, 3: 10, 4: 15}
	for l, n := range want {
		if got := NCart(l); got != n {
			t.Errorf("NCart(%d) = %d, want %d", l, got, n)
		}
		if got := len(CartComponents(l)); got != n {
			t.Errorf("len(CartComponents(%d)) = %d, want %d", l, got, n)
		}
	}
}

func TestCartComponentsValid(t *testing.T) {
	for l := 0; l <= 8; l++ {
		seen := map[CartComponent]bool{}
		for _, c := range CartComponents(l) {
			if c.Lx+c.Ly+c.Lz != l {
				t.Fatalf("l=%d: component %+v sums to %d", l, c, c.Lx+c.Ly+c.Lz)
			}
			if c.Lx < 0 || c.Ly < 0 || c.Lz < 0 {
				t.Fatalf("l=%d: negative exponent in %+v", l, c)
			}
			if seen[c] {
				t.Fatalf("l=%d: duplicate component %+v", l, c)
			}
			seen[c] = true
		}
	}
	// Canonical order for p and d shells.
	p := CartComponents(1)
	if p[0] != (CartComponent{1, 0, 0}) || p[1] != (CartComponent{0, 1, 0}) || p[2] != (CartComponent{0, 0, 1}) {
		t.Errorf("p order: %v", p)
	}
	d := CartComponents(2)
	if d[0] != (CartComponent{2, 0, 0}) || d[5] != (CartComponent{0, 0, 2}) {
		t.Errorf("d order: %v", d)
	}
}

func TestShellLetter(t *testing.T) {
	for l, want := range []string{"s", "p", "d", "f", "g"} {
		if got := ShellLetter(l); got != want {
			t.Errorf("ShellLetter(%d) = %q, want %q", l, got, want)
		}
	}
	if ShellLetter(20) != "l20" {
		t.Errorf("ShellLetter(20) = %q", ShellLetter(20))
	}
}

// A normalized primitive must have unit self-overlap under the analytic
// same-center overlap formula.
func TestPrimitiveNormSelfOverlap(t *testing.T) {
	for _, alpha := range []float64{0.2, 1.0, 5.5} {
		for l := 0; l <= 3; l++ {
			for _, c := range CartComponents(l) {
				n := PrimitiveNorm(alpha, c)
				p := 2 * alpha
				df := doubleFactorial(2*c.Lx-1) * doubleFactorial(2*c.Ly-1) * doubleFactorial(2*c.Lz-1)
				self := n * n * math.Pow(math.Pi/p, 1.5) * df / math.Pow(2*p, float64(l))
				if math.Abs(self-1) > 1e-12 {
					t.Errorf("alpha=%g %+v: self overlap %g", alpha, c, self)
				}
			}
		}
	}
}

func TestContractedCoefsUnitNorm(t *testing.T) {
	// STO-3G hydrogen s shell must come out normalized.
	s := Shell{
		L:     0,
		Exps:  []float64{3.42525091, 0.62391373, 0.16885540},
		Coefs: []float64{0.15432897, 0.53532814, 0.44463454},
	}
	for l := 0; l <= 3; l++ {
		s.L = l
		for _, c := range CartComponents(l) {
			eff := s.ContractedCoefs(c)
			df := doubleFactorial(2*c.Lx-1) * doubleFactorial(2*c.Ly-1) * doubleFactorial(2*c.Lz-1)
			self := 0.0
			for i, ai := range s.Exps {
				for j, aj := range s.Exps {
					p := ai + aj
					self += eff[i] * eff[j] * math.Pow(math.Pi/p, 1.5) * df / math.Pow(2*p, float64(l))
				}
			}
			if math.Abs(self-1) > 1e-10 {
				t.Errorf("l=%d %+v: contracted self overlap %g", l, c, self)
			}
		}
	}
}

func TestShellValidate(t *testing.T) {
	good := Shell{L: 2, Exps: []float64{1.0}, Coefs: []float64{1.0}}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid shell rejected: %v", err)
	}
	bad := []Shell{
		{L: -1, Exps: []float64{1}, Coefs: []float64{1}},
		{L: 0, Exps: nil, Coefs: nil},
		{L: 0, Exps: []float64{1, 2}, Coefs: []float64{1}},
		{L: 0, Exps: []float64{-1}, Coefs: []float64{1}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad shell %d accepted", i)
		}
	}
}

func dist(a, b Atom) float64 { return a.Pos.Sub(b.Pos).Norm() / AngstromToBohr }

func TestWaterGeometry(t *testing.T) {
	w := Water()
	if len(w.Atoms) != 3 {
		t.Fatalf("water has %d atoms", len(w.Atoms))
	}
	if d := dist(w.Atoms[0], w.Atoms[1]); math.Abs(d-0.9572) > 1e-6 {
		t.Errorf("OH1 = %g Å", d)
	}
	if d := dist(w.Atoms[0], w.Atoms[2]); math.Abs(d-0.9572) > 1e-6 {
		t.Errorf("OH2 = %g Å", d)
	}
	v1 := w.Atoms[1].Pos.Sub(w.Atoms[0].Pos)
	v2 := w.Atoms[2].Pos.Sub(w.Atoms[0].Pos)
	ang := math.Acos(v1.Dot(v2)/(v1.Norm()*v2.Norm())) * 180 / math.Pi
	if math.Abs(ang-104.52) > 1e-4 {
		t.Errorf("HOH angle = %g°", ang)
	}
}

func TestBenzeneGeometry(t *testing.T) {
	b := Benzene()
	if len(b.Atoms) != 12 {
		t.Fatalf("benzene has %d atoms", len(b.Atoms))
	}
	heavy := b.HeavyAtoms()
	if len(heavy) != 6 {
		t.Fatalf("benzene has %d heavy atoms", len(heavy))
	}
	// Adjacent C–C distances all 1.397 Å.
	for i := 0; i < 6; i++ {
		d := dist(heavy[i], heavy[(i+1)%6])
		if math.Abs(d-1.397) > 1e-6 {
			t.Errorf("C%d–C%d = %g Å", i, (i+1)%6, d)
		}
	}
	// Each C has an H at 1.084 Å.
	for i := 0; i < 6; i++ {
		d := dist(b.Atoms[2*i], b.Atoms[2*i+1])
		if math.Abs(d-1.084) > 1e-6 {
			t.Errorf("C–H %d = %g Å", i, d)
		}
	}
}

func countElements(m Molecule) map[string]int {
	c := map[string]int{}
	for _, a := range m.Atoms {
		c[a.Symbol]++
	}
	return c
}

// geometrySane checks that no two atoms overlap and bonded-scale
// distances exist — guards against Z-matrix construction bugs.
func geometrySane(t *testing.T, m Molecule) {
	t.Helper()
	for i := 0; i < len(m.Atoms); i++ {
		minD := math.Inf(1)
		for j := 0; j < len(m.Atoms); j++ {
			if i == j {
				continue
			}
			d := dist(m.Atoms[i], m.Atoms[j])
			if d < minD {
				minD = d
			}
		}
		if minD < 0.85 {
			t.Errorf("%s: atom %d (%s) too close to a neighbor: %.3f Å",
				m.Name, i, m.Atoms[i].Symbol, minD)
		}
		if minD > 2.0 {
			t.Errorf("%s: atom %d (%s) floating free: nearest %.3f Å",
				m.Name, i, m.Atoms[i].Symbol, minD)
		}
	}
}

func TestGlutamineFormula(t *testing.T) {
	g := Glutamine()
	want := map[string]int{"C": 5, "H": 10, "N": 2, "O": 3}
	got := countElements(g)
	for el, n := range want {
		if got[el] != n {
			t.Errorf("glutamine %s count = %d, want %d", el, got[el], n)
		}
	}
	if g.NElectrons() != 5*6+10+2*7+3*8 {
		t.Errorf("glutamine electrons = %d", g.NElectrons())
	}
	geometrySane(t, g)
}

func TestTriAlanineFormula(t *testing.T) {
	a := TriAlanine()
	want := map[string]int{"C": 9, "H": 17, "N": 3, "O": 4}
	got := countElements(a)
	for el, n := range want {
		if got[el] != n {
			t.Errorf("tri-alanine %s count = %d, want %d", el, got[el], n)
		}
	}
	if len(a.Atoms) != 33 {
		t.Errorf("tri-alanine has %d atoms, want 33", len(a.Atoms))
	}
	geometrySane(t, a)
}

func TestH2NuclearRepulsion(t *testing.T) {
	h2 := H2()
	r := 0.7414 * AngstromToBohr
	if got, want := h2.NuclearRepulsion(), 1/r; math.Abs(got-want) > 1e-12 {
		t.Errorf("H2 Vnn = %g, want %g", got, want)
	}
}

func TestMoleculesMap(t *testing.T) {
	ms := Molecules()
	for _, name := range []string{"alanine", "benzene", "glutamine"} {
		if _, ok := ms[name]; !ok {
			t.Errorf("missing molecule %q", name)
		}
	}
}

func TestNewBasisSetOffsets(t *testing.T) {
	mol := Water()
	shells := []Shell{
		{Atom: 0, Center: mol.Atoms[0].Pos, L: 0, Exps: []float64{1}, Coefs: []float64{1}},
		{Atom: 0, Center: mol.Atoms[0].Pos, L: 1, Exps: []float64{1}, Coefs: []float64{1}},
		{Atom: 1, Center: mol.Atoms[1].Pos, L: 2, Exps: []float64{1}, Coefs: []float64{1}},
	}
	bs, err := NewBasisSet(mol, shells)
	if err != nil {
		t.Fatal(err)
	}
	if bs.NBF() != 1+3+6 {
		t.Errorf("NBF = %d", bs.NBF())
	}
	if bs.Offset(0) != 0 || bs.Offset(1) != 1 || bs.Offset(2) != 4 {
		t.Errorf("offsets: %d %d %d", bs.Offset(0), bs.Offset(1), bs.Offset(2))
	}
	if bs.NShells() != 3 {
		t.Errorf("NShells = %d", bs.NShells())
	}
	shells[0].Exps = nil
	if _, err := NewBasisSet(mol, shells); err == nil {
		t.Error("invalid shell accepted")
	}
}

func TestZMatrixErrors(t *testing.T) {
	if _, err := ZToCartesian("x", []ZEntry{{Symbol: "Xx"}}); err == nil {
		t.Error("unknown element accepted")
	}
	if _, err := ZToCartesian("x", []ZEntry{
		{Symbol: "H"}, {Symbol: "H", RefD: 5, Dist: 1},
	}); err == nil {
		t.Error("bad reference accepted")
	}
	// Collinear references for a torsion placement.
	if _, err := ZToCartesian("x", []ZEntry{
		{Symbol: "C"},
		{Symbol: "C", RefD: 0, Dist: 1},
		{Symbol: "C", RefD: 1, Dist: 1, RefA: 0, Angle: 180},
		{Symbol: "H", RefD: 2, Dist: 1, RefA: 1, Angle: 109, RefT: 0, Torsion: 60},
	}); err == nil {
		t.Error("collinear torsion reference accepted")
	}
	// Out-of-range forward reference.
	if _, err := ZToCartesian("x", []ZEntry{
		{Symbol: "C"},
		{Symbol: "C", RefD: 0, Dist: 1},
		{Symbol: "C", RefD: 1, Dist: 1, RefA: 0, Angle: 100},
		{Symbol: "H", RefD: 3, Dist: 1, RefA: 1, Angle: 109, RefT: 0, Torsion: 60},
	}); err == nil {
		t.Error("forward reference accepted")
	}
}

func TestVec3Ops(t *testing.T) {
	a := Vec3{1, 0, 0}
	b := Vec3{0, 1, 0}
	if c := a.Cross(b); c != (Vec3{0, 0, 1}) {
		t.Errorf("cross = %v", c)
	}
	if d := a.Add(b).Sub(b); d != a {
		t.Errorf("add/sub = %v", d)
	}
	if a.Dot(b) != 0 {
		t.Errorf("dot = %g", a.Dot(b))
	}
	if u := (Vec3{3, 4, 0}).Unit(); math.Abs(u.Norm()-1) > 1e-15 {
		t.Errorf("unit norm = %g", u.Norm())
	}
	if z := (Vec3{}).Unit(); z != (Vec3{}) {
		t.Errorf("zero unit = %v", z)
	}
	if s := a.Scale(2.5); s != (Vec3{2.5, 0, 0}) {
		t.Errorf("scale = %v", s)
	}
}
