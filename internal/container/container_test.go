package container

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
)

func patterned(rng *rand.Rand, g Geometry, amp float64) []float64 {
	shape := make([]float64, g.SBSize)
	for i := range shape {
		shape[i] = rng.NormFloat64() * amp
	}
	out := make([]float64, 0, g.BlockSize())
	for s := 0; s < g.NumSB; s++ {
		sc := rng.Float64()*2 - 1
		for i := 0; i < g.SBSize; i++ {
			out = append(out, sc*shape[i]+amp*1e-5*rng.NormFloat64())
		}
	}
	return out
}

func TestMixedGeometryRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	base := core.Defaults(1, 1, 1e-10)
	w, err := NewWriter(base)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's hybrid shapes: (dd|dd), (df|fd), (ff|ff), (fd|ff)...
	geos := []Geometry{
		{36, 36},   // (dd|dd)
		{60, 60},   // (df|df)
		{100, 100}, // (ff|ff)
		{60, 100},  // (fd|ff)
	}
	var want [][]float64
	var wantG []Geometry
	for i := 0; i < 40; i++ {
		g := geos[rng.Intn(len(geos))]
		blk := patterned(rng, g, math.Pow(10, float64(rng.Intn(6)-9)))
		if err := w.WriteBlock(g, blk); err != nil {
			t.Fatal(err)
		}
		want = append(want, blk)
		wantG = append(wantG, g)
	}
	if w.Blocks() != 40 {
		t.Fatalf("Blocks = %d", w.Blocks())
	}
	if w.Sections() < 2 || w.Sections() > 4 {
		t.Fatalf("Sections = %d", w.Sections())
	}
	buf, err := w.Bytes()
	if err != nil {
		t.Fatal(err)
	}

	r, err := NewReader(buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.Blocks() != 40 {
		t.Fatalf("reader Blocks = %d", r.Blocks())
	}
	for i := range want {
		g, err := r.GeometryOf(i)
		if err != nil {
			t.Fatal(err)
		}
		if g != wantG[i] {
			t.Fatalf("block %d geometry %v, want %v", i, g, wantG[i])
		}
		data, g2, err := r.Next()
		if err != nil {
			t.Fatalf("block %d: %v", i, err)
		}
		if g2 != wantG[i] {
			t.Fatalf("block %d replay geometry %v", i, g2)
		}
		for j := range data {
			if math.Abs(data[j]-want[i][j]) > 1e-10*(1+1e-9) {
				t.Fatalf("block %d point %d out of bound", i, j)
			}
		}
	}
	// End of stream.
	data, _, err := r.Next()
	if err != nil || data != nil {
		t.Fatalf("expected end of stream, got %v, %v", data, err)
	}
	// Reset replays from the start.
	r.Reset()
	data, g, err := r.Next()
	if err != nil || g != wantG[0] {
		t.Fatalf("after Reset: %v, %v", g, err)
	}
	for j := range data {
		if math.Abs(data[j]-want[0][j]) > 1e-10*(1+1e-9) {
			t.Fatal("Reset replay mismatch")
		}
	}
}

func TestWriterValidation(t *testing.T) {
	if _, err := NewWriter(core.Config{}); err == nil {
		t.Error("invalid base config accepted")
	}
	w, err := NewWriter(core.Defaults(1, 1, 1e-10))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteBlock(Geometry{0, 5}, nil); err == nil {
		t.Error("invalid geometry accepted")
	}
	if err := w.WriteBlock(Geometry{2, 2}, make([]float64, 3)); err == nil {
		t.Error("wrong block size accepted")
	}
}

func TestReaderCorruption(t *testing.T) {
	w, _ := NewWriter(core.Defaults(1, 1, 1e-10))
	_ = w.WriteBlock(Geometry{2, 2}, make([]float64, 4))
	buf, err := w.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":     {},
		"bad magic": append([]byte("XXXX"), buf[4:]...),
		"short":     buf[:10],
		"truncated": buf[:len(buf)-2],
		"version":   append(append([]byte{}, buf[:4]...), append([]byte{9}, buf[5:]...)...),
	}
	for name, c := range cases {
		if _, err := NewReader(c); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	if _, err := NewReader(buf); err != nil {
		t.Fatalf("valid container rejected: %v", err)
	}
}

func TestGeometryOfBounds(t *testing.T) {
	w, _ := NewWriter(core.Defaults(1, 1, 1e-10))
	_ = w.WriteBlock(Geometry{2, 2}, make([]float64, 4))
	buf, _ := w.Bytes()
	r, err := NewReader(buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.GeometryOf(-1); err == nil {
		t.Error("negative index accepted")
	}
	if _, err := r.GeometryOf(1); err == nil {
		t.Error("out-of-range index accepted")
	}
}

// TestParallelBytesDeterministic pins the Bytes() determinism contract:
// the serialized container is byte-identical whether sections are
// compressed serially or concurrently.
func TestParallelBytesDeterministic(t *testing.T) {
	build := func(workers int) []byte {
		rng := rand.New(rand.NewSource(99))
		base := core.Defaults(1, 1, 1e-10)
		base.Workers = workers
		w, err := NewWriter(base)
		if err != nil {
			t.Fatal(err)
		}
		geos := []Geometry{{4, 9}, {6, 10}, {9, 4}, {10, 6}, {3, 3}}
		for i := 0; i < 60; i++ {
			g := geos[i%len(geos)]
			if err := w.WriteBlock(g, patterned(rng, g, 1e-6)); err != nil {
				t.Fatal(err)
			}
		}
		buf, err := w.Bytes()
		if err != nil {
			t.Fatal(err)
		}
		return buf
	}
	serial := build(1)
	for _, workers := range []int{0, 2, 4, 7} {
		if par := build(workers); !bytes.Equal(serial, par) {
			t.Fatalf("workers=%d: container bytes differ from serial", workers)
		}
	}
	// And the parallel-built container must replay correctly.
	r, err := NewReader(serial)
	if err != nil {
		t.Fatal(err)
	}
	if r.Blocks() != 60 {
		t.Fatalf("Blocks() = %d, want 60", r.Blocks())
	}
}
