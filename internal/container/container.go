// Package container implements a multi-section PaSTRI file for
// mixed-geometry workloads. A plain PaSTRI stream holds blocks of one
// shape; real ERI runs over hybrid basis configurations emit many block
// shapes — the paper's "(df|fd), etc." datasets, where a quartet of d
// and f shells yields e.g. 6·10 sub-blocks of 10·6 points. A container
// groups blocks by geometry into sections, each an independent PaSTRI
// stream, preserving the original block order via a block directory.
//
// Layout:
//
//	magic     [4]byte "PSTC"
//	version   uint8
//	nsections uint32
//	norder    uint64                   (total blocks, in original order)
//	order     norder × uvarint         (section index per block)
//	sections  nsections × { uvarint length; PaSTRI stream }
//
// The per-block section assignment plus each section's internal order
// reconstructs the original sequence: the k-th occurrence of section s
// in the directory is block k of section s.
package container

import (
	"context"
	"encoding/binary"
	"fmt"
	"log/slog"
	"runtime"
	"sync"

	"repro/internal/core"
	"repro/internal/telemetry"
)

var magic = [4]byte{'P', 'S', 'T', 'C'}

const version = 1

// Geometry is a block shape.
type Geometry struct {
	NumSB  int
	SBSize int
}

// BlockSize returns values per block.
func (g Geometry) BlockSize() int { return g.NumSB * g.SBSize }

// Writer assembles a container in memory. Blocks may arrive in any
// geometry order; Bytes() compresses each section (in parallel, via the
// core stream codec) and serializes the result.
type Writer struct {
	cfgBase  core.Config
	sections map[Geometry]int
	raw      [][]float64 // per section: concatenated raw blocks
	geos     []Geometry
	order    []uint32
}

// NewWriter creates a container writer. base supplies everything except
// the geometry (error bound, metric, encoding, sparse flag, workers).
func NewWriter(base core.Config) (*Writer, error) {
	probe := base
	probe.NumSB, probe.SBSize = 1, 1
	if err := probe.Validate(); err != nil {
		return nil, err
	}
	return &Writer{
		cfgBase:  base,
		sections: map[Geometry]int{},
	}, nil
}

// WriteBlock appends one block of the given geometry. The
// geometry-grouping work is accounted as block-split time.
func (w *Writer) WriteBlock(g Geometry, block []float64) error {
	if g.NumSB <= 0 || g.SBSize <= 0 {
		return fmt.Errorf("container: invalid geometry %d×%d", g.NumSB, g.SBSize)
	}
	if len(block) != g.BlockSize() {
		return fmt.Errorf("container: block has %d values, geometry wants %d", len(block), g.BlockSize())
	}
	tSplit := w.cfgBase.Collector.StageStart()
	idx, ok := w.sections[g]
	if !ok {
		idx = len(w.geos)
		w.sections[g] = idx
		w.geos = append(w.geos, g)
		w.raw = append(w.raw, nil)
	}
	w.raw[idx] = append(w.raw[idx], block...)
	w.order = append(w.order, uint32(idx))
	w.cfgBase.Collector.StageEnd(telemetry.StageBlockSplit, tSplit)
	return nil
}

// Sections returns the number of distinct geometries seen.
func (w *Writer) Sections() int { return len(w.geos) }

// Blocks returns the total number of blocks written.
func (w *Writer) Blocks() int { return len(w.order) }

// Bytes serializes the container. Sections are compressed concurrently
// (bounded by the base config's Workers setting, 0 ⇒ GOMAXPROCS), then
// appended in section order, so the output is byte-identical no matter
// how the work was scheduled.
func (w *Writer) Bytes() ([]byte, error) {
	streams, err := w.compressSections()
	if err != nil {
		return nil, err
	}
	col := w.cfgBase.Collector
	defer col.Timer(telemetry.StageWrite).Stop()
	var out []byte
	out = append(out, magic[:]...)
	out = append(out, version)
	var b4 [4]byte
	binary.LittleEndian.PutUint32(b4[:], uint32(len(w.geos)))
	out = append(out, b4[:]...)
	var b8 [8]byte
	binary.LittleEndian.PutUint64(b8[:], uint64(len(w.order)))
	out = append(out, b8[:]...)
	var vb [binary.MaxVarintLen64]byte
	for _, s := range w.order {
		n := binary.PutUvarint(vb[:], uint64(s))
		out = append(out, vb[:n]...)
	}
	streamBytes := 0
	for _, stream := range streams {
		n := binary.PutUvarint(vb[:], uint64(len(stream)))
		out = append(out, vb[:n]...)
		out = append(out, stream...)
		streamBytes += len(stream)
	}
	// Section streams already accounted their own header/varint framing
	// via core.Compress; the container adds its magic, counts,
	// directory and section-length varints on top.
	col.AddFramingBytes(len(out) - streamBytes)
	return out, nil
}

// compressSections compresses every section into its own stream,
// fanning sections out over a bounded pool. streams[i] depends only on
// section i's blocks and the base config, never on scheduling. Each
// section's internal block fan-out is disabled (Workers=1) in favor of
// section-level parallelism when there are several sections; a
// single-section container still parallelizes over its blocks.
func (w *Writer) compressSections() ([][]byte, error) {
	streams := make([][]byte, len(w.geos))
	workers := w.cfgBase.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(w.geos) {
		workers = len(w.geos)
	}
	if workers <= 1 {
		for i, g := range w.geos {
			cfg := w.cfgBase
			cfg.NumSB, cfg.SBSize = g.NumSB, g.SBSize
			stream, err := core.Compress(w.raw[i], cfg, nil)
			if err != nil {
				return nil, err
			}
			streams[i] = stream
			w.logSection(i, g, len(stream))
		}
		return streams, nil
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	next := make(chan int, len(w.geos))
	for i := range w.geos {
		next <- i
	}
	close(next)
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				cfg := w.cfgBase
				cfg.NumSB, cfg.SBSize = w.geos[i].NumSB, w.geos[i].SBSize
				cfg.Workers = 1 // section-level parallelism only
				stream, err := core.Compress(w.raw[i], cfg, nil)
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("container: section %d: %w", i, err)
					}
					mu.Unlock()
					return
				}
				streams[i] = stream
				w.logSection(i, w.geos[i], len(stream))
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return streams, nil
}

// logSection emits one Info record per compressed section: the section
// index, its shell-quartet class, and the raw/compressed byte counts.
// slog handlers are safe for concurrent use, so the parallel path logs
// without extra locking.
func (w *Writer) logSection(i int, g Geometry, streamBytes int) {
	l := w.cfgBase.Logger
	if l == nil || !l.Enabled(context.Background(), slog.LevelInfo) {
		return
	}
	blocks := 0
	if bs := g.BlockSize(); bs > 0 {
		blocks = len(w.raw[i]) / bs
	}
	l.LogAttrs(context.Background(), slog.LevelInfo, "section compressed",
		slog.Int("section", i),
		slog.String("class", fmt.Sprintf("%dx%d", g.NumSB, g.SBSize)),
		slog.Int("blocks", blocks),
		slog.Int("bytes_in", len(w.raw[i])*8),
		slog.Int("bytes_out", streamBytes))
}

// Reader decodes a container.
type Reader struct {
	order    []uint32
	sections []*core.BlockReader
	// cursor[s] is the next block index within section s during
	// sequential replay; consumed counts blocks replayed so far.
	cursor   []int
	consumed int
}

// NewReader parses a container.
func NewReader(buf []byte) (*Reader, error) {
	if len(buf) < 17 {
		return nil, fmt.Errorf("container: too short")
	}
	if [4]byte(buf[:4]) != magic {
		return nil, fmt.Errorf("container: bad magic %q", buf[:4])
	}
	if buf[4] != version {
		return nil, fmt.Errorf("container: unsupported version %d", buf[4])
	}
	nsec := binary.LittleEndian.Uint32(buf[5:9])
	norder := binary.LittleEndian.Uint64(buf[9:17])
	if nsec > 1<<16 || norder > 1<<40 {
		return nil, fmt.Errorf("container: implausible counts (%d sections, %d blocks)", nsec, norder)
	}
	off := 17
	r := &Reader{order: make([]uint32, norder)}
	for i := range r.order {
		v, n := binary.Uvarint(buf[off:])
		if n <= 0 {
			return nil, fmt.Errorf("container: corrupt directory at %d", off)
		}
		if v >= uint64(nsec) {
			return nil, fmt.Errorf("container: directory entry %d out of range", v)
		}
		r.order[i] = uint32(v)
		off += n
	}
	for s := uint32(0); s < nsec; s++ {
		length, n := binary.Uvarint(buf[off:])
		if n <= 0 {
			return nil, fmt.Errorf("container: corrupt section length at %d", off)
		}
		off += n
		if uint64(len(buf)-off) < length {
			return nil, fmt.Errorf("container: truncated section %d", s)
		}
		br, err := core.NewBlockReader(buf[off : off+int(length)])
		if err != nil {
			return nil, fmt.Errorf("container: section %d: %w", s, err)
		}
		r.sections = append(r.sections, br)
		off += int(length)
	}
	r.cursor = make([]int, nsec)
	// Validate directory against section contents.
	counts := make([]int, nsec)
	for _, s := range r.order {
		counts[s]++
	}
	for s, br := range r.sections {
		if br.NumBlocks() != counts[s] {
			return nil, fmt.Errorf("container: section %d holds %d blocks, directory says %d",
				s, br.NumBlocks(), counts[s])
		}
	}
	return r, nil
}

// Blocks returns the total block count.
func (r *Reader) Blocks() int { return len(r.order) }

// GeometryOf returns the geometry of block i (original order).
func (r *Reader) GeometryOf(i int) (Geometry, error) {
	if i < 0 || i >= len(r.order) {
		return Geometry{}, fmt.Errorf("container: block %d out of range", i)
	}
	cfg := r.sections[r.order[i]].Config()
	return Geometry{NumSB: cfg.NumSB, SBSize: cfg.SBSize}, nil
}

// Next decompresses the next block in original order, returning the
// block values and geometry. After the last block it returns nil data.
func (r *Reader) Next() ([]float64, Geometry, error) {
	if r.consumed >= len(r.order) {
		return nil, Geometry{}, nil
	}
	s := r.order[r.consumed]
	br := r.sections[s]
	cfg := br.Config()
	dst := make([]float64, cfg.BlockSize())
	if err := br.ReadBlock(r.cursor[s], dst); err != nil {
		return nil, Geometry{}, err
	}
	r.cursor[s]++
	r.consumed++
	return dst, Geometry{NumSB: cfg.NumSB, SBSize: cfg.SBSize}, nil
}

// Reset rewinds sequential replay.
func (r *Reader) Reset() {
	for i := range r.cursor {
		r.cursor[i] = 0
	}
	r.consumed = 0
}
