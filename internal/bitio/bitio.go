// Package bitio provides bit-granular writing and reading over in-memory
// buffers. It is the substrate for all entropy coders in this repository
// (PaSTRI's prefix trees, the SZ Huffman stage, and the ZFP bit-plane
// coder). Bits are packed MSB-first within each byte, which makes the
// encoded streams byte-order independent and easy to inspect in tests.
//
// The hot paths are word-at-a-time: the Writer batches bits into a
// 64-bit accumulator flushed whole, the Reader serves from a 64-bit
// refill register loaded eight bytes at once, and the unary codec runs
// on bits.LeadingZeros64 instead of per-bit loops. All fast paths are
// exercised against the bit-exact reference semantics by the fuzzers.
package bitio

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/bits"
)

// ErrUnexpectedEOF is returned by Reader methods when the stream ends in
// the middle of a requested read.
var ErrUnexpectedEOF = errors.New("bitio: unexpected end of bitstream")

// Writer accumulates bits into an internal byte buffer. The zero value is
// ready to use.
type Writer struct {
	buf  []byte
	cur  uint64 // bits not yet flushed to buf, left-aligned in the low `n` bits
	n    uint   // number of valid bits in cur (0..63)
	bits uint64 // total number of bits written
}

// NewWriter returns a Writer with capacity preallocated for sizeHint bytes.
func NewWriter(sizeHint int) *Writer {
	return &Writer{buf: make([]byte, 0, sizeHint)} //lint:hotalloc2-ok one sized buffer per writer; Reset reuses it across payloads
}

// Reset discards all written data, retaining the allocated buffer.
func (w *Writer) Reset() {
	w.buf = w.buf[:0]
	w.cur = 0
	w.n = 0
	w.bits = 0
}

// WriteBit appends a single bit (0 or 1).
func (w *Writer) WriteBit(b uint) {
	w.cur = w.cur<<1 | uint64(b&1)
	w.n++
	w.bits++
	if w.n == 64 {
		w.flushWord()
	}
}

// WriteBits appends the low `width` bits of v, most significant first.
// width must be in [0, 64].
func (w *Writer) WriteBits(v uint64, width uint) {
	if width == 0 {
		return
	}
	if width > 64 {
		panic(fmt.Sprintf("bitio: WriteBits width %d > 64", width)) //lint:nopanic-ok programmer error: widths come from BitsFor* which cap at 64
	}
	if width < 64 {
		v &= (1 << width) - 1
	}
	w.bits += uint64(width)
	free := 64 - w.n
	if width < free {
		w.cur = w.cur<<width | v //lint:shiftwidth-ok width < free <= 64 by the branch condition
		w.n += width
		return
	}
	// Fill cur completely, flush, keep remainder.
	rem := width - free
	// free = 64 only when n = 0, and then cur = 0 so cur<<64 = 0 is the
	// correct "nothing buffered" value; rem <= 63 since width <= 64 and
	// free >= 1 whenever cur is nonempty.
	w.cur = w.cur<<free | v>>rem //lint:shiftwidth-ok see invariant above
	w.n = 64
	w.flushWord()
	if rem > 0 {
		w.cur = v & ((1 << rem) - 1) //lint:shiftwidth-ok rem = width-free <= 63 (width <= 64, free >= 1 here)
		w.n = rem
	}
}

// WriteSigned appends v as a two's-complement integer of `width` bits.
// v must fit, i.e. -(1<<(width-1)) <= v < 1<<(width-1).
func (w *Writer) WriteSigned(v int64, width uint) {
	w.WriteBits(uint64(v), width)
}

// WriteUnary appends n as a unary code: n one-bits followed by a zero-bit.
// The whole code is emitted word-at-a-time: any unary value up to 63 is
// a single WriteBits call, longer runs flush full words of ones first.
func (w *Writer) WriteUnary(n uint) {
	for n >= 64 {
		w.WriteBits(^uint64(0), 64)
		n -= 64
	}
	// n <= 63 ones followed by the stop bit, as one (n+1)-bit pattern.
	// At n = 63 the 1<<64 wraps to 0 and 0-2 underflows to 63 ones + a
	// zero — exactly the intended 64-bit code.
	w.WriteBits((1<<(n+1))-2, n+1) //lint:shiftwidth-ok wrap at n=63 yields the correct all-ones-plus-stop pattern (see comment)
}

func (w *Writer) flushWord() {
	c := w.cur
	w.buf = append(w.buf,
		byte(c>>56), byte(c>>48), byte(c>>40), byte(c>>32),
		byte(c>>24), byte(c>>16), byte(c>>8), byte(c))
	w.cur = 0
	w.n = 0
}

// Len returns the number of whole bytes the stream occupies after padding.
func (w *Writer) Len() int {
	return int((w.bits + 7) / 8)
}

// BitLen returns the exact number of bits written so far.
func (w *Writer) BitLen() uint64 { return w.bits }

// Bytes returns the written stream padded with zero bits to a byte
// boundary. The returned slice is valid until the next Write/Reset.
// The tail (up to 63 buffered bits) is appended as one padded word in
// a single append, so a Writer whose buffer has spare capacity makes
// no allocation here.
func (w *Writer) Bytes() []byte {
	out := w.buf
	if n := w.n; n > 0 {
		// Left-align the n valid bits into a full word; the low bits are
		// the zero padding.
		var tail [8]byte
		binary.BigEndian.PutUint64(tail[:], w.cur<<(64-n)) //lint:shiftwidth-ok n in [1,63]: the n > 0 guard and flushWord's n == 64 reset bound it
		out = append(out, tail[:(n+7)/8]...)
	}
	// The append above may have grown a new array; only the flushed prefix
	// lives in w.buf, so re-slicing is safe for subsequent writes.
	return out
}

// Reader consumes bits from a byte slice produced by Writer.
type Reader struct {
	buf  []byte
	pos  int    // next byte index
	cur  uint64 // bit reservoir: valid bits are the low `n` bits (higher bits are stale)
	n    uint   // valid bits in cur
	read uint64 // total bits consumed
}

// NewReader returns a Reader over buf. The Reader does not copy buf.
func NewReader(buf []byte) *Reader {
	return &Reader{buf: buf}
}

// Reset re-points the reader at buf and rewinds it.
func (r *Reader) Reset(buf []byte) {
	r.buf = buf
	r.pos = 0
	r.cur = 0
	r.n = 0
	r.read = 0
}

// fill tops up the reservoir. When the reservoir is empty and eight
// bytes remain, a whole word is loaded at once; otherwise bytes are
// added until the reservoir holds more than 56 bits or input runs out.
func (r *Reader) fill() {
	if r.n == 0 && r.pos+8 <= len(r.buf) {
		r.cur = binary.BigEndian.Uint64(r.buf[r.pos:])
		r.pos += 8
		r.n = 64
		return
	}
	for r.n <= 56 && r.pos < len(r.buf) {
		r.cur = r.cur<<8 | uint64(r.buf[r.pos])
		r.pos++
		r.n += 8
	}
}

// ReadBit reads a single bit.
func (r *Reader) ReadBit() (uint, error) {
	if r.n == 0 {
		r.fill()
		if r.n == 0 {
			return 0, ErrUnexpectedEOF
		}
	}
	r.n--
	r.read++
	return uint(r.cur>>r.n) & 1, nil //lint:shiftwidth-ok r.n <= 63 after the decrement (fill caps it at 64)
}

// ReadBits reads `width` bits (MSB-first) into the low bits of the result.
// width must be in [0, 64]. Reads that fit in the buffered reservoir —
// the overwhelmingly common case after a word-sized refill — are served
// with one shift and one mask.
func (r *Reader) ReadBits(width uint) (uint64, error) {
	if width == 0 {
		return 0, nil
	}
	if width > 64 {
		panic(fmt.Sprintf("bitio: ReadBits width %d > 64", width)) //lint:nopanic-ok programmer error: decoders validate header widths before reading
	}
	if width < 64 && width <= r.n {
		// Fast path: serve from the reservoir.
		r.n -= width
		r.read += uint64(width)
		return (r.cur >> r.n) & ((1 << width) - 1), nil //lint:shiftwidth-ok width < 64 by the branch; r.n <= 63 after subtracting width >= 1
	}
	var v uint64
	remaining := width
	for remaining > 0 {
		if r.n == 0 {
			r.fill()
			if r.n == 0 {
				return 0, ErrUnexpectedEOF
			}
		}
		take := remaining
		if take > r.n {
			take = r.n
		}
		r.n -= take
		// take can be 64 only when the reservoir was full and all 64 bits
		// are requested at once; the wrapped-to-zero mask from 1<<64-1 is
		// repaired by the take == 64 patch below, and v<<64 on the first
		// iteration shifts the still-zero accumulator.
		v = v<<take | (r.cur>>r.n)&((1<<take)-1) //lint:shiftwidth-ok see invariant above
		if take == 64 {
			v = r.cur // take==64 implies r.n was 64 and remaining 64
		}
		remaining -= take
		r.read += uint64(take)
	}
	return v, nil
}

// ReadSigned reads a two's-complement integer of `width` bits.
func (r *Reader) ReadSigned(width uint) (int64, error) {
	u, err := r.ReadBits(width)
	if err != nil {
		return 0, err
	}
	if width >= 64 {
		// width > 64 is unreachable (ReadBits panicked); folding it into
		// the 64-bit case makes the sign-extension shifts below provably
		// in range for the shiftwidth analyzer.
		return int64(u), nil
	}
	// Sign-extend.
	if u&(1<<(width-1)) != 0 {
		u |= ^uint64(0) << width
	}
	return int64(u), nil
}

// ReadUnary reads a unary code (count of leading one-bits before a zero).
// The run of ones is counted word-at-a-time with bits.LeadingZeros64 on
// the left-aligned reservoir, so a typical short code costs one shift,
// one complement and one LZCNT instead of a per-bit loop.
func (r *Reader) ReadUnary() (uint, error) {
	var total uint
	for {
		if r.n == 0 {
			r.fill()
			if r.n == 0 {
				return 0, ErrUnexpectedEOF
			}
		}
		// Left-align the n valid bits at the top of a word (bits below
		// them become zero, bits above position n in cur are stale and
		// shifted out), then count the leading ones.
		word := r.cur << (64 - r.n) //lint:shiftwidth-ok r.n in [1,64] here: fill guarantees n >= 1 and caps at 64
		ones := uint(bits.LeadingZeros64(^word))
		if ones < r.n {
			// The stop bit is inside the reservoir: consume run + stop.
			r.n -= ones + 1
			r.read += uint64(ones) + 1
			return total + ones, nil
		}
		// Every valid bit is a one: consume them all and refill.
		total += r.n
		r.read += uint64(r.n)
		r.n = 0
	}
}

// ReadZeroRun consumes and counts consecutive zero bits, at most max.
// It stops before the first one-bit, which stays in the stream, and at
// end of input it returns the zeros consumed so far without error — the
// next ReadBit/ReadBits reports EOF exactly as per-bit reading would.
// Tree decoders use this to consume a run of zero-valued symbols (one
// zero bit each) with a single bits.LeadingZeros64 per reservoir word.
func (r *Reader) ReadZeroRun(max uint) uint {
	var total uint
	for total < max {
		if r.n == 0 {
			r.fill()
			if r.n == 0 {
				return total
			}
		}
		// Left-align the valid bits; bits below them are zero, so clamp
		// the count to the reservoir before trusting it.
		word := r.cur << (64 - r.n) //lint:shiftwidth-ok r.n in [1,64] here: fill guarantees n >= 1 and caps at 64
		zeros := uint(bits.LeadingZeros64(word))
		if zeros > r.n {
			zeros = r.n
		}
		if zeros > max-total {
			zeros = max - total
		}
		r.n -= zeros
		r.read += uint64(zeros)
		total += zeros
		if r.n > 0 {
			// Stopped on a one-bit (left unconsumed) or on quota.
			return total
		}
	}
	return total
}

// BitsRead reports the total number of bits consumed so far.
func (r *Reader) BitsRead() uint64 { return r.read }

// AlignByte discards bits up to the next byte boundary.
func (r *Reader) AlignByte() {
	drop := r.read % 8
	if drop != 0 {
		skip := 8 - drop
		r.n -= uint(skip)
		r.read += skip
	}
}
