package bitio

// Batch emission API. The per-call Write* methods each pay one
// accumulator round-trip (shift, fill test, possible word flush) per
// code. The *N variants below pack as many codewords as fit into a
// local 64-bit register first and spill it with a single WriteBits per
// ~64 emitted bits, which matters for the fixed-width PQ/SQ sections
// and the sparse codeword streams of the fused compression path. Each
// variant produces a bitstream identical to calling its per-code
// counterpart once per element: the stream is a pure concatenation of
// codes, so regrouping the WriteBits calls cannot change any bit.

// WriteBitsN appends the low `width` bits of every value, MSB-first,
// exactly as if WriteBits(v, width) were called once per element.
// width must be in [0, 64].
//
//pastri:hotpath
func (w *Writer) WriteBitsN(vals []uint64, width uint) {
	if width == 0 {
		return
	}
	if width > 32 {
		// At most one code fits the register; packing cannot win.
		for _, v := range vals {
			w.WriteBits(v, width)
		}
		return
	}
	mask := uint64(1)<<width - 1
	var acc uint64
	var used uint
	for _, v := range vals {
		acc = acc<<width | v&mask
		used += width
		if used > 64-width {
			w.WriteBits(acc, used)
			acc, used = 0, 0
		}
	}
	if used > 0 {
		w.WriteBits(acc, used)
	}
}

// WriteSignedN appends every value as a two's-complement integer of
// `width` bits, exactly as if WriteSigned(v, width) were called once
// per element. Each v must fit width bits.
//
//pastri:hotpath
func (w *Writer) WriteSignedN(vals []int64, width uint) {
	if width == 0 {
		return
	}
	if width > 32 {
		for _, v := range vals {
			w.WriteSigned(v, width)
		}
		return
	}
	mask := uint64(1)<<width - 1
	var acc uint64
	var used uint
	for _, v := range vals {
		acc = acc<<width | uint64(v)&mask
		used += width
		if used > 64-width {
			w.WriteBits(acc, used)
			acc, used = 0, 0
		}
	}
	if used > 0 {
		w.WriteBits(acc, used)
	}
}

// WriteUnaryN appends one unary code (n ones then a stop bit) per
// element, exactly as if WriteUnary were called once per element.
// Short codes — the overwhelming case for ECQ bin prefixes — are
// packed into the local register; codes of 63+ ones spill through
// WriteUnary's own word-sized path.
//
//pastri:hotpath
func (w *Writer) WriteUnaryN(ns []uint) {
	var acc uint64
	var used uint
	for _, n := range ns {
		if n >= 63 {
			if used > 0 {
				w.WriteBits(acc, used)
				acc, used = 0, 0
			}
			w.WriteUnary(n)
			continue
		}
		if used+n+1 > 64 {
			w.WriteBits(acc, used)
			acc, used = 0, 0
		}
		// n ones and the stop bit as one (n+1)-bit pattern.
		acc = acc<<(n+1) | (uint64(1)<<(n+1) - 2) //lint:shiftwidth-ok n <= 62 by the branch above, so n+1 <= 63
		used += n + 1
	}
	if used > 0 {
		w.WriteBits(acc, used)
	}
}
