package bitio

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWriteReadSingleBits(t *testing.T) {
	w := NewWriter(16)
	bits := []uint{1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 1}
	for _, b := range bits {
		w.WriteBit(b)
	}
	if got, want := w.BitLen(), uint64(len(bits)); got != want {
		t.Fatalf("BitLen = %d, want %d", got, want)
	}
	r := NewReader(w.Bytes())
	for i, want := range bits {
		got, err := r.ReadBit()
		if err != nil {
			t.Fatalf("ReadBit %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("bit %d = %d, want %d", i, got, want)
		}
	}
}

func TestWriteBitsRoundTrip(t *testing.T) {
	cases := []struct {
		v     uint64
		width uint
	}{
		{0, 1}, {1, 1}, {5, 3}, {0xff, 8}, {0x1234, 16},
		{0xdeadbeef, 32}, {1<<63 - 1, 63}, {^uint64(0), 64}, {0, 64},
		{42, 7}, {1023, 10}, {1 << 40, 41},
	}
	w := NewWriter(64)
	for _, c := range cases {
		w.WriteBits(c.v, c.width)
	}
	r := NewReader(w.Bytes())
	for i, c := range cases {
		got, err := r.ReadBits(c.width)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if got != c.v {
			t.Fatalf("case %d: got %#x want %#x (width %d)", i, got, c.v, c.width)
		}
	}
}

func TestSignedRoundTrip(t *testing.T) {
	cases := []struct {
		v     int64
		width uint
	}{
		{0, 1}, {-1, 1}, {-1, 2}, {1, 2}, {-4, 3}, {3, 3},
		{-128, 8}, {127, 8}, {-1 << 20, 21}, {1<<20 - 1, 21},
		{-1 << 62, 63}, {1<<62 - 1, 63}, {-1, 64}, {1 << 55, 57},
	}
	w := NewWriter(64)
	for _, c := range cases {
		w.WriteSigned(c.v, c.width)
	}
	r := NewReader(w.Bytes())
	for i, c := range cases {
		got, err := r.ReadSigned(c.width)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if got != c.v {
			t.Fatalf("case %d: got %d want %d (width %d)", i, got, c.v, c.width)
		}
	}
}

func TestUnary(t *testing.T) {
	w := NewWriter(16)
	vals := []uint{0, 1, 2, 7, 13, 0, 31}
	for _, v := range vals {
		w.WriteUnary(v)
	}
	r := NewReader(w.Bytes())
	for i, want := range vals {
		got, err := r.ReadUnary()
		if err != nil {
			t.Fatalf("unary %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("unary %d = %d, want %d", i, got, want)
		}
	}
}

// TestUnaryBoundaries pins the word-level unary codec at the lengths
// where the fast path changes shape: the single-call limit (63), the
// full-word run (64), and multi-word runs.
func TestUnaryBoundaries(t *testing.T) {
	vals := []uint{0, 1, 62, 63, 64, 65, 127, 128, 129, 200}
	for _, pad := range []uint{0, 1, 7, 13} { // misalign the code start
		w := NewWriter(64)
		w.WriteBits(0, pad)
		for _, v := range vals {
			w.WriteUnary(v)
		}
		r := NewReader(w.Bytes())
		if _, err := r.ReadBits(pad); err != nil {
			t.Fatalf("pad %d: %v", pad, err)
		}
		for i, want := range vals {
			got, err := r.ReadUnary()
			if err != nil {
				t.Fatalf("pad %d unary %d: %v", pad, i, err)
			}
			if got != want {
				t.Fatalf("pad %d unary %d = %d, want %d", pad, i, got, want)
			}
		}
	}
}

// TestBytesTailPadding checks the single-append tail flush against the
// bit-exact expected bytes for every possible buffered-tail length,
// including the widest 63-bit tail.
func TestBytesTailPadding(t *testing.T) {
	for n := uint(0); n <= 63; n++ {
		w := NewWriter(16)
		w.WriteBits(^uint64(0), n) // n ones, padded with zeros to a byte
		got := w.Bytes()
		if want := int((n + 7) / 8); len(got) != want {
			t.Fatalf("n=%d: len(Bytes) = %d, want %d", n, len(got), want)
		}
		var bit uint
		r := NewReader(got)
		for i := uint(0); i < uint(len(got))*8; i++ {
			b, err := r.ReadBit()
			if err != nil {
				t.Fatalf("n=%d bit %d: %v", n, i, err)
			}
			if i < n {
				bit = 1
			} else {
				bit = 0
			}
			if b != bit {
				t.Fatalf("n=%d bit %d = %d, want %d", n, i, b, bit)
			}
		}
	}
}

// TestBytesNoAlloc: with spare buffer capacity, Bytes must not allocate
// even with a buffered tail.
func TestBytesNoAlloc(t *testing.T) {
	w := NewWriter(64)
	allocs := testing.AllocsPerRun(100, func() {
		w.Reset()
		w.WriteBits(0xabc, 12) // leaves a 12-bit tail
		_ = w.Bytes()
	})
	if allocs != 0 {
		t.Fatalf("Bytes with buffered tail allocated %v times", allocs)
	}
}

// TestReadZeroRun covers runs that stop on a one-bit, on the quota, and
// at end of input, across reservoir refills.
func TestReadZeroRun(t *testing.T) {
	w := NewWriter(64)
	runs := []uint{0, 1, 5, 63, 64, 70, 130, 2}
	for _, k := range runs {
		for i := uint(0); i < k; i++ {
			w.WriteBit(0)
		}
		w.WriteBit(1) // terminator, must stay unconsumed by ReadZeroRun
	}
	r := NewReader(w.Bytes())
	for i, k := range runs {
		got := r.ReadZeroRun(1 << 20)
		if got != k {
			t.Fatalf("run %d: ReadZeroRun = %d, want %d", i, got, k)
		}
		b, err := r.ReadBit()
		if err != nil || b != 1 {
			t.Fatalf("run %d: terminator = %d, %v", i, b, err)
		}
	}

	// Quota stops mid-run without touching the remainder.
	w.Reset()
	w.WriteBits(0, 40)
	w.WriteBits(1, 1)
	r.Reset(w.Bytes())
	if got := r.ReadZeroRun(17); got != 17 {
		t.Fatalf("quota run = %d, want 17", got)
	}
	if got := r.ReadZeroRun(1 << 20); got != 23 {
		t.Fatalf("rest of run = %d, want 23", got)
	}
	if b, err := r.ReadBit(); err != nil || b != 1 {
		t.Fatalf("terminator after quota = %d, %v", b, err)
	}

	// End of input: zeros up to the padded end, then no error from the
	// run reader itself — the next ReadBit reports EOF.
	w.Reset()
	w.WriteBits(0, 11)
	r.Reset(w.Bytes())
	if got := r.ReadZeroRun(1 << 20); got != 16 { // 11 written + 5 pad bits
		t.Fatalf("EOF run = %d, want 16", got)
	}
	if _, err := r.ReadBit(); err != ErrUnexpectedEOF {
		t.Fatalf("after exhausted run: err = %v, want ErrUnexpectedEOF", err)
	}
}

// TestReadBitsMatchesPerBit cross-checks the batched ReadBits fast path
// against bit-at-a-time reference reads over a shared stream.
func TestReadBitsMatchesPerBit(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	w := NewWriter(0)
	for i := 0; i < 4096; i++ {
		w.WriteBits(rng.Uint64(), uint(rng.Intn(64))+1)
	}
	buf := w.Bytes()
	batched := NewReader(buf)
	perBit := NewReader(buf)
	widths := []uint{1, 3, 8, 13, 17, 31, 33, 63, 64}
	for i := 0; ; i++ {
		width := widths[i%len(widths)]
		got, errB := batched.ReadBits(width)
		var want uint64
		var errR error
		for j := uint(0); j < width; j++ {
			var b uint
			if b, errR = perBit.ReadBit(); errR != nil {
				break
			}
			want = want<<1 | uint64(b)
		}
		if (errB != nil) != (errR != nil) {
			t.Fatalf("read %d width %d: batched err %v, per-bit err %v", i, width, errB, errR)
		}
		if errB != nil {
			break
		}
		if got != want {
			t.Fatalf("read %d width %d: batched %#x, per-bit %#x", i, width, got, want)
		}
	}
}

func TestUnexpectedEOF(t *testing.T) {
	w := NewWriter(1)
	w.WriteBits(0b101, 3)
	r := NewReader(w.Bytes())
	if _, err := r.ReadBits(8); err != nil {
		t.Fatalf("padded byte should be readable: %v", err)
	}
	if _, err := r.ReadBit(); err != ErrUnexpectedEOF {
		t.Fatalf("expected ErrUnexpectedEOF, got %v", err)
	}
	if _, err := r.ReadBits(16); err != ErrUnexpectedEOF {
		t.Fatalf("expected ErrUnexpectedEOF, got %v", err)
	}
}

func TestWriterReset(t *testing.T) {
	w := NewWriter(8)
	w.WriteBits(0xabcd, 16)
	w.Reset()
	if w.BitLen() != 0 || w.Len() != 0 {
		t.Fatalf("after Reset: BitLen=%d Len=%d", w.BitLen(), w.Len())
	}
	w.WriteBits(0x7, 3)
	r := NewReader(w.Bytes())
	got, err := r.ReadBits(3)
	if err != nil || got != 7 {
		t.Fatalf("got %d, %v", got, err)
	}
}

func TestLenMatchesBytes(t *testing.T) {
	w := NewWriter(0)
	for i := 0; i < 100; i++ {
		w.WriteBits(uint64(i), uint(i%23)+1)
		if w.Len() != len(w.Bytes()) {
			t.Fatalf("iteration %d: Len=%d len(Bytes)=%d", i, w.Len(), len(w.Bytes()))
		}
	}
}

// Property: any sequence of (value,width) writes reads back identically.
func TestQuickMixedRoundTrip(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		count := int(n)%200 + 1
		type item struct {
			v      uint64
			width  uint
			signed bool
		}
		items := make([]item, count)
		w := NewWriter(0)
		for i := range items {
			width := uint(rng.Intn(64)) + 1
			signed := rng.Intn(2) == 0
			var v uint64
			if signed {
				sv := rng.Int63() % (1 << (width - 1))
				if rng.Intn(2) == 0 && width > 1 {
					sv = -sv - 1
				}
				if width == 1 {
					sv = -(rng.Int63() % 2)
				}
				v = uint64(sv)
				w.WriteSigned(int64(v), width)
			} else {
				v = rng.Uint64()
				if width < 64 {
					v &= (1 << width) - 1
				}
				w.WriteBits(v, width)
			}
			items[i] = item{v, width, signed}
		}
		r := NewReader(w.Bytes())
		for _, it := range items {
			if it.signed {
				got, err := r.ReadSigned(it.width)
				if err != nil || got != int64(it.v) {
					return false
				}
			} else {
				got, err := r.ReadBits(it.width)
				if err != nil || got != it.v {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBitsReadAccounting(t *testing.T) {
	w := NewWriter(0)
	w.WriteBits(0x3, 2)
	w.WriteBits(0xff, 9)
	r := NewReader(w.Bytes())
	if _, err := r.ReadBits(2); err != nil {
		t.Fatal(err)
	}
	if r.BitsRead() != 2 {
		t.Fatalf("BitsRead = %d, want 2", r.BitsRead())
	}
	if _, err := r.ReadBits(9); err != nil {
		t.Fatal(err)
	}
	if r.BitsRead() != 11 {
		t.Fatalf("BitsRead = %d, want 11", r.BitsRead())
	}
}
