package bitio

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWriteReadSingleBits(t *testing.T) {
	w := NewWriter(16)
	bits := []uint{1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 1}
	for _, b := range bits {
		w.WriteBit(b)
	}
	if got, want := w.BitLen(), uint64(len(bits)); got != want {
		t.Fatalf("BitLen = %d, want %d", got, want)
	}
	r := NewReader(w.Bytes())
	for i, want := range bits {
		got, err := r.ReadBit()
		if err != nil {
			t.Fatalf("ReadBit %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("bit %d = %d, want %d", i, got, want)
		}
	}
}

func TestWriteBitsRoundTrip(t *testing.T) {
	cases := []struct {
		v     uint64
		width uint
	}{
		{0, 1}, {1, 1}, {5, 3}, {0xff, 8}, {0x1234, 16},
		{0xdeadbeef, 32}, {1<<63 - 1, 63}, {^uint64(0), 64}, {0, 64},
		{42, 7}, {1023, 10}, {1 << 40, 41},
	}
	w := NewWriter(64)
	for _, c := range cases {
		w.WriteBits(c.v, c.width)
	}
	r := NewReader(w.Bytes())
	for i, c := range cases {
		got, err := r.ReadBits(c.width)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if got != c.v {
			t.Fatalf("case %d: got %#x want %#x (width %d)", i, got, c.v, c.width)
		}
	}
}

func TestSignedRoundTrip(t *testing.T) {
	cases := []struct {
		v     int64
		width uint
	}{
		{0, 1}, {-1, 1}, {-1, 2}, {1, 2}, {-4, 3}, {3, 3},
		{-128, 8}, {127, 8}, {-1 << 20, 21}, {1<<20 - 1, 21},
		{-1 << 62, 63}, {1<<62 - 1, 63}, {-1, 64}, {1 << 55, 57},
	}
	w := NewWriter(64)
	for _, c := range cases {
		w.WriteSigned(c.v, c.width)
	}
	r := NewReader(w.Bytes())
	for i, c := range cases {
		got, err := r.ReadSigned(c.width)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if got != c.v {
			t.Fatalf("case %d: got %d want %d (width %d)", i, got, c.v, c.width)
		}
	}
}

func TestUnary(t *testing.T) {
	w := NewWriter(16)
	vals := []uint{0, 1, 2, 7, 13, 0, 31}
	for _, v := range vals {
		w.WriteUnary(v)
	}
	r := NewReader(w.Bytes())
	for i, want := range vals {
		got, err := r.ReadUnary()
		if err != nil {
			t.Fatalf("unary %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("unary %d = %d, want %d", i, got, want)
		}
	}
}

func TestUnexpectedEOF(t *testing.T) {
	w := NewWriter(1)
	w.WriteBits(0b101, 3)
	r := NewReader(w.Bytes())
	if _, err := r.ReadBits(8); err != nil {
		t.Fatalf("padded byte should be readable: %v", err)
	}
	if _, err := r.ReadBit(); err != ErrUnexpectedEOF {
		t.Fatalf("expected ErrUnexpectedEOF, got %v", err)
	}
	if _, err := r.ReadBits(16); err != ErrUnexpectedEOF {
		t.Fatalf("expected ErrUnexpectedEOF, got %v", err)
	}
}

func TestWriterReset(t *testing.T) {
	w := NewWriter(8)
	w.WriteBits(0xabcd, 16)
	w.Reset()
	if w.BitLen() != 0 || w.Len() != 0 {
		t.Fatalf("after Reset: BitLen=%d Len=%d", w.BitLen(), w.Len())
	}
	w.WriteBits(0x7, 3)
	r := NewReader(w.Bytes())
	got, err := r.ReadBits(3)
	if err != nil || got != 7 {
		t.Fatalf("got %d, %v", got, err)
	}
}

func TestLenMatchesBytes(t *testing.T) {
	w := NewWriter(0)
	for i := 0; i < 100; i++ {
		w.WriteBits(uint64(i), uint(i%23)+1)
		if w.Len() != len(w.Bytes()) {
			t.Fatalf("iteration %d: Len=%d len(Bytes)=%d", i, w.Len(), len(w.Bytes()))
		}
	}
}

// Property: any sequence of (value,width) writes reads back identically.
func TestQuickMixedRoundTrip(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		count := int(n)%200 + 1
		type item struct {
			v      uint64
			width  uint
			signed bool
		}
		items := make([]item, count)
		w := NewWriter(0)
		for i := range items {
			width := uint(rng.Intn(64)) + 1
			signed := rng.Intn(2) == 0
			var v uint64
			if signed {
				sv := rng.Int63() % (1 << (width - 1))
				if rng.Intn(2) == 0 && width > 1 {
					sv = -sv - 1
				}
				if width == 1 {
					sv = -(rng.Int63() % 2)
				}
				v = uint64(sv)
				w.WriteSigned(int64(v), width)
			} else {
				v = rng.Uint64()
				if width < 64 {
					v &= (1 << width) - 1
				}
				w.WriteBits(v, width)
			}
			items[i] = item{v, width, signed}
		}
		r := NewReader(w.Bytes())
		for _, it := range items {
			if it.signed {
				got, err := r.ReadSigned(it.width)
				if err != nil || got != int64(it.v) {
					return false
				}
			} else {
				got, err := r.ReadBits(it.width)
				if err != nil || got != it.v {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBitsReadAccounting(t *testing.T) {
	w := NewWriter(0)
	w.WriteBits(0x3, 2)
	w.WriteBits(0xff, 9)
	r := NewReader(w.Bytes())
	if _, err := r.ReadBits(2); err != nil {
		t.Fatal(err)
	}
	if r.BitsRead() != 2 {
		t.Fatalf("BitsRead = %d, want 2", r.BitsRead())
	}
	if _, err := r.ReadBits(9); err != nil {
		t.Fatal(err)
	}
	if r.BitsRead() != 11 {
		t.Fatalf("BitsRead = %d, want 11", r.BitsRead())
	}
}
