package bitio

import (
	"fmt"
	"testing"
)

func BenchmarkWriteBits(b *testing.B) {
	w := NewWriter(1 << 16)
	b.SetBytes(8)
	for i := 0; i < b.N; i++ {
		if i%4096 == 0 {
			w.Reset()
		}
		w.WriteBits(uint64(i), 37)
		w.WriteBits(uint64(i), 27)
	}
}

func BenchmarkReadBits(b *testing.B) {
	w := NewWriter(1 << 16)
	for i := 0; i < 4096; i++ {
		w.WriteBits(uint64(i), 37)
		w.WriteBits(uint64(i), 27)
	}
	buf := w.Bytes()
	r := NewReader(buf)
	b.SetBytes(8)
	for i := 0; i < b.N; i++ {
		if i%4096 == 0 {
			r.Reset(buf)
		}
		if _, err := r.ReadBits(37); err != nil {
			b.Fatal(err)
		}
		if _, err := r.ReadBits(27); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReadBitsNarrow measures the batched refill path on the
// widths the tree coders actually use: many short reads per word.
func BenchmarkReadBitsNarrow(b *testing.B) {
	for _, width := range []uint{1, 7, 17} {
		b.Run(fmt.Sprintf("w%d", width), func(b *testing.B) {
			w := NewWriter(1 << 16)
			n := 8192
			for i := 0; i < n; i++ {
				w.WriteBits(uint64(i), width)
			}
			buf := w.Bytes()
			r := NewReader(buf)
			b.SetBytes(int64(width) / 8)
			for i := 0; i < b.N; i++ {
				if i%n == 0 {
					r.Reset(buf)
				}
				if _, err := r.ReadBits(width); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// unaryLens is a Tree-4-shaped run-length mix: overwhelmingly short
// codes with occasional long ones, mirroring ECQ bin statistics.
func unaryLens() []uint {
	lens := make([]uint, 4096)
	for i := range lens {
		switch {
		case i%31 == 0:
			lens[i] = uint(i % 61)
		case i%7 == 0:
			lens[i] = 3
		default:
			lens[i] = uint(i % 2)
		}
	}
	return lens
}

func BenchmarkWriteUnary(b *testing.B) {
	lens := unaryLens()
	w := NewWriter(1 << 16)
	b.SetBytes(1)
	for i := 0; i < b.N; i++ {
		if i%len(lens) == 0 {
			w.Reset()
		}
		w.WriteUnary(lens[i%len(lens)])
	}
}

func BenchmarkReadUnary(b *testing.B) {
	lens := unaryLens()
	w := NewWriter(1 << 16)
	for _, n := range lens {
		w.WriteUnary(n)
	}
	buf := w.Bytes()
	r := NewReader(buf)
	b.SetBytes(1)
	for i := 0; i < b.N; i++ {
		if i%len(lens) == 0 {
			r.Reset(buf)
		}
		n, err := r.ReadUnary()
		if err != nil {
			b.Fatal(err)
		}
		if n != lens[i%len(lens)] {
			b.Fatalf("ReadUnary = %d, want %d", n, lens[i%len(lens)])
		}
	}
}
