package bitio

import "testing"

func BenchmarkWriteBits(b *testing.B) {
	w := NewWriter(1 << 16)
	b.SetBytes(8)
	for i := 0; i < b.N; i++ {
		if i%4096 == 0 {
			w.Reset()
		}
		w.WriteBits(uint64(i), 37)
		w.WriteBits(uint64(i), 27)
	}
}

func BenchmarkReadBits(b *testing.B) {
	w := NewWriter(1 << 16)
	for i := 0; i < 4096; i++ {
		w.WriteBits(uint64(i), 37)
		w.WriteBits(uint64(i), 27)
	}
	buf := w.Bytes()
	r := NewReader(buf)
	b.SetBytes(8)
	for i := 0; i < b.N; i++ {
		if i%4096 == 0 {
			r.Reset(buf)
		}
		if _, err := r.ReadBits(37); err != nil {
			b.Fatal(err)
		}
		if _, err := r.ReadBits(27); err != nil {
			b.Fatal(err)
		}
	}
}
