package bitio

import (
	"bytes"
	"math/rand"
	"testing"
)

// The batch writers' only contract is byte-identity with their
// per-code counterparts at every register alignment. The tests below
// drive random value mixes through both paths with a random-length
// misaligning prefix, so every (width, alignment) spill case is hit.

func TestWriteBitsNMatchesWriteBits(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for width := uint(0); width <= 64; width++ {
		for trial := 0; trial < 20; trial++ {
			n := rng.Intn(200)
			vals := make([]uint64, n)
			for i := range vals {
				vals[i] = rng.Uint64()
			}
			prefix := uint(rng.Intn(64))

			ref, got := &Writer{}, &Writer{}
			pfx := rng.Uint64()
			ref.WriteBits(pfx, prefix)
			got.WriteBits(pfx, prefix)
			for _, v := range vals {
				ref.WriteBits(v, width)
			}
			got.WriteBitsN(vals, width)
			if ref.BitLen() != got.BitLen() || !bytes.Equal(ref.Bytes(), got.Bytes()) {
				t.Fatalf("width %d, %d vals, prefix %d: batch stream differs from per-call", width, n, prefix)
			}
		}
	}
}

func TestWriteSignedNMatchesWriteSigned(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for width := uint(1); width <= 64; width++ {
		for trial := 0; trial < 20; trial++ {
			n := rng.Intn(200)
			vals := make([]int64, n)
			for i := range vals {
				// Random value fitting the width: mask then sign-extend.
				u := rng.Uint64()
				if width < 64 {
					u &= 1<<width - 1
					if u&(1<<(width-1)) != 0 {
						u |= ^uint64(0) << width
					}
				}
				vals[i] = int64(u)
			}
			prefix := uint(rng.Intn(64))

			ref, got := &Writer{}, &Writer{}
			pfx := rng.Uint64()
			ref.WriteBits(pfx, prefix)
			got.WriteBits(pfx, prefix)
			for _, v := range vals {
				ref.WriteSigned(v, width)
			}
			got.WriteSignedN(vals, width)
			if ref.BitLen() != got.BitLen() || !bytes.Equal(ref.Bytes(), got.Bytes()) {
				t.Fatalf("width %d, %d vals, prefix %d: batch stream differs from per-call", width, n, prefix)
			}
		}
	}
}

func TestWriteSignedNRoundTrips(t *testing.T) {
	vals := []int64{0, 1, -1, 3, -4, 2, -3}
	w := &Writer{}
	w.WriteSignedN(vals, 3)
	r := NewReader(w.Bytes())
	for i, want := range vals {
		got, err := r.ReadSigned(3)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("value %d: got %d, want %d", i, got, want)
		}
	}
}

func TestWriteUnaryNMatchesWriteUnary(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(200)
		ns := make([]uint, n)
		for i := range ns {
			switch rng.Intn(10) {
			case 0:
				ns[i] = uint(rng.Intn(300)) // long runs incl. the >= 63 fallback
			case 1:
				ns[i] = 62 + uint(rng.Intn(4)) // straddle the fallback threshold
			default:
				ns[i] = uint(rng.Intn(8)) // typical ECQ bin prefixes
			}
		}
		prefix := uint(rng.Intn(64))

		ref, got := &Writer{}, &Writer{}
		pfx := rng.Uint64()
		ref.WriteBits(pfx, prefix)
		got.WriteBits(pfx, prefix)
		for _, v := range ns {
			ref.WriteUnary(v)
		}
		got.WriteUnaryN(ns)
		if ref.BitLen() != got.BitLen() || !bytes.Equal(ref.Bytes(), got.Bytes()) {
			t.Fatalf("trial %d (%d codes, prefix %d): batch stream differs from per-call", trial, n, prefix)
		}
	}
}

func TestWriteUnaryNRoundTrips(t *testing.T) {
	ns := []uint{0, 1, 5, 0, 63, 2, 130, 0, 7}
	w := &Writer{}
	w.WriteUnaryN(ns)
	r := NewReader(w.Bytes())
	for i, want := range ns {
		got, err := r.ReadUnary()
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("code %d: got %d, want %d", i, got, want)
		}
	}
}

func BenchmarkWriteBitsN(b *testing.B) {
	vals := make([]uint64, 4096)
	for i := range vals {
		vals[i] = uint64(i) * 0x9E3779B97F4A7C15
	}
	w := NewWriter(1 << 16)
	b.SetBytes(int64(len(vals)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Reset()
		w.WriteBitsN(vals, 11)
	}
}

func BenchmarkWriteSignedN(b *testing.B) {
	vals := make([]int64, 4096)
	for i := range vals {
		vals[i] = int64(i%512) - 256
	}
	w := NewWriter(1 << 16)
	b.SetBytes(int64(len(vals)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Reset()
		w.WriteSignedN(vals, 10)
	}
}

func BenchmarkWriteUnaryN(b *testing.B) {
	lens := unaryLens()
	w := NewWriter(1 << 16)
	b.SetBytes(int64(len(lens)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Reset()
		w.WriteUnaryN(lens)
	}
}
