package bitio

import (
	"math"
	"testing"
)

// FuzzBitio round-trips arbitrary (width, value) sequences through
// WriteBits/ReadBits and WriteSigned/ReadSigned for widths 1..64: every
// value written must come back exactly (masked to its width), and the
// reader must consume precisely the bits the writer produced. The fuzz
// input is consumed as records of 9 bytes: 1 width byte + 8 value bytes.
func FuzzBitio(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 0xff, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{64, 0xde, 0xad, 0xbe, 0xef, 0xca, 0xfe, 0xba, 0xbe})
	// A mix crossing word boundaries: 7-, 13-, 64-, 1-bit records.
	f.Add([]byte{
		7, 0x55, 0, 0, 0, 0, 0, 0, 0,
		13, 0xff, 0xff, 0, 0, 0, 0, 0, 0,
		64, 1, 2, 3, 4, 5, 6, 7, 8,
		1, 1, 0, 0, 0, 0, 0, 0, 0,
	})
	// 63 buffered bits at Bytes() time: the widest possible unflushed
	// tail, exercising the single-append padded-word flush.
	f.Add([]byte{62, 0xff, 0xee, 0xdd, 0xcc, 0xbb, 0xaa, 0x99, 0x88})
	// 63 buffered bits followed by more writes, so the accumulator
	// straddles the word boundary mid-stream too.
	f.Add([]byte{
		62, 0x0f, 0x0e, 0x0d, 0x0c, 0x0b, 0x0a, 0x09, 0x08,
		0x81, 1, 0, 0, 0, 0, 0, 0, 0,
		62, 0xf0, 0xe0, 0xd0, 0xc0, 0xb0, 0xa0, 0x90, 0x80,
	})
	f.Fuzz(func(t *testing.T, b []byte) {
		type rec struct {
			width  uint
			value  uint64
			signed bool
		}
		var recs []rec
		for len(b) >= 9 {
			// Width byte: low 6 bits select 1..64, the top bit selects the
			// signed path so both codecs share the corpus.
			w := uint(b[0]&0x3f) + 1
			var v uint64
			for i := 1; i < 9; i++ {
				v = v<<8 | uint64(b[i])
			}
			recs = append(recs, rec{width: w, value: v, signed: b[0]&0x80 != 0})
			b = b[9:]
		}

		w := NewWriter(len(recs))
		var wantBits uint64
		for _, r := range recs {
			if r.signed {
				w.WriteSigned(truncSigned(r.value, r.width), r.width)
			} else {
				w.WriteBits(r.value, r.width)
			}
			wantBits += uint64(r.width)
		}
		if got := w.BitLen(); got != wantBits {
			t.Fatalf("writer holds %d bits, wrote %d", got, wantBits)
		}

		rd := NewReader(w.Bytes())
		for i, r := range recs {
			if r.signed {
				want := truncSigned(r.value, r.width)
				got, err := rd.ReadSigned(r.width)
				if err != nil {
					t.Fatalf("record %d: ReadSigned(%d): %v", i, r.width, err)
				}
				if got != want {
					t.Fatalf("record %d: ReadSigned(%d) = %d, want %d", i, r.width, got, want)
				}
			} else {
				want := maskBits(r.value, r.width)
				got, err := rd.ReadBits(r.width)
				if err != nil {
					t.Fatalf("record %d: ReadBits(%d): %v", i, r.width, err)
				}
				if got != want {
					t.Fatalf("record %d: ReadBits(%d) = %#x, want %#x", i, r.width, got, want)
				}
			}
		}
		if got := rd.BitsRead(); got != wantBits {
			t.Fatalf("reader consumed %d bits, stream holds %d", got, wantBits)
		}
	})
}

// maskBits keeps the low width bits of v.
func maskBits(v uint64, width uint) uint64 {
	if width >= 64 {
		return v
	}
	return v & ((1 << width) - 1)
}

// truncSigned interprets the low width bits of v as a two's-complement
// signed value, the round-trip domain of WriteSigned/ReadSigned.
func truncSigned(v uint64, width uint) int64 {
	if width >= 64 {
		return int64(v)
	}
	m := maskBits(v, width)
	if m&(1<<(width-1)) != 0 {
		m |= ^uint64(0) << width
	}
	return int64(m)
}

// FuzzBitioReader feeds arbitrary bytes to the reader side alone: reads
// beyond the buffer must return io.ErrUnexpectedEOF-style errors, never
// panic, and BitsRead must never exceed the available bits.
func FuzzBitioReader(f *testing.F) {
	f.Add([]byte{}, uint(1))
	f.Add([]byte{0xff, 0x00, 0xaa}, uint(13))
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9}, uint(64))
	f.Fuzz(func(t *testing.T, b []byte, width uint) {
		width = width%64 + 1
		r := NewReader(b)
		avail := uint64(len(b)) * 8
		for {
			_, err := r.ReadBits(width)
			if err != nil {
				break
			}
			if r.BitsRead() > avail {
				t.Fatalf("BitsRead %d exceeds %d available bits", r.BitsRead(), avail)
			}
			if r.BitsRead() > math.MaxUint32 {
				break // arbitrary cap; corpus buffers are tiny
			}
		}
	})
}
