// Package sz implements an SZ-style error-bounded lossy compressor for
// 1-D double-precision data, following the SZ 1.4 pipeline the paper
// compares against (Di & Cappello IPDPS'16; Tao et al. IPDPS'17):
//
//  1. prediction from previously *reconstructed* values (Lorenzo
//     preceding-neighbor by default; linear/quadratic curve-fitting
//     models available for ablation),
//  2. error-bounded linear-scaling quantization of the prediction
//     residual into 2^16 codes,
//  3. canonical Huffman coding of the quantization codes,
//  4. raw IEEE-754 storage for unpredictable points (outliers).
//
// Like the real SZ, the predictor uses decompressed values so that the
// decoder can reproduce the predictions exactly, which guarantees the
// absolute error bound pointwise.
package sz

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/bitio"
	"repro/internal/huffman"
)

// intvCapacity is the number of linear-scaling quantization codes
// (SZ 1.4's default quantization_intervals, 2^16).
const intvCapacity = 1 << 16

// intvRadius is the code assigned to a zero residual.
const intvRadius = intvCapacity / 2

// outlierCode marks a point whose residual exceeds the quantization
// range; its raw bits follow in the outlier section.
const outlierCode = 0

var magic = [4]byte{'S', 'Z', '1', 'D'}

// Compress compresses data with absolute error bound eb.
func Compress(data []float64, eb float64) ([]byte, error) {
	if !(eb > 0) || math.IsInf(eb, 0) {
		return nil, fmt.Errorf("sz: error bound must be positive and finite, got %g", eb)
	}
	n := len(data)
	codes := make([]uint32, n)
	var outliers []float64

	// Pass 1: predict, quantize, reconstruct.
	var r1, r2, r3 float64 // last three reconstructed values
	valid := 0
	freqs := make(map[uint32]uint64)
	for i, v := range data {
		pred := predict(r1, r2, r3, valid)
		code := uint32(outlierCode)
		residual := v - pred
		q := math.Round(residual / (2 * eb))
		var rec float64
		if math.Abs(q) < intvRadius-1 && !math.IsNaN(q) {
			code = uint32(int64(q) + intvRadius)
			rec = pred + float64(int64(q))*2*eb
		} else {
			outliers = append(outliers, v)
			rec = v
		}
		codes[i] = code
		freqs[code]++
		r3, r2, r1 = r2, r1, rec
		if valid < 3 {
			valid++
		}
	}

	if len(freqs) == 0 {
		freqs[intvRadius] = 1 // empty input still carries a valid table
	}
	codec, err := huffman.New(freqs)
	if err != nil {
		return nil, err
	}

	w := bitio.NewWriter(n) // rough hint
	codec.WriteTable(w)
	for _, c := range codes {
		if err := codec.EncodeSymbol(w, c); err != nil {
			return nil, err
		}
	}
	bitPayload := w.Bytes()

	out := make([]byte, 0, 4+1+8+8+8+len(bitPayload)+8*len(outliers))
	out = append(out, magic[:]...)
	out = append(out, 1) // version
	var b8 [8]byte
	binary.LittleEndian.PutUint64(b8[:], math.Float64bits(eb))
	out = append(out, b8[:]...)
	binary.LittleEndian.PutUint64(b8[:], uint64(n))
	out = append(out, b8[:]...)
	binary.LittleEndian.PutUint64(b8[:], uint64(len(bitPayload)))
	out = append(out, b8[:]...)
	out = append(out, bitPayload...)
	for _, o := range outliers {
		binary.LittleEndian.PutUint64(b8[:], math.Float64bits(o))
		out = append(out, b8[:]...)
	}
	return out, nil
}

// Decompress reverses Compress.
func Decompress(comp []byte) ([]float64, error) {
	if len(comp) < 29 {
		return nil, fmt.Errorf("sz: stream too short")
	}
	if [4]byte(comp[:4]) != magic {
		return nil, fmt.Errorf("sz: bad magic")
	}
	if comp[4] != 1 {
		return nil, fmt.Errorf("sz: unsupported version %d", comp[4])
	}
	eb := math.Float64frombits(binary.LittleEndian.Uint64(comp[5:13]))
	n := binary.LittleEndian.Uint64(comp[13:21])
	plen := binary.LittleEndian.Uint64(comp[21:29])
	if uint64(len(comp)-29) < plen {
		return nil, fmt.Errorf("sz: truncated code section")
	}
	// Every element consumes at least one bit of the code section; a
	// corrupt count must not drive a giant allocation.
	if n > plen*8 {
		return nil, fmt.Errorf("sz: %d elements cannot fit in %d code bytes", n, plen)
	}
	r := bitio.NewReader(comp[29 : 29+plen])
	codec, err := huffman.ReadTable(r)
	if err != nil {
		return nil, err
	}
	outBytes := comp[29+plen:]
	outIdx := 0
	nextOutlier := func() (float64, error) {
		if outIdx+8 > len(outBytes) {
			return 0, fmt.Errorf("sz: truncated outlier section")
		}
		v := math.Float64frombits(binary.LittleEndian.Uint64(outBytes[outIdx:]))
		outIdx += 8
		return v, nil
	}

	out := make([]float64, n)
	var r1, r2, r3 float64
	valid := 0
	for i := range out {
		code, err := codec.DecodeSymbol(r)
		if err != nil {
			return nil, err
		}
		pred := predict(r1, r2, r3, valid)
		var rec float64
		if code == outlierCode {
			rec, err = nextOutlier()
			if err != nil {
				return nil, err
			}
		} else {
			q := int64(code) - intvRadius
			rec = pred + float64(q)*2*eb
		}
		out[i] = rec
		r3, r2, r1 = r2, r1, rec
		if valid < 3 {
			valid++
		}
	}
	return out, nil
}

// predict extrapolates from previous reconstructed values. The default
// order-1 model is the Lorenzo (preceding-neighbor) predictor SZ 1.4
// uses on 1-D streams; orders 2 and 3 expose SZ 1.1's linear and
// quadratic curve-fitting models for the ablation benchmarks (on jumpy
// ERI streams the higher orders amplify noise and compress worse).
func predict(r1, r2, r3 float64, valid int) float64 {
	if valid > predictorOrder {
		valid = predictorOrder
	}
	switch valid {
	case 0:
		return 0
	case 1:
		return r1 // constant
	case 2:
		return 2*r1 - r2 // linear
	default:
		return 3*r1 - 3*r2 + r3 // quadratic
	}
}

// predictorOrder selects the prediction model (see SetPredictorOrder).
var predictorOrder = 1

// ErrorBound extracts the error bound recorded in a compressed stream.
func ErrorBound(comp []byte) (float64, error) {
	if len(comp) < 13 || [4]byte(comp[:4]) != magic {
		return 0, fmt.Errorf("sz: not an SZ stream")
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(comp[5:13])), nil
}

// SetPredictorOrder selects the prediction model: 1 = Lorenzo
// (preceding value, the 1-D default), 2 = linear extrapolation,
// 3 = quadratic extrapolation. It applies process-wide; intended for
// the predictor ablation benchmark, not concurrent use with Compress.
func SetPredictorOrder(n int) {
	if n < 1 || n > 3 {
		panic("sz: predictor order must be 1, 2 or 3") //lint:nopanic-ok programmer error: benchmark knob with a documented 1..3 domain
	}
	predictorOrder = n
}

// PredictorOrder reports the current prediction model order.
func PredictorOrder() int { return predictorOrder }
